GO ?= go

.PHONY: all build vet lint lint-sarif lint-selftest test race race-shard-identity check soak soak-byzantine soak-catchup soak-smoke-race fuzz fuzz-smoke bench-json bench-smoke clean

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# lint runs the protocol-aware analyzer suite (alloclint, detlint,
# lanelint, leaklint, locklint, monolint, ordlint, paramlint,
# quorumlint, sharelint, taintlint, wirelint) over one whole-program
# call graph against the committed baseline; see
# internal/analysis/README.md. New findings fail the run; accepted ones
# live in .rblint-baseline.json.
lint:
	$(GO) run ./cmd/rblint -baseline .rblint-baseline.json ./...

# lint-sarif is the CI flavor: same run, but also writes rblint.sarif
# for code-scanning upload.
lint-sarif:
	$(GO) run ./cmd/rblint -baseline .rblint-baseline.json -sarif rblint.sarif ./...

# lint-selftest proves the analyzers still bite: rblint runs over the
# deliberately-broken fixtures, each checked under an in-scope import
# path so the path-scoped analyzers are in jurisdiction, and must exit 1
# with sharelint, ordlint, alloclint, lanelint, and quorumlint findings
# in the SARIF logs. A passing fixture run means an analyzer fell silent
# — that fails CI. SARIF output lands under a throwaway temp dir, never
# in the tree.
lint-selftest:
	@tmp=$$(mktemp -d) || exit 1; \
	fail() { echo "lint-selftest: $$1"; rm -rf "$$tmp"; exit 1; }; \
	$(GO) run ./cmd/rblint -as rbcast/internal/udp -sarif "$$tmp/broken.sarif" internal/analysis/testdata/broken; \
	[ $$? -eq 1 ] || fail "broken: expected exit 1 (findings)"; \
	$(GO) run ./cmd/rblint -as rbcast/internal/sim -sarif "$$tmp/lane.sarif" internal/analysis/testdata/lane; \
	[ $$? -eq 1 ] || fail "lane: expected exit 1 (findings)"; \
	$(GO) run ./cmd/rblint -as rbcast/internal/core -sarif "$$tmp/quorum.sarif" internal/analysis/testdata/quorum; \
	[ $$? -eq 1 ] || fail "quorum: expected exit 1 (findings)"; \
	for rule in sharelint ordlint alloclint; do \
		grep -q "\"ruleId\": \"$$rule\"" "$$tmp/broken.sarif" || fail "no $$rule finding for testdata/broken"; \
	done; \
	grep -q '"ruleId": "lanelint"' "$$tmp/lane.sarif" || fail "no lanelint finding for testdata/lane"; \
	grep -q '"ruleId": "quorumlint"' "$$tmp/quorum.sarif" || fail "no quorumlint finding for testdata/quorum"; \
	rm -rf "$$tmp"; \
	echo "lint-selftest: ok (sharelint, ordlint, alloclint, lanelint, quorumlint all firing)"

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# race-shard-identity re-runs just the sharded-engine determinism
# tests race-enabled and with higher verbosity: worker-count trace
# identity at the sim and netsim layers, and shard-count invariance of
# soak event traces and replay reports (including the byzantine and
# late-joiner arms). CI runs it across the GOMAXPROCS matrix so the
# bit-identical-at-any-shard-count guarantee is checked under both
# serialized and genuinely parallel worker schedules.
race-shard-identity:
	$(GO) test -race -v -run 'TestShardedWorkerCountIdentity|TestShardTraceIdentity|TestShardPlan|TestShardCount' ./internal/sim/ ./internal/netsim/ ./internal/soak/

# check is the gate for every change: compile everything, lint with vet
# and rblint, and run the full suite under the race detector. It does
# not run benchmarks; use `make bench-json` before and after perf work
# to record BENCH_<date>.json snapshots.
check: build vet lint race

# soak runs a quick randomized sweep of every scenario class (the
# partition-trap class is excluded: it fails by design).
soak: build
	$(GO) run ./cmd/rbsoak -class uniform -count 500
	$(GO) run ./cmd/rbsoak -class churn -count 500
	$(GO) run ./cmd/rbsoak -class partition -count 500
	$(GO) run ./cmd/rbsoak -class mixed -count 500
	$(GO) run ./cmd/rbsoak -class recovery -count 500

# soak-byzantine sweeps the adversarial classes: hostile hosts whose
# traffic is rewritten at the transmit seam. Maskable seeds must
# converge despite the adversary; trap seeds (equivocating source) pass
# only when the harness catches the violation, so a clean sweep proves
# both the protocol and the monitor.
soak-byzantine: build
	$(GO) run ./cmd/rbsoak -class byzantine -count 200
	$(GO) run ./cmd/rbsoak -class byzantine-partition -count 200

# soak-catchup sweeps the late-joiner class: a host misses a long,
# partly-pruned history and must converge via snapshot transfer plus
# range sync, under randomized mid-sync partitions, sync-source crashes,
# and joiner kill/restarts. Every seed asserts the O(missing) sync-round
# budget. The sweep starts at seed 1 and so always includes the trap
# seeds (3 partitions mid-sync; 24 stacks all three arms), which force
# the timeout/resume/failover paths on every run.
soak-catchup: build
	$(GO) run ./cmd/rbsoak -class late-joiner -count 200

# soak-smoke-race is a short randomized sweep with the race detector
# compiled in: small counts, one class per scenario family that stresses
# the event queue and membership machinery hardest. CI runs it across a
# GOMAXPROCS matrix so both serialized and parallel schedules are
# exercised; locally it is the cheap pre-push race check.
soak-smoke-race:
	$(GO) run -race ./cmd/rbsoak -class uniform -count 25
	$(GO) run -race ./cmd/rbsoak -class mixed -count 25
	$(GO) run -race ./cmd/rbsoak -class byzantine -count 10
	$(GO) run -race ./cmd/rbsoak -class late-joiner -count 10

# bench-json records the perf-tracking suite (internal/bench) as a
# BENCH_<date>.json snapshot via cmd/rbbench; schema in README
# "Performance". BENCHTIME=2s gives stable numbers for committed
# snapshots.
BENCHTIME ?= 2s
bench-json: build
	$(GO) run ./cmd/rbbench -benchtime $(BENCHTIME)

# bench-smoke is the CI-sized run: one iteration per case, enough to
# catch benchmarks that break without burning CI minutes on timing.
bench-smoke: build
	$(GO) run ./cmd/rbbench -benchtime 1x -label ci-smoke -out bench-smoke.json

# fuzz gives each fuzz target a short budget; raise -fuzztime for real
# campaigns.
FUZZTIME ?= 10s
fuzz:
	$(GO) test -run=^$$ -fuzz=FuzzDecodeEnvelope -fuzztime=$(FUZZTIME) ./internal/live/
	$(GO) test -run=^$$ -fuzz=FuzzDecode -fuzztime=$(FUZZTIME) ./internal/wire/

# fuzz-smoke is the CI-sized fuzz budget: long enough to shake out
# shallow decoder regressions, short enough for every pull request.
fuzz-smoke:
	$(MAKE) fuzz FUZZTIME=20s

clean:
	$(GO) clean ./...
	rm -f rblint.sarif rblint-selftest.sarif bench-smoke.json
