package udp_test

import (
	"encoding/binary"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"rbcast/internal/core"
	"rbcast/internal/udp"
	"rbcast/internal/wire"
)

// TestUDPStopUnderInboundFlood stops a node while several goroutines are
// still slamming its socket with valid frames, truncated headers, and
// garbage. Stop must return promptly (socket close unblocks the read
// loop even mid-datagram), be safe to call again, and the node must not
// panic or deadlock no matter how the flood interleaves with shutdown —
// the race detector audits the handoff between readLoop and mainLoop.
func TestUDPStopUnderInboundFlood(t *testing.T) {
	node, err := udp.StartNode(udp.NodeConfig{
		ID:     1,
		Source: 1,
		Peers:  map[core.HostID]string{1: "127.0.0.1:0"},
	})
	if err != nil {
		t.Fatalf("StartNode: %v", err)
	}
	target, err := net.ResolveUDPAddr("udp", node.Addr())
	if err != nil {
		t.Fatalf("resolving node addr: %v", err)
	}

	valid, err := wire.Encode(wire.Frame{
		From:    2,
		Message: core.Message{Kind: core.MsgInfo},
	})
	if err != nil {
		t.Fatalf("encoding flood frame: %v", err)
	}
	datagrams := [][]byte{
		append(binary.BigEndian.AppendUint64(nil, uint64(time.Now().UnixNano())), valid...),
		{0x01, 0x02, 0x03},                    // shorter than the timestamp header
		append(make([]byte, 8), 0xFF, 0xFF),   // valid header, undecodable frame
		append(make([]byte, 8), valid[:2]...), // truncated frame
	}

	var stop atomic.Bool
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			conn, err := net.DialUDP("udp", nil, target)
			if err != nil {
				return
			}
			defer conn.Close()
			for !stop.Load() {
				_, _ = conn.Write(datagrams[i%len(datagrams)])
			}
		}()
	}

	// Let the flood build up real inbound pressure, then stop mid-stream.
	time.Sleep(100 * time.Millisecond)
	done := make(chan struct{})
	go func() {
		node.Stop()
		node.Stop() // idempotent even under fire
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Stop did not return within 10s under inbound flood")
	}
	stop.Store(true)
	wg.Wait()

	if _, err := node.Broadcast([]byte("x")); err == nil {
		t.Error("broadcast succeeded after stop")
	}
	if err := node.Inspect(func(*core.Host) {}); err == nil {
		t.Error("inspect succeeded after stop")
	}
}
