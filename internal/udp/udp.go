// Package udp runs protocol hosts over real UDP sockets.
//
// This is the deployment-shaped runtime: each node owns a datagram
// socket, frames are the binary wire encoding, and UDP supplies the loss,
// reordering, and duplication semantics the protocol was designed for.
//
// Real networks provide no cost bit, so the package implements the
// paper's §2 alternative: "timestamp each message at the time it is sent
// out [...] since the expected times for cheaply delivered messages and
// for expensively delivered ones vary significantly, hosts would be able
// to tell them apart." Every datagram carries a send timestamp; the
// receiver sets the cost bit when the observed transit time exceeds a
// configured threshold. (This assumes roughly synchronized clocks, which
// holds trivially for same-machine tests and within NTP bounds
// otherwise.)
package udp

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"rbcast/internal/core"
	"rbcast/internal/seqset"
	"rbcast/internal/wire"
)

// header: 8-byte big-endian unix-nano send timestamp, then a wire frame.
const headerLen = 8

// maxDatagram bounds reads; larger frames are dropped like any network
// loss.
const maxDatagram = 64 * 1024

// sendBufPool recycles datagram build buffers; WriteToUDP finishes with
// the buffer before returning, so it can go straight back to the pool.
var sendBufPool = sync.Pool{New: func() any {
	b := make([]byte, 0, 512)
	return &b
}}

// NodeConfig assembles one UDP protocol node.
type NodeConfig struct {
	// ID and Source identify this host and the broadcast source.
	ID     core.HostID
	Source core.HostID
	// Peers maps every participant (including ID) to its UDP address.
	Peers map[core.HostID]string
	// Params tunes the protocol; zero value uses fast in-memory-scale
	// defaults suitable for loopback.
	Params core.Params
	// ExpensiveThreshold is the transit time above which a message is
	// classified as expensively delivered; default 25 ms.
	ExpensiveThreshold time.Duration
	// Conn optionally supplies a pre-bound socket (whose address must
	// match Peers[ID]); used to avoid bind races when allocating a group
	// of nodes on ephemeral ports.
	Conn *net.UDPConn
	// OnDeliver observes application deliveries; may be nil.
	OnDeliver func(seq seqset.Seq, payload []byte)
}

// Node is one running UDP protocol host.
type Node struct {
	cfg   NodeConfig
	host  *core.Host
	conn  *net.UDPConn
	addrs map[core.HostID]*net.UDPAddr

	cmds    chan func(now time.Duration)
	stop    chan struct{}
	done    chan struct{}
	stopped sync.Once
	started time.Time

	mu        sync.Mutex
	delivered seqset.Set

	stats struct {
		sync.Mutex
		sent, received, decodeErrors, sendErrors uint64
	}
}

// StartNode binds the node's socket and starts its loops.
func StartNode(cfg NodeConfig) (*Node, error) {
	addr, ok := cfg.Peers[cfg.ID]
	if !ok {
		return nil, fmt.Errorf("udp: own id %d missing from Peers", cfg.ID)
	}
	if cfg.ExpensiveThreshold <= 0 {
		cfg.ExpensiveThreshold = 25 * time.Millisecond
	}
	if cfg.Params == (core.Params{}) {
		cfg.Params = DefaultNodeParams()
	}
	conn := cfg.Conn
	if conn == nil {
		udpAddr, err := net.ResolveUDPAddr("udp", addr)
		if err != nil {
			return nil, fmt.Errorf("udp: resolving %q: %w", addr, err)
		}
		var err2 error
		conn, err2 = net.ListenUDP("udp", udpAddr)
		if err2 != nil {
			return nil, fmt.Errorf("udp: listen: %w", err2)
		}
	}
	n := &Node{
		cfg:     cfg,
		conn:    conn,
		addrs:   make(map[core.HostID]*net.UDPAddr, len(cfg.Peers)),
		cmds:    make(chan func(time.Duration), 16),
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
		started: time.Now(),
	}
	var peers []core.HostID
	for id, a := range cfg.Peers {
		ua, err := net.ResolveUDPAddr("udp", a)
		if err != nil {
			_ = conn.Close()
			return nil, fmt.Errorf("udp: resolving peer %d %q: %w", id, a, err)
		}
		n.addrs[id] = ua
		peers = append(peers, id)
	}
	host, err := core.NewHost(core.Config{
		ID:     cfg.ID,
		Source: cfg.Source,
		Peers:  peers,
		Params: cfg.Params,
	}, (*nodeEnv)(n))
	if err != nil {
		_ = conn.Close()
		return nil, err
	}
	n.host = host
	go n.readLoop()
	go n.mainLoop()
	return n, nil
}

// DefaultNodeParams returns tunables scaled for loopback UDP.
func DefaultNodeParams() core.Params {
	return core.Params{
		TickInterval:      2 * time.Millisecond,
		AttachPeriod:      20 * time.Millisecond,
		InfoClusterPeriod: 8 * time.Millisecond,
		InfoRemotePeriod:  30 * time.Millisecond,
		InfoGlobalPeriod:  60 * time.Millisecond,
		GapClusterPeriod:  12 * time.Millisecond,
		GapRemotePeriod:   40 * time.Millisecond,
		GapGlobalPeriod:   90 * time.Millisecond,
		AttachTimeout:     25 * time.Millisecond,
		ParentTimeout:     150 * time.Millisecond,
		GapFillBatch:      64,
		AttachFillLimit:   256,
	}
}

// Addr returns the node's bound UDP address (useful with ":0" configs).
func (n *Node) Addr() string { return n.conn.LocalAddr().String() }

// ID returns the node's host ID.
func (n *Node) ID() core.HostID { return n.cfg.ID }

// nodeEnv is the core.Env face of a node; methods run on the main loop.
type nodeEnv Node

func (e *nodeEnv) Send(to core.HostID, m core.Message) {
	n := (*Node)(e)
	addr, ok := n.addrs[to]
	if !ok {
		return
	}
	bp := sendBufPool.Get().(*[]byte)
	defer sendBufPool.Put(bp)
	buf := binary.BigEndian.AppendUint64((*bp)[:0], uint64(time.Now().UnixNano()))
	buf, err := wire.AppendEncode(buf, wire.Frame{From: n.cfg.ID, Message: m})
	*bp = buf
	if err != nil {
		n.stats.Lock()
		n.stats.sendErrors++
		n.stats.Unlock()
		return
	}
	if _, err := n.conn.WriteToUDP(buf, addr); err != nil {
		n.stats.Lock()
		n.stats.sendErrors++
		n.stats.Unlock()
		return
	}
	n.stats.Lock()
	n.stats.sent++
	n.stats.Unlock()
}

func (e *nodeEnv) Deliver(seq seqset.Seq, payload []byte) {
	n := (*Node)(e)
	n.mu.Lock()
	n.delivered.Add(seq)
	n.mu.Unlock()
	if n.cfg.OnDeliver != nil {
		n.cfg.OnDeliver(seq, payload)
	}
}

type inbound struct {
	costBit bool
	frame   wire.Frame
}

// readLoop owns the socket: decode, classify transit time, hand off.
func (n *Node) readLoop() {
	buf := make([]byte, maxDatagram)
	for {
		count, _, err := n.conn.ReadFromUDP(buf)
		if err != nil {
			// Closed socket (or a transient error after stop): exit.
			select {
			case <-n.stop:
				return
			default:
			}
			if errors.Is(err, net.ErrClosed) {
				return
			}
			continue
		}
		if count < headerLen {
			continue
		}
		sentAt := time.Unix(0, int64(binary.BigEndian.Uint64(buf[:headerLen])))
		frame, err := wire.Decode(buf[headerLen:count])
		if err != nil {
			n.stats.Lock()
			n.stats.decodeErrors++
			n.stats.Unlock()
			continue
		}
		n.stats.Lock()
		n.stats.received++
		n.stats.Unlock()
		in := inbound{
			costBit: time.Since(sentAt) > n.cfg.ExpensiveThreshold,
			frame:   frame,
		}
		select {
		case n.cmds <- func(now time.Duration) {
			n.host.HandleMessage(now, in.frame.From, in.costBit, in.frame.Message)
		}:
		case <-n.stop:
			return
		}
	}
}

// mainLoop serializes all host interactions.
func (n *Node) mainLoop() {
	defer close(n.done)
	ticker := time.NewTicker(n.cfg.Params.TickInterval)
	defer ticker.Stop()
	n.host.Start(n.now())
	for {
		select {
		case <-n.stop:
			return
		case <-ticker.C:
			n.host.Tick(n.now())
		case cmd := <-n.cmds:
			cmd(n.now())
		}
	}
}

func (n *Node) now() time.Duration { return time.Since(n.started) }

// Broadcast injects the next message at the source node.
func (n *Node) Broadcast(payload []byte) (seqset.Seq, error) {
	if n.cfg.ID != n.cfg.Source {
		return 0, fmt.Errorf("udp: node %d is not the source", n.cfg.ID)
	}
	result := make(chan seqset.Seq, 1)
	select {
	case n.cmds <- func(now time.Duration) { result <- n.host.Broadcast(now, payload) }:
	case <-n.stop:
		return 0, fmt.Errorf("udp: node stopped")
	}
	select {
	case seq := <-result:
		return seq, nil
	case <-n.stop:
		return 0, fmt.Errorf("udp: node stopped")
	}
}

// Inspect runs fn against the protocol host on the node's own loop — the
// only safe way to read a running node's protocol state.
func (n *Node) Inspect(fn func(h *core.Host)) error {
	done := make(chan struct{})
	select {
	case n.cmds <- func(time.Duration) {
		fn(n.host)
		close(done)
	}:
	case <-n.stop:
		return fmt.Errorf("udp: node stopped")
	}
	select {
	case <-done:
		return nil
	case <-n.stop:
		return fmt.Errorf("udp: node stopped")
	}
}

// Delivered returns the sequence numbers this node has delivered.
func (n *Node) Delivered() seqset.Set {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.delivered.Clone()
}

// HasAll reports whether the node has delivered 1..max with no gaps.
func (n *Node) HasAll(max seqset.Seq) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.delivered.Max() == max && n.delivered.GapCount() == 0 && (max == 0 || !n.delivered.Empty())
}

// Stats returns (sent, received, decode errors, send errors).
func (n *Node) Stats() (sent, received, decodeErrs, sendErrs uint64) {
	n.stats.Lock()
	defer n.stats.Unlock()
	return n.stats.sent, n.stats.received, n.stats.decodeErrors, n.stats.sendErrors
}

// Stop closes the socket and waits for the loops. Safe to call twice.
func (n *Node) Stop() {
	n.stopped.Do(func() {
		close(n.stop)
		_ = n.conn.Close()
	})
	<-n.done
}
