package udp_test

import (
	"testing"
	"time"

	"rbcast/internal/core"
	"rbcast/internal/seqset"
	"rbcast/internal/udp"
)

const waitBudget = 20 * time.Second

func TestUDPBroadcast(t *testing.T) {
	g, err := udp.StartGroup(5, core.Params{})
	if err != nil {
		t.Fatalf("StartGroup: %v", err)
	}
	defer g.Stop()
	var last seqset.Seq
	for i := 0; i < 10; i++ {
		seq, err := g.Broadcast([]byte("datagram"))
		if err != nil {
			t.Fatalf("Broadcast: %v", err)
		}
		last = seq
	}
	if !g.WaitAll(last, waitBudget) {
		for id, n := range g.Nodes {
			t.Logf("node %d delivered %v", id, n.Delivered())
		}
		t.Fatal("UDP broadcast incomplete")
	}
	for id, n := range g.Nodes {
		_, _, decodeErrs, sendErrs := n.Stats()
		if decodeErrs != 0 || sendErrs != 0 {
			t.Errorf("node %d: decodeErrs=%d sendErrs=%d", id, decodeErrs, sendErrs)
		}
	}
}

func TestUDPDeliveryCallback(t *testing.T) {
	g, err := udp.StartGroup(2, core.Params{})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Stop()
	seq, err := g.Broadcast([]byte("x"))
	if err != nil {
		t.Fatal(err)
	}
	if !g.WaitAll(seq, waitBudget) {
		t.Fatal("broadcast incomplete")
	}
	if !g.Nodes[2].Delivered().Contains(seq) {
		t.Error("node 2 missing the broadcast")
	}
}

func TestUDPNonSourceCannotBroadcast(t *testing.T) {
	g, err := udp.StartGroup(2, core.Params{})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Stop()
	if _, err := g.Nodes[2].Broadcast([]byte("x")); err == nil {
		t.Error("non-source node broadcast succeeded")
	}
}

func TestUDPStopIdempotent(t *testing.T) {
	g, err := udp.StartGroup(2, core.Params{})
	if err != nil {
		t.Fatal(err)
	}
	g.Stop()
	g.Stop() // no panic, no deadlock
	if _, err := g.Broadcast([]byte("x")); err == nil {
		t.Error("broadcast succeeded after stop")
	}
}

func TestUDPConfigValidation(t *testing.T) {
	if _, err := udp.StartNode(udp.NodeConfig{
		ID:     1,
		Source: 1,
		Peers:  map[core.HostID]string{2: "127.0.0.1:9"},
	}); err == nil {
		t.Error("own id missing from peers accepted")
	}
	if _, err := udp.StartGroup(0, core.Params{}); err == nil {
		t.Error("empty group accepted")
	}
}

func TestUDPGroupSurvivesBurst(t *testing.T) {
	g, err := udp.StartGroup(4, core.Params{})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Stop()
	var last seqset.Seq
	for i := 0; i < 50; i++ {
		seq, err := g.Broadcast(make([]byte, 512))
		if err != nil {
			t.Fatal(err)
		}
		last = seq
	}
	if !g.WaitAll(last, waitBudget) {
		t.Fatalf("burst of %d messages not fully delivered", last)
	}
}
