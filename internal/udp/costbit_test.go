package udp_test

import (
	"encoding/binary"
	"net"
	"testing"
	"time"

	"rbcast/internal/core"
	"rbcast/internal/seqset"
	"rbcast/internal/udp"
	"rbcast/internal/wire"
)

// sendRaw crafts one datagram to addr: an 8-byte send timestamp followed
// by a wire frame — exactly what udp nodes exchange.
func sendRaw(t *testing.T, addr string, sentAt time.Time, frame wire.Frame) {
	t.Helper()
	conn, err := net.Dial("udp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	data, err := wire.Encode(frame)
	if err != nil {
		t.Fatal(err)
	}
	buf := binary.BigEndian.AppendUint64(nil, uint64(sentAt.UnixNano()))
	buf = append(buf, data...)
	if _, err := conn.Write(buf); err != nil {
		t.Fatal(err)
	}
}

// waitClusterContains polls the node's cluster view.
func waitClusterContains(t *testing.T, n *udp.Node, peer core.HostID, want bool, timeout time.Duration) bool {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		var got bool
		if err := n.Inspect(func(h *core.Host) {
			for _, c := range h.Cluster() {
				if c == peer {
					got = true
				}
			}
		}); err != nil {
			t.Fatal(err)
		}
		if got == want {
			return true
		}
		time.Sleep(2 * time.Millisecond)
	}
	return false
}

// TestTransitTimeCostClassification verifies the paper's §2 timestamp
// alternative: a message whose observed transit time exceeds the
// threshold is treated as expensively delivered (peer leaves the cluster
// view), a fresh one as cheap (peer joins it).
func TestTransitTimeCostClassification(t *testing.T) {
	// A single node with a phantom peer 2 we impersonate by raw socket.
	conn, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	params := udp.DefaultNodeParams()
	node, err := udp.StartNode(udp.NodeConfig{
		ID:     1,
		Source: 1,
		Peers: map[core.HostID]string{
			1: conn.LocalAddr().String(),
			2: "127.0.0.1:1", // never actually contacted in this test
		},
		Params:             params,
		ExpensiveThreshold: 50 * time.Millisecond,
		Conn:               conn,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer node.Stop()

	info := wire.Frame{From: 2, Message: core.Message{
		Kind: core.MsgInfo, Info: seqset.FromRange(1, 3), Parent: core.Nil,
	}}

	// Fresh timestamp → transit ≈ 0 → cheap → peer 2 joins the cluster.
	sendRaw(t, node.Addr(), time.Now(), info)
	if !waitClusterContains(t, node, 2, true, 5*time.Second) {
		t.Fatal("cheaply delivered message did not admit the peer to the cluster")
	}

	// Stale timestamp → transit >> threshold → expensive → peer evicted.
	sendRaw(t, node.Addr(), time.Now().Add(-time.Second), info)
	if !waitClusterContains(t, node, 2, false, 5*time.Second) {
		t.Fatal("expensively delivered message did not evict the peer from the cluster")
	}
}

// TestRawGarbageIgnored confirms hostile datagrams only bump the decode
// counter.
func TestRawGarbageIgnored(t *testing.T) {
	g, err := udp.StartGroup(2, core.Params{})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Stop()
	target := g.Nodes[1]
	conn, err := net.Dial("udp", target.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	for _, payload := range [][]byte{
		{},
		{1, 2, 3},
		make([]byte, 2000),
		append(binary.BigEndian.AppendUint64(nil, uint64(time.Now().UnixNano())), 0xFF, 0xFF),
	} {
		if _, err := conn.Write(payload); err != nil {
			t.Fatal(err)
		}
	}
	// The node keeps working.
	seq, err := g.Broadcast([]byte("still alive"))
	if err != nil {
		t.Fatal(err)
	}
	if !g.WaitAll(seq, 15*time.Second) {
		t.Fatal("broadcast failed after garbage datagrams")
	}
}
