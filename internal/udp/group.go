package udp

import (
	"fmt"
	"net"
	"time"

	"rbcast/internal/core"
	"rbcast/internal/seqset"
)

// Group is a set of UDP nodes on one machine, for tests and demos.
type Group struct {
	Nodes map[core.HostID]*Node
	// Source is the broadcasting node's ID.
	Source core.HostID
}

// StartGroup binds n loopback sockets on ephemeral ports and starts one
// node per host ID 1..n, with host 1 as the source. Passing params ==
// core.Params{} uses DefaultNodeParams.
func StartGroup(n int, params core.Params) (*Group, error) {
	if n < 1 {
		return nil, fmt.Errorf("udp: group size %d", n)
	}
	conns := make(map[core.HostID]*net.UDPConn, n)
	peers := make(map[core.HostID]string, n)
	cleanup := func() {
		for _, c := range conns {
			_ = c.Close()
		}
	}
	for i := 1; i <= n; i++ {
		conn, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
		if err != nil {
			cleanup()
			return nil, fmt.Errorf("udp: binding node %d: %w", i, err)
		}
		conns[core.HostID(i)] = conn
		peers[core.HostID(i)] = conn.LocalAddr().String()
	}
	g := &Group{Nodes: make(map[core.HostID]*Node, n), Source: 1}
	for id, conn := range conns {
		node, err := StartNode(NodeConfig{
			ID:     id,
			Source: g.Source,
			Peers:  peers,
			Params: params,
			Conn:   conn,
		})
		if err != nil {
			g.Stop()
			cleanup()
			return nil, err
		}
		g.Nodes[id] = node
	}
	return g, nil
}

// Broadcast injects one message at the source.
func (g *Group) Broadcast(payload []byte) (seqset.Seq, error) {
	return g.Nodes[g.Source].Broadcast(payload)
}

// WaitAll polls until every node has delivered 1..max or the timeout
// elapses.
func (g *Group) WaitAll(max seqset.Seq, timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for {
		all := true
		for _, node := range g.Nodes {
			if !node.HasAll(max) {
				all = false
				break
			}
		}
		if all {
			return true
		}
		if time.Now().After(deadline) {
			return false
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// Stop stops every node.
func (g *Group) Stop() {
	for _, node := range g.Nodes {
		node.Stop()
	}
}
