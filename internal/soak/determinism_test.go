package soak

import (
	"encoding/json"
	"testing"

	"rbcast/internal/harness"
)

// Two harness runs of the same seed must produce bit-identical event
// traces — the property detlint exists to protect (no wall clock, no
// global randomness, no order-sensitive map iteration in the
// deterministic packages). A diverging trace here means seeded replay
// and shrinking are silently broken even if per-seed pass/fail agrees.
func TestSameSeedIdenticalEventTrace(t *testing.T) {
	checkSameSeedTrace(t, false)
}

// The delta INFO path adds per-peer sender/receiver state (last-sent
// snapshots, reconstructed views) that must be just as deterministic as
// the plain protocol: same seed, same traces, same wire-byte totals.
func TestSameSeedIdenticalEventTraceDeltaInfo(t *testing.T) {
	checkSameSeedTrace(t, true)
}

// The catch-up sync layer adds per-host transfer state machines —
// in-flight request windows, snapshot byte offsets, retry deadlines,
// source failover — that must be exactly as deterministic as the plain
// protocol. The pinned seed carries a mid-sync disruption arm, so the
// resumable-transfer paths (timeout, re-request from the verified
// offset) are inside the compared traces.
func TestSameSeedIdenticalEventTraceLateJoiner(t *testing.T) {
	seed := int64(-1)
	for s := int64(1); s <= 60; s++ {
		if len(NewSpec(ClassLateJoiner, s).Steps) > 2 {
			seed = s
			break
		}
	}
	if seed < 0 {
		t.Fatal("no late-joiner seed with a mid-sync arm in 1..60")
	}
	run := func() *harness.Result {
		t.Helper()
		sc, err := NewSpec(ClassLateJoiner, seed).Scenario()
		if err != nil {
			t.Fatalf("Scenario: %v", err)
		}
		sc.CollectEvents = true
		res, err := harness.Run(sc)
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		return res
	}
	compareTraces(t, run(), run())
}

// Adversary hooks rewrite traffic at the netsim transmit seam using
// per-host seeded RNG streams, so they must not cost any determinism:
// same seed, same adversaries, same event trace. One maskable seed and
// one echo/ready seed are pinned; the trap arm is covered by the replay
// equality check in TestByzantineTrapCaught.
func TestSameSeedIdenticalEventTraceByzantine(t *testing.T) {
	checkSameSeedByzTrace(t, false)
}

func TestSameSeedIdenticalEventTraceByzantineEcho(t *testing.T) {
	checkSameSeedByzTrace(t, true)
}

func checkSameSeedByzTrace(t *testing.T, wantEcho bool) {
	t.Helper()
	seed := int64(-1)
	for s := int64(0); s <= 60; s++ {
		sp := NewSpec(ClassByzantine, s)
		if !sp.ExpectViolation && sp.EchoReady == wantEcho {
			seed = s
			break
		}
	}
	if seed < 0 {
		t.Fatalf("no maskable byzantine seed with EchoReady=%v in 0..60", wantEcho)
	}
	run := func() *harness.Result {
		t.Helper()
		sp := NewSpec(ClassByzantine, seed)
		sc, err := sp.Scenario()
		if err != nil {
			t.Fatalf("Scenario: %v", err)
		}
		if len(sc.Adversaries) == 0 {
			t.Fatal("byzantine scenario carries no adversaries")
		}
		sc.CollectEvents = true
		res, err := harness.Run(sc)
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		return res
	}
	compareTraces(t, run(), run())
}

func checkSameSeedTrace(t *testing.T, deltaInfo bool) {
	t.Helper()
	run := func() *harness.Result {
		t.Helper()
		sp := NewSpec(ClassPartitionTrap, 7)
		sc, err := sp.Scenario()
		if err != nil {
			t.Fatalf("Scenario: %v", err)
		}
		sc.CollectEvents = true
		sc.Params.DeltaInfo = deltaInfo
		res, err := harness.Run(sc)
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		return res
	}
	compareTraces(t, run(), run())
}

func compareTraces(t *testing.T, a, b *harness.Result) {
	t.Helper()
	if len(a.Events) == 0 {
		t.Fatal("no events collected; the trace comparison is vacuous")
	}
	if len(a.Events) != len(b.Events) {
		t.Fatalf("event counts differ: %d vs %d", len(a.Events), len(b.Events))
	}
	for i := range a.Events {
		if a.Events[i] != b.Events[i] {
			t.Fatalf("event %d differs:\n  %+v\nvs\n  %+v", i, a.Events[i], b.Events[i])
		}
	}
	if a.DeliveredCount != b.DeliveredCount || a.Complete != b.Complete ||
		a.CompletionAt != b.CompletionAt {
		t.Fatalf("summary stats differ: (%d,%v,%v) vs (%d,%v,%v)",
			a.DeliveredCount, a.Complete, a.CompletionAt,
			b.DeliveredCount, b.Complete, b.CompletionAt)
	}
	if a.WireBytes != b.WireBytes || a.InfoWireBytes != b.InfoWireBytes {
		t.Fatalf("wire-byte totals differ: (%d,%d) vs (%d,%d)",
			a.WireBytes, a.InfoWireBytes, b.WireBytes, b.InfoWireBytes)
	}
}

// --- Shard-count invariance -------------------------------------------
//
// The sharded engine's contract: a seeded scenario produces bit-identical
// traces and replay reports at ANY positive shard count, because the lane
// partition is derived from the topology and shard workers are pure
// executors. These tests pin that across the scenario classes whose state
// machines are hardest to keep deterministic — partition/heal schedules,
// Byzantine adversaries, and mid-sync catch-up disruption.

func shardCounts() []int { return []int{1, 2, 4, 8} }

func runScenarioWithShards(t *testing.T, sc harness.Scenario, shards int) *harness.Result {
	t.Helper()
	sc.CollectEvents = true
	sc.Shards = shards
	res, err := harness.Run(sc)
	if err != nil {
		t.Fatalf("Run(shards=%d): %v", shards, err)
	}
	return res
}

func checkShardCountTrace(t *testing.T, mk func() (harness.Scenario, error)) {
	t.Helper()
	mkOrFatal := func() harness.Scenario {
		sc, err := mk()
		if err != nil {
			t.Fatalf("Scenario: %v", err)
		}
		return sc
	}
	ref := runScenarioWithShards(t, mkOrFatal(), 1)
	for _, shards := range shardCounts()[1:] {
		got := runScenarioWithShards(t, mkOrFatal(), shards)
		compareTraces(t, ref, got)
	}
}

// Partition/heal schedule with delta INFO: the bulk of the protocol state
// space, exercised across every shard count.
func TestShardCountIdenticalEventTrace(t *testing.T) {
	checkShardCountTrace(t, NewSpec(ClassPartitionTrap, 7).Scenario)
}

// Byzantine adversaries rewrite traffic at the transmit seam on the
// sender's lane; their per-host RNG streams must keep every shard count
// on the same trace.
func TestShardCountIdenticalEventTraceByzantine(t *testing.T) {
	seed := int64(-1)
	for s := int64(0); s <= 60; s++ {
		if sp := NewSpec(ClassByzantine, s); !sp.ExpectViolation {
			seed = s
			break
		}
	}
	if seed < 0 {
		t.Fatal("no maskable byzantine seed in 0..60")
	}
	checkShardCountTrace(t, func() (harness.Scenario, error) {
		sc, err := NewSpec(ClassByzantine, seed).Scenario()
		if err == nil && len(sc.Adversaries) == 0 {
			t.Fatal("byzantine scenario carries no adversaries")
		}
		return sc, err
	})
}

// Catch-up sync with a mid-sync disruption arm: in-flight transfer
// windows and failover deadlines span epoch barriers, and must land on
// identical traces at every shard count.
func TestShardCountIdenticalEventTraceLateJoiner(t *testing.T) {
	seed := int64(-1)
	for s := int64(1); s <= 60; s++ {
		if len(NewSpec(ClassLateJoiner, s).Steps) > 2 {
			seed = s
			break
		}
	}
	if seed < 0 {
		t.Fatal("no late-joiner seed with a mid-sync arm in 1..60")
	}
	checkShardCountTrace(t, NewSpec(ClassLateJoiner, seed).Scenario)
}

// The full replay artifact — the SeedReport JSON a failing sweep prints
// for reproduction — must be byte-identical across shard counts, for
// several seeds of the mixed class. This is what makes `rbsoak -shards N`
// output diffable against any other shard count.
func TestShardCountIdenticalSeedReports(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		ref, err := json.Marshal(RunSpecShards(NewSpec(ClassMixed, seed), 1))
		if err != nil {
			t.Fatal(err)
		}
		for _, shards := range shardCounts()[1:] {
			got, err := json.Marshal(RunSpecShards(NewSpec(ClassMixed, seed), shards))
			if err != nil {
				t.Fatal(err)
			}
			if string(got) != string(ref) {
				t.Fatalf("seed %d: report JSON diverged between shards=1 and shards=%d:\n%s\nvs\n%s",
					seed, shards, ref, got)
			}
		}
	}
}
