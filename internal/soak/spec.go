// Package soak is a deterministic, parallel scenario-sweep engine. It
// generates seeded random broadcast scenarios — topology shape, cheap
// and expensive link mix, host placement, failure/recovery schedules,
// message workload, protocol parameters — shards them across a worker
// pool (one sim.Engine per worker, no shared state), runs each to
// convergence, and checks the full harness invariant suite after every
// run. Failing seeds are shrunk to a minimal reproducing spec and
// reported with a replay command line.
//
// Everything downstream of a seed is a pure function of that seed, so
// per-seed results are byte-identical regardless of worker count.
package soak

import (
	"fmt"
	"hash/fnv"
	"time"

	"rbcast/internal/adversary"
	"rbcast/internal/core"
	"rbcast/internal/detrand"
	"rbcast/internal/harness"
	"rbcast/internal/netsim"
	"rbcast/internal/replica"
	"rbcast/internal/sim"
	"rbcast/internal/topo"
)

// Class selects a scenario family.
type Class string

const (
	// ClassUniform is a static random lossy topology: no scheduled
	// failures, just link-level loss, duplication, and reordering.
	ClassUniform Class = "uniform"
	// ClassChurn cuts and restores random WAN links and host access
	// links while the workload runs.
	ClassChurn Class = "churn"
	// ClassPartition isolates whole clusters and heals them later.
	ClassPartition Class = "partition"
	// ClassMixed draws from all of the above.
	ClassMixed Class = "mixed"
	// ClassPartitionTrap deliberately violates the protocol's operating
	// assumptions: a cluster is partitioned and never healed, with a
	// short time budget. Every seed must fail the delivery invariant —
	// the class exists to prove the soak engine catches, shrinks, and
	// reports violations.
	ClassPartitionTrap Class = "partition-trap"
	// ClassRecovery exercises the per-peer health layer: one long
	// partition of a non-source cluster with backoff enabled, measuring
	// probes wasted into the partition and post-heal convergence latency.
	ClassRecovery Class = "recovery"
	// ClassByzantine places adversary-controlled hosts in the run. Most
	// seeds draw maskable behaviors (forged cost bits, stale replays,
	// selective silence, hostile junk frames) on non-source hosts —
	// lies the protocol's benign-failure machinery must absorb, so the
	// correct hosts still converge. The remaining seeds are traps: the
	// source itself equivocates, every delivered payload is forged, and
	// the seed passes only if the Byzantine invariants report it
	// (ExpectViolation semantics, the partition-trap pattern).
	ClassByzantine Class = "byzantine"
	// ClassLateJoiner exercises the catch-up sync layer: one host is
	// down from before the first broadcast and rejoins only after a long
	// history has been delivered — and, under liberated pruning, partly
	// pruned everywhere — so convergence requires snapshot transfer plus
	// range sync. Randomized arms re-partition the network mid-sync,
	// crash a healthy host (the joiner's likely sync source), or kill
	// and restart the joiner itself mid-transfer; each seed asserts the
	// joiner converges in sync rounds proportional to what it missed,
	// not to the history length.
	ClassLateJoiner Class = "late-joiner"
	// ClassByzantinePartition combines maskable adversaries with a
	// healed cluster partition: hostile hosts plus benign failures at
	// once, with correct-host delivery still required.
	ClassByzantinePartition Class = "byzantine-partition"
)

// Classes lists every scenario class.
func Classes() []Class {
	return []Class{ClassUniform, ClassChurn, ClassPartition, ClassMixed, ClassPartitionTrap,
		ClassRecovery, ClassLateJoiner, ClassByzantine, ClassByzantinePartition}
}

// ParseClass resolves a class name.
func ParseClass(s string) (Class, error) {
	for _, c := range Classes() {
		if string(c) == s {
			return c, nil
		}
	}
	return "", fmt.Errorf("soak: unknown class %q (have %v)", s, Classes())
}

// LinkSpec is a JSON-friendly netsim.LinkConfig.
type LinkSpec struct {
	DelayUS  int64   `json:"delay_us"`
	JitterUS int64   `json:"jitter_us"`
	Loss     float64 `json:"loss"`
	Dup      float64 `json:"dup"`
}

func linkSpecOf(cfg netsim.LinkConfig) LinkSpec {
	return LinkSpec{
		DelayUS:  cfg.Delay.Microseconds(),
		JitterUS: cfg.Jitter.Microseconds(),
		Loss:     cfg.LossProb,
		Dup:      cfg.DupProb,
	}
}

func (l LinkSpec) config(class netsim.LinkClass) netsim.LinkConfig {
	return netsim.LinkConfig{
		Class:    class,
		Delay:    time.Duration(l.DelayUS) * time.Microsecond,
		Jitter:   time.Duration(l.JitterUS) * time.Microsecond,
		LossProb: l.Loss,
		DupProb:  l.Dup,
	}
}

// StepKind names a scheduled scenario action.
type StepKind string

const (
	// StepCutWAN takes WAN link (Index mod #WAN-links) down.
	StepCutWAN StepKind = "cut-wan"
	// StepRestoreWAN brings that WAN link back up.
	StepRestoreWAN StepKind = "restore-wan"
	// StepHostDown cuts host Index's access link (never the source).
	StepHostDown StepKind = "host-down"
	// StepHostUp restores host Index's access link.
	StepHostUp StepKind = "host-up"
	// StepIsolateCluster cuts every WAN link touching cluster
	// (Index mod #clusters).
	StepIsolateCluster StepKind = "isolate-cluster"
	// StepHealCluster restores every WAN link touching that cluster.
	StepHealCluster StepKind = "heal-cluster"
)

// Step is one scheduled failure/recovery action.
type Step struct {
	AtMS  int64    `json:"at_ms"`
	Kind  StepKind `json:"kind"`
	Index int      `json:"index"`
}

// Spec fully describes one scenario. It is the unit the shrinker
// minimizes: Scenario() turns it into a runnable harness scenario
// deterministically, so two equal specs produce identical runs.
type Spec struct {
	Class string `json:"class"`
	Seed  int64  `json:"seed"`

	Clusters        int    `json:"clusters"`
	HostsPerCluster int    `json:"hosts_per_cluster"`
	Shape           string `json:"shape"`
	ExtraCheapLinks int    `json:"extra_cheap_links"`

	Cheap     LinkSpec `json:"cheap"`
	Expensive LinkSpec `json:"expensive"`
	HostLink  LinkSpec `json:"host_link"`

	Messages      int   `json:"messages"`
	MsgIntervalMS int64 `json:"msg_interval_ms"`
	PayloadSize   int   `json:"payload_size"`
	DrainMS       int64 `json:"drain_ms"`
	SettleMS      int64 `json:"settle_ms"`

	ParamScale   float64 `json:"param_scale"`
	GapFillBatch int     `json:"gap_fill_batch"`
	Piggyback    bool    `json:"piggyback"`
	PruneStable  bool    `json:"prune_stable"`

	// Backoff fields enable the core health layer when BackoffBaseMS is
	// positive (the recovery class always sets them; other classes leave
	// them zero, preserving fixed-rate scheduling).
	BackoffBaseMS     int64   `json:"backoff_base_ms,omitempty"`
	BackoffMaxMS      int64   `json:"backoff_max_ms,omitempty"`
	BackoffMultiplier float64 `json:"backoff_multiplier,omitempty"`
	SuspicionAfter    int     `json:"suspicion_after,omitempty"`

	// CatchupSync layers the reference catch-up tuning
	// (core.Params.WithCatchupSync, applied after ParamScale) on top of
	// the derived parameters; the late-joiner class always sets it.
	CatchupSync bool `json:"catchup_sync,omitempty"`
	// Replicate attaches a replica.Store to every host and broadcasts
	// encoded replica updates, so checkpoints carry real application
	// state (required for snapshot transfer to have anything to move).
	Replicate bool `json:"replicate,omitempty"`

	Steps []Step `json:"steps,omitempty"`

	// Adversaries places Byzantine behavior stacks on hosts (see
	// internal/adversary). Indices are positions in the host list, taken
	// modulo Hosts() so shrunk specs stay runnable; position 0 is the
	// source.
	Adversaries []AdversarySpec `json:"adversaries,omitempty"`
	// EchoReady enables the Bracha-flavoured hardening mode
	// (core.Params.EchoReady); EchoMaxFaulty is its assumed fault budget
	// (0 = ⌊(n−1)/3⌋).
	EchoReady     bool `json:"echo_ready,omitempty"`
	EchoMaxFaulty int  `json:"echo_max_faulty,omitempty"`
	// ExpectViolation inverts pass semantics: the adversary budget
	// exceeds what the protocol can mask, so the seed passes only if the
	// invariant checker reports a violation (recorded in
	// SeedReport.Detected). A silent monitor is the failure.
	ExpectViolation bool `json:"expect_violation,omitempty"`

	// FinalConnected reports whether the schedule leaves the network
	// whole, which is when the spanning/cluster-tree invariants apply.
	FinalConnected bool `json:"final_connected"`
}

// AdversarySpec is the JSON-friendly description of one Byzantine host.
type AdversarySpec struct {
	// HostIndex is the victim's position in the host list, modulo
	// Hosts(); position 0 is the source.
	HostIndex int `json:"host_index"`
	// Behaviors names the behavior stack, applied in order
	// (adversary.Names lists the vocabulary).
	Behaviors []string `json:"behaviors"`
	// Targets optionally scopes targeted behaviors (silence, equivocate)
	// to specific host positions, modulo Hosts().
	Targets []int `json:"targets,omitempty"`
	// Claim parameterizes lie-info (0 = the behavior's default).
	Claim uint64 `json:"claim,omitempty"`
}

// Hosts returns the total participant count.
func (sp Spec) Hosts() int { return sp.Clusters * sp.HostsPerCluster }

var wanShapes = map[string]topo.WANShape{
	"star": topo.WANStar, "chain": topo.WANChain, "tree": topo.WANTree,
	"mesh": topo.WANMesh, "ring": topo.WANRing,
}

var shapeNames = []string{"star", "chain", "tree", "mesh", "ring"}

// specRNG derives the generator's random source. The class participates
// so different classes explore different scenarios at the same seed.
func specRNG(class Class, seed int64) *detrand.Rand {
	h := fnv.New64a()
	fmt.Fprintf(h, "%s/%d", class, seed)
	return detrand.New(int64(h.Sum64()))
}

func randMS(rng *detrand.Rand, lo, hi int64) int64 {
	if hi <= lo {
		return lo
	}
	return lo + rng.Int63n(hi-lo+1)
}

// NewSpec generates the scenario for (class, seed). The draw ranges are
// deliberately conservative for the non-trap classes: every failure is
// paired with a recovery well before the horizon, loss stays within the
// bounds the protocol's periodic machinery can repair, and the drain is
// generous — so a failing seed indicates a protocol or simulator bug,
// not an impossible scenario.
func NewSpec(class Class, seed int64) Spec {
	rng := specRNG(class, seed)
	sp := Spec{
		Class: string(class),
		Seed:  seed,
	}
	needsPartition := class == ClassPartition || class == ClassPartitionTrap || class == ClassRecovery ||
		class == ClassLateJoiner || class == ClassByzantine || class == ClassByzantinePartition
	if needsPartition {
		sp.Clusters = 2 + rng.Intn(3) // 2..4: something to partition
	} else {
		sp.Clusters = 1 + rng.Intn(4) // 1..4
	}
	sp.HostsPerCluster = 1 + rng.Intn(4) // 1..4
	sp.Shape = shapeNames[rng.Intn(len(shapeNames))]
	sp.ExtraCheapLinks = rng.Intn(3)

	sp.Cheap = linkSpecOf(netsim.RandomLinkConfig(rng, netsim.Cheap, netsim.DefaultCheapBounds()))
	sp.Expensive = linkSpecOf(netsim.RandomLinkConfig(rng, netsim.Expensive, netsim.DefaultExpensiveBounds()))
	sp.HostLink = linkSpecOf(netsim.RandomLinkConfig(rng, netsim.Cheap, netsim.RandomLinkBounds{
		MinDelay: 200 * time.Microsecond,
		MaxDelay: time.Millisecond,
		MaxLoss:  0.02,
		MaxDup:   0.01,
	}))

	sp.Messages = 4 + rng.Intn(20)
	sp.MsgIntervalMS = randMS(rng, 80, 280)
	sp.PayloadSize = 16 + rng.Intn(240)
	sp.DrainMS = randMS(rng, 25_000, 40_000)
	sp.SettleMS = 5_000

	sp.ParamScale = 0.5 + 1.5*rng.Float64()
	sp.GapFillBatch = 16 + rng.Intn(113)
	sp.Piggyback = rng.Intn(2) == 0
	sp.PruneStable = rng.Intn(2) == 0

	churn := class == ClassChurn || (class == ClassMixed && rng.Intn(2) == 0)
	partition := class == ClassPartition || (class == ClassMixed && rng.Intn(2) == 0)
	if churn {
		for i, n := 0, 1+rng.Intn(3); i < n; i++ {
			cut := randMS(rng, 2_000, 12_000)
			sp.Steps = append(sp.Steps,
				Step{AtMS: cut, Kind: StepCutWAN, Index: rng.Intn(16)},
				Step{AtMS: cut + randMS(rng, 1_000, 6_000), Kind: StepRestoreWAN, Index: 0})
			// Restore targets the same link: Index is patched below.
			sp.Steps[len(sp.Steps)-1].Index = sp.Steps[len(sp.Steps)-2].Index
		}
		if sp.Hosts() > 1 && rng.Intn(2) == 0 {
			// Crash a non-source host (Index is a position in Topology.Hosts;
			// position 0 is the source) and bring it back.
			victim := 1 + rng.Intn(sp.Hosts()-1)
			down := randMS(rng, 2_000, 10_000)
			sp.Steps = append(sp.Steps,
				Step{AtMS: down, Kind: StepHostDown, Index: victim},
				Step{AtMS: down + randMS(rng, 500, 4_000), Kind: StepHostUp, Index: victim})
		}
	}
	if partition {
		for i, n := 0, 1+rng.Intn(2); i < n; i++ {
			c := rng.Intn(sp.Clusters)
			at := randMS(rng, 2_000, 8_000)
			sp.Steps = append(sp.Steps,
				Step{AtMS: at, Kind: StepIsolateCluster, Index: c},
				Step{AtMS: at + randMS(rng, 2_000, 8_000), Kind: StepHealCluster, Index: c})
		}
	}
	sp.FinalConnected = true
	if class == ClassPartitionTrap {
		// Permanent partition of a non-source cluster before the workload
		// starts, and far too little drain for a cure that cannot come.
		sp.Steps = []Step{{
			AtMS: randMS(rng, 1_000, 2_500), Kind: StepIsolateCluster,
			Index: 1 + rng.Intn(sp.Clusters-1),
		}}
		sp.DrainMS = randMS(rng, 3_000, 5_000)
		sp.FinalConnected = false
	}
	if class == ClassRecovery {
		// One long partition of a non-source cluster, healed well before
		// the horizon, with the health layer enabled so probes toward the
		// cut cluster back off and the heal is detected via fast resync.
		c := 1 + rng.Intn(sp.Clusters-1)
		cut := randMS(rng, 2_000, 5_000)
		heal := cut + randMS(rng, 10_000, 20_000)
		sp.Steps = []Step{
			{AtMS: cut, Kind: StepIsolateCluster, Index: c},
			{AtMS: heal, Kind: StepHealCluster, Index: c},
		}
		sp.DrainMS = heal + randMS(rng, 25_000, 40_000)
		sp.BackoffBaseMS = randMS(rng, 400, 1200)
		sp.BackoffMaxMS = sp.BackoffBaseMS * (4 + rng.Int63n(5)) // 4..8× base
		sp.BackoffMultiplier = 1.5 + rng.Float64()               // 1.5..2.5
		sp.SuspicionAfter = 1 + rng.Intn(3)                      // 1..3
	}
	if class == ClassLateJoiner {
		sp.CatchupSync = true
		sp.Replicate = true
		sp.PruneStable = true
		// A long history delivered quickly, so the joiner's gap is large
		// and (with checkpointing on) partly pruned before it returns.
		sp.Messages = 60 + rng.Intn(120)
		sp.MsgIntervalMS = randMS(rng, 40, 120)
		joiner := 1 + rng.Intn(sp.Hosts()-1) // never position 0 (the source)
		workloadEnd := int64(sp.Messages) * sp.MsgIntervalMS
		join := workloadEnd + randMS(rng, 2_000, 8_000)
		sp.Steps = []Step{
			{AtMS: 1, Kind: StepHostDown, Index: joiner},
			{AtMS: join, Kind: StepHostUp, Index: joiner},
		}
		if rng.Intn(3) == 0 {
			// Mid-sync partition: a non-source cluster is cut shortly after
			// the join and healed a few seconds later; transfers crossing it
			// must time out, fail over or resume.
			c := 1 + rng.Intn(sp.Clusters-1)
			at := join + randMS(rng, 500, 3_000)
			sp.Steps = append(sp.Steps,
				Step{AtMS: at, Kind: StepIsolateCluster, Index: c},
				Step{AtMS: at + randMS(rng, 2_000, 6_000), Kind: StepHealCluster, Index: c})
		}
		if sp.Hosts() > 2 && rng.Intn(3) == 0 {
			// Sync-source crash: a healthy host — quite possibly the peer
			// the joiner is pulling from — goes silent mid-sync.
			victim := 1 + rng.Intn(sp.Hosts()-1)
			for victim == joiner {
				victim = 1 + rng.Intn(sp.Hosts()-1)
			}
			at := join + randMS(rng, 500, 3_000)
			sp.Steps = append(sp.Steps,
				Step{AtMS: at, Kind: StepHostDown, Index: victim},
				Step{AtMS: at + randMS(rng, 2_000, 5_000), Kind: StepHostUp, Index: victim})
		}
		if rng.Intn(3) == 0 {
			// Kill/restart the joiner itself mid-sync: on return the
			// transfer must resume from the verified prefix, not restart.
			at := join + randMS(rng, 300, 2_000)
			sp.Steps = append(sp.Steps,
				Step{AtMS: at, Kind: StepHostDown, Index: joiner},
				Step{AtMS: at + randMS(rng, 500, 2_500), Kind: StepHostUp, Index: joiner})
		}
		sp.DrainMS = join + randMS(rng, 35_000, 50_000)
	}
	if class == ClassByzantine {
		if rng.Intn(10) < 3 {
			// Trap arm: the SOURCE equivocates to every destination, so
			// every payload a correct host delivers is forged and the
			// byz-forged-frame invariant must fire on every seed — the
			// partition-trap analogue proving the monitor reports what the
			// protocol cannot mask.
			sp.Adversaries = []AdversarySpec{{HostIndex: 0, Behaviors: []string{"equivocate"}}}
			sp.ExpectViolation = true
		} else {
			sp.Adversaries = maskableAdversaries(rng, sp.Hosts())
			if sp.Hosts() >= 4 && rng.Intn(3) == 0 {
				// Some maskable seeds also run the hardening mode, proving
				// the quorum machinery stays live under hostile traffic.
				sp.EchoReady = true
			}
		}
	}
	if class == ClassByzantinePartition {
		sp.Adversaries = maskableAdversaries(rng, sp.Hosts())
		c := 1 + rng.Intn(sp.Clusters-1)
		at := randMS(rng, 2_000, 8_000)
		sp.Steps = append(sp.Steps,
			Step{AtMS: at, Kind: StepIsolateCluster, Index: c},
			Step{AtMS: at + randMS(rng, 2_000, 8_000), Kind: StepHealCluster, Index: c})
	}
	return sp
}

// maskableAdversaries draws one or two non-source adversaries running
// behaviors the protocol's benign-failure machinery should absorb:
// forged cost bits, stale replays, selective silence toward a couple of
// peers, hostile junk frames. Equivocation and INFO lies are excluded —
// those violate guarantees and belong to the trap arm.
func maskableAdversaries(rng *detrand.Rand, hosts int) []AdversarySpec {
	kinds := []string{"forge-cost-bit", "replay", "silence", "hostile-wire"}
	n := 1
	if hosts > 4 && rng.Intn(2) == 0 {
		n = 2
	}
	used := map[int]bool{}
	var out []AdversarySpec
	for i := 0; i < n; i++ {
		idx := 1 + rng.Intn(hosts-1) // never the source
		for used[idx] {
			idx = 1 + rng.Intn(hosts-1)
		}
		used[idx] = true
		a := AdversarySpec{HostIndex: idx}
		for j, nb := 0, 1+rng.Intn(2); j < nb; j++ {
			k := kinds[rng.Intn(len(kinds))]
			if hasString(a.Behaviors, k) {
				continue
			}
			if k == "silence" {
				// Selective silence toward one or two NON-SOURCE peers. The
				// source stays reachable on purpose: an adversary holding the
				// top static order can only re-attach upward to the source
				// once starved, so silencing that edge wedges it unattached
				// forever and permanently starves every correct host chained
				// below it — an asymmetric partition outside the paper's
				// benign model, i.e. not maskable.
				for t, nt := 0, 1+rng.Intn(2); t < nt; t++ {
					a.Targets = append(a.Targets, 1+rng.Intn(hosts-1))
				}
			}
			a.Behaviors = append(a.Behaviors, k)
		}
		out = append(out, a)
	}
	return out
}

func hasString(xs []string, s string) bool {
	for _, x := range xs {
		if x == s {
			return true
		}
	}
	return false
}

// params derives the protocol tuning from the spec: the reference
// tuning with every period scaled by ParamScale (ratios — and therefore
// Params.Validate constraints — are preserved).
func (sp Spec) params() core.Params {
	p := core.DefaultParams()
	scale := func(d time.Duration) time.Duration {
		return time.Duration(float64(d) * sp.ParamScale)
	}
	p.TickInterval = scale(p.TickInterval)
	p.AttachPeriod = scale(p.AttachPeriod)
	p.InfoClusterPeriod = scale(p.InfoClusterPeriod)
	p.InfoRemotePeriod = scale(p.InfoRemotePeriod)
	p.InfoGlobalPeriod = scale(p.InfoGlobalPeriod)
	p.GapClusterPeriod = scale(p.GapClusterPeriod)
	p.GapRemotePeriod = scale(p.GapRemotePeriod)
	p.GapGlobalPeriod = scale(p.GapGlobalPeriod)
	p.AttachTimeout = scale(p.AttachTimeout)
	p.ParentTimeout = scale(p.ParentTimeout)
	if sp.CatchupSync {
		// After scaling, so SyncTimeout/SyncPeriod keep their ratios to
		// the INFO and gap-fill periods they are derived from.
		p = p.WithCatchupSync()
	}
	if sp.GapFillBatch > 0 {
		p.GapFillBatch = sp.GapFillBatch
	}
	p.Piggyback = sp.Piggyback
	p.PruneStable = sp.PruneStable
	if sp.BackoffBaseMS > 0 {
		p.BackoffBase = time.Duration(sp.BackoffBaseMS) * time.Millisecond
		p.BackoffMax = time.Duration(sp.BackoffMaxMS) * time.Millisecond
		p.BackoffMultiplier = sp.BackoffMultiplier
		p.SuspicionAfter = sp.SuspicionAfter
	}
	p.EchoReady = sp.EchoReady
	p.EchoMaxFaulty = sp.EchoMaxFaulty
	return p
}

// Scenario turns the spec into a runnable harness scenario. Step indices
// are interpreted modulo whatever the built topology actually has, so a
// shrunk spec with out-of-range indices stays runnable.
func (sp Spec) Scenario() (harness.Scenario, error) {
	if sp.Clusters < 1 || sp.HostsPerCluster < 1 {
		return harness.Scenario{}, fmt.Errorf("soak: empty topology %dx%d", sp.Clusters, sp.HostsPerCluster)
	}
	shape, ok := wanShapes[sp.Shape]
	if !ok {
		return harness.Scenario{}, fmt.Errorf("soak: unknown shape %q", sp.Shape)
	}
	if err := sp.params().Validate(); err != nil {
		return harness.Scenario{}, err
	}
	// The source must carry the maximal static order: attachment's
	// similar-INFO option only ever climbs the order, so with the default
	// ID order a host in the source's cluster that drifted to a
	// cross-cluster parent could never rejoin the source once all INFO
	// sets equalize — leaving the root cluster with two stable leaders.
	// Host IDs are 1..Hosts() with the source at 1.
	order := make(map[core.HostID]int, sp.Hosts())
	for i := 1; i <= sp.Hosts(); i++ {
		order[core.HostID(i)] = i
	}
	order[1] = sp.Hosts() + 1
	sc := harness.Scenario{
		Name:  fmt.Sprintf("soak/%s/%d", sp.Class, sp.Seed),
		Seed:  sp.Seed,
		Order: order,
		Build: func(eng sim.Loop) (*topo.Topology, error) {
			t, err := topo.Clustered(eng, topo.ClusteredConfig{
				Clusters:        sp.Clusters,
				HostsPerCluster: sp.HostsPerCluster,
				Shape:           shape,
				Cheap:           sp.Cheap.config(netsim.Cheap),
				Expensive:       sp.Expensive.config(netsim.Expensive),
				HostLink:        sp.HostLink.config(netsim.Cheap),
			})
			if err != nil {
				return nil, err
			}
			if sp.ExtraCheapLinks > 0 {
				// Redundant intra-cluster links, from a build-local source so
				// the engine's rng stream is untouched.
				buildRNG := detrand.New(sp.Seed ^ 0x5eed50a4)
				for _, servers := range t.ServersByCluster {
					if _, err := t.Net.AddRandomLinks(buildRNG, servers,
						sp.ExtraCheapLinks, sp.Cheap.config(netsim.Cheap)); err != nil {
						return nil, err
					}
				}
			}
			return t, nil
		},
		Protocol:         harness.ProtocolTree,
		Params:           sp.params(),
		Messages:         sp.Messages,
		MsgInterval:      time.Duration(sp.MsgIntervalMS) * time.Millisecond,
		PayloadSize:      sp.PayloadSize,
		Drain:            time.Duration(sp.DrainMS) * time.Millisecond,
		StopWhenComplete: true,
	}
	if sp.Replicate {
		sc.Replicate = true
		sc.PayloadFor = replicaWorkload(16)
	}
	for _, st := range sp.Steps {
		st := st
		sc.Events = append(sc.Events, harness.TimedEvent{
			At: time.Duration(st.AtMS) * time.Millisecond,
			Do: func(rt *harness.Runtime) error { return applyStep(rt, st) },
		})
	}
	if len(sp.Adversaries) > 0 {
		adv := make(map[core.HostID][]adversary.Behavior, len(sp.Adversaries))
		for _, a := range sp.Adversaries {
			// Host IDs are 1..Hosts(); indices wrap so shrunk specs stay
			// runnable.
			id := core.HostID(a.HostIndex%sp.Hosts() + 1)
			var targets []core.HostID
			for _, t := range a.Targets {
				targets = append(targets, core.HostID(t%sp.Hosts()+1))
			}
			for _, name := range a.Behaviors {
				b, err := adversary.New(name, targets, a.Claim)
				if err != nil {
					return harness.Scenario{}, err
				}
				adv[id] = append(adv[id], b)
			}
		}
		sc.Adversaries = adv
	}
	return sc, nil
}

// replicaWorkload is the deterministic replicated-register workload for
// Replicate specs: updates over a bounded key space with monotone
// stamps, so every store converges to the same winners and a checkpoint
// is state-sized (O(keys)), not history-sized.
func replicaWorkload(keys int) func(i int) []byte {
	return func(i int) []byte {
		enc, err := replica.EncodeUpdate(replica.Update{
			Key:   fmt.Sprintf("k%02d", i%keys),
			Value: fmt.Sprintf("v%05d", i),
			Stamp: uint64(i + 1),
		})
		if err != nil {
			panic(err)
		}
		return enc
	}
}

func applyStep(rt *harness.Runtime, st Step) error {
	switch st.Kind {
	case StepCutWAN, StepRestoreWAN:
		links := rt.Topo.WANLinks
		if len(links) == 0 {
			return nil
		}
		return rt.Net.SetLinkUp(links[st.Index%len(links)], st.Kind == StepRestoreWAN)
	case StepHostDown, StepHostUp:
		hosts := rt.Topo.Hosts
		if len(hosts) == 0 {
			return nil
		}
		h := hosts[st.Index%len(hosts)]
		if h == rt.Topo.Source {
			return nil // never crash the source: delivery would be unjudgeable
		}
		return rt.Net.SetHostLinkUp(h, st.Kind == StepHostUp)
	case StepIsolateCluster:
		_, err := rt.Topo.IsolateCluster(st.Index % maxInt(1, len(rt.Topo.HostsByCluster)))
		return err
	case StepHealCluster:
		c := st.Index % maxInt(1, len(rt.Topo.HostsByCluster))
		return rt.Topo.RestoreLinks(rt.Topo.WANLinksOfCluster(c))
	default:
		return fmt.Errorf("soak: unknown step kind %q", st.Kind)
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
