package soak

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"

	"rbcast/internal/metrics"
)

// ReplayCommand returns a command line that re-runs exactly one seed,
// single-worker, verbosely — the deterministic reproduction of a sweep
// failure.
func ReplayCommand(class Class, seed int64) string {
	return fmt.Sprintf("go run ./cmd/rbsoak -class %s -seeds %d -count 1 -workers 1 -v", class, seed)
}

// Table renders the sweep overview.
func (s *Summary) Table() string {
	var (
		delivered, sends, events uint64
		completeMS               int64
		completed                int
	)
	for _, r := range s.Reports {
		delivered += uint64(r.Delivered)
		sends += r.TotalSends
		events += r.EventsRun
		if r.CompleteAtMS > 0 {
			completeMS += r.CompleteAtMS
			completed++
		}
	}
	failures := s.Failures()
	t := metrics.NewTable("metric", "value")
	t.AddRow("class", string(s.Class))
	t.AddRow("seeds", fmt.Sprintf("%d..%d", s.SeedStart, s.SeedStart+int64(s.Requested)-1))
	t.AddRow("scenarios run", len(s.Reports))
	t.AddRow("workers", s.Workers)
	t.AddRow("passed", len(s.Reports)-len(failures))
	t.AddRow("failed", len(failures))
	t.AddRow("elapsed", s.Elapsed)
	t.AddRow("scenarios/sec", metrics.PerSecond(uint64(len(s.Reports)), s.Elapsed))
	t.AddRow("sim events/sec", metrics.PerSecond(events, s.Elapsed))
	t.AddRow("deliveries", delivered)
	t.AddRow("protocol sends", sends)
	if completed > 0 {
		t.AddRow("mean completion (virtual)",
			time.Duration(completeMS/int64(completed))*time.Millisecond)
	}
	return t.String()
}

// WriteCSV emits one row per seed, ready for external analysis. The
// byte stream is deterministic for a given class and seed range.
func (s *Summary) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{
		"seed", "pass", "hosts", "clusters", "messages", "delivered", "expected",
		"complete_at_ms", "mean_delay_us", "p99_delay_us", "total_sends",
		"events_run", "unreachable_sends", "suppressed_sends", "resync_bursts",
		"post_heal_ms", "sync_rounds", "sync_failovers", "snap_resumes",
		"snap_installs", "catchup_wire_bytes",
		"equivocations", "foreign_deliveries", "detected", "violations",
	}); err != nil {
		return err
	}
	for _, r := range s.Reports {
		if err := cw.Write([]string{
			strconv.FormatInt(r.Seed, 10),
			strconv.FormatBool(r.Pass),
			strconv.Itoa(r.Hosts),
			strconv.Itoa(r.Clusters),
			strconv.Itoa(r.Messages),
			strconv.Itoa(r.Delivered),
			strconv.Itoa(r.Expected),
			strconv.FormatInt(r.CompleteAtMS, 10),
			strconv.FormatInt(r.MeanDelayUS, 10),
			strconv.FormatInt(r.P99DelayUS, 10),
			strconv.FormatUint(r.TotalSends, 10),
			strconv.FormatUint(r.EventsRun, 10),
			strconv.FormatUint(r.UnreachableSends, 10),
			strconv.FormatUint(r.SuppressedSends, 10),
			strconv.FormatUint(r.ResyncBursts, 10),
			strconv.FormatInt(r.PostHealMS, 10),
			strconv.FormatUint(r.SyncRounds, 10),
			strconv.FormatUint(r.SyncFailovers, 10),
			strconv.FormatUint(r.SnapResumes, 10),
			strconv.FormatUint(r.SnapInstalls, 10),
			strconv.FormatUint(r.CatchupWireBytes, 10),
			strconv.FormatUint(r.Equivocations, 10),
			strconv.Itoa(r.ForeignDeliveries),
			strings.Join(r.Detected, "; "),
			strings.Join(r.Violations, "; "),
		}); err != nil {
			return err
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return fmt.Errorf("soak: writing CSV: %w", err)
	}
	return nil
}

// WriteJSON emits the full summary, specs included.
func (s *Summary) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// FailureText renders one failure with its replay command and, when a
// shrink pass ran, the minimal reproducing spec.
func FailureText(class Class, rep SeedReport, shrunk *ShrinkResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "seed %d FAILED (%d hosts, %d clusters, %d messages):\n",
		rep.Seed, rep.Hosts, rep.Clusters, rep.Messages)
	for _, v := range rep.Violations {
		fmt.Fprintf(&b, "  violation: %s\n", v)
	}
	fmt.Fprintf(&b, "  replay: %s\n", ReplayCommand(class, rep.Seed))
	if shrunk != nil && shrunk.Reduced {
		fmt.Fprintf(&b, "  shrunk to %d hosts, %d clusters, %d messages, %d steps (%d attempts):\n",
			shrunk.Spec.Hosts(), shrunk.Spec.Clusters, shrunk.Spec.Messages,
			len(shrunk.Spec.Steps), shrunk.Attempts)
		if data, err := json.MarshalIndent(shrunk.Spec, "    ", "  "); err == nil {
			fmt.Fprintf(&b, "    %s\n", data)
		}
	}
	return b.String()
}
