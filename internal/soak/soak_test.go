package soak

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

// TestSoakSmoke is the tier-1 entry point: a small sweep of the mixed
// class must come back all-pass. Anything else is a protocol or
// simulator regression.
func TestSoakSmoke(t *testing.T) {
	sum, err := Run(Config{Class: ClassMixed, SeedStart: 1, Seeds: 25})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if got := len(sum.Reports); got != 25 {
		t.Fatalf("got %d reports, want 25", got)
	}
	for _, f := range sum.Failures() {
		t.Errorf("seed %d failed: %v\n  replay: %s",
			f.Seed, f.Violations, ReplayCommand(ClassMixed, f.Seed))
	}
	for _, r := range sum.Reports {
		if r.Delivered == 0 || r.Expected == 0 {
			t.Errorf("seed %d: empty delivery accounting (%d/%d)", r.Seed, r.Delivered, r.Expected)
		}
		if r.EventsRun == 0 {
			t.Errorf("seed %d: zero simulation events", r.Seed)
		}
	}
}

// TestDeterministicAcrossWorkers is the sharding guarantee: per-seed
// results must be byte-identical no matter how many workers ran the
// sweep.
func TestDeterministicAcrossWorkers(t *testing.T) {
	marshal := func(workers int) []byte {
		sum, err := Run(Config{Class: ClassChurn, SeedStart: 40, Seeds: 12, Workers: workers})
		if err != nil {
			t.Fatalf("Run(workers=%d): %v", workers, err)
		}
		data, err := json.Marshal(sum.Reports)
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		return data
	}
	one := marshal(1)
	four := marshal(4)
	if !bytes.Equal(one, four) {
		t.Fatalf("reports differ between 1 and 4 workers:\n1: %s\n4: %s", one, four)
	}
}

// TestCSVDeterministic pins the other sweep artifact: the CSV byte
// stream is a pure function of (class, seed range).
func TestCSVDeterministic(t *testing.T) {
	render := func(workers int) string {
		sum, err := Run(Config{Class: ClassUniform, SeedStart: 7, Seeds: 6, Workers: workers})
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		var buf bytes.Buffer
		if err := sum.WriteCSV(&buf); err != nil {
			t.Fatalf("WriteCSV: %v", err)
		}
		return buf.String()
	}
	if a, b := render(1), render(3); a != b {
		t.Fatalf("CSV differs between worker counts:\n%s\nvs\n%s", a, b)
	}
}

// TestPartitionTrapCaught proves the engine catches a planted violation:
// every partition-trap seed leaves one cluster permanently isolated, so
// the delivery invariant must fail, the shrinker must reproduce the same
// invariant on a reduced spec, and the replay command must name the
// exact failing seed.
func TestPartitionTrapCaught(t *testing.T) {
	const seed = 3
	rep := RunSeed(ClassPartitionTrap, seed)
	if rep.Pass {
		t.Fatalf("partition-trap seed %d passed; want delivery violation", seed)
	}
	if !hasInvariant(rep.Violations, "delivery") {
		t.Fatalf("violations %v lack the delivery invariant", rep.Violations)
	}

	sh := Shrink(NewSpec(ClassPartitionTrap, seed), 48)
	if !hasInvariant(sh.Violations, "delivery") {
		t.Fatalf("shrunk violations %v lack the delivery invariant", sh.Violations)
	}
	if sh.Attempts == 0 {
		t.Fatal("shrinker made no attempts")
	}
	if !sh.Reduced {
		t.Fatalf("shrinker failed to reduce the trap spec (attempts=%d)", sh.Attempts)
	}
	orig := NewSpec(ClassPartitionTrap, seed)
	if sh.Spec.Hosts() > orig.Hosts() || sh.Spec.Messages > orig.Messages {
		t.Fatalf("shrunk spec grew: %d hosts/%d msgs vs %d/%d",
			sh.Spec.Hosts(), sh.Spec.Messages, orig.Hosts(), orig.Messages)
	}
	// The shrunk spec must still be runnable and still fail.
	if rerun := RunSpec(sh.Spec); rerun.Pass {
		t.Fatal("shrunk spec passes on rerun")
	}

	cmd := ReplayCommand(ClassPartitionTrap, seed)
	for _, want := range []string{"rbsoak", "-class partition-trap", "-seeds 3", "-count 1", "-workers 1"} {
		if !strings.Contains(cmd, want) {
			t.Errorf("replay command %q lacks %q", cmd, want)
		}
	}
	// And the replay path (RunSeed on the named class and seed) must
	// reproduce the failure, violation for violation.
	again := RunSeed(ClassPartitionTrap, seed)
	if again.Pass {
		t.Fatal("replay passed")
	}
	a, _ := json.Marshal(rep)
	b, _ := json.Marshal(again)
	if !bytes.Equal(a, b) {
		t.Fatalf("replay diverged:\n%s\nvs\n%s", a, b)
	}
}

// TestBudgetStopsDispatch: an exhausted budget stops feeding seeds to
// the pool but never truncates in-flight work.
func TestBudgetStopsDispatch(t *testing.T) {
	sum, err := Run(Config{Class: ClassUniform, SeedStart: 1, Seeds: 500, Workers: 2, Budget: time.Nanosecond})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(sum.Reports) >= 500 {
		t.Fatalf("budget of 1ns ran all %d seeds", len(sum.Reports))
	}
	for _, r := range sum.Reports {
		if !r.Pass {
			t.Errorf("seed %d failed: %v", r.Seed, r.Violations)
		}
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := Run(Config{Class: ClassUniform}); err == nil {
		t.Error("Run with zero Seeds succeeded")
	}
	if _, err := Run(Config{Class: Class("nope"), Seeds: 1}); err == nil {
		t.Error("Run with unknown class succeeded")
	}
}

func TestParseClass(t *testing.T) {
	for _, c := range Classes() {
		got, err := ParseClass(string(c))
		if err != nil || got != c {
			t.Errorf("ParseClass(%q) = %v, %v", c, got, err)
		}
	}
	if _, err := ParseClass("bogus"); err == nil {
		t.Error("ParseClass accepted an unknown class")
	}
}

// TestSpecStable pins the generator: a spec is a pure function of
// (class, seed), and distinct seeds explore distinct scenarios.
func TestSpecStable(t *testing.T) {
	a, _ := json.Marshal(NewSpec(ClassMixed, 99))
	b, _ := json.Marshal(NewSpec(ClassMixed, 99))
	if !bytes.Equal(a, b) {
		t.Fatalf("NewSpec not deterministic:\n%s\nvs\n%s", a, b)
	}
	c, _ := json.Marshal(NewSpec(ClassMixed, 100))
	if bytes.Equal(a, c) {
		t.Fatal("seeds 99 and 100 generated identical specs")
	}
}

// TestTrapSpecShape: every trap spec plants a permanent partition and
// declares itself disconnected.
func TestTrapSpecShape(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		sp := NewSpec(ClassPartitionTrap, seed)
		if sp.FinalConnected {
			t.Errorf("seed %d: trap spec claims FinalConnected", seed)
		}
		if len(sp.Steps) != 1 || sp.Steps[0].Kind != StepIsolateCluster {
			t.Errorf("seed %d: trap steps = %v", seed, sp.Steps)
		}
		if sp.Steps[0].Index == 0 {
			t.Errorf("seed %d: trap isolates the source cluster", seed)
		}
	}
}

// TestRecoverySpecShape: every recovery spec plants exactly one
// isolate/heal pair on a non-source cluster, enables backoff, and keeps
// the horizon past the heal.
func TestRecoverySpecShape(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		sp := NewSpec(ClassRecovery, seed)
		if !sp.FinalConnected {
			t.Errorf("seed %d: recovery spec claims disconnected final state", seed)
		}
		if len(sp.Steps) != 2 ||
			sp.Steps[0].Kind != StepIsolateCluster || sp.Steps[1].Kind != StepHealCluster {
			t.Fatalf("seed %d: recovery steps = %v", seed, sp.Steps)
		}
		if sp.Steps[0].Index == 0 || sp.Steps[0].Index != sp.Steps[1].Index {
			t.Errorf("seed %d: bad partition target: %v", seed, sp.Steps)
		}
		if sp.Steps[1].AtMS <= sp.Steps[0].AtMS || sp.DrainMS <= sp.Steps[1].AtMS {
			t.Errorf("seed %d: heal at %d not inside (cut %d, drain %d)",
				seed, sp.Steps[1].AtMS, sp.Steps[0].AtMS, sp.DrainMS)
		}
		if sp.BackoffBaseMS <= 0 || sp.BackoffMaxMS < sp.BackoffBaseMS ||
			sp.BackoffMultiplier < 1 || sp.SuspicionAfter < 1 {
			t.Errorf("seed %d: backoff fields invalid: %+v", seed, sp)
		}
		if err := sp.params().Validate(); err != nil {
			t.Errorf("seed %d: generated params invalid: %v", seed, err)
		}
	}
}

// TestRecoverySoak runs a small recovery sweep: every seed must survive
// its long partition and converge after the heal, with the health layer
// demonstrably active somewhere in the sweep.
func TestRecoverySoak(t *testing.T) {
	sum, err := Run(Config{Class: ClassRecovery, SeedStart: 1, Seeds: 8})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	for _, f := range sum.Failures() {
		t.Errorf("seed %d failed: %v\n  replay: %s",
			f.Seed, f.Violations, ReplayCommand(ClassRecovery, f.Seed))
	}
	var suppressed, resyncs uint64
	for _, r := range sum.Reports {
		suppressed += r.SuppressedSends
		resyncs += r.ResyncBursts
		if r.Pass && r.CompleteAtMS > 0 && r.PostHealMS == 0 && r.CompleteAtMS > r.Spec.Steps[1].AtMS {
			t.Errorf("seed %d: PostHealMS unset despite completion at %d after heal at %d",
				r.Seed, r.CompleteAtMS, r.Spec.Steps[1].AtMS)
		}
	}
	if suppressed == 0 {
		t.Error("no seed suppressed any sends — health layer inert across the sweep")
	}
	if resyncs == 0 {
		t.Error("no seed performed a fast-resync burst across the sweep")
	}
}

// TestRecoveryDeterministicAcrossWorkers extends the sharding guarantee
// to the backoff-enabled class: deterministic jitter means per-seed
// reports stay byte-identical regardless of worker count.
func TestRecoveryDeterministicAcrossWorkers(t *testing.T) {
	marshal := func(workers int) []byte {
		sum, err := Run(Config{Class: ClassRecovery, SeedStart: 30, Seeds: 6, Workers: workers})
		if err != nil {
			t.Fatalf("Run(workers=%d): %v", workers, err)
		}
		data, err := json.Marshal(sum.Reports)
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		return data
	}
	one := marshal(1)
	four := marshal(4)
	if !bytes.Equal(one, four) {
		t.Fatalf("recovery reports differ between 1 and 4 workers:\n1: %s\n4: %s", one, four)
	}
}

// TestLateJoinerSpecShape: every late-joiner spec takes one non-source
// host down before the workload and brings it back only after the whole
// history is out, with catch-up sync, replication, and pruning enabled
// and the horizon comfortably past the join.
func TestLateJoinerSpecShape(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		sp := NewSpec(ClassLateJoiner, seed)
		if !sp.CatchupSync || !sp.Replicate || !sp.PruneStable {
			t.Errorf("seed %d: catch-up knobs not all set: %+v", seed, sp)
		}
		if !sp.FinalConnected {
			t.Errorf("seed %d: late-joiner spec claims disconnected final state", seed)
		}
		if len(sp.Steps) < 2 || sp.Steps[0].Kind != StepHostDown || sp.Steps[0].AtMS != 1 {
			t.Fatalf("seed %d: steps do not start with an immediate host-down: %v", seed, sp.Steps)
		}
		if sp.Steps[0].Index == 0 {
			t.Errorf("seed %d: joiner is the source", seed)
		}
		join := sp.Steps[1]
		if join.Kind != StepHostUp || join.Index != sp.Steps[0].Index {
			t.Fatalf("seed %d: second step is not the joiner's return: %v", seed, sp.Steps)
		}
		workloadEnd := int64(sp.Messages) * sp.MsgIntervalMS
		if join.AtMS <= workloadEnd {
			t.Errorf("seed %d: join at %dms inside the workload (ends %dms)", seed, join.AtMS, workloadEnd)
		}
		if sp.DrainMS <= join.AtMS {
			t.Errorf("seed %d: drain %dms not past the join %dms", seed, sp.DrainMS, join.AtMS)
		}
		for _, st := range sp.Steps[2:] {
			if st.AtMS <= join.AtMS && st.Kind != StepHostUp {
				t.Errorf("seed %d: arm step %v fires before the join", seed, st)
			}
		}
		if err := sp.params().Validate(); err != nil {
			t.Errorf("seed %d: generated params invalid: %v", seed, err)
		}
		if !sp.params().SnapshotsEnabled() {
			t.Errorf("seed %d: snapshots not enabled by derived params", seed)
		}
	}
}

// TestLateJoinerSoak runs a small late-joiner sweep: every seed must
// converge (the per-seed O(missing) round budget is checked inside
// RunSpec), and snapshot transfer must demonstrably fire somewhere in
// the sweep — otherwise the class is not exercising the catch-up path.
func TestLateJoinerSoak(t *testing.T) {
	sum, err := Run(Config{Class: ClassLateJoiner, SeedStart: 1, Seeds: 6})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	for _, f := range sum.Failures() {
		t.Errorf("seed %d failed: %v\n  replay: %s",
			f.Seed, f.Violations, ReplayCommand(ClassLateJoiner, f.Seed))
	}
	var rounds, installs uint64
	for _, r := range sum.Reports {
		rounds += r.SyncRounds
		installs += r.SnapInstalls
	}
	if rounds == 0 {
		t.Error("no seed issued a sync round — catch-up layer inert across the sweep")
	}
	if installs == 0 {
		t.Error("no seed installed a snapshot across the sweep")
	}
}

// TestLateJoinerDeterministicAcrossWorkers extends the sharding
// guarantee to the catch-up class: transfer state machines, timeouts,
// and failovers are all virtual-time driven, so per-seed reports stay
// byte-identical regardless of worker count.
func TestLateJoinerDeterministicAcrossWorkers(t *testing.T) {
	marshal := func(workers int) []byte {
		sum, err := Run(Config{Class: ClassLateJoiner, SeedStart: 20, Seeds: 4, Workers: workers})
		if err != nil {
			t.Fatalf("Run(workers=%d): %v", workers, err)
		}
		data, err := json.Marshal(sum.Reports)
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		return data
	}
	one := marshal(1)
	four := marshal(4)
	if !bytes.Equal(one, four) {
		t.Fatalf("late-joiner reports differ between 1 and 4 workers:\n1: %s\n4: %s", one, four)
	}
}

func hasInvariant(violations []string, name string) bool {
	for _, v := range violations {
		if strings.HasPrefix(v, name+":") {
			return true
		}
	}
	return false
}
