package soak

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"rbcast/internal/harness"
	"rbcast/internal/metrics"
)

// Config parameterizes a sweep.
type Config struct {
	// Class selects the scenario family; default ClassMixed.
	Class Class
	// SeedStart is the first seed; Seeds is how many consecutive seeds
	// to run (required, ≥ 1).
	SeedStart int64
	Seeds     int
	// Workers sizes the pool; default GOMAXPROCS. Worker count never
	// affects per-seed results, only wall time.
	Workers int
	// Shards, when positive, runs every scenario on the sharded parallel
	// engine with that many per-scenario workers (harness
	// Scenario.Shards). Like Workers, any positive value yields
	// byte-identical per-seed reports — the lane partition derives from
	// the topology, not the shard count — but sharded reports differ
	// from sequential (Shards == 0) ones, which draw from a single PRNG
	// stream. Shards is runner configuration, not part of the Spec: a
	// replayed seed reproduces at any shard count.
	Shards int
	// Budget bounds wall-clock time: once exceeded, no further seeds are
	// dispatched (in-flight seeds finish). Zero means no bound.
	Budget time.Duration
	// Progress, if set, is called after each completed seed with running
	// totals. Calls are serialized.
	Progress func(done, failed int)
}

func (c Config) withDefaults() (Config, error) {
	if c.Class == "" {
		c.Class = ClassMixed
	}
	if _, err := ParseClass(string(c.Class)); err != nil {
		return c, err
	}
	if c.Seeds < 1 {
		return c, fmt.Errorf("soak: Seeds = %d, want ≥ 1", c.Seeds)
	}
	if c.Workers < 1 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	return c, nil
}

// SeedReport is the outcome of one seeded scenario. Every field is a
// pure function of (class, seed) — no wall-clock values — which is what
// makes sweep output diffable across worker counts and machines.
type SeedReport struct {
	Seed       int64    `json:"seed"`
	Pass       bool     `json:"pass"`
	Violations []string `json:"violations,omitempty"`

	Hosts    int `json:"hosts"`
	Clusters int `json:"clusters"`
	Messages int `json:"messages"`

	Delivered int `json:"delivered"`
	Expected  int `json:"expected"`
	// CompleteAtMS is the virtual completion time; 0 when incomplete.
	CompleteAtMS int64 `json:"complete_at_ms"`
	MeanDelayUS  int64 `json:"mean_delay_us"`
	P99DelayUS   int64 `json:"p99_delay_us"`

	TotalSends uint64 `json:"total_sends"`
	EventsRun  uint64 `json:"events_run"`

	// Health-layer counters (nonzero only when the spec enables backoff).
	UnreachableSends uint64 `json:"unreachable_sends,omitempty"`
	ResyncBursts     uint64 `json:"resync_bursts,omitempty"`
	SuppressedSends  uint64 `json:"suppressed_sends,omitempty"`
	// PostHealMS is the delay between the last heal step and completion;
	// 0 when the spec has no heal step or the run never completed.
	PostHealMS int64 `json:"post_heal_ms,omitempty"`

	// Catch-up layer counters (nonzero only when the spec enables
	// CatchupSync), summed over all hosts.
	SyncRounds       uint64 `json:"sync_rounds,omitempty"`
	SyncFailovers    uint64 `json:"sync_failovers,omitempty"`
	SnapResumes      uint64 `json:"snap_resumes,omitempty"`
	SnapInstalls     uint64 `json:"snap_installs,omitempty"`
	CatchupWireBytes uint64 `json:"catchup_wire_bytes,omitempty"`

	// Byzantine-class fields (set only when the spec has adversaries).
	// AdversaryHosts lists the hostile host IDs, ascending.
	AdversaryHosts []int `json:"adversary_hosts,omitempty"`
	// Equivocations counts equivocation conflicts detected by hosts
	// (nonzero only in echo/ready mode).
	Equivocations uint64 `json:"equivocations,omitempty"`
	// ForeignDeliveries counts deliveries of fabricated sequence numbers.
	ForeignDeliveries int `json:"foreign_deliveries,omitempty"`
	// Detected lists the violations an ExpectViolation seed was required
	// to produce; such a seed passes precisely because they were caught.
	Detected []string `json:"detected,omitempty"`

	Spec Spec `json:"spec"`
}

// Summary aggregates a sweep.
type Summary struct {
	Class     Class        `json:"class"`
	SeedStart int64        `json:"seed_start"`
	Requested int          `json:"requested"`
	Workers   int          `json:"workers"`
	Reports   []SeedReport `json:"reports"`
	// Elapsed is sweep wall time (not part of the deterministic per-seed
	// data).
	Elapsed time.Duration `json:"elapsed_ns"`
}

// Failures returns the failing reports in seed order.
func (s *Summary) Failures() []SeedReport {
	var out []SeedReport
	for _, r := range s.Reports {
		if !r.Pass {
			out = append(out, r)
		}
	}
	return out
}

// Run executes the sweep. Seeds are dispatched in order to a pool of
// workers; each worker builds its own engine per seed, so there is no
// shared mutable state between scenarios and results only depend on the
// seed.
func Run(cfg Config) (*Summary, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	// Per-seed results stay pure functions of the seed; the wall clock only
	// decides how many seeds this run dispatches (Config.Budget).
	//rblint:ignore detlint wall-clock Budget cutoff; never feeds per-seed results
	start := time.Now()
	seedCh := make(chan int64)
	// results is indexed by seed offset: distinct workers write distinct
	// elements, so no lock is needed for the slice itself.
	results := make([]*SeedReport, cfg.Seeds)
	var done, failed metrics.Counter
	var progressMu sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for seed := range seedCh {
				r := RunSeedShards(cfg.Class, seed, cfg.Shards)
				results[seed-cfg.SeedStart] = &r
				done.Inc()
				if !r.Pass {
					failed.Inc()
				}
				if cfg.Progress != nil {
					progressMu.Lock()
					//rblint:ignore locklint progressMu exists solely to serialize this callback; nothing else contends for it
					cfg.Progress(int(done.Value()), int(failed.Value()))
					progressMu.Unlock()
				}
			}
		}()
	}
	for i := 0; i < cfg.Seeds; i++ {
		//rblint:ignore detlint wall-clock Budget cutoff; affects how many seeds run, not any seed's result
		if cfg.Budget > 0 && time.Since(start) > cfg.Budget {
			break
		}
		seedCh <- cfg.SeedStart + int64(i)
	}
	close(seedCh)
	wg.Wait()

	sum := &Summary{
		Class:     cfg.Class,
		SeedStart: cfg.SeedStart,
		Requested: cfg.Seeds,
		Workers:   cfg.Workers,
		//rblint:ignore detlint Elapsed is wall-clock reporting for the operator, not part of any seed's result
		Elapsed: time.Since(start),
	}
	for _, r := range results {
		if r != nil {
			sum.Reports = append(sum.Reports, *r)
		}
	}
	return sum, nil
}

// RunSeed generates and runs the scenario for one seed.
func RunSeed(class Class, seed int64) SeedReport {
	return RunSpec(NewSpec(class, seed))
}

// RunSeedShards is RunSeed on the sharded parallel engine (0 keeps the
// sequential engine).
func RunSeedShards(class Class, seed int64, shards int) SeedReport {
	return RunSpecShards(NewSpec(class, seed), shards)
}

// RunSpec runs one fully specified scenario: build, run to the horizon
// (stopping early on completion), settle, check invariants. A failed
// structural check gets one extra settle-and-recheck, so a tree caught
// mid-reattachment is not misreported — the retry is itself
// deterministic, part of the seed's defined computation.
func RunSpec(sp Spec) SeedReport {
	return RunSpecShards(sp, 0)
}

// RunSpecShards is RunSpec with the scenario executed on shards parallel
// workers (0 keeps the sequential engine). The shard count is execution
// configuration, never part of the seed's definition: any positive value
// produces the same report bytes.
func RunSpecShards(sp Spec, shards int) SeedReport {
	rep := SeedReport{
		Seed:     sp.Seed,
		Hosts:    sp.Hosts(),
		Clusters: sp.Clusters,
		Messages: sp.Messages,
		Spec:     sp,
	}
	fail := func(format string, args ...any) SeedReport {
		rep.Violations = append(rep.Violations, fmt.Sprintf(format, args...))
		return rep
	}
	sc, err := sp.Scenario()
	if err != nil {
		return fail("error: building scenario: %v", err)
	}
	sc.Shards = shards
	rt, err := harness.Prepare(sc)
	if err != nil {
		return fail("error: preparing runtime: %v", err)
	}
	res, err := rt.Finish()
	if err != nil {
		return fail("error: running: %v", err)
	}
	settle := time.Duration(sp.SettleMS) * time.Millisecond
	opts := harness.InvariantOptions{
		RequireDelivery: true,
		// Forged cost bits and selective silence legitimately distort the
		// hosts' cluster view, so the structural tree invariants apply only
		// to adversary-free schedules.
		RequireTree: sp.FinalConnected && len(sp.Adversaries) == 0,
	}
	// Settling happens in small steps with an invariant check at each one,
	// stopping at the first clean sample. Checking only once after a long
	// settle would race against the protocol's normal self-healing: a
	// burst of WAN loss can orphan a cluster leader (parent-silence
	// timeout) at any quiescent instant, and the check would catch that
	// transient state as a structural violation.
	var violations []harness.Violation
	stepSettle := func() error {
		const steps = 20
		for i := 0; i < steps; i++ {
			if err := rt.Settle(settle / steps); err != nil {
				return err
			}
			violations = rt.CheckInvariants(opts)
			if len(violations) == 0 {
				return nil
			}
		}
		return nil
	}
	if err := stepSettle(); err != nil {
		return fail("error: settling: %v", err)
	}
	// Convergence probes: the paper's attachment procedure assumes ongoing
	// traffic — with every INFO set equal (quiescent tail), an orphaned
	// leader has no eligible candidate until the next broadcast arrives. A
	// probe message is that traffic. Genuine violations (a permanent
	// partition, a duplicate delivery) survive every probe. The probe
	// count depends only on deterministic simulation state, so per-seed
	// results stay worker-count independent.
	// ExpectViolation runs skip the probes: the violation is supposed to
	// persist, and probing for a cure that cannot come only burns events.
	for attempt := 0; attempt < 3 && len(violations) > 0 && !sp.ExpectViolation; attempt++ {
		if err := rt.BroadcastNow([]byte("soak-probe")); err != nil {
			return fail("error: probing: %v", err)
		}
		if err := stepSettle(); err != nil {
			return fail("error: settling: %v", err)
		}
	}
	res = rt.Finalize()
	if sp.ExpectViolation {
		// Inverted semantics: the adversary budget exceeds what the
		// protocol can mask, so this seed passes only if the invariant
		// checker caught a violation — a silent monitor is the failure.
		if len(violations) == 0 {
			rep.Violations = append(rep.Violations,
				"byz-trap: adversary violation went undetected")
		}
		for _, v := range violations {
			rep.Detected = append(rep.Detected, v.String())
		}
	} else {
		for _, v := range violations {
			rep.Violations = append(rep.Violations, v.String())
		}
	}
	rep.Pass = len(rep.Violations) == 0
	rep.Delivered = res.DeliveredCount
	rep.Expected = res.ExpectedCount
	if res.Complete {
		rep.CompleteAtMS = res.CompletionAt.Milliseconds()
	}
	rep.MeanDelayUS = res.Delays.Mean().Microseconds()
	rep.P99DelayUS = res.Delays.Quantile(0.99).Microseconds()
	rep.TotalSends = res.TotalSends()
	rep.EventsRun = rt.Engine.EventsRun()
	rep.UnreachableSends = res.UnreachableSends
	rep.ResyncBursts = res.ResyncBursts
	rep.SuppressedSends = res.SuppressedSends
	rep.SyncRounds = res.SyncRounds
	rep.SyncFailovers = res.SyncFailovers
	rep.SnapResumes = res.SnapResumes
	rep.SnapInstalls = res.SnapInstalls
	rep.CatchupWireBytes = res.CatchupWireBytes
	if sp.CatchupSync && !sp.ExpectViolation {
		// Convergence must be O(missing data), not O(history): every range
		// request covers up to SyncBatch (64) sequence numbers, so across
		// all hosts — with slack for per-request retries, failovers, and
		// the probe broadcasts — the round total must stay far below one
		// round per message. A per-message repair loop blows this budget
		// immediately on long-history seeds.
		budget := uint64(rep.Hosts) * uint64(4*((sp.Messages+63)/64+4))
		if rep.SyncRounds > budget {
			rep.Violations = append(rep.Violations, fmt.Sprintf(
				"catchup: %d sync rounds exceed the O(missing) budget %d for %d messages",
				rep.SyncRounds, budget, sp.Messages))
			rep.Pass = false
		}
	}
	if len(sp.Adversaries) > 0 {
		for _, h := range res.AdversaryHosts {
			rep.AdversaryHosts = append(rep.AdversaryHosts, int(h))
		}
		rep.Equivocations = res.EquivocationsDetected
		rep.ForeignDeliveries = res.ForeignDeliveries
	}
	if rep.CompleteAtMS > 0 {
		var lastHeal int64
		for _, st := range sp.Steps {
			if st.Kind == StepHealCluster && st.AtMS > lastHeal {
				lastHeal = st.AtMS
			}
		}
		if lastHeal > 0 && rep.CompleteAtMS > lastHeal {
			rep.PostHealMS = rep.CompleteAtMS - lastHeal
		}
	}
	return rep
}
