package soak

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// maskableBehaviors is the vocabulary the generator may hand a
// non-source adversary: lies the protocol's benign-failure machinery is
// expected to absorb. Equivocation and INFO lies are reserved for the
// trap arm.
var maskableBehaviors = map[string]bool{
	"forge-cost-bit": true, "replay": true, "silence": true, "hostile-wire": true,
}

// TestByzantineSpecShape pins the generator's two arms: trap seeds put
// a lone equivocator at the source with inverted pass semantics, and
// maskable seeds keep hostile behavior away from the source and the
// guarantees intact.
func TestByzantineSpecShape(t *testing.T) {
	traps, maskable, echo := 0, 0, 0
	for seed := int64(1); seed <= 30; seed++ {
		sp := NewSpec(ClassByzantine, seed)
		if len(sp.Adversaries) == 0 {
			t.Fatalf("seed %d: byzantine spec has no adversaries", seed)
		}
		if err := sp.params().Validate(); err != nil {
			t.Errorf("seed %d: generated params invalid: %v", seed, err)
		}
		if sp.ExpectViolation {
			traps++
			if sp.EchoReady {
				t.Errorf("seed %d: trap arm must run the plain protocol", seed)
			}
			if len(sp.Adversaries) != 1 || sp.Adversaries[0].HostIndex%sp.Hosts() != 0 {
				t.Errorf("seed %d: trap adversary is not the source: %+v", seed, sp.Adversaries)
			}
			if len(sp.Adversaries[0].Behaviors) != 1 || sp.Adversaries[0].Behaviors[0] != "equivocate" {
				t.Errorf("seed %d: trap behaviors = %v, want [equivocate]", seed, sp.Adversaries[0].Behaviors)
			}
			continue
		}
		maskable++
		if sp.EchoReady {
			echo++
		}
		for _, a := range sp.Adversaries {
			if a.HostIndex%sp.Hosts() == 0 {
				t.Errorf("seed %d: maskable adversary at the source: %+v", seed, a)
			}
			for _, b := range a.Behaviors {
				if !maskableBehaviors[b] {
					t.Errorf("seed %d: behavior %q is not maskable", seed, b)
				}
			}
			for _, tgt := range a.Targets {
				if tgt%sp.Hosts() == 0 {
					t.Errorf("seed %d: silence targets the source: %+v", seed, a)
				}
			}
		}
	}
	if traps == 0 || maskable == 0 || echo == 0 {
		t.Fatalf("generator arms unbalanced: %d traps, %d maskable, %d echo across 30 seeds",
			traps, maskable, echo)
	}
}

// TestByzantinePartitionSpecShape: the combined class always pairs
// maskable adversaries with a healed partition.
func TestByzantinePartitionSpecShape(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		sp := NewSpec(ClassByzantinePartition, seed)
		if sp.ExpectViolation {
			t.Errorf("seed %d: byzantine-partition generated a trap", seed)
		}
		if !sp.FinalConnected {
			t.Errorf("seed %d: spec claims disconnected final state", seed)
		}
		if len(sp.Adversaries) == 0 {
			t.Errorf("seed %d: no adversaries", seed)
		}
		var isolated, healed bool
		for _, st := range sp.Steps {
			isolated = isolated || st.Kind == StepIsolateCluster
			healed = healed || st.Kind == StepHealCluster
		}
		if !isolated || !healed {
			t.Errorf("seed %d: steps %v lack an isolate/heal pair", seed, sp.Steps)
		}
	}
}

// TestByzantineSoak is the class's convergence claim: every seed must
// pass — maskable seeds because the correct hosts still deliver
// everything despite f ≥ 1 live adversaries, trap seeds because the
// invariant checker caught the planted violation.
func TestByzantineSoak(t *testing.T) {
	sum, err := Run(Config{Class: ClassByzantine, SeedStart: 1, Seeds: 20})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	for _, f := range sum.Failures() {
		t.Errorf("seed %d failed: %v\n  replay: %s",
			f.Seed, f.Violations, ReplayCommand(ClassByzantine, f.Seed))
	}
	var converged, caught int
	for _, r := range sum.Reports {
		if len(r.AdversaryHosts) == 0 {
			t.Errorf("seed %d: no adversary hosts recorded", r.Seed)
		}
		if r.Spec.ExpectViolation {
			if len(r.Detected) == 0 {
				t.Errorf("seed %d: trap seed detected nothing", r.Seed)
			}
			if hasInvariant(r.Detected, "byz-forged-frame") {
				caught++
			}
			continue
		}
		// Maskable seed: correct hosts converged with the adversary live.
		if r.Delivered < r.Expected {
			t.Errorf("seed %d: correct hosts incomplete %d/%d", r.Seed, r.Delivered, r.Expected)
		}
		converged++
	}
	if converged == 0 {
		t.Error("no maskable seed demonstrated convergence despite adversaries")
	}
	if caught == 0 {
		t.Error("no trap seed was caught via byz-forged-frame")
	}
}

// TestByzantinePartitionSoak: hostile hosts plus a healed partition at
// once, and correct hosts still converge.
func TestByzantinePartitionSoak(t *testing.T) {
	sum, err := Run(Config{Class: ClassByzantinePartition, SeedStart: 1, Seeds: 10})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	for _, f := range sum.Failures() {
		t.Errorf("seed %d failed: %v\n  replay: %s",
			f.Seed, f.Violations, ReplayCommand(ClassByzantinePartition, f.Seed))
	}
}

// TestByzantineTrapCaught proves the Byzantine monitor reports rather
// than swallows: an equivocating source forges every delivered payload,
// so (1) the trap seed passes only via detection, (2) the same spec
// with plain semantics fails on byz-forged-frame, (3) the shrinker
// reproduces that invariant on a reduced spec, and (4) the replay path
// is byte-identical.
func TestByzantineTrapCaught(t *testing.T) {
	// The first trap seed is a deterministic property of the generator.
	trapSeed := int64(-1)
	for seed := int64(0); seed <= 40; seed++ {
		if NewSpec(ClassByzantine, seed).ExpectViolation {
			trapSeed = seed
			break
		}
	}
	if trapSeed < 0 {
		t.Fatal("no trap seed in 0..40")
	}

	rep := RunSeed(ClassByzantine, trapSeed)
	if !rep.Pass {
		t.Fatalf("trap seed %d failed outright: %v", trapSeed, rep.Violations)
	}
	if !hasInvariant(rep.Detected, "byz-forged-frame") {
		t.Fatalf("trap seed %d detected %v; want byz-forged-frame", trapSeed, rep.Detected)
	}

	// The inverse: running the same adversary without inverted semantics
	// must surface the violation as a plain failure — the monitor is
	// reporting the forgery, not the ExpectViolation flag masking it.
	plain := NewSpec(ClassByzantine, trapSeed)
	plain.ExpectViolation = false
	prep := RunSpec(plain)
	if prep.Pass {
		t.Fatal("equivocating source passed plain invariant checking")
	}
	if !hasInvariant(prep.Violations, "byz-forged-frame") {
		t.Fatalf("plain violations %v lack byz-forged-frame", prep.Violations)
	}

	sh := Shrink(plain, 48)
	if !hasInvariant(sh.Violations, "byz-forged-frame") {
		t.Fatalf("shrunk violations %v lack byz-forged-frame", sh.Violations)
	}
	if !sh.Reduced {
		t.Fatalf("shrinker failed to reduce the spec (attempts=%d)", sh.Attempts)
	}
	if len(sh.Spec.Adversaries) == 0 {
		t.Fatal("shrinker dropped the adversary yet still fails byz-forged-frame")
	}
	if rerun := RunSpec(sh.Spec); rerun.Pass {
		t.Fatal("shrunk spec passes on rerun")
	}

	cmd := ReplayCommand(ClassByzantine, trapSeed)
	if !strings.Contains(cmd, "-class byzantine") {
		t.Errorf("replay command %q lacks the class", cmd)
	}
	again := RunSeed(ClassByzantine, trapSeed)
	a, _ := json.Marshal(rep)
	b, _ := json.Marshal(again)
	if !bytes.Equal(a, b) {
		t.Fatalf("replay diverged:\n%s\nvs\n%s", a, b)
	}
}

// TestByzantineDeterministicAcrossWorkers extends the sharding
// guarantee to adversarial runs: per-host RNG streams derive from
// (seed, host) alone, so reports stay byte-identical at any worker
// count — traps, maskables, and echo seeds alike.
func TestByzantineDeterministicAcrossWorkers(t *testing.T) {
	marshal := func(workers int) []byte {
		sum, err := Run(Config{Class: ClassByzantine, SeedStart: 1, Seeds: 12, Workers: workers})
		if err != nil {
			t.Fatalf("Run(workers=%d): %v", workers, err)
		}
		data, err := json.Marshal(sum.Reports)
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		return data
	}
	one := marshal(1)
	four := marshal(4)
	if !bytes.Equal(one, four) {
		t.Fatalf("byzantine reports differ between 1 and 4 workers:\n1: %s\n4: %s", one, four)
	}
}
