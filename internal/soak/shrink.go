package soak

// Shrinking: given a failing spec, greedily apply reductions — fewer
// clusters, fewer hosts, fewer messages, shorter schedule, fewer extra
// links — keeping each reduction only if the run still fails. The
// result is a (locally) minimal scenario that reproduces the violation,
// which is far easier to debug than a 16-host, 12-step original.

// ShrinkResult is the outcome of a shrinking pass.
type ShrinkResult struct {
	// Spec is the smallest failing spec found.
	Spec Spec `json:"spec"`
	// Violations are the violations of the final spec.
	Violations []string `json:"violations"`
	// Attempts counts candidate runs tried.
	Attempts int `json:"attempts"`
	// Reduced reports whether any reduction survived.
	Reduced bool `json:"reduced"`
}

// shrinkCandidates proposes reduced variants of sp, strongest first.
// Every candidate is strictly smaller in at least one dimension, so the
// greedy loop terminates.
func shrinkCandidates(sp Spec) []Spec {
	var out []Spec
	with := func(mutate func(*Spec)) {
		c := sp
		// Steps is the only shared slice; copy before mutating.
		c.Steps = append([]Step(nil), sp.Steps...)
		mutate(&c)
		out = append(out, c)
	}
	if sp.Clusters > 1 {
		with(func(c *Spec) { c.Clusters = sp.Clusters / 2 })
		if sp.Clusters/2 != sp.Clusters-1 {
			with(func(c *Spec) { c.Clusters = sp.Clusters - 1 })
		}
	}
	if sp.HostsPerCluster > 1 {
		with(func(c *Spec) { c.HostsPerCluster = sp.HostsPerCluster / 2 })
		if sp.HostsPerCluster/2 != sp.HostsPerCluster-1 {
			with(func(c *Spec) { c.HostsPerCluster = sp.HostsPerCluster - 1 })
		}
	}
	if sp.Messages > 1 {
		with(func(c *Spec) { c.Messages = sp.Messages / 2 })
		if sp.Messages/2 != sp.Messages-1 {
			with(func(c *Spec) { c.Messages = sp.Messages - 1 })
		}
	}
	if n := len(sp.Steps); n > 0 {
		with(func(c *Spec) { c.Steps = c.Steps[:n/2] })
		with(func(c *Spec) { c.Steps = c.Steps[n/2:] })
		// Drop individual steps (front to back) for fine-grained trims.
		for i := 0; i < n; i++ {
			i := i
			with(func(c *Spec) { c.Steps = append(c.Steps[:i], c.Steps[i+1:]...) })
		}
	}
	if n := len(sp.Adversaries); n > 0 {
		// Drop adversaries one at a time. The sameFailure guard keeps this
		// honest: an ExpectViolation spec without its adversary fails with
		// the unrelated "byz-trap" name and is rejected.
		for i := 0; i < n; i++ {
			i := i
			with(func(c *Spec) {
				c.Adversaries = append(append([]AdversarySpec(nil),
					sp.Adversaries[:i]...), sp.Adversaries[i+1:]...)
			})
		}
	}
	if sp.ExtraCheapLinks > 0 {
		with(func(c *Spec) { c.ExtraCheapLinks = 0 })
	}
	return out
}

// invariantNames extracts the stable invariant identifiers ("delivery",
// "acyclic", …) from rendered violations.
func invariantNames(violations []string) map[string]bool {
	out := make(map[string]bool, len(violations))
	for _, v := range violations {
		name := v
		for i := 0; i < len(v); i++ {
			if v[i] == ':' {
				name = v[:i]
				break
			}
		}
		out[name] = true
	}
	return out
}

// sameFailure reports whether the candidate's violations hit at least
// one invariant the original run hit — the shrinker must not wander off
// to an unrelated failure mode.
func sameFailure(orig map[string]bool, violations []string) bool {
	for name := range invariantNames(violations) {
		if orig[name] {
			return true
		}
	}
	return false
}

// Shrink minimizes a failing spec. maxAttempts bounds the total number
// of candidate runs (0 means a sensible default). The pass is greedy and
// deterministic: candidates are tried in a fixed order and the first
// candidate that still fails the same invariant restarts the search from
// the smaller spec.
func Shrink(sp Spec, maxAttempts int) ShrinkResult {
	if maxAttempts <= 0 {
		maxAttempts = 64
	}
	res := ShrinkResult{Spec: sp}
	cur := RunSpec(sp)
	res.Violations = cur.Violations
	if cur.Pass {
		return res // nothing to shrink
	}
	orig := invariantNames(cur.Violations)
	for res.Attempts < maxAttempts {
		improved := false
		for _, cand := range shrinkCandidates(res.Spec) {
			if res.Attempts >= maxAttempts {
				break
			}
			res.Attempts++
			r := RunSpec(cand)
			if !r.Pass && sameFailure(orig, r.Violations) {
				res.Spec = cand
				res.Violations = r.Violations
				res.Reduced = true
				improved = true
				break
			}
		}
		if !improved {
			break
		}
	}
	return res
}
