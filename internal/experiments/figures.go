package experiments

import (
	"fmt"
	"time"

	"rbcast/internal/core"
	"rbcast/internal/harness"
	"rbcast/internal/metrics"
	"rbcast/internal/netsim"
	"rbcast/internal/topo"
)

// Fig31 reproduces Figure 3.1: in the diamond topology (h1 behind s1; s4
// fanning out to s2/s3) the cost-optimal broadcast traverses each of the
// three server links exactly once (3 traversals per message). With
// nonprogrammable servers that is unattainable: every implementable
// protocol addresses copies host-to-host and pays at least 4 traversals
// per message. The experiment measures data-message link traversals for
// the tree protocol and the basic algorithm against the optimum.
func Fig31(seed int64) (Report, error) {
	rep := newReport("F3.1", "optimal broadcast cost is unattainable with nonprogrammable servers")
	const optimal = 3.0
	const messages = 40

	results := map[string]*harness.Result{}
	for _, proto := range []harness.Protocol{harness.ProtocolTree, harness.ProtocolBasic} {
		res, err := harness.Run(harness.Scenario{
			Name:             "fig31-" + proto.String(),
			Seed:             seed,
			Build:            topo.Figure31,
			Protocol:         proto,
			Messages:         messages,
			MsgInterval:      200 * time.Millisecond,
			Drain:            30 * time.Second,
			StopWhenComplete: true,
		})
		if err != nil {
			return nil, err
		}
		results[proto.String()] = res
	}

	t := metrics.NewTable("protocol", "link traversals/msg", "vs optimal", "complete")
	t.AddRow("optimal (programmable servers)", optimal, "1.0×", "—")
	for _, name := range []string{"tree", "basic"} {
		res := results[name]
		per := res.DataLinkTraversalsPerMessage()
		t.AddRow(name, per, metrics.Ratio(per, optimal), res.Complete)
	}
	rep.addTable(t)
	rep.note("every link traversal counted once per data/gap-fill message crossing a server link")

	tree, basicRes := results["tree"], results["basic"]
	rep.expect(tree.Complete, "tree protocol did not complete (%d/%d)", tree.DeliveredCount, tree.ExpectedCount)
	rep.expect(basicRes.Complete, "basic did not complete (%d/%d)", basicRes.DeliveredCount, basicRes.ExpectedCount)
	// The impossibility claim: both implementable protocols exceed the
	// server-multicast optimum.
	rep.expect(tree.DataLinkTraversalsPerMessage() > optimal+0.5,
		"tree traversals/msg %.2f not above the unattainable optimum %.1f",
		tree.DataLinkTraversalsPerMessage(), optimal)
	rep.expect(basicRes.DataLinkTraversalsPerMessage() > optimal+0.5,
		"basic traversals/msg %.2f not above the unattainable optimum %.1f",
		basicRes.DataLinkTraversalsPerMessage(), optimal)
	// Neither grossly exceeds the host-level optimum of 4 in this tiny net.
	rep.expect(tree.DataLinkTraversalsPerMessage() < 8,
		"tree traversals/msg %.2f unexpectedly high", tree.DataLinkTraversalsPerMessage())
	return rep, nil
}

// Fig32 reproduces Figure 3.2: on the four-cluster topology the
// attachment procedure must organize the host parent graph so that it
// induces a cluster tree — one leader per cluster, everyone else a direct
// child of their leader, and cluster C parented into C′ or C″. Then a
// cheap link is added between C″ and C (the §4.1 merge example): the two
// clusters become one, and the procedure must re-converge to a cluster
// tree of the merged network.
func Fig32(seed int64) (Report, error) {
	rep := newReport("F3.2", "attachment converges to an induced cluster tree, including after a cluster merge")
	rt, err := harness.Prepare(harness.Scenario{
		Name:        "fig32",
		Seed:        seed,
		Build:       topo.Figure32,
		Protocol:    harness.ProtocolTree,
		Messages:    120,
		MsgInterval: 250 * time.Millisecond,
		WarmUp:      2 * time.Second,
		Drain:       40 * time.Second,
	})
	if err != nil {
		return nil, err
	}

	beforeOK, beforeAt, beforeWhy := waitForClusterTree(rt, 25*time.Second)
	cOfLeaderParent := -1
	if beforeOK {
		// Identify cluster C's leader and its parent's cluster.
		leader := leaderOfGeneratedCluster(rt, 3)
		if leader != core.Nil {
			p := rt.TreeHosts[leader].Parent()
			cOfLeaderParent = rt.Topo.ClusterOf(netsim.HostID(p))
		}
	}

	if _, err := topo.MergeFigure32Clusters(rt.Topo); err != nil {
		return nil, err
	}
	mergeAt := rt.Engine.Now()
	afterOK, afterAt, afterWhy := waitForClusterTree(rt, mergeAt+30*time.Second)

	t := metrics.NewTable("phase", "true clusters", "induces cluster tree", "at")
	t.AddRow("before merge", 4, beforeOK, beforeAt)
	t.AddRow("after C″–C merge", rt.Net.ClusterCount(), afterOK, afterAt)
	rep.addTable(t)
	if cOfLeaderParent >= 0 {
		rep.note("cluster C's leader attached into cluster %d (0 = S, 1 = C′, 2 = C″);", cOfLeaderParent)
		rep.note("the procedure legitimately prefers the freshest INFO set, which the source itself")
		rep.note("has — the figure's C′-vs-C″ choice arises when the source is not directly visible")
	}

	rep.expect(beforeOK, "no induced cluster tree before merge: %s", beforeWhy)
	rep.expect(afterOK, "no induced cluster tree after merge: %s", afterWhy)
	rep.expect(rt.Net.ClusterCount() == 3, "merge should leave 3 true clusters, got %d", rt.Net.ClusterCount())
	// C's leader must have re-parented OUT of its own cluster (it is a
	// leader) and to a host whose INFO was not smaller — any of S, C′, C″.
	rep.expect(cOfLeaderParent >= 0 && cOfLeaderParent != 3,
		"cluster C's leader parented into cluster %d, want a different cluster", cOfLeaderParent)
	return rep, nil
}

// waitForClusterTree advances the simulation until the parent graph
// induces a cluster tree or the deadline passes.
func waitForClusterTree(rt *harness.Runtime, deadline time.Duration) (bool, time.Duration, string) {
	const step = 500 * time.Millisecond
	why := ""
	for rt.Engine.Now() < deadline {
		next := rt.Engine.Now() + step
		if next > deadline {
			next = deadline
		}
		if err := rt.Engine.Run(next); err != nil {
			return false, rt.Engine.Now(), err.Error()
		}
		ok, reason := rt.InducesClusterTree()
		if ok {
			return true, rt.Engine.Now(), ""
		}
		why = reason
	}
	return false, rt.Engine.Now(), why
}

// leaderOfGeneratedCluster returns the unique leader among the hosts of
// generated cluster c, or Nil.
func leaderOfGeneratedCluster(rt *harness.Runtime, c int) core.HostID {
	truth := rt.Net.TrueClusters()
	for _, h := range rt.Topo.HostsByCluster[c] {
		id := core.HostID(h)
		p := rt.TreeHosts[id].Parent()
		if p == core.Nil || truth[netsim.HostID(p)] != truth[h] {
			return id
		}
	}
	return core.Nil
}

// Fig41 reproduces Figure 4.1: the source s broadcasts 1, 2, 3 such that
// i misses 2 and j misses 1; then s is partitioned away while i and j can
// still talk. Since neither INFO set dominates, neither host can
// re-parent, and they are not parent-graph neighbours — so neighbour-only
// gap filling stalls forever. The paper's §4.4 extension (periodic
// non-neighbour gap filling across cluster boundaries) is exactly what
// heals them. The experiment runs both variants.
func Fig41(seed int64) (Report, error) {
	rep := newReport("F4.1", "complementary gaps across a partition require non-neighbour gap filling")

	run := func(withGlobal bool) (*harness.Result, error) {
		params := core.DefaultParams()
		// Keep the parent's periodic fills towards its (remote) children
		// slow so the staged gaps survive until the partition; the staging
		// window is under a second.
		params.GapRemotePeriod = 30 * time.Second
		params.InfoRemotePeriod = 30 * time.Second
		params.ParentTimeout = 31 * time.Second // silence tolerance ≥ exchange period
		params.DisableNonNeighborGapFill = !withGlobal
		events := []harness.TimedEvent{
			// A priming broadcast at t=1s lets i and j discover the source
			// and attach well before staging starts.
			{At: time.Second, Do: func(rt *harness.Runtime) error {
				return rt.BroadcastNow([]byte("prime"))
			}},
			// Host 3 (j) misses message 2.
			{At: 4900 * time.Millisecond, Do: func(rt *harness.Runtime) error {
				return rt.Net.SetHostLinkUp(3, false)
			}},
			{At: 5 * time.Second, Do: func(rt *harness.Runtime) error {
				return rt.BroadcastNow([]byte("m2"))
			}},
			{At: 5300 * time.Millisecond, Do: func(rt *harness.Runtime) error {
				return rt.Net.SetHostLinkUp(3, true)
			}},
			// Host 2 (i) misses message 3.
			{At: 5350 * time.Millisecond, Do: func(rt *harness.Runtime) error {
				return rt.Net.SetHostLinkUp(2, false)
			}},
			{At: 5450 * time.Millisecond, Do: func(rt *harness.Runtime) error {
				return rt.BroadcastNow([]byte("m3"))
			}},
			{At: 5750 * time.Millisecond, Do: func(rt *harness.Runtime) error {
				return rt.Net.SetHostLinkUp(2, true)
			}},
			// Message 4 reaches both, so both INFO maxima equal 4 and
			// neither set dominates.
			{At: 5850 * time.Millisecond, Do: func(rt *harness.Runtime) error {
				return rt.BroadcastNow([]byte("m4"))
			}},
			// Partition the source away; i and j can still communicate.
			{At: 6 * time.Second, Do: func(rt *harness.Runtime) error {
				_, err := topo.IsolateFigure41Source(rt.Topo)
				return err
			}},
		}
		return harness.Run(harness.Scenario{
			Name:     fmt.Sprintf("fig41-global=%v", withGlobal),
			Seed:     seed,
			Build:    topo.Figure41,
			Protocol: harness.ProtocolTree,
			Params:   params,
			Messages: 0,
			WarmUp:   time.Second,
			Drain:    40 * time.Second,
			Events:   events,
		})
	}

	with, err := run(true)
	if err != nil {
		return nil, err
	}
	without, err := run(false)
	if err != nil {
		return nil, err
	}

	missing := func(res *harness.Result) string {
		return fmt.Sprintf("i:%v j:%v", res.MissingAt(2), res.MissingAt(3))
	}
	healed := func(res *harness.Result) bool {
		return len(res.MissingAt(2)) == 0 && len(res.MissingAt(3)) == 0
	}

	t := metrics.NewTable("variant", "gaps healed", "remaining gaps")
	t.AddRow("with non-neighbour gap fill (§4.4)", healed(with), missing(with))
	t.AddRow("neighbour-only gap fill", healed(without), missing(without))
	rep.addTable(t)
	rep.note("source partitioned at t=6s; i and j stay mutually reachable")

	rep.expect(len(with.EventErrors) == 0, "events failed: %v", with.EventErrors)
	rep.expect(len(without.EventErrors) == 0, "events failed: %v", without.EventErrors)
	// Stage check: the gaps must actually have been staged.
	rep.expect(healed(with), "global gap filling did not heal the partition gaps (%s)", missing(with))
	rep.expect(!healed(without),
		"gaps healed even without non-neighbour gap filling — scenario failed to isolate the mechanism")
	return rep, nil
}
