package experiments

import (
	"fmt"
	"time"

	"rbcast/internal/adversary"
	"rbcast/internal/core"
	"rbcast/internal/harness"
	"rbcast/internal/metrics"
	"rbcast/internal/topo"
)

// EchoReadyHardening (E13) measures what the paper's trust assumption
// costs to drop. §2 assumes every host faithfully relays the source's
// frames; a host that equivocates — sends different payloads for the
// same sequence number to different peers — poisons the plain protocol,
// because children accept whatever their parent forwards. The optional
// echo/ready mode (Params.EchoReady, Bracha-style certification) makes
// correct hosts cross-check digests before delivering. The experiment
// runs the 2×2 grid {plain, echo} × {honest source, equivocating
// source} and checks both directions of the trade: hardening costs
// extra control messages on the honest runs, and on the hostile runs it
// turns "every correct host delivers forged payloads" into "no correct
// host delivers anything uncertified, and the conflict is detected".
func EchoReadyHardening(seed int64) (Report, error) {
	rep := newReport("E13", "echo/ready hardening — message cost vs. tolerance of an equivocating source")
	const src = core.HostID(1)
	t := metrics.NewTable("variant", "sends", "forged deliveries", "equivocations", "delivered", "complete at")
	type variant struct {
		name    string
		echo    bool
		hostile bool
	}
	variants := []variant{
		{"plain/honest", false, false},
		{"plain/equivocating", false, true},
		{"echo/honest", true, false},
		{"echo/equivocating", true, true},
	}
	results := make(map[string]*harness.Result, len(variants))
	for _, v := range variants {
		params := core.DefaultParams()
		params.EchoReady = v.echo
		sc := harness.Scenario{
			Name:             "e13-" + v.name,
			Seed:             seed,
			Build:            clusteredBuild(topo.ClusteredConfig{Clusters: 2, HostsPerCluster: 3, Shape: topo.WANStar}),
			Protocol:         harness.ProtocolTree,
			Params:           params,
			Messages:         20,
			MsgInterval:      200 * time.Millisecond,
			WarmUp:           2 * time.Second,
			Drain:            45 * time.Second,
			StopWhenComplete: true,
		}
		if v.hostile {
			eq, err := adversary.New("equivocate", nil, 0)
			if err != nil {
				return nil, err
			}
			sc.Adversaries = map[core.HostID][]adversary.Behavior{src: {eq}}
		}
		res, err := harness.Run(sc)
		if err != nil {
			return nil, err
		}
		results[v.name] = res
		t.AddRow(v.name, res.TotalSends(), forgedDeliveries(res, src),
			res.EquivocationsDetected,
			fmt.Sprintf("%d/%d", res.DeliveredCount, res.ExpectedCount), res.CompletionAt)
	}
	rep.addTable(t)
	rep.note("2 clusters × 3 hosts, 20 messages, source host 1; 'forged deliveries' counts")
	rep.note("payloads accepted by correct hosts whose digest differs from what Broadcast")
	rep.note("sent (the equivocator rewrites frames at the wire, per destination)")

	plainHonest, plainEvil := results["plain/honest"], results["plain/equivocating"]
	echoHonest, echoEvil := results["echo/honest"], results["echo/equivocating"]
	for name, res := range results {
		rep.expect(len(res.EventErrors) == 0, "%s: event errors %v", name, res.EventErrors)
	}
	rep.expect(plainHonest.Complete, "plain honest run did not complete")
	rep.expect(echoHonest.Complete, "echo honest run did not complete")
	rep.expect(forgedDeliveries(echoHonest, src) == 0 && forgedDeliveries(plainHonest, src) == 0,
		"honest runs delivered forged payloads")
	// The cost axis: certification is not free — every data frame grows an
	// echo/ready exchange, so the honest echo run must send measurably more.
	rep.expect(echoHonest.TotalSends() > plainHonest.TotalSends(),
		"echo mode sent %d ≤ plain's %d despite per-frame certification",
		echoHonest.TotalSends(), plainHonest.TotalSends())
	// The tolerance axis: the plain protocol propagates the forgery to
	// correct hosts; echo/ready refuses to deliver it and flags the
	// conflict instead.
	rep.expect(forgedDeliveries(plainEvil, src) > 0,
		"plain protocol absorbed an equivocating source (nothing forged was delivered)")
	rep.expect(forgedDeliveries(echoEvil, src) == 0,
		"echo mode delivered %d forged payloads", forgedDeliveries(echoEvil, src))
	rep.expect(echoEvil.EquivocationsDetected > 0,
		"echo mode delivered nothing forged but never flagged the conflict")
	return rep, nil
}

// forgedDeliveries counts payloads delivered at correct hosts whose
// digest does not match what the source's Broadcast call recorded —
// including fabricated sequence numbers the source never sent.
func forgedDeliveries(res *harness.Result, adversaries ...core.HostID) int {
	hostile := make(map[core.HostID]bool, len(adversaries))
	for _, h := range adversaries {
		hostile[h] = true
	}
	forged := 0
	for h, per := range res.DeliveredDigest {
		if hostile[h] {
			continue
		}
		for seq, d := range per {
			if want, ok := res.BroadcastDigest[seq]; !ok || d != want {
				forged++
			}
		}
	}
	return forged
}
