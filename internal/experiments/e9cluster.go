package experiments

import (
	"fmt"
	"time"

	"rbcast/internal/core"
	"rbcast/internal/harness"
	"rbcast/internal/metrics"
	"rbcast/internal/netsim"
	"rbcast/internal/sim"
	"rbcast/internal/topo"
)

// ClusterKnowledge (E9) reproduces the §6 discussion of cluster
// information: the protocol runs with dynamic cost-bit inference (the
// paper's design), with static knowledge supplied at start, and with no
// knowledge at all (every host a singleton cluster). All three must
// deliver; their costs differ exactly as the paper predicts —
// "less satisfying performance" for static once the network drifts, and
// the singleton assumption works but forfeits the cluster-tree economy.
//
// The scenario broadcasts continuously while, mid-run, a cheap link
// merges two clusters. Dynamic inference adapts (one leader for the
// merged cluster → fewer expensive transmissions per message); static
// knowledge keeps the stale structure; no knowledge never had one.
func ClusterKnowledge(seed int64) (Report, error) {
	rep := newReport("E9", "cluster knowledge: dynamic vs. static vs. none (§6)")
	const (
		mergeAt = 18 * time.Second
		endAt   = 50 * time.Second
	)
	type phase struct {
		interData uint64
		messages  int
	}
	t := metrics.NewTable("mode", "pre-merge cost/msg", "post-merge cost/msg", "delivered", "complete")
	costs := map[core.ClusterMode][2]float64{}
	for _, mode := range []core.ClusterMode{core.ClusterDynamic, core.ClusterStatic, core.ClusterNone} {
		params := core.DefaultParams()
		params.ClusterMode = mode
		rt, err := harness.Prepare(harness.Scenario{
			Name: fmt.Sprintf("e9-%s", mode),
			Seed: seed,
			Build: func(eng sim.Loop) (*topo.Topology, error) {
				return topo.Clustered(eng, topo.ClusteredConfig{
					Clusters:        4,
					HostsPerCluster: 3,
					Shape:           topo.WANStar,
				})
			},
			Protocol:    harness.ProtocolTree,
			Params:      params,
			Messages:    120,
			MsgInterval: 250 * time.Millisecond,
			WarmUp:      3 * time.Second,
			Drain:       20 * time.Second,
		})
		if err != nil {
			return nil, err
		}
		interData := func() uint64 {
			res := rt.Result()
			return res.InterClusterByKind["data"] + res.InterClusterByKind["gapfill"]
		}
		msgsBy := func(at time.Duration) int {
			n := 0
			for _, ts := range rt.Result().BroadcastAt {
				if ts <= at {
					n++
				}
			}
			return n
		}
		if err := rt.RunUntil(mergeAt); err != nil {
			return nil, err
		}
		pre := phase{interData: interData(), messages: msgsBy(mergeAt)}
		// Merge generated clusters 2 and 3 with a cheap inter-hub link.
		if _, err := rt.Net.AddLink(
			rt.Topo.ServersByCluster[2][0],
			rt.Topo.ServersByCluster[3][0],
			netsim.LinkConfig{Class: netsim.Cheap},
		); err != nil {
			return nil, err
		}
		if err := rt.RunUntil(endAt); err != nil {
			return nil, err
		}
		res, err := rt.Finish()
		if err != nil {
			return nil, err
		}
		post := phase{
			interData: interData() - pre.interData,
			messages:  res.Messages - pre.messages,
		}
		preCost := float64(pre.interData) / float64(max(pre.messages, 1))
		postCost := float64(post.interData) / float64(max(post.messages, 1))
		costs[mode] = [2]float64{preCost, postCost}
		t.AddRow(mode.String(), preCost, postCost,
			fmt.Sprintf("%d/%d", res.DeliveredCount, res.ExpectedCount), res.Complete)
		rep.expect(res.Complete, "%s mode incomplete (%d/%d)", mode, res.DeliveredCount, res.ExpectedCount)
	}
	rep.addTable(t)
	rep.note("4 clusters × 3 hosts (star); at t=%v a cheap link merges clusters 2 and 3,", mergeAt)
	rep.note("dropping the achievable optimum from k−1=3 to k−1=2 inter-cluster sends/msg")

	dyn, sta, non := costs[core.ClusterDynamic], costs[core.ClusterStatic], costs[core.ClusterNone]
	// Before the merge, correct static knowledge performs like dynamic
	// inference, and no knowledge costs substantially more.
	rep.expect(sta[0] <= 1.4*dyn[0] && dyn[0] <= 1.4*sta[0],
		"pre-merge dynamic (%.2f) and static (%.2f) should be close", dyn[0], sta[0])
	rep.expect(non[0] > 1.3*dyn[0],
		"no-knowledge cost %.2f not well above dynamic %.2f pre-merge", non[0], dyn[0])
	// After the merge, dynamic adapts; stale static does not.
	rep.expect(dyn[1] < 0.85*sta[1],
		"post-merge dynamic cost %.2f did not adapt below stale static %.2f", dyn[1], sta[1])
	return rep, nil
}
