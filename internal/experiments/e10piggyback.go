package experiments

import (
	"time"

	"rbcast/internal/core"
	"rbcast/internal/harness"
	"rbcast/internal/metrics"
	"rbcast/internal/netsim"
	"rbcast/internal/topo"
)

// Piggyback (E10) measures the §6 packet optimization: "some control
// messages that are dispatched by the same host at about the same time
// can be piggybacked in one packet". With bundling on, everything a host
// emits to one destination within a single activation travels as one
// packet — the attach-time gap fill being the extreme case (accept + a
// batch of missing messages in a single packet). Packets must drop while
// total bytes stay essentially the same and delivery stays complete.
func Piggyback(seed int64) (Report, error) {
	rep := newReport("E10", "§6 piggybacking — packets vs. logical messages")
	t := metrics.NewTable("variant", "packets", "logical msgs", "msgs/packet", "wire bytes", "complete")
	type outcome struct {
		packets uint64
		logical uint64
		bytes   uint64
		ok      bool
	}
	var results [2]outcome
	for i, on := range []bool{false, true} {
		params := core.DefaultParams()
		params.Piggyback = on
		// Piggybacking pays when many messages head for one destination at
		// once: lossy links force gap-fill batches, and a partition forces
		// a big attach-time catch-up (the §4.4 fill of a whole backlog
		// rides in one packet).
		res, err := harness.Run(harness.Scenario{
			Name: map[bool]string{false: "e10-off", true: "e10-on"}[on],
			Seed: seed,
			Build: clusteredBuild(topo.ClusteredConfig{
				Clusters:        4,
				HostsPerCluster: 3,
				Shape:           topo.WANTree,
				Cheap:           netsim.LinkConfig{Class: netsim.Cheap, LossProb: 0.05},
				Expensive:       netsim.LinkConfig{Class: netsim.Expensive, LossProb: 0.25},
			}),
			Protocol:    harness.ProtocolTree,
			Params:      params,
			Messages:    60,
			MsgInterval: 150 * time.Millisecond,
			WarmUp:      3 * time.Second,
			Events: []harness.TimedEvent{
				{At: 4 * time.Second, Do: func(rt *harness.Runtime) error {
					_, err := rt.Topo.IsolateCluster(3)
					return err
				}},
				{At: 11 * time.Second, Do: func(rt *harness.Runtime) error {
					return rt.Topo.RestoreLinks(rt.Topo.WANLinksOfCluster(3))
				}},
			},
			Drain:            90 * time.Second,
			StopWhenComplete: true,
		})
		if err != nil {
			return nil, err
		}
		results[i] = outcome{
			packets: res.TotalSends(),
			logical: res.LogicalSends,
			bytes:   res.WireBytes,
			ok:      res.Complete,
		}
		name := "separate packets"
		if on {
			name = "piggybacked"
		}
		t.AddRow(name, res.TotalSends(), res.LogicalSends,
			float64(res.LogicalSends)/float64(max(int(res.TotalSends()), 1)),
			res.WireBytes, res.Complete)
	}
	rep.addTable(t)
	rep.note("4 clusters × 3 hosts, 60 messages, 25%% WAN / 5%% LAN loss, one 7s partition;")
	rep.note("msgs/packet is measured within each run, so it is robust to the different")
	rep.note("loss/recovery trajectories the two runs take")

	off, on := results[0], results[1]
	rep.expect(off.ok && on.ok, "incomplete runs")
	// Without bundling every logical message is its own packet.
	rep.expect(off.logical == off.packets,
		"baseline run bundled (%d logical vs %d packets)", off.logical, off.packets)
	// With bundling, a meaningful share of messages piggyback: ≥ 5% fewer
	// packets than logical messages (measured 1.08–1.12 across seeds).
	compression := float64(on.logical) / float64(max(int(on.packets), 1))
	rep.expect(compression > 1.05,
		"piggybacking compressed only %.2f logical msgs/packet", compression)
	return rep, nil
}
