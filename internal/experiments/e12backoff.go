package experiments

import (
	"time"

	"rbcast/internal/core"
	"rbcast/internal/harness"
	"rbcast/internal/metrics"
	"rbcast/internal/topo"
)

// BackoffRecovery (E12) measures the peer-health layer against the
// paper's fixed-frequency scheduling. §6 sets every exchange frequency
// as a static reliability/cost knob; the health layer keeps those
// frequencies for responsive peers but suspects peers whose probes go
// repeatedly unanswered, backing global probes toward them off
// exponentially. During a long partition that should save most of the
// control traffic wasted into the cut; because any message from a
// suspected peer triggers an immediate fast-resync burst — and
// parent/child remote traffic is never gated — post-heal convergence
// must stay within one InfoRemotePeriod of the fixed-rate run.
func BackoffRecovery(seed int64) (Report, error) {
	rep := newReport("E12", "health layer — fixed-rate vs. backoff probing across a 30s partition")
	cutAt, healAt := 4*time.Second, 34*time.Second
	t := metrics.NewTable("variant", "unreachable sends", "suppressed", "resync bursts", "complete at", "complete")
	type outcome struct {
		res *harness.Result
		mon *harness.HealthMonitor
	}
	var results [2]outcome
	for i, backoff := range []bool{false, true} {
		params := core.DefaultParams()
		name := "fixed"
		if backoff {
			params = params.WithBackoff()
			name = "backoff"
		}
		rt, err := harness.Prepare(harness.Scenario{
			Name:        "e12-" + name,
			Seed:        seed,
			Build:       clusteredBuild(topo.ClusteredConfig{Clusters: 3, HostsPerCluster: 2, Shape: topo.WANStar}),
			Protocol:    harness.ProtocolTree,
			Params:      params,
			Messages:    30,
			MsgInterval: 200 * time.Millisecond,
			WarmUp:      2 * time.Second,
			Events: []harness.TimedEvent{
				{At: cutAt, Do: func(rt *harness.Runtime) error {
					_, err := rt.Topo.IsolateCluster(2)
					return err
				}},
				{At: healAt, Do: func(rt *harness.Runtime) error {
					return rt.Topo.RestoreLinks(rt.Topo.WANLinksOfCluster(2))
				}},
			},
			Drain:            90 * time.Second,
			StopWhenComplete: true,
		})
		if err != nil {
			return nil, err
		}
		mon := rt.MonitorHealth(100 * time.Millisecond)
		res, err := rt.Finish()
		if err != nil {
			return nil, err
		}
		results[i] = outcome{res: res, mon: mon}
		t.AddRow(name, res.UnreachableSends, res.SuppressedSends, res.ResyncBursts,
			res.CompletionAt, res.Complete)
	}
	rep.addTable(t)
	rep.note("3 clusters × 2 hosts, cluster 2 cut t=4s..34s, 30 messages; unreachable sends")
	rep.note("is control traffic that died inside the partition, suppressed is probes the")
	rep.note("health layer withheld while the peer was inside its backoff window")

	fixed, backoff := results[0].res, results[1].res
	rep.expect(len(fixed.EventErrors) == 0 && len(backoff.EventErrors) == 0, "event errors")
	rep.expect(fixed.Complete, "fixed run did not complete after heal")
	rep.expect(backoff.Complete, "backoff run did not complete after heal")
	// Parent/child remote traffic is never gated (that is what bounds the
	// post-heal latency), so the saving shows up in the global-probe share
	// of the waste: ≥ 25% overall (measured ~40% across seeds).
	rep.expect(backoff.UnreachableSends < fixed.UnreachableSends*3/4,
		"backoff wasted %d sends into the partition, not measurably below fixed's %d",
		backoff.UnreachableSends, fixed.UnreachableSends)
	rep.expect(backoff.SuppressedSends > 0, "health layer suppressed nothing")
	rep.expect(results[1].mon.PeakSuspectedPairs() > 0, "no peer was ever suspected")
	rep.expect(backoff.ResyncBursts > 0, "no fast-resync burst after the heal")
	slack := core.DefaultParams().InfoRemotePeriod
	rep.expect(backoff.CompletionAt <= fixed.CompletionAt+slack,
		"backoff completed at %v, fixed at %v — more than %v slower",
		backoff.CompletionAt, fixed.CompletionAt, slack)
	return rep, nil
}
