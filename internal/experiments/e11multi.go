package experiments

import (
	"fmt"
	"time"

	"rbcast/internal/core"
	"rbcast/internal/metrics"
	"rbcast/internal/multi"
	"rbcast/internal/netsim"
	"rbcast/internal/seqset"
	"rbcast/internal/sim"
	"rbcast/internal/topo"
)

// MultiSource (E11) validates the paper's §2 composition claim: "a
// multiple-source broadcast can be performed reliably by running several
// identical single-source protocols", and "from the point of view of
// efficiency this option also appears to be a reasonable one".
//
// Three sources in different clusters broadcast concurrently over one
// simulated network. Every stream must complete, and each stream's
// inter-cluster data cost must stay near the k−1 optimum a lone stream
// would pay — i.e. the composition is linear, with no cross-stream
// interference.
func MultiSource(seed int64) (Report, error) {
	rep := newReport("E11", "§2 composition — several single-source protocols share one network")
	const (
		clusters  = 4
		hostsPer  = 3
		perStream = 40
	)
	eng := sim.NewEngine(seed)
	tp, err := topo.Clustered(eng, topo.ClusteredConfig{
		Clusters:        clusters,
		HostsPerCluster: hostsPer,
		Shape:           topo.WANStar,
	})
	if err != nil {
		return nil, err
	}

	// Sources: one host in each of the first three clusters.
	sources := []core.HostID{
		core.HostID(tp.HostsByCluster[0][0]),
		core.HostID(tp.HostsByCluster[1][0]),
		core.HostID(tp.HostsByCluster[2][0]),
	}
	peers := make([]core.HostID, 0, len(tp.Hosts))
	for _, h := range tp.Hosts {
		peers = append(peers, core.HostID(h))
	}

	// streamMsg is the network payload: a protocol message tagged with
	// its stream.
	type streamMsg struct {
		stream multi.StreamID
		m      core.Message
	}

	// Per-stream accounting.
	interData := map[multi.StreamID]uint64{}
	delivered := map[multi.StreamID]map[core.HostID]seqset.Set{}
	for _, s := range sources {
		delivered[s] = map[core.HostID]seqset.Set{}
	}
	tp.Net.OnSend = func(_ int, env netsim.Envelope, inter bool) {
		sm, ok := env.Payload.(streamMsg)
		if !ok || !inter {
			return
		}
		if sm.m.Kind == core.MsgData {
			interData[sm.stream]++
		}
	}

	type busEnv struct {
		net *netsim.Network
		id  core.HostID
	}
	params := core.DefaultParams()
	buses := make(map[core.HostID]*multi.Bus, len(peers))
	for _, id := range peers {
		id := id
		env := busEnv{net: tp.Net, id: id}
		bus, err := multi.NewBus(multi.Config{
			ID:      id,
			Peers:   peers,
			Sources: sources,
			Params:  params,
		}, multiEnvFunc{
			send: func(to core.HostID, stream multi.StreamID, m core.Message) {
				_ = env.net.Send(netsim.HostID(env.id), netsim.HostID(to), streamMsg{stream: stream, m: m})
			},
			deliver: func(stream multi.StreamID, seq seqset.Seq, _ []byte) {
				s := delivered[stream][id]
				s.Add(seq)
				delivered[stream][id] = s
			},
		})
		if err != nil {
			return nil, err
		}
		buses[id] = bus
		if err := tp.Net.Handle(netsim.HostID(id), func(now time.Duration, env netsim.Envelope) {
			sm, ok := env.Payload.(streamMsg)
			if !ok {
				return
			}
			bus.HandleMessage(now, core.HostID(env.From), env.CostBit, sm.stream, sm.m)
		}); err != nil {
			return nil, err
		}
		// Tick loop.
		eng.Schedule(0, func() { bus.Tick(eng.Now()) })
		eng.Every(params.TickInterval, func() { bus.Tick(eng.Now()) })
	}

	// Workload: the three sources broadcast interleaved.
	for i := 0; i < perStream; i++ {
		for si, src := range sources {
			src := src
			at := 3*time.Second + time.Duration(i)*200*time.Millisecond +
				time.Duration(si)*60*time.Millisecond
			eng.Schedule(at, func() {
				if _, err := buses[src].Broadcast(eng.Now(), []byte{byte(src)}); err != nil {
					panic(err) // impossible: src is a source
				}
			})
		}
	}
	if err := eng.Run(3*time.Second + perStream*200*time.Millisecond + 30*time.Second); err != nil {
		return nil, err
	}

	optimum := float64(clusters - 1)
	t := metrics.NewTable("stream (source)", "complete", "inter-cluster data/msg", "vs k-1 optimum")
	for _, src := range sources {
		complete := true
		for _, id := range peers {
			got := delivered[src][id]
			if got.Max() != perStream || got.GapCount() != 0 {
				complete = false
			}
		}
		cost := float64(interData[src]) / float64(perStream)
		t.AddRow(fmt.Sprintf("host %d", src), complete, cost, metrics.Ratio(cost, optimum))
		rep.expect(complete, "stream %d incomplete", src)
		rep.expect(cost <= 1.6*optimum,
			"stream %d cost %.2f not near the lone-stream optimum %.1f — streams interfere",
			src, cost, optimum)
	}
	rep.addTable(t)
	rep.note("%d clusters × %d hosts; 3 concurrent sources in different clusters, %d msgs each",
		clusters, hostsPer, perStream)
	rep.note("each stream pays ≈ its own k−1, so the composition is linear as §2 argues")
	return rep, nil
}

// multiEnvFunc adapts closures to multi.Env.
type multiEnvFunc struct {
	send    func(to core.HostID, stream multi.StreamID, m core.Message)
	deliver func(stream multi.StreamID, seq seqset.Seq, payload []byte)
}

func (e multiEnvFunc) Send(to core.HostID, stream multi.StreamID, m core.Message) {
	e.send(to, stream, m)
}

func (e multiEnvFunc) Deliver(stream multi.StreamID, seq seqset.Seq, payload []byte) {
	e.deliver(stream, seq, payload)
}
