package experiments_test

import (
	"strings"
	"testing"

	"rbcast/internal/experiments"
)

// Every experiment's qualitative claim must hold — these are the
// reproduction's acceptance tests. Each experiment also runs under a
// second seed in -count=1 mode to guard against seed-luck (see
// TestAlternateSeed, which uses a subset for time).

func TestRegistry(t *testing.T) {
	all := experiments.All()
	if len(all) != 17 {
		t.Fatalf("registry holds %d experiments, want 17", len(all))
	}
	seen := map[string]bool{}
	for _, r := range all {
		if r.ID == "" || r.Title == "" || r.Run == nil {
			t.Errorf("incomplete runner %+v", r)
		}
		if seen[r.ID] {
			t.Errorf("duplicate experiment id %s", r.ID)
		}
		seen[r.ID] = true
		if _, ok := experiments.ByID(strings.ToLower(r.ID)); !ok {
			t.Errorf("ByID(%q) case-insensitive lookup failed", r.ID)
		}
	}
	if _, ok := experiments.ByID("nope"); ok {
		t.Error("ByID accepted unknown id")
	}
}

func TestAllExperimentsHold(t *testing.T) {
	for _, r := range experiments.All() {
		r := r
		t.Run(r.ID, func(t *testing.T) {
			t.Parallel()
			rep, err := r.Run(1)
			if err != nil {
				t.Fatalf("run error: %v", err)
			}
			if err := rep.Check(); err != nil {
				t.Errorf("claim does not hold:\n%s", rep.Render())
			}
			if rep.ID() != r.ID {
				t.Errorf("report id %q != runner id %q", rep.ID(), r.ID)
			}
			if !strings.Contains(rep.Render(), rep.ID()) {
				t.Error("Render does not include the experiment id")
			}
		})
	}
}

func TestAlternateSeed(t *testing.T) {
	// A different seed must not flip the verdicts; run the cheaper
	// experiments to bound test time.
	for _, id := range []string{"F3.1", "F4.1", "E1", "E4", "E7", "E12", "E13", "E14"} {
		id := id
		t.Run(id, func(t *testing.T) {
			t.Parallel()
			r, ok := experiments.ByID(id)
			if !ok {
				t.Fatalf("unknown id %s", id)
			}
			rep, err := r.Run(20260704)
			if err != nil {
				t.Fatalf("run error: %v", err)
			}
			if err := rep.Check(); err != nil {
				t.Errorf("claim does not hold under alternate seed:\n%s", rep.Render())
			}
		})
	}
}
