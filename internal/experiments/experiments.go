// Package experiments reproduces the paper's evaluation. ICDCS'88 papers
// of this kind argue qualitatively: §5 compares the tree protocol with
// the §1 basic algorithm on cost, delay, recovery, partition behaviour,
// source congestion, and control overhead, and Figures 3.1/3.2/4.1
// illustrate the protocol's key situations. Each experiment here turns
// one such claim into a measured table plus a machine-checked verdict
// ("who wins, in which direction"), so the whole evaluation regenerates
// with one command (cmd/rbexp) and is asserted in tests.
package experiments

import (
	"errors"
	"fmt"
	"strings"

	"rbcast/internal/metrics"
)

// Report is one experiment's rendered outcome.
type Report interface {
	// ID is the experiment identifier ("F3.1", "E1", ...).
	ID() string
	// Title is a one-line description.
	Title() string
	// Render returns the table(s) and notes as plain text.
	Render() string
	// Check returns nil when the paper's qualitative claim holds in the
	// measured data, or an explanatory error.
	Check() error
}

// Runner couples an experiment with its metadata for the CLI registry.
type Runner struct {
	ID    string
	Title string
	Run   func(seed int64) (Report, error)
}

// All returns every experiment in paper order.
func All() []Runner {
	return []Runner{
		{ID: "F3.1", Title: "Figure 3.1 — optimal broadcast cost is unattainable", Run: Fig31},
		{ID: "F3.2", Title: "Figure 3.2 — attachment converges to a cluster tree (and survives a cluster merge)", Run: Fig32},
		{ID: "F4.1", Title: "Figure 4.1 — complementary gaps need non-neighbour gap filling", Run: Fig41},
		{ID: "E1", Title: "§5 cost — inter-cluster transmissions per message vs. cluster count", Run: CostSweep},
		{ID: "E2", Title: "§5 delay — delivery latency, tree vs. basic", Run: DelaySweep},
		{ID: "E3", Title: "§5 recovery — redelivery locality under loss", Run: Recovery},
		{ID: "E4", Title: "§5 partitions — traffic wasted toward unreachable hosts", Run: Partition},
		{ID: "E5", Title: "§5 congestion — load on the source's access link", Run: Congestion},
		{ID: "E6", Title: "§5/§6 control traffic — independence from data volume", Run: ControlOverhead},
		{ID: "E7", Title: "§6 trade-off — exploiting a brief reconnection window vs. control cost", Run: Tradeoff},
		{ID: "E8", Title: "scalability — completion across network sizes", Run: Scalability},
		{ID: "E9", Title: "§6 ablation — dynamic vs. static vs. no cluster knowledge", Run: ClusterKnowledge},
		{ID: "E10", Title: "§6 optimization — piggybacking control messages", Run: Piggyback},
		{ID: "E11", Title: "§2 composition — multiple sources as parallel single-source protocols", Run: MultiSource},
		{ID: "E12", Title: "robustness — fixed-rate vs. backoff probing across a long partition", Run: BackoffRecovery},
		{ID: "E13", Title: "§2 assumption — echo/ready hardening vs. an equivocating source", Run: EchoReadyHardening},
		{ID: "E14", Title: "robustness — catch-up cost vs. history length for a late joiner", Run: CatchupScaling},
	}
}

// ByID returns the runner with the given ID.
func ByID(id string) (Runner, bool) {
	for _, r := range All() {
		if strings.EqualFold(r.ID, id) {
			return r, true
		}
	}
	return Runner{}, false
}

// report is the shared Report implementation experiments fill in.
type report struct {
	id     string
	title  string
	tables []*metrics.Table
	notes  []string
	fails  []string
}

func newReport(id, title string) *report {
	return &report{id: id, title: title}
}

func (r *report) addTable(t *metrics.Table) { r.tables = append(r.tables, t) }
func (r *report) note(format string, args ...any) {
	r.notes = append(r.notes, fmt.Sprintf(format, args...))
}

// expect records a named claim; failed claims turn into Check errors.
func (r *report) expect(ok bool, format string, args ...any) {
	if !ok {
		r.fails = append(r.fails, fmt.Sprintf(format, args...))
	}
}

func (r *report) ID() string    { return r.id }
func (r *report) Title() string { return r.title }

func (r *report) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: %s\n\n", r.id, r.title)
	for _, t := range r.tables {
		b.WriteString(t.String())
		b.WriteByte('\n')
	}
	for _, n := range r.notes {
		fmt.Fprintf(&b, "  %s\n", n)
	}
	if err := r.Check(); err != nil {
		fmt.Fprintf(&b, "  VERDICT: FAIL — %v\n", err)
	} else {
		b.WriteString("  VERDICT: holds\n")
	}
	return b.String()
}

func (r *report) Check() error {
	if len(r.fails) == 0 {
		return nil
	}
	return errors.New(strings.Join(r.fails, "; "))
}
