package experiments

import (
	"fmt"
	"time"

	"rbcast/internal/core"
	"rbcast/internal/harness"
	"rbcast/internal/metrics"
	"rbcast/internal/netsim"
	"rbcast/internal/sim"
	"rbcast/internal/topo"
)

func clusteredBuild(cfg topo.ClusteredConfig) func(sim.Loop) (*topo.Topology, error) {
	return func(eng sim.Loop) (*topo.Topology, error) {
		return topo.Clustered(eng, cfg)
	}
}

// CostSweep (E1) measures the paper's §5 headline: with the cluster-tree
// arrangement a data message needs only k−1 inter-cluster transmissions
// for k clusters — the optimum — while the basic algorithm pays one
// transmission per host outside the source's cluster, i.e. (k−1)·m.
func CostSweep(seed int64) (Report, error) {
	rep := newReport("E1", "inter-cluster data transmissions per message (k clusters × m hosts)")
	const m = 3
	t := metrics.NewTable(
		"clusters k", "hosts", "tree (meas.)", "tree opt k-1", "basic (meas.)", "basic pred (k-1)m", "basic/tree")
	for _, k := range []int{2, 4, 6, 8} {
		var got [2]float64
		var complete [2]bool
		for i, proto := range []harness.Protocol{harness.ProtocolTree, harness.ProtocolBasic} {
			res, err := harness.Run(harness.Scenario{
				Name:     fmt.Sprintf("e1-k%d-%s", k, proto),
				Seed:     seed,
				Build:    clusteredBuild(topo.ClusteredConfig{Clusters: k, HostsPerCluster: m, Shape: topo.WANStar}),
				Protocol: proto,
				Messages: 60,
				// Long enough for the tree to amortize formation cost.
				MsgInterval:      150 * time.Millisecond,
				WarmUp:           4 * time.Second,
				StopWhenComplete: true,
			})
			if err != nil {
				return nil, err
			}
			got[i] = res.InterClusterDataPerMessage()
			complete[i] = res.Complete
		}
		tree, basicCost := got[0], got[1]
		optTree := float64(k - 1)
		predBasic := float64((k - 1) * m)
		t.AddRow(k, k*m, tree, optTree, basicCost, predBasic, metrics.Ratio(basicCost, tree))
		rep.expect(complete[0], "tree incomplete at k=%d", k)
		rep.expect(complete[1], "basic incomplete at k=%d", k)
		rep.expect(tree < basicCost, "k=%d: tree cost %.2f not below basic %.2f", k, tree, basicCost)
		// Tree tracks its optimum closely (≤ 50% overhead from formation
		// and occasional gap fills).
		rep.expect(tree <= 1.5*optTree,
			"k=%d: tree cost %.2f exceeds 1.5×(k−1)=%.1f", k, tree, 1.5*optTree)
		// Basic matches its prediction (lossless network: exactly one copy
		// per outside host, acks excluded from the data metric).
		rep.expect(basicCost >= predBasic-0.01 && basicCost <= predBasic*1.1,
			"k=%d: basic cost %.2f far from prediction %.1f", k, basicCost, predBasic)
	}
	rep.addTable(t)
	rep.note("m = %d hosts per cluster; star WAN; lossless; 60 messages", m)
	return rep, nil
}

// DelaySweep (E2) compares delivery delay. §5 argues the tree's delay is
// comparable to the basic algorithm's, which always uses network-shortest
// paths: the attachment procedure's freshest-parent chasing keeps the
// tree shallow.
func DelaySweep(seed int64) (Report, error) {
	rep := newReport("E2", "delivery delay, tree vs. basic (chain of clusters)")
	t := metrics.NewTable("protocol", "mean", "p50", "p99", "max", "complete")
	results := map[harness.Protocol]*harness.Result{}
	// Per-cluster-distance breakdown: the chain puts cluster c at c WAN
	// hops from the source.
	depth := metrics.NewTable("protocol", "cluster 0 (local)", "cluster 1", "cluster 2", "cluster 3")
	byDepth := map[harness.Protocol][]time.Duration{}
	for _, proto := range []harness.Protocol{harness.ProtocolTree, harness.ProtocolBasic} {
		rt, err := harness.Prepare(harness.Scenario{
			Name:             "e2-" + proto.String(),
			Seed:             seed,
			Build:            clusteredBuild(topo.ClusteredConfig{Clusters: 4, HostsPerCluster: 3, Shape: topo.WANChain}),
			Protocol:         proto,
			Messages:         60,
			MsgInterval:      150 * time.Millisecond,
			WarmUp:           4 * time.Second,
			StopWhenComplete: true,
		})
		if err != nil {
			return nil, err
		}
		res, err := rt.Finish()
		if err != nil {
			return nil, err
		}
		results[proto] = res
		t.AddRow(proto.String(), res.Delays.Mean(), res.Delays.Median(),
			res.Delays.Quantile(0.99), res.Delays.Max(), res.Complete)
		var row []any
		row = append(row, proto.String())
		var means []time.Duration
		for c := 0; c < 4; c++ {
			var d metrics.Durations
			for _, h := range rt.Topo.HostsByCluster[c] {
				for seq, at := range res.DeliveredAt[core.HostID(h)] {
					if sent, ok := res.BroadcastAt[seq]; ok {
						d.Add(at - sent)
					}
				}
			}
			means = append(means, d.Mean())
			row = append(row, d.Mean())
		}
		byDepth[proto] = means
		depth.AddRow(row...)
	}
	rep.addTable(t)
	rep.addTable(depth)
	rep.note("4 clusters × 3 hosts in a chain (worst case for tree depth); lossless;")
	rep.note("cluster c sits c expensive hops from the source")

	tree, basicRes := results[harness.ProtocolTree], results[harness.ProtocolBasic]
	rep.expect(tree.Complete && basicRes.Complete, "incomplete runs")
	// "Comparable": same order of magnitude, not better — basic rides
	// network shortest paths.
	rep.expect(tree.Delays.Mean() <= 5*basicRes.Delays.Mean(),
		"tree mean delay %v not comparable to basic %v",
		tree.Delays.Mean(), basicRes.Delays.Mean())
	rep.expect(basicRes.Delays.Mean() > 0, "basic measured no delays")
	// Delay grows with cluster distance for both protocols, and at the
	// farthest cluster the tree stays within a small factor of basic.
	td, bd := byDepth[harness.ProtocolTree], byDepth[harness.ProtocolBasic]
	rep.expect(td[3] > td[0] && bd[3] > bd[0], "delay does not grow with distance")
	rep.expect(td[3] <= 5*bd[3],
		"tree delay at depth 3 (%v) not comparable to basic (%v)", td[3], bd[3])
	return rep, nil
}

// Recovery (E3) reproduces §5's recovery argument: when a message is
// lost, the tree protocol redelivers it from a cluster neighbour or the
// parent cluster — nearby — while the basic algorithm always retransmits
// from the source across the whole network. On a lossy chain the tree
// pays far fewer expensive-link traversals per delivered message.
func Recovery(seed int64) (Report, error) {
	rep := newReport("E3", "redelivery locality under loss (25% WAN loss, chain)")
	t := metrics.NewTable(
		"protocol", "delivered", "exp. traversals/delivery", "mean delay", "p99 delay", "complete")
	results := map[harness.Protocol]*harness.Result{}
	for _, proto := range []harness.Protocol{harness.ProtocolTree, harness.ProtocolBasic} {
		res, err := harness.Run(harness.Scenario{
			Name: "e3-" + proto.String(),
			Seed: seed,
			Build: clusteredBuild(topo.ClusteredConfig{
				Clusters:        4,
				HostsPerCluster: 2,
				Shape:           topo.WANChain,
				Cheap:           netsim.LinkConfig{Class: netsim.Cheap, LossProb: 0.02},
				Expensive:       netsim.LinkConfig{Class: netsim.Expensive, LossProb: 0.25},
			}),
			Protocol:         proto,
			Messages:         40,
			MsgInterval:      200 * time.Millisecond,
			WarmUp:           4 * time.Second,
			Drain:            90 * time.Second,
			StopWhenComplete: true,
		})
		if err != nil {
			return nil, err
		}
		results[proto] = res
		perDelivery := float64(res.DataExpensiveTraversals) / float64(max(res.DeliveredCount, 1))
		t.AddRow(proto.String(),
			fmt.Sprintf("%d/%d", res.DeliveredCount, res.ExpectedCount),
			perDelivery, res.Delays.Mean(), res.Delays.Quantile(0.99), res.Complete)
	}
	rep.addTable(t)
	rep.note("expensive traversals include retransmissions; chain length 3 WAN hops")

	tree, basicRes := results[harness.ProtocolTree], results[harness.ProtocolBasic]
	rep.expect(tree.Complete, "tree incomplete under loss (%d/%d)", tree.DeliveredCount, tree.ExpectedCount)
	rep.expect(basicRes.Complete, "basic incomplete under loss (%d/%d)", basicRes.DeliveredCount, basicRes.ExpectedCount)
	treeCost := float64(tree.DataExpensiveTraversals) / float64(max(tree.DeliveredCount, 1))
	basicCost := float64(basicRes.DataExpensiveTraversals) / float64(max(basicRes.DeliveredCount, 1))
	rep.expect(treeCost < basicCost,
		"tree expensive traversals per delivery %.2f not below basic %.2f", treeCost, basicCost)
	return rep, nil
}

// Partition (E4) reproduces §5's partition argument: the basic source
// keeps pumping copies at hosts it cannot reach, while in the tree
// protocol each fragment organizes into a tree and only leaders probe.
func Partition(seed int64) (Report, error) {
	rep := newReport("E4", "traffic sent toward unreachable hosts during a 20s partition")
	cutAt, healAt := 5*time.Second, 25*time.Second
	events := []harness.TimedEvent{
		{At: cutAt, Do: func(rt *harness.Runtime) error {
			_, err := rt.Topo.IsolateCluster(2)
			return err
		}},
		{At: healAt, Do: func(rt *harness.Runtime) error {
			return rt.Topo.RestoreLinks(rt.Topo.WANLinksOfCluster(2))
		}},
	}
	t := metrics.NewTable("protocol", "unreachable sends", "of which data", "complete after heal")
	results := map[harness.Protocol]*harness.Result{}
	for _, proto := range []harness.Protocol{harness.ProtocolTree, harness.ProtocolBasic} {
		res, err := harness.Run(harness.Scenario{
			Name:        "e4-" + proto.String(),
			Seed:        seed,
			Build:       clusteredBuild(topo.ClusteredConfig{Clusters: 3, HostsPerCluster: 2, Shape: topo.WANChain}),
			Protocol:    proto,
			Messages:    40,
			MsgInterval: 250 * time.Millisecond,
			WarmUp:      4 * time.Second,
			Events:      events,
			Drain:       60 * time.Second,
		})
		if err != nil {
			return nil, err
		}
		results[proto] = res
		t.AddRow(proto.String(), res.UnreachableSends,
			res.UnreachableSendsByKind["data"], res.Complete)
	}
	rep.addTable(t)
	rep.note("cluster 2 (2 hosts) isolated from t=5s to t=25s; messages flow throughout")

	tree, basicRes := results[harness.ProtocolTree], results[harness.ProtocolBasic]
	rep.expect(len(tree.EventErrors) == 0 && len(basicRes.EventErrors) == 0, "event errors")
	rep.expect(tree.Complete, "tree did not complete after heal")
	rep.expect(basicRes.Complete, "basic did not complete after heal")
	rep.expect(basicRes.UnreachableSendsByKind["data"] > 2*tree.UnreachableSendsByKind["data"],
		"basic wasted data sends (%d) not well above tree's (%d)",
		basicRes.UnreachableSendsByKind["data"], tree.UnreachableSendsByKind["data"])
	return rep, nil
}

// Congestion (E5) reproduces §5's congestion argument: under the basic
// algorithm every copy and every ack crosses the source's single access
// link; the tree spreads dissemination across all hosts.
func Congestion(seed int64) (Report, error) {
	rep := newReport("E5", "source access-link load (24 hosts, 6 clusters)")
	t := metrics.NewTable("protocol", "source-link total", "data+acks", "data+acks/msg", "complete")
	results := map[harness.Protocol]*harness.Result{}
	for _, proto := range []harness.Protocol{harness.ProtocolTree, harness.ProtocolBasic} {
		res, err := harness.Run(harness.Scenario{
			Name:             "e5-" + proto.String(),
			Seed:             seed,
			Build:            clusteredBuild(topo.ClusteredConfig{Clusters: 6, HostsPerCluster: 4, Shape: topo.WANStar}),
			Protocol:         proto,
			Messages:         40,
			MsgInterval:      200 * time.Millisecond,
			WarmUp:           4 * time.Second,
			StopWhenComplete: true,
		})
		if err != nil {
			return nil, err
		}
		results[proto] = res
		dissem := res.SourceLinkByKind["data"] + res.SourceLinkByKind["gapfill"] + res.SourceLinkByKind["ack"]
		t.AddRow(proto.String(), res.SourceHostLinkTransmissions, dissem,
			float64(dissem)/float64(res.Messages), res.Complete)
	}
	rep.addTable(t)
	rep.note("basic must push one copy per destination plus receive one ack each through this link;")
	rep.note("the tree column's total also includes its periodic (rate-independent) control exchange")

	tree, basicRes := results[harness.ProtocolTree], results[harness.ProtocolBasic]
	dissem := func(r *harness.Result) uint64 {
		return r.SourceLinkByKind["data"] + r.SourceLinkByKind["gapfill"] + r.SourceLinkByKind["ack"]
	}
	rep.expect(tree.Complete && basicRes.Complete, "incomplete runs")
	rep.expect(tree.SourceHostLinkTransmissions < basicRes.SourceHostLinkTransmissions,
		"tree source-link load %d not below basic %d",
		tree.SourceHostLinkTransmissions, basicRes.SourceHostLinkTransmissions)
	// The dissemination load itself (copies + acks) differs dramatically:
	// basic pays ≈ 2(n−1) per message, the tree pays its child count.
	rep.expect(dissem(tree)*2 < dissem(basicRes),
		"tree dissemination load %d not well below basic %d", dissem(tree), dissem(basicRes))
	return rep, nil
}

// ControlOverhead (E6) reproduces the §5/§6 claim that the tree
// protocol's control traffic is independent of the number of data
// messages (it is purely periodic), while the basic algorithm's control
// traffic (acks) grows linearly with data volume.
func ControlOverhead(seed int64) (Report, error) {
	rep := newReport("E6", "control traffic vs. data volume over a fixed 40s horizon")
	const horizon = 40 * time.Second
	const interval = 200 * time.Millisecond
	counts := []int{0, 25, 75, 150}
	t := metrics.NewTable("messages", "tree control sends", "basic ack sends")
	var treeControls []float64
	var basicAcks []float64
	for _, n := range counts {
		drain := horizon - time.Duration(n)*interval
		var treeControl, acks uint64
		for _, proto := range []harness.Protocol{harness.ProtocolTree, harness.ProtocolBasic} {
			res, err := harness.Run(harness.Scenario{
				Name:        fmt.Sprintf("e6-%s-%d", proto, n),
				Seed:        seed,
				Build:       clusteredBuild(topo.ClusteredConfig{Clusters: 3, HostsPerCluster: 3, Shape: topo.WANTree}),
				Protocol:    proto,
				Messages:    n,
				MsgInterval: interval,
				WarmUp:      2 * time.Second,
				Drain:       drain,
			})
			if err != nil {
				return nil, err
			}
			if proto == harness.ProtocolTree {
				treeControl = res.ControlSends()
			} else {
				acks = res.SendsByKind["ack"]
			}
		}
		treeControls = append(treeControls, float64(treeControl))
		basicAcks = append(basicAcks, float64(acks))
		t.AddRow(n, treeControl, acks)
	}
	rep.addTable(t)
	rep.note("equal virtual horizon for every row, so periodic traffic is directly comparable")

	// Tree control varies little across a 150-message spread.
	minC, maxC := treeControls[0], treeControls[0]
	for _, c := range treeControls {
		if c < minC {
			minC = c
		}
		if c > maxC {
			maxC = c
		}
	}
	rep.expect(maxC <= 1.3*minC,
		"tree control traffic varies %.0f–%.0f across data volumes (>30%%)", minC, maxC)
	// Basic acks grow roughly linearly: ~ (hosts−1) per message.
	rep.expect(basicAcks[0] == 0, "basic sent acks with zero messages (%v)", basicAcks[0])
	rep.expect(basicAcks[3] > 4*basicAcks[1],
		"basic acks not growing with data volume: %v", basicAcks)

	// §6 also suggests shrinking the periodic exchanges themselves. The
	// delta INFO optimization (Params.DeltaInfo) sends only the runs
	// gained since the last exchange to each peer; measure its effect on
	// INFO-channel wire bytes at the heaviest data volume.
	dt := metrics.NewTable("arm", "INFO wire bytes", "control sends", "complete")
	var infoBytes [2]uint64
	for arm, deltaOn := range []bool{false, true} {
		p := core.DefaultParams()
		p.DeltaInfo = deltaOn
		res, err := harness.Run(harness.Scenario{
			Name:        fmt.Sprintf("e6-delta-%v", deltaOn),
			Seed:        seed,
			Build:       clusteredBuild(topo.ClusteredConfig{Clusters: 3, HostsPerCluster: 3, Shape: topo.WANTree}),
			Protocol:    harness.ProtocolTree,
			Params:      p,
			Messages:    150,
			MsgInterval: interval,
			WarmUp:      2 * time.Second,
			Drain:       horizon - 150*interval,
		})
		if err != nil {
			return nil, err
		}
		infoBytes[arm] = res.InfoWireBytes
		label := "full INFO"
		if deltaOn {
			label = "delta INFO"
		}
		dt.AddRow(label, res.InfoWireBytes, res.ControlSends(), res.Complete)
		rep.expect(res.Complete, "%s arm did not complete delivery", label)
	}
	rep.addTable(dt)
	rep.note("delta frames are sent only when strictly smaller than the full set, so the byte total can only shrink")
	rep.expect(infoBytes[1] < infoBytes[0],
		"delta INFO bytes %d not below full INFO bytes %d", infoBytes[1], infoBytes[0])
	return rep, nil
}

// Tradeoff (E7) reproduces §6's reliability/cost trade-off. Reliability
// is the ability to exploit communication opportunities: a partitioned
// cluster misses a backlog of messages, the partition heals, and the time
// until the cluster catches up is governed by the exchange periods — a
// reconnection window shorter than that recovery time would be missed
// entirely. Scaling every cross-cluster period shows recovery time rising
// and control cost falling together, exactly the paper's trade-off.
func Tradeoff(seed int64) (Report, error) {
	rep := newReport("E7", "recovery time after reconnection vs. control-traffic cost")
	cutAt := 2 * time.Second
	healAt := 10 * time.Second
	drain := 60 * time.Second
	t := metrics.NewTable("period scale", "recovered", "recovery time", "control sends", "control/s")
	type point struct {
		scale     float64
		recovered float64
		recovery  time.Duration
		control   uint64
	}
	var points []point
	for _, scale := range []float64{0.25, 1, 4, 8} {
		params := core.DefaultParams()
		mul := func(d time.Duration) time.Duration {
			return time.Duration(float64(d) * scale)
		}
		params.AttachPeriod = mul(params.AttachPeriod)
		params.InfoRemotePeriod = mul(params.InfoRemotePeriod)
		params.InfoGlobalPeriod = mul(params.InfoGlobalPeriod)
		params.GapRemotePeriod = mul(params.GapRemotePeriod)
		params.GapGlobalPeriod = mul(params.GapGlobalPeriod)
		if pt := mul(params.ParentTimeout); pt > params.ParentTimeout {
			params.ParentTimeout = pt
		}
		events := []harness.TimedEvent{
			{At: cutAt, Do: func(rt *harness.Runtime) error {
				_, err := rt.Topo.IsolateCluster(1)
				return err
			}},
			{At: healAt, Do: func(rt *harness.Runtime) error {
				return rt.Topo.RestoreLinks(rt.Topo.WANLinksOfCluster(1))
			}},
		}
		res, err := harness.Run(harness.Scenario{
			Name:        fmt.Sprintf("e7-scale-%.2f", scale),
			Seed:        seed,
			Build:       clusteredBuild(topo.ClusteredConfig{Clusters: 2, HostsPerCluster: 2, Shape: topo.WANStar}),
			Protocol:    harness.ProtocolTree,
			Params:      params,
			Messages:    10,
			MsgInterval: 200 * time.Millisecond,
			WarmUp:      3 * time.Second, // broadcasts happen inside the partition
			Events:      events,
			Drain:       drain,
		})
		if err != nil {
			return nil, err
		}
		// Cluster 1 holds hosts 3 and 4 (2 clusters × 2 hosts).
		cutHosts := []core.HostID{3, 4}
		var gotten, want int
		recoveredAt := time.Duration(0)
		for _, h := range cutHosts {
			want += res.Messages
			gotten += res.Messages - len(res.MissingAt(h))
			for _, at := range res.DeliveredAt[h] {
				if at > recoveredAt {
					recoveredAt = at
				}
			}
		}
		recovered := float64(gotten) / float64(max(want, 1))
		recovery := recoveredAt - healAt
		if recovered < 1 {
			recovery = drain // never fully recovered within the horizon
		}
		horizon := healAt + drain
		points = append(points, point{scale: scale, recovered: recovered, recovery: recovery, control: res.ControlSends()})
		t.AddRow(fmt.Sprintf("%.2f×", scale),
			fmt.Sprintf("%.0f%%", 100*recovered),
			recovery,
			res.ControlSends(),
			float64(res.ControlSends())/horizon.Seconds())
	}
	rep.addTable(t)
	rep.note("cluster 1 partitioned before the 10 broadcasts; partition heals at t=%v", healAt)
	rep.note("a reconnection window shorter than the recovery time would be missed entirely")

	first, last := points[0], points[len(points)-1]
	rep.expect(first.recovered > 0.99, "fastest setting failed to recover the backlog (%.2f)", first.recovered)
	rep.expect(last.recovered > 0.99, "slowest setting never recovered within %v", drain)
	rep.expect(first.recovery < last.recovery,
		"recovery time not increasing with slower exchange: %v (fast) vs %v (slow)",
		first.recovery, last.recovery)
	rep.expect(first.recovery*4 < last.recovery,
		"recovery times %v vs %v do not reflect the 32× period spread", first.recovery, last.recovery)
	rep.expect(first.control > last.control,
		"faster exchanges did not cost more control traffic (%d vs %d)", first.control, last.control)
	return rep, nil
}

// Scalability (E8) checks completion and cost across network sizes.
func Scalability(seed int64) (Report, error) {
	rep := newReport("E8", "completion across network sizes (tree protocol)")
	t := metrics.NewTable("clusters", "hosts", "complete", "completion", "inter-cluster data/msg", "events simulated")
	type size struct{ k, m int }
	for _, sz := range []size{{2, 2}, {4, 3}, {6, 4}, {8, 6}} {
		rt, err := harness.Prepare(harness.Scenario{
			Name:             fmt.Sprintf("e8-%dx%d", sz.k, sz.m),
			Seed:             seed,
			Build:            clusteredBuild(topo.ClusteredConfig{Clusters: sz.k, HostsPerCluster: sz.m, Shape: topo.WANTree}),
			Protocol:         harness.ProtocolTree,
			Messages:         30,
			MsgInterval:      150 * time.Millisecond,
			WarmUp:           4 * time.Second,
			StopWhenComplete: true,
		})
		if err != nil {
			return nil, err
		}
		res, err := rt.Finish()
		if err != nil {
			return nil, err
		}
		t.AddRow(sz.k, sz.k*sz.m, res.Complete, res.CompletionAt,
			res.InterClusterDataPerMessage(), rt.Engine.EventsRun())
		rep.expect(res.Complete, "%dx%d incomplete (%d/%d)", sz.k, sz.m, res.DeliveredCount, res.ExpectedCount)
	}
	rep.addTable(t)
	return rep, nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
