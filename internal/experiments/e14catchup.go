package experiments

import (
	"fmt"
	"time"

	"rbcast/internal/core"
	"rbcast/internal/harness"
	"rbcast/internal/metrics"
	"rbcast/internal/replica"
	"rbcast/internal/topo"
)

// CatchupScaling (E14) measures the snapshot/catch-up sync layer's
// headline: a late joiner's convergence cost is O(missing data), not
// O(history). The joiner is down for the entire broadcast history; under
// liberated §6 pruning its peers have dropped most of that history and
// keep only a state-sized checkpoint (the replicated store has a bounded
// key space) plus an un-snapshotted tail. Catch-up work — snapshot bytes
// plus batched range requests for the tail — is therefore bounded by
// state size and checkpoint lag, so as the history length N grows the
// per-message §4.4 repair grows linearly while the catch-up totals stay
// nearly flat.
func CatchupScaling(seed int64) (Report, error) {
	rep := newReport("E14", "catch-up cost vs. history length — snapshot + range sync for a joiner that missed everything")
	const interval = 100 * time.Millisecond
	histories := []int{80, 160, 320, 640}
	t := metrics.NewTable(
		"history N", "catch-up bytes", "sync rounds", "snap installs", "snap deliveries", "complete at", "complete")
	type outcome struct {
		res *harness.Result
		n   int
	}
	results := make([]outcome, 0, len(histories))
	for _, n := range histories {
		params := core.DefaultParams().WithCatchupSync()
		params.PruneStable = true
		joinAt := time.Duration(n)*interval + 2*time.Second
		res, err := harness.Run(harness.Scenario{
			Name:        fmt.Sprintf("e14-n%d", n),
			Seed:        seed,
			Build:       clusteredBuild(topo.ClusteredConfig{Clusters: 2, HostsPerCluster: 3, Shape: topo.WANTree}),
			Protocol:    harness.ProtocolTree,
			Params:      params,
			Messages:    n,
			MsgInterval: interval,
			Replicate:   true,
			PayloadFor:  e14Payload,
			Events: []harness.TimedEvent{
				{At: 1 * time.Millisecond, Do: func(rt *harness.Runtime) error {
					return rt.Net.SetHostLinkUp(6, false)
				}},
				{At: joinAt, Do: func(rt *harness.Runtime) error {
					return rt.Net.SetHostLinkUp(6, true)
				}},
			},
			Drain:            60 * time.Second,
			StopWhenComplete: true,
		})
		if err != nil {
			return nil, err
		}
		results = append(results, outcome{res: res, n: n})
		t.AddRow(n, res.CatchupWireBytes, res.SyncRounds, res.SnapInstalls,
			res.SnapshotDeliveries, res.CompletionAt, res.Complete)
	}
	rep.addTable(t)
	rep.note("2 clusters × 3 hosts, WAN tree; host 6 down from t=1ms, back 2s after the")
	rep.note("last broadcast; replicated-register workload over 16 keys, so checkpoints")
	rep.note("are state-sized. catch-up bytes = encoded MsgSyncReq/Resp + MsgSnapReq/Chunk")

	for _, o := range results {
		rep.expect(len(o.res.EventErrors) == 0, "N=%d: event errors %v", o.n, o.res.EventErrors)
		rep.expect(o.res.Complete, "N=%d: joiner never converged (%d/%d)",
			o.n, o.res.DeliveredCount, o.res.ExpectedCount)
		rep.expect(o.res.DuplicateDeliveries == 0, "N=%d: %d duplicate deliveries", o.n, o.res.DuplicateDeliveries)
		rep.expect(o.res.SnapInstalls > 0, "N=%d: no snapshot installed — pruned prefix was replayed per message", o.n)
	}
	first, last := results[0].res, results[len(results)-1].res
	nFirst, nLast := results[0].n, results[len(results)-1].n
	growth := float64(nLast) / float64(nFirst)
	// The O(missing data) claim: an 8× longer history must not cost
	// anywhere near 8× the catch-up traffic — the snapshot covers the
	// pruned bulk at state-sized cost and range sync only the tail. Flat
	// within small-constant slack (≤ half the history growth) is the
	// pass bar; measured ratios sit far below it.
	rep.expect(float64(last.CatchupWireBytes) <= float64(first.CatchupWireBytes)*growth/2,
		"catch-up bytes grew with history: %d at N=%d vs %d at N=%d",
		last.CatchupWireBytes, nLast, first.CatchupWireBytes, nFirst)
	rep.expect(float64(last.SyncRounds) <= float64(first.SyncRounds)*growth/2,
		"sync rounds grew with history: %d at N=%d vs %d at N=%d",
		last.SyncRounds, nLast, first.SyncRounds, nFirst)
	return rep, nil
}

// e14Payload is the deterministic replicated-register workload: updates
// over 16 keys with monotone stamps, so checkpoint size tracks state,
// not history.
func e14Payload(i int) []byte {
	enc, err := replica.EncodeUpdate(replica.Update{
		Key:   fmt.Sprintf("k%02d", i%16),
		Value: fmt.Sprintf("v%05d", i),
		Stamp: uint64(i + 1),
	})
	if err != nil {
		panic(err)
	}
	return enc
}
