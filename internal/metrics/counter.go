package metrics

import (
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing event counter safe for
// concurrent use. The soak engine's worker pool tallies scenario
// outcomes and protocol-level totals through counters while runs
// complete on many goroutines at once.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// PerSecond converts a count accumulated over elapsed wall time into a
// rate. It returns 0 for a non-positive elapsed, so callers can report
// throughput without guarding degenerate timings.
func PerSecond(n uint64, elapsed time.Duration) float64 {
	if elapsed <= 0 {
		return 0
	}
	return float64(n) / elapsed.Seconds()
}
