// Package metrics provides the small statistics toolkit the experiment
// harness uses: duration samples with quantiles, and plain-text table
// rendering for experiment output.
package metrics

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// Durations collects duration samples and answers summary queries. The
// zero value is ready to use.
type Durations struct {
	samples []time.Duration
	sorted  bool
}

// Add records one sample.
func (d *Durations) Add(v time.Duration) {
	d.samples = append(d.samples, v)
	d.sorted = false
}

// Count returns the number of samples.
func (d *Durations) Count() int { return len(d.samples) }

// Merge appends every sample of o. Summary queries are order-blind, so
// merging per-shard sample sets in any fixed order yields identical
// statistics.
func (d *Durations) Merge(o *Durations) {
	if o == nil || len(o.samples) == 0 {
		return
	}
	d.samples = append(d.samples, o.samples...)
	d.sorted = false
}

// Mean returns the average, or 0 with no samples.
func (d *Durations) Mean() time.Duration {
	if len(d.samples) == 0 {
		return 0
	}
	var sum time.Duration
	for _, v := range d.samples {
		sum += v
	}
	return sum / time.Duration(len(d.samples))
}

// Min returns the smallest sample, or 0 with no samples.
func (d *Durations) Min() time.Duration {
	d.sort()
	if len(d.samples) == 0 {
		return 0
	}
	return d.samples[0]
}

// Max returns the largest sample, or 0 with no samples.
func (d *Durations) Max() time.Duration {
	d.sort()
	if len(d.samples) == 0 {
		return 0
	}
	return d.samples[len(d.samples)-1]
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) by nearest rank, or 0 with
// no samples.
func (d *Durations) Quantile(q float64) time.Duration {
	d.sort()
	if len(d.samples) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	idx := int(q*float64(len(d.samples)-1) + 0.5)
	return d.samples[idx]
}

// Median returns the 0.5 quantile.
func (d *Durations) Median() time.Duration { return d.Quantile(0.5) }

func (d *Durations) sort() {
	if d.sorted {
		return
	}
	sort.Slice(d.samples, func(i, j int) bool { return d.samples[i] < d.samples[j] })
	d.sorted = true
}

// Table renders aligned plain-text tables for experiment output.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(header ...string) *Table {
	return &Table{header: header}
}

// AddRow appends one row; values are formatted with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		case time.Duration:
			row[i] = v.Round(time.Millisecond).String()
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.header)
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}

// Ratio formats a/b as a "×" factor, guarding b == 0.
func Ratio(a, b float64) string {
	if b == 0 {
		return "∞"
	}
	return fmt.Sprintf("%.1f×", a/b)
}
