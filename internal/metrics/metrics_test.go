package metrics_test

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"rbcast/internal/metrics"
)

func TestDurationsEmpty(t *testing.T) {
	var d metrics.Durations
	if d.Count() != 0 || d.Mean() != 0 || d.Min() != 0 || d.Max() != 0 || d.Median() != 0 {
		t.Error("zero-value Durations not all-zero")
	}
}

func TestDurationsSummary(t *testing.T) {
	var d metrics.Durations
	for _, v := range []time.Duration{3, 1, 2, 5, 4} {
		d.Add(v * time.Millisecond)
	}
	if d.Count() != 5 {
		t.Errorf("Count = %d", d.Count())
	}
	if d.Mean() != 3*time.Millisecond {
		t.Errorf("Mean = %v, want 3ms", d.Mean())
	}
	if d.Min() != time.Millisecond || d.Max() != 5*time.Millisecond {
		t.Errorf("Min/Max = %v/%v", d.Min(), d.Max())
	}
	if d.Median() != 3*time.Millisecond {
		t.Errorf("Median = %v, want 3ms", d.Median())
	}
	if d.Quantile(0) != time.Millisecond || d.Quantile(1) != 5*time.Millisecond {
		t.Errorf("extreme quantiles wrong: %v %v", d.Quantile(0), d.Quantile(1))
	}
	// Out-of-range quantiles clamp.
	if d.Quantile(-1) != d.Quantile(0) || d.Quantile(2) != d.Quantile(1) {
		t.Error("quantile clamping wrong")
	}
}

func TestDurationsAddAfterQuery(t *testing.T) {
	var d metrics.Durations
	d.Add(5 * time.Millisecond)
	_ = d.Median() // forces sort
	d.Add(time.Millisecond)
	if d.Min() != time.Millisecond {
		t.Error("sample added after query ignored by Min")
	}
}

func TestQuantileMonotone(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		var d metrics.Durations
		for i := 0; i < int(n)+1; i++ {
			d.Add(time.Duration(rng.Intn(1000)) * time.Millisecond)
		}
		prev := time.Duration(-1)
		for q := 0.0; q <= 1.0; q += 0.1 {
			v := d.Quantile(q)
			if v < prev {
				return false
			}
			prev = v
		}
		return d.Min() <= d.Mean() && d.Mean() <= d.Max()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestTableRendering(t *testing.T) {
	tb := metrics.NewTable("name", "value", "delay")
	tb.AddRow("alpha", 42, 1500*time.Microsecond)
	tb.AddRow("a-much-longer-name", 7.25, time.Second)
	out := tb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 { // header, separator, 2 rows
		t.Fatalf("lines = %d, want 4:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[0], "name") || !strings.Contains(lines[0], "delay") {
		t.Errorf("header wrong: %q", lines[0])
	}
	if !strings.Contains(out, "7.25") {
		t.Errorf("float not formatted: %s", out)
	}
	if !strings.Contains(out, "2ms") { // 1500µs rounds to 2ms
		t.Errorf("duration not rounded: %s", out)
	}
	// Columns align: all lines equal width per column — check separator
	// covers the longest cell.
	if len(lines[1]) < len(lines[2]) {
		t.Errorf("separator shorter than data row:\n%s", out)
	}
}

func TestRatio(t *testing.T) {
	if got := metrics.Ratio(10, 2); got != "5.0×" {
		t.Errorf("Ratio = %q", got)
	}
	if got := metrics.Ratio(1, 0); got != "∞" {
		t.Errorf("Ratio by zero = %q", got)
	}
}
