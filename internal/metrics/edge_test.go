package metrics_test

import (
	"sync"
	"testing"
	"time"

	"rbcast/internal/metrics"
)

func TestDurationsSingleSample(t *testing.T) {
	var d metrics.Durations
	d.Add(7 * time.Millisecond)
	want := 7 * time.Millisecond
	if d.Count() != 1 {
		t.Errorf("Count = %d, want 1", d.Count())
	}
	// With one sample, every summary statistic collapses to it.
	for _, q := range []float64{-1, 0, 0.25, 0.5, 0.99, 1, 2} {
		if got := d.Quantile(q); got != want {
			t.Errorf("Quantile(%v) = %v, want %v", q, got, want)
		}
	}
	if d.Mean() != want || d.Min() != want || d.Max() != want || d.Median() != want {
		t.Errorf("Mean/Min/Max/Median = %v/%v/%v/%v, want all %v",
			d.Mean(), d.Min(), d.Max(), d.Median(), want)
	}
}

func TestDurationsAllDuplicates(t *testing.T) {
	var d metrics.Durations
	for i := 0; i < 9; i++ {
		d.Add(4 * time.Millisecond)
	}
	want := 4 * time.Millisecond
	if d.Mean() != want || d.Min() != want || d.Max() != want {
		t.Errorf("Mean/Min/Max = %v/%v/%v, want all %v", d.Mean(), d.Min(), d.Max(), want)
	}
	for _, q := range []float64{0, 0.5, 1} {
		if got := d.Quantile(q); got != want {
			t.Errorf("Quantile(%v) = %v, want %v", q, got, want)
		}
	}
}

func TestDurationsQuantileBoundaries(t *testing.T) {
	// Samples 10ms..100ms; nearest-rank on n-1 intervals.
	var d metrics.Durations
	for i := 10; i <= 100; i += 10 {
		d.Add(time.Duration(i) * time.Millisecond)
	}
	cases := []struct {
		q    float64
		want time.Duration
	}{
		{-0.5, 10 * time.Millisecond}, // clamps to 0
		{0, 10 * time.Millisecond},
		{0.5, 60 * time.Millisecond}, // idx round(4.5) = 5
		{0.99, 100 * time.Millisecond},
		{1, 100 * time.Millisecond},
		{1.5, 100 * time.Millisecond}, // clamps to 1
	}
	for _, tc := range cases {
		if got := d.Quantile(tc.q); got != tc.want {
			t.Errorf("Quantile(%v) = %v, want %v", tc.q, got, tc.want)
		}
	}
}

func TestCounter(t *testing.T) {
	var c metrics.Counter
	if c.Value() != 0 {
		t.Fatalf("zero Counter = %d", c.Value())
	}
	c.Inc()
	c.Add(41)
	if c.Value() != 42 {
		t.Errorf("Value = %d, want 42", c.Value())
	}
}

// TestCounterConcurrent: the counter is the soak pool's shared progress
// tally; concurrent increments must not lose updates (run under -race).
func TestCounterConcurrent(t *testing.T) {
	var c metrics.Counter
	var wg sync.WaitGroup
	const workers, each = 8, 1000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < each; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if c.Value() != workers*each {
		t.Errorf("Value = %d, want %d", c.Value(), workers*each)
	}
}

func TestPerSecond(t *testing.T) {
	cases := []struct {
		n       uint64
		elapsed time.Duration
		want    float64
	}{
		{100, time.Second, 100},
		{100, 2 * time.Second, 50},
		{0, time.Second, 0},
		{100, 0, 0},  // zero elapsed guards the division
		{100, -1, 0}, // negative elapsed likewise
	}
	for _, tc := range cases {
		if got := metrics.PerSecond(tc.n, tc.elapsed); got != tc.want {
			t.Errorf("PerSecond(%d, %v) = %v, want %v", tc.n, tc.elapsed, got, tc.want)
		}
	}
}
