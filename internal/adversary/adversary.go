// Package adversary is the deterministic fault-injection layer: it
// turns chosen simulated hosts into Byzantine participants without
// touching a line of protocol code.
//
// The paper's failure model is benign — links lose, duplicate, and
// reorder; hosts fall silent — so the protocol in internal/core has no
// defenses against hosts that actively lie. The related Byzantine
// reliable-broadcast literature (Imbs & Raynal; Bracha) is about
// exactly such hosts. This package lets the harness and soak sweeps
// explore that frontier: which lies the paper's protocol masks for
// free, and which violate its guarantees in ways the invariant checker
// must detect.
//
// An adversary host keeps running the unmodified correct algorithm;
// its hostility is injected at the netsim transmit seam
// (netsim.TransmitHook), where every outbound message can be dropped,
// rewritten, duplicated, or redirected before it enters the network.
// That placement mirrors the paper's architecture argument: servers
// are nonprogrammable, so the only place a host can misbehave is its
// own network interface.
//
// Behaviors compose: each is a pure rewrite of the outbound
// transmission list, applied in order, driven only by an explicit
// per-host detrand stream — so a run with adversaries is exactly as
// deterministic as one without, and soak sweeps stay byte-identical
// across worker counts.
package adversary

import (
	"fmt"
	"hash/fnv"
	"sort"

	"rbcast/internal/core"
	"rbcast/internal/detrand"
	"rbcast/internal/netsim"
)

// Send is one candidate transmission at the adversary layer: a protocol
// message bound for one destination, with an optional forged cost bit.
type Send struct {
	To           core.HostID
	M            core.Message
	ForceCostBit bool
}

// Stats counts hostile actions one adversary host actually performed.
type Stats struct {
	Equivocated uint64 `json:"equivocated,omitempty"`
	CostForged  uint64 `json:"cost_forged,omitempty"`
	InfoLies    uint64 `json:"info_lies,omitempty"`
	Replayed    uint64 `json:"replayed,omitempty"`
	Silenced    uint64 `json:"silenced,omitempty"`
	Hostile     uint64 `json:"hostile,omitempty"`
}

// add accumulates counters (for controller-level totals).
func (s *Stats) add(o Stats) {
	s.Equivocated += o.Equivocated
	s.CostForged += o.CostForged
	s.InfoLies += o.InfoLies
	s.Replayed += o.Replayed
	s.Silenced += o.Silenced
	s.Hostile += o.Hostile
}

// Ctx is the per-adversary-host mutable state shared by its behaviors.
type Ctx struct {
	// Self is the adversary host's own identity.
	Self core.HostID
	// RNG is the host's private deterministic stream; behaviors must
	// draw all randomness here.
	RNG *detrand.Rand
	// Stats accumulates this host's hostile-action counters.
	Stats *Stats

	// history is the replay ring buffer (see Replay).
	history []Send
	// applications counts hook activations, for every-Nth behaviors.
	applications uint64
	// fakeDigest remembers, per (sequence number, victim), the digest of
	// the equivocated payload sent there, so forged echo/ready votes stay
	// consistent with the forged data (see Equivocate).
	fakeDigest map[seqDest]uint64
}

type seqDest struct {
	seq uint64
	to  core.HostID
}

// Behavior rewrites one outbound transmission list. Implementations
// must be deterministic: same inputs and same Ctx.RNG stream, same
// output, with no map iteration feeding the result order.
type Behavior interface {
	Name() string
	Apply(ctx *Ctx, outs []Send) []Send
}

// Controller owns the adversary hosts of one simulated network.
type Controller struct {
	hosts map[core.HostID]*hostState
}

type hostState struct {
	ctx       *Ctx
	behaviors []Behavior
}

// Attach installs transmit hooks for every listed host. The per-host
// RNG streams are derived from (seed, host ID) alone, so setup order —
// including the map's iteration order — cannot influence any run.
func Attach(net *netsim.Network, seed int64, hosts map[core.HostID][]Behavior) (*Controller, error) {
	c := &Controller{hosts: make(map[core.HostID]*hostState, len(hosts))}
	for id, behaviors := range hosts {
		if len(behaviors) == 0 {
			return nil, fmt.Errorf("adversary: host %d has no behaviors", id)
		}
		st := &hostState{
			ctx: &Ctx{
				Self:       id,
				RNG:        detrand.New(hostSeed(seed, id)),
				Stats:      &Stats{},
				fakeDigest: make(map[seqDest]uint64),
			},
			behaviors: behaviors,
		}
		if err := net.SetTransmitHook(netsim.HostID(id), st.hook); err != nil {
			return nil, err
		}
		c.hosts[id] = st
	}
	return c, nil
}

// hostSeed mixes the scenario seed with the host identity, FNV-style.
func hostSeed(seed int64, id core.HostID) int64 {
	d := fnv.New64a()
	var buf [16]byte
	for i := 0; i < 8; i++ {
		buf[i] = byte(uint64(seed) >> (8 * i))
		buf[8+i] = byte(uint64(id) >> (8 * i))
	}
	d.Write(buf[:])
	return int64(d.Sum64())
}

// hook is the netsim.TransmitHook for one adversary host.
func (st *hostState) hook(to netsim.HostID, payload any) []netsim.Outbound {
	m, ok := payload.(core.Message)
	if !ok {
		// Not a protocol message (foreign traffic in some future runtime):
		// pass through untouched.
		return []netsim.Outbound{{To: to, Payload: payload}}
	}
	st.ctx.applications++
	outs := []Send{{To: core.HostID(to), M: m}}
	for _, b := range st.behaviors {
		outs = b.Apply(st.ctx, outs)
	}
	wire := make([]netsim.Outbound, 0, len(outs))
	for _, o := range outs {
		wire = append(wire, netsim.Outbound{
			To:           netsim.HostID(o.To),
			Payload:      o.M,
			ForceCostBit: o.ForceCostBit,
		})
	}
	return wire
}

// Hosts returns the adversary-controlled host IDs, sorted.
func (c *Controller) Hosts() []core.HostID {
	out := make([]core.HostID, 0, len(c.hosts))
	for id := range c.hosts {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Controls reports whether id is an adversary-controlled host.
func (c *Controller) Controls(id core.HostID) bool {
	_, ok := c.hosts[id]
	return ok
}

// StatsOf returns a copy of one host's hostile-action counters.
func (c *Controller) StatsOf(id core.HostID) Stats {
	if st, ok := c.hosts[id]; ok {
		return *st.ctx.Stats
	}
	return Stats{}
}

// Totals aggregates counters across all adversary hosts.
func (c *Controller) Totals() Stats {
	var t Stats
	for _, id := range c.Hosts() {
		t.add(*c.hosts[id].ctx.Stats)
	}
	return t
}

// mapMsg applies f to a message, descending into bundle parts (bundles
// never nest). f receiving a non-bundle message returns its rewrite.
func mapMsg(m core.Message, f func(core.Message) core.Message) core.Message {
	if m.Kind != core.MsgBundle {
		return f(m)
	}
	parts := make([]core.Message, len(m.Parts))
	for i, p := range m.Parts {
		parts[i] = f(p)
	}
	m.Parts = parts
	return m
}

// digest mirrors the echo/ready payload fingerprint in internal/core,
// so forged votes can be made consistent with forged payloads.
func digest(p []byte) uint64 {
	d := fnv.New64a()
	d.Write(p)
	return d.Sum64()
}
