package adversary

import (
	"fmt"

	"rbcast/internal/core"
	"rbcast/internal/seqset"
)

// The behavior catalogue. Two families matter for the soak classes:
//
// Maskable lies stay within what the paper's benign protocol absorbs —
// the same observable effects as loss, duplication, reordering, or a
// crashed host, so correct hosts converge anyway: ForgeCostBit (a
// cheap path misreported as expensive only worsens cluster inference),
// Replay (a stale frame is a dup or a late reorder), Silence (a mute
// peer looks crashed; the parent-silence timeout routes around it),
// and HostileWire (malformed values every receiver rejects).
//
// Unmaskable lies violate the broadcast guarantees themselves and must
// be *detected* by the harness instead: Equivocate (different payloads
// for one sequence number — correct hosts deliver conflicting data,
// unless Params.EchoReady withholds delivery) and LieInfo (INFO sets
// claiming sequence numbers the host does not hold — poisons MAP views
// and attracts attachments the liar cannot serve).

// Equivocate rewrites data payloads per destination: every victim
// receives a payload deterministically derived from (original, victim),
// so two victims — or a victim and a non-victim — observe conflicting
// contents for the same sequence number. Under Params.EchoReady the
// adversary's own echo/ready votes toward a victim are forged to match
// the lie, so the hardened protocol is attacked on its own terms.
type Equivocate struct {
	// Victims limits the attack to these destinations; nil means every
	// destination gets its own variant.
	Victims []core.HostID
}

// Name implements Behavior.
func (e Equivocate) Name() string { return "equivocate" }

// Apply implements Behavior.
func (e Equivocate) Apply(ctx *Ctx, outs []Send) []Send {
	for i, out := range outs {
		if !e.victim(out.To) {
			continue
		}
		to := out.To
		outs[i].M = mapMsg(out.M, func(m core.Message) core.Message {
			switch m.Kind {
			case core.MsgData:
				if m.Seq == 0 {
					return m
				}
				m.Payload = equivPayload(m.Payload, to)
				ctx.fakeDigest[seqDest{uint64(m.Seq), to}] = digest(m.Payload)
				ctx.Stats.Equivocated++
			case core.MsgEcho, core.MsgReady:
				if d, ok := ctx.fakeDigest[seqDest{uint64(m.Seq), to}]; ok {
					m.CheckLen = d
					ctx.Stats.Equivocated++
				}
			}
			return m
		})
	}
	return outs
}

func (e Equivocate) victim(to core.HostID) bool {
	if len(e.Victims) == 0 {
		return true
	}
	for _, v := range e.Victims {
		if v == to {
			return true
		}
	}
	return false
}

// equivPayload derives the forged payload: same length as the original
// (so wire-cost metrics stay comparable), content a pure function of
// (original, victim) so every retransmission lies identically.
func equivPayload(orig []byte, to core.HostID) []byte {
	mask := byte(0xA5) ^ byte(uint64(to)*31)
	if mask == 0 {
		mask = 0xA5
	}
	if len(orig) == 0 {
		return []byte{mask}
	}
	fake := make([]byte, len(orig))
	for i, b := range orig {
		fake[i] = b ^ mask
	}
	return fake
}

// ForgeCostBit marks every outbound message as having traversed an
// expensive link, regardless of the real path. The network can truthify
// a cheap claim (any expensive traversal sets the bit) but never clear
// a forged one, mirroring the paper's one-way cost-bit semantics.
type ForgeCostBit struct{}

// Name implements Behavior.
func (ForgeCostBit) Name() string { return "forge-cost-bit" }

// Apply implements Behavior.
func (ForgeCostBit) Apply(ctx *Ctx, outs []Send) []Send {
	for i := range outs {
		if !outs[i].ForceCostBit {
			outs[i].ForceCostBit = true
			ctx.Stats.CostForged++
		}
	}
	return outs
}

// LieInfo inflates every advertised INFO set with Claim sequence
// numbers beyond the real maximum — the host claims to hold messages
// it does not. Receivers' MAP views are poisoned: the liar becomes the
// most attractive attachment candidate and gap-fill target, yet can
// never produce the claimed data. A huge Claim doubles as the
// oversized-range hostile wire value (a single run spanning ~2^40
// members), exercising the interval-coded set paths.
type LieInfo struct {
	// Claim is the number of fabricated sequence numbers; 0 means 1<<20.
	Claim uint64
}

// Name implements Behavior.
func (LieInfo) Name() string { return "lie-info" }

// Apply implements Behavior.
func (l LieInfo) Apply(ctx *Ctx, outs []Send) []Send {
	claim := l.Claim
	if claim == 0 {
		claim = 1 << 20
	}
	for i, out := range outs {
		outs[i].M = mapMsg(out.M, func(m core.Message) core.Message {
			switch m.Kind {
			case core.MsgInfo, core.MsgAttachReq, core.MsgAttachAccept:
				s := m.Info.Snapshot()
				lo := s.Max() + 1
				s.AddRange(lo, lo+seqset.Seq(claim)-1)
				m.Info = s
				ctx.Stats.InfoLies++
			case core.MsgInfoDelta:
				// Keep the lie self-consistent: extend the delta runs and
				// adjust the full-set (max, length) checksum to match, so
				// the receiver's verification cannot save it.
				s := m.Info.Snapshot()
				lo := m.Seq + 1
				s.AddRange(lo, lo+seqset.Seq(claim)-1)
				m.Info = s
				m.Seq = lo + seqset.Seq(claim) - 1
				m.CheckLen += claim
				ctx.Stats.InfoLies++
			}
			return m
		})
	}
	return outs
}

// Replay keeps a ring buffer of past transmissions and, every Every-th
// hook activation, re-emits one chosen by the deterministic stream — a
// stale frame indistinguishable, to the receiver, from an extreme
// network reorder or duplicate.
type Replay struct {
	// Every is the activation period; 0 means 4.
	Every int
}

const replayRing = 32

// Name implements Behavior.
func (Replay) Name() string { return "replay" }

// Apply implements Behavior.
func (r Replay) Apply(ctx *Ctx, outs []Send) []Send {
	every := r.Every
	if every <= 0 {
		every = 4
	}
	var stale []Send
	if len(ctx.history) > 0 && ctx.applications%uint64(every) == 0 {
		stale = append(stale, ctx.history[ctx.RNG.Intn(len(ctx.history))])
		ctx.Stats.Replayed++
	}
	for _, out := range outs {
		if len(ctx.history) < replayRing {
			ctx.history = append(ctx.history, out)
		} else {
			ctx.history[int(ctx.applications)%replayRing] = out
		}
	}
	return append(outs, stale...)
}

// Silence drops every transmission toward the listed peers (nil = all:
// a fully mute host). To its targets the adversary is a crashed host —
// the benign failure the paper's timeouts already handle.
type Silence struct {
	Peers []core.HostID
}

// Name implements Behavior.
func (Silence) Name() string { return "silence" }

// Apply implements Behavior.
func (s Silence) Apply(ctx *Ctx, outs []Send) []Send {
	kept := outs[:0]
	for _, out := range outs {
		if s.mute(out.To) {
			ctx.Stats.Silenced++
			continue
		}
		kept = append(kept, out)
	}
	return kept
}

func (s Silence) mute(to core.HostID) bool {
	if len(s.Peers) == 0 {
		return true
	}
	for _, p := range s.Peers {
		if p == to {
			return true
		}
	}
	return false
}

// HostileWire injects taintlint-style pathological frames alongside
// real traffic every Every-th activation: a delta INFO whose checksum
// cannot verify (corrupt CheckLen over an empty delta) and a zero
// sequence number data frame. Correct receivers must reject both on
// every path — the deltas fall back to a no-op monotone merge, the
// zero-seq data is discarded — so this behavior is maskable by
// construction and exists to prove decoder/handler robustness.
type HostileWire struct {
	// Every is the activation period; 0 means 8.
	Every int
}

// Name implements Behavior.
func (HostileWire) Name() string { return "hostile-wire" }

// Apply implements Behavior.
func (hw HostileWire) Apply(ctx *Ctx, outs []Send) []Send {
	every := hw.Every
	if every <= 0 {
		every = 8
	}
	if len(outs) == 0 || ctx.applications%uint64(every) != 0 {
		return outs
	}
	to := outs[0].To
	ctx.Stats.Hostile += 2
	return append(outs,
		Send{To: to, M: core.Message{
			Kind:     core.MsgInfoDelta,
			Seq:      0,
			CheckLen: ^uint64(0),
			Parent:   outs[0].M.Parent,
		}},
		Send{To: to, M: core.Message{
			Kind:    core.MsgData,
			Seq:     0,
			Payload: []byte{0xde, 0xad},
			GapFill: true,
		}},
	)
}

// New builds a behavior from its spec name, for data-driven scenario
// generators (internal/soak). targets feeds Equivocate.Victims or
// Silence.Peers; claim feeds LieInfo.Claim.
func New(name string, targets []core.HostID, claim uint64) (Behavior, error) {
	switch name {
	case "equivocate":
		return Equivocate{Victims: targets}, nil
	case "forge-cost-bit":
		return ForgeCostBit{}, nil
	case "lie-info":
		return LieInfo{Claim: claim}, nil
	case "replay":
		return Replay{}, nil
	case "silence":
		return Silence{Peers: targets}, nil
	case "hostile-wire":
		return HostileWire{}, nil
	default:
		return nil, fmt.Errorf("adversary: unknown behavior %q", name)
	}
}

// Names returns the spec names of all behaviors, sorted.
func Names() []string {
	return []string{
		"equivocate", "forge-cost-bit", "hostile-wire",
		"lie-info", "replay", "silence",
	}
}
