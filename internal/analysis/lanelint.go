package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// LanePackages are the packages whose code runs inside (or schedules)
// simulation events and therefore owes the sharded engine its lane
// discipline.
var LanePackages = []string{
	"rbcast/internal/sim",
	"rbcast/internal/netsim",
	"rbcast/internal/harness",
	"rbcast/internal/soak",
}

// LaneLint verifies the sharded engine's determinism discipline
// statically — the contract DESIGN.md §"Lane discipline" pins in prose
// and sim.Sharded enforces with runtime panics only on paths a test
// happens to execute. Code reachable (via call/defer edges, composing
// the effect summaries of effects.go) from an event scheduled onto a
// lane must not call the global Schedule/Every/Now/Rand — those address
// the coordinator context — and must not call the parked-only
// ScheduleOn/EveryOn; the only scheduling call legal inside a lane
// event is ScheduleCross. Lane-addressed reads and crossings must name
// the *executing* lane: a provable mismatch (a different constant, a
// different variable) between an op's lane argument and the lane the
// event was scheduled onto is reported, tracked through closures and
// static call edges by the effect domain's provenance. Finally, no
// scheduling call may sit inside a map iteration: insertion order into
// an event queue is observable, so map-ordered fan-out breaks replay
// even on one lane.
//
// Known limits, on purpose: reachability follows the call graph's
// static and dynamic edges but skips bare `func()` values called
// dynamically (that shape is the engines' own event dispatch, and
// following it would conflate every scheduled event with every other);
// lane provenance that becomes opaque — a lane id reloaded from a
// struct field, or flowing through a dynamically dispatched call — is
// not reported. The runtime checkParked panic in sim.Sharded remains
// the dynamic backstop for what the static domain cannot see.
var LaneLint = &Analyzer{
	Name: "lanelint",
	Doc: "code reachable from a lane event must not call global or parked-only " +
		"Loop operations and must address only the executing lane " +
		"(sim, netsim, harness, soak)",
	Run: runLaneLint,
}

func runLaneLint(pass *Pass) error {
	if pass.Prog == nil {
		return nil
	}
	pass.Prog.ensureLaneDiags()
	for _, pd := range pass.Prog.laneDiags {
		if pd.pkgPath == pass.Pkg.Path() {
			pass.Report(pd.d)
		}
	}
	return nil
}

func (p *Program) ensureLaneDiags() {
	if p.laneDone {
		return
	}
	p.laneDone = true
	p.laneDiags = p.sortedProgDiags(computeLaneDiags(p))
}

// laneRoot is one event scheduled onto a lane: the function node that
// will run as the event and what is known about the destination lane.
type laneRoot struct {
	event *FuncNode
	lane  laneRef
	site  *ast.CallExpr // the scheduling call, for diagnostics
	node  *FuncNode     // the scheduling function
}

func computeLaneDiags(p *Program) []progDiag {
	var out []progDiag
	// reported dedupes per (site, rule) across roots: one witness root
	// is enough, and the first (deterministic node order) is kept.
	reported := make(map[token.Pos]map[string]bool)

	var roots []laneRoot
	for _, n := range p.Graph.Nodes {
		if !pkgInScope(n.Pkg.Path, LanePackages) || isLoopImplMethod(n) {
			continue
		}
		checkMapFanout(p, n, reported, &out)
		for _, site := range p.EffectsOf(n).sites {
			idx, ok := loopCallbackArg[site.name]
			if !ok || idx >= len(site.call.Args) {
				continue
			}
			var lane laneRef
			switch site.name {
			case "ScheduleOn", "EveryOn":
				lane = site.lane
			case "ScheduleCross":
				// The event lands on the `to` lane (argument 1).
				lane = p.resolveLaneRef(n, site.call.Args[1])
			default:
				continue // Schedule/Every open the permissive global context
			}
			if ev := p.resolveEventFunc(n, site.call.Args[idx]); ev != nil {
				roots = append(roots, laneRoot{event: ev, lane: lane, site: site.call, node: n})
			}
		}
	}
	for _, r := range roots {
		laneBFS(p, r, reported, &out)
	}
	return out
}

// laneState is one BFS configuration: a reachable function plus what is
// known there about the executing lane (provenance is rebound at every
// static call edge; dynamic dispatch forgets object bindings).
type laneState struct {
	node *FuncNode
	bind laneRef
}

func bindKey(r laneRef) string {
	switch r.kind {
	case laneRefConst:
		return fmt.Sprintf("c%d", r.c)
	case laneRefObject:
		return fmt.Sprintf("o%p", r.obj)
	}
	return "?"
}

// laneBFS walks everything reachable from one lane event, reporting
// Loop operations illegal in (or addressed wrongly from) lane context.
func laneBFS(p *Program, root laneRoot, reported map[token.Pos]map[string]bool, out *[]progDiag) {
	type seenKey struct {
		node *FuncNode
		bind string
	}
	seen := make(map[seenKey]bool)
	stack := []laneState{{node: root.event, bind: root.lane}}
	for len(stack) > 0 {
		st := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		k := seenKey{st.node, bindKey(st.bind)}
		if st.node == nil || seen[k] {
			continue
		}
		seen[k] = true
		if isLoopImplMethod(st.node) {
			continue
		}
		if pkgInScope(st.node.Pkg.Path, LanePackages) {
			checkLaneSites(p, root, st, reported, out)
		}
		for _, e := range st.node.Out {
			if e.Kind == EdgeGo || isThunkDispatch(e) {
				continue
			}
			stack = append(stack, laneState{node: e.Callee, bind: propagateBind(p, e, st.bind)})
		}
	}
}

// checkLaneSites applies the lane-context rules to one reachable
// function's effect summary.
func checkLaneSites(p *Program, root laneRoot, st laneState, reported map[token.Pos]map[string]bool, out *[]progDiag) {
	for _, site := range p.EffectsOf(st.node).sites {
		switch site.name {
		case "Schedule", "Every", "Now", "Rand":
			report(p, st.node, site.call.Pos(), "global", reported, out,
				"sim.Loop.%s addresses the global coordinator context but is reachable from a lane event (scheduled at %s); "+
					"lane events must use the lane-addressed variant with the executing lane, or ScheduleCross — see DESIGN.md \"Lane discipline\"",
				site.name, shortPos(p.Fset, root.site.Pos()))
		case "ScheduleOn", "EveryOn":
			report(p, st.node, site.call.Pos(), "parked", reported, out,
				"sim.Loop.%s may only be called with lanes parked but is reachable from a lane event (scheduled at %s); "+
					"schedule from inside a lane event via ScheduleCross — see DESIGN.md \"Lane discipline\"",
				site.name, shortPos(p.Fset, root.site.Pos()))
		case "NowOf", "RandOf", "ScheduleCross":
			if site.lane.differs(st.bind) {
				report(p, st.node, site.call.Pos(), "mismatch", reported, out,
					"sim.Loop.%s addresses %s but the executing lane of this event is %s (scheduled at %s); "+
						"lane events may only address their own lane — see DESIGN.md \"Lane discipline\"",
					site.name, site.lane.describe(), st.bind.describe(), shortPos(p.Fset, root.site.Pos()))
			}
		}
	}
}

// propagateBind rebinds the executing-lane provenance across one call
// edge: constants are context-free, closures share their captured
// objects, and a static call whose argument is the bound object rebinds
// to the matching parameter. Everything else (dynamic dispatch, the
// lane id disappearing into a field) becomes opaque.
func propagateBind(p *Program, e *CallEdge, bind laneRef) laneRef {
	if bind.kind == laneRefConst {
		return bind
	}
	if bind.kind != laneRefObject || e.Dynamic {
		return laneRef{}
	}
	if e.Callee.Lit != nil {
		return bind
	}
	if e.Callee.Decl != nil {
		params := funcParamObjsInfo(e.Callee.Pkg.TypesInfo, e.Callee.Decl)
		args := callArgExprs(e.Site, e.Callee.Decl)
		for i, param := range params {
			if param == nil || i >= len(args) || args[i] == nil || !isIntType(param.Type()) {
				continue
			}
			ref := p.resolveLaneRef(e.Caller, args[i])
			if ref.kind == laneRefObject && ref.obj == bind.obj {
				return laneRef{kind: laneRefObject, obj: param}
			}
		}
	}
	return laneRef{}
}

// isThunkDispatch reports a dynamic call of a bare `func()` value — the
// engines' own event dispatch shape. Following those edges would make
// every scheduled event reachable from every other (any code calling
// any func() value fans out to all of them), so the lane walk treats
// the event queue boundary the way CallGraph.Reachable treats go
// statements.
func isThunkDispatch(e *CallEdge) bool {
	if !e.Dynamic || e.Site == nil {
		return false
	}
	tv, ok := e.Caller.Pkg.TypesInfo.Types[ast.Unparen(e.Site.Fun)]
	if !ok || tv.Type == nil {
		return false
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	return ok && sig.Params().Len() == 0 && sig.Results().Len() == 0
}

// checkMapFanout reports scheduling calls lexically inside a map
// iteration: the order events enter a queue is observable in the trace,
// so map-ordered fan-out breaks seeded replay wherever it happens —
// lane event or not.
func checkMapFanout(p *Program, n *FuncNode, reported map[token.Pos]map[string]bool, out *[]progDiag) {
	info := n.Pkg.TypesInfo
	walkShallow(n.Body, func(node ast.Node) {
		rng, ok := node.(*ast.RangeStmt)
		if !ok {
			return
		}
		tv, ok := info.Types[rng.X]
		if !ok || tv.Type == nil {
			return
		}
		if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
			return
		}
		walkShallow(rng.Body, func(inner ast.Node) {
			call, ok := inner.(*ast.CallExpr)
			if !ok {
				return
			}
			name, ok := loopCallName(info, call)
			if !ok {
				return
			}
			if _, schedules := loopCallbackArg[name]; !schedules {
				return
			}
			report(p, n, call.Pos(), "mapfanout", reported, out,
				"sim.Loop.%s inside a map iteration: event insertion order would follow map "+
					"iteration order and break seeded replay; iterate a sorted copy of the keys — "+
					"see DESIGN.md \"Lane discipline\"", name)
		})
	})
}

func report(p *Program, n *FuncNode, pos token.Pos, rule string, reported map[token.Pos]map[string]bool, out *[]progDiag, format string, args ...any) {
	if reported[pos] == nil {
		reported[pos] = make(map[string]bool)
	}
	if reported[pos][rule] {
		return
	}
	reported[pos][rule] = true
	*out = append(*out, progDiag{
		pkgPath: n.Pkg.Path,
		d: Diagnostic{
			Analyzer: "lanelint",
			Pos:      pos,
			Message:  fmt.Sprintf(format, args...),
		},
	})
}
