package analysis

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package plus its test files.
type Package struct {
	Path      string // import path the package was checked under
	Dir       string
	Files     []*ast.File // non-test files, type-checked
	TestFiles []*ast.File // _test.go files, parsed only
	Types     *types.Package
	TypesInfo *types.Info
}

// Loader loads and type-checks packages of this module using only the
// standard library: module-internal imports are resolved against the
// module root and checked from source; everything else goes through the
// stdlib source importer. One Loader shares a package cache, so the
// standard library and every module package are checked at most once.
type Loader struct {
	Fset    *token.FileSet
	ModRoot string
	ModPath string

	std   types.ImporterFrom
	cache map[string]*Package
}

// NewLoader creates a loader rooted at the module containing dir (the
// nearest ancestor with a go.mod).
func NewLoader(dir string) (*Loader, error) {
	root, err := findModRoot(dir)
	if err != nil {
		return nil, err
	}
	modPath, err := readModulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	// The source importer consults go/build; with cgo disabled the
	// pure-Go variants of std packages (net in particular) are selected,
	// which is what the type checker can handle from source.
	build.Default.CgoEnabled = false
	fset := token.NewFileSet()
	std, ok := importer.ForCompiler(fset, "source", nil).(types.ImporterFrom)
	if !ok {
		return nil, fmt.Errorf("analysis: source importer does not implement ImporterFrom")
	}
	return &Loader{
		Fset:    fset,
		ModRoot: root,
		ModPath: modPath,
		std:     std,
		cache:   make(map[string]*Package),
	}, nil
}

// findModRoot walks up from dir to the nearest go.mod.
func findModRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("analysis: no go.mod above %s", dir)
		}
		dir = parent
	}
}

// readModulePath extracts the module path from a go.mod file.
func readModulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`), nil
		}
	}
	return "", fmt.Errorf("analysis: no module directive in %s", gomod)
}

// Import implements types.Importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	return l.ImportFrom(path, "", 0)
}

// ImportFrom implements types.ImporterFrom: module-internal paths are
// checked from source under the module root; everything else is
// delegated to the stdlib source importer.
func (l *Loader) ImportFrom(path, srcDir string, mode types.ImportMode) (*types.Package, error) {
	if pkg, ok := l.cache[path]; ok {
		return pkg.Types, nil
	}
	if path == l.ModPath || strings.HasPrefix(path, l.ModPath+"/") {
		rel := strings.TrimPrefix(strings.TrimPrefix(path, l.ModPath), "/")
		pkg, err := l.load(filepath.Join(l.ModRoot, filepath.FromSlash(rel)), path, true)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.ImportFrom(path, srcDir, mode)
}

// Load loads and type-checks the package in dir. asPath overrides the
// import path the package is checked under; empty derives it from the
// directory's position in the module. Results for module-path packages
// are cached and shared with dependency resolution.
func (l *Loader) Load(dir, asPath string) (*Package, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	if asPath == "" {
		rel, err := filepath.Rel(l.ModRoot, dir)
		if err != nil || strings.HasPrefix(rel, "..") {
			return nil, fmt.Errorf("analysis: %s is outside module %s", dir, l.ModRoot)
		}
		asPath = l.ModPath
		if rel != "." {
			asPath = l.ModPath + "/" + filepath.ToSlash(rel)
		}
	}
	if pkg, ok := l.cache[asPath]; ok {
		return pkg, nil
	}
	// Only packages whose checked path matches their on-disk location
	// enter the shared cache; testdata packages checked under assumed
	// paths must not shadow the real package for later importers.
	cacheable := strings.HasPrefix(dir+"/", l.ModRoot+"/") &&
		!strings.Contains(dir, string(filepath.Separator)+"testdata"+string(filepath.Separator))
	return l.load(dir, asPath, cacheable)
}

func (l *Loader) load(dir, path string, cacheable bool) (*Package, error) {
	astPkgs, err := parser.ParseDir(l.Fset, dir, nil, parser.ParseComments)
	if err != nil {
		return nil, fmt.Errorf("analysis: parse %s: %w", dir, err)
	}
	var files, testFiles []*ast.File
	var names, testNames []string
	for _, p := range astPkgs {
		for name := range p.Files {
			if strings.HasSuffix(name, "_test.go") {
				testNames = append(testNames, name)
			} else {
				names = append(names, name)
			}
		}
	}
	sort.Strings(names)
	sort.Strings(testNames)
	lookup := func(name string) *ast.File {
		for _, p := range astPkgs {
			if f, ok := p.Files[name]; ok {
				return f
			}
		}
		return nil
	}
	for _, name := range names {
		files = append(files, lookup(name))
	}
	for _, name := range testNames {
		testFiles = append(testFiles, lookup(name))
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("analysis: no non-test Go files in %s", dir)
	}

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(path, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-check %s: %w", path, err)
	}
	pkg := &Package{
		Path:      path,
		Dir:       dir,
		Files:     files,
		TestFiles: testFiles,
		Types:     tpkg,
		TypesInfo: info,
	}
	if cacheable {
		l.cache[path] = pkg
	}
	return pkg, nil
}

// LoadPatterns expands the given patterns relative to the module root
// and loads every matched package. Supported patterns: "./...", a
// directory path, or a directory path suffixed with "/...". Directories
// named testdata, vendor, or starting with "." or "_" are skipped.
func (l *Loader) LoadPatterns(patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	var dirs []string
	seen := make(map[string]bool)
	addDir := func(dir string) {
		if !seen[dir] {
			seen[dir] = true
			dirs = append(dirs, dir)
		}
	}
	for _, pat := range patterns {
		recursive := false
		if rest, ok := strings.CutSuffix(pat, "/..."); ok {
			recursive = true
			pat = rest
			if pat == "" || pat == "." {
				pat = "."
			}
		}
		dir := pat
		if !filepath.IsAbs(dir) {
			dir = filepath.Join(l.ModRoot, dir)
		}
		if !recursive {
			addDir(dir)
			continue
		}
		err := filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if path != dir && (name == "testdata" || name == "vendor" ||
				strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			if hasGoFiles(path) {
				addDir(path)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	var pkgs []*Package
	for _, dir := range dirs {
		pkg, err := l.Load(dir, "")
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// hasGoFiles reports whether dir directly contains a non-test .go file.
func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		name := e.Name()
		if !e.IsDir() && strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go") {
			return true
		}
	}
	return false
}
