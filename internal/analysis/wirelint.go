package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"strings"
)

// WireLint keeps the wire codec total over the message-kind space: in a
// package that declares top-level Encode and Decode functions, every
// constant of the MsgKind type must be handled on both the encode and
// the decode path (reachable same-package code must reference it from
// each entry point), and every kind must be seeded into a fuzz corpus
// (appear by name inside a Fuzz* function in the package's test files).
// A kind that encodes but does not decode is a protocol message that
// silently vanishes on the far side; a kind absent from the fuzz corpus
// never gets its frame layout exercised.
//
// When the codec package has a sibling bench package (../bench), every
// kind must additionally appear there by name: the benchmark suite's
// codec cases are the regression tripwire for encode/decode cost, and a
// kind missing from them can regress silently.
//
// When the codec package has a sibling live package (../live) with its
// own Fuzz* functions, every kind must also be seeded there: the live
// runtime wraps frames in a stream-prefixed envelope with its own
// decoder, and a kind fuzzed only at the frame layer can still panic
// the envelope path. Packages without such a sibling (or whose sibling
// has no fuzz targets) are exempt.
var WireLint = &Analyzer{
	Name: "wirelint",
	Doc: "every MsgKind must be handled by both Encode and Decode, seeded " +
		"in a Fuzz* corpus, and covered by the sibling bench and live-fuzz packages",
	Run: runWireLint,
}

func runWireLint(pass *Pass) error {
	encode := topLevelFunc(pass, "Encode")
	decode := topLevelFunc(pass, "Decode")
	if encode == nil || decode == nil {
		return nil
	}
	kindType := findMsgKindType(pass)
	if kindType == nil {
		return nil
	}
	kinds := kindConstants(kindType)
	if len(kinds) == 0 {
		return nil
	}

	encodeRefs := reachableKindRefs(pass, encode, kindType)
	decodeRefs := reachableKindRefs(pass, decode, kindType)
	fuzzFuncs, fuzzNames := fuzzSeedNames(pass)

	for _, k := range kinds {
		if !encodeRefs[k] {
			pass.Reportf(encode.Pos(),
				"message kind %s is not handled on the Encode path: frames of this kind cannot be sent", k.Name())
		}
		if !decodeRefs[k] {
			pass.Reportf(decode.Pos(),
				"message kind %s is not handled on the Decode path: frames of this kind are dropped on receipt", k.Name())
		}
	}
	if len(fuzzFuncs) == 0 {
		pass.Reportf(decode.Pos(),
			"package has Encode/Decode but no Fuzz* function seeding message kinds into a corpus")
		return nil
	}
	for _, k := range kinds {
		if !fuzzNames[k.Name()] {
			pass.Reportf(fuzzFuncs[0].Pos(),
				"message kind %s is not seeded in any Fuzz* corpus: its frame layout is never fuzzed", k.Name())
		}
	}
	if benchNames, ok := siblingBenchNames(pass); ok {
		for _, k := range kinds {
			if !benchNames[k.Name()] {
				pass.Reportf(decode.Pos(),
					"message kind %s has no codec case in the sibling bench package: its encode/decode cost can regress unnoticed", k.Name())
			}
		}
	}
	if liveNames, ok := siblingLiveFuzzNames(pass); ok {
		for _, k := range kinds {
			if !liveNames[k.Name()] {
				pass.Reportf(decode.Pos(),
					"message kind %s is not seeded in the sibling live package's Fuzz* corpus: the envelope decoder never sees its layout", k.Name())
			}
		}
	}
	return nil
}

// siblingLiveFuzzNames parses the codec package's sibling live
// directory (../live) and collects every identifier name inside Fuzz*
// function bodies of its test files. ok is false when no such directory
// exists or it declares no fuzz targets — such packages are exempt.
func siblingLiveFuzzNames(pass *Pass) (map[string]bool, bool) {
	dir := filepath.Join(filepath.Dir(pass.Dir), "live")
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, false
	}
	fset := token.NewFileSet()
	names := make(map[string]bool)
	found := false
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, 0)
		if err != nil {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv != nil || !strings.HasPrefix(fd.Name.Name, "Fuzz") || fd.Body == nil {
				continue
			}
			found = true
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if id, ok := n.(*ast.Ident); ok {
					names[id.Name] = true
				}
				return true
			})
		}
	}
	return names, found
}

// siblingBenchNames parses the codec package's sibling bench directory
// (../bench relative to the analyzed package) and collects every
// identifier name in its non-test sources. ok is false when no such
// directory exists — packages without a bench sibling are exempt.
func siblingBenchNames(pass *Pass) (map[string]bool, bool) {
	dir := filepath.Join(filepath.Dir(pass.Dir), "bench")
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, false
	}
	fset := token.NewFileSet()
	names := make(map[string]bool)
	found := false
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, 0)
		if err != nil {
			continue
		}
		found = true
		ast.Inspect(f, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok {
				names[id.Name] = true
			}
			return true
		})
	}
	return names, found
}

// topLevelFunc finds a package-level function (no receiver) by name.
func topLevelFunc(pass *Pass, name string) *ast.FuncDecl {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Recv == nil && fd.Name.Name == name {
				return fd
			}
		}
	}
	return nil
}

// findMsgKindType locates the named type MsgKind, declared in this
// package or in any package this one references.
func findMsgKindType(pass *Pass) *types.Named {
	for _, obj := range pass.TypesInfo.Uses {
		if n := msgKindOf(obj); n != nil {
			return n
		}
	}
	for _, obj := range pass.TypesInfo.Defs {
		if n := msgKindOf(obj); n != nil {
			return n
		}
	}
	return nil
}

func msgKindOf(obj types.Object) *types.Named {
	if obj == nil {
		return nil
	}
	if tn, ok := obj.(*types.TypeName); ok && tn.Name() == "MsgKind" {
		if n, ok := tn.Type().(*types.Named); ok {
			return n
		}
	}
	if n, ok := obj.Type().(*types.Named); ok && n.Obj().Name() == "MsgKind" {
		return n
	}
	return nil
}

// kindConstants lists every constant of the kind type declared in the
// type's own package, in scope-name order.
func kindConstants(kind *types.Named) []*types.Const {
	pkg := kind.Obj().Pkg()
	if pkg == nil {
		return nil
	}
	var out []*types.Const
	scope := pkg.Scope()
	for _, name := range scope.Names() {
		if c, ok := scope.Lookup(name).(*types.Const); ok && types.Identical(c.Type(), kind) {
			out = append(out, c)
		}
	}
	return out
}

// reachableKindRefs collects the kind constants referenced by root or by
// any same-package function transitively called from it.
func reachableKindRefs(pass *Pass, root *ast.FuncDecl, kind *types.Named) map[*types.Const]bool {
	decls := packageFuncDecls(pass)
	refs := make(map[*types.Const]bool)
	visited := make(map[*ast.FuncDecl]bool)
	var visit func(fd *ast.FuncDecl)
	visit = func(fd *ast.FuncDecl) {
		if visited[fd] || fd.Body == nil {
			return
		}
		visited[fd] = true
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			obj := pass.TypesInfo.Uses[id]
			if obj == nil {
				return true
			}
			if c, ok := obj.(*types.Const); ok && types.Identical(c.Type(), kind) {
				refs[c] = true
			}
			if callee, ok := decls[obj]; ok {
				visit(callee)
			}
			return true
		})
	}
	visit(root)
	return refs
}

// fuzzSeedNames scans the package's test files (parsed only: they may
// belong to an external _test package) for Fuzz* functions and collects
// every identifier and selector name inside them. A kind counts as
// seeded when its name appears — as `MsgData` or `core.MsgData` — in
// some Fuzz* body.
func fuzzSeedNames(pass *Pass) ([]*ast.FuncDecl, map[string]bool) {
	var fuzz []*ast.FuncDecl
	names := make(map[string]bool)
	for _, file := range pass.TestFiles {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv != nil || !strings.HasPrefix(fd.Name.Name, "Fuzz") || fd.Body == nil {
				continue
			}
			fuzz = append(fuzz, fd)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if id, ok := n.(*ast.Ident); ok {
					names[id.Name] = true
				}
				return true
			})
		}
	}
	return fuzz, names
}
