package analysis_test

import (
	"testing"

	"rbcast/internal/analysis"
	"rbcast/internal/analysis/analysistest"
)

// TestAnalyzers runs every analyzer over its testdata package. Each
// package contains both triggering code (marked with `// want` comment
// expectations) and non-triggering counterparts; analysistest fails on
// any missing or unexpected diagnostic.
func TestAnalyzers(t *testing.T) {
	tests := []struct {
		name     string
		analyzer *analysis.Analyzer
		dir      string
		// asPath is the import path the package is checked under; empty
		// uses the real testdata path, which keeps the package outside
		// path-scoped analyzers' jurisdiction.
		asPath string
	}{
		{"detlint/deterministic-package", analysis.DetLint, "testdata/det", "rbcast/internal/core"},
		{"detlint/out-of-scope-package", analysis.DetLint, "testdata/detclean", ""},
		{"locklint", analysis.LockLint, "testdata/lock", ""},
		{"paramlint", analysis.ParamLint, "testdata/param", ""},
		{"wirelint", analysis.WireLint, "testdata/wire", ""},
		{"taintlint/wire-scope", analysis.TaintLint, "testdata/taint", "rbcast/internal/wire"},
		{"taintlint/out-of-scope-package", analysis.TaintLint, "testdata/taintclean", ""},
		{"monolint", analysis.MonoLint, "testdata/mono", "rbcast/internal/core"},
		{"leaklint", analysis.LeakLint, "testdata/leak", "rbcast/internal/udp"},
		{"sharelint", analysis.ShareLint, "testdata/share", "rbcast/internal/udp"},
		{"sharelint/out-of-scope-package", analysis.ShareLint, "testdata/shareclean", ""},
		{"ordlint", analysis.OrdLint, "testdata/ord", "rbcast/internal/live"},
		{"alloclint", analysis.AllocLint, "testdata/alloc", ""},
		{"lanelint", analysis.LaneLint, "testdata/lane", "rbcast/internal/sim"},
		{"lanelint/out-of-scope-package", analysis.LaneLint, "testdata/laneclean", ""},
		{"quorumlint", analysis.QuorumLint, "testdata/quorum", "rbcast/internal/core"},
		{"quorumlint/out-of-scope-package", analysis.QuorumLint, "testdata/quorumclean", ""},
		{"ignore-directive", analysis.DetLint, "testdata/ignoretd", "rbcast/internal/core"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			analysistest.Run(t, tt.analyzer, tt.dir, tt.asPath)
		})
	}
}
