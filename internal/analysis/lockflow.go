package analysis

// lockflow.go — the interprocedural lock model shared by sharelint and
// ordlint.
//
// Three layers:
//
//   - lock classes: every mutex the program acquires is named by a
//     canonical class string — "pkg/path.Type.field" for mutexes stored
//     in struct fields (instance-blind: every Host.mu is one class),
//     "pkg/path.var" for package-level mutexes, and an owner-qualified
//     position for function-local ones;
//   - walkLocks: a statement-ordered walk of one function body that
//     maintains the set of classes held (relative to function entry,
//     with locklint's semantics: branch bodies see a copy, a deferred
//     Unlock keeps the class held, nested function literals are not
//     entered) and shows every node to a visitor together with that set;
//   - whole-program facts on Program: lockSummaryOf gives the classes a
//     function may transitively acquire (with a witness call chain), and
//     entryHeldOf gives the classes guaranteed held whenever a function
//     is entered — a must-analysis intersection over all non-spawn
//     callers, which is what makes the `fooLocked` helper idiom legible
//     to the analyzers.

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
)

// lockSummary is the bottom-up memoized lock behaviour of one function:
// every class it may acquire, directly or through (non-spawn) callees.
type lockSummary struct {
	acquires map[string]*acqWitness
}

// acqWitness records one concrete acquisition justifying a summary
// entry: the Lock call position and the call chain leading to it.
type acqWitness struct {
	pos   token.Pos
	chain []string // function display names, outermost first
}

// mutexSelector matches X.Lock / X.RLock / X.Unlock / X.RUnlock where
// the method belongs to sync.Mutex or sync.RWMutex, returning the
// receiver expression X and whether the call acquires.
func mutexSelector(info *types.Info, call *ast.CallExpr) (x ast.Expr, locks, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return nil, false, false
	}
	fn, isFn := info.Uses[sel.Sel].(*types.Func)
	if !isFn || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return nil, false, false
	}
	recv := fn.Type().(*types.Signature).Recv()
	if recv == nil {
		return nil, false, false
	}
	switch recvTypeName(recv.Type()) {
	case "Mutex", "RWMutex":
	default:
		return nil, false, false
	}
	switch fn.Name() {
	case "Lock", "RLock":
		return sel.X, true, true
	case "Unlock", "RUnlock":
		return sel.X, false, true
	}
	return nil, false, false
}

// lockClass renders the canonical class of the mutex expression x.
// owner qualifies function-local mutexes so distinct locals stay
// distinct classes.
func (p *Program) lockClass(pkg *Package, owner string, x ast.Expr) string {
	info := pkg.TypesInfo
	x = ast.Unparen(x)
	if sel, ok := x.(*ast.SelectorExpr); ok {
		// A mutex stored in a struct field: class by owning type, so
		// t.mu and f.Transport.mu name the same lock class.
		if s, ok := info.Selections[sel]; ok && s.Kind() == types.FieldVal {
			t := s.Recv()
			if ptr, ok := t.(*types.Pointer); ok {
				t = ptr.Elem()
			}
			if named, ok := t.(*types.Named); ok && named.Obj().Pkg() != nil {
				return named.Obj().Pkg().Path() + "." + named.Obj().Name() + "." + sel.Sel.Name
			}
		}
		// Qualified package-level mutex: pkg.Mu.
		if obj, ok := info.Uses[sel.Sel].(*types.Var); ok && isPackageLevelVar(obj) {
			return obj.Pkg().Path() + "." + obj.Name()
		}
	}
	if id, ok := x.(*ast.Ident); ok {
		if obj, ok := info.Uses[id].(*types.Var); ok {
			if isPackageLevelVar(obj) {
				return obj.Pkg().Path() + "." + obj.Name()
			}
			pos := p.Fset.Position(obj.Pos())
			return fmt.Sprintf("%s.%s@%s:%d", owner, obj.Name(), filepath.Base(pos.Filename), pos.Line)
		}
	}
	// An embedded mutex locked through its carrier (h.Lock() where the
	// carrier type embeds sync.Mutex): class by the carrier's named type.
	if tv, ok := info.Types[x]; ok && tv.Type != nil {
		t := tv.Type
		if ptr, ok := t.(*types.Pointer); ok {
			t = ptr.Elem()
		}
		if named, ok := t.(*types.Named); ok && named.Obj().Pkg() != nil {
			return named.Obj().Pkg().Path() + "." + named.Obj().Name()
		}
	}
	return owner + "." + types.ExprString(x)
}

func isPackageLevelVar(obj *types.Var) bool {
	return obj.Pkg() != nil && obj.Parent() == obj.Pkg().Scope()
}

// lockEventClass classifies a call inside node n as a lock event,
// returning the canonical class.
func (p *Program) lockEventClass(n *FuncNode, call *ast.CallExpr) (class string, locks, ok bool) {
	x, locks, ok := mutexSelector(n.Pkg.TypesInfo, call)
	if !ok {
		return "", false, false
	}
	return p.lockClass(n.Pkg, n.EnclosingDecl().Name, x), locks, true
}

// walkLocks walks n's body in statement order, maintaining the set of
// lock classes held relative to function entry, and calls visit on
// every AST node with the set as it stands when the node executes.
// Nested function literals are shown as expressions but their bodies
// are not entered (each literal is its own graph node and is walked on
// its own). Lock events are applied after the statement carrying them
// is visited, so an acquisition site sees the held-set *before* it.
func (p *Program) walkLocks(n *FuncNode, visit func(node ast.Node, held map[string]bool)) {
	w := &lockWalker{prog: p, node: n, visit: visit}
	w.stmts(n.Body.List, map[string]bool{})
}

type lockWalker struct {
	prog  *Program
	node  *FuncNode
	visit func(ast.Node, map[string]bool)
}

// visitTree shows every node of a one-held-set subtree to the visitor,
// cutting off at nested function literal bodies.
func (w *lockWalker) visitTree(n ast.Node, held map[string]bool) {
	if n == nil {
		return
	}
	ast.Inspect(n, func(x ast.Node) bool {
		if x == nil {
			return false
		}
		if lit, ok := x.(*ast.FuncLit); ok && x != n {
			w.visit(lit, held)
			return false
		}
		w.visit(x, held)
		return true
	})
}

func (w *lockWalker) stmts(list []ast.Stmt, held map[string]bool) {
	for _, s := range list {
		w.stmt(s, held)
	}
}

func (w *lockWalker) stmt(s ast.Stmt, held map[string]bool) {
	switch s := s.(type) {
	case *ast.ExprStmt:
		w.visitTree(s, held)
		if call, ok := s.X.(*ast.CallExpr); ok {
			if class, locks, ok := w.prog.lockEventClass(w.node, call); ok {
				if locks {
					held[class] = true
				} else {
					delete(held, class)
				}
			}
		}
	case *ast.DeferStmt:
		// Visited with the registration-time held set; a deferred Unlock
		// keeps the class held for the rest of the walk (locklint's
		// critical-section semantics).
		w.visitTree(s, held)
	case *ast.BlockStmt:
		w.stmts(s.List, held)
	case *ast.IfStmt:
		if s.Init != nil {
			w.stmt(s.Init, held)
		}
		w.visitTree(s.Cond, held)
		w.stmts(s.Body.List, copyHeld(held))
		if s.Else != nil {
			w.stmt(s.Else, copyHeld(held))
		}
	case *ast.ForStmt:
		if s.Init != nil {
			w.stmt(s.Init, held)
		}
		if s.Cond != nil {
			w.visitTree(s.Cond, held)
		}
		body := copyHeld(held)
		w.stmts(s.Body.List, body)
		if s.Post != nil {
			w.stmt(s.Post, body)
		}
	case *ast.RangeStmt:
		w.visitTree(s.X, held)
		if s.Key != nil {
			w.visitTree(s.Key, held)
		}
		if s.Value != nil {
			w.visitTree(s.Value, held)
		}
		w.stmts(s.Body.List, copyHeld(held))
	case *ast.SwitchStmt:
		if s.Init != nil {
			w.stmt(s.Init, held)
		}
		if s.Tag != nil {
			w.visitTree(s.Tag, held)
		}
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				for _, e := range cc.List {
					w.visitTree(e, held)
				}
				w.stmts(cc.Body, copyHeld(held))
			}
		}
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			w.stmt(s.Init, held)
		}
		w.visitTree(s.Assign, held)
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				w.stmts(cc.Body, copyHeld(held))
			}
		}
	case *ast.SelectStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				branch := copyHeld(held)
				if cc.Comm != nil {
					w.stmt(cc.Comm, branch)
				}
				w.stmts(cc.Body, branch)
			}
		}
	case *ast.LabeledStmt:
		w.stmt(s.Stmt, held)
	case nil:
	default:
		// Simple statements (assign, go, send, return, incdec, decl,
		// branch, empty): one held set covers the whole subtree.
		w.visitTree(s, held)
	}
}

// lockSummaryOf computes (memoized, cycle-guarded) the transitive
// acquisition summary of n. Spawn edges are excluded: what a spawned
// goroutine locks is its own business, not its spawner's.
func (p *Program) lockSummaryOf(n *FuncNode) *lockSummary {
	if s, ok := p.lockSummaries[n]; ok {
		return s
	}
	if p.lockInProgress[n] {
		return &lockSummary{acquires: map[string]*acqWitness{}}
	}
	p.lockInProgress[n] = true
	s := &lockSummary{acquires: make(map[string]*acqWitness)}
	p.walkLocks(n, func(node ast.Node, held map[string]bool) {
		call, ok := node.(*ast.CallExpr)
		if !ok {
			return
		}
		if class, locks, ok := p.lockEventClass(n, call); ok && locks {
			if _, have := s.acquires[class]; !have {
				s.acquires[class] = &acqWitness{pos: call.Pos(), chain: []string{n.Name}}
			}
		}
	})
	for _, e := range n.Out {
		if e.Kind == EdgeGo {
			continue
		}
		for class, w := range p.lockSummaryOf(e.Callee).acquires {
			if _, have := s.acquires[class]; !have {
				s.acquires[class] = &acqWitness{pos: w.pos, chain: append([]string{n.Name}, w.chain...)}
			}
		}
	}
	delete(p.lockInProgress, n)
	p.lockSummaries[n] = s
	return s
}

// entryHeldOf returns the set of lock classes guaranteed to be held
// whenever n is entered: the intersection, over every incoming edge, of
// the caller's entry set united with the classes held at the call site.
// Spawn edges contribute the empty set (a fresh goroutine holds
// nothing), as do entry points with no callers.
func (p *Program) entryHeldOf(n *FuncNode) map[string]bool {
	p.ensureEntryHeld()
	return p.entryHeld[n]
}

func (p *Program) ensureEntryHeld() {
	if p.entryHeld != nil {
		return
	}
	p.entryHeld = make(map[*FuncNode]map[string]bool, len(p.Graph.Nodes))

	// Held set at every call site, per caller, plus the class universe.
	siteHeld := make(map[*FuncNode]map[*ast.CallExpr]map[string]bool, len(p.Graph.Nodes))
	universe := make(map[string]bool)
	for _, n := range p.Graph.Nodes {
		m := make(map[*ast.CallExpr]map[string]bool)
		p.walkLocks(n, func(node ast.Node, held map[string]bool) {
			call, ok := node.(*ast.CallExpr)
			if !ok {
				return
			}
			if len(held) > 0 {
				if _, have := m[call]; !have {
					m[call] = copyHeld(held)
				}
			}
			if class, locks, ok := p.lockEventClass(n, call); ok && locks {
				universe[class] = true
			}
		})
		siteHeld[n] = m
	}

	// Must-analysis fixpoint: start callable nodes at the full universe
	// and intersect downwards until stable.
	for _, n := range p.Graph.Nodes {
		if len(n.In) == 0 {
			p.entryHeld[n] = map[string]bool{}
		} else {
			p.entryHeld[n] = copyHeld(universe)
		}
	}
	for changed := true; changed; {
		changed = false
		for _, n := range p.Graph.Nodes {
			if len(n.In) == 0 {
				continue
			}
			var inter map[string]bool
			for _, e := range n.In {
				var edgeHeld map[string]bool
				if e.Kind == EdgeGo {
					edgeHeld = map[string]bool{}
				} else {
					edgeHeld = copyHeld(p.entryHeld[e.Caller])
					for class := range siteHeld[e.Caller][e.Site] {
						edgeHeld[class] = true
					}
				}
				if inter == nil {
					inter = edgeHeld
				} else {
					for class := range inter {
						if !edgeHeld[class] {
							delete(inter, class)
						}
					}
				}
			}
			if len(inter) != len(p.entryHeld[n]) {
				p.entryHeld[n] = inter
				changed = true
			}
		}
	}
}

// unionHeld merges the walk-local held set with a function's entry set.
func unionHeld(entry, local map[string]bool) map[string]bool {
	if len(entry) == 0 {
		return local
	}
	out := copyHeld(entry)
	for class := range local {
		out[class] = true
	}
	return out
}
