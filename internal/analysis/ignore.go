package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// The //rblint:ignore escape hatch.
//
// A directive suppresses diagnostics of the named analyzer(s) on its own
// line — or, when the comment stands alone on a line, on the next line.
// The justification text is mandatory: an unexplained suppression is
// itself a finding, as are directives naming unknown analyzers and
// directives that suppress nothing (stale ignores, which outlive the
// code they excused and must be deleted).

const ignorePrefix = "//rblint:ignore"

// Ignore is one parsed, well-formed directive.
type Ignore struct {
	Pos       token.Pos
	End       token.Pos
	Analyzers []string // validated analyzer names
	Reason    string
	// Line is the directive's own source line; it suppresses findings on
	// this line and the next. On the last line of a file — where no next
	// line exists — it covers the preceding line instead.
	Line int
	// LastLine is set when the directive sits on the file's final line.
	LastLine bool
	File     string
	// used is set when the directive suppresses at least one diagnostic.
	used bool
}

// parseIgnores extracts directives from the files' comments. Malformed
// directives (missing reason, unknown analyzer name) are reported as
// diagnostics under the "rblint" name; only well-formed directives can
// suppress anything.
func parseIgnores(fset *token.FileSet, files []*ast.File, valid map[string]bool) ([]*Ignore, []Diagnostic) {
	var ignores []*Ignore
	var problems []Diagnostic
	for _, f := range files {
		for _, group := range f.Comments {
			for _, c := range group.List {
				if !strings.HasPrefix(c.Text, ignorePrefix) {
					continue
				}
				rest := strings.TrimPrefix(c.Text, ignorePrefix)
				if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
					continue // e.g. //rblint:ignorefoo — not our directive
				}
				ig, problem := parseIgnoreText(fset, c, strings.TrimSpace(rest), valid)
				if problem != "" {
					problems = append(problems, Diagnostic{
						Analyzer: "rblint",
						Pos:      c.Pos(),
						Message:  problem,
					})
					continue
				}
				ignores = append(ignores, ig)
			}
		}
	}
	return ignores, problems
}

// parseIgnoreText validates one directive body: "<analyzer>[,...] <reason>".
func parseIgnoreText(fset *token.FileSet, c *ast.Comment, body string, valid map[string]bool) (*Ignore, string) {
	if body == "" {
		return nil, "rblint:ignore needs an analyzer name and a justification: //rblint:ignore <analyzer> <reason>"
	}
	nameField, reason, _ := strings.Cut(body, " ")
	reason = strings.TrimSpace(reason)
	var names []string
	for _, name := range strings.Split(nameField, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		if !valid[name] {
			return nil, "rblint:ignore names unknown analyzer " + quoted(name) + " (have " + knownNames(valid) + ")"
		}
		names = append(names, name)
	}
	if len(names) == 0 {
		return nil, "rblint:ignore needs an analyzer name and a justification: //rblint:ignore <analyzer> <reason>"
	}
	if reason == "" {
		return nil, "rblint:ignore for " + quoted(nameField) + " is missing its mandatory justification text"
	}
	pos := fset.Position(c.Pos())
	return &Ignore{
		Pos:       c.Pos(),
		End:       c.End(),
		Analyzers: names,
		Reason:    reason,
		Line:      pos.Line,
		LastLine:  pos.Line == fset.File(c.Pos()).LineCount(),
		File:      pos.Filename,
	}, ""
}

// applyIgnores filters diags through the directives: a diagnostic is
// suppressed when a directive for its analyzer covers its line. It
// returns the surviving diagnostics plus one "stale ignore" diagnostic
// for every directive that suppressed nothing.
func applyIgnores(fset *token.FileSet, ignores []*Ignore, diags []Diagnostic) []Diagnostic {
	type key struct {
		file string
		line int
		name string
	}
	index := make(map[key][]*Ignore)
	for _, ig := range ignores {
		for _, name := range ig.Analyzers {
			// A directive covers its own line (inline placement, after the
			// offending code) and the next line (standalone placement, on
			// the line above the offending code). On the file's final line
			// there is no next line to cover, so the directive reaches back
			// to the preceding line instead — otherwise a perfectly placed
			// end-of-file suppression would be reported as stale.
			index[key{ig.File, ig.Line, name}] = append(index[key{ig.File, ig.Line, name}], ig)
			index[key{ig.File, ig.Line + 1, name}] = append(index[key{ig.File, ig.Line + 1, name}], ig)
			if ig.LastLine && ig.Line > 1 {
				index[key{ig.File, ig.Line - 1, name}] = append(index[key{ig.File, ig.Line - 1, name}], ig)
			}
		}
	}
	var out []Diagnostic
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		if matches := index[key{pos.Filename, pos.Line, d.Analyzer}]; len(matches) > 0 {
			for _, ig := range matches {
				ig.used = true
			}
			continue
		}
		out = append(out, d)
	}
	for _, ig := range ignores {
		if !ig.used {
			out = append(out, Diagnostic{
				Analyzer: "rblint",
				Pos:      ig.Pos,
				Message: "stale rblint:ignore directive: no " + strings.Join(ig.Analyzers, ",") +
					" diagnostic here to suppress — delete the directive",
				SuggestedFixes: []SuggestedFix{{
					Message: "delete the stale directive",
					Edits:   []TextEdit{{Pos: ig.Pos, End: ig.End}},
				}},
			})
		}
	}
	return out
}

func quoted(s string) string { return "\"" + s + "\"" }

func knownNames(valid map[string]bool) string {
	var names []string
	for _, a := range Analyzers() {
		if valid[a.Name] {
			names = append(names, a.Name)
		}
	}
	return strings.Join(names, ", ")
}
