package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// MonoPackages scopes monolint to the protocol state machine.
var MonoPackages = []string{"rbcast/internal/core"}

// MonoLint encodes the paper's pruning-safety argument as a lint rule.
// Correctness rests on monotone per-host state: a host's INFO set only
// grows (§4's invariants assume a received sequence number is never
// forgotten), MAP entries are merged forward, never overwritten
// backwards, and the prune floor prunedTo (§6) only advances, and only
// once stability is established. The compiler cannot see any of that —
// a stray `h.info = seqset.Set{}` or an unguarded `h.prunedTo = x`
// type-checks fine and silently breaks delivery.
//
// MonoLint therefore restricts writes to Host.info / Host.maps /
// Host.confirmed / Host.prunedTo (assignments, address-taking, and
// calls to mutating seqset.Set methods) to the approved mutator set
// below: the handler-table functions that merge monotonically, and the
// prune path. Inside the approved set, every write to prunedTo must
// additionally be dominated by a comparison reading prunedTo on every
// CFG path from function entry — the monotonicity guard that keeps the
// floor from moving backwards.
var MonoLint = &Analyzer{
	Name: "monolint",
	Doc: "host INFO/MAP/prunedTo state may only be written by the approved " +
		"mutator set, and prune-floor writes must be guarded by a monotonicity check",
	Run: runMonoLint,
}

// monoProtectedFields are the Host fields carrying the paper's monotone
// state.
var monoProtectedFields = map[string]bool{
	"info": true, "maps": true, "confirmed": true, "prunedTo": true,
}

// monoApprovedMutators is the allowlist: the message-handler functions
// that merge facts monotonically (union/max semantics), the broadcast
// and marking emitters that add what was just produced, and the §6
// prune path. MapOf is included for its benign copy-on-write write-back:
// it re-stores the value it just read with only the COW mark changed.
// The catch-up sync additions are monotone too: handleSyncReq records an
// optimistic MAP mark for data just served, acceptSyncData adds one
// solicited sequence number to INFO, and installSnapshot adds the
// checkpoint-covered prefix [1, mark] to INFO (never touching prunedTo,
// which still advances only through pruneStable's guarded path).
var monoApprovedMutators = map[string]bool{
	"Broadcast":       true,
	"handleData":      true,
	"learnHas":        true,
	"learnInfo":       true,
	"mergeInfoFacts":  true,
	"sendMarking":     true,
	"pruneStable":     true,
	"MapOf":           true,
	"acceptCertified": true,
	"handleSyncReq":   true,
	"acceptSyncData":  true,
	"installSnapshot": true,
}

// monoMutatingSetMethods are the seqset.Set methods that change
// membership. Pointer-receiver accessors like Snapshot (which only flips
// the copy-on-write mark) are deliberately absent.
var monoMutatingSetMethods = map[string]bool{
	"Add": true, "AddRange": true, "Union": true, "ApplyDelta": true,
	"Prune": true, "Remove": true, "Clear": true,
}

func runMonoLint(pass *Pass) error {
	if !pkgInScope(pass.Pkg.Path(), MonoPackages) {
		return nil
	}
	if lookupNamedType(pass, "Host") == nil {
		return nil
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				checkMonoFunc(pass, fd)
			}
		}
	}
	return nil
}

func lookupNamedType(pass *Pass, name string) *types.Named {
	tn, ok := pass.Pkg.Scope().Lookup(name).(*types.TypeName)
	if !ok {
		return nil
	}
	n, ok := tn.Type().(*types.Named)
	if !ok {
		return nil
	}
	return n
}

func checkMonoFunc(pass *Pass, fd *ast.FuncDecl) {
	approved := monoApprovedMutators[fd.Name.Name]
	var prunedToWrites []ast.Node // assignments needing the guard check

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				field, ok := protectedHostField(pass, lhs)
				if !ok {
					continue
				}
				if !approved {
					reportMonoWrite(pass, lhs.Pos(), field, "written")
				} else if field == "prunedTo" {
					prunedToWrites = append(prunedToWrites, n)
				}
			}
		case *ast.IncDecStmt:
			if field, ok := protectedHostField(pass, n.X); ok {
				if !approved {
					reportMonoWrite(pass, n.Pos(), field, "written")
				} else if field == "prunedTo" {
					prunedToWrites = append(prunedToWrites, n)
				}
			}
		case *ast.UnaryExpr:
			// &h.info lets arbitrary code mutate the set out of view.
			if n.Op == token.AND {
				if field, ok := protectedHostField(pass, n.X); ok && !approved {
					reportMonoWrite(pass, n.Pos(), field, "address-taken")
				}
			}
		case *ast.CallExpr:
			if field, ok := mutatingSetCall(pass, n); ok && !approved {
				reportMonoWrite(pass, n.Pos(), field, "mutated")
			}
		}
		return true
	})

	if len(prunedToWrites) > 0 {
		checkPruneGuard(pass, fd, prunedToWrites)
	}
}

func reportMonoWrite(pass *Pass, pos token.Pos, field, how string) {
	pass.Reportf(pos,
		"Host.%s %s outside the approved mutator set (%s): non-monotone host state "+
			"breaks the pruning-safety argument; route the change through a handler or the prune path",
		field, how, approvedMutatorList())
}

func approvedMutatorList() string {
	names := make([]string, 0, len(monoApprovedMutators))
	for name := range monoApprovedMutators {
		names = append(names, name)
	}
	sort.Strings(names)
	return strings.Join(names, ", ")
}

// protectedHostField matches (possibly indexed/parenthesized) selectors
// h.<field> where h is a *core.Host and field is protected.
func protectedHostField(pass *Pass, e ast.Expr) (string, bool) {
	e = ast.Unparen(e)
	if ix, ok := e.(*ast.IndexExpr); ok { // h.maps[j] = …
		e = ast.Unparen(ix.X)
	}
	sel, ok := e.(*ast.SelectorExpr)
	if !ok || !monoProtectedFields[sel.Sel.Name] {
		return "", false
	}
	tv, ok := pass.TypesInfo.Types[sel.X]
	if !ok || tv.Type == nil {
		return "", false
	}
	t := tv.Type
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Name() != "Host" || named.Obj().Pkg() != pass.Pkg {
		return "", false
	}
	// Confirm it is really a field selection, not a method value.
	if selInfo, ok := pass.TypesInfo.Selections[sel]; ok && selInfo.Kind() != types.FieldVal {
		return "", false
	}
	return sel.Sel.Name, true
}

// mutatingSetCall matches h.<field>.Add(...)-style calls: a mutating
// pointer-receiver method invoked directly on a protected field.
func mutatingSetCall(pass *Pass, call *ast.CallExpr) (string, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || !monoMutatingSetMethods[sel.Sel.Name] {
		return "", false
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok {
		return "", false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return "", false
	}
	if _, isPtr := sig.Recv().Type().(*types.Pointer); !isPtr {
		return "", false // value receiver cannot mutate the field
	}
	return protectedHostField(pass, sel.X)
}

// checkPruneGuard verifies via the CFG that every write to prunedTo in
// an approved function is dominated by a comparison that reads prunedTo
// (the `p-1 <= h.prunedTo → return` monotonicity guard): no path from
// entry may reach the write while avoiding every guard.
func checkPruneGuard(pass *Pass, fd *ast.FuncDecl, writes []ast.Node) {
	cfg := buildCFG(fd.Name.Name, fd.Body)

	nodeReadsGuard := func(n ast.Node) bool {
		if rng, ok := n.(*ast.RangeStmt); ok {
			n = rng.X // shallow header
		}
		found := false
		ast.Inspect(n, func(x ast.Node) bool {
			be, ok := x.(*ast.BinaryExpr)
			if !ok || !isComparisonOp(be.Op) {
				return true
			}
			for _, side := range []ast.Expr{be.X, be.Y} {
				ast.Inspect(side, func(y ast.Node) bool {
					if s, ok := y.(*ast.SelectorExpr); ok && s.Sel.Name == "prunedTo" {
						found = true
					}
					return true
				})
			}
			return !found
		})
		return found
	}
	for _, w := range writes {
		useCFG := cfg
		blk, idx := findNodeBlock(useCFG, w)
		if blk == nil {
			// The write sits inside a nested function literal; the
			// dominance question then lives in the literal's own CFG.
			if lit := enclosingFuncLit(fd.Body, w); lit != nil {
				useCFG = buildCFG(fd.Name.Name+"$lit", lit.Body)
				blk, idx = findNodeBlock(useCFG, w)
			}
		}
		if blk == nil {
			continue
		}
		if !pathDominates(useCFG, blk, idx, nodeReadsGuard) {
			pass.Reportf(w.Pos(),
				"write to Host.prunedTo is not dominated by a monotonicity comparison on prunedTo: "+
					"an unguarded write can move the §6 prune floor backwards")
		}
	}
}

// enclosingFuncLit returns the innermost function literal in body whose
// range contains n, or nil.
func enclosingFuncLit(body *ast.BlockStmt, n ast.Node) *ast.FuncLit {
	var found *ast.FuncLit
	ast.Inspect(body, func(x ast.Node) bool {
		if lit, ok := x.(*ast.FuncLit); ok && lit.Pos() <= n.Pos() && n.End() <= lit.End() {
			found = lit // keep descending: innermost wins
		}
		return true
	})
	return found
}
