package analysis

// cfg.go — per-function control-flow graphs over go/ast.
//
// The CFG layer underlies the flow-sensitive analyzers (taintlint,
// monolint, leaklint). Each function body becomes a graph of basic
// blocks holding statements and branch-header expressions in execution
// order. The builder is syntactic: it needs no type information, handles
// if/for/range/switch/type-switch/select, labeled break and continue,
// goto, and treats `return` as an edge to the single exit block. A call
// to panic (or os.Exit / *.Fatal*) ends its block with no successors:
// those paths never reach a normal exit, so resource-release checks do
// not charge them.
//
// Composite statements contribute only their headers to a block's node
// list: an if statement contributes its condition, a switch its tag, a
// range statement itself (clients must treat *ast.RangeStmt nodes
// shallowly — the loop body lives in successor blocks). Function
// literals are opaque expressions here; build a separate CFG for a
// literal's body when its control flow matters.

import (
	"bytes"
	"fmt"
	"go/ast"
	"go/printer"
	"go/token"
	"strings"
)

// A CFG is the control-flow graph of one function body.
type CFG struct {
	// Name labels the graph in dumps.
	Name string
	// Blocks in creation order. Blocks[0] is the entry; Blocks[1] is the
	// single exit targeted by every return and fall-off-the-end edge.
	Blocks []*Block
	// Defers lists defer statements in registration order. Deferred calls
	// run at every exit, so a resource released in a defer is released on
	// every path that executes the registration.
	Defers []*ast.DeferStmt
}

// Entry returns the function's entry block.
func (c *CFG) Entry() *Block { return c.Blocks[0] }

// Exit returns the function's single normal-exit block.
func (c *CFG) Exit() *Block { return c.Blocks[1] }

// A Block is one straight-line run of nodes: control enters at the first
// node and leaves after the last, to one of Succs. A block with no
// successors terminates the function abnormally (panic/Exit) — except
// the exit block, which is the normal end.
type Block struct {
	Index int
	// Kind names the block's structural role ("entry", "for.head",
	// "if.then", …) for dumps and golden tests.
	Kind  string
	Nodes []ast.Node
	Succs []*Block
}

// buildCFG constructs the graph for one function body.
func buildCFG(name string, body *ast.BlockStmt) *CFG {
	c := &CFG{Name: name}
	b := &cfgBuilder{cfg: c, labelBlocks: make(map[string]*Block)}
	b.newBlock("entry")
	b.newBlock("exit")
	b.cur = c.Entry()
	b.stmtList(body.List)
	b.terminateInto(c.Exit()) // falling off the end returns
	return c
}

// cfgScope is one enclosing breakable construct (loop, switch, select).
type cfgScope struct {
	label      string
	breakTo    *Block
	continueTo *Block // non-nil only for loops
}

type cfgBuilder struct {
	cfg *CFG
	// cur is the block under construction; nil while the current program
	// point is unreachable (just after a terminating statement).
	cur          *Block
	scopes       []cfgScope
	labelBlocks  map[string]*Block
	pendingLabel string
	// nextCase is the following case body while filling a switch case —
	// the fallthrough target.
	nextCase *Block
}

func (b *cfgBuilder) newBlock(kind string) *Block {
	blk := &Block{Index: len(b.cfg.Blocks), Kind: kind}
	b.cfg.Blocks = append(b.cfg.Blocks, blk)
	return blk
}

func (b *cfgBuilder) link(from, to *Block) {
	for _, s := range from.Succs {
		if s == to {
			return
		}
	}
	from.Succs = append(from.Succs, to)
}

// block returns the current block, opening an unreachable "dead" block
// when flow has terminated (code after return/panic still parses and may
// hold goto labels).
func (b *cfgBuilder) block() *Block {
	if b.cur == nil {
		b.cur = b.newBlock("dead")
	}
	return b.cur
}

func (b *cfgBuilder) add(n ast.Node) {
	blk := b.block()
	blk.Nodes = append(blk.Nodes, n)
}

// terminateInto ends the current block with an edge to `to` (nil = no
// successor) and marks the point unreachable.
func (b *cfgBuilder) terminateInto(to *Block) {
	if b.cur != nil && to != nil {
		b.link(b.cur, to)
	}
	b.cur = nil
}

func (b *cfgBuilder) takeLabel() string {
	l := b.pendingLabel
	b.pendingLabel = ""
	return l
}

func (b *cfgBuilder) labelBlock(name string) *Block {
	if blk, ok := b.labelBlocks[name]; ok {
		return blk
	}
	blk := b.newBlock("label." + name)
	b.labelBlocks[name] = blk
	return blk
}

func (b *cfgBuilder) findScope(label string, loopOnly bool) *cfgScope {
	for i := len(b.scopes) - 1; i >= 0; i-- {
		sc := &b.scopes[i]
		if loopOnly && sc.continueTo == nil {
			continue
		}
		if label == "" || sc.label == label {
			return sc
		}
	}
	return nil
}

func (b *cfgBuilder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

func (b *cfgBuilder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case nil, *ast.EmptyStmt:

	case *ast.BlockStmt:
		b.stmtList(s.List)

	case *ast.LabeledStmt:
		lb := b.labelBlock(s.Label.Name)
		if b.cur != nil {
			b.link(b.cur, lb)
		}
		b.cur = lb
		b.pendingLabel = s.Label.Name
		b.stmt(s.Stmt)
		b.pendingLabel = ""

	case *ast.IfStmt:
		if s.Init != nil {
			b.stmt(s.Init)
		}
		b.add(s.Cond)
		cond := b.block()
		then := b.newBlock("if.then")
		b.link(cond, then)
		var alt *Block
		if s.Else != nil {
			alt = b.newBlock("if.else")
			b.link(cond, alt)
		}
		done := b.newBlock("if.done")
		b.cur = then
		b.stmt(s.Body)
		b.terminateInto(done)
		if s.Else != nil {
			b.cur = alt
			b.stmt(s.Else)
			b.terminateInto(done)
		} else {
			b.link(cond, done)
		}
		b.cur = done

	case *ast.ForStmt:
		label := b.takeLabel()
		if s.Init != nil {
			b.stmt(s.Init)
		}
		head := b.newBlock("for.head")
		if b.cur != nil {
			b.link(b.cur, head)
		}
		b.cur = head
		if s.Cond != nil {
			b.add(s.Cond)
		}
		body := b.newBlock("for.body")
		var post *Block
		if s.Post != nil {
			post = b.newBlock("for.post")
		}
		done := b.newBlock("for.done")
		b.link(head, body)
		if s.Cond != nil {
			b.link(head, done)
		}
		contTo := head
		if post != nil {
			contTo = post
		}
		b.scopes = append(b.scopes, cfgScope{label: label, breakTo: done, continueTo: contTo})
		b.cur = body
		b.stmt(s.Body)
		b.terminateInto(contTo)
		if post != nil {
			b.cur = post
			b.stmt(s.Post)
			b.terminateInto(head)
		}
		b.scopes = b.scopes[:len(b.scopes)-1]
		b.cur = done

	case *ast.RangeStmt:
		label := b.takeLabel()
		head := b.newBlock("range.head")
		if b.cur != nil {
			b.link(b.cur, head)
		}
		b.cur = head
		b.add(s) // shallow: carries X/Key/Value; the body lives in successors
		body := b.newBlock("range.body")
		done := b.newBlock("range.done")
		b.link(head, body)
		b.link(head, done)
		b.scopes = append(b.scopes, cfgScope{label: label, breakTo: done, continueTo: head})
		b.cur = body
		b.stmt(s.Body)
		b.terminateInto(head)
		b.scopes = b.scopes[:len(b.scopes)-1]
		b.cur = done

	case *ast.SwitchStmt:
		label := b.takeLabel()
		if s.Init != nil {
			b.stmt(s.Init)
		}
		if s.Tag != nil {
			b.add(s.Tag)
		}
		b.buildSwitch(label, s.Body, func(c ast.Stmt) ([]ast.Expr, []ast.Stmt, bool) {
			cc := c.(*ast.CaseClause)
			return cc.List, cc.Body, cc.List == nil
		}, true)

	case *ast.TypeSwitchStmt:
		label := b.takeLabel()
		if s.Init != nil {
			b.stmt(s.Init)
		}
		b.add(s.Assign)
		b.buildSwitch(label, s.Body, func(c ast.Stmt) ([]ast.Expr, []ast.Stmt, bool) {
			cc := c.(*ast.CaseClause)
			return nil, cc.Body, cc.List == nil
		}, false)

	case *ast.SelectStmt:
		label := b.takeLabel()
		sel := b.block()
		if len(s.Body.List) == 0 {
			// select{} blocks forever: the path ends here.
			b.cur = nil
			return
		}
		done := b.newBlock("select.done")
		b.scopes = append(b.scopes, cfgScope{label: label, breakTo: done})
		for _, c := range s.Body.List {
			cc := c.(*ast.CommClause)
			cb := b.newBlock("select.case")
			b.link(sel, cb)
			b.cur = cb
			if cc.Comm != nil {
				b.stmt(cc.Comm)
			}
			b.stmtList(cc.Body)
			b.terminateInto(done)
		}
		b.scopes = b.scopes[:len(b.scopes)-1]
		b.cur = done

	case *ast.BranchStmt:
		switch s.Tok {
		case token.BREAK:
			label := ""
			if s.Label != nil {
				label = s.Label.Name
			}
			if sc := b.findScope(label, false); sc != nil {
				b.add(s)
				b.terminateInto(sc.breakTo)
			}
		case token.CONTINUE:
			label := ""
			if s.Label != nil {
				label = s.Label.Name
			}
			if sc := b.findScope(label, true); sc != nil {
				b.add(s)
				b.terminateInto(sc.continueTo)
			}
		case token.GOTO:
			b.add(s)
			b.terminateInto(b.labelBlock(s.Label.Name))
		case token.FALLTHROUGH:
			if b.nextCase != nil {
				b.add(s)
				b.terminateInto(b.nextCase)
			}
		}

	case *ast.ReturnStmt:
		b.add(s)
		b.terminateInto(b.cfg.Exit())

	case *ast.DeferStmt:
		b.add(s)
		b.cfg.Defers = append(b.cfg.Defers, s)

	case *ast.ExprStmt:
		b.add(s)
		if terminatesFlow(s.X) {
			b.cur = nil // panic/Exit: no normal successor
		}

	default:
		// Assignments, declarations, sends, go statements, inc/dec.
		b.add(s)
	}
}

// buildSwitch shares the block scaffolding of switch and type switch:
// every case entered from the header block, fallthrough chaining to the
// next case, no-default header edge to done.
func (b *cfgBuilder) buildSwitch(label string, body *ast.BlockStmt,
	clause func(ast.Stmt) ([]ast.Expr, []ast.Stmt, bool), allowFallthrough bool) {
	sw := b.block()
	done := b.newBlock("switch.done")
	b.scopes = append(b.scopes, cfgScope{label: label, breakTo: done})
	caseBlocks := make([]*Block, len(body.List))
	for i := range body.List {
		caseBlocks[i] = b.newBlock("switch.case")
		b.link(sw, caseBlocks[i])
	}
	hasDefault := false
	for i, c := range body.List {
		exprs, stmts, isDefault := clause(c)
		if isDefault {
			hasDefault = true
		}
		b.cur = caseBlocks[i]
		for _, e := range exprs {
			b.add(e)
		}
		saved := b.nextCase
		if allowFallthrough && i+1 < len(caseBlocks) {
			b.nextCase = caseBlocks[i+1]
		} else {
			b.nextCase = nil
		}
		b.stmtList(stmts)
		b.nextCase = saved
		b.terminateInto(done)
	}
	if !hasDefault {
		b.link(sw, done)
	}
	b.scopes = b.scopes[:len(b.scopes)-1]
	b.cur = done
}

// terminatesFlow matches calls that never return normally: the panic
// builtin, os.Exit-style Exit functions, and log/testing Fatal variants.
// Syntactic on purpose — the builder runs before (and without) type
// information.
func terminatesFlow(e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name == "panic"
	case *ast.SelectorExpr:
		return fun.Sel.Name == "Exit" || strings.HasPrefix(fun.Sel.Name, "Fatal")
	}
	return false
}

// predecessors inverts the successor edges.
func predecessors(c *CFG) map[*Block][]*Block {
	preds := make(map[*Block][]*Block, len(c.Blocks))
	for _, blk := range c.Blocks {
		for _, s := range blk.Succs {
			preds[s] = append(preds[s], blk)
		}
	}
	return preds
}

// reachableFrom returns every block reachable from the start set
// (inclusive). Blocks for which avoid returns true are included when
// reached but their successors are not followed — they model points
// where the property of interest is re-established (a bounds check, a
// Stop call). avoid may be nil.
func reachableFrom(start []*Block, avoid func(*Block) bool) map[*Block]bool {
	seen := make(map[*Block]bool)
	stack := append([]*Block(nil), start...)
	for len(stack) > 0 {
		blk := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if blk == nil || seen[blk] {
			continue
		}
		seen[blk] = true
		if avoid != nil && avoid(blk) {
			continue
		}
		stack = append(stack, blk.Succs...)
	}
	return seen
}

// findNodeBlock locates the block and node index holding n.
func findNodeBlock(cfg *CFG, n ast.Node) (*Block, int) {
	for _, blk := range cfg.Blocks {
		for i, node := range blk.Nodes {
			if node == n {
				return blk, i
			}
		}
	}
	return nil, -1
}

// pathDominates reports whether every path from entry to the node at
// blk.Nodes[idx] passes through a node satisfying isGuard first: a
// guard earlier in the same block dominates trivially; otherwise no
// entry path avoiding every guard block may reach blk. This is the
// dominance question monolint asks of prune-floor comparisons and
// sharelint asks of lock acquisitions.
func pathDominates(cfg *CFG, blk *Block, idx int, isGuard func(ast.Node) bool) bool {
	for _, n := range blk.Nodes[:idx] {
		if isGuard(n) {
			return true
		}
	}
	isGuardBlock := func(b *Block) bool {
		for _, n := range b.Nodes {
			if isGuard(n) {
				return true
			}
		}
		return false
	}
	reached := reachableFrom([]*Block{cfg.Entry()}, func(b *Block) bool {
		return b != blk && isGuardBlock(b)
	})
	return !reached[blk]
}

// String renders the graph for golden tests: one line per block with its
// nodes (single-line, whitespace-collapsed, truncated) and successors.
func (c *CFG) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s:\n", c.Name)
	for _, blk := range c.Blocks {
		fmt.Fprintf(&sb, "  b%d %s:", blk.Index, blk.Kind)
		if len(blk.Nodes) > 0 {
			parts := make([]string, len(blk.Nodes))
			for i, n := range blk.Nodes {
				parts[i] = nodeString(n)
			}
			fmt.Fprintf(&sb, " {%s}", strings.Join(parts, "; "))
		}
		if len(blk.Succs) > 0 {
			names := make([]string, len(blk.Succs))
			for i, s := range blk.Succs {
				names[i] = fmt.Sprintf("b%d", s.Index)
			}
			fmt.Fprintf(&sb, " -> %s", strings.Join(names, " "))
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

func nodeString(n ast.Node) string {
	if rng, ok := n.(*ast.RangeStmt); ok {
		return "range " + nodeString(rng.X)
	}
	var buf bytes.Buffer
	if err := printer.Fprint(&buf, token.NewFileSet(), n); err != nil {
		return fmt.Sprintf("<%T>", n)
	}
	s := strings.Join(strings.Fields(buf.String()), " ")
	if len(s) > 60 {
		s = s[:57] + "..."
	}
	return s
}
