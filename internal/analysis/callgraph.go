package analysis

// callgraph.go — the whole-program layer under the analyzers.
//
// A Program bundles every loaded package with one CallGraph built over
// all of them, plus the cross-pass caches (taint summaries, goroutine
// exit facts, whole-program analyzer results) that used to be rebuilt
// per package. The graph is CHA-style and deliberately conservative:
//
//   - every function declaration with a body and every function literal
//     is a node (literals are named encloser$1, encloser$2, … in source
//     order and keep a Parent link to their enclosing node);
//   - static calls resolve through the type checker's Uses map;
//   - interface method calls resolve to every program-declared concrete
//     method whose receiver type implements the interface (class
//     hierarchy analysis);
//   - calls through function values (struct fields, parameters, locals,
//     method values) resolve to every address-taken node with an
//     identical signature — imprecise, never unsound;
//   - `go f(…)` and the time.AfterFunc callback produce EdgeGo edges,
//     `defer f(…)` produces EdgeDefer, everything else EdgeCall.
//
// Node and edge order is deterministic: packages in load order, files
// and declarations in source order, dynamic candidates in node order —
// so diagnostics and golden tests are stable across runs.

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// EdgeKind classifies how control reaches a callee.
type EdgeKind uint8

const (
	// EdgeCall is an ordinary synchronous call.
	EdgeCall EdgeKind = iota
	// EdgeGo marks a goroutine spawn: a `go` statement or a
	// time.AfterFunc callback. The callee runs concurrently with the
	// caller and inherits none of its locks.
	EdgeGo
	// EdgeDefer marks a deferred call; it runs in the caller's goroutine
	// at function exit.
	EdgeDefer
)

func (k EdgeKind) String() string {
	switch k {
	case EdgeGo:
		return "go"
	case EdgeDefer:
		return "defer"
	}
	return "call"
}

// A CallEdge connects a caller to one possible callee at one site.
type CallEdge struct {
	Caller *FuncNode
	Callee *FuncNode
	// Site is the call expression (for AfterFunc callbacks, the
	// AfterFunc call itself).
	Site *ast.CallExpr
	Pos  token.Pos
	Kind EdgeKind
	// Dynamic marks edges resolved by hierarchy or signature matching
	// rather than a direct use of the callee.
	Dynamic bool
}

// A FuncNode is one function body in the program: a declaration or a
// function literal.
type FuncNode struct {
	// Name is the display name: pkg.Func, pkg.(*T).M, or encloser$N for
	// literals.
	Name string
	Pkg  *Package
	// Obj is the declared function object; nil for literals.
	Obj  *types.Func
	Decl *ast.FuncDecl // nil for literals
	Lit  *ast.FuncLit  // nil for declarations
	// Parent is the enclosing node for literals (nil for declarations
	// and package-level literals).
	Parent *FuncNode
	Body   *ast.BlockStmt
	Out    []*CallEdge
	In     []*CallEdge
}

// EnclosingDecl walks Parent links up to the declared function a
// literal lives in; for declaration nodes it returns the node itself.
func (n *FuncNode) EnclosingDecl() *FuncNode {
	for n != nil && n.Decl == nil {
		n = n.Parent
	}
	return n
}

// A CallGraph is the program's call structure.
type CallGraph struct {
	Nodes []*FuncNode
	byObj map[*types.Func]*FuncNode
	byLit map[*ast.FuncLit]*FuncNode
}

// NodeOf returns the node for a declared function object, or nil.
func (g *CallGraph) NodeOf(obj *types.Func) *FuncNode { return g.byObj[obj] }

// NodeOfLit returns the node for a function literal, or nil.
func (g *CallGraph) NodeOfLit(lit *ast.FuncLit) *FuncNode { return g.byLit[lit] }

// GoEdges returns every goroutine-spawn edge, in deterministic order.
func (g *CallGraph) GoEdges() []*CallEdge {
	var out []*CallEdge
	for _, n := range g.Nodes {
		for _, e := range n.Out {
			if e.Kind == EdgeGo {
				out = append(out, e)
			}
		}
	}
	return out
}

// Reachable returns every node reachable from roots (inclusive) via
// Call and Defer edges. Go edges are not followed: a spawned body runs
// in its own goroutine context, which is exactly the boundary the
// concurrency analyzers need.
func (g *CallGraph) Reachable(roots []*FuncNode) map[*FuncNode]bool {
	seen := make(map[*FuncNode]bool)
	stack := append([]*FuncNode(nil), roots...)
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if n == nil || seen[n] {
			continue
		}
		seen[n] = true
		for _, e := range n.Out {
			if e.Kind != EdgeGo {
				stack = append(stack, e.Callee)
			}
		}
	}
	return seen
}

// String renders the graph for golden tests: one line per edge,
// "caller -> callee [kind]" with dynamic edges marked.
func (g *CallGraph) String() string {
	var sb strings.Builder
	for _, n := range g.Nodes {
		for _, e := range n.Out {
			fmt.Fprintf(&sb, "%s -> %s [%s]", e.Caller.Name, e.Callee.Name, e.Kind)
			if e.Dynamic {
				sb.WriteString(" dyn")
			}
			sb.WriteByte('\n')
		}
	}
	return sb.String()
}

// A Program is the whole-program view shared by every pass of one
// driver run: all loaded packages, the call graph over them, and the
// caches whole-program analyzers memoize their results in.
type Program struct {
	Fset     *token.FileSet
	Packages []*Package
	Graph    *CallGraph

	byTypes map[*types.Package]*Package

	// Bottom-up memoized analyzer state (see taintlint.go, leaklint.go,
	// sharelint.go, ordlint.go, alloclint.go).
	taintSummaries  map[*FuncNode]*taintSummary
	taintInProgress map[*FuncNode]bool
	exitCache       map[*FuncNode]bool
	lockSummaries   map[*FuncNode]*lockSummary
	lockInProgress  map[*FuncNode]bool
	entryHeld       map[*FuncNode]map[string]bool

	shareDiags []progDiag
	shareDone  bool
	ordDiags   []progDiag
	ordDone    bool
	allocDiags []progDiag
	allocDone  bool
	laneDiags  []progDiag
	laneDone   bool

	// Abstract-interpretation caches (see intervals.go, effects.go):
	// per-function interval fixpoints and Loop-effect summaries.
	ivFacts      map[*FuncNode]*intervalFacts
	ivInProgress map[*FuncNode]bool
	loopEffects  map[*FuncNode]*loopEffects
}

// progDiag is a whole-program diagnostic tagged with the package it
// belongs to, so per-package passes can emit exactly their share.
type progDiag struct {
	pkgPath string
	d       Diagnostic
}

// NewProgram builds the shared program view (including the call graph)
// over the given packages.
func NewProgram(fset *token.FileSet, pkgs []*Package) *Program {
	p := &Program{
		Fset:            fset,
		Packages:        pkgs,
		byTypes:         make(map[*types.Package]*Package, len(pkgs)),
		taintSummaries:  make(map[*FuncNode]*taintSummary),
		taintInProgress: make(map[*FuncNode]bool),
		exitCache:       make(map[*FuncNode]bool),
		lockSummaries:   make(map[*FuncNode]*lockSummary),
		lockInProgress:  make(map[*FuncNode]bool),
		ivFacts:         make(map[*FuncNode]*intervalFacts),
		ivInProgress:    make(map[*FuncNode]bool),
		loopEffects:     make(map[*FuncNode]*loopEffects),
	}
	for _, pkg := range pkgs {
		p.byTypes[pkg.Types] = pkg
	}
	p.Graph = buildCallGraph(p)
	return p
}

// packageOf maps a types.Package back to its loaded Package, or nil for
// packages outside the program (stdlib, unanalyzed imports).
func (p *Program) packageOf(tp *types.Package) *Package { return p.byTypes[tp] }

// dynamicSite is a call through a function value, resolved after every
// node's address-taken status is known.
type dynamicSite struct {
	caller *FuncNode
	call   *ast.CallExpr
	kind   EdgeKind
	sig    *types.Signature
}

type cgBuilder struct {
	prog *Program
	g    *CallGraph
	// addrTaken marks nodes whose function value escapes into a variable,
	// field, argument, or method value — the candidate set for calls
	// through function values.
	addrTaken map[*FuncNode]bool
	dynamics  []dynamicSite
	// namedTypes lists every named type declared in the program, in
	// deterministic order, for class hierarchy analysis.
	namedTypes []*types.Named
}

func buildCallGraph(prog *Program) *CallGraph {
	b := &cgBuilder{
		prog: prog,
		g: &CallGraph{
			byObj: make(map[*types.Func]*FuncNode),
			byLit: make(map[*ast.FuncLit]*FuncNode),
		},
		addrTaken: make(map[*FuncNode]bool),
	}
	for _, pkg := range prog.Packages {
		b.collectNamedTypes(pkg)
	}
	for _, pkg := range prog.Packages {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					if d.Body == nil {
						continue
					}
					obj, _ := pkg.TypesInfo.Defs[d.Name].(*types.Func)
					node := &FuncNode{
						Name: declDisplayName(pkg, d, obj),
						Pkg:  pkg,
						Obj:  obj,
						Decl: d,
						Body: d.Body,
					}
					b.addNode(node)
					if obj != nil {
						b.g.byObj[obj] = node
					}
					b.collectLits(pkg, node, d.Body)
				case *ast.GenDecl:
					// Package-level `var f = func(...) {...}` initializers.
					for _, spec := range d.Specs {
						vs, ok := spec.(*ast.ValueSpec)
						if !ok {
							continue
						}
						for _, v := range vs.Values {
							b.collectTopLits(pkg, v)
						}
					}
				}
			}
		}
	}
	for _, n := range b.g.Nodes {
		b.collectEdges(n)
	}
	b.resolveDynamics()
	return b.g
}

func (b *cgBuilder) addNode(n *FuncNode) { b.g.Nodes = append(b.g.Nodes, n) }

// collectLits creates nodes for every function literal inside body,
// numbering them per enclosing node in source order. The walk is
// shallow per level: each literal's own children hang off it.
func (b *cgBuilder) collectLits(pkg *Package, parent *FuncNode, body ast.Node) {
	count := 0
	ast.Inspect(body, func(n ast.Node) bool {
		if n == body {
			return true
		}
		lit, ok := n.(*ast.FuncLit)
		if !ok {
			return true
		}
		count++
		node := &FuncNode{
			Name:   fmt.Sprintf("%s$%d", parent.Name, count),
			Pkg:    pkg,
			Lit:    lit,
			Parent: parent,
			Body:   lit.Body,
		}
		b.addNode(node)
		b.g.byLit[lit] = node
		b.collectLits(pkg, node, lit.Body)
		return false
	})
}

// collectTopLits handles literals in package-level initializer
// expressions; they have no enclosing function node.
func (b *cgBuilder) collectTopLits(pkg *Package, expr ast.Expr) {
	count := 0
	ast.Inspect(expr, func(n ast.Node) bool {
		lit, ok := n.(*ast.FuncLit)
		if !ok {
			return true
		}
		count++
		node := &FuncNode{
			Name: fmt.Sprintf("%s.init$%d", pkg.Types.Name(), count),
			Pkg:  pkg,
			Lit:  lit,
			Body: lit.Body,
		}
		b.addNode(node)
		b.g.byLit[lit] = node
		b.collectLits(pkg, node, lit.Body)
		return false
	})
}

func (b *cgBuilder) collectNamedTypes(pkg *Package) {
	scope := pkg.Types.Scope()
	for _, name := range scope.Names() { // Names() is sorted
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok || tn.IsAlias() {
			continue
		}
		if named, ok := tn.Type().(*types.Named); ok {
			b.namedTypes = append(b.namedTypes, named)
		}
	}
}

// collectEdges walks one node's body (shallow: nested literals own
// their calls) recording static edges, dynamic call sites, and
// address-taken marks.
func (b *cgBuilder) collectEdges(caller *FuncNode) {
	info := caller.Pkg.TypesInfo

	// Pass 1: which idents are in call position, which literals are
	// consumed directly (invoked, spawned, deferred, or handed to
	// AfterFunc) rather than escaping as values.
	callFunIdents := make(map[*ast.Ident]bool)
	directLits := make(map[*ast.FuncLit]bool)
	b.shallowWalk(caller.Body, func(n ast.Node) {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return
		}
		switch fun := ast.Unparen(call.Fun).(type) {
		case *ast.Ident:
			callFunIdents[fun] = true
		case *ast.SelectorExpr:
			callFunIdents[fun.Sel] = true
		case *ast.FuncLit:
			directLits[fun] = true
		}
		if cb := afterFuncCallback(info, call); cb != nil {
			if lit, ok := ast.Unparen(cb).(*ast.FuncLit); ok {
				directLits[lit] = true
			}
		}
	})

	// Pass 2: address-taken marks — any use of a program function or
	// method outside call position, and any literal that escapes.
	b.shallowWalk(caller.Body, func(n ast.Node) {
		switch n := n.(type) {
		case *ast.Ident:
			if callFunIdents[n] {
				return
			}
			if fn, ok := info.Uses[n].(*types.Func); ok {
				if node := b.g.byObj[fn]; node != nil {
					b.addrTaken[node] = true
				}
			}
		case *ast.FuncLit:
			if !directLits[n] {
				if node := b.g.byLit[n]; node != nil {
					b.addrTaken[node] = true
				}
			}
		}
	})

	// Pass 3: edges. Go/defer statements claim their call expression;
	// every other call expression is a plain call edge.
	claimed := make(map[*ast.CallExpr]EdgeKind)
	b.shallowWalk(caller.Body, func(n ast.Node) {
		switch n := n.(type) {
		case *ast.GoStmt:
			claimed[n.Call] = EdgeGo
		case *ast.DeferStmt:
			claimed[n.Call] = EdgeDefer
		}
	})
	b.shallowWalk(caller.Body, func(n ast.Node) {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return
		}
		kind := EdgeCall
		if k, ok := claimed[call]; ok {
			kind = k
		}
		b.resolveCall(caller, call, kind)
		if cb := afterFuncCallback(info, call); cb != nil {
			b.resolveValue(caller, call, cb, EdgeGo)
		}
	})
}

// shallowWalk visits every node in body without descending into nested
// function literals (their bodies belong to their own nodes).
func (b *cgBuilder) shallowWalk(body ast.Node, visit func(ast.Node)) {
	ast.Inspect(body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok && n != body {
			visit(lit)   // the literal expression itself is visible …
			return false // … but its body is not
		}
		if n != nil {
			visit(n)
		}
		return true
	})
}

// afterFuncCallback returns the callback argument of a
// time.AfterFunc(d, f) call, or nil. AfterFunc runs f on a fresh
// goroutine, so the edge is a spawn.
func afterFuncCallback(info *types.Info, call *ast.CallExpr) ast.Expr {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || len(call.Args) != 2 {
		return nil
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "time" || fn.Name() != "AfterFunc" {
		return nil
	}
	return call.Args[1]
}

// resolveCall creates edges for one call expression.
func (b *cgBuilder) resolveCall(caller *FuncNode, call *ast.CallExpr, kind EdgeKind) {
	info := caller.Pkg.TypesInfo
	fun := ast.Unparen(call.Fun)

	if lit, ok := fun.(*ast.FuncLit); ok {
		if callee := b.g.byLit[lit]; callee != nil {
			b.addEdge(caller, callee, call, kind, false)
		}
		return
	}
	// Conversions are not calls.
	if tv, ok := info.Types[fun]; ok && tv.IsType() {
		return
	}

	var obj types.Object
	switch fun := fun.(type) {
	case *ast.Ident:
		obj = info.Uses[fun]
	case *ast.SelectorExpr:
		obj = info.Uses[fun.Sel]
	}

	switch obj := obj.(type) {
	case *types.Builtin:
		return
	case *types.Func:
		sig, _ := obj.Type().(*types.Signature)
		if sig != nil && sig.Recv() != nil && types.IsInterface(sig.Recv().Type()) {
			b.resolveInterfaceCall(caller, call, obj, kind)
			return
		}
		if callee := b.g.byObj[obj]; callee != nil {
			b.addEdge(caller, callee, call, kind, false)
		}
		return
	}
	// A call through a function value (variable, field, parameter,
	// result of another call): record for signature matching.
	tv, ok := info.Types[fun]
	if !ok || tv.Type == nil {
		return
	}
	if sig, ok := tv.Type.Underlying().(*types.Signature); ok {
		b.dynamics = append(b.dynamics, dynamicSite{caller: caller, call: call, kind: kind, sig: sig})
	}
}

// resolveValue resolves a function-valued expression (an AfterFunc
// callback) to edges: directly for literals and named functions,
// by signature for anything else.
func (b *cgBuilder) resolveValue(caller *FuncNode, site *ast.CallExpr, expr ast.Expr, kind EdgeKind) {
	info := caller.Pkg.TypesInfo
	expr = ast.Unparen(expr)
	if lit, ok := expr.(*ast.FuncLit); ok {
		if callee := b.g.byLit[lit]; callee != nil {
			b.addEdge(caller, callee, site, kind, false)
		}
		return
	}
	var obj types.Object
	switch e := expr.(type) {
	case *ast.Ident:
		obj = info.Uses[e]
	case *ast.SelectorExpr:
		obj = info.Uses[e.Sel]
	}
	if fn, ok := obj.(*types.Func); ok {
		if callee := b.g.byObj[fn]; callee != nil {
			b.addEdge(caller, callee, site, kind, false)
		}
		return
	}
	tv, ok := info.Types[expr]
	if !ok || tv.Type == nil {
		return
	}
	if sig, ok := tv.Type.Underlying().(*types.Signature); ok {
		b.dynamics = append(b.dynamics, dynamicSite{caller: caller, call: site, kind: kind, sig: sig})
	}
}

// resolveInterfaceCall applies class hierarchy analysis: edges to every
// program-declared concrete method whose receiver implements the
// interface the call goes through.
func (b *cgBuilder) resolveInterfaceCall(caller *FuncNode, call *ast.CallExpr, m *types.Func, kind EdgeKind) {
	iface, ok := m.Type().(*types.Signature).Recv().Type().Underlying().(*types.Interface)
	if !ok {
		return
	}
	for _, named := range b.namedTypes {
		if types.IsInterface(named) {
			continue
		}
		if !types.Implements(named, iface) && !types.Implements(types.NewPointer(named), iface) {
			continue
		}
		sel := types.NewMethodSet(types.NewPointer(named)).Lookup(m.Pkg(), m.Name())
		if sel == nil {
			continue
		}
		fn, ok := sel.Obj().(*types.Func)
		if !ok {
			continue
		}
		if callee := b.g.byObj[fn]; callee != nil {
			b.addEdge(caller, callee, call, kind, true)
		}
	}
}

// resolveDynamics matches each function-value call site against every
// address-taken node with an identical value signature.
func (b *cgBuilder) resolveDynamics() {
	for _, site := range b.dynamics {
		for _, cand := range b.g.Nodes {
			if !b.addrTaken[cand] {
				continue
			}
			if sig := b.valueSig(cand); sig != nil && types.Identical(sig, site.sig) {
				b.addEdge(site.caller, cand, site.call, site.kind, true)
			}
		}
	}
}

// valueSig is the signature a node presents when used as a value: a
// method's receiver is stripped (method values bind it).
func (b *cgBuilder) valueSig(n *FuncNode) *types.Signature {
	if n.Lit != nil {
		tv, ok := n.Pkg.TypesInfo.Types[n.Lit]
		if !ok || tv.Type == nil {
			return nil
		}
		sig, _ := tv.Type.Underlying().(*types.Signature)
		return sig
	}
	if n.Obj == nil {
		return nil
	}
	sig, ok := n.Obj.Type().(*types.Signature)
	if !ok {
		return nil
	}
	if sig.Recv() != nil {
		return types.NewSignatureType(nil, nil, nil, sig.Params(), sig.Results(), sig.Variadic())
	}
	return sig
}

func (b *cgBuilder) addEdge(caller, callee *FuncNode, site *ast.CallExpr, kind EdgeKind, dynamic bool) {
	for _, e := range caller.Out {
		if e.Callee == callee && e.Site == site && e.Kind == kind {
			return
		}
	}
	e := &CallEdge{Caller: caller, Callee: callee, Site: site, Pos: site.Pos(), Kind: kind, Dynamic: dynamic}
	caller.Out = append(caller.Out, e)
	callee.In = append(callee.In, e)
}

// declDisplayName renders pkg.Func or pkg.(*T).M / pkg.T.M.
func declDisplayName(pkg *Package, fd *ast.FuncDecl, obj *types.Func) string {
	pkgName := pkg.Types.Name()
	if fd.Recv == nil || obj == nil {
		return pkgName + "." + fd.Name.Name
	}
	recv := obj.Type().(*types.Signature).Recv()
	rt := recv.Type()
	star := ""
	if p, ok := rt.(*types.Pointer); ok {
		rt = p.Elem()
		star = "*"
	}
	tname := "?"
	if named, ok := rt.(*types.Named); ok {
		tname = named.Obj().Name()
	}
	if star == "" {
		return fmt.Sprintf("%s.%s.%s", pkgName, tname, fd.Name.Name)
	}
	return fmt.Sprintf("%s.(%s%s).%s", pkgName, star, tname, fd.Name.Name)
}

// sortedProgDiags orders whole-program diagnostics by position so the
// per-package emission is stable.
func (p *Program) sortedProgDiags(diags []progDiag) []progDiag {
	sort.SliceStable(diags, func(i, j int) bool {
		pi, pj := p.Fset.Position(diags[i].d.Pos), p.Fset.Position(diags[j].d.Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		return pi.Column < pj.Column
	})
	return diags
}
