package analysis

import (
	"go/ast"
	"go/types"
)

// DetPackages lists the packages whose behavior must be a pure function
// of their inputs and seeds: the protocol state machine, the
// discrete-event engine, the soak sweep (per-seed results are replayed
// and shrunk by seed), the INFO-set coding, and the wire codec. Within
// them, wall-clock reads and global (unseeded) randomness are latent
// replay-divergence bugs, and map iteration that feeds message emission
// or ordered output diverges between runs of the same seed.
var DetPackages = []string{
	"rbcast/internal/adversary",
	"rbcast/internal/core",
	"rbcast/internal/sim",
	"rbcast/internal/soak",
	"rbcast/internal/seqset",
	"rbcast/internal/wire",
}

// DetLint enforces bit-determinism contracts in DetPackages:
//
//   - no time.Now / time.Since / time.Until (virtual time comes in as an
//     argument);
//   - no "math/rand" import — seeded sources come from
//     rbcast/internal/detrand (top-level rand functions draw from the
//     process-global, randomly-seeded source, and even the import is one
//     refactor away from doing so);
//   - no `for range` over a map whose body appends to a slice that is
//     not sorted by a later statement, and no map-range body that emits
//     protocol messages or writes output — map iteration order differs
//     between runs of the same seed.
var DetLint = &Analyzer{
	Name: "detlint",
	Doc: "forbid wall-clock reads, math/rand, and order-sensitive map iteration " +
		"in deterministic packages (adversary, core, sim, soak, seqset, wire)",
	Run: runDetLint,
}

// detEmitNames are method/function names whose call inside a map-range
// body means iteration order escapes into observable output: protocol
// emission funnels and ordered writers.
var detEmitNames = map[string]bool{
	"emit": true, "sendMarking": true, "Send": true, "Deliver": true,
	"Broadcast": true, "Fprint": true, "Fprintf": true, "Fprintln": true,
	"Print": true, "Printf": true, "Println": true, "Write": true,
	"WriteString": true, "WriteByte": true, "WriteRune": true,
}

// detSortNames are sort entry points that stabilize a slice.
var detSortNames = map[string]bool{
	"Slice": true, "SliceStable": true, "Sort": true, "Stable": true,
	"Ints": true, "Strings": true, "Float64s": true, "SortFunc": true,
	"SortStableFunc": true,
}

func runDetLint(pass *Pass) error {
	if !isDetPackage(pass.Pkg.Path()) {
		return nil
	}
	for _, file := range pass.Files {
		for _, imp := range file.Imports {
			switch imp.Path.Value {
			case `"math/rand"`, `"math/rand/v2"`:
				pass.Reportf(imp.Pos(),
					"deterministic package imports %s; draw seeded randomness from rbcast/internal/detrand instead",
					imp.Path.Value)
			}
		}
		ast.Inspect(file, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				checkWallClock(pass, call)
			}
			return true
		})
		forEachStmtList(file, func(list []ast.Stmt) {
			for i, s := range list {
				if rng, ok := s.(*ast.RangeStmt); ok && isMapType(pass, rng.X) {
					checkMapRangeBody(pass, rng, list[i+1:])
				}
			}
		})
	}
	return nil
}

func isDetPackage(path string) bool { return pkgInScope(path, DetPackages) }

// forEachStmtList visits every statement list in the file: block bodies,
// case clauses, and select clauses, including those inside function
// literals.
func forEachStmtList(root ast.Node, fn func(list []ast.Stmt)) {
	ast.Inspect(root, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.BlockStmt:
			fn(n.List)
		case *ast.CaseClause:
			fn(n.Body)
		case *ast.CommClause:
			fn(n.Body)
		}
		return true
	})
}

// checkWallClock flags calls to time.Now, time.Since, and time.Until.
func checkWallClock(pass *Pass, call *ast.CallExpr) {
	fn, ok := calleeObject(pass, call).(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "time" {
		return
	}
	switch fn.Name() {
	case "Now", "Since", "Until":
		pass.Reportf(call.Pos(),
			"deterministic package calls time.%s; take the virtual time as an argument instead",
			fn.Name())
	}
}

func isMapType(pass *Pass, x ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[x]
	if !ok || tv.Type == nil {
		return false
	}
	_, isMap := tv.Type.Underlying().(*types.Map)
	return isMap
}

// checkMapRangeBody inspects one map-range loop: emission inside the
// body is always a finding; appends are findings unless the appended
// slice is sorted in the statements following the loop. Function
// literals inside the body are skipped — they need not run in iteration
// order.
func checkMapRangeBody(pass *Pass, rng *ast.RangeStmt, after []ast.Stmt) {
	var appended []*ast.Ident
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		if _, isFn := n.(*ast.FuncLit); isFn {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			if name, ok := calleeName(call); ok && detEmitNames[name] {
				pass.Reportf(call.Pos(),
					"%s called inside a map-range loop: map iteration order varies between runs; "+
						"collect keys and sort before emitting", name)
			}
			if id := appendTarget(pass, call); id != nil {
				appended = append(appended, id)
			}
		}
		return true
	})
	for _, id := range appended {
		obj := pass.TypesInfo.Uses[id]
		if obj == nil {
			obj = pass.TypesInfo.Defs[id]
		}
		if obj == nil || sortedAfter(pass, obj, after) {
			continue
		}
		pass.Reportf(rng.Pos(),
			"map-range loop appends to %q without a sort before use: map iteration order varies "+
				"between runs; sort the slice after the loop", id.Name)
	}
}

// appendTarget matches `append(x, ...)` with x an identifier and returns
// x. Growing an identifier-named slice inside a map range is the pattern
// under suspicion regardless of where the result is assigned.
func appendTarget(pass *Pass, call *ast.CallExpr) *ast.Ident {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "append" || len(call.Args) == 0 {
		return nil
	}
	if b, ok := pass.TypesInfo.Uses[id].(*types.Builtin); !ok || b.Name() != "append" {
		return nil
	}
	target, ok := ast.Unparen(call.Args[0]).(*ast.Ident)
	if !ok {
		return nil
	}
	return target
}

// sortedAfter reports whether any statement in the list (transitively)
// passes obj to a sort function.
func sortedAfter(pass *Pass, obj types.Object, after []ast.Stmt) bool {
	for _, s := range after {
		found := false
		ast.Inspect(s, func(n ast.Node) bool {
			if found {
				return false
			}
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			name, ok := calleeName(call)
			if !ok || !detSortNames[name] {
				return true
			}
			for _, arg := range call.Args {
				if id, ok := ast.Unparen(arg).(*ast.Ident); ok && pass.TypesInfo.Uses[id] == obj {
					found = true
				}
			}
			return true
		})
		if found {
			return true
		}
	}
	return false
}
