// Package analysis is a protocol-aware static analysis suite for this
// repository, exposed through the cmd/rblint multichecker.
//
// The protocol's correctness claims rest on properties the Go compiler
// cannot see: simulation and soak runs must be bit-deterministic for
// seeded replay and shrinking to work, the host state machine must never
// block while a runtime mutex is held, every protocol tunable must be
// validated and documented, and every wire message kind must survive the
// codec and be fuzzed. The analyzers here enforce those contracts
// mechanically on every change instead of leaving them to soak failures.
//
// The framework mirrors the shape of golang.org/x/tools/go/analysis
// (Analyzer, Pass, Diagnostic) but is self-contained: the module has no
// dependencies, so packages are loaded and type-checked with the
// standard library alone (go/parser + go/types + the source importer).
//
// Findings can be suppressed with a justification:
//
//	//rblint:ignore <analyzer>[,<analyzer>...] <reason>
//
// The reason is mandatory; directives naming unknown analyzers or
// suppressing nothing (stale ignores) are themselves reported. See
// README.md in this directory for per-analyzer documentation.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// An Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //rblint:ignore directives.
	Name string
	// Doc is a one-paragraph description of what the analyzer enforces.
	Doc string
	// Run applies the analyzer to one package, reporting findings
	// through pass.Report.
	Run func(pass *Pass) error
}

// Analyzers lists every analyzer in the suite, in the order the driver
// runs them.
func Analyzers() []*Analyzer {
	return []*Analyzer{AllocLint, DetLint, LaneLint, LeakLint, LockLint, MonoLint, OrdLint, ParamLint, QuorumLint, ShareLint, TaintLint, WireLint}
}

// analyzerNames returns the set of valid analyzer names for directive
// validation.
func analyzerNames() map[string]bool {
	names := make(map[string]bool)
	for _, a := range Analyzers() {
		names[a.Name] = true
	}
	return names
}

// A Pass is one analyzer's view of one package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Files are the package's type-checked, non-test source files.
	Files []*ast.File
	// TestFiles are the package directory's _test.go files, parsed but
	// not type-checked (they may belong to an external _test package).
	TestFiles []*ast.File
	// Pkg and TypesInfo hold the type checker's output for Files.
	Pkg       *types.Package
	TypesInfo *types.Info
	// Dir is the package directory on disk.
	Dir string
	// ModRoot is the module root directory (where go.mod lives).
	ModRoot string
	// Prog is the whole-program view (call graph plus memoized function
	// summaries) shared by every package analyzed in one run. The
	// whole-program analyzers (sharelint, ordlint, alloclint) and the
	// interprocedural parts of taintlint/leaklint consume it; per-package
	// analyzers may ignore it.
	Prog *Program

	diagnostics []Diagnostic
}

// Reportf records one finding at pos. Exact duplicates (same analyzer,
// position, and message — e.g. from nested map-range loops both seeing
// one emit call) are recorded once.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      pos,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Report records one finding, with the same deduplication as Reportf.
// The Analyzer field is filled in if left empty.
func (p *Pass) Report(d Diagnostic) {
	if d.Analyzer == "" {
		d.Analyzer = p.Analyzer.Name
	}
	for _, have := range p.diagnostics {
		if have.Analyzer == d.Analyzer && have.Pos == d.Pos && have.Message == d.Message {
			return
		}
	}
	p.diagnostics = append(p.diagnostics, d)
}

// A Diagnostic is one finding.
type Diagnostic struct {
	// Analyzer names the analyzer that produced the finding ("rblint"
	// for driver-level directive problems).
	Analyzer string
	Pos      token.Pos
	Message  string
	// SuggestedFixes, when present, are machine-applicable edits that
	// resolve the finding (applied by rblint -fix).
	SuggestedFixes []SuggestedFix
}

// A SuggestedFix is one way to resolve a diagnostic: a set of text edits
// that must be applied together.
type SuggestedFix struct {
	// Message describes the fix ("delete the stale directive").
	Message string
	Edits   []TextEdit
}

// A TextEdit replaces the source text in [Pos, End) with NewText.
type TextEdit struct {
	Pos     token.Pos
	End     token.Pos
	NewText string
}

// sortDiagnostics orders findings by file position for stable output.
func sortDiagnostics(fset *token.FileSet, diags []Diagnostic) {
	sort.SliceStable(diags, func(i, j int) bool {
		pi, pj := fset.Position(diags[i].Pos), fset.Position(diags[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		if pi.Column != pj.Column {
			return pi.Column < pj.Column
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
}
