package analysis

// dataflow.go — a small forward may-analysis engine over the CFG.
//
// Facts are sets of tainted objects. The engine is the classic worklist
// iteration: a block's entry facts are the union of its predecessors'
// exit facts, the client's transfer function pushes facts through the
// block's nodes, and iteration continues until nothing changes. Transfer
// must be monotone (gen/kill on the input set), which bounds the
// iteration; a generous safety cap guards against a non-monotone client.

import (
	"go/token"
	"go/types"
)

// A taintVal describes why an object is tainted.
type taintVal struct {
	// pos is the source position where the value became attacker
	// controlled (the decode call, the binary read, the parameter).
	pos token.Pos
	// param is the parameter index that introduced the taint during a
	// call-summary analysis; -1 for direct sources.
	param int
}

// A factSet maps tainted objects to their taint provenance.
type factSet map[types.Object]taintVal

func cloneFacts(f factSet) factSet {
	out := make(factSet, len(f))
	for k, v := range f {
		out[k] = v
	}
	return out
}

// unionFacts merges src into dst (may-analysis join). On conflict the
// existing provenance wins — any one witness suffices for reporting.
func unionFacts(dst, src factSet) factSet {
	for k, v := range src {
		if _, ok := dst[k]; !ok {
			dst[k] = v
		}
	}
	return dst
}

func equalFacts(a, b factSet) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if _, ok := b[k]; !ok {
			return false
		}
	}
	return true
}

// forwardMay runs transfer over the graph to a fixed point and returns
// each reachable block's entry facts. entry seeds the entry block
// (parameter taint). transfer receives a private copy it may mutate.
func forwardMay(cfg *CFG, entry factSet, transfer func(blk *Block, in factSet) factSet) map[*Block]factSet {
	preds := predecessors(cfg)
	ins := make(map[*Block]factSet, len(cfg.Blocks))
	outs := make(map[*Block]factSet, len(cfg.Blocks))

	queued := make(map[*Block]bool, len(cfg.Blocks))
	var worklist []*Block
	push := func(blk *Block) {
		if !queued[blk] {
			queued[blk] = true
			worklist = append(worklist, blk)
		}
	}
	push(cfg.Entry())

	// Safety cap: monotone transfer converges in O(blocks × facts)
	// visits; anything past this indicates a client bug, and truncating a
	// may-analysis only under-reports.
	budget := (len(cfg.Blocks) + 1) * (len(entry) + 32) * 4

	for len(worklist) > 0 && budget > 0 {
		budget--
		blk := worklist[0]
		worklist = worklist[1:]
		queued[blk] = false

		in := make(factSet)
		if blk == cfg.Entry() {
			in = cloneFacts(entry)
		}
		for _, p := range preds[blk] {
			if out, ok := outs[p]; ok {
				in = unionFacts(in, out)
			}
		}
		ins[blk] = in
		out := transfer(blk, cloneFacts(in))
		if prev, ok := outs[blk]; !ok || !equalFacts(out, prev) {
			outs[blk] = out
			for _, s := range blk.Succs {
				push(s)
			}
		}
	}
	return ins
}
