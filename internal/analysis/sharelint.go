package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"sort"
)

// SharePackages are the packages that own real goroutines (plus the
// simulator the sharding tentpole will parallelize): state reachable
// from more than one goroutine there must be lock-protected or
// confined.
var SharePackages = []string{
	"rbcast/internal/sim",
	"rbcast/internal/netsim",
	"rbcast/internal/soak",
	"rbcast/internal/live",
	"rbcast/internal/udp",
}

// ShareLint checks goroutine confinement of struct-field and
// package-level state, whole-program. Every spawn edge in the call
// graph opens a goroutine context; a function's contexts are propagated
// along static call edges from its callers. A location (named
// instance-blind, e.g. "live.Transport.seq") accessed from two or more
// contexts, at least once as a write, with no lock class common to both
// accesses (held-set walk plus entry-held facts, with monolint's CFG
// dominance machinery as a fallback for guards the linear walk cannot
// see) is reported as a data race candidate.
//
// Accesses are exempt when the state cannot race by construction:
// channel-typed and sync/atomic/detrand-stream/net-handle state is
// confined by its own discipline, accesses through locals freshly bound
// to a composite literal or new(T) are pre-publication initialization,
// accesses reaching their memory purely through value-typed locals
// operate on a per-goroutine copy, and arguments of sync/atomic calls
// are serialized by the atomic operation itself. Struct types whose
// instances never cross a spawn boundary — not captured by any spawned
// closure, not passed or received at any go site, not reachable from
// such a value through reference fields, and not held in a package
// variable — are confined wholesale: a worker that builds its own
// engine per task shares nothing, however many workers run (channel
// fields stop the closure: channel-passed values are handoffs).
//
// Known limits, on purpose: locations are instance-blind (two
// goroutines on *different* Transport values look like a conflict the
// locks must resolve anyway), captured locals are out of scope (the
// directive-level contract covers package-level and struct state), and
// context propagation follows only static edges — dynamic dispatch
// sites under-approximate, which the per-location aggregation mostly
// recovers.
var ShareLint = &Analyzer{
	Name: "sharelint",
	Doc: "struct and package state reachable from more than one goroutine must " +
		"be lock-guarded or channel-confined in sim, netsim, soak, live, udp",
	Run: runShareLint,
}

func runShareLint(pass *Pass) error {
	if pass.Prog == nil {
		return nil
	}
	pass.Prog.ensureShareDiags()
	for _, pd := range pass.Prog.shareDiags {
		if pd.pkgPath == pass.Pkg.Path() {
			pass.Report(pd.d)
		}
	}
	return nil
}

func (p *Program) ensureShareDiags() {
	if p.shareDone {
		return
	}
	p.shareDone = true
	p.shareDiags = p.sortedProgDiags(computeShareDiags(p))
}

// shareAccess is one recorded access to a shared-capable location.
type shareAccess struct {
	node  *FuncNode
	pos   token.Pos
	write bool
	held  map[string]bool // effective lock classes (entry ∪ local) at the access
}

func computeShareDiags(p *Program) []progDiag {
	runsIn, ctxDescs := goroutineContexts(p)
	shared := spawnSharedTypes(p)

	accesses := make(map[string][]*shareAccess)
	for _, n := range p.Graph.Nodes {
		if !pkgInScope(n.Pkg.Path, SharePackages) {
			continue
		}
		collectShareAccesses(p, n, shared, accesses)
	}

	dom := newDomCache(p)
	var out []progDiag
	locs := make([]string, 0, len(accesses))
	for loc := range accesses {
		locs = append(locs, loc)
	}
	sort.Strings(locs)
	for _, loc := range locs {
		accs := accesses[loc]
		for _, w := range accs {
			if !w.write {
				continue
			}
			other := findShareConflict(p, w, accs, runsIn, dom)
			if other == nil {
				continue
			}
			ctxs := describeContexts(runsIn, ctxDescs, w.node, other.node)
			var msg string
			if other == w {
				msg = fmt.Sprintf("%s is written by %s, which runs in multiple goroutines (%s), without a lock: "+
					"concurrent instances race on this write; guard it with a mutex or confine it to one goroutine",
					loc, w.node.Name, ctxs)
			} else {
				msg = fmt.Sprintf("%s is written here and accessed at %s from a different goroutine (%s) with no common lock: "+
					"guard both accesses with one mutex or confine the state to a single goroutine",
					loc, shortPos(p.Fset, other.pos), ctxs)
			}
			out = append(out, progDiag{
				pkgPath: w.node.Pkg.Path,
				d:       Diagnostic{Analyzer: "sharelint", Pos: w.pos, Message: msg},
			})
		}
	}
	return out
}

// findShareConflict returns an access conflicting with the write w, or
// nil: together they span two or more goroutine contexts and no lock
// class guards both.
func findShareConflict(p *Program, w *shareAccess, accs []*shareAccess, runsIn map[*FuncNode]map[int]bool, dom *domCache) *shareAccess {
	wGuard := effectiveGuard(p, w, dom)
	for _, a := range accs {
		n := len(runsIn[w.node])
		for ctx := range runsIn[a.node] {
			if !runsIn[w.node][ctx] {
				n++
			}
		}
		if n < 2 {
			continue
		}
		if intersectsHeld(wGuard, effectiveGuard(p, a, dom)) {
			continue
		}
		return a
	}
	return nil
}

// effectiveGuard is the access's held set, falling back to the set of
// lock classes whose acquisition dominates the access on every CFG path
// (monolint's dominance machinery) when the linear walk saw nothing —
// this recovers guards taken on both arms of a branch.
func effectiveGuard(p *Program, a *shareAccess, dom *domCache) map[string]bool {
	if len(a.held) > 0 {
		return a.held
	}
	return dom.dominatingClasses(a.node, a.pos)
}

func intersectsHeld(a, b map[string]bool) bool {
	for class := range a {
		if b[class] {
			return true
		}
	}
	return false
}

// goroutineContexts assigns context IDs — 0 for program entry points,
// one per spawn edge (two when the spawn sits in a loop: many instances
// of the same body) — and propagates them along static call and defer
// edges to a fixpoint.
func goroutineContexts(p *Program) (map[*FuncNode]map[int]bool, []string) {
	runsIn := make(map[*FuncNode]map[int]bool)
	add := func(n *FuncNode, ctx int) bool {
		m := runsIn[n]
		if m == nil {
			m = make(map[int]bool)
			runsIn[n] = m
		}
		if m[ctx] {
			return false
		}
		m[ctx] = true
		return true
	}

	descs := []string{"program entry"}
	for _, n := range p.Graph.Nodes {
		if len(n.In) == 0 {
			add(n, 0)
		}
		for _, e := range n.Out {
			if e.Kind != EdgeGo {
				continue
			}
			desc := fmt.Sprintf("spawned by %s at %s", n.Name, shortPos(p.Fset, e.Pos))
			descs = append(descs, desc)
			add(e.Callee, len(descs)-1)
			if siteInLoop(n.Body, e.Site) {
				descs = append(descs, desc+" (loop: multiple instances)")
				add(e.Callee, len(descs)-1)
			}
		}
	}

	for changed := true; changed; {
		changed = false
		for _, n := range p.Graph.Nodes {
			for _, e := range n.Out {
				if e.Kind == EdgeGo || e.Dynamic {
					continue
				}
				for ctx := range runsIn[n] {
					if add(e.Callee, ctx) {
						changed = true
					}
				}
			}
		}
	}
	return runsIn, descs
}

// siteInLoop reports whether site sits inside a for/range statement of
// body (position containment; nested literal bodies do not matter here
// because the site belongs to this node's own shallow walk).
func siteInLoop(body ast.Node, site *ast.CallExpr) bool {
	in := false
	ast.Inspect(body, func(n ast.Node) bool {
		if in {
			return false
		}
		switch n.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			if n.Pos() <= site.Pos() && site.End() <= n.End() {
				in = true
			}
		}
		return true
	})
	return in
}

func describeContexts(runsIn map[*FuncNode]map[int]bool, descs []string, nodes ...*FuncNode) string {
	seen := make(map[int]bool)
	var ids []int
	for _, n := range nodes {
		for ctx := range runsIn[n] {
			if !seen[ctx] {
				seen[ctx] = true
				ids = append(ids, ctx)
			}
		}
	}
	sort.Ints(ids)
	var parts []string
	for _, id := range ids {
		if len(parts) == 3 {
			parts = append(parts, fmt.Sprintf("+%d more", len(ids)-3))
			break
		}
		parts = append(parts, descs[id])
	}
	out := ""
	for i, s := range parts {
		if i > 0 {
			out += "; "
		}
		out += s
	}
	return out
}

// collectShareAccesses walks one in-scope node and records its accesses
// to struct-field and package-level locations.
func collectShareAccesses(p *Program, n *FuncNode, shared map[*types.Named]bool, accesses map[string][]*shareAccess) {
	entry := p.entryHeldOf(n)
	fresh := freshLocals(n)
	claimed := make(map[ast.Node]bool)
	var atomicRanges [][2]token.Pos

	inAtomic := func(pos token.Pos) bool {
		for _, r := range atomicRanges {
			if r[0] <= pos && pos <= r[1] {
				return true
			}
		}
		return false
	}
	record := func(expr ast.Expr, write bool, held map[string]bool) {
		loc, t, owner, ok := shareLocOf(p, n, expr)
		if !ok || confinedType(t) || baseIsFresh(n, expr, fresh) || inAtomic(expr.Pos()) {
			return
		}
		if owner != nil && (!shared[owner] || localValueChain(n, expr)) {
			return
		}
		accesses[loc] = append(accesses[loc], &shareAccess{
			node:  n,
			pos:   expr.Pos(),
			write: write,
			held:  copyHeld(unionHeld(entry, held)),
		})
	}
	claimWrite := func(expr ast.Expr, held map[string]bool) {
		e := ast.Unparen(expr)
		if ix, ok := e.(*ast.IndexExpr); ok { // m[k] = v writes the map itself
			e = ast.Unparen(ix.X)
		}
		claimed[e] = true
		record(e, true, held)
	}

	p.walkLocks(n, func(node ast.Node, held map[string]bool) {
		switch node := node.(type) {
		case *ast.AssignStmt:
			for _, lhs := range node.Lhs {
				claimWrite(lhs, held)
			}
		case *ast.IncDecStmt:
			claimWrite(node.X, held)
		case *ast.UnaryExpr:
			// Taking the address lets the pointee be mutated out of view:
			// conservatively a write.
			if node.Op == token.AND {
				claimWrite(node.X, held)
			}
		case *ast.CallExpr:
			// A pointer-receiver method call is deliberately NOT treated as
			// a write to the receiver: the callee's own field writes are
			// observed directly when its node is walked, each with its own
			// (correct) lock context, so a caller-side claim would only
			// double-count with the wrong context — n.bus.Tick() from the
			// owning goroutine is not a write to the bus field.
			if isAtomicCall(n.Pkg.TypesInfo, node) {
				atomicRanges = append(atomicRanges, [2]token.Pos{node.Pos(), node.End()})
			}
		case *ast.SelectorExpr:
			if !claimed[node] {
				record(node, false, held)
			}
		case *ast.Ident:
			if !claimed[node] {
				record(node, false, held)
			}
		}
	})
}

// shareLocOf names the location an expression touches: a field of a
// program-declared named type ("pkg/path.Type.field", owner returned)
// or a package-level variable ("pkg/path.var", nil owner). Locals,
// parameters, and state of packages outside the program are not
// tracked.
func shareLocOf(p *Program, n *FuncNode, e ast.Expr) (string, types.Type, *types.Named, bool) {
	info := n.Pkg.TypesInfo
	switch e := ast.Unparen(e).(type) {
	case *ast.SelectorExpr:
		s, ok := info.Selections[e]
		if !ok || s.Kind() != types.FieldVal {
			return "", nil, nil, false
		}
		t := s.Recv()
		if ptr, ok := t.(*types.Pointer); ok {
			t = ptr.Elem()
		}
		named, ok := t.(*types.Named)
		if !ok || named.Obj().Pkg() == nil || p.packageOf(named.Obj().Pkg()) == nil {
			return "", nil, nil, false
		}
		return named.Obj().Pkg().Path() + "." + named.Obj().Name() + "." + e.Sel.Name, s.Obj().Type(), named, true
	case *ast.Ident:
		obj, ok := info.Uses[e].(*types.Var)
		if !ok || !isPackageLevelVar(obj) || p.packageOf(obj.Pkg()) == nil {
			return "", nil, nil, false
		}
		return obj.Pkg().Path() + "." + obj.Name(), obj.Type(), nil, true
	}
	return "", nil, nil, false
}

// spawnSharedTypes computes the named types whose instances can be
// reached by more than one goroutine by construction: types captured by
// a spawned closure, passed (or used as receiver) at a go site, or held
// in a package-level variable — transitively closed over struct fields
// through pointers, slices, arrays, and maps. Channel element types are
// deliberately not followed: a value sent on a channel is a handoff,
// the confinement-by-communication idiom. A struct type outside this
// set is goroutine-confined however many goroutines run the code that
// builds it.
func spawnSharedTypes(p *Program) map[*types.Named]bool {
	set := make(map[*types.Named]bool)
	for _, n := range p.Graph.Nodes {
		info := n.Pkg.TypesInfo
		for _, e := range n.Out {
			if e.Kind != EdgeGo {
				continue
			}
			for _, arg := range e.Site.Args {
				addSpawnSharedType(p, set, typeOf(info, arg))
			}
			if sel, ok := ast.Unparen(e.Site.Fun).(*ast.SelectorExpr); ok {
				addSpawnSharedType(p, set, typeOf(info, sel.X))
			}
			if lit := e.Callee.Lit; lit != nil {
				ast.Inspect(lit.Body, func(x ast.Node) bool {
					id, ok := x.(*ast.Ident)
					if !ok {
						return true
					}
					v, ok := info.Uses[id].(*types.Var)
					if ok && v.Pos().IsValid() && (v.Pos() < lit.Pos() || v.Pos() > lit.End()) {
						addSpawnSharedType(p, set, v.Type())
					}
					return true
				})
			}
		}
	}
	for _, pkg := range p.Packages {
		scope := pkg.Types.Scope()
		for _, name := range scope.Names() {
			if v, ok := scope.Lookup(name).(*types.Var); ok {
				addSpawnSharedType(p, set, v.Type())
			}
		}
	}
	return set
}

func addSpawnSharedType(p *Program, set map[*types.Named]bool, t types.Type) {
	switch t := t.(type) {
	case *types.Pointer:
		addSpawnSharedType(p, set, t.Elem())
	case *types.Slice:
		addSpawnSharedType(p, set, t.Elem())
	case *types.Array:
		addSpawnSharedType(p, set, t.Elem())
	case *types.Map:
		addSpawnSharedType(p, set, t.Key())
		addSpawnSharedType(p, set, t.Elem())
	case *types.Struct:
		for i := 0; i < t.NumFields(); i++ {
			addSpawnSharedType(p, set, t.Field(i).Type())
		}
	case *types.Named:
		if set[t] || t.Obj().Pkg() == nil || p.packageOf(t.Obj().Pkg()) == nil {
			return
		}
		set[t] = true
		addSpawnSharedType(p, set, t.Underlying())
	}
	// Channels (handoff), funcs, interfaces, basics: stop.
}

// localValueChain reports whether e reaches its memory purely through
// value-typed locals: the chain's root is a non-field local variable
// (parameter, value receiver, or local) and every selection step peels
// a value struct. Such memory is this function's own copy — writing
// cfg.Field on a value receiver mutates the copy, not shared state.
func localValueChain(n *FuncNode, e ast.Expr) bool {
	info := n.Pkg.TypesInfo
	cur := ast.Unparen(e)
	for {
		sel, ok := cur.(*ast.SelectorExpr)
		if !ok {
			break
		}
		t := typeOf(info, sel.X)
		if _, isStruct := t.Underlying().(*types.Struct); !isStruct {
			return false // pointer/interface/indexed base dereferences shared memory
		}
		cur = ast.Unparen(sel.X)
	}
	id, ok := cur.(*ast.Ident)
	if !ok {
		return false
	}
	v, ok := info.Uses[id].(*types.Var)
	if !ok {
		if v, ok = info.Defs[id].(*types.Var); !ok {
			return false
		}
	}
	return !v.IsField() && !isPackageLevelVar(v)
}

// confinedType reports state whose own discipline serializes access:
// channels, sync and sync/atomic values, deterministic random streams,
// network handles, and runtime timers (all safe for concurrent use).
func confinedType(t types.Type) bool {
	if t == nil {
		return false
	}
	if _, ok := t.Underlying().(*types.Chan); ok {
		return true
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	switch named.Obj().Pkg().Path() {
	case "sync", "sync/atomic", "rbcast/internal/detrand":
		return true
	case "time":
		switch named.Obj().Name() {
		case "Timer", "Ticker":
			return true
		}
	case "net":
		return true
	}
	return false
}

// freshLocals finds locals bound (by := or var) directly to a composite
// literal or new(T): values this function just created and is still
// initializing before publication.
func freshLocals(n *FuncNode) map[types.Object]bool {
	info := n.Pkg.TypesInfo
	fresh := make(map[types.Object]bool)
	isFreshExpr := func(e ast.Expr) bool {
		switch e := ast.Unparen(e).(type) {
		case *ast.CompositeLit:
			return true
		case *ast.UnaryExpr:
			if e.Op == token.AND {
				_, ok := ast.Unparen(e.X).(*ast.CompositeLit)
				return ok
			}
		case *ast.CallExpr:
			if b, ok := ast.Unparen(e.Fun).(*ast.Ident); ok {
				if obj, ok := info.Uses[b].(*types.Builtin); ok && obj.Name() == "new" {
					return true
				}
			}
		}
		return false
	}
	bind := func(lhs ast.Expr, rhs ast.Expr) {
		id, ok := ast.Unparen(lhs).(*ast.Ident)
		if !ok || id.Name == "_" || !isFreshExpr(rhs) {
			return
		}
		if obj := info.Defs[id]; obj != nil {
			fresh[obj] = true
		}
	}
	ast.Inspect(n.Body, func(x ast.Node) bool {
		if lit, ok := x.(*ast.FuncLit); ok && lit.Body != n.Body {
			return false
		}
		switch x := x.(type) {
		case *ast.AssignStmt:
			if x.Tok == token.DEFINE && len(x.Lhs) == len(x.Rhs) {
				for i := range x.Lhs {
					bind(x.Lhs[i], x.Rhs[i])
				}
			}
		case *ast.ValueSpec:
			if len(x.Names) == len(x.Values) {
				for i := range x.Names {
					bind(x.Names[i], x.Values[i])
				}
			}
		}
		return true
	})
	return fresh
}

func baseIsFresh(n *FuncNode, e ast.Expr, fresh map[types.Object]bool) bool {
	id, ok := ast.Unparen(rootExpr(e)).(*ast.Ident)
	if !ok {
		return false
	}
	obj := n.Pkg.TypesInfo.Uses[id]
	if obj == nil {
		obj = n.Pkg.TypesInfo.Defs[id]
	}
	return obj != nil && fresh[obj]
}

func isAtomicCall(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	return ok && fn.Pkg() != nil && fn.Pkg().Path() == "sync/atomic"
}

// domCache lazily builds, per function node, the CFG and the map from
// lock class to the statements acquiring it — the inputs to the
// dominance fallback.
type domCache struct {
	prog *Program
	cfgs map[*FuncNode]*CFG
	acqs map[*FuncNode]map[string][]ast.Node
}

func newDomCache(p *Program) *domCache {
	return &domCache{
		prog: p,
		cfgs: make(map[*FuncNode]*CFG),
		acqs: make(map[*FuncNode]map[string][]ast.Node),
	}
}

func (d *domCache) of(n *FuncNode) (*CFG, map[string][]ast.Node) {
	if cfg, ok := d.cfgs[n]; ok {
		return cfg, d.acqs[n]
	}
	cfg := buildCFG(n.Name, n.Body)
	acqs := make(map[string][]ast.Node)
	for _, blk := range cfg.Blocks {
		for _, stmt := range blk.Nodes {
			ast.Inspect(stmt, func(x ast.Node) bool {
				if _, ok := x.(*ast.FuncLit); ok {
					return false
				}
				if call, ok := x.(*ast.CallExpr); ok {
					if class, locks, ok := d.prog.lockEventClass(n, call); ok && locks {
						acqs[class] = append(acqs[class], stmt)
					}
				}
				return true
			})
		}
	}
	d.cfgs[n] = cfg
	d.acqs[n] = acqs
	return cfg, acqs
}

// dominatingClasses returns the lock classes whose acquisition
// dominates the access at pos on every CFG path from entry.
func (d *domCache) dominatingClasses(n *FuncNode, pos token.Pos) map[string]bool {
	cfg, acqs := d.of(n)
	if len(acqs) == 0 {
		return nil
	}
	blk, idx := findEnclosingBlockNode(cfg, pos)
	if blk == nil {
		return nil
	}
	var out map[string]bool
	for class, stmts := range acqs {
		isGuard := func(node ast.Node) bool {
			for _, s := range stmts {
				if s == node {
					return true
				}
			}
			return false
		}
		if pathDominates(cfg, blk, idx, isGuard) {
			if out == nil {
				out = make(map[string]bool)
			}
			out[class] = true
		}
	}
	return out
}

// findEnclosingBlockNode locates the CFG block node whose source range
// contains pos.
func findEnclosingBlockNode(cfg *CFG, pos token.Pos) (*Block, int) {
	for _, blk := range cfg.Blocks {
		for i, node := range blk.Nodes {
			if node.Pos() <= pos && pos <= node.End() {
				return blk, i
			}
		}
	}
	return nil, -1
}

func shortPos(fset *token.FileSet, pos token.Pos) string {
	p := fset.Position(pos)
	return fmt.Sprintf("%s:%d", filepath.Base(p.Filename), p.Line)
}
