package analysis

import (
	"encoding/json"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// outputFixture fabricates a FileSet with one file and two diagnostics
// in it, plus the "module root" the paths are relativized against.
func outputFixture(t *testing.T) (*token.FileSet, string, []Diagnostic) {
	t.Helper()
	fset := token.NewFileSet()
	modRoot := string(filepath.Separator) + filepath.Join("mod", "root")
	f := fset.AddFile(filepath.Join(modRoot, "internal", "x", "x.go"), -1, 200)
	f.SetLines([]int{0, 50, 100, 150})
	diags := []Diagnostic{
		{Analyzer: "taintlint", Pos: f.Pos(60), Message: "tainted make"},
		{Analyzer: "monolint", Pos: f.Pos(110), Message: "rogue write"},
	}
	return fset, modRoot, diags
}

func TestWriteJSON(t *testing.T) {
	fset, modRoot, diags := outputFixture(t)
	var sb strings.Builder
	if err := WriteJSON(&sb, fset, modRoot, diags); err != nil {
		t.Fatal(err)
	}
	var got []JSONDiagnostic
	if err := json.Unmarshal([]byte(sb.String()), &got); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, sb.String())
	}
	if len(got) != 2 {
		t.Fatalf("got %d entries, want 2", len(got))
	}
	want := JSONDiagnostic{Analyzer: "taintlint", File: "internal/x/x.go", Line: 2, Column: 11, Message: "tainted make"}
	if got[0] != want {
		t.Errorf("entry[0] = %+v, want %+v", got[0], want)
	}
}

func TestWriteJSONEmpty(t *testing.T) {
	fset, modRoot, _ := outputFixture(t)
	var sb strings.Builder
	if err := WriteJSON(&sb, fset, modRoot, nil); err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(sb.String()) != "[]" {
		t.Errorf("empty run must encode as [], got %q", sb.String())
	}
}

func TestWriteSARIF(t *testing.T) {
	fset, modRoot, diags := outputFixture(t)
	var sb strings.Builder
	if err := WriteSARIF(&sb, fset, modRoot, diags); err != nil {
		t.Fatal(err)
	}
	var log map[string]any
	if err := json.Unmarshal([]byte(sb.String()), &log); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if v, _ := log["version"].(string); v != "2.1.0" {
		t.Errorf("version = %q, want 2.1.0", v)
	}
	runs, _ := log["runs"].([]any)
	if len(runs) != 1 {
		t.Fatalf("runs = %d, want 1", len(runs))
	}
	run := runs[0].(map[string]any)
	results, _ := run["results"].([]any)
	if len(results) != 2 {
		t.Fatalf("results = %d, want 2", len(results))
	}
	first := results[0].(map[string]any)
	if first["ruleId"] != "taintlint" {
		t.Errorf("ruleId = %v, want taintlint", first["ruleId"])
	}
	// Every suite analyzer must be declared as a rule, even on clean runs.
	driver := run["tool"].(map[string]any)["driver"].(map[string]any)
	rules, _ := driver["rules"].([]any)
	if len(rules) != len(Analyzers())+1 {
		t.Errorf("rules = %d, want %d (suite + rblint)", len(rules), len(Analyzers())+1)
	}
	loc := first["locations"].([]any)[0].(map[string]any)["physicalLocation"].(map[string]any)
	uri := loc["artifactLocation"].(map[string]any)["uri"]
	if uri != "internal/x/x.go" {
		t.Errorf("artifact uri = %v, want module-relative forward-slash path", uri)
	}
}

func TestBaselineRoundTrip(t *testing.T) {
	fset, modRoot, diags := outputFixture(t)
	path := filepath.Join(t.TempDir(), "baseline.json")
	if err := WriteBaseline(path, fset, modRoot, diags[:1]); err != nil {
		t.Fatal(err)
	}
	b, err := LoadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	fresh, known := b.Filter(fset, modRoot, diags)
	if len(known) != 1 || known[0].Analyzer != "taintlint" {
		t.Errorf("known = %+v, want the baselined taintlint finding", known)
	}
	if len(fresh) != 1 || fresh[0].Analyzer != "monolint" {
		t.Errorf("fresh = %+v, want the un-baselined monolint finding", fresh)
	}
}

// TestBaselineLineInsensitive pins the key design: moving a finding to a
// different line must not resurrect it.
func TestBaselineLineInsensitive(t *testing.T) {
	fset, modRoot, diags := outputFixture(t)
	path := filepath.Join(t.TempDir(), "baseline.json")
	if err := WriteBaseline(path, fset, modRoot, diags[:1]); err != nil {
		t.Fatal(err)
	}
	b, err := LoadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	// Same analyzer, file, and message — different position.
	moved := []Diagnostic{{Analyzer: "taintlint", Pos: diags[1].Pos, Message: "tainted make"}}
	fresh, known := b.Filter(fset, modRoot, moved)
	if len(fresh) != 0 || len(known) != 1 {
		t.Errorf("moved finding escaped the baseline: fresh=%+v known=%+v", fresh, known)
	}
}

func TestBaselineMissingFileIsEmpty(t *testing.T) {
	b, err := LoadBaseline(filepath.Join(t.TempDir(), "nope.json"))
	if err != nil {
		t.Fatal(err)
	}
	fset, modRoot, diags := outputFixture(t)
	fresh, known := b.Filter(fset, modRoot, diags)
	if len(fresh) != 2 || len(known) != 0 {
		t.Errorf("missing baseline must pass everything through: fresh=%d known=%d", len(fresh), len(known))
	}
}

func TestApplyFixesDeletesDirective(t *testing.T) {
	dir := t.TempDir()
	src := "package p\n\n//rblint:ignore detlint but nothing fires here anymore\nfunc f() {}\n"
	path := filepath.Join(dir, "f.go")
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	fset := token.NewFileSet()
	f := fset.AddFile(path, -1, len(src))
	f.SetLinesForContent([]byte(src))
	start := strings.Index(src, "//rblint")
	end := start + len("//rblint:ignore detlint but nothing fires here anymore")
	diags := []Diagnostic{{
		Analyzer: "rblint",
		Pos:      f.Pos(start),
		Message:  "stale rblint:ignore directive",
		SuggestedFixes: []SuggestedFix{{
			Message: "delete the stale directive",
			Edits:   []TextEdit{{Pos: f.Pos(start), End: f.Pos(end)}},
		}},
	}}
	n, err := ApplyFixes(fset, diags)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("applied = %d, want 1", n)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(got), "rblint:ignore") {
		t.Errorf("directive survived the fix:\n%s", got)
	}
	if !strings.Contains(string(got), "func f() {}") {
		t.Errorf("fix damaged surrounding code:\n%s", got)
	}
}

// TestApplyFixesDescendingOrder pins multi-edit safety: two edits in one
// file must both land even though applying one shifts offsets.
func TestApplyFixesDescendingOrder(t *testing.T) {
	dir := t.TempDir()
	src := "AAAA BBBB CCCC\n"
	path := filepath.Join(dir, "f.txt")
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	fset := token.NewFileSet()
	f := fset.AddFile(path, -1, len(src))
	f.SetLinesForContent([]byte(src))
	mk := func(start, end int, repl string) Diagnostic {
		return Diagnostic{
			Analyzer: "x", Pos: f.Pos(start), Message: "m",
			SuggestedFixes: []SuggestedFix{{Edits: []TextEdit{{Pos: f.Pos(start), End: f.Pos(end), NewText: repl}}}},
		}
	}
	n, err := ApplyFixes(fset, []Diagnostic{mk(0, 4, "X"), mk(10, 14, "Z")})
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("applied = %d, want 2", n)
	}
	got, _ := os.ReadFile(path)
	if string(got) != "X BBBB Z\n" {
		t.Errorf("got %q, want %q", got, "X BBBB Z\n")
	}
}
