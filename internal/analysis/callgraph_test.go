package analysis_test

import (
	"strings"
	"testing"

	"rbcast/internal/analysis"
)

// loadCallgraphProgram type-checks the callgraph fixture and builds the
// whole-program view over it (unlike the CFG golden tests, call-graph
// resolution needs real type information for method values and class
// hierarchy analysis).
func loadCallgraphProgram(t *testing.T) *analysis.Program {
	t.Helper()
	loader, err := analysis.NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := loader.Load("testdata/callgraph", "")
	if err != nil {
		t.Fatal(err)
	}
	return analysis.NewProgram(loader.Fset, []*analysis.Package{pkg})
}

func nodeByName(t *testing.T, prog *analysis.Program, name string) *analysis.FuncNode {
	t.Helper()
	for _, n := range prog.Graph.Nodes {
		if n.Name == name {
			return n
		}
	}
	t.Fatalf("no node named %s", name)
	return nil
}

// TestCallGraphGolden pins the exact edge list: deterministic node
// order, edge kinds (call/go/defer), and which resolutions are dynamic
// (method value by signature, interface call by hierarchy).
func TestCallGraphGolden(t *testing.T) {
	prog := loadCallgraphProgram(t)
	want := strings.Join([]string{
		"cg.Static -> cg.helper [call]",
		"cg.SpawnClosure -> cg.SpawnClosure$1 [go]",
		"cg.SpawnClosure$1 -> cg.helper [call]",
		"cg.DeferCall -> cg.helper [defer]",
		"cg.MethodValue -> cg.(*T).M [call] dyn",
		"cg.ViaInterface -> cg.(*T).M [call] dyn",
		"cg.AfterFuncCallback -> cg.AfterFuncCallback$1 [go]",
		"cg.AfterFuncCallback$1 -> cg.helper [call]",
	}, "\n") + "\n"
	if got := prog.Graph.String(); got != want {
		t.Errorf("call graph:\n%swant:\n%s", got, want)
	}
}

// TestCallGraphStructure covers the graph API the analyzers lean on:
// spawn-edge enumeration, the literal-to-encloser Parent chain, and
// reachability stopping at goroutine boundaries.
func TestCallGraphStructure(t *testing.T) {
	prog := loadCallgraphProgram(t)

	goEdges := prog.Graph.GoEdges()
	if len(goEdges) != 2 {
		t.Errorf("GoEdges = %d, want 2 (spawned closure + AfterFunc callback)", len(goEdges))
	}

	lit := nodeByName(t, prog, "cg.SpawnClosure$1")
	if enc := lit.EnclosingDecl(); enc == nil || enc.Name != "cg.SpawnClosure" {
		t.Errorf("EnclosingDecl(SpawnClosure$1) = %v", enc)
	}
	if lit.Lit == nil || prog.Graph.NodeOfLit(lit.Lit) != lit {
		t.Error("NodeOfLit does not round-trip the spawned literal")
	}

	static := nodeByName(t, prog, "cg.Static")
	if static.Obj == nil || prog.Graph.NodeOf(static.Obj) != static {
		t.Error("NodeOf does not round-trip a declared function")
	}

	reach := prog.Graph.Reachable([]*analysis.FuncNode{static})
	if len(reach) != 2 || !reach[nodeByName(t, prog, "cg.helper")] {
		t.Errorf("Reachable(Static) = %d nodes, want {Static, helper}", len(reach))
	}

	// Go edges are a goroutine boundary: the spawned body is not
	// reachable from its spawner.
	spawner := nodeByName(t, prog, "cg.SpawnClosure")
	if reach := prog.Graph.Reachable([]*analysis.FuncNode{spawner}); len(reach) != 1 {
		t.Errorf("Reachable(SpawnClosure) crossed a go edge: %d nodes, want 1", len(reach))
	}
}
