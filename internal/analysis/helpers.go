package analysis

// helpers.go — resolution helpers shared by the analyzers: callee and
// receiver lookup, package scoping, and the package function table that
// both the wirelint reachability walk and the dataflow call summaries
// are built on.

import (
	"go/ast"
	"go/types"
)

// pkgInScope reports whether path is one of the listed package paths.
// Path-scoped analyzers (detlint, taintlint, monolint, leaklint) gate on
// this so testdata packages opt in by being checked under an assumed
// import path.
func pkgInScope(path string, scope []string) bool {
	for _, p := range scope {
		if path == p {
			return true
		}
	}
	return false
}

// calleeObject resolves the called function/method, or nil.
func calleeObject(pass *Pass, call *ast.CallExpr) types.Object {
	return calleeObjectInfo(pass.TypesInfo, call)
}

// calleeObjectInfo is calleeObject for code outside the pass package
// (whole-program analyses resolve callees in whichever package a
// function node lives).
func calleeObjectInfo(info *types.Info, call *ast.CallExpr) types.Object {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return info.Uses[fun]
	case *ast.SelectorExpr:
		return info.Uses[fun.Sel]
	}
	return nil
}

// calleeName extracts the bare called name from a call expression.
func calleeName(call *ast.CallExpr) (string, bool) {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name, true
	case *ast.SelectorExpr:
		return fun.Sel.Name, true
	}
	return "", false
}

// recvTypeName returns the named type of a method receiver, stripping
// one pointer.
func recvTypeName(t types.Type) string {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return ""
}

// packageFuncDecls maps every function and method object declared in the
// package to its declaration — the call-graph table behind wirelint's
// reachability walk, taintlint's call summaries, and leaklint's named
// goroutine resolution.
func packageFuncDecls(pass *Pass) map[types.Object]*ast.FuncDecl {
	decls := make(map[types.Object]*ast.FuncDecl)
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok {
				if obj := pass.TypesInfo.Defs[fd.Name]; obj != nil {
					decls[obj] = fd
				}
			}
		}
	}
	return decls
}

// calleeDecl resolves a call to a same-package function or method
// declaration via the decls table, or nil.
func calleeDecl(pass *Pass, decls map[types.Object]*ast.FuncDecl, call *ast.CallExpr) *ast.FuncDecl {
	obj := calleeObject(pass, call)
	if obj == nil {
		return nil
	}
	return decls[obj]
}

// funcParamObjs lists a declaration's parameter objects in signature
// order, with the receiver first for methods (so summary indices line up
// with callArgExprs). Unnamed or blank parameters yield nil entries.
func funcParamObjs(pass *Pass, fd *ast.FuncDecl) []types.Object {
	return funcParamObjsInfo(pass.TypesInfo, fd)
}

// funcParamObjsInfo is funcParamObjs against an explicit *types.Info.
func funcParamObjsInfo(info *types.Info, fd *ast.FuncDecl) []types.Object {
	var out []types.Object
	addField := func(f *ast.Field) {
		if len(f.Names) == 0 {
			out = append(out, nil)
			return
		}
		for _, name := range f.Names {
			if name.Name == "_" {
				out = append(out, nil)
				continue
			}
			out = append(out, info.Defs[name])
		}
	}
	if fd.Recv != nil {
		for _, f := range fd.Recv.List {
			addField(f)
		}
	}
	if fd.Type.Params != nil {
		for _, f := range fd.Type.Params.List {
			addField(f)
		}
	}
	return out
}

// callArgExprs lists a call site's argument expressions aligned with
// funcParamObjs(fd): the receiver expression first for method calls.
// Variadic overflow arguments map to the last parameter slot; entries
// may be nil when no expression is available.
func callArgExprs(call *ast.CallExpr, fd *ast.FuncDecl) []ast.Expr {
	var out []ast.Expr
	if fd.Recv != nil {
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			out = append(out, sel.X)
		} else {
			out = append(out, nil)
		}
	}
	out = append(out, call.Args...)
	return out
}
