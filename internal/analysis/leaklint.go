package analysis

import (
	"go/ast"
	"go/types"
)

// LeakPackages are the packages that own real goroutines and timers: the
// discrete-event engine, the live loopback fleet, the UDP runtime, and
// the soak sweep. (Pure state-machine packages never spawn.)
var LeakPackages = []string{
	"rbcast/internal/sim",
	"rbcast/internal/live",
	"rbcast/internal/udp",
	"rbcast/internal/soak",
}

// LeakLint verifies, on the CFG, that concurrency resources acquired in
// LeakPackages can actually be released:
//
//   - a time.NewTicker / time.NewTimer result must reach a Stop() on
//     every path to the function's normal exit (a deferred Stop covers
//     all of them; a value that escapes — stored, passed, returned — is
//     someone else's responsibility);
//   - a goroutine body must have a reachable exit path: an infinite loop
//     with no return, break, or terminating select case can never be
//     shut down, which strands fleet teardown and leaks under soak;
//   - time.Tick is flagged outright — its ticker can never be stopped.
//
// Panic paths are exempt: the builder gives panic no normal-exit edge,
// so a leak that only happens while the process is dying is not charged.
// time.AfterFunc is deliberately out of scope: its timer self-releases
// after firing, and the transport uses it for fire-and-forget delivery.
var LeakLint = &Analyzer{
	Name: "leaklint",
	Doc: "tickers/timers must be stopped on every exit path and goroutines " +
		"must have a reachable stop in sim, live, udp, soak",
	Run: runLeakLint,
}

func runLeakLint(pass *Pass) error {
	if !pkgInScope(pass.Pkg.Path(), LeakPackages) || pass.Prog == nil {
		return nil
	}
	lc := &leakChecker{pass: pass}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				lc.checkFuncBody(fd.Body)
			}
		}
	}
	return nil
}

type leakChecker struct {
	pass *Pass
}

// checkFuncBody analyzes one function body and, recursively, every
// function literal inside it (each literal is its own CFG: a goroutine
// body owning a ticker is checked like any function).
func (lc *leakChecker) checkFuncBody(body *ast.BlockStmt) {
	cfg := buildCFG("", body)
	lc.checkTimers(body, cfg)
	for _, blk := range cfg.Blocks {
		for _, n := range blk.Nodes {
			lc.checkNode(n)
		}
	}
	// Recurse into literals (they are opaque to the outer CFG).
	ast.Inspect(body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			lc.checkFuncBody(lit.Body)
			return false
		}
		return true
	})
}

func (lc *leakChecker) checkNode(n ast.Node) {
	if rng, ok := n.(*ast.RangeStmt); ok {
		n = rng.X // shallow header
	}
	ast.Inspect(n, func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.FuncLit:
			return false // handled by the recursion in checkFuncBody
		case *ast.GoStmt:
			lc.checkGoroutine(x)
		case *ast.CallExpr:
			if isTimeFunc(lc.pass, x, "Tick") {
				lc.pass.Reportf(x.Pos(),
					"time.Tick leaks its ticker — it can never be stopped; use time.NewTicker with a deferred Stop")
			}
		}
		return true
	})
}

// checkGoroutine requires the spawned body to have a reachable exit.
func (lc *leakChecker) checkGoroutine(g *ast.GoStmt) {
	var body *ast.BlockStmt
	switch fun := ast.Unparen(g.Call.Fun).(type) {
	case *ast.FuncLit:
		body = fun.Body
	default:
		// Resolve named functions and methods through the call graph —
		// whole-program, so a goroutine spawned onto another package's
		// function is checked the same as a local one.
		if fn, ok := calleeObjectInfo(lc.pass.TypesInfo, g.Call).(*types.Func); ok {
			node := lc.pass.Prog.Graph.NodeOf(fn)
			if node != nil && node.Body != nil && !lc.pass.Prog.nodeHasExit(node) {
				lc.pass.Reportf(g.Pos(),
					"goroutine runs %s, which has no reachable exit path: it cannot be stopped "+
						"(add a stop channel case, a return, or range over a closable channel)",
					node.Name)
			}
		}
		return
	}
	if !hasReachableExit(buildCFG("go", body)) {
		lc.pass.Reportf(g.Pos(),
			"goroutine has no reachable exit path: it cannot be stopped "+
				"(add a stop channel case, a return, or range over a closable channel)")
	}
}

// nodeHasExit reports (memoized on the Program) whether n's body has a
// reachable terminating path.
func (p *Program) nodeHasExit(n *FuncNode) bool {
	if has, ok := p.exitCache[n]; ok {
		return has
	}
	has := hasReachableExit(buildCFG(n.Name, n.Body))
	p.exitCache[n] = has
	return has
}

// hasReachableExit reports whether some path from entry terminates: the
// normal exit, or any reachable block with no successors (panic — the
// goroutine ends either way).
func hasReachableExit(cfg *CFG) bool {
	reached := reachableFrom([]*Block{cfg.Entry()}, nil)
	for blk := range reached {
		if blk == cfg.Exit() || len(blk.Succs) == 0 {
			return true
		}
	}
	return false
}

// checkTimers finds time.NewTicker/NewTimer results bound to locals and
// requires a Stop on every path from creation to the normal exit.
func (lc *leakChecker) checkTimers(body *ast.BlockStmt, cfg *CFG) {
	for _, blk := range cfg.Blocks {
		for idx, n := range blk.Nodes {
			assign, ok := n.(*ast.AssignStmt)
			if !ok || len(assign.Rhs) != 1 || len(assign.Lhs) != 1 {
				continue
			}
			call, ok := ast.Unparen(assign.Rhs[0]).(*ast.CallExpr)
			if !ok || !(isTimeFunc(lc.pass, call, "NewTicker") || isTimeFunc(lc.pass, call, "NewTimer")) {
				continue
			}
			obj := identDefOrUse(lc.pass, assign.Lhs[0])
			if obj == nil {
				continue
			}
			lc.checkTimerStopped(body, cfg, blk, idx, obj, call)
		}
	}
}

func (lc *leakChecker) checkTimerStopped(body *ast.BlockStmt, cfg *CFG, creation *Block, idx int, obj types.Object, call *ast.CallExpr) {
	if timerEscapes(lc.pass, body, obj) {
		return
	}
	nodeStops := func(n ast.Node) bool {
		if rng, ok := n.(*ast.RangeStmt); ok {
			n = rng.X
		}
		found := false
		ast.Inspect(n, func(x ast.Node) bool {
			c, ok := x.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := ast.Unparen(c.Fun).(*ast.SelectorExpr)
			if !ok || sel.Sel.Name != "Stop" {
				return true
			}
			if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok && lc.pass.TypesInfo.Uses[id] == obj {
				found = true
			}
			return !found
		})
		return found
	}
	// A Stop later in the creation block (defer ticker.Stop() is the
	// idiom) covers every path out of it.
	for _, n := range creation.Nodes[idx+1:] {
		if nodeStops(n) {
			return
		}
	}
	stopBlock := func(blk *Block) bool {
		for _, n := range blk.Nodes {
			if nodeStops(n) {
				return true
			}
		}
		return false
	}
	reached := reachableFrom(creation.Succs, stopBlock)
	if reached[cfg.Exit()] {
		lc.pass.Reportf(call.Pos(),
			"%s result is not stopped on every exit path: the runtime keeps an unstopped "+
				"ticker/timer alive forever; add `defer %s.Stop()` at creation",
			timeFuncName(lc.pass, call), obj.Name())
	}
}

// timerEscapes reports whether the timer value leaves the function's
// hands: any use that is not a method-call/field selection on it (being
// stored, passed, returned, sent) makes its lifetime someone else's
// concern.
func timerEscapes(pass *Pass, body *ast.BlockStmt, obj types.Object) bool {
	selectorBases := make(map[*ast.Ident]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		if sel, ok := n.(*ast.SelectorExpr); ok {
			if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok && pass.TypesInfo.Uses[id] == obj {
				selectorBases[id] = true
			}
		}
		return true
	})
	escapes := false
	ast.Inspect(body, func(n ast.Node) bool {
		if escapes {
			return false
		}
		if id, ok := n.(*ast.Ident); ok {
			if pass.TypesInfo.Uses[id] == obj && !selectorBases[id] {
				escapes = true
			}
		}
		return true
	})
	return escapes
}

func identDefOrUse(pass *Pass, e ast.Expr) types.Object {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok || id.Name == "_" {
		return nil
	}
	if obj := pass.TypesInfo.Defs[id]; obj != nil {
		return obj
	}
	return pass.TypesInfo.Uses[id]
}

func isTimeFunc(pass *Pass, call *ast.CallExpr, name string) bool {
	fn, ok := calleeObject(pass, call).(*types.Func)
	return ok && fn.Pkg() != nil && fn.Pkg().Path() == "time" && fn.Name() == name
}

func timeFuncName(pass *Pass, call *ast.CallExpr) string {
	if fn, ok := calleeObject(pass, call).(*types.Func); ok {
		return "time." + fn.Name()
	}
	return "timer constructor"
}
