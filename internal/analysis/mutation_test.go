package analysis_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"rbcast/internal/analysis"
)

// Mutation tests: copy the real production sources into a temp package,
// verify the analyzer is silent on them, then apply a classic breaking
// edit and verify the analyzer bites. This is the acceptance proof that
// the provers track the *actual* tree, not just hand-built fixtures —
// module-internal imports of the copies resolve against the real module
// root.

// mutateDir copies the non-test .go files of srcDir into a temp dir,
// applying mutate to each file's text. It fails the test if a requested
// mutation (old != "") never matched.
func mutateDir(t *testing.T, srcDir, old, new string) string {
	t.Helper()
	dir := t.TempDir()
	entries, err := os.ReadDir(srcDir)
	if err != nil {
		t.Fatalf("ReadDir %s: %v", srcDir, err)
	}
	replaced := false
	for _, e := range entries {
		name := e.Name()
		if !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(srcDir, name))
		if err != nil {
			t.Fatalf("ReadFile %s: %v", name, err)
		}
		src := string(data)
		if old != "" && strings.Contains(src, old) {
			src = strings.Replace(src, old, new, 1)
			replaced = true
		}
		if err := os.WriteFile(filepath.Join(dir, name), []byte(src), 0o644); err != nil {
			t.Fatalf("WriteFile %s: %v", name, err)
		}
	}
	if old != "" && !replaced {
		t.Fatalf("mutation %q matched nothing under %s — the production source moved; update the test", old, srcDir)
	}
	return dir
}

// runOn loads dir under asPath with a fresh loader (fresh, so the
// original and mutated copies of one import path never share a package
// cache) and runs a single analyzer.
func runOn(t *testing.T, a *analysis.Analyzer, dir, asPath string) []analysis.Diagnostic {
	t.Helper()
	loader, err := analysis.NewLoader(".")
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	pkg, err := loader.Load(dir, asPath)
	if err != nil {
		t.Fatalf("Load %s: %v", dir, err)
	}
	diags, err := analysis.RunPackage(loader, pkg, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("RunPackage: %v", err)
	}
	return diags
}

// TestQuorumLintMutation proves quorumlint catches an off-by-one
// introduced into the real echo-quorum expression in
// internal/core/echo.go.
func TestQuorumLintMutation(t *testing.T) {
	clean := mutateDir(t, "../core", "", "")
	if diags := runOn(t, analysis.QuorumLint, clean, "rbcast/internal/core"); len(diags) != 0 {
		t.Fatalf("quorumlint not clean on unmutated core: %v", diags[0].Message)
	}

	mutated := mutateDir(t, "../core",
		"return (len(h.peers)+h.byzF())/2 + 1",
		"return (len(h.peers) + h.byzF()) / 2")
	diags := runOn(t, analysis.QuorumLint, mutated, "rbcast/internal/core")
	found := false
	for _, d := range diags {
		if strings.Contains(d.Message, "echo quorums may fail to intersect") {
			found = true
		}
	}
	if !found {
		t.Errorf("quorumlint missed the echo-quorum off-by-one; got %d diagnostics", len(diags))
		for _, d := range diags {
			t.Logf("  %s", d.Message)
		}
	}
}

// TestLaneLintMutation proves lanelint catches a global Schedule call
// smuggled into a real lane event: the cross-lane delivery continuation
// in internal/netsim/transmit.go.
func TestLaneLintMutation(t *testing.T) {
	clean := mutateDir(t, "../netsim", "", "")
	if diags := runOn(t, analysis.LaneLint, clean, "rbcast/internal/netsim"); len(diags) != 0 {
		t.Fatalf("lanelint not clean on unmutated netsim: %v", diags[0].Message)
	}

	mutated := mutateDir(t, "../netsim",
		"n.eng.ScheduleCross(fromLane, toLane, d, func() { next(env) })",
		"n.eng.ScheduleCross(fromLane, toLane, d, func() { n.eng.Schedule(0, func() {}); next(env) })")
	diags := runOn(t, analysis.LaneLint, mutated, "rbcast/internal/netsim")
	found := false
	for _, d := range diags {
		if strings.Contains(d.Message, "sim.Loop.Schedule addresses the global coordinator context") {
			found = true
		}
	}
	if !found {
		t.Errorf("lanelint missed the smuggled Schedule call; got %d diagnostics", len(diags))
		for _, d := range diags {
			t.Logf("  %s", d.Message)
		}
	}
}
