// Package lock is locklint's testdata: every blocking-while-locked
// shape next to its sanctioned counterpart.
package lock

import (
	"sync"
	"time"
)

type Transport struct{}

func (Transport) Send([]byte) {}

type host struct {
	mu   sync.Mutex
	rmu  sync.RWMutex
	tr   Transport
	cb   func()
	ch   chan int
	cond *sync.Cond
	wg   sync.WaitGroup
}

func (h *host) blocking() {
	h.mu.Lock()
	h.ch <- 1                    // want `channel send while h\.mu is held`
	<-h.ch                       // want `channel receive while h\.mu is held`
	h.tr.Send(nil)               // want `Transport\.Send called while h\.mu is held`
	h.cb()                       // want `callback cb invoked while h\.mu is held`
	time.Sleep(time.Millisecond) // want `time\.Sleep while h\.mu is held`
	h.wg.Wait()                  // want `WaitGroup\.Wait while h\.mu is held`
	h.mu.Unlock()
	h.ch <- 2 // released: not a finding
}

func (h *host) deferred() {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.ch <- 1 // want `channel send while h\.mu is held`
}

func (h *host) readLocked() {
	h.rmu.RLock()
	h.tr.Send(nil) // want `Transport\.Send called while h\.rmu is held`
	h.rmu.RUnlock()
	h.tr.Send(nil) // released: not a finding
}

// copyThenCall is the sanctioned pattern: snapshot under the lock, do
// the blocking work after releasing it.
func (h *host) copyThenCall() {
	h.mu.Lock()
	v := len(h.ch)
	h.mu.Unlock()
	h.ch <- v
	h.tr.Send(nil)
	h.cb()
}

// condWait is exempt: Cond.Wait releases the lock while blocked.
func (h *host) condWait(ready func() bool) {
	h.mu.Lock()
	for !ready() { // want `callback ready invoked while h\.mu is held`
		h.cond.Wait()
	}
	h.mu.Unlock()
}

// selectDefault never blocks; its channel operations are exempt.
func (h *host) selectDefault() {
	h.mu.Lock()
	select {
	case h.ch <- 1:
	default:
	}
	h.mu.Unlock()
}

func (h *host) selectBlocking() {
	h.mu.Lock()
	select { // want `select without a default clause while h\.mu is held`
	case v := <-h.ch:
		_ = v
	}
	h.mu.Unlock()
}

// goroutine bodies do not hold the spawner's locks.
func (h *host) spawn() {
	h.mu.Lock()
	go func() {
		h.ch <- 1 // not a finding: runs on another goroutine
	}()
	h.mu.Unlock()
}

// funcLit bodies are separate functions: no locks held on entry.
func (h *host) literal() func() {
	h.mu.Lock()
	fn := func() {
		h.ch <- 1 // not a finding: runs whenever the closure runs
	}
	h.mu.Unlock()
	return fn
}
