// Package lane is lanelint's testdata: events scheduled onto lanes
// that reach illegal Loop operations (global clocks, parked-only
// scheduling, wrong-lane addressing, map-ordered fan-out), alongside
// the clean counterparts and every exemption the analyzer honors.
// Checked as rbcast/internal/sim so the local Loop mirror lands in
// lanelint's scope.
package lane

import "time"

// Event, Timer, Rand and Loop mirror the real sim package's scheduling
// surface; lanelint recognizes the operations by method name and
// package path, so the mirror exercises exactly the production rules.
type Event func()

type Timer struct{}

type Rand struct{}

type Loop interface {
	Now() time.Duration
	Rand() *Rand
	Schedule(delay time.Duration, fn Event) Timer
	Every(period time.Duration, fn Event) Timer
	NowOf(lane int) time.Duration
	RandOf(lane int) *Rand
	ScheduleOn(lane int, delay time.Duration, fn Event) Timer
	EveryOn(lane int, period time.Duration, fn Event) Timer
	ScheduleCross(from, to int, delay time.Duration, fn Event)
}

func noop() {}

// globalFromLane smuggles global-context operations into a lane event:
// the exact determinism break the sharded engine's runtime checks only
// catch on executed paths.
func globalFromLane(l Loop) {
	l.ScheduleOn(1, time.Millisecond, func() {
		l.Schedule(time.Millisecond, noop) // want `sim\.Loop\.Schedule addresses the global coordinator context but is reachable from a lane event \(scheduled at lane\.go:\d+\)`
		_ = l.Now()                        // want `sim\.Loop\.Now addresses the global coordinator context`
	})
}

// helperFromLane reaches the global source through a helper call — the
// interprocedural case the effect summaries exist for.
func helperFromLane(l Loop) {
	l.ScheduleOn(2, time.Millisecond, func() { tickHelper(l) })
}

func tickHelper(l Loop) {
	_ = l.Rand() // want `sim\.Loop\.Rand addresses the global coordinator context but is reachable from a lane event \(scheduled at lane\.go:\d+\)`
}

// parkedFromLane calls a parked-only operation from inside an event.
func parkedFromLane(l Loop) {
	l.ScheduleOn(3, time.Millisecond, func() {
		l.EveryOn(3, time.Second, noop) // want `sim\.Loop\.EveryOn may only be called with lanes parked but is reachable from a lane event`
	})
}

// wrongConstLane addresses a different constant lane than the one the
// event executes on; the matching-constant read is legal.
func wrongConstLane(l Loop) {
	l.ScheduleOn(4, time.Millisecond, func() {
		_ = l.NowOf(5) // want `sim\.Loop\.NowOf addresses lane 5 but the executing lane of this event is lane 4`
		_ = l.NowOf(4)
	})
}

// varLanes tracks lane identity through captured variables: reads of
// the scheduled lane are legal, reads of a different variable are not,
// and ScheduleCross from the executing lane is the sanctioned way out.
func varLanes(l Loop, lane, other int) {
	l.ScheduleOn(lane, time.Millisecond, func() {
		_ = l.RandOf(lane)
		_ = l.RandOf(other) // want `sim\.Loop\.RandOf addresses lane variable other but the executing lane of this event is lane variable lane`
		l.ScheduleCross(lane, other, time.Millisecond, noop)
	})
}

// crossWrongFrom names another lane as the crossing origin.
func crossWrongFrom(l Loop, lane, other int) {
	l.ScheduleOn(lane, time.Millisecond, func() {
		l.ScheduleCross(other, lane, time.Millisecond, noop) // want `sim\.Loop\.ScheduleCross addresses lane variable other but the executing lane of this event is lane variable lane`
	})
}

// rebound follows the lane id through a static call: crossTo's `from`
// parameter is the executing lane, so the crossing is clean but the
// read of `to` is provably wrong.
func rebound(l Loop, lane int) {
	l.ScheduleOn(lane, time.Millisecond, func() { crossTo(l, lane, lane+1) })
}

func crossTo(l Loop, from, to int) {
	l.ScheduleCross(from, to, time.Millisecond, noop)
	_ = l.NowOf(to) // want `sim\.Loop\.NowOf addresses lane variable to but the executing lane of this event is lane variable from`
}

// crossLanding checks the event on the far side of a ScheduleCross
// against its landing lane, not its origin.
func crossLanding(l Loop, from, to int) {
	l.ScheduleCross(from, to, time.Millisecond, func() {
		_ = l.NowOf(from) // want `sim\.Loop\.NowOf addresses lane variable from but the executing lane of this event is lane variable to`
		_ = l.NowOf(to)
	})
}

// opaqueLane stays silent: a lane id reloaded from a field is beyond
// the provenance domain, and unproved is not reported.
type opaqueNode struct{ lane int }

func (s *opaqueNode) opaqueLane(l Loop) {
	l.ScheduleOn(s.lane, time.Millisecond, func() {
		_ = l.NowOf(s.lane)
	})
}

// mapFanout schedules inside a map iteration, making queue insertion
// order follow map order; the slice-driven fan-out below is the fix.
func mapFanout(l Loop, lanes map[int]bool, sorted []int) {
	for lane := range lanes {
		l.ScheduleOn(lane, time.Millisecond, noop) // want `sim\.Loop\.ScheduleOn inside a map iteration`
	}
	for _, lane := range sorted {
		l.ScheduleOn(lane, time.Millisecond, noop)
	}
}

// dispatch calls a bare func() value — the event-dispatch shape whose
// dynamic edges lanelint deliberately does not follow, so scheduling a
// handler through it raises nothing here.
func dispatch(fn Event) { fn() }

// engine is a Loop implementation: its methods legitimately collapse
// lane operations onto a single queue (ScheduleOn calls Schedule), so
// lanelint neither reports their sites nor traverses into them.
type engine struct{ now time.Duration }

func (e *engine) Now() time.Duration  { return e.now }
func (e *engine) Rand() *Rand         { return nil }
func (e *engine) NowOf(int) time.Duration { return e.now }
func (e *engine) RandOf(int) *Rand    { return nil }

func (e *engine) Schedule(delay time.Duration, fn Event) Timer { return Timer{} }
func (e *engine) Every(period time.Duration, fn Event) Timer   { return Timer{} }

func (e *engine) ScheduleOn(_ int, delay time.Duration, fn Event) Timer {
	return e.Schedule(delay, fn)
}

func (e *engine) EveryOn(_ int, period time.Duration, fn Event) Timer {
	return e.Every(period, fn)
}

func (e *engine) ScheduleCross(_, _ int, delay time.Duration, fn Event) {
	e.Schedule(delay, fn)
}
