// Package leak is leaklint's testdata: goroutines with and without
// reachable exits, tickers with and without Stop coverage. Checked as
// rbcast/internal/udp to land in leaklint's scope.
package leak

import "time"

func work()      {}
func bad() bool  { return false }
func cond() bool { return false }

// goUnstoppable spins forever with no way out: flagged at the go
// statement.
func goUnstoppable() {
	go func() { // want `goroutine has no reachable exit path`
		for {
			work()
		}
	}()
}

// goWithStopChannel has a terminating select case: clean.
func goWithStopChannel(stop chan struct{}, c chan int) {
	go func() {
		for {
			select {
			case <-stop:
				return
			case v := <-c:
				_ = v
			}
		}
	}()
}

// goRangeOverChannel exits when the channel closes: clean.
func goRangeOverChannel(c chan int) {
	go func() {
		for v := range c {
			_ = v
		}
	}()
}

// goPanicPathCounts: a reachable panic ends the goroutine too — dying
// paths are not leaks.
func goPanicPathCounts() {
	go func() {
		for {
			if bad() {
				panic("corrupt state")
			}
		}
	}()
}

// runForever is spun up by name below; it has no exit.
func runForever() {
	for {
		work()
	}
}

func goNamedUnstoppable() {
	go runForever() // want `goroutine runs leak.runForever, which has no reachable exit path`
}

// tickerNoStop leaks: no Stop on the path to the exit.
func tickerNoStop(c chan int) {
	t := time.NewTicker(time.Second) // want `time.NewTicker result is not stopped on every exit path`
	for range t.C {
		c <- 1
	}
}

// tickerDeferStop is the idiom: clean.
func tickerDeferStop(stop chan struct{}) {
	t := time.NewTicker(time.Second)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			work()
		case <-stop:
			return
		}
	}
}

// tickerStraightLineStop stops before returning: clean.
func tickerStraightLineStop() {
	t := time.NewTimer(time.Second)
	<-t.C
	t.Stop()
}

// tickerOneBranchStop stops on the early-return branch only; the
// fall-through path leaks: flagged.
func tickerOneBranchStop() {
	t := time.NewTicker(time.Second) // want `time.NewTicker result is not stopped on every exit path`
	if cond() {
		t.Stop()
		return
	}
	<-t.C
}

// tickerEscapes hands the ticker to the caller, whose job Stop becomes:
// clean here.
func tickerEscapes() *time.Ticker {
	t := time.NewTicker(time.Second)
	return t
}

// tickerInGoroutine: literal bodies are their own graphs; the defer
// covers the goroutine's exits. Clean.
func tickerInGoroutine(stop chan struct{}) {
	go func() {
		t := time.NewTicker(time.Second)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				work()
			case <-stop:
				return
			}
		}
	}()
}

// tickUnstoppable: time.Tick has no Stop at all — always flagged.
func tickUnstoppable() <-chan time.Time {
	return time.Tick(time.Second) // want `time.Tick leaks its ticker`
}
