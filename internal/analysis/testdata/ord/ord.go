// Package ord is ordlint's testdata: a two-class lock-order cycle (one
// side acquired through a helper, so the report carries a call chain),
// a recursive self-acquisition, and a consistently ordered pair that
// stays clean. Checked as rbcast/internal/live to land in ordlint's
// scope.
package ord

import "sync"

type A struct{ mu sync.Mutex }

type B struct{ mu sync.Mutex }

// abOrder acquires A.mu then B.mu directly: one direction of the cycle.
// The cycle diagnostic lands on this acquisition (the witness edge) and
// names both chains.
func abOrder(a *A, b *B) {
	a.mu.Lock()
	b.mu.Lock() // want `lock-order cycle among \{rbcast/internal/live\.A\.mu, rbcast/internal/live\.B\.mu\}.*via ord\.baOrder -> ord\.lockA`
	b.mu.Unlock()
	a.mu.Unlock()
}

// baOrder acquires B.mu, then A.mu through lockA: the opposite
// direction, visible only through the bottom-up lock summaries.
func baOrder(a *A, b *B) {
	b.mu.Lock()
	lockA(a)
	b.mu.Unlock()
}

func lockA(a *A) {
	a.mu.Lock()
	a.mu.Unlock()
}

// relock takes the same class twice: sync mutexes are not reentrant.
func (a *A) relock() {
	a.mu.Lock()
	a.mu.Lock() // want `lock rbcast/internal/live\.A\.mu is acquired while already held`
	a.mu.Unlock()
	a.mu.Unlock()
}

// C/D are always taken in the same order from every path: acyclic,
// clean.
type C struct{ mu sync.Mutex }

type D struct{ mu sync.Mutex }

func cdOne(c *C, d *D) {
	c.mu.Lock()
	d.mu.Lock()
	d.mu.Unlock()
	c.mu.Unlock()
}

func cdTwo(c *C, d *D) {
	c.mu.Lock()
	defer c.mu.Unlock()
	d.mu.Lock()
	defer d.mu.Unlock()
}
