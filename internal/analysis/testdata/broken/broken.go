// Package broken is the deliberately-broken concurrency fixture behind
// `make lint-selftest`: an unguarded cross-goroutine write, a two-lock
// ordering cycle, and an allocating //rblint:hotpath function. CI runs
// rblint over this package (checked as rbcast/internal/udp, so the
// path-scoped analyzers are in jurisdiction) and fails unless
// sharelint, ordlint, and alloclint all produce findings — a selftest
// that the analyzers still bite after refactors.
package broken

import "sync"

type state struct {
	a   sync.Mutex
	b   sync.Mutex
	n   int
	buf []byte
}

// loop runs in its own goroutine and writes n; poll reads it with no
// lock on either side: sharelint's data-race shape.
func (s *state) loop() {
	for {
		s.n++
	}
}

func poll(s *state) int {
	go s.loop()
	return s.n
}

// ab and ba acquire the two mutexes in opposite orders: ordlint's
// deadlock cycle.
func (s *state) ab() {
	s.a.Lock()
	s.b.Lock()
	s.b.Unlock()
	s.a.Unlock()
}

func (s *state) ba() {
	s.b.Lock()
	s.a.Lock()
	s.a.Unlock()
	s.b.Unlock()
}

//rblint:hotpath selftest bait: the directive promises what the body breaks
func (s *state) grow() {
	s.buf = make([]byte, 64)
}
