// Package share is sharelint's testdata: struct-field and
// package-level state reached from more than one goroutine, with and
// without a common lock, plus every confinement exemption the analyzer
// honors. Checked as rbcast/internal/udp to land in sharelint's scope.
package share

import (
	"sync"
	"sync/atomic"
)

// Server is spawn-shared: its methods are spawned below and closures
// capturing it cross go statements.
type Server struct {
	mu    sync.Mutex
	hits  int
	n     int
	ops   int64
	inbox chan int
	conf  Conf
}

// Conf rides inside Server, so it is spawn-shared too; value copies of
// it are still exempt.
type Conf struct{ N int }

// countLoop runs in its own goroutine (spawned in raceRead) and bumps a
// counter the spawner reads with no lock on either side.
func (s *Server) countLoop() {
	for {
		s.hits++ // want `rbcast/internal/udp\.Server\.hits is written here and accessed at .* from a different goroutine .* with no common lock`
	}
}

func raceRead(s *Server) int {
	go s.countLoop()
	return s.hits
}

// addLocked/guardedUse touch the same field from two goroutines, but
// both hold Server.mu: one lock class on both sides. Clean.
func (s *Server) addLocked(delta int) {
	s.mu.Lock()
	s.n += delta
	s.mu.Unlock()
}

func guardedUse(s *Server) int {
	go s.addLocked(1)
	s.mu.Lock()
	n := s.n
	s.mu.Unlock()
	return n
}

// total is package-level state written by every instance of a goroutine
// spawned in a loop: a self-conflict, no second access needed.
var total int

func spawnCounters() {
	for i := 0; i < 4; i++ {
		go func() {
			total++ // want `rbcast/internal/udp\.total is written by share\.spawnCounters\$1, which runs in multiple goroutines`
		}()
	}
}

// pump/drain communicate over a channel field: channel state is
// confined by its own discipline. Clean.
func (s *Server) pump() {
	for {
		s.inbox <- 1
	}
}

func drain(s *Server) int {
	go s.pump()
	return <-s.inbox
}

// tick/atomicUse serialize through sync/atomic: clean.
func (s *Server) tick() {
	atomic.AddInt64(&s.ops, 1)
}

func atomicUse(s *Server) int64 {
	go s.tick()
	return atomic.LoadInt64(&s.ops)
}

// snapshotConf writes through a value-typed local: its own copy, not
// shared memory. Clean.
func (s *Server) snapshotConf() int {
	c := s.conf
	c.N++
	return c.N
}

// scratch instances never cross a spawn boundary: each goroutine builds
// its own, so the unguarded writes are confined wholesale. Clean.
type scratch struct{ n int }

func workers() {
	for i := 0; i < 3; i++ {
		go func() {
			var sc scratch
			sc.n++
			_ = sc.n
		}()
	}
}
