// Package quorumclean proves quorumlint's scope gating: the same
// broken thresholds that fire in testdata/quorum raise nothing here
// because the package is checked under its real testdata path, outside
// the core scope.
package quorumclean

type HostID int

type Params struct {
	EchoMaxFaulty int
}

func (p Params) Validate() error { return nil }

type Host struct {
	peers  []HostID
	params Params
}

func (h *Host) byzF() int { return (len(h.peers) - 1) / 2 }

func (h *Host) echoQuorum() int { return (len(h.peers) + h.byzF()) / 2 }

func (h *Host) readyQuorum() int { return 2 * h.byzF() }

func (h *Host) readyAmplify() int { return h.byzF() }
