// Package taint is taintlint's testdata: decoded wire values flowing
// into capacity-shaped sinks, with and without intervening bounds
// checks. Checked as rbcast/internal/wire to land in taintlint's scope.
package taint

import "encoding/binary"

const maxRun = 1 << 16

// Set mimics seqset.Set: AddRange costs O(hi-lo).
type Set struct{ members []uint64 }

func (s *Set) Add(q uint64) { s.members = append(s.members, q) }

func (s *Set) AddRange(lo, hi uint64) {
	for q := lo; q <= hi; q++ {
		s.Add(q)
	}
}

// Frame mimics a decoded network frame: every field is adversarial.
type Frame struct {
	N    uint64
	Runs []uint64
}

// Message mimics core.Message.
type Message struct{ Seq uint64 }

// Decode mimics the codec entry point: its result is attacker data.
func Decode(b []byte) Frame {
	if len(b) < 16 {
		return Frame{}
	}
	return Frame{N: binary.BigEndian.Uint64(b[:8])}
}

// addRangeUnchecked is the PR 1 decoder bug: interval bounds read
// straight off the wire into an O(value) expansion. A forged frame with
// hi = 1<<64-1 spins the loop for centuries.
func addRangeUnchecked(b []byte, s *Set) {
	lo := binary.BigEndian.Uint64(b[:8])
	hi := binary.BigEndian.Uint64(b[8:16])
	s.AddRange(lo, hi) // want `attacker-controlled wire value flows into AddRange`
}

// addRangeChecked bounds the run length first: clean.
func addRangeChecked(b []byte, s *Set) {
	lo := binary.BigEndian.Uint64(b[:8])
	hi := binary.BigEndian.Uint64(b[8:16])
	if hi < lo || hi-lo > maxRun {
		return
	}
	s.AddRange(lo, hi)
}

// makeUnchecked allocates whatever the wire claims.
func makeUnchecked(b []byte) []byte {
	n := int(binary.BigEndian.Uint32(b))
	return make([]byte, n) // want `flows into a make size/capacity`
}

// makeChecked compares the length against the actual input first: clean.
func makeChecked(b []byte) []byte {
	n := int(binary.BigEndian.Uint32(b))
	if n > len(b) {
		return nil
	}
	return make([]byte, n)
}

// indexUnchecked uses a wire value as a slice index.
func indexUnchecked(b []byte, table []int) int {
	i := int(binary.BigEndian.Uint16(b))
	return table[i] // want `flows into a slice index`
}

// indexMasked bounds the index by modulo: clean.
func indexMasked(b []byte, table []int) int {
	i := int(binary.BigEndian.Uint16(b)) % len(table)
	return table[i]
}

// mapIndexIsFine: map lookup with a forged key is O(1), not a capacity
// sink.
func mapIndexIsFine(b []byte, m map[uint32]int) int {
	k := binary.BigEndian.Uint32(b)
	return m[k]
}

// sliceBoundUnchecked re-slices by a wire-claimed length.
func sliceBoundUnchecked(b []byte) []byte {
	n := int(binary.BigEndian.Uint32(b))
	return b[:n] // want `flows into a slice bound`
}

// branchJoin shows may-analysis at a join: tainted on one path only is
// still tainted after the merge.
func branchJoin(b []byte, trusted bool) []byte {
	n := 8
	if !trusted {
		n = int(binary.BigEndian.Uint32(b))
	}
	return make([]byte, n) // want `flows into a make size/capacity`
}

// overwriteLaunders shows the strong update: a clean store kills taint.
func overwriteLaunders(b []byte) []byte {
	n := int(binary.BigEndian.Uint32(b))
	n = 8
	return make([]byte, n)
}

// allocHelper hides the sink one call deep; the callee summary
// attributes it to the caller's argument.
func allocHelper(n int) []byte {
	return make([]byte, n)
}

func throughHelper(b []byte) []byte {
	n := int(binary.BigEndian.Uint32(b))
	return allocHelper(n) // want `flows into a make size/capacity inside taint.allocHelper`
}

func throughHelperChecked(b []byte) []byte {
	n := int(binary.BigEndian.Uint32(b))
	if n > maxRun {
		return nil
	}
	return allocHelper(n)
}

// paramTainted: values of the network-facing named types are adversarial
// at function entry, fields included.
func paramTainted(m Message) []byte {
	return make([]byte, m.Seq) // want `flows into a make size/capacity`
}

// rangeElements: elements of a tainted container are tainted.
func rangeElements(f Frame) {
	for _, n := range f.Runs {
		_ = make([]byte, n) // want `flows into a make size/capacity`
	}
}

// decodeResult: the result of a Decode call is tainted through field
// selection and conversion.
func decodeResult(b []byte) []byte {
	f := Decode(b)
	return make([]byte, int(f.N)) // want `flows into a make size/capacity`
}

// decodeResultChecked: clean after the comparison.
func decodeResultChecked(b []byte) []byte {
	f := Decode(b)
	if f.N > maxRun {
		return nil
	}
	return make([]byte, int(f.N))
}
