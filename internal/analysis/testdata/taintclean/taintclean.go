// Package taintclean holds code that WOULD trip taintlint, loaded under
// its real testdata import path — outside TaintPackages. The suite
// asserts no diagnostics: scope gating must hold.
package taintclean

import "encoding/binary"

func makeUnchecked(b []byte) []byte {
	n := int(binary.BigEndian.Uint32(b))
	return make([]byte, n) // out of scope: no finding
}
