// Package shareclean reproduces sharelint's racy shapes but is checked
// under its real testdata path: out of SharePackages' scope, so no
// diagnostics are expected. This pins the scope gate itself.
package shareclean

type counter struct{ hits int }

func (c *counter) loop() {
	for {
		c.hits++ // would be flagged in scope; exempt out of scope
	}
}

func race(c *counter) int {
	go c.loop()
	return c.hits
}

var total int

func spawners() {
	for i := 0; i < 4; i++ {
		go func() {
			total++
		}()
	}
}
