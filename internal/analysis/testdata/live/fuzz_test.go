// Package live is the sibling live directory for wirelint's
// envelope-fuzz coverage check: its Fuzz* body names MsgA and MsgB only
// (as identifiers — the check scans names, mirroring how the real
// internal/live corpus references core.MsgData etc.), so MsgC is
// reported in ../wire as never seen by the envelope decoder.
package live

type placeholderKind int

const (
	MsgA placeholderKind = iota + 1
	MsgB
)

type fuzzer interface{ Add(...any) }

// FuzzDecodeEnvelope stands in for the live package's envelope fuzz
// target; only function bodies named Fuzz* are scanned.
func FuzzDecodeEnvelope(f fuzzer) {
	f.Add(MsgA)
	f.Add(MsgB)
}
