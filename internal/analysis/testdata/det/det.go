// Package det is detlint's triggering testdata; the analyzer sees it
// checked under a deterministic package path.
package det

import (
	"math/rand" // want `deterministic package imports "math/rand"`
	"sort"
	"time"
)

func wallClock() time.Duration {
	now := time.Now()      // want `deterministic package calls time\.Now`
	return time.Since(now) // want `deterministic package calls time\.Since`
}

func globalRand() int {
	return rand.Int()
}

// virtualTime is the sanctioned pattern: the instant comes in as an
// argument. Not a finding.
func virtualTime(now time.Duration) time.Duration {
	return now + time.Second
}

func Send(string) {}

func emitInRange(m map[int]string) {
	for _, v := range m {
		Send(v) // want `Send called inside a map-range loop`
	}
}

func appendNoSort(m map[int]int) []int {
	var keys []int
	for k := range m { // want `map-range loop appends to "keys" without a sort`
		keys = append(keys, k)
	}
	return keys
}

// appendThenSort is the sanctioned pattern: collect, then stabilize.
// Not a finding.
func appendThenSort(m map[int]int) []int {
	var keys []int
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}

// deleteOnly mutates the map itself; nothing order-sensitive escapes.
// Not a finding.
func deleteOnly(m map[int]int) {
	for k, v := range m {
		if v == 0 {
			delete(m, k)
		}
	}
}

// funcLitInRange: the Send inside the closure is not flagged (the
// closure only defines the emit, it does not run it in iteration
// order), but the unsorted append of the closures themselves still is.
func funcLitInRange(m map[int]string) []func() {
	var fns []func()
	for _, v := range m { // want `map-range loop appends to "fns" without a sort`
		v := v
		fns = append(fns, func() { Send(v) })
	}
	return fns
}
