// Package cg is the call-graph builder's golden fixture: static calls,
// a closure passed to go, a deferred call, a method value invoked
// through a variable, an interface call resolved by class hierarchy
// analysis, and a time.AfterFunc callback. The golden test pins the
// exact edge list String() renders.
package cg

import "time"

type T struct{ n int }

func (t *T) M() { t.n++ }

func Static() { helper() }

func helper() {}

func SpawnClosure() {
	x := 0
	go func() {
		x++
		helper()
	}()
	_ = x
}

func DeferCall() {
	defer helper()
}

func MethodValue(t *T) {
	f := t.M
	f()
}

type I interface{ M() }

func ViaInterface(i I) { i.M() }

func AfterFuncCallback() {
	time.AfterFunc(time.Second, func() { helper() })
}
