// Package alloc is alloclint's testdata: one deliberately
// allocation-heavy hot function covering every flagged construct class,
// a transitive callee pulled into a marked tree, the append-reuse
// discipline that passes, and the error/panic cold-path exemptions.
// alloclint is directive-driven, so no assumed import path is needed.
package alloc

import (
	"encoding/binary"
	"fmt"
)

type enc struct{ buf []byte }

type sink interface{ M() }

type impl struct{}

func (impl) M() {}

func eat(v any) { _ = v }

func work() {}

//rblint:hotpath deliberately allocation-heavy: every construct class is flagged
func hotBad(n int, a, b string, i sink) {
	s := make([]int, n) // want `make allocates; preallocate and reuse`
	s = append(s, 1)    // want `append to a freshly made or unknown buffer may grow and allocate`
	p := new(enc)       // want `new allocates; reuse pooled or caller-owned storage`
	_ = p
	v := []int{1} // want `slice literal allocates`
	_ = v
	e := &enc{} // want `&composite literal escapes to the heap`
	_ = e
	m := map[string]int{} // want `map literal allocates`
	m["k"] = 1            // want `map assignment may allocate or rehash`
	for k := range m {    // want `map iteration in a hot path`
		_ = k
	}
	c := a + b // want `string concatenation allocates`
	_ = c
	f := func() {} // want `function literal allocates its closure`
	f()            // want `call through a function value cannot be proven allocation-free`
	go work()      // want `goroutine spawn allocates a new stack`
	eat(n)         // want `argument boxes a concrete int into an interface, which allocates`
	i.M()          // want `interface method call M cannot be proven allocation-free`
	fmt.Println(s) // want `call to fmt\.Println is outside the allocation-free allowlist`
}

// helper is unmarked, but hotCaller's directive pulls its body into the
// checked tree; the finding names the root and the chain.
func helper() []byte {
	return make([]byte, 8) // want `hot path alloc\.hotCaller \(via alloc\.helper\): make allocates`
}

//rblint:hotpath the transitive static call tree is checked, not just the marked body
func hotCaller() []byte {
	return helper()
}

//rblint:hotpath reuse discipline: append only to caller- or field-rooted storage
func hotAppend(e *enc, vals []uint32) {
	out := e.buf[:0]
	for _, v := range vals {
		out = append(out, byte(v))
	}
	e.buf = out
}

//rblint:hotpath error returns and panic arguments are cold by contract
func hotEncode(dst []byte, v uint32) ([]byte, error) {
	if v == 0 {
		return nil, fmt.Errorf("hotEncode: zero value") // exempt: error path
	}
	if len(dst) > 1<<20 {
		panic(fmt.Sprintf("hotEncode: dst %d bytes", len(dst))) // exempt: panic argument
	}
	return binary.BigEndian.AppendUint32(dst, v), nil
}

// coldAlloc allocates freely: no directive, and nothing marked reaches
// it, so nothing is flagged.
func coldAlloc() map[string]int {
	return map[string]int{"a": 1}
}
