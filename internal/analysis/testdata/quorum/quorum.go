// Package quorum is quorumlint's testdata: one host with the correct
// Bracha-style thresholds (provable for every Validate-admitted
// parameter), plus hosts carrying the classic arithmetic mistakes —
// off-by-one quorums, an unbounded budget, a threshold shape outside
// the prover's language. Checked as rbcast/internal/core to land in
// quorumlint's scope.
package quorum

import "errors"

type HostID int

// Params mirrors the core tunables quorum sizing depends on. Budget is
// deliberately missing from Validate: nothing bounds it.
type Params struct {
	EchoReady     bool
	EchoMaxFaulty int
	Budget        int
}

const maxEchoFaulty = 1 << 20

var errParams = errors.New("quorum: bad params")

// Validate is where quorumlint harvests the admitted intervals:
// EchoMaxFaulty ∈ [0, maxEchoFaulty], Budget unbounded.
func (p Params) Validate() error {
	if p.EchoMaxFaulty < 0 {
		return errParams
	}
	if p.EchoMaxFaulty > maxEchoFaulty {
		return errParams
	}
	return nil
}

// Host carries the production thresholds verbatim; every obligation is
// provable, so quorumlint stays silent.
type Host struct {
	peers  []HostID
	params Params
}

func (h *Host) byzF() int {
	if h.params.EchoMaxFaulty > 0 {
		return h.params.EchoMaxFaulty
	}
	return (len(h.peers) - 1) / 3
}

func (h *Host) echoQuorum() int { return (len(h.peers)+h.byzF())/2 + 1 }

func (h *Host) readyQuorum() int { return 2*h.byzF() + 1 }

func (h *Host) readyAmplify() int { return h.byzF() + 1 }

// Narrow drops the +1 off every threshold — the off-by-one family.
// With echoQuorum = (n+f)/2, two digests can both gather a quorum when
// n+f is even; with readyQuorum = 2f, delivery can rest on f faulty
// votes plus only f correct ones; with readyAmplify = f, the faulty
// hosts alone can start a ready cascade.
type Narrow struct {
	peers  []HostID
	params Params
}

func (h *Narrow) byzF() int { return (len(h.peers) - 1) / 3 }

func (h *Narrow) echoQuorum() int { return (len(h.peers) + h.byzF()) / 2 } // want `echo quorums may fail to intersect in f\+1 hosts`

func (h *Narrow) readyQuorum() int { return 2 * h.byzF() } // want `ready quorum may lack an honest majority`

func (h *Narrow) readyAmplify() int { return h.byzF() } // want `ready amplification may fire without an honest vote`

// Generous defaults the budget to ⌊(n−1)/2⌋, past the classical
// resilience maximum the agreement argument needs.
type Generous struct {
	peers  []HostID
	params Params
}

func (h *Generous) byzF() int { return (len(h.peers) - 1) / 2 } // want `EchoMaxFaulty defaulting may exceed the classical bound`

func (h *Generous) echoQuorum() int { return (len(h.peers)+h.byzF())/2 + 1 }

// Unbounded sizes quorums from a field Validate never bounds, so the
// arithmetic cannot be proved overflow-free (and with f unbounded the
// intersection inequality is unprovable too).
type Unbounded struct {
	peers  []HostID
	params Params
}

func (h *Unbounded) byzF() int { return h.params.Budget } // want `quorum arithmetic in Unbounded\.byzF may overflow` `EchoMaxFaulty defaulting may exceed the classical bound`

func (h *Unbounded) echoQuorum() int { return (len(h.peers) + h.byzF()) / 2 } // want `echo quorums may fail to intersect in f\+1 hosts`

// Odd computes its budget with a loop, outside the prover's affine/div
// language; a conservative prover reports what it cannot analyze
// instead of assuming it sound.
type Odd struct {
	peers []HostID
}

func (h *Odd) byzF() int { // want `quorumlint cannot analyze Odd\.byzF`
	f := 0
	for range h.peers {
		f++
	}
	return f / 3
}

func (h *Odd) echoQuorum() int { return len(h.peers)/2 + 1 }
