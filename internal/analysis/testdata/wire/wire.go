// Package wire is wirelint's testdata: a three-kind codec where one
// kind is missing from the Encode path, two from the Decode path, one
// from the fuzz corpus, two from the sibling bench package (../bench
// names MsgA only), and one from the sibling live package's fuzz corpus
// (../live seeds MsgA and MsgB).
package wire

type MsgKind byte

const (
	MsgA MsgKind = iota + 1
	MsgB
	MsgC
)

func Encode(k MsgKind) []byte { // want `message kind MsgC is not handled on the Encode path`
	switch k {
	case MsgA:
		return []byte{byte(MsgA)}
	case MsgB:
		return encodeB()
	}
	return nil
}

// encodeB is reachable from Encode, so its MsgB reference counts for
// the Encode path.
func encodeB() []byte { return []byte{byte(MsgB)} }

func Decode(b []byte) MsgKind { // want `message kind MsgB is not handled on the Decode path` `message kind MsgC is not handled on the Decode path` `message kind MsgB has no codec case in the sibling bench package` `message kind MsgC has no codec case in the sibling bench package` `message kind MsgC is not seeded in the sibling live package's Fuzz\* corpus`
	if len(b) == 1 && MsgKind(b[0]) == MsgA {
		return MsgA
	}
	return 0
}
