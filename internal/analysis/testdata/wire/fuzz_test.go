package wire

import "testing"

// MsgC is never seeded; wirelint reports it against the first Fuzz
// function.
func FuzzDecode(f *testing.F) { // want `message kind MsgC is not seeded in any Fuzz\* corpus`
	f.Add([]byte{byte(MsgA)})
	f.Add([]byte{byte(MsgB)})
	f.Fuzz(func(t *testing.T, data []byte) {
		Decode(data)
	})
}
