// Package ignoretd exercises the //rblint:ignore escape hatch
// end-to-end: the analyzer runs under a deterministic package path, and
// a well-formed directive suppresses the finding on the next line.
// (Malformed and stale directives are covered by unit tests in the
// analysis package.)
package ignoretd

import "time"

// justified: the directive below swallows the time.Now finding.
func suppressed() time.Time {
	//rblint:ignore detlint testdata: proving the escape hatch suppresses the next line
	return time.Now()
}

// inline placement covers the directive's own line.
func suppressedInline() time.Time {
	return time.Now() //rblint:ignore detlint testdata: proving inline placement works
}

// an undirected finding still surfaces.
func unsuppressed() time.Time {
	return time.Now() // want `deterministic package calls time\.Now`
}
