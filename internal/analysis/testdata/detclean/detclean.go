// Package detclean holds code that would trip every detlint rule —
// checked under its real (non-deterministic) path, where detlint must
// stay silent.
package detclean

import (
	"math/rand"
	"time"
)

func WallClockIsFineHere() time.Time {
	return time.Now()
}

func GlobalRandIsFineHere() int {
	return rand.Int()
}

func Emit(string) {}

func MapRangeIsFineHere(m map[int]string) {
	for _, v := range m {
		Emit(v)
	}
}
