// Package mono is monolint's testdata: a miniature Host with the
// protected monotone fields, approved mutators (by name), and rogue
// writers. Checked as rbcast/internal/core to land in monolint's scope.
package mono

// Set mimics seqset.Set's method split: pointer receivers mutate,
// except Snapshot, which only flips a copy-on-write mark.
type Set struct{ members []uint64 }

func (s *Set) Add(q uint64)          { s.members = append(s.members, q) }
func (s *Set) Prune(below uint64)    { _ = below }
func (s *Set) Snapshot() Set         { return *s }
func (s Set) Contains(q uint64) bool { return false }

// Host mimics core.Host: info/maps/confirmed/prunedTo carry the paper's
// monotone state; scratch does not.
type Host struct {
	info      Set
	maps      map[int]Set
	confirmed Set
	prunedTo  uint64
	scratch   int
}

// handleData is in the approved mutator set: direct writes and mutating
// set calls are legal here.
func (h *Host) handleData(seq uint64) {
	h.info.Add(seq)
	h.confirmed = h.info.Snapshot()
}

// learnInfo is approved; map-entry stores on a protected field are fine
// inside the set.
func (h *Host) learnInfo(j int, s Set) {
	h.maps[j] = s
}

// pruneStable is approved AND guards its prunedTo write with the
// monotonicity comparison, like the real §6 prune path.
func (h *Host) pruneStable(p uint64) {
	if p == 0 || p-1 <= h.prunedTo {
		return
	}
	h.info.Prune(p)
	h.prunedTo = p - 1
}

// mergeInfoFacts is approved but writes the prune floor with no
// comparison on prunedTo in sight: flagged by the CFG dominance check.
func (h *Host) mergeInfoFacts(p uint64) {
	h.prunedTo = p // want `not dominated by a monotonicity comparison on prunedTo`
}

// rogueAssign is not approved: flagged.
func (h *Host) rogueAssign() {
	h.info = Set{} // want `Host.info written outside the approved mutator set`
}

// rogueSetCall mutates through a pointer-receiver set method: flagged.
func (h *Host) rogueSetCall(seq uint64) {
	h.info.Add(seq) // want `Host.info mutated outside the approved mutator set`
}

// rogueAddressTaken leaks a mutable pointer to protected state: flagged.
func (h *Host) rogueAddressTaken() *Set {
	return &h.confirmed // want `Host.confirmed address-taken outside the approved mutator set`
}

// rogueIncDec moves the prune floor outside the prune path: flagged.
func (h *Host) rogueIncDec() {
	h.prunedTo++ // want `Host.prunedTo written outside the approved mutator set`
}

// rogueMapStore overwrites a MAP entry outside the handlers: flagged.
func (h *Host) rogueMapStore(j int, s Set) {
	h.maps[j] = s // want `Host.maps written outside the approved mutator set`
}

// readsAreFine: reads of protected fields, value-receiver methods, and
// the benign pointer-receiver Snapshot are all legal anywhere.
func (h *Host) readsAreFine(q uint64) bool {
	snap := h.info.Snapshot()
	_ = snap
	return h.info.Contains(q) || h.prunedTo > q
}

// unprotectedIsFine: scratch is not monotone state.
func (h *Host) unprotectedIsFine() {
	h.scratch++
	h.scratch = 7
}

// otherInfoIsFine: the field name must be selected from a Host value —
// same names on other types stay out of jurisdiction.
type notHost struct{ info Set }

func (n *notHost) write() {
	n.info = Set{}
	n.info.Add(1)
}

// The catch-up sync mutators joined the approved set (regression pin:
// these must stay legal). handleSyncReq records optimistic MAP marks
// for data just served; acceptSyncData adds a solicited sequence
// number; installSnapshot marks a checkpoint-covered prefix in INFO —
// and none of them may touch prunedTo.
func (h *Host) handleSyncReq(j int, q uint64) {
	s := h.maps[j]
	s.Add(q)
	h.maps[j] = s
}

func (h *Host) acceptSyncData(q uint64) {
	h.info.Add(q)
}

func (h *Host) installSnapshot(mark uint64) {
	h.info.Add(mark)
}

// handleSnapChunk is deliberately NOT approved: the chunk path only
// buffers bytes; an INFO write from it would bypass the install guard.
func (h *Host) handleSnapChunk(q uint64) {
	h.info.Add(q) // want `Host.info mutated outside the approved mutator set`
}

func (h *Host) rogueSyncFloor(mark uint64) {
	h.prunedTo = mark // want `Host.prunedTo written outside the approved mutator set`
}
