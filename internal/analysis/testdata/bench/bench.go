// Package bench is the sibling bench directory for wirelint's
// bench-coverage check: it names MsgA only (as an identifier — the
// check scans names, mirroring how the real internal/bench references
// core.MsgData etc.), so MsgB and MsgC are reported as missing codec
// cases in ../wire.
package bench

type placeholderKind int

// MsgA stands in for a codec case exercising the MsgA frame layout.
const MsgA placeholderKind = 1

func codecCases() []placeholderKind {
	return []placeholderKind{MsgA}
}
