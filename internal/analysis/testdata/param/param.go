// Package param is paramlint's testdata: a Params struct where each
// field exercises one rule, documented by the README.md next to this
// file.
package param

import "errors"

type Params struct {
	// Checked is validated and documented: clean.
	Checked int
	// Unchecked is documented but never referenced in Validate.
	Unchecked int // want `Params\.Unchecked is not referenced in Validate`
	// Flag is a bool: both values are valid, so only documentation is
	// required.
	Flag bool
	// Undoc is validated but missing from the README table.
	Undoc int // want `Params\.Undoc has no .Undoc. row`
	// unexported fields are not tunables.
	unexported int
}

func (p Params) Validate() error {
	if p.Checked <= 0 {
		return errors.New("Checked must be positive")
	}
	if p.Undoc < 0 {
		return errors.New("Undoc must be non-negative")
	}
	return nil
}
