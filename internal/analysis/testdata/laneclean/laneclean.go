// Package laneclean proves lanelint's scope gating: the same smuggled
// global call that fires in testdata/lane raises nothing here because
// the package is checked under its real testdata path, outside the
// sim/netsim/harness/soak scope.
package laneclean

import "time"

type Event func()

type Timer struct{}

type Loop interface {
	Now() time.Duration
	Schedule(delay time.Duration, fn Event) Timer
	ScheduleOn(lane int, delay time.Duration, fn Event) Timer
}

func noop() {}

// globalFromLane would be a finding in scope; out of scope it is not
// lanelint's business.
func globalFromLane(l Loop) {
	l.ScheduleOn(1, time.Millisecond, func() {
		l.Schedule(time.Millisecond, noop)
		_ = l.Now()
	})
}
