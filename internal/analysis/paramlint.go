package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"strings"
)

// ParamLint keeps the protocol tunables honest: in any package that
// declares `type Params struct` with a Validate method, every exported
// field must be (a) referenced inside Validate — an unvalidated tunable
// silently accepts zero or garbage values — and (b) documented as a
// `FieldName` row in the nearest README's table, so operators can find
// it. Bool fields are exempt from the Validate requirement (both values
// are valid by construction) but still need documentation.
var ParamLint = &Analyzer{
	Name: "paramlint",
	Doc: "every exported Params field must be referenced in Validate() and " +
		"documented in the README table",
	Run: runParamLint,
}

func runParamLint(pass *Pass) error {
	spec, strct := findParamsStruct(pass)
	if spec == nil {
		return nil
	}
	validate := findValidateMethod(pass)
	if validate == nil {
		return nil
	}
	referenced := fieldsReferenced(pass, validate)
	readme, rows := readmeParamRows(pass)

	for i := 0; i < strct.NumFields(); i++ {
		f := strct.Field(i)
		if !f.Exported() {
			continue
		}
		pos := spec.Pos()
		if af := fieldDeclPos(pass, spec, f.Name()); af.IsValid() {
			pos = af
		}
		isBool := isBoolType(f.Type())
		if !isBool && !referenced[f.Name()] {
			pass.Reportf(pos,
				"Params.%s is not referenced in Validate(): every non-bool tunable needs a range check "+
					"(or an explicit acceptance)", f.Name())
		}
		if readme != "" && !rows[f.Name()] {
			pass.Reportf(pos,
				"Params.%s has no `%s` row in the %s Params table", f.Name(), f.Name(), readme)
		}
	}
	return nil
}

// findParamsStruct locates `type Params struct` in the package.
func findParamsStruct(pass *Pass) (*ast.TypeSpec, *types.Struct) {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, s := range gd.Specs {
				ts, ok := s.(*ast.TypeSpec)
				if !ok || ts.Name.Name != "Params" {
					continue
				}
				obj := pass.TypesInfo.Defs[ts.Name]
				if obj == nil {
					continue
				}
				if strct, ok := obj.Type().Underlying().(*types.Struct); ok {
					return ts, strct
				}
			}
		}
	}
	return nil, nil
}

// findValidateMethod locates the Validate method declared on Params (by
// value or pointer receiver).
func findValidateMethod(pass *Pass) *ast.FuncDecl {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Name.Name != "Validate" || fd.Recv == nil || len(fd.Recv.List) == 0 {
				continue
			}
			t := fd.Recv.List[0].Type
			if star, ok := t.(*ast.StarExpr); ok {
				t = star.X
			}
			if id, ok := t.(*ast.Ident); ok && id.Name == "Params" {
				return fd
			}
		}
	}
	return nil
}

// fieldsReferenced collects the names of Params fields selected anywhere
// inside Validate's body.
func fieldsReferenced(pass *Pass, validate *ast.FuncDecl) map[string]bool {
	out := make(map[string]bool)
	if validate.Body == nil {
		return out
	}
	ast.Inspect(validate.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if s, ok := pass.TypesInfo.Selections[sel]; ok && s.Kind() == types.FieldVal {
			out[sel.Sel.Name] = true
		}
		return true
	})
	return out
}

// fieldDeclPos finds the declaration position of a named field so the
// diagnostic lands on the field, not the struct.
func fieldDeclPos(pass *Pass, spec *ast.TypeSpec, name string) token.Pos {
	st, ok := spec.Type.(*ast.StructType)
	if !ok {
		return 0
	}
	for _, f := range st.Fields.List {
		for _, n := range f.Names {
			if n.Name == name {
				return n.Pos()
			}
		}
	}
	return 0
}

func isBoolType(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Kind() == types.Bool
}

// readmeParamRows finds the nearest README.md (package dir, walking up
// to the module root) and extracts the set of field names that appear as
// a table row of the form "| `Name` | ...". It returns the README path
// relative to the module root and the row set; a missing README
// disables the documentation check rather than flagging every field.
func readmeParamRows(pass *Pass) (string, map[string]bool) {
	dir := pass.Dir
	for {
		path := filepath.Join(dir, "README.md")
		if data, err := os.ReadFile(path); err == nil {
			rel, err := filepath.Rel(pass.ModRoot, path)
			if err != nil {
				rel = path
			}
			return filepath.ToSlash(rel), parseParamRows(string(data))
		}
		if dir == pass.ModRoot {
			return "", nil
		}
		parent := filepath.Dir(dir)
		if parent == dir || !strings.HasPrefix(dir, pass.ModRoot) {
			return "", nil
		}
		dir = parent
	}
}

// parseParamRows extracts backticked first-cell names from markdown
// table rows: "| `Name` | ..." → Name.
func parseParamRows(text string) map[string]bool {
	rows := make(map[string]bool)
	for _, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		if !strings.HasPrefix(line, "|") {
			continue
		}
		cell := strings.TrimSpace(strings.TrimPrefix(line, "|"))
		if !strings.HasPrefix(cell, "`") {
			continue
		}
		cell = cell[1:]
		end := strings.IndexByte(cell, '`')
		if end <= 0 {
			continue
		}
		rows[cell[:end]] = true
	}
	return rows
}
