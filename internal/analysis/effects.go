package analysis

// effects.go — call-graph effect analysis over the sim.Loop scheduling
// surface. Every function node gets a memoized summary of the Loop
// operations its own body may perform (global Schedule/Every/Now/Rand,
// parked-only ScheduleOn/EveryOn, lane-addressed NowOf/RandOf, and
// ScheduleCross) together with the provenance of each lane argument:
// a compile-time constant (folded by the type checker or inferred by
// the interval analysis), a specific variable object, or opaque.
// lanelint substitutes these summaries along the call graph from every
// scheduled event to decide which operations a lane event may reach and
// whether the lane ids it passes are the executing lane's.

import (
	"go/ast"
	"go/types"
	"strconv"
)

// simPkgPath is the package owning the Loop interface and its
// implementations. Fixtures opt in by being checked under this path.
const simPkgPath = "rbcast/internal/sim"

// loopOpNames are the Loop methods the effect analysis tracks.
var loopOpNames = map[string]bool{
	"Schedule": true, "Every": true, "Now": true, "Rand": true,
	"ScheduleOn": true, "EveryOn": true, "NowOf": true, "RandOf": true,
	"ScheduleCross": true,
}

// loopCallbackArg maps a scheduling op to the index of its event
// callback argument.
var loopCallbackArg = map[string]int{
	"Schedule": 1, "Every": 1, "ScheduleOn": 2, "EveryOn": 2, "ScheduleCross": 3,
}

// loopLaneArg maps a lane-addressed op to the index of the lane
// argument that names the *executing* lane (for ScheduleCross this is
// `from`; the event itself lands on `to`, argument 1).
var loopLaneArg = map[string]int{
	"ScheduleOn": 0, "EveryOn": 0, "NowOf": 0, "RandOf": 0, "ScheduleCross": 0,
}

// loopCallName reports the Loop-operation name of a call: a selector
// call of one of the tracked method names whose method is declared in
// the sim package (on the Loop interface or a concrete engine).
func loopCallName(info *types.Info, call *ast.CallExpr) (string, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || !loopOpNames[sel.Sel.Name] {
		return "", false
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != simPkgPath {
		return "", false
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil || sig.Recv() == nil {
		return "", false
	}
	return sel.Sel.Name, true
}

// laneRefKind classifies what the effect analysis knows about a lane
// argument.
type laneRefKind uint8

const (
	// laneRefOpaque: nothing provable — lanelint stays silent.
	laneRefOpaque laneRefKind = iota
	// laneRefConst: a compile-time (or interval-inferred) constant.
	laneRefConst
	// laneRefObject: the value of one specific variable (a parameter or
	// a captured local, compared by types.Object identity).
	laneRefObject
)

// laneRef is the provenance of one lane argument.
type laneRef struct {
	kind laneRefKind
	c    int64
	obj  types.Object
}

func (r laneRef) known() bool { return r.kind != laneRefOpaque }

// differs reports a *provable* mismatch: two different constants, or
// two different variables. A constant versus a variable is not provable
// (the variable may hold that constant) and stays silent.
func (r laneRef) differs(o laneRef) bool {
	if !r.known() || !o.known() || r.kind != o.kind {
		return false
	}
	if r.kind == laneRefConst {
		return r.c != o.c
	}
	return r.obj != o.obj
}

// describe renders the reference for diagnostics.
func (r laneRef) describe() string {
	switch r.kind {
	case laneRefConst:
		return "lane " + strconv.FormatInt(r.c, 10)
	case laneRefObject:
		return "lane variable " + r.obj.Name()
	}
	return "an unknown lane"
}

// loopOpSite is one Loop operation in one function body.
type loopOpSite struct {
	call *ast.CallExpr
	name string
	// lane is the executing-lane argument's provenance for lane-addressed
	// ops (ScheduleOn/EveryOn/NowOf/RandOf and ScheduleCross's `from`);
	// the zero laneRef for global ops.
	lane laneRef
}

// loopEffects is one function's Loop-operation summary (own body only;
// lanelint composes summaries along call edges).
type loopEffects struct {
	sites []loopOpSite
}

// EffectsOf computes (and memoizes) the Loop-effect summary of one
// function node. The walk is shallow: a nested literal's operations
// belong to the literal's own node.
func (p *Program) EffectsOf(n *FuncNode) *loopEffects {
	if eff, ok := p.loopEffects[n]; ok {
		return eff
	}
	eff := &loopEffects{}
	p.loopEffects[n] = eff
	info := n.Pkg.TypesInfo
	walkShallow(n.Body, func(node ast.Node) {
		call, ok := node.(*ast.CallExpr)
		if !ok {
			return
		}
		name, ok := loopCallName(info, call)
		if !ok {
			return
		}
		site := loopOpSite{call: call, name: name}
		if idx, ok := loopLaneArg[name]; ok && idx < len(call.Args) {
			site.lane = p.resolveLaneRef(n, call.Args[idx])
		}
		eff.sites = append(eff.sites, site)
	})
	return eff
}

// resolveLaneRef determines what is known about a lane argument
// expression: a typed constant, a singleton from the interval analysis,
// a specific variable, or opaque.
func (p *Program) resolveLaneRef(n *FuncNode, e ast.Expr) laneRef {
	info := n.Pkg.TypesInfo
	if c, ok := constIntOf(info, e); ok {
		return laneRef{kind: laneRefConst, c: c}
	}
	if ident, ok := ast.Unparen(e).(*ast.Ident); ok {
		if v, ok := info.Uses[ident].(*types.Var); ok {
			return laneRef{kind: laneRefObject, obj: v}
		}
	}
	// The interval analysis folds locals the type checker cannot:
	// lane := base + 1 with constant operands, loop-narrowed indices.
	root := n.EnclosingDecl()
	if root == nil {
		root = n
	}
	if c, ok := p.InferIntervals(root).ExprInterval(e).Const(); ok {
		return laneRef{kind: laneRefConst, c: c}
	}
	return laneRef{}
}

// walkShallow visits every node in body without descending into nested
// function literals (their bodies belong to their own nodes). The
// literal expression itself is visited.
func walkShallow(body ast.Node, visit func(ast.Node)) {
	ast.Inspect(body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok && n != body {
			visit(lit)
			return false
		}
		if n != nil {
			visit(n)
		}
		return true
	})
}

// resolveEventFunc resolves a scheduled callback expression to its
// function node: a literal, a named function, or a method value.
// Opaque values (fields, parameters) return nil — their bodies are
// still reached through the call graph's dynamic edges.
func (p *Program) resolveEventFunc(n *FuncNode, e ast.Expr) *FuncNode {
	e = ast.Unparen(e)
	if lit, ok := e.(*ast.FuncLit); ok {
		return p.Graph.NodeOfLit(lit)
	}
	info := n.Pkg.TypesInfo
	var obj types.Object
	switch e := e.(type) {
	case *ast.Ident:
		obj = info.Uses[e]
	case *ast.SelectorExpr:
		obj = info.Uses[e.Sel]
	}
	if fn, ok := obj.(*types.Func); ok {
		return p.Graph.NodeOf(fn)
	}
	return nil
}

// isLoopImplMethod reports whether n lives inside a method of a Loop
// implementation: a type declared in the sim package whose method set
// has both ScheduleOn and ScheduleCross. The engines' own method bodies
// collapse lane calls onto internal queues (Engine.ScheduleOn calls
// Engine.Schedule); they are the mechanism the discipline governs, not
// subjects of it, so lanelint neither reports their sites nor traverses
// into them.
func isLoopImplMethod(n *FuncNode) bool {
	d := n.EnclosingDecl()
	if d == nil || d.Decl == nil || d.Decl.Recv == nil || d.Obj == nil {
		return false
	}
	sig, _ := d.Obj.Type().(*types.Signature)
	if sig == nil || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil || named.Obj().Pkg().Path() != simPkgPath {
		return false
	}
	ms := types.NewMethodSet(types.NewPointer(named))
	return ms.Lookup(named.Obj().Pkg(), "ScheduleOn") != nil &&
		ms.Lookup(named.Obj().Pkg(), "ScheduleCross") != nil
}
