package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// TaintPackages are the packages that touch decoded wire input: the
// codec itself, the set type wire intervals expand into, the protocol
// state machine the frames are dispatched to, and the two transports
// that read datagrams off sockets.
var TaintPackages = []string{
	"rbcast/internal/core",
	"rbcast/internal/seqset",
	"rbcast/internal/wire",
	"rbcast/internal/udp",
	"rbcast/internal/live",
}

// TaintLint tracks attacker-controlled integers from decoded wire input
// to capacity-shaped sinks. Every field of a decoded frame is adversarial
// (the network can forge, reorder, and duplicate at will — §2's loss
// model makes no promises about content), so a decoded length or
// sequence number that reaches make, a slice index, or an
// AddRange-style O(value) API without an intervening comparison is a
// remote DoS: exactly the PR 1 seqset.AddRange decoder bug, found then
// by fuzzing and caught here statically.
//
// Sources: results of wire.Decode / decodeEnvelope, encoding/binary
// integer reads, and parameters of the network-facing named types
// (Message, Frame, Envelope). A comparison mentioning a tainted variable
// sanitizes it on both branches (the analysis cannot tell a correct
// bound from an inverted one; requiring *a* bound is the useful
// invariant). Callees resolve through the whole-program call graph with
// bottom-up memoized summaries, so a tainted argument threaded through
// any depth of (possibly cross-package) calls to a sink is reported at
// the outermost call site.
var TaintLint = &Analyzer{
	Name: "taintlint",
	Doc: "decoded wire values must pass a bounds check before reaching make, " +
		"slice indexing, or AddRange-style capacity sinks",
	Run: runTaintLint,
}

// taintSinkCalls are callee names whose integer arguments must be
// bounds-checked first: APIs that spend O(value) time or memory.
var taintSinkCalls = map[string]bool{
	"AddRange": true, "FromRange": true, "Grow": true,
}

// taintDecodeNames are module functions whose results are wholly
// attacker-controlled.
var taintDecodeNames = map[string]bool{
	"Decode": true, "DecodeEnvelope": true, "decodeEnvelope": true,
}

// taintParamTypes are named types whose values arrive off the network:
// parameters of these types are adversarial at function entry.
var taintParamTypes = map[string]bool{
	"Message": true, "Frame": true, "Envelope": true,
}

func runTaintLint(pass *Pass) error {
	if !pkgInScope(pass.Pkg.Path(), TaintPackages) || pass.Prog == nil {
		return nil
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				checkTaintRoot(pass, fd)
			}
		}
	}
	return nil
}

// A taintSummary is the dataflow abstract of one function over its full
// transitive call tree: which parameters reach capacity sinks unchecked,
// and which taint a return value.
type taintSummary struct {
	paramSinks   map[int][]string
	paramReturns map[int]bool
}

// checkTaintRoot analyzes one function as a root: its own sources
// (decode calls, binary reads, network-typed parameters) flow to its
// sinks, directly or through callee summaries.
func checkTaintRoot(pass *Pass, fd *ast.FuncDecl) {
	entry := make(factSet)
	for _, obj := range funcParamObjs(pass, fd) {
		if obj != nil && taintedParamType(obj.Type()) {
			entry[obj] = taintVal{pos: obj.Pos(), param: -1}
		}
	}
	run := &taintRun{
		prog:    pass.Prog,
		info:    pass.TypesInfo,
		pkg:     pass.Pkg,
		fset:    pass.Fset,
		reportf: pass.Reportf,
	}
	run.analyze(fd.Name.Name, fd.Body, entry)
}

// taintSummaryOf computes (memoized on the Program, cycle-guarded) the
// summary of node n. Summaries recurse through the call graph — a count
// threaded three calls deep to a make is still charged to the outermost
// call site — and cross package boundaries, since every node carries
// its own package's type information. Recursive cycles return nil,
// degrading that edge to the tainted-in-tainted-out default.
func (p *Program) taintSummaryOf(n *FuncNode) *taintSummary {
	if n == nil || n.Decl == nil || n.Decl.Body == nil {
		return nil
	}
	if sum, ok := p.taintSummaries[n]; ok {
		return sum
	}
	if p.taintInProgress[n] {
		return nil
	}
	p.taintInProgress[n] = true
	defer delete(p.taintInProgress, n)

	info := n.Pkg.TypesInfo
	entry := make(factSet)
	for i, obj := range funcParamObjsInfo(info, n.Decl) {
		if obj == nil {
			continue
		}
		// Network-typed parameters are tainted when the function itself is
		// analyzed as a root; attributing their sinks to the caller too
		// would double-report. Track them as plain sources here.
		if taintedParamType(obj.Type()) {
			entry[obj] = taintVal{pos: obj.Pos(), param: -1}
		} else {
			entry[obj] = taintVal{pos: obj.Pos(), param: i}
		}
	}
	sum := &taintSummary{
		paramSinks:   make(map[int][]string),
		paramReturns: make(map[int]bool),
	}
	run := &taintRun{prog: p, info: info, pkg: n.Pkg.Types, fset: p.Fset, summary: sum}
	run.analyze(n.Name, n.Decl.Body, entry)
	p.taintSummaries[n] = sum
	return sum
}

// A taintRun is one dataflow execution: fixpoint first, then a reporting
// walk over the stabilized entry facts. It is bound to the package of
// the function under analysis (info/pkg), which for callee summaries
// need not be the pass package.
type taintRun struct {
	prog *Program
	info *types.Info
	pkg  *types.Package
	fset *token.FileSet
	// summary, when non-nil, receives sink hits attributable to
	// parameters instead of emitting diagnostics.
	summary *taintSummary
	// reportf emits root diagnostics; nil in summary mode.
	reportf func(token.Pos, string, ...any)
	// report gates sink checking: off during fixpoint iteration.
	report bool
}

func (run *taintRun) analyze(name string, body *ast.BlockStmt, entry factSet) {
	cfg := buildCFG(name, body)
	ins := forwardMay(cfg, entry, func(blk *Block, in factSet) factSet {
		return run.transferBlock(blk, in)
	})
	run.report = true
	for _, blk := range cfg.Blocks {
		if in, ok := ins[blk]; ok {
			run.transferBlock(blk, cloneFacts(in))
		}
	}
	run.report = false
}

func (run *taintRun) transferBlock(blk *Block, f factSet) factSet {
	for _, n := range blk.Nodes {
		f = run.transferNode(n, f)
	}
	return f
}

func (run *taintRun) transferNode(n ast.Node, f factSet) factSet {
	// Range headers are shallow: only the range expression and the
	// key/value bindings belong to this node.
	if rng, ok := n.(*ast.RangeStmt); ok {
		run.checkSinks(rng.X, f)
		if v, tainted := run.exprTaint(rng.X, f); tainted {
			// Elements of a tainted container are tainted; positions are
			// bounded by the real length and stay clean.
			if obj := run.identObj(rng.Value); obj != nil {
				f[obj] = v
			}
		}
		return run.applyKills(rng.X, f)
	}

	run.checkSinks(n, f)

	switch n := n.(type) {
	case *ast.AssignStmt:
		f = run.assign(n.Lhs, n.Rhs, f)
	case *ast.DeclStmt:
		if gd, ok := n.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok && len(vs.Values) > 0 {
					lhs := make([]ast.Expr, len(vs.Names))
					for i, name := range vs.Names {
						lhs[i] = name
					}
					f = run.assign(lhs, vs.Values, f)
				}
			}
		}
	case *ast.ReturnStmt:
		if run.summary != nil {
			for _, res := range n.Results {
				if v, tainted := run.exprTaint(res, f); tainted && v.param >= 0 {
					run.summary.paramReturns[v.param] = true
				}
			}
		}
	}
	return run.applyKills(n, f)
}

// assign pushes taint through one assignment (or var declaration).
func (run *taintRun) assign(lhs, rhs []ast.Expr, f factSet) factSet {
	if len(rhs) == 1 && len(lhs) > 1 {
		// Multi-value: x, y := call(). All results share the call's taint.
		v, tainted := run.exprTaint(rhs[0], f)
		for _, l := range lhs {
			f = run.setLHS(l, v, tainted, f)
		}
		return f
	}
	for i, l := range lhs {
		if i >= len(rhs) {
			break
		}
		v, tainted := run.exprTaint(rhs[i], f)
		f = run.setLHS(l, v, tainted, f)
	}
	return f
}

func (run *taintRun) setLHS(l ast.Expr, v taintVal, tainted bool, f factSet) factSet {
	switch l := ast.Unparen(l).(type) {
	case *ast.Ident:
		if l.Name == "_" {
			return f
		}
		obj := run.identObj(l)
		if obj == nil {
			return f
		}
		if tainted {
			f[obj] = v
		} else {
			delete(f, obj) // strong update: a clean store launders the variable
		}
	default:
		// Store through a selector/index/pointer: a tainted store taints
		// the root variable (weak update — some part of it is now
		// attacker-controlled); a clean store proves nothing.
		if tainted {
			if obj := run.identObj(rootExpr(l)); obj != nil {
				f[obj] = v
			}
		}
	}
	return f
}

func (run *taintRun) identObj(e ast.Expr) types.Object {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	if obj := run.info.Defs[id]; obj != nil {
		return obj
	}
	return run.info.Uses[id]
}

// rootExpr peels selectors, indexes, slices, stars, and parens down to
// the base expression.
func rootExpr(e ast.Expr) ast.Expr {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return e
		}
	}
}

// applyKills removes taint for every object mentioned in a comparison
// inside n: `if n > MaxIntervals { return }` sanitizes n on both edges.
// Both edges on purpose — distinguishing the safe branch from the unsafe
// one would need relational domains; the enforced invariant is that
// *some* bound was checked between decode and use.
func (run *taintRun) applyKills(n ast.Node, f factSet) factSet {
	ast.Inspect(n, func(x ast.Node) bool {
		if _, ok := x.(*ast.FuncLit); ok {
			return false
		}
		be, ok := x.(*ast.BinaryExpr)
		if !ok || !isComparisonOp(be.Op) {
			return true
		}
		for _, side := range []ast.Expr{be.X, be.Y} {
			ast.Inspect(side, func(y ast.Node) bool {
				if id, ok := y.(*ast.Ident); ok {
					if obj := run.info.Uses[id]; obj != nil {
						delete(f, obj)
					}
				}
				return true
			})
		}
		return true
	})
	return f
}

func isComparisonOp(op token.Token) bool {
	switch op {
	case token.LSS, token.LEQ, token.GTR, token.GEQ, token.EQL, token.NEQ:
		return true
	}
	return false
}

// exprTaint reports whether e may carry attacker-controlled data.
func (run *taintRun) exprTaint(e ast.Expr, f factSet) (taintVal, bool) {
	switch e := e.(type) {
	case *ast.Ident:
		if obj := run.info.Uses[e]; obj != nil {
			if v, ok := f[obj]; ok {
				return v, true
			}
		}
	case *ast.ParenExpr:
		return run.exprTaint(e.X, f)
	case *ast.StarExpr:
		return run.exprTaint(e.X, f)
	case *ast.UnaryExpr:
		if e.Op == token.ARROW {
			return taintVal{}, false
		}
		return run.exprTaint(e.X, f)
	case *ast.SelectorExpr:
		// A field of a tainted value is tainted. (Package selectors have a
		// PkgName base, which is never in the fact set.)
		return run.exprTaint(e.X, f)
	case *ast.IndexExpr:
		return run.exprTaint(e.X, f)
	case *ast.SliceExpr:
		return run.exprTaint(e.X, f)
	case *ast.TypeAssertExpr:
		return run.exprTaint(e.X, f)
	case *ast.CompositeLit:
		for _, el := range e.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				el = kv.Value
			}
			if v, ok := run.exprTaint(el, f); ok {
				return v, true
			}
		}
	case *ast.BinaryExpr:
		if isComparisonOp(e.Op) || e.Op == token.LAND || e.Op == token.LOR {
			return taintVal{}, false // booleans carry no capacity
		}
		switch e.Op {
		case token.REM, token.AND, token.AND_NOT:
			// Masking/modulo bounds the result by the (presumed clean)
			// other operand.
			return taintVal{}, false
		}
		if v, ok := run.exprTaint(e.X, f); ok {
			return v, true
		}
		return run.exprTaint(e.Y, f)
	case *ast.CallExpr:
		return run.callTaint(e, f)
	}
	return taintVal{}, false
}

func (run *taintRun) callTaint(call *ast.CallExpr, f factSet) (taintVal, bool) {
	// Conversions propagate: uint32(n) is as tainted as n.
	if tv, ok := run.info.Types[ast.Unparen(call.Fun)]; ok && tv.IsType() {
		if len(call.Args) == 1 {
			return run.exprTaint(call.Args[0], f)
		}
		return taintVal{}, false
	}
	if pos, ok := run.sourceCall(call); ok {
		return taintVal{pos: pos, param: -1}, true
	}
	if b, ok := calleeObjectInfo(run.info, call).(*types.Builtin); ok {
		switch b.Name() {
		case "append":
			for _, arg := range call.Args {
				if v, ok := run.exprTaint(arg, f); ok {
					return v, true
				}
			}
		}
		// len/cap are bounded by real allocations; min/max clamp; the
		// rest allocate fresh or return nothing useful.
		return taintVal{}, false
	}
	if node := run.calleeNode(call); node != nil {
		if sum := run.prog.taintSummaryOf(node); sum != nil {
			for i, arg := range callArgExprs(call, node.Decl) {
				if arg == nil {
					continue
				}
				if v, ok := run.exprTaint(arg, f); ok && sum.paramReturns[i] {
					return v, true
				}
			}
			return taintVal{}, false
		}
	}
	// External or shallow: tainted data in means tainted data out.
	for _, arg := range call.Args {
		if v, ok := run.exprTaint(arg, f); ok {
			return v, true
		}
	}
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if v, ok := run.exprTaint(sel.X, f); ok {
			return v, true // method on a tainted receiver
		}
	}
	return taintVal{}, false
}

// calleeNode resolves a call to its call-graph node when the callee is
// a statically known function with a body in the program.
func (run *taintRun) calleeNode(call *ast.CallExpr) *FuncNode {
	fn, ok := calleeObjectInfo(run.info, call).(*types.Func)
	if !ok {
		return nil
	}
	node := run.prog.Graph.NodeOf(fn)
	if node == nil || node.Decl == nil || node.Decl.Body == nil {
		return nil
	}
	return node
}

// sourceCall matches the taint sources: encoding/binary integer reads
// and the module's decode entry points.
func (run *taintRun) sourceCall(call *ast.CallExpr) (token.Pos, bool) {
	fn, ok := calleeObjectInfo(run.info, call).(*types.Func)
	if !ok || fn.Pkg() == nil {
		return token.NoPos, false
	}
	if fn.Pkg().Path() == "encoding/binary" {
		switch fn.Name() {
		case "Uint16", "Uint32", "Uint64":
			return call.Pos(), true
		}
	}
	if taintDecodeNames[fn.Name()] &&
		(fn.Pkg() == run.pkg || strings.HasPrefix(fn.Pkg().Path(), "rbcast/")) {
		return call.Pos(), true
	}
	return token.NoPos, false
}

// taintedParamType reports whether t is (a pointer to) one of the
// network-facing named types.
func taintedParamType(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	return ok && taintParamTypes[n.Obj().Name()]
}

// checkSinks reports tainted data reaching a capacity sink anywhere
// inside n, with the facts as they stand before n executes.
func (run *taintRun) checkSinks(n ast.Node, f factSet) {
	if !run.report {
		return
	}
	ast.Inspect(n, func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			run.checkCallSinks(x, f)
		case *ast.IndexExpr:
			if isSliceOrArray(run.info, x.X) {
				if v, ok := run.exprTaint(x.Index, f); ok {
					run.reportSink(x.Index.Pos(), "a slice index", v)
				}
			}
		case *ast.SliceExpr:
			for _, bound := range []ast.Expr{x.Low, x.High, x.Max} {
				if bound == nil {
					continue
				}
				if v, ok := run.exprTaint(bound, f); ok {
					run.reportSink(bound.Pos(), "a slice bound", v)
				}
			}
		}
		return true
	})
}

func (run *taintRun) checkCallSinks(call *ast.CallExpr, f factSet) {
	if name, ok := calleeName(call); ok && taintSinkCalls[name] {
		if obj := calleeObjectInfo(run.info, call); obj == nil || !isTypeConversion(run.info, call) {
			for _, arg := range call.Args {
				if v, ok := run.exprTaint(arg, f); ok {
					run.reportSink(arg.Pos(), fmt.Sprintf("%s (O(value) cost)", name), v)
					break
				}
			}
		}
	}
	if b, ok := calleeObjectInfo(run.info, call).(*types.Builtin); ok && b.Name() == "make" {
		for _, arg := range call.Args[1:] {
			if v, ok := run.exprTaint(arg, f); ok {
				run.reportSink(arg.Pos(), "a make size/capacity", v)
			}
		}
		return
	}
	if node := run.calleeNode(call); node != nil {
		if sum := run.prog.taintSummaryOf(node); sum != nil {
			for i, arg := range callArgExprs(call, node.Decl) {
				if arg == nil {
					continue
				}
				v, ok := run.exprTaint(arg, f)
				if !ok {
					continue
				}
				for _, desc := range sum.paramSinks[i] {
					run.reportSink(call.Pos(), fmt.Sprintf("%s inside %s", desc, node.Name), v)
				}
			}
		}
	}
}

func isTypeConversion(info *types.Info, call *ast.CallExpr) bool {
	tv, ok := info.Types[ast.Unparen(call.Fun)]
	return ok && tv.IsType()
}

func isSliceOrArray(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	t := tv.Type.Underlying()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem().Underlying()
	}
	switch t.(type) {
	case *types.Slice, *types.Array:
		return true
	}
	return false
}

func (run *taintRun) reportSink(pos token.Pos, what string, v taintVal) {
	if run.summary != nil {
		if v.param >= 0 {
			run.summary.paramSinks[v.param] = append(run.summary.paramSinks[v.param], what)
		}
		return
	}
	if run.reportf == nil {
		return
	}
	src := run.fset.Position(v.pos)
	run.reportf(pos,
		"attacker-controlled wire value flows into %s without an intervening bounds check "+
			"(tainted at line %d): a forged frame can spend unbounded time or memory",
		what, src.Line)
}
