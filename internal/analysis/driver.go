package analysis

import (
	"fmt"
	"go/token"
	"io"
)

// RunPackage applies every analyzer to one loaded package and applies
// the package's //rblint:ignore directives (parsed from its non-test
// files) to the findings. Directive problems — missing reason, unknown
// analyzer name, stale directive — come back as "rblint" diagnostics.
//
// The package is analyzed as a whole program by itself: the call graph
// and function summaries cover exactly this package. Cross-package
// facts (a goroutine spawned in live reaching code in udp) need the
// multi-package Run entry point, which shares one Program across every
// loaded package.
func RunPackage(loader *Loader, pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	prog := NewProgram(loader.Fset, []*Package{pkg})
	return runPackage(loader, prog, pkg, analyzers)
}

// runPackage is the shared per-package pass driver; prog spans at least
// pkg and supplies the interprocedural facts.
func runPackage(loader *Loader, prog *Program, pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	valid := make(map[string]bool)
	for _, a := range analyzers {
		valid[a.Name] = true
	}
	ignores, problems := parseIgnores(loader.Fset, pkg.Files, valid)

	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      loader.Fset,
			Files:     pkg.Files,
			TestFiles: pkg.TestFiles,
			Pkg:       pkg.Types,
			TypesInfo: pkg.TypesInfo,
			Dir:       pkg.Dir,
			ModRoot:   loader.ModRoot,
			Prog:      prog,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.Path, err)
		}
		diags = append(diags, pass.diagnostics...)
	}
	diags = applyIgnores(loader.Fset, ignores, diags)
	diags = append(diags, problems...)
	sortDiagnostics(loader.Fset, diags)
	return diags, nil
}

// Run loads the packages matched by patterns (resolved relative to the
// module containing dir), builds one whole-program call graph over all
// of them, and applies the full analyzer suite to each package against
// that shared view — so spawn edges, lock orders, and taint summaries
// cross package boundaries. It returns all surviving diagnostics, the
// FileSet to position them with, and the module root (for root-relative
// output paths).
func Run(dir string, patterns ...string) ([]Diagnostic, *token.FileSet, string, error) {
	loader, err := NewLoader(dir)
	if err != nil {
		return nil, nil, "", err
	}
	pkgs, err := loader.LoadPatterns(patterns...)
	if err != nil {
		return nil, nil, "", err
	}
	prog := NewProgram(loader.Fset, pkgs)
	var all []Diagnostic
	for _, pkg := range pkgs {
		diags, err := runPackage(loader, prog, pkg, Analyzers())
		if err != nil {
			return nil, nil, "", err
		}
		all = append(all, diags...)
	}
	sortDiagnostics(loader.Fset, all)
	return all, loader.Fset, loader.ModRoot, nil
}

// RunDir loads the single package in dir — type-checked under asPath
// when non-empty — and applies the full analyzer suite to it in
// isolation (the package is its own whole program). This is the fixture
// entry point: a deliberately-broken testdata package can be checked
// under an in-scope import path (say rbcast/internal/udp) so the
// path-scoped analyzers are in jurisdiction, which is how CI proves the
// suite still produces findings at all.
func RunDir(dir, asPath string) ([]Diagnostic, *token.FileSet, string, error) {
	loader, err := NewLoader(dir)
	if err != nil {
		return nil, nil, "", err
	}
	pkg, err := loader.Load(dir, asPath)
	if err != nil {
		return nil, nil, "", err
	}
	diags, err := RunPackage(loader, pkg, Analyzers())
	if err != nil {
		return nil, nil, "", err
	}
	return diags, loader.Fset, loader.ModRoot, nil
}

// Print writes diagnostics in the conventional file:line:col format.
func Print(w io.Writer, fset *token.FileSet, diags []Diagnostic) {
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		fmt.Fprintf(w, "%s: %s: %s\n", pos, d.Analyzer, d.Message)
	}
}
