package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"math/big"
)

// QuorumPackages is the scope of quorumlint: the protocol core that
// owns the echo/ready quorum arithmetic.
var QuorumPackages = []string{"rbcast/internal/core"}

// quorumNMax is the modeled participant-count ceiling. Config.validate
// requires the host itself to appear in Peers, so n ≥ 1; 2³¹ is far
// beyond any simulated deployment while keeping every admitted quorum
// expression comfortably inside int64.
const quorumNMax = 1 << 31

// QuorumLint proves the Bracha-flavoured quorum inequalities of the
// echo/ready hardening layer for *all* parameter values admitted by
// Params.Validate, not just the ones a test happens to run. It finds,
// per receiver type, the threshold methods byzF / echoQuorum /
// readyQuorum / readyAmplify, evaluates their bodies symbolically into
// affine forms over n = len(peers) and the Validate-bounded parameter
// fields (with truncated division modeled exactly via slack variables),
// splits on byzF's branches, and discharges five obligations in each
// case:
//
//  1. overflow-freedom — every threshold form and every division
//     numerator stays within int for all admitted n, f;
//  2. intersection — 2·echoQuorum − n − f ≥ 1, so two echo quorums for
//     distinct digests would need more than f equivocating voters;
//  3. honest majority — readyQuorum ≥ 2f+1, so a delivery quorum
//     contains at least f+1 correct hosts;
//  4. amplification safety — readyAmplify ≥ f+1, so amplified readies
//     prove at least one honest first-hand echo quorum;
//  5. default budget — the defaulting branch keeps f ≤ ⌊(n−1)/3⌋, the
//     classical resilience maximum.
//
// An arithmetic edit that breaks an inequality for any admitted value
// — an off-by-one in the echo quorum, an amplification threshold of f,
// a Validate guard deleted — turns into a finding on the very next
// `make lint`. The prover is deliberately conservative: a threshold it
// cannot bring into affine/div form, or an inequality it cannot prove,
// is reported, never assumed. The inequalities themselves are
// documented beside the prose agreement argument in
// internal/core/echo.go.
var QuorumLint = &Analyzer{
	Name: "quorumlint",
	Doc: "prove echo/ready quorum inequalities (overflow-freedom, quorum " +
		"intersection, honest majority, amplification safety, default f bound) " +
		"for all parameter values admitted by Params.Validate (core)",
	Run: runQuorumLint,
}

func runQuorumLint(pass *Pass) error {
	if !pkgInScope(pass.Pkg.Path(), QuorumPackages) {
		return nil
	}
	admitted := harvestValidateBounds(pass)
	for _, g := range findQuorumGroups(pass) {
		checkQuorumGroup(pass, g, admitted)
	}
	return nil
}

// quorumGroup is one receiver type's threshold method set.
type quorumGroup struct {
	recv    *types.TypeName
	byzF    *ast.FuncDecl
	methods map[string]*ast.FuncDecl // echoQuorum, readyQuorum, readyAmplify
}

// findQuorumGroups collects, per receiver type, the quorum threshold
// methods. Only groups with a byzF and at least one threshold are
// analyzed — a package without the echo layer has nothing to prove.
func findQuorumGroups(pass *Pass) []*quorumGroup {
	byRecv := make(map[*types.TypeName]*quorumGroup)
	var order []*types.TypeName
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || fd.Body == nil {
				continue
			}
			switch fd.Name.Name {
			case "byzF", "echoQuorum", "readyQuorum", "readyAmplify":
			default:
				continue
			}
			recv := quorumRecvType(pass.TypesInfo, fd)
			if recv == nil {
				continue
			}
			g := byRecv[recv]
			if g == nil {
				g = &quorumGroup{recv: recv, methods: make(map[string]*ast.FuncDecl)}
				byRecv[recv] = g
				order = append(order, recv)
			}
			if fd.Name.Name == "byzF" {
				g.byzF = fd
			} else {
				g.methods[fd.Name.Name] = fd
			}
		}
	}
	var out []*quorumGroup
	for _, recv := range order {
		g := byRecv[recv]
		if g.byzF != nil && len(g.methods) > 0 {
			out = append(out, g)
		}
	}
	return out
}

// quorumRecvType resolves a method's receiver to its named type.
func quorumRecvType(info *types.Info, fd *ast.FuncDecl) *types.TypeName {
	if len(fd.Recv.List) != 1 {
		return nil
	}
	t := info.TypeOf(fd.Recv.List[0].Type)
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj()
	}
	return nil
}

// harvestValidateBounds extracts the admitted interval of every integer
// parameter field from the package's Validate methods: each top-level
// `if field OP const { return err }` guard rejects the region where the
// comparison holds, so the admitted region is narrowed by its negation.
// Guards the harvest cannot interpret (compound conditions, cross-field
// comparisons) simply leave the interval wider — sound, since every
// obligation is proved over the admitted box.
func harvestValidateBounds(pass *Pass) map[*types.Var]Interval {
	admitted := make(map[*types.Var]Interval)
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || fd.Body == nil || fd.Name.Name != "Validate" {
				continue
			}
			for _, st := range fd.Body.List {
				ifst, ok := st.(*ast.IfStmt)
				if !ok || ifst.Init != nil || ifst.Else != nil || !bodyReturns(ifst.Body) {
					continue
				}
				field, op, c, ok := fieldCmp(pass.TypesInfo, ifst.Cond)
				if !ok {
					continue
				}
				cur, have := admitted[field]
				if !have {
					cur = IvTop
				}
				narrowed, _ := IvNarrowCmp(negateCmp(op), cur, IvConst(c))
				admitted[field] = narrowed
			}
		}
	}
	return admitted
}

// bodyReturns reports whether a guard body ends in a return — the
// shape of a Validate rejection.
func bodyReturns(body *ast.BlockStmt) bool {
	if len(body.List) == 0 {
		return false
	}
	_, ok := body.List[len(body.List)-1].(*ast.ReturnStmt)
	return ok
}

// fieldCmp decomposes `field OP const` (or `const OP field`, with the
// comparison flipped) where field is an integer struct field.
func fieldCmp(info *types.Info, cond ast.Expr) (*types.Var, token.Token, int64, bool) {
	be, ok := ast.Unparen(cond).(*ast.BinaryExpr)
	if !ok {
		return nil, 0, 0, false
	}
	switch be.Op {
	case token.LSS, token.GTR, token.LEQ, token.GEQ, token.EQL, token.NEQ:
	default:
		return nil, 0, 0, false
	}
	if f := fieldVarOf(info, be.X); f != nil {
		if c, ok := constIntOf(info, be.Y); ok {
			return f, be.Op, c, true
		}
	}
	if f := fieldVarOf(info, be.Y); f != nil {
		if c, ok := constIntOf(info, be.X); ok {
			return f, flipCmp(be.Op), c, true
		}
	}
	return nil, 0, 0, false
}

// fieldVarOf resolves an expression to the integer struct field it
// reads, if any. `p.EchoMaxFaulty` in Validate and
// `h.params.EchoMaxFaulty` in byzF resolve to the same field object,
// which is what lets the harvest bound the threshold arithmetic.
func fieldVarOf(info *types.Info, e ast.Expr) *types.Var {
	sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	v, ok := info.Uses[sel.Sel].(*types.Var)
	if !ok || !v.IsField() || !isIntType(v.Type()) {
		return nil
	}
	return v
}

// flipCmp mirrors a comparison across its operands (a OP b ⇔ b OP' a).
func flipCmp(op token.Token) token.Token {
	switch op {
	case token.LSS:
		return token.GTR
	case token.GTR:
		return token.LSS
	case token.LEQ:
		return token.GEQ
	case token.GEQ:
		return token.LEQ
	}
	return op
}

// quorumCase is one branch of byzF: ret is the budget expression, cond
// the branch condition (nil for the fall-through default), and prior
// the earlier conditions known false when this branch runs.
type quorumCase struct {
	cond  ast.Expr
	prior []ast.Expr
	ret   ast.Expr
}

// byzFCases decomposes byzF's body into guard/default cases. The
// supported shape — a sequence of `if cond { return e }` followed by a
// final `return e` — is exactly the defaulting idiom; anything else is
// reported as unanalyzable by the caller.
func byzFCases(fd *ast.FuncDecl) []quorumCase {
	var cases []quorumCase
	var prior []ast.Expr
	for _, st := range fd.Body.List {
		switch st := st.(type) {
		case *ast.IfStmt:
			if st.Init != nil || st.Else != nil {
				return nil
			}
			ret := soleReturnExpr(st.Body)
			if ret == nil {
				return nil
			}
			cases = append(cases, quorumCase{cond: st.Cond, prior: append([]ast.Expr(nil), prior...), ret: ret})
			prior = append(prior, st.Cond)
		case *ast.ReturnStmt:
			if len(st.Results) != 1 {
				return nil
			}
			cases = append(cases, quorumCase{prior: append([]ast.Expr(nil), prior...), ret: st.Results[0]})
			return cases
		default:
			return nil
		}
	}
	return nil
}

// soleReturnExpr returns the expression of a single-statement
// single-value return body.
func soleReturnExpr(body *ast.BlockStmt) ast.Expr {
	if len(body.List) != 1 {
		return nil
	}
	ret, ok := body.List[0].(*ast.ReturnStmt)
	if !ok || len(ret.Results) != 1 {
		return nil
	}
	return ret.Results[0]
}

// caseDesc renders a byzF case for diagnostics.
func caseDesc(c quorumCase) string {
	if c.cond != nil {
		return "(when " + types.ExprString(c.cond) + ")"
	}
	return "(in the defaulting branch)"
}

// quorumCtx is one proof context: a symtab plus the symbolic bindings
// shared by all thresholds of one byzF case.
type quorumCtx struct {
	pass   *Pass
	st     *symtab
	group  *quorumGroup
	bounds map[*types.Var]Interval // per-case admitted field intervals
	vars   map[*types.Var]*aff
	nVar   *aff
	fForm  *aff
}

// checkQuorumGroup discharges the obligations for one receiver type.
func checkQuorumGroup(pass *Pass, g *quorumGroup, admitted map[*types.Var]Interval) {
	cases := byzFCases(g.byzF)
	if cases == nil {
		pass.Reportf(g.byzF.Pos(),
			"quorumlint cannot analyze %s.byzF: the Byzantine budget must be a sequence of "+
				"`if cond { return e }` guards and a final return so each case can be proved separately",
			g.recv.Name())
		return
	}
	for _, c := range cases {
		qc := &quorumCtx{
			pass:   pass,
			st:     newSymtab(),
			group:  g,
			bounds: caseBounds(pass.TypesInfo, admitted, c),
			vars:   make(map[*types.Var]*aff),
		}
		qc.nVar = qc.st.setVar("n", IvRange(1, quorumNMax))
		desc := caseDesc(c)
		qc.fForm = qc.eval(c.ret)
		if qc.fForm == nil {
			pass.Reportf(c.ret.Pos(),
				"quorumlint cannot analyze %s.byzF %s: the budget must be affine/div arithmetic over "+
					"len(peers) and Validate-bounded fields", g.recv.Name(), desc)
			continue
		}
		overflowed := qc.checkOverflow(g.byzF.Name.Name, qc.fForm, c.ret.Pos(), desc)
		forms := make(map[string]*aff)
		for _, name := range []string{"echoQuorum", "readyQuorum", "readyAmplify"} {
			fd, ok := g.methods[name]
			if !ok {
				continue
			}
			ret := soleReturnExpr(fd.Body)
			if ret == nil {
				pass.Reportf(fd.Pos(),
					"quorumlint cannot analyze %s.%s: quorum thresholds must be a single return of "+
						"affine/div arithmetic so the inequalities can be proved", g.recv.Name(), name)
				continue
			}
			form := qc.eval(ret)
			if form == nil {
				pass.Reportf(ret.Pos(),
					"quorumlint cannot analyze %s.%s %s: quorum thresholds must be affine/div arithmetic over "+
						"len(peers), Validate-bounded fields, and byzF()", g.recv.Name(), name, desc)
				continue
			}
			forms[name] = form
			// One overflow report per case is enough when the budget itself
			// is unbounded — every threshold would repeat it.
			if !overflowed {
				qc.checkOverflow(name, form, ret.Pos(), desc)
			}
		}
		qc.checkInequalities(forms, c, desc)
	}
}

// caseBounds intersects the Validate-admitted field intervals with one
// byzF case's branch conditions (its own condition true, all earlier
// ones false).
func caseBounds(info *types.Info, admitted map[*types.Var]Interval, c quorumCase) map[*types.Var]Interval {
	bounds := make(map[*types.Var]Interval, len(admitted))
	for f, iv := range admitted {
		bounds[f] = iv
	}
	narrow := func(cond ast.Expr, sense bool) {
		field, op, k, ok := fieldCmp(info, cond)
		if !ok {
			return
		}
		if !sense {
			op = negateCmp(op)
		}
		cur, have := bounds[field]
		if !have {
			cur = IvTop
		}
		narrowed, _ := IvNarrowCmp(op, cur, IvConst(k))
		bounds[field] = narrowed
	}
	for _, p := range c.prior {
		narrow(p, false)
	}
	if c.cond != nil {
		narrow(c.cond, true)
	}
	return bounds
}

// eval brings a threshold expression into affine/div form, or nil when
// the shape is outside the prover's language.
func (qc *quorumCtx) eval(e ast.Expr) *aff {
	e = ast.Unparen(e)
	info := qc.pass.TypesInfo
	if c, ok := constIntOf(info, e); ok {
		return affConst(c)
	}
	switch e := e.(type) {
	case *ast.BinaryExpr:
		x := qc.eval(e.X)
		if x == nil {
			return nil
		}
		switch e.Op {
		case token.ADD, token.SUB:
			y := qc.eval(e.Y)
			if y == nil {
				return nil
			}
			if e.Op == token.ADD {
				return affAdd(x, y)
			}
			return affSub(x, y)
		case token.MUL:
			y := qc.eval(e.Y)
			if y == nil {
				return nil
			}
			if k, ok := y.isConst(); ok {
				return affScale(x, k)
			}
			if k, ok := x.isConst(); ok {
				return affScale(y, k)
			}
			return nil
		case token.QUO:
			// Only truncated division by a positive constant has a slack
			// model; anything else is outside the language.
			c, ok := constIntOf(info, e.Y)
			if !ok || c <= 0 {
				return nil
			}
			return qc.st.div(x, c)
		}
		return nil
	case *ast.UnaryExpr:
		if e.Op != token.SUB {
			return nil
		}
		x := qc.eval(e.X)
		if x == nil {
			return nil
		}
		return affScale(x, big.NewRat(-1, 1))
	case *ast.CallExpr:
		if id, ok := ast.Unparen(e.Fun).(*ast.Ident); ok && id.Name == "len" && info.Uses[id] == types.Universe.Lookup("len") {
			// Every participant list the thresholds measure is the peer
			// set, so len(...) is the symbolic n.
			return qc.nVar.clone()
		}
		if sel, ok := ast.Unparen(e.Fun).(*ast.SelectorExpr); ok {
			if fn, ok := info.Uses[sel.Sel].(*types.Func); ok && fn.Name() == qc.group.byzF.Name.Name {
				if qc.fForm != nil {
					return qc.fForm.clone()
				}
			}
		}
		return nil
	case *ast.SelectorExpr:
		if f := fieldVarOf(info, e); f != nil {
			return qc.fieldVar(f)
		}
	}
	return nil
}

// fieldVar interns one parameter field as a symtab variable bounded by
// its per-case admitted interval.
func (qc *quorumCtx) fieldVar(f *types.Var) *aff {
	if form, ok := qc.vars[f]; ok {
		return form.clone()
	}
	iv, ok := qc.bounds[f]
	if !ok {
		iv = IvTop
	}
	form := qc.st.setVar(f.Name(), iv)
	qc.vars[f] = form
	return form.clone()
}

// checkOverflow discharges obligation 1 for one threshold form: the
// form itself and every division numerator inside it must provably
// stay within int. It reports and returns true on failure.
func (qc *quorumCtx) checkOverflow(name string, form *aff, pos token.Pos, desc string) bool {
	bad := !qc.st.fitsInt64(form)
	if !bad {
		for _, a := range qc.st.collectAtoms(form) {
			if !qc.st.fitsInt64(a.num) {
				bad = true
				break
			}
		}
	}
	if bad {
		qc.pass.Reportf(pos,
			"quorum arithmetic in %s.%s may overflow %s: not provably within int for all "+
				"admitted parameters — cap the budget in Params.Validate",
			qc.group.recv.Name(), name, desc)
	}
	return bad
}

// checkInequalities discharges obligations 2–5 for one byzF case.
func (qc *quorumCtx) checkInequalities(forms map[string]*aff, c quorumCase, desc string) {
	f := qc.fForm
	one := affConst(1)
	if eq, ok := forms["echoQuorum"]; ok {
		// 2·echoQuorum − n − f − 1 ≥ 0: two echo quorums overlap in
		// ≥ 2·eq − n hosts, which must exceed the f possible equivocators.
		g := affSub(affSub(affSub(affScale(eq, big.NewRat(2, 1)), qc.nVar), f), one)
		if !qc.st.proveNonNeg(g) {
			qc.pass.Reportf(qc.group.methods["echoQuorum"].Pos(),
				"echo quorums may fail to intersect in f+1 hosts %s: 2·echoQuorum − n − f − 1 is not "+
					"provably ≥ 0, so two digests could both gather a quorum with only f equivocators "+
					"(see the quorum inequalities in internal/core/echo.go)", desc)
		}
	}
	if rq, ok := forms["readyQuorum"]; ok {
		// readyQuorum − 2f − 1 ≥ 0: a delivery quorum keeps an honest
		// majority (≥ f+1 correct hosts) even with f faulty voters.
		g := affSub(affSub(rq, affScale(f, big.NewRat(2, 1))), one)
		if !qc.st.proveNonNeg(g) {
			qc.pass.Reportf(qc.group.methods["readyQuorum"].Pos(),
				"ready quorum may lack an honest majority %s: readyQuorum − 2f − 1 is not provably ≥ 0, "+
					"so delivery could rest on f faulty votes plus fewer than f+1 correct ones "+
					"(see the quorum inequalities in internal/core/echo.go)", desc)
		}
	}
	if ra, ok := forms["readyAmplify"]; ok {
		// readyAmplify − f − 1 ≥ 0: amplification must outnumber the
		// Byzantine budget so at least one vote is honest.
		g := affSub(affSub(ra, f), one)
		if !qc.st.proveNonNeg(g) {
			qc.pass.Reportf(qc.group.methods["readyAmplify"].Pos(),
				"ready amplification may fire without an honest vote %s: readyAmplify − f − 1 is not "+
					"provably ≥ 0, so f faulty readies alone could trigger a ready cascade "+
					"(see the quorum inequalities in internal/core/echo.go)", desc)
		}
	}
	if c.cond == nil {
		// ⌊(n−1)/3⌋ − f ≥ 0: the defaulting branch must not exceed the
		// classical resilience maximum.
		bound := qc.st.div(affSub(qc.nVar.clone(), one), 3)
		if g := affSub(bound, f); !qc.st.proveNonNeg(g) {
			qc.pass.Reportf(c.ret.Pos(),
				"EchoMaxFaulty defaulting may exceed the classical bound %s: ⌊(n−1)/3⌋ − f is not "+
					"provably ≥ 0 (see the quorum inequalities in internal/core/echo.go)", desc)
		}
	}
}
