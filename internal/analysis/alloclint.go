package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// AllocLint turns the repository's runtime allocs/op=0 pins into a
// static guarantee. A function marked with the directive
//
//	//rblint:hotpath <why this path must stay allocation-free>
//
// promises that its full transitive call tree performs no heap
// allocation on the success path. The analyzer walks that tree over the
// call graph (static call and defer edges; a dynamic call is itself a
// finding, so the walk never needs to guess) and flags every
// allocation-shaped construct: make/new, slice and map literals,
// address-of composite literals, string concatenation and
// string↔[]byte conversions, fmt and any other external call outside
// the allocation-free allowlist (encoding/binary, math/bits,
// sync/atomic), map iteration and map insertion, function literals
// (closure headers), goroutine spawns, interface boxing at call
// arguments, assignments, returns, and channel sends, and append to a
// destination that is not a caller-provided or field-rooted buffer
// (the reuse discipline the AllocsPerRun tests pin at zero).
//
// Error paths are cold by contract: any statement range returning a
// non-nil error expression is exempt, as are panic arguments — the
// guarantee covers the success path a soak actually spends time on.
var AllocLint = &Analyzer{
	Name: "alloclint",
	Doc: "//rblint:hotpath functions and their transitive static call trees must " +
		"be provably allocation-free on the success path",
	Run: runAllocLint,
}

// allocAllowedPkgs are external packages whose functions are known not
// to allocate on the paths hot code uses (binary.BigEndian append/read
// helpers write into caller buffers; bits and atomic are intrinsics).
var allocAllowedPkgs = map[string]bool{
	"encoding/binary": true,
	"math/bits":       true,
	"sync/atomic":     true,
}

func runAllocLint(pass *Pass) error {
	if pass.Prog == nil {
		return nil
	}
	pass.Prog.ensureAllocDiags()
	for _, pd := range pass.Prog.allocDiags {
		if pd.pkgPath == pass.Pkg.Path() {
			pass.Report(pd.d)
		}
	}
	return nil
}

func (p *Program) ensureAllocDiags() {
	if p.allocDone {
		return
	}
	p.allocDone = true
	p.allocDiags = p.sortedProgDiags(computeAllocDiags(p))
}

// isHotpathMarked reports whether fd carries the //rblint:hotpath
// directive in its doc comment.
func isHotpathMarked(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if strings.HasPrefix(c.Text, "//rblint:hotpath") {
			return true
		}
	}
	return false
}

func computeAllocDiags(p *Program) []progDiag {
	ac := &allocChecker{
		prog:     p,
		visited:  make(map[*FuncNode]bool),
		reported: make(map[token.Pos]bool),
	}
	for _, n := range p.Graph.Nodes {
		if n.Decl != nil && isHotpathMarked(n.Decl) {
			ac.walk(n, n.Name, nil)
		}
	}
	return ac.diags
}

type allocChecker struct {
	prog     *Program
	visited  map[*FuncNode]bool
	reported map[token.Pos]bool
	diags    []progDiag
}

// walk checks node and recurses into its static call/defer tree. Each
// function is checked once; the first root to reach it names the chain.
func (ac *allocChecker) walk(n *FuncNode, root string, chain []string) {
	if ac.visited[n] {
		return
	}
	ac.visited[n] = true
	ac.checkBody(n, root, chain)
	for _, e := range n.Out {
		if e.Kind == EdgeGo || e.Dynamic || e.Callee.Decl == nil {
			continue
		}
		ac.walk(e.Callee, root, append(chain, e.Callee.Name))
	}
}

func (ac *allocChecker) report(n *FuncNode, pos token.Pos, root string, chain []string, format string, args ...any) {
	if ac.reported[pos] {
		return
	}
	ac.reported[pos] = true
	where := "hot path " + root
	if len(chain) > 0 {
		where += " (via " + strings.Join(chain, " -> ") + ")"
	}
	ac.diags = append(ac.diags, progDiag{
		pkgPath: n.Pkg.Path,
		d: Diagnostic{
			Analyzer: "alloclint",
			Pos:      pos,
			Message:  where + ": " + fmt.Sprintf(format, args...),
		},
	})
}

func (ac *allocChecker) checkBody(n *FuncNode, root string, chain []string) {
	info := n.Pkg.TypesInfo
	exempt := allocExemptRanges(info, n.Body)
	isExempt := func(pos token.Pos) bool {
		for _, r := range exempt {
			if r[0] <= pos && pos <= r[1] {
				return true
			}
		}
		return false
	}
	rep := func(pos token.Pos, format string, args ...any) {
		if !isExempt(pos) {
			ac.report(n, pos, root, chain, format, args...)
		}
	}

	ast.Inspect(n.Body, func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.FuncLit:
			if x.Body != n.Body {
				rep(x.Pos(), "function literal allocates its closure; hoist the work into a named method")
				return false // the literal's body is its own (non-hot) node
			}
		case *ast.GoStmt:
			rep(x.Pos(), "goroutine spawn allocates a new stack; hot paths must not spawn")
			return false
		case *ast.CompositeLit:
			switch info.Types[x].Type.Underlying().(type) {
			case *types.Slice:
				rep(x.Pos(), "slice literal allocates; reuse a preallocated buffer")
			case *types.Map:
				rep(x.Pos(), "map literal allocates")
			}
		case *ast.UnaryExpr:
			if x.Op == token.AND {
				if _, ok := ast.Unparen(x.X).(*ast.CompositeLit); ok {
					rep(x.Pos(), "&composite literal escapes to the heap; reuse preallocated storage")
				}
			}
		case *ast.BinaryExpr:
			if x.Op == token.ADD && isStringType(info, x) {
				rep(x.Pos(), "string concatenation allocates")
			}
		case *ast.RangeStmt:
			if _, ok := typeOf(info, x.X).Underlying().(*types.Map); ok {
				rep(x.X.Pos(), "map iteration in a hot path: order is random and buckets are walked; use a slice")
			}
		case *ast.AssignStmt:
			for _, lhs := range x.Lhs {
				if ix, ok := ast.Unparen(lhs).(*ast.IndexExpr); ok {
					if _, isMap := typeOf(info, ix.X).Underlying().(*types.Map); isMap {
						rep(lhs.Pos(), "map assignment may allocate or rehash")
					}
				}
			}
			ac.checkAssignBoxing(n, x, rep)
		case *ast.SendStmt:
			if ch, ok := typeOf(info, x.Chan).Underlying().(*types.Chan); ok {
				ac.checkBoxed(n, x.Value, ch.Elem(), rep, "channel send")
			}
		case *ast.ReturnStmt:
			ac.checkReturnBoxing(n, x, rep)
		case *ast.CallExpr:
			ac.checkCall(n, x, rep)
		}
		return true
	})
}

// allocExemptRanges collects the cold-path source ranges: return
// statements carrying a non-nil error expression, and panic arguments.
func allocExemptRanges(info *types.Info, body *ast.BlockStmt) [][2]token.Pos {
	errType := types.Universe.Lookup("error").Type()
	var out [][2]token.Pos
	ast.Inspect(body, func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.ReturnStmt:
			for _, res := range x.Results {
				tv, ok := info.Types[res]
				if ok && tv.Type != nil && !tv.IsNil() && types.AssignableTo(tv.Type, errType) {
					out = append(out, [2]token.Pos{x.Pos(), x.End()})
					break
				}
			}
		case *ast.CallExpr:
			if id, ok := ast.Unparen(x.Fun).(*ast.Ident); ok {
				if b, ok := info.Uses[id].(*types.Builtin); ok && b.Name() == "panic" {
					out = append(out, [2]token.Pos{x.Pos(), x.End()})
				}
			}
		}
		return true
	})
	return out
}

func (ac *allocChecker) checkCall(n *FuncNode, call *ast.CallExpr, rep func(token.Pos, string, ...any)) {
	info := n.Pkg.TypesInfo
	fun := ast.Unparen(call.Fun)

	// Conversions: only the string↔byte/rune-slice family allocates.
	if tv, ok := info.Types[fun]; ok && tv.IsType() {
		if len(call.Args) == 1 {
			ac.checkConversion(n, tv.Type, call, rep)
		}
		return
	}

	var obj types.Object
	switch fun := fun.(type) {
	case *ast.Ident:
		obj = info.Uses[fun]
	case *ast.SelectorExpr:
		obj = info.Uses[fun.Sel]
	}

	switch callee := obj.(type) {
	case *types.Builtin:
		switch callee.Name() {
		case "make":
			rep(call.Pos(), "make allocates; preallocate and reuse")
		case "new":
			rep(call.Pos(), "new allocates; reuse pooled or caller-owned storage")
		case "append":
			if len(call.Args) > 0 && !reusableAppendDest(info, n, call.Args[0]) {
				rep(call.Pos(), "append to a freshly made or unknown buffer may grow and allocate; "+
					"append only to caller-provided or field-rooted storage")
			}
		}
		ac.checkArgBoxing(n, call, rep)
		return
	case *types.Func:
		sig, _ := callee.Type().(*types.Signature)
		if sig != nil && sig.Recv() != nil && types.IsInterface(sig.Recv().Type()) {
			rep(call.Pos(), "interface method call %s cannot be proven allocation-free; devirtualize on the hot path",
				callee.Name())
			return
		}
		if node := ac.prog.Graph.NodeOf(callee); node != nil && node.Decl != nil {
			ac.checkArgBoxing(n, call, rep) // callee body is walked via its edge
			return
		}
		pkgPath := ""
		if callee.Pkg() != nil {
			pkgPath = callee.Pkg().Path()
		}
		if !allocAllowedPkgs[pkgPath] {
			rep(call.Pos(), "call to %s.%s is outside the allocation-free allowlist "+
				"(encoding/binary, math/bits, sync/atomic)", pkgPath, callee.Name())
			return
		}
		ac.checkArgBoxing(n, call, rep)
		return
	}
	// No static callee object: a call through a function value, which
	// the hot-path walk cannot follow.
	rep(call.Pos(), "call through a function value cannot be proven allocation-free; "+
		"call the target directly on the hot path")
}

func (ac *allocChecker) checkConversion(n *FuncNode, to types.Type, call *ast.CallExpr, rep func(token.Pos, string, ...any)) {
	info := n.Pkg.TypesInfo
	from := typeOf(info, call.Args[0])
	if from == nil {
		return
	}
	toU, fromU := to.Underlying(), from.Underlying()
	if isString(toU) && isByteOrRuneSlice(fromU) {
		rep(call.Pos(), "[]byte-to-string conversion copies and allocates")
	}
	if isByteOrRuneSlice(toU) && isString(fromU) {
		rep(call.Pos(), "string-to-slice conversion copies and allocates")
	}
	if types.IsInterface(to) && !types.IsInterface(from) {
		rep(call.Pos(), "conversion to interface boxes the value")
	}
}

// reusableAppendDest reports whether the append destination follows the
// reuse discipline: a parameter or receiver (the caller owns the
// backing array), a struct field (the object owns it), or a local
// derived from either by re-slicing (the kept := e.events[:0] pattern).
func reusableAppendDest(info *types.Info, n *FuncNode, dest ast.Expr) bool {
	var rootedOK func(e ast.Expr, depth int) bool
	rootedOK = func(e ast.Expr, depth int) bool {
		if depth > 8 {
			return false
		}
		switch e := ast.Unparen(e).(type) {
		case *ast.SelectorExpr:
			s, ok := info.Selections[e]
			return ok && s.Kind() == types.FieldVal
		case *ast.CallExpr:
			// kept = append(kept, ev): the local's latest binding is the
			// append itself — the storage is whatever the first argument
			// was rooted in.
			if id, ok := ast.Unparen(e.Fun).(*ast.Ident); ok && len(e.Args) > 0 {
				if b, ok := info.Uses[id].(*types.Builtin); ok && b.Name() == "append" {
					return rootedOK(e.Args[0], depth+1)
				}
			}
			return false
		case *ast.SliceExpr:
			return rootedOK(e.X, depth+1)
		case *ast.IndexExpr:
			return rootedOK(e.X, depth+1)
		case *ast.Ident:
			obj, _ := info.Uses[e].(*types.Var)
			if obj == nil {
				return false
			}
			if isParamOf(info, n, obj) {
				return true
			}
			// A local: trace its bindings, latest-first. A self-extending
			// binding (out = append(out, …)) keeps whatever rooting the
			// variable already had, so it is skipped in favor of the
			// binding before it.
			var bounds []ast.Expr
			ast.Inspect(n.Body, func(x ast.Node) bool {
				as, ok := x.(*ast.AssignStmt)
				if !ok || as.Pos() >= e.Pos() {
					return true
				}
				for i, lhs := range as.Lhs {
					if id, ok := ast.Unparen(lhs).(*ast.Ident); ok && i < len(as.Rhs) {
						if info.Defs[id] == obj || info.Uses[id] == obj {
							bounds = append(bounds, as.Rhs[i])
						}
					}
				}
				return true
			})
			for k := len(bounds) - 1; k >= 0; k-- {
				if selfAppend(info, bounds[k], obj) {
					continue
				}
				return rootedOK(bounds[k], depth+1)
			}
			return false
		}
		return false
	}
	return rootedOK(dest, 0)
}

// selfAppend reports whether rhs is append(obj, …) — a binding that
// extends obj's existing storage rather than replacing it.
func selfAppend(info *types.Info, rhs ast.Expr, obj *types.Var) bool {
	call, ok := ast.Unparen(rhs).(*ast.CallExpr)
	if !ok || len(call.Args) == 0 {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	if b, ok := info.Uses[id].(*types.Builtin); !ok || b.Name() != "append" {
		return false
	}
	arg, ok := ast.Unparen(call.Args[0]).(*ast.Ident)
	return ok && (info.Uses[arg] == obj || info.Defs[arg] == obj)
}

// isParamOf reports whether obj is a parameter or receiver of n.
func isParamOf(info *types.Info, n *FuncNode, obj *types.Var) bool {
	var fields []*ast.Field
	if n.Decl != nil {
		if n.Decl.Recv != nil {
			fields = append(fields, n.Decl.Recv.List...)
		}
		if n.Decl.Type.Params != nil {
			fields = append(fields, n.Decl.Type.Params.List...)
		}
	} else if n.Lit != nil && n.Lit.Type.Params != nil {
		fields = append(fields, n.Lit.Type.Params.List...)
	}
	for _, f := range fields {
		for _, name := range f.Names {
			if info.Defs[name] == obj {
				return true
			}
		}
	}
	return false
}

// checkArgBoxing flags concrete values passed into interface-typed
// parameters.
func (ac *allocChecker) checkArgBoxing(n *FuncNode, call *ast.CallExpr, rep func(token.Pos, string, ...any)) {
	info := n.Pkg.TypesInfo
	tv, ok := info.Types[ast.Unparen(call.Fun)]
	if !ok || tv.Type == nil {
		return
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case i < params.Len()-1 || (i < params.Len() && !sig.Variadic()):
			pt = params.At(i).Type()
		case sig.Variadic() && params.Len() > 0:
			if sl, ok := params.At(params.Len() - 1).Type().(*types.Slice); ok {
				pt = sl.Elem()
			}
		}
		if pt != nil {
			ac.checkBoxed(n, arg, pt, rep, "argument")
		}
	}
}

func (ac *allocChecker) checkAssignBoxing(n *FuncNode, as *ast.AssignStmt, rep func(token.Pos, string, ...any)) {
	info := n.Pkg.TypesInfo
	if len(as.Lhs) != len(as.Rhs) {
		return
	}
	for i := range as.Lhs {
		lt := typeOf(info, as.Lhs[i])
		if lt != nil {
			ac.checkBoxed(n, as.Rhs[i], lt, rep, "assignment")
		}
	}
}

func (ac *allocChecker) checkReturnBoxing(n *FuncNode, ret *ast.ReturnStmt, rep func(token.Pos, string, ...any)) {
	sig := nodeSignature(n)
	if sig == nil || sig.Results().Len() != len(ret.Results) {
		return
	}
	for i, res := range ret.Results {
		ac.checkBoxed(n, res, sig.Results().At(i).Type(), rep, "return")
	}
}

func nodeSignature(n *FuncNode) *types.Signature {
	if n.Obj != nil {
		sig, _ := n.Obj.Type().(*types.Signature)
		return sig
	}
	if n.Lit != nil {
		if tv, ok := n.Pkg.TypesInfo.Types[n.Lit]; ok && tv.Type != nil {
			sig, _ := tv.Type.Underlying().(*types.Signature)
			return sig
		}
	}
	return nil
}

// checkBoxed reports a concrete (non-interface, non-nil) value flowing
// into an interface-typed slot.
func (ac *allocChecker) checkBoxed(n *FuncNode, val ast.Expr, slot types.Type, rep func(token.Pos, string, ...any), what string) {
	if !types.IsInterface(slot) {
		return
	}
	tv, ok := n.Pkg.TypesInfo.Types[val]
	if !ok || tv.Type == nil || tv.IsNil() || types.IsInterface(tv.Type) {
		return
	}
	rep(val.Pos(), "%s boxes a concrete %s into an interface, which allocates", what, tv.Type.String())
}

func typeOf(info *types.Info, e ast.Expr) types.Type {
	if tv, ok := info.Types[e]; ok && tv.Type != nil {
		return tv.Type
	}
	return types.Typ[types.Invalid]
}

func isStringType(info *types.Info, e ast.Expr) bool {
	return isString(typeOf(info, e).Underlying())
}

func isString(t types.Type) bool {
	b, ok := t.(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	sl, ok := t.(*types.Slice)
	if !ok {
		return false
	}
	b, ok := sl.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune || b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}
