package analysis

// output.go — machine-readable diagnostic encodings and the baseline.
//
// Three consumers beyond the terminal: CI code-scanning UIs ingest SARIF
// 2.1.0, scripts ingest the line-oriented JSON, and the baseline file
// lets a tree with known, accepted findings fail only on NEW ones.
// Baseline entries are keyed by (analyzer, file, message) — deliberately
// not by line, so unrelated edits that shift a finding up or down do not
// resurrect it.

import (
	"encoding/json"
	"fmt"
	"go/token"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// A JSONDiagnostic is the wire form of one finding.
type JSONDiagnostic struct {
	Analyzer string `json:"analyzer"`
	// File is module-root-relative with forward slashes.
	File    string `json:"file"`
	Line    int    `json:"line"`
	Column  int    `json:"column"`
	Message string `json:"message"`
}

func toJSONDiagnostics(fset *token.FileSet, modRoot string, diags []Diagnostic) []JSONDiagnostic {
	out := make([]JSONDiagnostic, 0, len(diags))
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		out = append(out, JSONDiagnostic{
			Analyzer: d.Analyzer,
			File:     relPath(modRoot, pos.Filename),
			Line:     pos.Line,
			Column:   pos.Column,
			Message:  d.Message,
		})
	}
	return out
}

// relPath makes filename module-root-relative with forward slashes, so
// baselines and SARIF travel between machines and CI runners.
func relPath(modRoot, filename string) string {
	if modRoot != "" {
		if rel, err := filepath.Rel(modRoot, filename); err == nil && !strings.HasPrefix(rel, "..") {
			return filepath.ToSlash(rel)
		}
	}
	return filepath.ToSlash(filename)
}

// WriteJSON encodes the diagnostics as an indented JSON array.
func WriteJSON(w io.Writer, fset *token.FileSet, modRoot string, diags []Diagnostic) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(toJSONDiagnostics(fset, modRoot, diags))
}

// SARIF 2.1.0 skeleton — the minimal subset code-scanning UIs need: one
// run, one tool with a rule per analyzer, one result per finding.

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri,omitempty"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysicalLocation `json:"physicalLocation"`
}

type sarifPhysicalLocation struct {
	ArtifactLocation sarifArtifactLocation `json:"artifactLocation"`
	Region           sarifRegion           `json:"region"`
}

type sarifArtifactLocation struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

// WriteSARIF encodes the diagnostics as a SARIF 2.1.0 log. Every suite
// analyzer is listed as a rule (plus "rblint" for driver-level directive
// findings) so UIs can show rule metadata even on clean runs.
func WriteSARIF(w io.Writer, fset *token.FileSet, modRoot string, diags []Diagnostic) error {
	var rules []sarifRule
	for _, a := range Analyzers() {
		rules = append(rules, sarifRule{ID: a.Name, ShortDescription: sarifMessage{Text: a.Doc}})
	}
	rules = append(rules, sarifRule{
		ID:               "rblint",
		ShortDescription: sarifMessage{Text: "rblint:ignore directive hygiene"},
	})

	results := make([]sarifResult, 0, len(diags))
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		results = append(results, sarifResult{
			RuleID:  d.Analyzer,
			Level:   "warning",
			Message: sarifMessage{Text: d.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysicalLocation{
					ArtifactLocation: sarifArtifactLocation{URI: relPath(modRoot, pos.Filename)},
					Region:           sarifRegion{StartLine: pos.Line, StartColumn: pos.Column},
				},
			}},
		})
	}

	log := sarifLog{
		Schema:  "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json",
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "rblint", Rules: rules}},
			Results: results,
		}},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(log)
}

// A Baseline is the set of accepted findings. Keys are
// "analyzer\x00file\x00message" — line numbers are excluded on purpose
// (see the file comment).
type Baseline struct {
	entries map[string]bool
}

type baselineEntry struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Message  string `json:"message"`
}

func baselineKey(e baselineEntry) string {
	return e.Analyzer + "\x00" + e.File + "\x00" + e.Message
}

// LoadBaseline reads a baseline file written by WriteBaseline. A missing
// file is not an error: it is the empty baseline.
func LoadBaseline(path string) (*Baseline, error) {
	b := &Baseline{entries: make(map[string]bool)}
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return b, nil
		}
		return nil, err
	}
	var entries []baselineEntry
	if len(data) > 0 {
		if err := json.Unmarshal(data, &entries); err != nil {
			return nil, fmt.Errorf("baseline %s: %w", path, err)
		}
	}
	for _, e := range entries {
		b.entries[baselineKey(e)] = true
	}
	return b, nil
}

// WriteBaseline writes the diagnostics as a sorted, deduplicated
// baseline file.
func WriteBaseline(path string, fset *token.FileSet, modRoot string, diags []Diagnostic) error {
	seen := make(map[string]bool)
	entries := make([]baselineEntry, 0, len(diags))
	for _, d := range diags {
		e := baselineEntry{
			Analyzer: d.Analyzer,
			File:     relPath(modRoot, fset.Position(d.Pos).Filename),
			Message:  d.Message,
		}
		if k := baselineKey(e); !seen[k] {
			seen[k] = true
			entries = append(entries, e)
		}
	}
	sort.Slice(entries, func(i, j int) bool {
		return baselineKey(entries[i]) < baselineKey(entries[j])
	})
	data, err := json.MarshalIndent(entries, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// Filter splits diags into the findings not covered by the baseline
// (new) and those covered (known).
func (b *Baseline) Filter(fset *token.FileSet, modRoot string, diags []Diagnostic) (fresh, known []Diagnostic) {
	for _, d := range diags {
		e := baselineEntry{
			Analyzer: d.Analyzer,
			File:     relPath(modRoot, fset.Position(d.Pos).Filename),
			Message:  d.Message,
		}
		if b.entries[baselineKey(e)] {
			known = append(known, d)
		} else {
			fresh = append(fresh, d)
		}
	}
	return fresh, known
}

// ApplyFixes applies the first suggested fix of every diagnostic that
// has one, editing files in place. Edits within a file are applied in
// descending offset order so earlier edits don't invalidate later
// offsets; overlapping edits are skipped. It returns the number of
// fixes applied.
func ApplyFixes(fset *token.FileSet, diags []Diagnostic) (int, error) {
	type edit struct {
		start, end int
		newText    string
	}
	perFile := make(map[string][]edit)
	for _, d := range diags {
		if len(d.SuggestedFixes) == 0 {
			continue
		}
		for _, te := range d.SuggestedFixes[0].Edits {
			start, end := fset.Position(te.Pos), fset.Position(te.End)
			if start.Filename == "" || start.Filename != end.Filename {
				continue
			}
			perFile[start.Filename] = append(perFile[start.Filename],
				edit{start.Offset, end.Offset, te.NewText})
		}
	}
	applied := 0
	files := make([]string, 0, len(perFile))
	for f := range perFile {
		files = append(files, f)
	}
	sort.Strings(files)
	for _, f := range files {
		edits := perFile[f]
		sort.Slice(edits, func(i, j int) bool { return edits[i].start > edits[j].start })
		data, err := os.ReadFile(f)
		if err != nil {
			return applied, err
		}
		prevStart := len(data) + 1
		for _, e := range edits {
			if e.start < 0 || e.end > len(data) || e.end > prevStart || e.start > e.end {
				continue // out of range or overlapping a previous edit
			}
			data = append(data[:e.start], append([]byte(e.newText), data[e.end:]...)...)
			prevStart = e.start
			applied++
		}
		if err := os.WriteFile(f, data, 0o644); err != nil {
			return applied, err
		}
	}
	return applied, nil
}
