package analysis

import (
	"go/token"
	"math"
	"math/big"
	"testing"
)

// top/bot shorthands for the golden tables; infinities are spelled via
// the exported constructors so the tables read like the String() output
// they are compared against.
var (
	negInf = int64(math.MinInt64)
	posInf = int64(math.MaxInt64)
)

func TestIntervalTransferGolden(t *testing.T) {
	tests := []struct {
		name string
		got  Interval
		want string
	}{
		// Lattice operations.
		{"join/disjoint", IvJoin(IvRange(0, 2), IvRange(5, 9)), "[0,9]"},
		{"join/bottom-identity", IvJoin(IvBottom, IvRange(3, 4)), "[3,4]"},
		{"meet/overlap", IvMeet(IvRange(0, 5), IvRange(3, 9)), "[3,5]"},
		{"meet/disjoint-is-bottom", IvMeet(IvRange(0, 2), IvRange(5, 9)), "bot"},
		{"meet/top-identity", IvMeet(IvTop, IvRange(-1, 1)), "[-1,1]"},

		// Addition saturates instead of wrapping: a bound that lands on
		// MaxInt64 is the +inf sentinel, read as "may overflow".
		{"add/finite", IvAdd(IvRange(1, 2), IvRange(10, 20)), "[11,22]"},
		{"add/saturates", IvAdd(IvConst(math.MaxInt64 - 1), IvRange(1, 5)), "[9223372036854775807,+inf]"},
		{"add/unbounded", IvAdd(IvRange(0, posInf), IvConst(1)), "[1,+inf]"},
		{"sub/finite", IvSub(IvRange(5, 7), IvRange(1, 2)), "[3,6]"},
		{"sub/anti-monotone", IvSub(IvConst(0), IvRange(0, posInf)), "[-inf,0]"},
		{"neg/flips", IvNeg(IvRange(-3, 7)), "[-7,3]"},
		{"neg/neginf-saturates", IvNeg(IvRange(negInf, 1)), "[-1,+inf]"},

		// Multiplication takes corner products.
		{"mul/signs", IvMul(IvRange(-2, 3), IvRange(4, 5)), "[-10,15]"},
		{"mul/both-negative", IvMul(IvRange(-3, -2), IvRange(-5, -4)), "[8,15]"},
		{"mul/saturates", IvMul(IvConst(math.MaxInt64 / 2), IvConst(4)), "[9223372036854775807,+inf]"},

		// Division is truncated and the divisor is sign-split; the zero
		// slice of the divisor contributes nothing (it panics at runtime).
		{"div/truncates-toward-zero", IvDiv(IvRange(-7, 7), IvConst(2)), "[-3,3]"},
		{"div/negative-divisor", IvDiv(IvRange(6, 10), IvConst(-3)), "[-3,-2]"},
		{"div/straddling-divisor", IvDiv(IvConst(12), IvRange(-2, 3)), "[-12,12]"},
		{"div/by-zero-is-bottom", IvDiv(IvRange(1, 2), IvConst(0)), "bot"},
		{"div/quorum-shape", IvDiv(IvRange(2, 40), IvConst(2)), "[1,20]"},

		// Remainder keeps the dividend's sign, magnitude below |divisor|.
		{"mod/nonneg-dividend", IvMod(IvRange(0, 100), IvConst(8)), "[0,7]"},
		{"mod/small-dividend", IvMod(IvRange(0, 3), IvConst(8)), "[0,3]"},
		{"mod/neg-dividend", IvMod(IvRange(-9, 0), IvConst(4)), "[-3,0]"},
		{"mod/mixed-dividend", IvMod(IvRange(-9, 9), IvConst(4)), "[-3,3]"},
		{"mod/by-zero-is-bottom", IvMod(IvRange(1, 2), IvConst(0)), "bot"},

		// Shifts clamp the count into [0, 63] and saturate on overflow.
		{"shl/finite", IvShl(IvRange(1, 3), IvConst(4)), "[16,48]"},
		{"shl/count-range", IvShl(IvConst(1), IvRange(0, 3)), "[1,8]"},
		{"shl/saturates", IvShl(IvConst(1), IvConst(63)), "[9223372036854775807,+inf]"},
		{"shr/finite", IvShr(IvRange(16, 48), IvConst(4)), "[1,3]"},
		{"shr/arithmetic", IvShr(IvRange(-16, 16), IvConst(2)), "[-4,4]"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.got.String(); got != tt.want {
				t.Errorf("got %s, want %s", got, tt.want)
			}
		})
	}
}

func TestIntervalWidenNarrowGolden(t *testing.T) {
	tests := []struct {
		name string
		got  Interval
		want string
	}{
		// Widening jumps a growing bound straight to its infinity so loop
		// fixpoints terminate; stable bounds are kept.
		{"widen/stable", IvWiden(IvRange(0, 10), IvRange(0, 10)), "[0,10]"},
		{"widen/upper-grows", IvWiden(IvRange(0, 1), IvRange(0, 2)), "[0,+inf]"},
		{"widen/lower-grows", IvWiden(IvRange(0, 5), IvRange(-1, 5)), "[-inf,5]"},
		{"widen/both-grow", IvWiden(IvConst(0), IvRange(-1, 1)), "[-inf,+inf]"},
		{"widen/first-iterate", IvWiden(IvBottom, IvRange(3, 4)), "[3,4]"},

		// Narrowing recovers precision after widening: only infinite
		// bounds are refined, finite ones are trusted.
		{"narrow/recovers-upper", IvNarrow(IvRange(0, posInf), IvRange(0, 9)), "[0,9]"},
		{"narrow/keeps-finite", IvNarrow(IvRange(0, 10), IvRange(2, 5)), "[0,10]"},
		{"narrow/recovers-lower", IvNarrow(IvRange(negInf, 10), IvRange(-3, 10)), "[-3,10]"},
		{"narrow/still-infinite", IvNarrow(IvTop, IvRange(negInf, 7)), "[-inf,7]"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.got.String(); got != tt.want {
				t.Errorf("got %s, want %s", got, tt.want)
			}
		})
	}
}

func TestIntervalNarrowCmpGolden(t *testing.T) {
	tests := []struct {
		name         string
		op           token.Token
		a, b         Interval
		wantA, wantB string
	}{
		{"lss", token.LSS, IvRange(0, 10), IvRange(5, 7), "[0,6]", "[5,7]"},
		{"leq", token.LEQ, IvRange(0, 10), IvRange(5, 7), "[0,7]", "[5,7]"},
		{"gtr", token.GTR, IvRange(0, 10), IvConst(3), "[4,10]", "[3,3]"},
		{"geq", token.GEQ, IvRange(0, 10), IvConst(3), "[3,10]", "[3,3]"},
		{"eql", token.EQL, IvRange(0, 10), IvRange(8, 20), "[8,10]", "[8,10]"},
		{"eql/contradiction", token.EQL, IvRange(0, 2), IvRange(5, 6), "bot", "bot"},
		{"neq/trims-edge", token.NEQ, IvRange(0, 10), IvConst(0), "[1,10]", "[0,0]"},
		{"neq/interior-kept", token.NEQ, IvRange(0, 10), IvConst(5), "[0,10]", "[5,5]"},
		{"gtr/validate-guard", token.GTR, IvTop, IvConst(0), "[1,+inf]", "[0,0]"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			gotA, gotB := IvNarrowCmp(tt.op, tt.a, tt.b)
			if gotA.String() != tt.wantA || gotB.String() != tt.wantB {
				t.Errorf("IvNarrowCmp(%v, %s, %s) = %s, %s; want %s, %s",
					tt.op, tt.a, tt.b, gotA, gotB, tt.wantA, tt.wantB)
			}
		})
	}
}

// TestProveNonNegQuorumForms exercises the relational half on the exact
// inequalities quorumlint discharges: the production thresholds are
// provable and the classic off-by-ones are not.
func TestProveNonNegQuorumForms(t *testing.T) {
	build := func(fBound Interval, plusOne bool) (*symtab, *aff, *aff, *aff) {
		st := newSymtab()
		n := st.setVar("n", IvRange(1, 1<<31))
		f := st.setVar("f", fBound)
		eq := st.div(affAdd(n, f), 2) // (n+f)/2
		if plusOne {
			eq = affAdd(eq, affConst(1))
		}
		return st, n, f, eq
	}

	t.Run("intersection/provable", func(t *testing.T) {
		st, n, f, eq := build(IvRange(0, 1<<20), true)
		g := affSub(affSub(affSub(affScale(eq, big.NewRat(2, 1)), n), f), affConst(1))
		if !st.proveNonNeg(g) {
			t.Error("2·((n+f)/2+1) − n − f − 1 ≥ 0 should be provable")
		}
	})
	t.Run("intersection/off-by-one-refuted", func(t *testing.T) {
		st, n, f, eq := build(IvRange(0, 1<<20), false)
		g := affSub(affSub(affSub(affScale(eq, big.NewRat(2, 1)), n), f), affConst(1))
		if st.proveNonNeg(g) {
			t.Error("2·((n+f)/2) − n − f − 1 ≥ 0 must not be provable")
		}
	})
	t.Run("default-budget/self-cancel", func(t *testing.T) {
		st := newSymtab()
		n := st.setVar("n", IvRange(1, 1<<31))
		f := st.div(affSub(n, affConst(1)), 3)
		bound := st.div(affSub(n.clone(), affConst(1)), 3)
		if !st.proveNonNeg(affSub(bound, f)) {
			t.Error("⌊(n−1)/3⌋ − ⌊(n−1)/3⌋ ≥ 0 should be provable via atom interning")
		}
	})
	t.Run("overflow/unbounded-budget", func(t *testing.T) {
		st := newSymtab()
		n := st.setVar("n", IvRange(1, 1<<31))
		f := st.setVar("f", IvRange(0, math.MaxInt64))
		if st.fitsInt64(affAdd(n, f)) {
			t.Error("n + f with f unbounded must not be provably within int64")
		}
	})
	t.Run("overflow/bounded-budget", func(t *testing.T) {
		st := newSymtab()
		n := st.setVar("n", IvRange(1, 1<<31))
		f := st.setVar("f", IvRange(0, 1<<20))
		if !st.fitsInt64(affAdd(n, f)) {
			t.Error("n + f with both bounded should be provably within int64")
		}
	})
}
