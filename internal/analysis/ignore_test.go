package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

var ignoreTestValid = map[string]bool{"detlint": true, "locklint": true}

func parseIgnoreSrc(t *testing.T, src string) (*token.FileSet, []*ast.File) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "ignoretest.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return fset, []*ast.File{f}
}

// lineStart returns a Pos on the given 1-based line of the single test
// file, for fabricating diagnostics.
func lineStart(t *testing.T, fset *token.FileSet, files []*ast.File, line int) token.Pos {
	t.Helper()
	return fset.File(files[0].Pos()).LineStart(line)
}

func TestIgnoreMissingReason(t *testing.T) {
	fset, files := parseIgnoreSrc(t, `package p

//rblint:ignore detlint
func f() {}
`)
	ignores, problems := parseIgnores(fset, files, ignoreTestValid)
	if len(ignores) != 0 {
		t.Fatalf("malformed directive parsed as valid: %+v", ignores[0])
	}
	if len(problems) != 1 || !strings.Contains(problems[0].Message, "missing its mandatory justification") {
		t.Fatalf("problems = %+v, want one missing-justification diagnostic", problems)
	}
}

func TestIgnoreEmptyBody(t *testing.T) {
	fset, files := parseIgnoreSrc(t, `package p

//rblint:ignore
func f() {}
`)
	ignores, problems := parseIgnores(fset, files, ignoreTestValid)
	if len(ignores) != 0 {
		t.Fatalf("empty directive parsed as valid")
	}
	if len(problems) != 1 || !strings.Contains(problems[0].Message, "needs an analyzer name and a justification") {
		t.Fatalf("problems = %+v, want one usage diagnostic", problems)
	}
}

func TestIgnoreUnknownAnalyzer(t *testing.T) {
	fset, files := parseIgnoreSrc(t, `package p

//rblint:ignore nosuchlint the reason does not save it
func f() {}
`)
	ignores, problems := parseIgnores(fset, files, ignoreTestValid)
	if len(ignores) != 0 {
		t.Fatalf("directive with unknown analyzer parsed as valid")
	}
	if len(problems) != 1 || !strings.Contains(problems[0].Message, `unknown analyzer "nosuchlint"`) {
		t.Fatalf("problems = %+v, want one unknown-analyzer diagnostic", problems)
	}
}

func TestIgnoreUnrelatedCommentsSkipped(t *testing.T) {
	fset, files := parseIgnoreSrc(t, `package p

// plain comment
//rblint:ignoreX not our directive (no separator after prefix)
func f() {}
`)
	ignores, problems := parseIgnores(fset, files, ignoreTestValid)
	if len(ignores) != 0 || len(problems) != 0 {
		t.Fatalf("ignores=%v problems=%v, want none", ignores, problems)
	}
}

func TestIgnoreSuppressesOwnAndNextLine(t *testing.T) {
	fset, files := parseIgnoreSrc(t, `package p

//rblint:ignore detlint justified: next-line coverage
func f() {}

func g() {} //rblint:ignore detlint justified: same-line coverage
`)
	ignores, problems := parseIgnores(fset, files, ignoreTestValid)
	if len(problems) != 0 || len(ignores) != 2 {
		t.Fatalf("ignores=%d problems=%v, want 2 and none", len(ignores), problems)
	}
	diags := []Diagnostic{
		{Analyzer: "detlint", Pos: lineStart(t, fset, files, 4), Message: "on the line after a standalone directive"},
		{Analyzer: "detlint", Pos: lineStart(t, fset, files, 6), Message: "on an inline directive's own line"},
	}
	out := applyIgnores(fset, ignores, diags)
	if len(out) != 0 {
		t.Fatalf("diagnostics survived suppression: %+v", out)
	}
}

func TestIgnoreStale(t *testing.T) {
	fset, files := parseIgnoreSrc(t, `package p

//rblint:ignore detlint justified but pointless: nothing here to suppress
func f() {}
`)
	ignores, problems := parseIgnores(fset, files, ignoreTestValid)
	if len(problems) != 0 || len(ignores) != 1 {
		t.Fatalf("ignores=%d problems=%v, want 1 and none", len(ignores), problems)
	}
	out := applyIgnores(fset, ignores, nil)
	if len(out) != 1 || !strings.Contains(out[0].Message, "stale rblint:ignore directive") {
		t.Fatalf("out = %+v, want one stale-directive diagnostic", out)
	}
}

// TestIgnoreLastLineOfFile is the regression test for the end-of-file
// edge case: a directive on the file's final line has no next line to
// cover, so it must reach back to the preceding line instead of being
// reported stale.
func TestIgnoreLastLineOfFile(t *testing.T) {
	// No trailing newline: the directive's line IS the last line.
	fset, files := parseIgnoreSrc(t, `package p

func f() {}
//rblint:ignore detlint justified: suppresses the line above at EOF`)
	ignores, problems := parseIgnores(fset, files, ignoreTestValid)
	if len(problems) != 0 || len(ignores) != 1 {
		t.Fatalf("ignores=%d problems=%v, want 1 and none", len(ignores), problems)
	}
	if !ignores[0].LastLine {
		t.Fatalf("directive on line %d not recognized as last-line (LineCount=%d)",
			ignores[0].Line, fset.File(files[0].Pos()).LineCount())
	}
	diags := []Diagnostic{
		{Analyzer: "detlint", Pos: lineStart(t, fset, files, 3), Message: "finding on the line before an EOF directive"},
	}
	out := applyIgnores(fset, ignores, diags)
	if len(out) != 0 {
		t.Fatalf("diagnostics survived an end-of-file directive: %+v", out)
	}
}

// TestIgnoreLastLineStillStaleWhenUnused keeps the widened coverage
// honest: an EOF directive with nothing to suppress anywhere nearby is
// still stale.
func TestIgnoreLastLineStillStaleWhenUnused(t *testing.T) {
	fset, files := parseIgnoreSrc(t, `package p

func f() {}
//rblint:ignore detlint justified wording, but nothing here fires`)
	ignores, problems := parseIgnores(fset, files, ignoreTestValid)
	if len(problems) != 0 || len(ignores) != 1 {
		t.Fatalf("ignores=%d problems=%v, want 1 and none", len(ignores), problems)
	}
	out := applyIgnores(fset, ignores, nil)
	if len(out) != 1 || !strings.Contains(out[0].Message, "stale rblint:ignore directive") {
		t.Fatalf("out = %+v, want one stale-directive diagnostic", out)
	}
	if len(out[0].SuggestedFixes) != 1 || len(out[0].SuggestedFixes[0].Edits) != 1 {
		t.Fatalf("stale diagnostic carries no deletion fix: %+v", out[0])
	}
	edit := out[0].SuggestedFixes[0].Edits[0]
	if edit.Pos != ignores[0].Pos || edit.End != ignores[0].End || edit.NewText != "" {
		t.Fatalf("deletion fix edits = %+v, want the directive's own extent", edit)
	}
}

func TestIgnoreWrongAnalyzerDoesNotSuppress(t *testing.T) {
	fset, files := parseIgnoreSrc(t, `package p

//rblint:ignore locklint justified, but the finding below is detlint's
func f() {}
`)
	ignores, problems := parseIgnores(fset, files, ignoreTestValid)
	if len(problems) != 0 || len(ignores) != 1 {
		t.Fatalf("ignores=%d problems=%v, want 1 and none", len(ignores), problems)
	}
	diags := []Diagnostic{
		{Analyzer: "detlint", Pos: lineStart(t, fset, files, 4), Message: "a detlint finding"},
	}
	out := applyIgnores(fset, ignores, diags)
	// The detlint finding survives AND the locklint directive is stale.
	var sawFinding, sawStale bool
	for _, d := range out {
		if d.Analyzer == "detlint" {
			sawFinding = true
		}
		if strings.Contains(d.Message, "stale rblint:ignore directive") {
			sawStale = true
		}
	}
	if len(out) != 2 || !sawFinding || !sawStale {
		t.Fatalf("out = %+v, want the surviving finding plus a stale-directive diagnostic", out)
	}
}

func TestIgnoreMultipleAnalyzers(t *testing.T) {
	fset, files := parseIgnoreSrc(t, `package p

//rblint:ignore detlint,locklint justified: one directive, two analyzers
func f() {}
`)
	ignores, problems := parseIgnores(fset, files, ignoreTestValid)
	if len(problems) != 0 || len(ignores) != 1 {
		t.Fatalf("ignores=%d problems=%v, want 1 and none", len(ignores), problems)
	}
	diags := []Diagnostic{
		{Analyzer: "detlint", Pos: lineStart(t, fset, files, 4), Message: "detlint finding"},
		{Analyzer: "locklint", Pos: lineStart(t, fset, files, 4), Message: "locklint finding"},
	}
	out := applyIgnores(fset, ignores, diags)
	if len(out) != 0 {
		t.Fatalf("diagnostics survived a multi-analyzer directive: %+v", out)
	}
}
