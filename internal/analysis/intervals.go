package analysis

// intervals.go — the abstract-interpretation layer: an integer interval
// domain with the usual transfer functions, a forward interval analysis
// over the CFG (narrowing at comparisons, widening at loop heads,
// one-level memoized call summaries like dataflow.go), and a small
// relational extension — affine forms over symbolic variables with
// interned truncated-division atoms — strong enough to prove the quorum
// inequalities quorumlint checks (see quorumlint.go) for *all* admitted
// parameter values, not just sampled ones.
//
// The interval half is deliberately classical: values are [Lo, Hi] pairs
// of int64 with math.MinInt64/MaxInt64 as -inf/+inf sentinels, transfer
// functions saturate toward the sentinels (saturation = "may exceed the
// representable range", which the overflow checks treat as a failure to
// prove), joins/meets/widening/narrowing are the textbook operations,
// and branch conditions narrow both operands.
//
// The relational half represents values as affine forms c₀ + Σ cᵢ·vᵢ
// with exact rational coefficients. Truncated integer division by a
// positive constant is interned as an opaque *atom* variable whose
// interval bounds follow from its numerator (Go's truncated division is
// monotone for positive divisors). A proof obligation `form ≥ 0` may
// *expand* an atom a = A/c into (A − r)/c with a fresh slack variable
// r ∈ [0, c−1] — exact when A ≥ 0 — which lets symbolically equal parts
// of quorum expressions cancel; the prover enumerates per-atom
// expand/opaque strategies and succeeds if any combination bounds the
// form's minimum at ≥ 0.

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"math"
	"math/big"
	"sort"
	"strings"
)

const (
	ivNegInf = math.MinInt64
	ivPosInf = math.MaxInt64
)

// An Interval is a set of int64 values [Lo, Hi]. Lo == math.MinInt64
// means unbounded below, Hi == math.MaxInt64 unbounded above; Lo > Hi is
// the empty interval (bottom).
type Interval struct {
	Lo, Hi int64
}

// IvTop is the unbounded interval.
var IvTop = Interval{ivNegInf, ivPosInf}

// IvBottom is the empty interval.
var IvBottom = Interval{1, 0}

// IvConst is the singleton interval {c}.
func IvConst(c int64) Interval { return Interval{c, c} }

// IvRange is the interval [lo, hi].
func IvRange(lo, hi int64) Interval { return Interval{lo, hi} }

// IsBottom reports whether the interval is empty.
func (iv Interval) IsBottom() bool { return iv.Lo > iv.Hi }

// IsTop reports whether the interval is unbounded on both sides.
func (iv Interval) IsTop() bool { return iv.Lo == ivNegInf && iv.Hi == ivPosInf }

// Const reports the single value of a singleton interval.
func (iv Interval) Const() (int64, bool) {
	if iv.Lo == iv.Hi && iv.Lo != ivNegInf && iv.Lo != ivPosInf {
		return iv.Lo, true
	}
	return 0, false
}

// String renders the interval for goldens: "[2,5]", "[0,+inf]", "bot".
func (iv Interval) String() string {
	if iv.IsBottom() {
		return "bot"
	}
	lo, hi := "-inf", "+inf"
	if iv.Lo != ivNegInf {
		lo = fmt.Sprintf("%d", iv.Lo)
	}
	if iv.Hi != ivPosInf {
		hi = fmt.Sprintf("%d", iv.Hi)
	}
	return "[" + lo + "," + hi + "]"
}

// satAdd adds with sentinel propagation and saturation on overflow.
func satAdd(a, b int64) int64 {
	if a == ivNegInf || b == ivNegInf {
		return ivNegInf
	}
	if a == ivPosInf || b == ivPosInf {
		return ivPosInf
	}
	s := a + b
	if b > 0 && s < a {
		return ivPosInf
	}
	if b < 0 && s > a {
		return ivNegInf
	}
	return s
}

// satNeg negates with sentinel swap (-MinInt64 saturates).
func satNeg(a int64) int64 {
	switch a {
	case ivNegInf:
		return ivPosInf
	case ivPosInf:
		return ivNegInf
	}
	return -a
}

func satSub(a, b int64) int64 { return satAdd(a, satNeg(b)) }

// satMul multiplies exactly via big.Int and saturates out-of-range
// products (0 × inf is 0: the sentinel stands for "some huge value").
func satMul(a, b int64) int64 {
	if a == 0 || b == 0 {
		return 0
	}
	if a == ivNegInf || a == ivPosInf || b == ivNegInf || b == ivPosInf {
		if (a > 0) == (b > 0) {
			return ivPosInf
		}
		return ivNegInf
	}
	p := new(big.Int).Mul(big.NewInt(a), big.NewInt(b))
	return clampBig(p)
}

func clampBig(v *big.Int) int64 {
	if !v.IsInt64() {
		if v.Sign() > 0 {
			return ivPosInf
		}
		return ivNegInf
	}
	return v.Int64()
}

// satQuo is Go's truncated division on bounds: a sentinel dividend stays
// a sentinel (sign-adjusted by the divisor), a sentinel divisor pulls a
// finite dividend to 0.
func satQuo(a, b int64) int64 {
	aInf := a == ivNegInf || a == ivPosInf
	bInf := b == ivNegInf || b == ivPosInf
	switch {
	case aInf:
		if (a > 0) == (b > 0) {
			return ivPosInf
		}
		return ivNegInf
	case bInf:
		return 0
	case b == 0:
		return 0 // callers split out the zero divisor before asking
	}
	return a / b
}

func min4(a, b, c, d int64) int64 { return min(min(a, b), min(c, d)) }
func max4(a, b, c, d int64) int64 { return max(max(a, b), max(c, d)) }

// IvJoin is the least upper bound (interval hull).
func IvJoin(a, b Interval) Interval {
	if a.IsBottom() {
		return b
	}
	if b.IsBottom() {
		return a
	}
	return Interval{min(a.Lo, b.Lo), max(a.Hi, b.Hi)}
}

// IvMeet is the greatest lower bound (intersection).
func IvMeet(a, b Interval) Interval {
	if a.IsBottom() || b.IsBottom() {
		return IvBottom
	}
	m := Interval{max(a.Lo, b.Lo), min(a.Hi, b.Hi)}
	if m.IsBottom() {
		return IvBottom
	}
	return m
}

// IvWiden accelerates convergence at loop heads: a bound that grew since
// the previous iterate jumps straight to its infinity.
func IvWiden(old, next Interval) Interval {
	if old.IsBottom() {
		return next
	}
	if next.IsBottom() {
		return old
	}
	lo, hi := old.Lo, old.Hi
	if next.Lo < lo {
		lo = ivNegInf
	}
	if next.Hi > hi {
		hi = ivPosInf
	}
	return Interval{lo, hi}
}

// IvNarrow recovers precision after widening: an infinite bound of wide
// is replaced by refined's (finite or not); finite bounds are kept.
func IvNarrow(wide, refined Interval) Interval {
	if wide.IsBottom() || refined.IsBottom() {
		return refined
	}
	lo, hi := wide.Lo, wide.Hi
	if lo == ivNegInf {
		lo = refined.Lo
	}
	if hi == ivPosInf {
		hi = refined.Hi
	}
	if lo > hi {
		return wide
	}
	return Interval{lo, hi}
}

// IvAdd, IvSub, IvNeg, IvMul — arithmetic transfer functions.
func IvAdd(a, b Interval) Interval {
	if a.IsBottom() || b.IsBottom() {
		return IvBottom
	}
	return Interval{satAdd(a.Lo, b.Lo), satAdd(a.Hi, b.Hi)}
}

func IvSub(a, b Interval) Interval { return IvAdd(a, IvNeg(b)) }

func IvNeg(a Interval) Interval {
	if a.IsBottom() {
		return IvBottom
	}
	return Interval{satNeg(a.Hi), satNeg(a.Lo)}
}

func IvMul(a, b Interval) Interval {
	if a.IsBottom() || b.IsBottom() {
		return IvBottom
	}
	p1, p2 := satMul(a.Lo, b.Lo), satMul(a.Lo, b.Hi)
	p3, p4 := satMul(a.Hi, b.Lo), satMul(a.Hi, b.Hi)
	return Interval{min4(p1, p2, p3, p4), max4(p1, p2, p3, p4)}
}

// IvDiv is Go's truncated quotient. The divisor is split into its
// negative and positive parts (a division by zero panics at runtime, so
// that slice of the domain contributes nothing); within a sign-fixed
// divisor range the quotient is monotone in each operand, so the
// extremes are at the corners.
func IvDiv(a, b Interval) Interval {
	if a.IsBottom() || b.IsBottom() {
		return IvBottom
	}
	out := IvBottom
	if b.Lo <= -1 {
		out = IvJoin(out, divCorners(a, Interval{b.Lo, min(b.Hi, -1)}))
	}
	if b.Hi >= 1 {
		out = IvJoin(out, divCorners(a, Interval{max(b.Lo, 1), b.Hi}))
	}
	return out
}

func divCorners(a, b Interval) Interval {
	q1, q2 := satQuo(a.Lo, b.Lo), satQuo(a.Lo, b.Hi)
	q3, q4 := satQuo(a.Hi, b.Lo), satQuo(a.Hi, b.Hi)
	return Interval{min4(q1, q2, q3, q4), max4(q1, q2, q3, q4)}
}

// IvMod bounds Go's remainder: the result has the dividend's sign and
// magnitude below max(|b.Lo|, |b.Hi|).
func IvMod(a, b Interval) Interval {
	if a.IsBottom() || b.IsBottom() {
		return IvBottom
	}
	if b.Lo == 0 && b.Hi == 0 {
		return IvBottom // always panics
	}
	m := satSub(max(satNeg(b.Lo), b.Hi), 1)
	if m < 0 {
		m = 0
	}
	lo, hi := satNeg(m), m
	if a.Lo >= 0 {
		lo = 0
		hi = min(hi, a.Hi)
	}
	if a.Hi <= 0 && a.Lo != ivNegInf || a.Hi == 0 {
		hi = min(hi, 0)
		lo = max(lo, a.Lo)
	}
	return Interval{lo, hi}
}

// IvShl is a << k for k clamped to [0, 63] (a negative shift count
// panics; counts past 63 saturate any nonzero operand).
func IvShl(a, k Interval) Interval {
	if a.IsBottom() || k.IsBottom() {
		return IvBottom
	}
	kLo, kHi := clampShift(k.Lo), clampShift(k.Hi)
	c1, c2 := shlSat(a.Lo, kLo), shlSat(a.Lo, kHi)
	c3, c4 := shlSat(a.Hi, kLo), shlSat(a.Hi, kHi)
	return Interval{min4(c1, c2, c3, c4), max4(c1, c2, c3, c4)}
}

// IvShr is a >> k (arithmetic) for k clamped to [0, 63].
func IvShr(a, k Interval) Interval {
	if a.IsBottom() || k.IsBottom() {
		return IvBottom
	}
	kLo, kHi := clampShift(k.Lo), clampShift(k.Hi)
	c1, c2 := shrSat(a.Lo, kLo), shrSat(a.Lo, kHi)
	c3, c4 := shrSat(a.Hi, kLo), shrSat(a.Hi, kHi)
	return Interval{min4(c1, c2, c3, c4), max4(c1, c2, c3, c4)}
}

func clampShift(k int64) int64 { return max(0, min(k, 63)) }

func shlSat(x, k int64) int64 {
	if x == ivNegInf || x == ivPosInf || x == 0 {
		return x
	}
	p := new(big.Int).Lsh(big.NewInt(x), uint(k))
	return clampBig(p)
}

func shrSat(x, k int64) int64 {
	if x == ivNegInf || x == ivPosInf {
		return x
	}
	return x >> uint(k)
}

// IvNarrowCmp refines both operands under the assumption that `a op b`
// holds — the comparison-narrowing step branch transfer applies to the
// taken edge (with the negated operator on the fall-through edge).
func IvNarrowCmp(op token.Token, a, b Interval) (Interval, Interval) {
	if a.IsBottom() || b.IsBottom() {
		return IvBottom, IvBottom
	}
	switch op {
	case token.EQL:
		m := IvMeet(a, b)
		return m, m
	case token.NEQ:
		a2, b2 := a, b
		if c, ok := b.Const(); ok {
			if a.Lo == c {
				a2 = IvMeet(a, Interval{satAdd(c, 1), ivPosInf})
			} else if a.Hi == c {
				a2 = IvMeet(a, Interval{ivNegInf, satSub(c, 1)})
			}
		}
		if c, ok := a.Const(); ok {
			if b.Lo == c {
				b2 = IvMeet(b, Interval{satAdd(c, 1), ivPosInf})
			} else if b.Hi == c {
				b2 = IvMeet(b, Interval{ivNegInf, satSub(c, 1)})
			}
		}
		return a2, b2
	case token.LSS:
		return IvMeet(a, Interval{ivNegInf, satSub(b.Hi, 1)}),
			IvMeet(b, Interval{satAdd(a.Lo, 1), ivPosInf})
	case token.LEQ:
		return IvMeet(a, Interval{ivNegInf, b.Hi}),
			IvMeet(b, Interval{a.Lo, ivPosInf})
	case token.GTR:
		return IvMeet(a, Interval{satAdd(b.Lo, 1), ivPosInf}),
			IvMeet(b, Interval{ivNegInf, satSub(a.Hi, 1)})
	case token.GEQ:
		return IvMeet(a, Interval{b.Lo, ivPosInf}),
			IvMeet(b, Interval{ivNegInf, a.Hi})
	}
	return a, b
}

// negateCmp maps an operator to its logical negation.
func negateCmp(op token.Token) token.Token {
	switch op {
	case token.EQL:
		return token.NEQ
	case token.NEQ:
		return token.EQL
	case token.LSS:
		return token.GEQ
	case token.LEQ:
		return token.GTR
	case token.GTR:
		return token.LEQ
	case token.GEQ:
		return token.LSS
	}
	return token.ILLEGAL
}

// constIntOf folds a typed integer constant expression.
func constIntOf(info *types.Info, e ast.Expr) (int64, bool) {
	tv, ok := info.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.Int {
		return 0, false
	}
	return constant.Int64Val(tv.Value)
}

// isIntType reports whether t is an integer type (signed or unsigned).
func isIntType(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}

// ---------------------------------------------------------------------
// Forward interval analysis over the CFG.

// intervalFacts is one function's fixpoint: the value range of every
// integer-typed expression (joined over all visits) and of the single
// integer result when the function has one.
type intervalFacts struct {
	at  map[ast.Expr]Interval
	ret Interval
}

// ExprInterval returns the inferred range of e, or top when the flow
// analysis never evaluated it.
func (f *intervalFacts) ExprInterval(e ast.Expr) Interval {
	if iv, ok := f.at[e]; ok {
		return iv
	}
	return IvTop
}

type ivEnv map[types.Object]Interval

func (e ivEnv) clone() ivEnv {
	out := make(ivEnv, len(e))
	for k, v := range e {
		out[k] = v
	}
	return out
}

// joinEnv keeps only objects bound on both sides (absent = top).
func joinEnv(a, b ivEnv) ivEnv {
	out := make(ivEnv)
	for k, v := range a {
		if w, ok := b[k]; ok {
			j := IvJoin(v, w)
			if !j.IsTop() {
				out[k] = j
			}
		}
	}
	return out
}

func equalEnv(a, b ivEnv) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if w, ok := b[k]; !ok || v != w {
			return false
		}
	}
	return true
}

// ivFlow is one function's interval-analysis run.
type ivFlow struct {
	prog  *Program
	node  *FuncNode
	info  *types.Info
	facts *intervalFacts
}

// InferIntervals runs (and memoizes) the forward interval analysis for
// one function node: a widened fixpoint over the CFG followed by one
// narrowing sweep that records per-expression ranges.
func (p *Program) InferIntervals(n *FuncNode) *intervalFacts {
	if f, ok := p.ivFacts[n]; ok {
		return f
	}
	if p.ivInProgress[n] {
		return &intervalFacts{ret: IvTop}
	}
	p.ivInProgress[n] = true
	defer delete(p.ivInProgress, n)

	fl := &ivFlow{
		prog:  p,
		node:  n,
		info:  n.Pkg.TypesInfo,
		facts: &intervalFacts{at: make(map[ast.Expr]Interval), ret: IvBottom},
	}
	cfg := buildCFG(n.Name, n.Body)

	ins := make(map[*Block]ivEnv)
	outs := make(map[*Block]map[*Block]ivEnv)
	visits := make(map[*Block]int)

	inOf := func(blk *Block, preds map[*Block][]*Block) (ivEnv, bool) {
		if blk == cfg.Entry() {
			return make(ivEnv), true
		}
		var in ivEnv
		any := false
		for _, pr := range preds[blk] {
			if o, ok := outs[pr]; ok {
				if env, ok := o[blk]; ok {
					if !any {
						in, any = env.clone(), true
					} else {
						in = joinEnv(in, env)
					}
				}
			}
		}
		return in, any
	}

	preds := predecessors(cfg)
	queued := make(map[*Block]bool)
	var worklist []*Block
	push := func(blk *Block) {
		if !queued[blk] {
			queued[blk] = true
			worklist = append(worklist, blk)
		}
	}
	push(cfg.Entry())
	budget := (len(cfg.Blocks) + 1) * 64
	for len(worklist) > 0 && budget > 0 {
		budget--
		blk := worklist[0]
		worklist = worklist[1:]
		queued[blk] = false

		in, ok := inOf(blk, preds)
		if !ok && blk != cfg.Entry() {
			continue // unreachable so far
		}
		visits[blk]++
		if prev, ok := ins[blk]; ok && visits[blk] > 3 {
			in = widenEnv(prev, in)
		}
		if prev, ok := ins[blk]; ok && equalEnv(prev, in) && visits[blk] > 1 {
			continue
		}
		ins[blk] = in
		outs[blk] = fl.transfer(blk, in.clone(), false)
		for _, s := range blk.Succs {
			push(s)
		}
	}

	// One narrowing sweep: re-run every reachable block on its stabilized
	// input (narrowed against the widened iterate) and record ranges.
	for _, blk := range cfg.Blocks {
		in, ok := inOf(blk, preds)
		if !ok && blk != cfg.Entry() {
			continue
		}
		if wide, had := ins[blk]; had {
			in = narrowEnv(wide, in)
		}
		fl.transfer(blk, in, true)
	}
	if fl.facts.ret.IsBottom() {
		fl.facts.ret = IvTop
	}
	p.ivFacts[n] = fl.facts
	return fl.facts
}

func widenEnv(old, next ivEnv) ivEnv {
	out := make(ivEnv)
	for k, v := range next {
		if o, ok := old[k]; ok {
			w := IvWiden(o, v)
			if !w.IsTop() {
				out[k] = w
			}
		}
	}
	return out
}

func narrowEnv(wide, refined ivEnv) ivEnv {
	out := refined.clone()
	for k, v := range wide {
		if r, ok := refined[k]; ok {
			out[k] = IvNarrow(v, r)
		}
	}
	return out
}

// transfer pushes env through one block and returns the per-successor
// exit environments (branch conditions narrow the taken/fall-through
// edges differently).
func (fl *ivFlow) transfer(blk *Block, env ivEnv, record bool) map[*Block]ivEnv {
	var cond ast.Expr
	for i, node := range blk.Nodes {
		switch st := node.(type) {
		case *ast.AssignStmt:
			fl.assign(env, st, record)
		case *ast.IncDecStmt:
			iv := fl.eval(env, st.X, record)
			one := IvConst(1)
			if st.Tok == token.INC {
				iv = IvAdd(iv, one)
			} else {
				iv = IvSub(iv, one)
			}
			fl.bind(env, st.X, iv)
		case *ast.DeclStmt:
			fl.declare(env, st, record)
		case *ast.ExprStmt:
			fl.eval(env, st.X, record)
		case *ast.ReturnStmt:
			for _, r := range st.Results {
				fl.eval(env, r, record)
			}
			if record && len(st.Results) == 1 && fl.exprIsInt(st.Results[0]) {
				fl.facts.ret = IvJoin(fl.facts.ret, fl.eval(env, st.Results[0], false))
			}
		case *ast.RangeStmt:
			fl.rangeBind(env, st, record)
		case *ast.SendStmt:
			fl.eval(env, st.Value, record)
		case ast.Expr:
			fl.eval(env, st, record)
			if i == len(blk.Nodes)-1 {
				cond = st
			}
		}
	}

	outs := make(map[*Block]ivEnv, len(blk.Succs))
	branching := cond != nil && len(blk.Succs) >= 2
	for _, s := range blk.Succs {
		if branching {
			switch s.Kind {
			case "if.then", "for.body":
				outs[s] = fl.narrowByCond(env.clone(), cond, true)
				continue
			case "if.else", "if.done", "for.done":
				outs[s] = fl.narrowByCond(env.clone(), cond, false)
				continue
			}
		}
		outs[s] = env.clone()
	}
	return outs
}

func (fl *ivFlow) assign(env ivEnv, st *ast.AssignStmt, record bool) {
	if len(st.Lhs) == len(st.Rhs) {
		vals := make([]Interval, len(st.Rhs))
		for i, r := range st.Rhs {
			vals[i] = fl.eval(env, r, record)
		}
		for i, l := range st.Lhs {
			v := vals[i]
			switch st.Tok {
			case token.ASSIGN, token.DEFINE:
			default:
				if op, ok := assignOp(st.Tok); ok {
					v = fl.binop(op, fl.eval(env, l, false), v)
				} else {
					v = IvTop
				}
			}
			fl.bind(env, l, v)
		}
		return
	}
	// Tuple assignment (multi-result call, map lookup): nothing precise.
	for _, r := range st.Rhs {
		fl.eval(env, r, record)
	}
	for _, l := range st.Lhs {
		fl.bind(env, l, IvTop)
	}
}

func assignOp(tok token.Token) (token.Token, bool) {
	switch tok {
	case token.ADD_ASSIGN:
		return token.ADD, true
	case token.SUB_ASSIGN:
		return token.SUB, true
	case token.MUL_ASSIGN:
		return token.MUL, true
	case token.QUO_ASSIGN:
		return token.QUO, true
	case token.REM_ASSIGN:
		return token.REM, true
	case token.SHL_ASSIGN:
		return token.SHL, true
	case token.SHR_ASSIGN:
		return token.SHR, true
	}
	return token.ILLEGAL, false
}

func (fl *ivFlow) declare(env ivEnv, st *ast.DeclStmt, record bool) {
	gd, ok := st.Decl.(*ast.GenDecl)
	if !ok {
		return
	}
	for _, spec := range gd.Specs {
		vs, ok := spec.(*ast.ValueSpec)
		if !ok {
			continue
		}
		for i, name := range vs.Names {
			obj := fl.info.Defs[name]
			if obj == nil || !isIntType(obj.Type()) {
				continue
			}
			switch {
			case len(vs.Values) == len(vs.Names):
				env[obj] = fl.eval(env, vs.Values[i], record)
			case len(vs.Values) == 0:
				env[obj] = IvConst(0)
			default:
				env[obj] = IvTop
			}
		}
	}
}

// rangeBind models `for k := range x`: over an integer (Go 1.22 range
// over int) the key is [0, x.Hi-1]; over a slice/map/string the key is
// [0, +inf); values are untracked.
func (fl *ivFlow) rangeBind(env ivEnv, st *ast.RangeStmt, record bool) {
	x := fl.eval(env, st.X, record)
	if st.Key == nil {
		return
	}
	if ident, ok := st.Key.(*ast.Ident); ok {
		obj := fl.info.Defs[ident]
		if obj == nil {
			obj = fl.info.Uses[ident]
		}
		if obj != nil && isIntType(obj.Type()) {
			if tv, ok := fl.info.Types[st.X]; ok && isIntType(tv.Type) {
				env[obj] = Interval{0, satSub(x.Hi, 1)}
			} else {
				env[obj] = Interval{0, ivPosInf}
			}
		}
	}
	if ident, ok := st.Value.(*ast.Ident); ok && ident != nil {
		if obj := fl.info.Defs[ident]; obj != nil {
			delete(env, obj)
		}
	}
}

func (fl *ivFlow) bind(env ivEnv, lhs ast.Expr, v Interval) {
	ident, ok := ast.Unparen(lhs).(*ast.Ident)
	if !ok || ident.Name == "_" {
		return
	}
	obj := fl.info.Defs[ident]
	if obj == nil {
		obj = fl.info.Uses[ident]
	}
	if obj == nil || !isIntType(obj.Type()) {
		return
	}
	if v.IsTop() {
		delete(env, obj)
		return
	}
	env[obj] = v
}

func (fl *ivFlow) exprIsInt(e ast.Expr) bool {
	tv, ok := fl.info.Types[e]
	return ok && tv.Type != nil && isIntType(tv.Type)
}

// eval computes the interval of one expression, recording it (joined
// over all program points) during the narrowing sweep.
func (fl *ivFlow) eval(env ivEnv, e ast.Expr, record bool) Interval {
	iv := fl.evalRaw(env, e, record)
	if record && fl.exprIsInt(e) {
		if prev, ok := fl.facts.at[e]; ok {
			fl.facts.at[e] = IvJoin(prev, iv)
		} else {
			fl.facts.at[e] = iv
		}
	}
	return iv
}

func (fl *ivFlow) evalRaw(env ivEnv, e ast.Expr, record bool) Interval {
	if c, ok := constIntOf(fl.info, e); ok {
		return IvConst(c)
	}
	if !fl.exprIsInt(e) {
		// Still walk non-integer subtrees so nested integer expressions
		// (arguments, operands) are recorded.
		switch e := e.(type) {
		case *ast.CallExpr:
			for _, a := range e.Args {
				fl.eval(env, a, record)
			}
		case *ast.ParenExpr:
			fl.eval(env, e.X, record)
		}
		return IvTop
	}
	switch e := e.(type) {
	case *ast.ParenExpr:
		return fl.eval(env, e.X, record)
	case *ast.Ident:
		obj := fl.info.Uses[e]
		if obj == nil {
			obj = fl.info.Defs[e]
		}
		if obj != nil {
			if iv, ok := env[obj]; ok {
				return iv
			}
		}
		return IvTop
	case *ast.UnaryExpr:
		x := fl.eval(env, e.X, record)
		switch e.Op {
		case token.SUB:
			return IvNeg(x)
		case token.ADD:
			return x
		}
		return IvTop
	case *ast.BinaryExpr:
		x := fl.eval(env, e.X, record)
		y := fl.eval(env, e.Y, record)
		return fl.binop(e.Op, x, y)
	case *ast.CallExpr:
		return fl.evalCall(env, e, record)
	}
	return IvTop
}

func (fl *ivFlow) binop(op token.Token, x, y Interval) Interval {
	switch op {
	case token.ADD:
		return IvAdd(x, y)
	case token.SUB:
		return IvSub(x, y)
	case token.MUL:
		return IvMul(x, y)
	case token.QUO:
		return IvDiv(x, y)
	case token.REM:
		return IvMod(x, y)
	case token.SHL:
		return IvShl(x, y)
	case token.SHR:
		return IvShr(x, y)
	case token.AND:
		// x & y for nonnegative operands is bounded by both.
		if x.Lo >= 0 && y.Lo >= 0 {
			return Interval{0, min(x.Hi, y.Hi)}
		}
	}
	return IvTop
}

// evalCall handles len/cap, integer conversions, and calls to program
// functions via the one-level memoized summaries.
func (fl *ivFlow) evalCall(env ivEnv, call *ast.CallExpr, record bool) Interval {
	for _, a := range call.Args {
		fl.eval(env, a, record)
	}
	// Conversion to an integer type: the operand's range survives a
	// signed conversion wide enough to hold it; anything else is top.
	if tv, ok := fl.info.Types[ast.Unparen(call.Fun)]; ok && tv.IsType() {
		if len(call.Args) == 1 && isIntType(tv.Type) {
			return fl.eval(env, call.Args[0], false)
		}
		return IvTop
	}
	if ident, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := fl.info.Uses[ident].(*types.Builtin); ok {
			switch b.Name() {
			case "len", "cap":
				return Interval{0, ivPosInf}
			}
			return IvTop
		}
	}
	obj, _ := calleeObjectInfo(fl.info, call).(*types.Func)
	if obj == nil {
		return IvTop
	}
	callee := fl.prog.Graph.NodeOf(obj)
	if callee == nil {
		return IvTop
	}
	// One-level refinement: a simple single-return callee is re-evaluated
	// against the actual argument intervals; anything deeper falls back
	// to the memoized all-top summary (like dataflow.go's call depth).
	if ret := singleReturnExpr(callee); ret != nil && fl.node != callee {
		args := make([]Interval, len(call.Args))
		for i, a := range call.Args {
			args[i] = fl.eval(env, a, false)
		}
		if iv, ok := fl.prog.refinedReturn(callee, call, args); ok {
			return iv
		}
	}
	return fl.prog.InferIntervals(callee).ret
}

// singleReturnExpr returns the lone returned expression of a
// one-statement `return <expr>` body, else nil.
func singleReturnExpr(n *FuncNode) ast.Expr {
	if n == nil || n.Body == nil || len(n.Body.List) != 1 {
		return nil
	}
	ret, ok := n.Body.List[0].(*ast.ReturnStmt)
	if !ok || len(ret.Results) != 1 {
		return nil
	}
	return ret.Results[0]
}

// refinedReturn evaluates a simple callee's return expression with the
// caller's argument intervals bound to the parameters (receiver slots
// included for methods, aligned like callArgExprs).
func (p *Program) refinedReturn(callee *FuncNode, call *ast.CallExpr, args []Interval) (Interval, bool) {
	ret := singleReturnExpr(callee)
	if ret == nil || callee.Decl == nil {
		return IvTop, false
	}
	params := funcParamObjsInfo(callee.Pkg.TypesInfo, callee.Decl)
	env := make(ivEnv)
	// params includes the receiver first for methods; call.Args align
	// with the non-receiver tail.
	off := len(params) - len(args)
	if off < 0 {
		off = 0
	}
	for i, iv := range args {
		if off+i < len(params) && params[off+i] != nil && !iv.IsTop() {
			env[params[off+i]] = iv
		}
	}
	sub := &ivFlow{
		prog:  p,
		node:  callee,
		info:  callee.Pkg.TypesInfo,
		facts: &intervalFacts{at: make(map[ast.Expr]Interval)},
	}
	if p.ivInProgress[callee] {
		return IvTop, false
	}
	p.ivInProgress[callee] = true
	iv := sub.eval(env, ret, false)
	delete(p.ivInProgress, callee)
	return iv, true
}

// narrowByCond refines env by one branch condition (sense = the taken
// edge). Conjunctions, disjunctions, and negation distribute in the
// usual way; only comparisons with identifier operands narrow bindings.
func (fl *ivFlow) narrowByCond(env ivEnv, cond ast.Expr, sense bool) ivEnv {
	switch c := ast.Unparen(cond).(type) {
	case *ast.UnaryExpr:
		if c.Op == token.NOT {
			return fl.narrowByCond(env, c.X, !sense)
		}
	case *ast.BinaryExpr:
		switch c.Op {
		case token.LAND:
			if sense {
				env = fl.narrowByCond(env, c.X, true)
				return fl.narrowByCond(env, c.Y, true)
			}
		case token.LOR:
			if !sense {
				env = fl.narrowByCond(env, c.X, false)
				return fl.narrowByCond(env, c.Y, false)
			}
		case token.EQL, token.NEQ, token.LSS, token.LEQ, token.GTR, token.GEQ:
			op := c.Op
			if !sense {
				op = negateCmp(op)
			}
			x := fl.eval(env, c.X, false)
			y := fl.eval(env, c.Y, false)
			nx, ny := IvNarrowCmp(op, x, y)
			fl.bindNarrowed(env, c.X, nx)
			fl.bindNarrowed(env, c.Y, ny)
		}
	}
	return env
}

func (fl *ivFlow) bindNarrowed(env ivEnv, e ast.Expr, v Interval) {
	ident, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return
	}
	obj := fl.info.Uses[ident]
	if obj == nil {
		obj = fl.info.Defs[ident]
	}
	if obj == nil || !isIntType(obj.Type()) {
		return
	}
	if _, isVar := obj.(*types.Var); !isVar {
		return
	}
	if v.IsTop() {
		return
	}
	env[obj] = v
}

// ---------------------------------------------------------------------
// Relational half: affine forms with truncated-division atoms.

// aff is an affine form k + Σ terms[v]·v with exact rational
// coefficients over symbolic variables (base variables and division
// atoms registered in a symtab).
type aff struct {
	k     *big.Rat
	terms map[string]*big.Rat
}

func affConst(c int64) *aff {
	return &aff{k: new(big.Rat).SetInt64(c), terms: map[string]*big.Rat{}}
}

func affVar(name string) *aff {
	return &aff{k: new(big.Rat), terms: map[string]*big.Rat{name: big.NewRat(1, 1)}}
}

func (f *aff) clone() *aff {
	out := &aff{k: new(big.Rat).Set(f.k), terms: make(map[string]*big.Rat, len(f.terms))}
	for v, c := range f.terms {
		out.terms[v] = new(big.Rat).Set(c)
	}
	return out
}

func (f *aff) addScaled(g *aff, s *big.Rat) *aff {
	out := f.clone()
	out.k.Add(out.k, new(big.Rat).Mul(g.k, s))
	for v, c := range g.terms {
		cur, ok := out.terms[v]
		if !ok {
			cur = new(big.Rat)
			out.terms[v] = cur
		}
		cur.Add(cur, new(big.Rat).Mul(c, s))
		if cur.Sign() == 0 {
			delete(out.terms, v)
		}
	}
	return out
}

func affAdd(f, g *aff) *aff { return f.addScaled(g, big.NewRat(1, 1)) }
func affSub(f, g *aff) *aff { return f.addScaled(g, big.NewRat(-1, 1)) }

func affScale(f *aff, s *big.Rat) *aff { return affConst(0).addScaled(f, s) }

// isConst reports a term-free form's constant value.
func (f *aff) isConst() (*big.Rat, bool) {
	if len(f.terms) == 0 {
		return f.k, true
	}
	return nil, false
}

// key renders the form canonically (sorted terms) for atom interning.
func (f *aff) key() string {
	names := make([]string, 0, len(f.terms))
	for v := range f.terms {
		names = append(names, v)
	}
	sort.Strings(names)
	var sb strings.Builder
	sb.WriteString(f.k.RatString())
	for _, v := range names {
		sb.WriteString("+")
		sb.WriteString(f.terms[v].RatString())
		sb.WriteString("*")
		sb.WriteString(v)
	}
	return sb.String()
}

// divAtom is one interned truncated division num/div (div > 0).
type divAtom struct {
	name string
	num  *aff
	div  int64
}

// symtab owns the symbolic variables of one proof context: base
// variables with interval bounds plus interned division atoms.
type symtab struct {
	bounds map[string]Interval
	atoms  map[string]*divAtom
	byKey  map[string]string
	seq    int
}

func newSymtab() *symtab {
	return &symtab{
		bounds: make(map[string]Interval),
		atoms:  make(map[string]*divAtom),
		byKey:  make(map[string]string),
	}
}

// setVar registers (or re-bounds) a base variable and returns its form.
func (s *symtab) setVar(name string, iv Interval) *aff {
	s.bounds[name] = iv
	return affVar(name)
}

// div interns the truncated division f/c (c > 0) as an atom variable
// bounded by the corner quotients of f's range.
func (s *symtab) div(f *aff, c int64) *aff {
	if c <= 0 {
		return nil
	}
	if k, ok := f.isConst(); ok && k.IsInt() && k.Num().IsInt64() {
		return affConst(k.Num().Int64() / c)
	}
	key := f.key() + "/" + fmt.Sprint(c)
	if name, ok := s.byKey[key]; ok {
		return affVar(name)
	}
	s.seq++
	name := fmt.Sprintf("q%d", s.seq)
	s.byKey[key] = name
	s.atoms[name] = &divAtom{name: name, num: f, div: c}
	s.bounds[name] = IvDiv(s.rangeOf(f, nil), IvConst(c))
	return affVar(name)
}

// rangeOf bounds a form over the variable box (extra overrides bounds).
func (s *symtab) rangeOf(f *aff, extra map[string]Interval) Interval {
	lo, loOK := s.minOf(f, extra)
	hi, hiOK := s.maxOf(f, extra)
	out := IvTop
	if loOK {
		out.Lo = ratFloorInt64(lo)
	}
	if hiOK {
		out.Hi = ratCeilInt64(hi)
	}
	return out
}

// minOf computes the exact rational minimum of f over the box; ok is
// false when some needed bound is infinite.
func (s *symtab) minOf(f *aff, extra map[string]Interval) (*big.Rat, bool) {
	acc := new(big.Rat).Set(f.k)
	for v, c := range f.terms {
		iv, ok := extra[v]
		if !ok {
			iv, ok = s.bounds[v]
			if !ok {
				return nil, false
			}
		}
		var bound int64
		if c.Sign() > 0 {
			bound = iv.Lo
			if bound == ivNegInf {
				return nil, false
			}
		} else {
			bound = iv.Hi
			if bound == ivPosInf {
				return nil, false
			}
		}
		acc.Add(acc, new(big.Rat).Mul(c, new(big.Rat).SetInt64(bound)))
	}
	return acc, true
}

func (s *symtab) maxOf(f *aff, extra map[string]Interval) (*big.Rat, bool) {
	m, ok := s.minOf(affScale(f, big.NewRat(-1, 1)), extra)
	if !ok {
		return nil, false
	}
	return m.Neg(m), true
}

func ratFloorInt64(r *big.Rat) int64 {
	q := new(big.Int).Quo(r.Num(), r.Denom())
	if r.Sign() < 0 && !r.IsInt() {
		q.Sub(q, big.NewInt(1))
	}
	return clampBig(q)
}

func ratCeilInt64(r *big.Rat) int64 {
	q := new(big.Int).Quo(r.Num(), r.Denom())
	if r.Sign() > 0 && !r.IsInt() {
		q.Add(q, big.NewInt(1))
	}
	return clampBig(q)
}

// collectAtoms gathers every atom reachable from f (through atom
// numerators), sorted by name.
func (s *symtab) collectAtoms(f *aff) []*divAtom {
	seen := make(map[string]bool)
	var out []*divAtom
	var walk func(g *aff)
	walk = func(g *aff) {
		for v := range g.terms {
			a, ok := s.atoms[v]
			if !ok || seen[v] {
				continue
			}
			seen[v] = true
			out = append(out, a)
			walk(a.num)
		}
	}
	walk(f)
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

// proveNonNeg tries to establish min(f) ≥ 0 over the symtab's box. Each
// atom a = A/c may be kept opaque (its corner-quotient interval) or
// expanded to (A − r)/c with a fresh slack r ∈ [0, c−1] — exact when
// A ≥ 0, which is checked per expansion. All strategy combinations are
// enumerated; any one that bounds the minimum at ≥ 0 proves the form.
func (s *symtab) proveNonNeg(f *aff) bool {
	atoms := s.collectAtoms(f)
	const maxExpand = 8
	if len(atoms) > maxExpand {
		atoms = atoms[:maxExpand]
	}
	for mask := 0; mask < 1<<len(atoms); mask++ {
		g, extra, ok := s.expandCombo(f, atoms, mask)
		if !ok {
			continue
		}
		if lo, fin := s.minOf(g, extra); fin && lo.Sign() >= 0 {
			return true
		}
	}
	return false
}

// expandCombo rewrites f with the atoms selected by mask expanded into
// (num − slack)/div form; ok is false when an expansion's nonnegativity
// precondition cannot be established.
func (s *symtab) expandCombo(f *aff, atoms []*divAtom, mask int) (*aff, map[string]Interval, bool) {
	expand := make(map[string]*divAtom)
	for i, a := range atoms {
		if mask&(1<<i) != 0 {
			expand[a.name] = a
		}
	}
	extra := make(map[string]Interval)
	g := f.clone()
	for round := 0; round < 32; round++ {
		var hit *divAtom
		var coeff *big.Rat
		for v, c := range g.terms {
			if a, ok := expand[v]; ok {
				hit, coeff = a, new(big.Rat).Set(c)
				break
			}
		}
		if hit == nil {
			return g, extra, true
		}
		// Precondition: the numerator is provably nonnegative (with every
		// atom inside it kept opaque), so trunc == floor and the slack
		// rewrite is exact.
		if lo, ok := s.minOf(hit.num, extra); !ok || lo.Sign() < 0 {
			return nil, nil, false
		}
		slack := "r·" + hit.name
		extra[slack] = IvRange(0, hit.div-1)
		// g := g − coeff·atom + (coeff/div)·(num − slack)
		delete(g.terms, hit.name)
		scale := new(big.Rat).Quo(coeff, new(big.Rat).SetInt64(hit.div))
		g = g.addScaled(hit.num, scale)
		g = g.addScaled(affVar(slack), new(big.Rat).Neg(scale))
	}
	return nil, nil, false
}

// fitsInt64 reports whether f's range provably stays within int64 —
// the overflow-freedom obligation for quorum arithmetic.
func (s *symtab) fitsInt64(f *aff) bool {
	lo, okLo := s.minOf(f, nil)
	hi, okHi := s.maxOf(f, nil)
	if !okLo || !okHi {
		return false
	}
	minI := new(big.Rat).SetInt64(math.MinInt64)
	maxI := new(big.Rat).SetInt64(math.MaxInt64)
	return lo.Cmp(minI) >= 0 && hi.Cmp(maxI) <= 0
}
