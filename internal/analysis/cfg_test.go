package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// buildTestCFG parses one function and builds its graph.
func buildTestCFG(t *testing.T, fn string) *CFG {
	t.Helper()
	src := "package p\n\n" + fn
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "cfg_test_src.go", src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok {
			return buildCFG(fd.Name.Name, fd.Body)
		}
	}
	t.Fatal("no function in source")
	return nil
}

// TestCFGGolden pins the graph shape for the structures the flow
// analyzers lean on: loop back edges, labeled break targets, panic
// blocks with no successors, defers recorded on the graph, switch
// fallthrough chains, and goto. The dump format is CFG.String(): one
// line per block, "b<i> <kind>: {nodes} -> succs".
func TestCFGGolden(t *testing.T) {
	tests := []struct {
		name string
		src  string
		want string
	}{
		{
			name: "if-else",
			src: `func f(x int) int {
	if x > 0 {
		x++
	} else {
		x--
	}
	return x
}`,
			want: `f:
  b0 entry: {x > 0} -> b2 b3
  b1 exit:
  b2 if.then: {x++} -> b4
  b3 if.else: {x--} -> b4
  b4 if.done: {return x} -> b1
`,
		},
		{
			name: "for-loop-with-post",
			src: `func f(n int) {
	s := 0
	for i := 0; i < n; i++ {
		s += i
	}
	_ = s
}`,
			want: `f:
  b0 entry: {s := 0; i := 0} -> b2
  b1 exit:
  b2 for.head: {i < n} -> b3 b5
  b3 for.body: {s += i} -> b4
  b4 for.post: {i++} -> b2
  b5 for.done: {_ = s} -> b1
`,
		},
		{
			name: "range-shallow-header",
			src: `func f(xs []int) {
	for _, x := range xs {
		_ = x
	}
}`,
			want: `f:
  b0 entry: -> b2
  b1 exit:
  b2 range.head: {range xs} -> b3 b4
  b3 range.body: {_ = x} -> b2
  b4 range.done: -> b1
`,
		},
		{
			name: "labeled-break",
			src: `func f(xs []int) {
outer:
	for {
		for _, x := range xs {
			if x == 0 {
				break outer
			}
		}
	}
}`,
			want: `f:
  b0 entry: -> b2
  b1 exit:
  b2 label.outer: -> b3
  b3 for.head: -> b4
  b4 for.body: -> b6
  b5 for.done: -> b1
  b6 range.head: {range xs} -> b7 b8
  b7 range.body: {x == 0} -> b9 b10
  b8 range.done: -> b3
  b9 if.then: {break outer} -> b5
  b10 if.done: -> b6
`,
		},
		{
			name: "panic-no-successor",
			src: `func f(ok bool) {
	if !ok {
		panic("bad")
	}
	return
}`,
			want: `f:
  b0 entry: {!ok} -> b2 b3
  b1 exit:
  b2 if.then: {panic("bad")}
  b3 if.done: {return} -> b1
`,
		},
		{
			name: "defer-recorded",
			src: `func f() {
	defer cleanup()
	work()
}`,
			want: `f:
  b0 entry: {defer cleanup(); work()} -> b1
  b1 exit:
`,
		},
		{
			name: "switch-fallthrough",
			src: `func f(x int) {
	switch x {
	case 1:
		a()
		fallthrough
	case 2:
		b()
	default:
		c()
	}
}`,
			want: `f:
  b0 entry: {x} -> b3 b4 b5
  b1 exit:
  b2 switch.done: -> b1
  b3 switch.case: {1; a(); fallthrough} -> b4
  b4 switch.case: {2; b()} -> b2
  b5 switch.case: {c()} -> b2
`,
		},
		{
			name: "goto-backward",
			src: `func f() {
retry:
	if attempt() {
		return
	}
	goto retry
}`,
			want: `f:
  b0 entry: -> b2
  b1 exit:
  b2 label.retry: {attempt()} -> b3 b4
  b3 if.then: {return} -> b1
  b4 if.done: {goto retry} -> b2
`,
		},
		{
			name: "select-with-stop-case",
			src: `func f(stop chan struct{}, c chan int) {
	for {
		select {
		case <-stop:
			return
		case v := <-c:
			use(v)
		}
	}
}`,
			want: `f:
  b0 entry: -> b2
  b1 exit:
  b2 for.head: -> b3
  b3 for.body: -> b6 b7
  b4 for.done: -> b1
  b5 select.done: -> b2
  b6 select.case: {<-stop; return} -> b1
  b7 select.case: {v := <-c; use(v)} -> b5
`,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := buildTestCFG(t, tt.src)
			if got := cfg.String(); got != tt.want {
				t.Errorf("graph mismatch:\n--- got ---\n%s--- want ---\n%s", got, tt.want)
			}
		})
	}
}

// TestCFGDefers pins defer registration order on the Defers list.
func TestCFGDefers(t *testing.T) {
	cfg := buildTestCFG(t, `func f() {
	defer first()
	if cond() {
		defer second()
	}
}`)
	if len(cfg.Defers) != 2 {
		t.Fatalf("Defers = %d entries, want 2", len(cfg.Defers))
	}
	for i, want := range []string{"first", "second"} {
		call := cfg.Defers[i].Call
		if id, ok := call.Fun.(*ast.Ident); !ok || id.Name != want {
			t.Errorf("Defers[%d] = %s, want call to %s", i, nodeString(cfg.Defers[i]), want)
		}
	}
}

// TestCFGReachableAvoid pins the avoid semantics reachableFrom gives the
// analyzers: an avoided block is reached but not crossed.
func TestCFGReachableAvoid(t *testing.T) {
	cfg := buildTestCFG(t, `func f(ok bool) {
	if ok {
		guard()
	}
	sink()
}`)
	// Avoiding the then-block (the guard) must still reach the exit via
	// the else edge.
	var thenBlk *Block
	for _, blk := range cfg.Blocks {
		if blk.Kind == "if.then" {
			thenBlk = blk
		}
	}
	if thenBlk == nil {
		t.Fatal("no if.then block")
	}
	reached := reachableFrom([]*Block{cfg.Entry()}, func(b *Block) bool { return b == thenBlk })
	if !reached[thenBlk] {
		t.Error("avoided block should still be marked reached")
	}
	if !reached[cfg.Exit()] {
		t.Error("exit should stay reachable around the avoided block")
	}

	// A graph where EVERY path crosses the guard must not reach the exit.
	cfg2 := buildTestCFG(t, `func g() {
	guard()
	sink()
}`)
	reached2 := reachableFrom([]*Block{cfg2.Entry()}, func(b *Block) bool { return b == cfg2.Entry() })
	if reached2[cfg2.Exit()] {
		t.Error("exit reachable despite the only path being avoided")
	}
}

// TestCFGEmptySelect pins that `select {}` ends the path: nothing after
// it is reachable and the exit gains no edge from it.
func TestCFGEmptySelect(t *testing.T) {
	cfg := buildTestCFG(t, `func f() {
	setup()
	select {}
}`)
	reached := reachableFrom([]*Block{cfg.Entry()}, nil)
	if reached[cfg.Exit()] {
		t.Errorf("exit reachable across select{}:\n%s", cfg)
	}
}

// TestCFGDeadCodeAfterReturn pins that statements after a return land in
// an unreachable block rather than being lost (goto labels may live
// there).
func TestCFGDeadCodeAfterReturn(t *testing.T) {
	cfg := buildTestCFG(t, `func f() {
	return
	sink()
}`)
	var dead *Block
	for _, blk := range cfg.Blocks {
		if blk.Kind == "dead" {
			dead = blk
		}
	}
	if dead == nil || len(dead.Nodes) != 1 {
		t.Fatalf("dead code not captured:\n%s", cfg)
	}
	if reachableFrom([]*Block{cfg.Entry()}, nil)[dead] {
		t.Errorf("dead block reachable from entry:\n%s", cfg)
	}
}

// TestCFGNodeTruncation keeps dumps one-line and bounded.
func TestCFGNodeTruncation(t *testing.T) {
	cfg := buildTestCFG(t, `func f() {
	someVeryLongFunctionName(withAnArgument, andAnotherArgument, andYetAnotherOne)
}`)
	dump := cfg.String()
	for _, line := range strings.Split(dump, "\n") {
		if len(line) > 100 {
			t.Errorf("dump line over budget: %q", line)
		}
	}
	if strings.Contains(dump, "\t") {
		t.Errorf("dump contains raw tabs:\n%s", dump)
	}
}
