package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// LockLint flags potentially blocking operations performed while a
// sync.Mutex or sync.RWMutex is held: channel sends and receives
// (outside a select with a default clause), Transport method calls,
// invocations of func-typed values (callbacks), time.Sleep, and
// WaitGroup.Wait. Blocking inside the critical section stalls every
// other goroutine contending for the lock — in the live fleet that
// freezes delivery fleet-wide, and with a loopback transport it can
// deadlock outright (the callback may re-enter the host and try to
// take the same mutex).
//
// sync.Cond Wait/Signal/Broadcast are exempt: Cond.Wait releases the
// associated lock while blocked, which is the sanctioned way to wait
// inside a critical section. Bodies of function literals and go
// statements are analyzed as separate functions with no locks held.
var LockLint = &Analyzer{
	Name: "locklint",
	Doc: "flag channel operations, Transport/callback invocations, and other " +
		"potentially blocking calls made while a mutex is held",
	Run: runLockLint,
}

func runLockLint(pass *Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					lockWalkStmts(pass, n.Body.List, map[string]bool{})
				}
				return false
			case *ast.FuncLit:
				// Reached only for function literals outside any FuncDecl
				// (e.g. package-level var initializers); literals inside
				// functions are handled by lockWalkExpr.
				lockWalkStmts(pass, n.Body.List, map[string]bool{})
				return false
			}
			return true
		})
	}
	return nil
}

// lockWalkStmts walks a statement list in order, maintaining the set of
// held mutexes (keyed by the rendered receiver expression, e.g. "h.mu").
// Control-flow bodies are walked with a copy of the set: a branch may
// unlock, but the conservative assumption after the branch is that the
// lock state is unchanged.
func lockWalkStmts(pass *Pass, list []ast.Stmt, held map[string]bool) {
	for _, s := range list {
		lockWalkStmt(pass, s, held)
	}
}

func lockWalkStmt(pass *Pass, s ast.Stmt, held map[string]bool) {
	switch s := s.(type) {
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if key, locks, ok := mutexEvent(pass, call); ok {
				if locks {
					held[key] = true
				} else {
					delete(held, key)
				}
				return
			}
		}
		lockWalkExpr(pass, s.X, held)
	case *ast.DeferStmt:
		// A deferred Unlock runs at return: the mutex stays held for the
		// rest of the walk, which is exactly the state to check against.
		// Other deferred calls execute outside the critical section the
		// statement appears in, so only their argument expressions and any
		// function-literal body are inspected.
		if _, locks, ok := mutexEvent(pass, s.Call); ok && !locks {
			return
		}
		for _, arg := range s.Call.Args {
			lockWalkExpr(pass, arg, held)
		}
		if lit, ok := ast.Unparen(s.Call.Fun).(*ast.FuncLit); ok {
			lockWalkStmts(pass, lit.Body.List, map[string]bool{})
		}
	case *ast.GoStmt:
		// The spawned goroutine does not hold this goroutine's locks.
		for _, arg := range s.Call.Args {
			lockWalkExpr(pass, arg, held)
		}
		if lit, ok := ast.Unparen(s.Call.Fun).(*ast.FuncLit); ok {
			lockWalkStmts(pass, lit.Body.List, map[string]bool{})
		}
	case *ast.SendStmt:
		if len(held) > 0 {
			pass.Reportf(s.Arrow,
				"channel send while %s is held: a full channel blocks the critical section", heldNames(held))
		}
		lockWalkExpr(pass, s.Chan, held)
		lockWalkExpr(pass, s.Value, held)
	case *ast.SelectStmt:
		// A select with a default clause never blocks; its channel
		// operations are exempt. Without one, the select itself blocks.
		hasDefault := false
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
				hasDefault = true
			}
		}
		if !hasDefault && len(held) > 0 {
			pass.Reportf(s.Select,
				"select without a default clause while %s is held: blocks the critical section", heldNames(held))
		}
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				lockWalkStmts(pass, cc.Body, copyHeld(held))
			}
		}
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			lockWalkExpr(pass, e, held)
		}
		for _, e := range s.Lhs {
			lockWalkExpr(pass, e, held)
		}
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			lockWalkExpr(pass, e, held)
		}
	case *ast.BlockStmt:
		lockWalkStmts(pass, s.List, held)
	case *ast.IfStmt:
		if s.Init != nil {
			lockWalkStmt(pass, s.Init, held)
		}
		lockWalkExpr(pass, s.Cond, held)
		lockWalkStmts(pass, s.Body.List, copyHeld(held))
		if s.Else != nil {
			lockWalkStmt(pass, s.Else, copyHeld(held))
		}
	case *ast.ForStmt:
		if s.Init != nil {
			lockWalkStmt(pass, s.Init, held)
		}
		if s.Cond != nil {
			lockWalkExpr(pass, s.Cond, held)
		}
		lockWalkStmts(pass, s.Body.List, copyHeld(held))
	case *ast.RangeStmt:
		lockWalkExpr(pass, s.X, held)
		lockWalkStmts(pass, s.Body.List, copyHeld(held))
	case *ast.SwitchStmt:
		if s.Init != nil {
			lockWalkStmt(pass, s.Init, held)
		}
		if s.Tag != nil {
			lockWalkExpr(pass, s.Tag, held)
		}
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				lockWalkStmts(pass, cc.Body, copyHeld(held))
			}
		}
	case *ast.TypeSwitchStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				lockWalkStmts(pass, cc.Body, copyHeld(held))
			}
		}
	case *ast.LabeledStmt:
		lockWalkStmt(pass, s.Stmt, held)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						lockWalkExpr(pass, v, held)
					}
				}
			}
		}
	}
}

// lockWalkExpr inspects an expression for blocking operations under the
// current held set. Function literals start a fresh context.
func lockWalkExpr(pass *Pass, e ast.Expr, held map[string]bool) {
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			lockWalkStmts(pass, n.Body.List, map[string]bool{})
			return false
		case *ast.UnaryExpr:
			if n.Op == token.ARROW && len(held) > 0 {
				pass.Reportf(n.OpPos,
					"channel receive while %s is held: an empty channel blocks the critical section", heldNames(held))
			}
		case *ast.CallExpr:
			if len(held) > 0 {
				checkBlockingCall(pass, n, held)
			}
		}
		return true
	})
}

// mutexEvent matches X.Lock / X.RLock / X.Unlock / X.RUnlock where the
// method belongs to sync.Mutex or sync.RWMutex. It returns the held-set
// key for X and whether the call acquires (true) or releases (false).
func mutexEvent(pass *Pass, call *ast.CallExpr) (key string, locks, ok bool) {
	x, locks, ok := mutexSelector(pass.TypesInfo, call)
	if !ok {
		return "", false, false
	}
	// locklint keys held sets by receiver spelling (intraprocedural, so
	// `t.mu` is unambiguous); the whole-program analyzers canonicalize
	// the same selector to a lock class via Program.lockClass.
	return types.ExprString(x), locks, true
}

// checkBlockingCall flags calls that can block while a mutex is held.
func checkBlockingCall(pass *Pass, call *ast.CallExpr, held map[string]bool) {
	fun := ast.Unparen(call.Fun)

	// Conversions like ServerID(x) are not calls.
	if tv, ok := pass.TypesInfo.Types[fun]; ok && tv.IsType() {
		return
	}

	switch fn := calleeObject(pass, call).(type) {
	case *types.Func:
		if fn.Pkg() != nil {
			switch {
			case fn.Pkg().Path() == "time" && fn.Name() == "Sleep":
				pass.Reportf(call.Pos(),
					"time.Sleep while %s is held: sleeps inside the critical section", heldNames(held))
				return
			case fn.Pkg().Path() == "sync":
				recv := fn.Type().(*types.Signature).Recv()
				if recv != nil {
					name := recvTypeName(recv.Type())
					if name == "Cond" {
						return // Cond.Wait releases the lock: sanctioned
					}
					if name == "WaitGroup" && fn.Name() == "Wait" {
						pass.Reportf(call.Pos(),
							"WaitGroup.Wait while %s is held: blocks the critical section", heldNames(held))
						return
					}
				}
			}
		}
		// Method on a Transport-flavored type: transports do network or
		// scheduling work and may call back into the locked structure.
		if recv := fn.Type().(*types.Signature).Recv(); recv != nil {
			if name := recvTypeName(recv.Type()); strings.Contains(name, "Transport") {
				pass.Reportf(call.Pos(),
					"%s.%s called while %s is held: transports may block or re-enter the locked structure; "+
						"copy the payload and call after unlocking", name, fn.Name(), heldNames(held))
			}
		}
	case *types.Var:
		// A func-typed variable — struct field, parameter, or local — is a
		// callback whose body is outside this analysis' view.
		if _, isSig := fn.Type().Underlying().(*types.Signature); isSig {
			pass.Reportf(call.Pos(),
				"callback %s invoked while %s is held: its body may block or re-enter the locked structure; "+
					"capture it and call after unlocking", fn.Name(), heldNames(held))
		}
	}
}

func copyHeld(held map[string]bool) map[string]bool {
	out := make(map[string]bool, len(held))
	for k := range held {
		out[k] = true
	}
	return out
}

// heldNames renders the held set for messages, sorted for determinism.
func heldNames(held map[string]bool) string {
	if len(held) == 1 {
		for k := range held {
			return k
		}
	}
	names := make([]string, 0, len(held))
	for k := range held {
		names = append(names, k)
	}
	// Insertion sort: the set is tiny.
	for i := 1; i < len(names); i++ {
		for j := i; j > 0 && names[j] < names[j-1]; j-- {
			names[j], names[j-1] = names[j-1], names[j]
		}
	}
	return strings.Join(names, ", ")
}
