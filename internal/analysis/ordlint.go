package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// OrdPackages are the packages that take runtime mutexes: every
// goroutine-owning package plus the lock-using utility packages, so an
// inversion spanning any two of them is visible in one graph.
var OrdPackages = []string{
	"rbcast/internal/sim",
	"rbcast/internal/netsim",
	"rbcast/internal/soak",
	"rbcast/internal/live",
	"rbcast/internal/udp",
	"rbcast/internal/trace",
	"rbcast/internal/replica",
}

// OrdLint builds the whole-program lock-order graph: an edge A → B
// whenever lock class B is acquired — directly, or anywhere down a
// static call chain (bottom-up lock summaries over the call graph) —
// while A is held (held-set walk plus the interprocedural entry-held
// facts, so `fooLocked` helpers charge their acquisitions to the lock
// their callers hold). A cycle in that graph is a potential deadlock:
// two goroutines taking the classes in opposite orders block each
// other forever. Each cycle is reported once, with every edge's
// acquisition chain in the message; a self-edge is reported as a
// recursive acquisition (sync.Mutex is not reentrant). Classes are
// instance-blind, so ordered traversal over two locks of one class is
// flagged too — which is the conservative reading the fleet code wants.
var OrdLint = &Analyzer{
	Name: "ordlint",
	Doc: "the whole-program lock acquisition graph must be acyclic: cycles are " +
		"potential deadlocks, reported with both acquisition chains",
	Run: runOrdLint,
}

func runOrdLint(pass *Pass) error {
	if pass.Prog == nil {
		return nil
	}
	pass.Prog.ensureOrdDiags()
	for _, pd := range pass.Prog.ordDiags {
		if pd.pkgPath == pass.Pkg.Path() {
			pass.Report(pd.d)
		}
	}
	return nil
}

func (p *Program) ensureOrdDiags() {
	if p.ordDone {
		return
	}
	p.ordDone = true
	p.ordDiags = p.sortedProgDiags(computeOrdDiags(p))
}

// ordEdge is one observed ordering: to is acquired while from is held.
type ordEdge struct {
	from, to string
	node     *FuncNode // function the ordering was observed in
	pos      token.Pos // acquisition site, or the call leading to it
	chain    []string  // call chain to the acquisition (nil when direct)
}

func (e *ordEdge) describe(p *Program) string {
	s := fmt.Sprintf("%s -> %s (acquired at %s in %s", e.from, e.to, shortPos(p.Fset, e.pos), e.node.Name)
	if len(e.chain) > 1 {
		s += " via " + strings.Join(e.chain, " -> ")
	}
	return s + ")"
}

func computeOrdDiags(p *Program) []progDiag {
	edges := make(map[string]map[string]*ordEdge)
	var selfEdges []*ordEdge
	addEdge := func(e *ordEdge) {
		if e.from == e.to {
			selfEdges = append(selfEdges, e)
			return
		}
		m := edges[e.from]
		if m == nil {
			m = make(map[string]*ordEdge)
			edges[e.from] = m
		}
		if _, have := m[e.to]; !have {
			m[e.to] = e
		}
	}

	for _, n := range p.Graph.Nodes {
		if !pkgInScope(n.Pkg.Path, OrdPackages) {
			continue
		}
		entry := p.entryHeldOf(n)
		siteEdges := make(map[*ast.CallExpr][]*CallEdge)
		for _, e := range n.Out {
			siteEdges[e.Site] = append(siteEdges[e.Site], e)
		}
		p.walkLocks(n, func(node ast.Node, held map[string]bool) {
			call, ok := node.(*ast.CallExpr)
			if !ok {
				return
			}
			eff := unionHeld(entry, held)
			if class, locks, ok := p.lockEventClass(n, call); ok {
				if locks {
					for h := range eff {
						addEdge(&ordEdge{from: h, to: class, node: n, pos: call.Pos(), chain: []string{n.Name}})
					}
				}
				return
			}
			if len(eff) == 0 {
				return
			}
			for _, ce := range siteEdges[call] {
				if ce.Kind == EdgeGo {
					continue // the spawned goroutine holds none of our locks
				}
				for class, w := range p.lockSummaryOf(ce.Callee).acquires {
					for h := range eff {
						addEdge(&ordEdge{from: h, to: class, node: n, pos: call.Pos(),
							chain: append([]string{n.Name}, w.chain...)})
					}
				}
			}
		})
	}

	var out []progDiag
	for _, e := range selfEdges {
		msg := fmt.Sprintf("lock %s is acquired while already held (%s): sync mutexes are not "+
			"reentrant, so this self-deadlocks (or deadlocks across two instances of the class)",
			e.to, e.describe(p))
		out = append(out, progDiag{pkgPath: e.node.Pkg.Path,
			d: Diagnostic{Analyzer: "ordlint", Pos: e.pos, Message: msg}})
	}
	for _, scc := range lockSCCs(edges) {
		inSCC := make(map[string]bool, len(scc))
		for _, c := range scc {
			inSCC[c] = true
		}
		var parts []string
		var witness *ordEdge
		for _, from := range scc {
			tos := make([]string, 0, len(edges[from]))
			for to := range edges[from] {
				if inSCC[to] {
					tos = append(tos, to)
				}
			}
			sort.Strings(tos)
			for _, to := range tos {
				e := edges[from][to]
				parts = append(parts, e.describe(p))
				if witness == nil {
					witness = e
				}
			}
		}
		msg := fmt.Sprintf("lock-order cycle among {%s}: %s — goroutines acquiring these classes "+
			"in different orders can deadlock; pick one global order",
			strings.Join(scc, ", "), strings.Join(parts, "; "))
		out = append(out, progDiag{pkgPath: witness.node.Pkg.Path,
			d: Diagnostic{Analyzer: "ordlint", Pos: witness.pos, Message: msg}})
	}
	return out
}

// lockSCCs returns the strongly connected components of size ≥ 2 of the
// order graph (Tarjan), each sorted internally, components ordered by
// their first class for deterministic output.
func lockSCCs(edges map[string]map[string]*ordEdge) [][]string {
	classes := make(map[string]bool)
	for from, m := range edges {
		classes[from] = true
		for to := range m {
			classes[to] = true
		}
	}
	order := make([]string, 0, len(classes))
	for c := range classes {
		order = append(order, c)
	}
	sort.Strings(order)

	index := make(map[string]int)
	low := make(map[string]int)
	onStack := make(map[string]bool)
	var stack []string
	next := 0
	var sccs [][]string

	var strongconnect func(v string)
	strongconnect = func(v string) {
		index[v] = next
		low[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true
		tos := make([]string, 0, len(edges[v]))
		for to := range edges[v] {
			tos = append(tos, to)
		}
		sort.Strings(tos)
		for _, w := range tos {
			if _, seen := index[w]; !seen {
				strongconnect(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			var scc []string
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				scc = append(scc, w)
				if w == v {
					break
				}
			}
			if len(scc) >= 2 {
				sort.Strings(scc)
				sccs = append(sccs, scc)
			}
		}
	}
	for _, v := range order {
		if _, seen := index[v]; !seen {
			strongconnect(v)
		}
	}
	sort.Slice(sccs, func(i, j int) bool { return sccs[i][0] < sccs[j][0] })
	return sccs
}
