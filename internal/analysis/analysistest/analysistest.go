// Package analysistest runs one analyzer over a testdata package and
// compares its diagnostics against expectations embedded in the source,
// mirroring golang.org/x/tools/go/analysis/analysistest with the
// repository's stdlib-only framework.
//
// An expectation is a comment of the form
//
//	// want `regexp` `another regexp`
//
// on the line a diagnostic is reported at. Every diagnostic must match
// one expectation on its line and every expectation must be matched by
// a diagnostic; the regexps are backtick-quoted so messages containing
// double quotes stay readable.
package analysistest

import (
	"go/ast"
	"go/token"
	"regexp"
	"strings"
	"testing"

	"rbcast/internal/analysis"
)

// Run loads the package in dir (relative to the module root containing
// the caller's working directory), checks it under asPath (empty derives
// the real path — useful to keep a testdata package OUT of an analyzer's
// scope), runs the analyzer plus the //rblint:ignore machinery, and
// diffs diagnostics against the package's want comments.
func Run(t *testing.T, a *analysis.Analyzer, dir, asPath string) {
	t.Helper()
	loader, err := analysis.NewLoader(".")
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	pkg, err := loader.Load(dir, asPath)
	if err != nil {
		t.Fatalf("Load %s: %v", dir, err)
	}
	diags, err := analysis.RunPackage(loader, pkg, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("RunPackage: %v", err)
	}

	type lineKey struct {
		file string
		line int
	}
	wants := make(map[lineKey][]*regexp.Regexp)
	files := append(append([]*ast.File(nil), pkg.Files...), pkg.TestFiles...)
	for _, f := range files {
		for _, group := range f.Comments {
			for _, c := range group.List {
				patterns, ok := parseWant(t, loader.Fset, c)
				if !ok {
					continue
				}
				pos := loader.Fset.Position(c.Pos())
				k := lineKey{pos.Filename, pos.Line}
				wants[k] = append(wants[k], patterns...)
			}
		}
	}

	for _, d := range diags {
		pos := loader.Fset.Position(d.Pos)
		k := lineKey{pos.Filename, pos.Line}
		matched := -1
		for i, re := range wants[k] {
			if re != nil && re.MatchString(d.Message) {
				matched = i
				break
			}
		}
		if matched < 0 {
			t.Errorf("%s: unexpected diagnostic: %s: %s", pos, d.Analyzer, d.Message)
			continue
		}
		wants[k][matched] = nil // consumed
	}
	for k, res := range wants {
		for _, re := range res {
			if re != nil {
				t.Errorf("%s:%d: expected diagnostic matching %q, got none", k.file, k.line, re)
			}
		}
	}
}

// parseWant extracts the backtick-quoted regexps from a `// want`
// comment; ok is false for any other comment.
func parseWant(t *testing.T, fset *token.FileSet, c *ast.Comment) ([]*regexp.Regexp, bool) {
	t.Helper()
	text, found := strings.CutPrefix(c.Text, "//")
	if !found {
		return nil, false
	}
	text = strings.TrimSpace(text)
	text, found = strings.CutPrefix(text, "want ")
	if !found {
		return nil, false
	}
	var out []*regexp.Regexp
	for {
		start := strings.IndexByte(text, '`')
		if start < 0 {
			break
		}
		end := strings.IndexByte(text[start+1:], '`')
		if end < 0 {
			t.Errorf("%s: unterminated `regexp` in want comment", fset.Position(c.Pos()))
			break
		}
		expr := text[start+1 : start+1+end]
		re, err := regexp.Compile(expr)
		if err != nil {
			t.Errorf("%s: bad want regexp %q: %v", fset.Position(c.Pos()), expr, err)
		} else {
			out = append(out, re)
		}
		text = text[start+1+end+1:]
	}
	if len(out) == 0 {
		t.Errorf("%s: want comment with no `regexp` expectations", fset.Position(c.Pos()))
	}
	return out, true
}
