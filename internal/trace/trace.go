// Package trace collects and renders protocol event streams. It turns
// the core's Observer callbacks into a bounded, filterable log that CLIs
// print and tests query, without growing unboundedly on long runs.
package trace

import (
	"fmt"
	"io"
	"sync"
	"time"

	"rbcast/internal/core"
)

// Entry is one recorded protocol event.
type Entry struct {
	At   time.Duration
	Host core.HostID
	Kind core.EventKind
	Peer core.HostID
	Seq  uint64
}

// String renders the entry as a log line.
func (e Entry) String() string {
	s := fmt.Sprintf("%12v host=%d %s", e.At.Round(time.Microsecond), e.Host, e.Kind)
	if e.Peer != core.Nil {
		s += fmt.Sprintf(" peer=%d", e.Peer)
	}
	if e.Seq != 0 {
		s += fmt.Sprintf(" seq=%d", e.Seq)
	}
	return s
}

// FromEvent converts a core event.
func FromEvent(ev core.Event) Entry {
	return Entry{At: ev.At, Host: ev.Host, Kind: ev.Kind, Peer: ev.Peer, Seq: uint64(ev.Seq)}
}

// Buffer is a bounded ring of entries with per-kind counters. Safe for
// concurrent use (the live runtime emits from many goroutines).
type Buffer struct {
	mu      sync.Mutex
	cap     int
	entries []Entry
	start   int
	total   uint64
	byKind  map[core.EventKind]uint64
}

// NewBuffer creates a ring holding up to capacity entries (minimum 1).
func NewBuffer(capacity int) *Buffer {
	if capacity < 1 {
		capacity = 1
	}
	return &Buffer{cap: capacity, byKind: make(map[core.EventKind]uint64)}
}

// Observer returns a core.Observer that records into the buffer.
func (b *Buffer) Observer() core.Observer {
	return func(ev core.Event) { b.Add(FromEvent(ev)) }
}

// Add records one entry, evicting the oldest past capacity.
func (b *Buffer) Add(e Entry) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.total++
	b.byKind[e.Kind]++
	if len(b.entries) < b.cap {
		b.entries = append(b.entries, e)
		return
	}
	b.entries[b.start] = e
	b.start = (b.start + 1) % b.cap
}

// Len returns the number of retained entries.
func (b *Buffer) Len() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.entries)
}

// Total returns the number of entries ever recorded (including evicted).
func (b *Buffer) Total() uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.total
}

// CountByKind returns how many events of the kind were ever recorded.
func (b *Buffer) CountByKind(k core.EventKind) uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.byKind[k]
}

// Entries returns the retained entries, oldest first.
func (b *Buffer) Entries() []Entry {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([]Entry, 0, len(b.entries))
	for i := 0; i < len(b.entries); i++ {
		out = append(out, b.entries[(b.start+i)%len(b.entries)])
	}
	return out
}

// Filter returns retained entries matching pred, oldest first.
func (b *Buffer) Filter(pred func(Entry) bool) []Entry {
	var out []Entry
	for _, e := range b.Entries() {
		if pred(e) {
			out = append(out, e)
		}
	}
	return out
}

// WriteTo dumps the retained entries as text lines.
func (b *Buffer) WriteTo(w io.Writer) (int64, error) {
	var n int64
	for _, e := range b.Entries() {
		m, err := fmt.Fprintln(w, e.String())
		n += int64(m)
		if err != nil {
			return n, err
		}
	}
	return n, nil
}
