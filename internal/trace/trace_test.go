package trace_test

import (
	"strings"
	"sync"
	"testing"
	"time"

	"rbcast/internal/core"
	"rbcast/internal/trace"
)

func entry(host core.HostID, kind core.EventKind, seq uint64) trace.Entry {
	return trace.Entry{At: time.Second, Host: host, Kind: kind, Seq: seq}
}

func TestBufferRetainsInOrder(t *testing.T) {
	b := trace.NewBuffer(10)
	for i := 1; i <= 5; i++ {
		b.Add(entry(core.HostID(i), core.EvAccepted, uint64(i)))
	}
	got := b.Entries()
	if len(got) != 5 {
		t.Fatalf("Len = %d, want 5", len(got))
	}
	for i, e := range got {
		if e.Host != core.HostID(i+1) {
			t.Errorf("entry %d host = %d, want %d", i, e.Host, i+1)
		}
	}
}

func TestBufferEvictsOldest(t *testing.T) {
	b := trace.NewBuffer(3)
	for i := 1; i <= 5; i++ {
		b.Add(entry(core.HostID(i), core.EvAccepted, uint64(i)))
	}
	got := b.Entries()
	if len(got) != 3 {
		t.Fatalf("Len = %d, want 3", len(got))
	}
	if got[0].Host != 3 || got[2].Host != 5 {
		t.Errorf("ring content wrong: %v", got)
	}
	if b.Total() != 5 {
		t.Errorf("Total = %d, want 5", b.Total())
	}
}

func TestBufferMinimumCapacity(t *testing.T) {
	b := trace.NewBuffer(0)
	b.Add(entry(1, core.EvAccepted, 1))
	b.Add(entry(2, core.EvAccepted, 2))
	if b.Len() != 1 {
		t.Errorf("Len = %d, want 1", b.Len())
	}
}

// TestBufferBoundedOnLongStream wraps the ring many times over: memory
// stays capped at capacity, Entries stays oldest-first and contiguous
// with the stream tail, and the counters keep the full history.
func TestBufferBoundedOnLongStream(t *testing.T) {
	const capacity, stream = 7, 1000
	b := trace.NewBuffer(capacity)
	for i := 1; i <= stream; i++ {
		b.Add(entry(core.HostID(i), core.EvAccepted, uint64(i)))
	}
	if b.Len() != capacity {
		t.Fatalf("Len = %d, want %d", b.Len(), capacity)
	}
	if b.Total() != stream {
		t.Errorf("Total = %d, want %d", b.Total(), stream)
	}
	if got := b.CountByKind(core.EvAccepted); got != stream {
		t.Errorf("CountByKind = %d, want %d", got, stream)
	}
	got := b.Entries()
	if len(got) != capacity {
		t.Fatalf("Entries returned %d, want %d", len(got), capacity)
	}
	for i, e := range got {
		if want := uint64(stream - capacity + 1 + i); e.Seq != want {
			t.Errorf("entry %d seq = %d, want %d (newest %d kept, oldest first)",
				i, e.Seq, want, capacity)
		}
	}
}

func TestCountByKind(t *testing.T) {
	b := trace.NewBuffer(2) // smaller than the stream: counters must survive eviction
	for i := 0; i < 4; i++ {
		b.Add(entry(1, core.EvAccepted, uint64(i)))
	}
	b.Add(entry(1, core.EvRejected, 9))
	if got := b.CountByKind(core.EvAccepted); got != 4 {
		t.Errorf("CountByKind(accepted) = %d, want 4", got)
	}
	if got := b.CountByKind(core.EvRejected); got != 1 {
		t.Errorf("CountByKind(rejected) = %d, want 1", got)
	}
}

func TestFilter(t *testing.T) {
	b := trace.NewBuffer(10)
	b.Add(entry(1, core.EvAccepted, 1))
	b.Add(entry(2, core.EvRejected, 2))
	b.Add(entry(1, core.EvRejected, 3))
	got := b.Filter(func(e trace.Entry) bool { return e.Host == 1 })
	if len(got) != 2 {
		t.Errorf("Filter returned %d entries, want 2", len(got))
	}
}

func TestObserverBridge(t *testing.T) {
	b := trace.NewBuffer(10)
	obs := b.Observer()
	obs(core.Event{At: time.Second, Kind: core.EvAttached, Host: 3, Peer: 7})
	got := b.Entries()
	if len(got) != 1 || got[0].Kind != core.EvAttached || got[0].Peer != 7 {
		t.Errorf("observer bridge produced %v", got)
	}
}

// TestHealthEventsFlowThrough pins the health layer's observability:
// suspicion and recovery events ride the same observer bridge as every
// other protocol event, render with their peer, and are countable.
func TestHealthEventsFlowThrough(t *testing.T) {
	b := trace.NewBuffer(10)
	obs := b.Observer()
	obs(core.Event{At: time.Second, Kind: core.EvPeerSuspected, Host: 2, Peer: 5})
	obs(core.Event{At: 2 * time.Second, Kind: core.EvPeerRecovered, Host: 2, Peer: 5})
	if got := b.CountByKind(core.EvPeerSuspected); got != 1 {
		t.Errorf("CountByKind(suspected) = %d, want 1", got)
	}
	if got := b.CountByKind(core.EvPeerRecovered); got != 1 {
		t.Errorf("CountByKind(recovered) = %d, want 1", got)
	}
	entries := b.Entries()
	if len(entries) != 2 {
		t.Fatalf("Entries = %d, want 2", len(entries))
	}
	for i, want := range []string{"peer-suspected", "peer-recovered"} {
		if s := entries[i].String(); !strings.Contains(s, want) || !strings.Contains(s, "peer=5") {
			t.Errorf("entry %d String() = %q, want it to contain %q and peer=5", i, s, want)
		}
	}
}

func TestEntryString(t *testing.T) {
	e := trace.Entry{At: 1500 * time.Microsecond, Host: 2, Kind: core.EvAccepted, Peer: 3, Seq: 9}
	s := e.String()
	for _, want := range []string{"host=2", "accepted", "peer=3", "seq=9"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
	minimal := trace.Entry{Host: 1, Kind: core.EvParentTimeout}
	if s := minimal.String(); strings.Contains(s, "peer=") || strings.Contains(s, "seq=") {
		t.Errorf("String() = %q shows zero-valued fields", s)
	}
}

func TestWriteTo(t *testing.T) {
	b := trace.NewBuffer(10)
	b.Add(entry(1, core.EvAccepted, 1))
	b.Add(entry(2, core.EvAccepted, 2))
	var sb strings.Builder
	if _, err := b.WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(sb.String(), "\n"); got != 2 {
		t.Errorf("WriteTo produced %d lines, want 2", got)
	}
}

func TestConcurrentAdds(t *testing.T) {
	b := trace.NewBuffer(128)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				b.Add(entry(1, core.EvAccepted, uint64(i)))
			}
		}()
	}
	wg.Wait()
	if b.Total() != 800 {
		t.Errorf("Total = %d, want 800", b.Total())
	}
	if b.Len() != 128 {
		t.Errorf("Len = %d, want 128", b.Len())
	}
}
