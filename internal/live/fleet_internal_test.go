package live

import (
	"fmt"
	"testing"
	"time"

	"rbcast/internal/core"
	"rbcast/internal/multi"
)

// TestStartFleetErrorPathDoesNotHang is a regression test for a shutdown
// deadlock: StartFleet used to register every node first and spawn the
// runNode goroutines in a second loop, so a mid-loop bus or inbox error
// called Stop while already-registered nodes had no goroutine — and Stop
// blocked forever on <-n.done, since runNode's deferred close is the
// only thing that closes done. Nodes must be spawned as they are
// registered. Run under -race this also exercises the live node
// goroutine racing fleet teardown.
func TestStartFleetErrorPathDoesNotHang(t *testing.T) {
	orig := newBus
	calls := 0
	newBus = func(cfg multi.Config, env multi.Env) (*multi.Bus, error) {
		calls++
		if calls == 2 {
			return nil, fmt.Errorf("injected bus failure for host %d", cfg.ID)
		}
		return orig(cfg, env)
	}
	defer func() { newBus = orig }()

	type result struct {
		f   *Fleet
		err error
	}
	got := make(chan result, 1)
	go func() {
		f, err := StartFleet(FleetConfig{Hosts: []core.HostID{1, 2, 3}, Source: 1})
		got <- result{f, err}
	}()
	select {
	case r := <-got:
		if r.err == nil {
			if r.f != nil {
				r.f.Stop()
			}
			t.Fatal("StartFleet succeeded despite failing bus constructor")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("StartFleet hung in its error path: Stop waited on nodes whose goroutine never started")
	}
}
