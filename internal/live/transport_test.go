package live_test

import (
	"testing"
	"time"

	"rbcast/internal/core"
	"rbcast/internal/live"
)

func hosts4() []core.HostID { return []core.HostID{1, 2, 3, 4} }

func TestTransportDefaultsCheap(t *testing.T) {
	tr := live.NewTransport(hosts4(), 1)
	cfg := tr.Path(1, 4)
	if !cfg.Up || cfg.Expensive {
		t.Errorf("default path = %+v, want up and cheap", cfg)
	}
	// Path is symmetric.
	if tr.Path(4, 1) != cfg {
		t.Error("Path not symmetric")
	}
}

func TestTransportSetClusters(t *testing.T) {
	tr := live.NewTransport(hosts4(), 1)
	tr.SetClusters([][]core.HostID{{1, 2}, {3, 4}})
	if tr.Path(1, 2).Expensive {
		t.Error("intra-cluster path expensive")
	}
	if !tr.Path(1, 3).Expensive {
		t.Error("inter-cluster path cheap")
	}
	if !tr.Path(2, 4).Up {
		t.Error("inter-cluster path down by default")
	}
}

func TestTransportPartitionAndHeal(t *testing.T) {
	tr := live.NewTransport(hosts4(), 1)
	groups := [][]core.HostID{{1, 2}, {3, 4}}
	tr.PartitionGroups(groups)
	if tr.Path(1, 3).Up {
		t.Error("cross-group path still up after partition")
	}
	if !tr.Path(1, 2).Up || !tr.Path(3, 4).Up {
		t.Error("intra-group path cut by partition")
	}
	tr.HealAll()
	if !tr.Path(1, 3).Up {
		t.Error("path still down after HealAll")
	}
}

func TestTransportSetReachable(t *testing.T) {
	tr := live.NewTransport(hosts4(), 1)
	tr.SetReachable(2, 3, false)
	if tr.Path(2, 3).Up {
		t.Error("SetReachable(false) ignored")
	}
	// Only the Up bit moved; the rest of the config is intact.
	if tr.Path(2, 3).Expensive {
		t.Error("SetReachable changed the path class")
	}
	tr.SetReachable(2, 3, true)
	if !tr.Path(2, 3).Up {
		t.Error("SetReachable(true) ignored")
	}
}

func TestTransportDropsAccounting(t *testing.T) {
	tr := live.NewTransport(hosts4(), 1)
	tr.SetReachable(1, 2, false)
	tr.Send(1, 2, 0, core.Message{Kind: core.MsgDetach})
	_, dropped, _, _ := tr.Stats()
	if dropped != 1 {
		t.Errorf("dropped = %d, want 1", dropped)
	}
	// Loss accounting.
	lossy := live.DefaultCheapPath()
	lossy.LossProb = 1
	tr.SetPath(1, 3, lossy)
	tr.Send(1, 3, 0, core.Message{Kind: core.MsgDetach})
	_, _, lost, _ := tr.Stats()
	if lost != 1 {
		t.Errorf("lost = %d, want 1", lost)
	}
	// Sends to unknown hosts drop rather than panic.
	tr.Send(1, 99, 0, core.Message{Kind: core.MsgDetach})
	_, dropped, _, _ = tr.Stats()
	if dropped != 2 {
		t.Errorf("dropped = %d after unknown destination, want 2", dropped)
	}
}

func TestTransportDelayApplied(t *testing.T) {
	tr := live.NewTransport(hosts4(), 1)
	slow := live.PathConfig{Up: true, Delay: 60 * time.Millisecond}
	tr.SetPath(1, 2, slow)
	// Start a fleet? No — transports deliver into inboxes owned by the
	// fleet; here we only verify config plumbing.
	if got := tr.Path(1, 2).Delay; got != 60*time.Millisecond {
		t.Errorf("Delay = %v", got)
	}
}
