package live_test

import (
	"testing"

	"rbcast/internal/core"
	"rbcast/internal/live"
	"rbcast/internal/seqset"
)

func TestLiveMultiSource(t *testing.T) {
	// Three sources broadcast concurrently; per the paper's §2, each
	// stream is an independent single-source protocol and all must
	// complete.
	f := startFleet(t, live.FleetConfig{
		Hosts:    []core.HostID{1, 2, 3, 4, 5, 6},
		Source:   1,
		Sources:  []core.HostID{3, 5},
		Clusters: [][]core.HostID{{1, 2, 3}, {4, 5, 6}},
		Seed:     21,
	})
	const per = 6
	for i := 0; i < per; i++ {
		for _, src := range []core.HostID{1, 3, 5} {
			if _, err := f.BroadcastFrom(src, []byte{byte(src)}); err != nil {
				t.Fatalf("BroadcastFrom(%d): %v", src, err)
			}
		}
	}
	for _, src := range []core.HostID{1, 3, 5} {
		if !f.WaitStreamDelivered(src, per, waitBudget) {
			t.Errorf("stream %d incomplete; host 2 has %v", src, f.DeliveredOn(2, src))
		}
	}
	if d := f.DuplicateDeliveries(); d != 0 {
		t.Errorf("duplicate deliveries = %d", d)
	}
	// Streams are isolated: host 6 never delivers anything attributed to
	// a stream it shouldn't know.
	if got := f.DeliveredOn(6, 1); got.Max() != per {
		t.Errorf("host 6 stream 1 = %v, want 1..%d", got, per)
	}
}

func TestLiveBroadcastFromNonSourceFails(t *testing.T) {
	f := startFleet(t, live.FleetConfig{
		Hosts:  []core.HostID{1, 2},
		Source: 1,
		Seed:   22,
	})
	if _, err := f.BroadcastFrom(2, []byte("x")); err == nil {
		t.Error("BroadcastFrom(non-source) succeeded")
	}
}

func TestLiveMultiSourceSequencesIndependent(t *testing.T) {
	f := startFleet(t, live.FleetConfig{
		Hosts:   []core.HostID{1, 2, 3},
		Source:  1,
		Sources: []core.HostID{2},
		Seed:    23,
	})
	s1, err := f.BroadcastFrom(1, []byte("a"))
	if err != nil {
		t.Fatal(err)
	}
	s2, err := f.BroadcastFrom(2, []byte("b"))
	if err != nil {
		t.Fatal(err)
	}
	// Each stream numbers from 1 independently.
	if s1 != 1 || s2 != 1 {
		t.Errorf("first seqs = %d, %d; want 1, 1 (independent numbering)", s1, s2)
	}
	if !f.WaitStreamDelivered(1, seqset.Seq(1), waitBudget) ||
		!f.WaitStreamDelivered(2, seqset.Seq(1), waitBudget) {
		t.Fatal("streams incomplete")
	}
}
