package live_test

import (
	"sync"
	"testing"
	"time"

	"rbcast/internal/core"
	"rbcast/internal/live"
	"rbcast/internal/seqset"
)

// Live tests run real goroutines on real clocks; timeouts are generous
// to stay robust on loaded machines while typical convergence is tens of
// milliseconds.
const waitBudget = 15 * time.Second

func startFleet(t *testing.T, cfg live.FleetConfig) *live.Fleet {
	t.Helper()
	f, err := live.StartFleet(cfg)
	if err != nil {
		t.Fatalf("StartFleet: %v", err)
	}
	t.Cleanup(f.Stop)
	return f
}

func TestLiveBroadcastSingleCluster(t *testing.T) {
	f := startFleet(t, live.FleetConfig{
		Hosts:  []core.HostID{1, 2, 3, 4, 5},
		Source: 1,
		Seed:   1,
	})
	for i := 0; i < 10; i++ {
		if _, err := f.Broadcast([]byte("payload")); err != nil {
			t.Fatalf("Broadcast: %v", err)
		}
	}
	if !f.WaitDelivered(10, waitBudget) {
		t.Fatalf("not all hosts delivered 10 messages; host 2 has %v", f.Delivered(2))
	}
	if d := f.DuplicateDeliveries(); d != 0 {
		t.Errorf("duplicate deliveries = %d", d)
	}
	_, _, _, codecErrs := f.Transport.Stats()
	if codecErrs != 0 {
		t.Errorf("wire codec errors = %d", codecErrs)
	}
}

func TestLiveBroadcastClustered(t *testing.T) {
	clusters := [][]core.HostID{{1, 2, 3}, {4, 5, 6}, {7, 8, 9}}
	f := startFleet(t, live.FleetConfig{
		Hosts:    []core.HostID{1, 2, 3, 4, 5, 6, 7, 8, 9},
		Source:   1,
		Clusters: clusters,
		Seed:     2,
	})
	for i := 0; i < 8; i++ {
		if _, err := f.Broadcast([]byte("x")); err != nil {
			t.Fatal(err)
		}
		time.Sleep(2 * time.Millisecond)
	}
	if !f.WaitDelivered(8, waitBudget) {
		for _, h := range []core.HostID{4, 7, 9} {
			t.Logf("host %d delivered %v", h, f.Delivered(h))
		}
		t.Fatal("clustered live broadcast incomplete")
	}
	// Hosts should have inferred their clusters from cost bits.
	var cl []core.HostID
	if err := f.Inspect(5, func(h *core.Host) { cl = h.Cluster() }); err != nil {
		t.Fatal(err)
	}
	want := map[core.HostID]bool{4: true, 5: true, 6: true}
	for _, id := range cl {
		if !want[id] {
			t.Errorf("host 5 believes %d is a cluster mate (cluster %v)", id, cl)
		}
	}
}

func TestLiveBroadcastUnderLoss(t *testing.T) {
	hosts := []core.HostID{1, 2, 3, 4}
	f := startFleet(t, live.FleetConfig{Hosts: hosts, Source: 1, Seed: 3})
	lossy := live.DefaultCheapPath()
	lossy.LossProb = 0.2
	for i, a := range hosts {
		for _, b := range hosts[i+1:] {
			f.Transport.SetPath(a, b, lossy)
		}
	}
	for i := 0; i < 10; i++ {
		if _, err := f.Broadcast([]byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	if !f.WaitDelivered(10, waitBudget) {
		t.Fatalf("lossy live broadcast incomplete; host 3 has %v", f.Delivered(3))
	}
	if d := f.DuplicateDeliveries(); d != 0 {
		t.Errorf("duplicate deliveries = %d", d)
	}
}

func TestLivePartitionHeals(t *testing.T) {
	groups := [][]core.HostID{{1, 2}, {3, 4}}
	f := startFleet(t, live.FleetConfig{
		Hosts:    []core.HostID{1, 2, 3, 4},
		Source:   1,
		Clusters: groups,
		Seed:     4,
	})
	// Let the tree form, then cut the second cluster off.
	if _, err := f.Broadcast([]byte("m1")); err != nil {
		t.Fatal(err)
	}
	if !f.WaitDelivered(1, waitBudget) {
		t.Fatal("initial broadcast incomplete")
	}
	f.Transport.PartitionGroups(groups)
	for i := 0; i < 5; i++ {
		if _, err := f.Broadcast([]byte("m")); err != nil {
			t.Fatal(err)
		}
	}
	// The isolated cluster cannot receive them yet.
	if f.WaitHostDelivered(3, 6, 300*time.Millisecond) {
		t.Fatal("partitioned host received messages through a cut path")
	}
	f.Transport.HealAll()
	if !f.WaitDelivered(6, waitBudget) {
		t.Fatalf("delivery did not resume after heal; host 3 has %v, host 4 has %v",
			f.Delivered(3), f.Delivered(4))
	}
}

func TestLiveConcurrentBroadcasters(t *testing.T) {
	// Hammer Broadcast from several goroutines; the fleet must serialize
	// them onto the source's loop without data races (run under -race).
	f := startFleet(t, live.FleetConfig{
		Hosts:  []core.HostID{1, 2, 3},
		Source: 1,
		Seed:   5,
	})
	const per = 5
	var wg sync.WaitGroup
	seqs := make(chan seqset.Seq, 4*per)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				seq, err := f.Broadcast([]byte("c"))
				if err != nil {
					t.Errorf("Broadcast: %v", err)
					return
				}
				seqs <- seq
			}
		}()
	}
	wg.Wait()
	close(seqs)
	seen := map[seqset.Seq]bool{}
	for s := range seqs {
		if seen[s] {
			t.Errorf("sequence %d assigned twice", s)
		}
		seen[s] = true
	}
	if len(seen) != 4*per {
		t.Fatalf("assigned %d distinct seqs, want %d", len(seen), 4*per)
	}
	if !f.WaitDelivered(seqset.Seq(4*per), waitBudget) {
		t.Fatal("concurrent broadcasts incomplete")
	}
}

func TestLiveStopIdempotentAndPrompt(t *testing.T) {
	f, err := live.StartFleet(live.FleetConfig{
		Hosts:  []core.HostID{1, 2},
		Source: 1,
		Seed:   6,
	})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		f.Stop()
		f.Stop() // second call is a no-op
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(waitBudget):
		t.Fatal("Stop did not return")
	}
	if _, err := f.Broadcast([]byte("x")); err == nil {
		t.Error("Broadcast succeeded after Stop")
	}
}

func TestLiveFleetValidation(t *testing.T) {
	if _, err := live.StartFleet(live.FleetConfig{}); err == nil {
		t.Error("empty fleet accepted")
	}
	if _, err := live.StartFleet(live.FleetConfig{
		Hosts:  []core.HostID{1, 2},
		Source: 9, // not a participant
	}); err == nil {
		t.Error("source outside Hosts accepted")
	}
}

func TestLiveInspect(t *testing.T) {
	f := startFleet(t, live.FleetConfig{
		Hosts:  []core.HostID{1, 2},
		Source: 1,
		Seed:   7,
	})
	var id core.HostID
	if err := f.Inspect(2, func(h *core.Host) { id = h.ID() }); err != nil {
		t.Fatal(err)
	}
	if id != 2 {
		t.Errorf("Inspect saw host %d, want 2", id)
	}
	if err := f.Inspect(99, func(*core.Host) {}); err == nil {
		t.Error("Inspect of unknown host succeeded")
	}
}
