package live

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"time"

	"rbcast/internal/core"
	"rbcast/internal/multi"
	"rbcast/internal/seqset"
	"rbcast/internal/wire"
)

// FleetConfig assembles a live protocol deployment.
type FleetConfig struct {
	// Hosts lists every participant; Source must be among them.
	Hosts  []core.HostID
	Source core.HostID
	// Sources optionally lists additional broadcasting hosts: per the
	// paper's §2, each runs its own identical single-source protocol
	// instance (a stream). When empty, only Source broadcasts. Source is
	// always included.
	Sources []core.HostID
	// Clusters optionally groups hosts; within a group paths are cheap,
	// across groups expensive. Ungrouped host pairs default to cheap.
	Clusters [][]core.HostID
	// Params tunes the protocol. The zero value uses LiveParams().
	Params core.Params
	// Seed drives the transport's randomness and, via JitterSeed, the
	// health layer's deterministic backoff jitter.
	Seed int64
	// OnDeliver, if set, observes every application delivery.
	OnDeliver func(host core.HostID, stream core.HostID, seq seqset.Seq, payload []byte)
}

// LiveParams returns protocol tunables scaled for sub-millisecond
// in-memory paths, so live tests converge in tens of milliseconds.
func LiveParams() core.Params {
	return core.Params{
		TickInterval:      2 * time.Millisecond,
		AttachPeriod:      20 * time.Millisecond,
		InfoClusterPeriod: 8 * time.Millisecond,
		InfoRemotePeriod:  30 * time.Millisecond,
		InfoGlobalPeriod:  60 * time.Millisecond,
		GapClusterPeriod:  12 * time.Millisecond,
		GapRemotePeriod:   40 * time.Millisecond,
		GapGlobalPeriod:   90 * time.Millisecond,
		AttachTimeout:     25 * time.Millisecond,
		ParentTimeout:     120 * time.Millisecond,
		GapFillBatch:      64,
		AttachFillLimit:   256,
	}
}

// Fleet is a running set of live protocol nodes.
type Fleet struct {
	Transport *Transport

	cfg     FleetConfig
	sources []core.HostID
	nodes   map[core.HostID]*node
	rec     *recorder
	started time.Time
	stopOne sync.Once
}

// node owns one host: a single goroutine serializes every interaction
// with the per-stream protocol instances, per their single-threaded
// contract.
type node struct {
	bus   *multi.Bus
	inbox chan inbound
	cmds  chan func(now time.Duration)
	stop  chan struct{}
	done  chan struct{}
	// dec reuses payload and interval buffers across inbound frames; it
	// is only touched from the node goroutine.
	dec wire.Decoder
}

// decode splits a stream-prefixed wire frame using the node's reusable
// decoder, so steady-state inbound traffic decodes without allocating.
// Part-carrying frames (piggyback bundles, sync responses) fall back to
// the general allocating path.
func (n *node) decode(data []byte) (core.HostID, wire.Frame, error) {
	if len(data) < 4 {
		return 0, wire.Frame{}, fmt.Errorf("live: envelope too short")
	}
	stream := core.HostID(binary.BigEndian.Uint32(data[:4]))
	f, err := n.dec.Decode(data[4:])
	if errors.Is(err, wire.ErrHasParts) {
		f, err = wire.Decode(data[4:])
	}
	return stream, f, err
}

// newBus is swappable so tests can fail bus construction for a chosen
// host and exercise StartFleet's mid-loop error path.
var newBus = multi.NewBus

// StartFleet constructs and starts all nodes.
func StartFleet(cfg FleetConfig) (*Fleet, error) {
	if len(cfg.Hosts) == 0 {
		return nil, fmt.Errorf("live: no hosts")
	}
	if cfg.Params == (core.Params{}) {
		cfg.Params = LiveParams()
	}
	sources := []core.HostID{cfg.Source}
	for _, s := range cfg.Sources {
		if s != cfg.Source {
			sources = append(sources, s)
		}
	}
	f := &Fleet{
		Transport: NewTransport(cfg.Hosts, cfg.Seed),
		cfg:       cfg,
		sources:   sources,
		nodes:     make(map[core.HostID]*node, len(cfg.Hosts)),
		rec:       newRecorder(),
		started:   time.Now(),
	}
	if cfg.Clusters != nil {
		f.Transport.SetClusters(cfg.Clusters)
	}
	for _, id := range cfg.Hosts {
		id := id
		env := &nodeEnv{fleet: f, id: id}
		bus, err := newBus(multi.Config{
			ID:         id,
			Peers:      cfg.Hosts,
			Sources:    sources,
			Params:     cfg.Params,
			JitterSeed: cfg.Seed,
		}, env)
		if err != nil {
			f.Stop()
			return nil, err
		}
		inbox, err := f.Transport.inbox(id)
		if err != nil {
			f.Stop()
			return nil, err
		}
		n := &node{
			bus:   bus,
			inbox: inbox,
			cmds:  make(chan func(time.Duration), 16),
			stop:  make(chan struct{}),
			done:  make(chan struct{}),
		}
		f.nodes[id] = n
		// Spawn immediately: runNode owns closing n.done, and Stop waits
		// on done for every registered node. Registering first and
		// spawning in a second loop would make the mid-loop error paths
		// above (which call f.Stop) block forever on nodes whose
		// goroutine never started.
		go f.runNode(n)
	}
	return f, nil
}

// now returns time since fleet start — the virtual "now" hosts see.
func (f *Fleet) now() time.Duration { return time.Since(f.started) }

// runNode is the per-host event loop: ticks, inbound frames, and
// externally injected commands all execute on this goroutine.
func (f *Fleet) runNode(n *node) {
	defer close(n.done)
	ticker := time.NewTicker(f.cfg.Params.TickInterval)
	defer ticker.Stop()
	n.bus.Start(f.now())
	for {
		select {
		case <-n.stop:
			return
		case <-ticker.C:
			n.bus.Tick(f.now())
		case in := <-n.inbox:
			stream, frame, err := n.decode(in.data)
			in.release()
			if err != nil {
				f.Transport.mu.Lock()
				f.Transport.decodeErrors++
				f.Transport.mu.Unlock()
				continue
			}
			if frame.Message.Kind == core.MsgInfo {
				// handleInfo is the one path that retains the decoded
				// Info (core snapshots it into infoView); every other
				// kind merges by membership. Detach it from the storage
				// the decoder will overwrite on the next frame.
				frame.Message.Info = frame.Message.Info.Clone()
			}
			n.bus.HandleMessage(f.now(), frame.From, in.costBit, stream, frame.Message)
		case cmd := <-n.cmds:
			cmd(f.now())
		}
	}
}

// nodeEnv adapts the transport and recorder to multi.Env. Its methods
// are only invoked from the owning node's goroutine.
type nodeEnv struct {
	fleet *Fleet
	id    core.HostID
}

func (e *nodeEnv) Send(to core.HostID, stream core.HostID, m core.Message) {
	e.fleet.Transport.Send(e.id, to, stream, m)
}

func (e *nodeEnv) Deliver(stream core.HostID, seq seqset.Seq, payload []byte) {
	e.fleet.rec.record(e.id, stream, seq)
	if e.fleet.cfg.OnDeliver != nil {
		e.fleet.cfg.OnDeliver(e.id, stream, seq, payload)
	}
}

// Broadcast injects the next data message on the primary source's stream
// and returns once that node's goroutine has processed it.
func (f *Fleet) Broadcast(payload []byte) (seqset.Seq, error) {
	return f.BroadcastFrom(f.cfg.Source, payload)
}

// BroadcastFrom injects the next data message on the given source's
// stream.
func (f *Fleet) BroadcastFrom(source core.HostID, payload []byte) (seqset.Seq, error) {
	n, ok := f.nodes[source]
	if !ok {
		return 0, fmt.Errorf("live: host %d not running", source)
	}
	type outcome struct {
		seq seqset.Seq
		err error
	}
	result := make(chan outcome, 1)
	select {
	case n.cmds <- func(now time.Duration) {
		seq, err := n.bus.Broadcast(now, payload)
		result <- outcome{seq: seq, err: err}
	}:
	case <-n.stop:
		return 0, fmt.Errorf("live: fleet stopped")
	}
	select {
	case out := <-result:
		return out.seq, out.err
	case <-n.stop:
		return 0, fmt.Errorf("live: fleet stopped")
	}
}

// Inspect runs fn on the host's goroutine against the primary stream's
// protocol instance and waits for it — the only safe way to read a live
// host's state.
func (f *Fleet) Inspect(id core.HostID, fn func(h *core.Host)) error {
	return f.InspectStream(id, f.cfg.Source, fn)
}

// InspectStream runs fn against one stream's instance at one host.
func (f *Fleet) InspectStream(id core.HostID, stream core.HostID, fn func(h *core.Host)) error {
	n, ok := f.nodes[id]
	if !ok {
		return fmt.Errorf("live: unknown host %d", id)
	}
	done := make(chan error, 1)
	select {
	case n.cmds <- func(time.Duration) {
		h := n.bus.Instance(stream)
		if h == nil {
			done <- fmt.Errorf("live: unknown stream %d", stream)
			return
		}
		fn(h)
		done <- nil
	}:
	case <-n.stop:
		return fmt.Errorf("live: fleet stopped")
	}
	select {
	case err := <-done:
		return err
	case <-n.stop:
		return fmt.Errorf("live: fleet stopped")
	}
}

// DeliveredAll reports whether every host has delivered 1..n on the
// primary stream.
func (f *Fleet) DeliveredAll(n seqset.Seq) bool {
	return f.rec.deliveredAll(f.cfg.Hosts, f.cfg.Source, n)
}

// WaitDelivered blocks until every host has delivered 1..n on the
// primary stream or the timeout elapses.
func (f *Fleet) WaitDelivered(n seqset.Seq, timeout time.Duration) bool {
	return f.WaitStreamDelivered(f.cfg.Source, n, timeout)
}

// WaitStreamDelivered blocks until every host has delivered 1..n on the
// given stream or the timeout elapses.
func (f *Fleet) WaitStreamDelivered(stream core.HostID, n seqset.Seq, timeout time.Duration) bool {
	return f.rec.wait(func() bool {
		return f.rec.deliveredAllLocked(f.cfg.Hosts, stream, n)
	}, timeout)
}

// WaitHostDelivered blocks until the given host has delivered 1..n on
// the primary stream or the timeout elapses.
func (f *Fleet) WaitHostDelivered(h core.HostID, n seqset.Seq, timeout time.Duration) bool {
	return f.rec.wait(func() bool {
		return f.rec.hostHasAllLocked(h, f.cfg.Source, n)
	}, timeout)
}

// Delivered returns the sequence numbers host h has delivered on the
// primary stream.
func (f *Fleet) Delivered(h core.HostID) seqset.Set {
	return f.rec.snapshot(h, f.cfg.Source)
}

// DeliveredOn returns the sequence numbers host h has delivered on the
// given stream.
func (f *Fleet) DeliveredOn(h core.HostID, stream core.HostID) seqset.Set {
	return f.rec.snapshot(h, stream)
}

// DuplicateDeliveries counts repeated Deliver calls for one
// (host, stream, seq); the protocol guarantees zero.
func (f *Fleet) DuplicateDeliveries() int { return f.rec.duplicates() }

// Stop terminates all nodes and waits for their goroutines.
func (f *Fleet) Stop() {
	f.stopOne.Do(func() {
		f.Transport.stop()
		for _, n := range f.nodes {
			close(n.stop)
		}
		for _, n := range f.nodes {
			<-n.done
		}
	})
}

type hostStream struct {
	host   core.HostID
	stream core.HostID
}

// recorder tracks deliveries with a condition variable so tests can wait
// without polling loops.
type recorder struct {
	mu   sync.Mutex
	cond *sync.Cond
	got  map[hostStream]*seqset.Set
	dups int
}

func newRecorder() *recorder {
	r := &recorder{got: make(map[hostStream]*seqset.Set)}
	r.cond = sync.NewCond(&r.mu)
	return r
}

func (r *recorder) record(h core.HostID, stream core.HostID, q seqset.Seq) {
	r.mu.Lock()
	defer r.mu.Unlock()
	key := hostStream{host: h, stream: stream}
	s, ok := r.got[key]
	if !ok {
		s = &seqset.Set{}
		r.got[key] = s
	}
	if !s.Add(q) {
		r.dups++
	}
	r.cond.Broadcast()
}

func (r *recorder) snapshot(h core.HostID, stream core.HostID) seqset.Set {
	r.mu.Lock()
	defer r.mu.Unlock()
	if s, ok := r.got[hostStream{host: h, stream: stream}]; ok {
		return s.Clone()
	}
	return seqset.Set{}
}

func (r *recorder) duplicates() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dups
}

func (r *recorder) hostHasAllLocked(h core.HostID, stream core.HostID, n seqset.Seq) bool {
	s, ok := r.got[hostStream{host: h, stream: stream}]
	if !ok {
		return n == 0
	}
	return s.Len() >= int(n) && s.Max() == n && s.GapCount() == 0
}

func (r *recorder) deliveredAll(hosts []core.HostID, stream core.HostID, n seqset.Seq) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.deliveredAllLocked(hosts, stream, n)
}

func (r *recorder) deliveredAllLocked(hosts []core.HostID, stream core.HostID, n seqset.Seq) bool {
	for _, h := range hosts {
		if !r.hostHasAllLocked(h, stream, n) {
			return false
		}
	}
	return true
}

// wait blocks on the condition variable until pred holds or timeout.
// pred runs with the recorder's lock held.
func (r *recorder) wait(pred func() bool, timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	// A waker nudges the cond periodically so timeouts are honored even
	// with no deliveries arriving.
	stopWaker := make(chan struct{})
	defer close(stopWaker)
	go func() {
		ticker := time.NewTicker(5 * time.Millisecond)
		defer ticker.Stop()
		for {
			select {
			case <-stopWaker:
				return
			case <-ticker.C:
				r.cond.Broadcast()
			}
		}
	}()
	r.mu.Lock()
	defer r.mu.Unlock()
	for {
		//rblint:ignore locklint condition-variable predicate: contract requires pred to be lock-safe, and cond.Wait releases mu between checks
		if pred() {
			return true
		}
		if time.Now().After(deadline) {
			return false
		}
		r.cond.Wait()
	}
}
