package live

import (
	"bytes"
	"testing"

	"rbcast/internal/core"
	"rbcast/internal/seqset"
	"rbcast/internal/wire"
)

// FuzzDecodeEnvelope drives the stream-prefixed envelope decoder with
// arbitrary bytes. The corpus seeds with well-formed envelopes of every
// message kind plus the short-prefix edge cases. The decoder must never
// panic; whatever it accepts must round-trip through encodeEnvelope
// byte-for-byte. Run with `go test -fuzz FuzzDecodeEnvelope
// ./internal/live` for a real session; as a plain test it replays the
// corpus.
func FuzzDecodeEnvelope(f *testing.F) {
	seeds := []struct {
		stream core.HostID
		frame  wire.Frame
	}{
		{0, wire.Frame{From: 1, Message: core.Message{Kind: core.MsgData, Seq: 9, Payload: []byte("payload")}}},
		{1, wire.Frame{From: 2, Message: core.Message{Kind: core.MsgInfo, Info: seqset.FromRange(1, 8), Parent: 3}}},
		{7, wire.Frame{From: 3, Message: core.Message{Kind: core.MsgAttachReq, Info: seqset.FromSlice([]seqset.Seq{2, 5})}}},
		{1 << 20, wire.Frame{From: 4, Message: core.Message{Kind: core.MsgBundle, Parts: []core.Message{
			{Kind: core.MsgDetach},
			{Kind: core.MsgData, Seq: 1, GapFill: true},
		}}}},
		{2, wire.Frame{From: 5, Message: core.Message{Kind: core.MsgAttachAccept, Info: seqset.FromRange(1, 12)}}},
		{2, wire.Frame{From: 6, Message: core.Message{Kind: core.MsgAttachReject}}},
		{3, wire.Frame{From: 7, Message: core.Message{Kind: core.MsgInfoDelta,
			Info: seqset.FromSlice([]seqset.Seq{6, 7, 10}), Parent: 1, Seq: 10, CheckLen: 8}}},
		{3, wire.Frame{From: 8, Message: core.Message{Kind: core.MsgEcho, Seq: 4, CheckLen: 0xdecafbad}}},
		{3, wire.Frame{From: 9, Message: core.Message{Kind: core.MsgReady, Seq: 4, CheckLen: 0xdecafbad}}},
		// Adversarial shapes from the Byzantine fault-injection layer
		// (internal/adversary). An equivocated pair: the same (from, seq)
		// under two different payloads — each variant is a legal envelope,
		// and the decoder must treat both impartially (detecting the
		// conflict is the protocol's job, not the codec's).
		{4, wire.Frame{From: 10, Message: core.Message{Kind: core.MsgData, Seq: 21, Payload: []byte("genuine")}}},
		{4, wire.Frame{From: 10, Message: core.Message{Kind: core.MsgData, Seq: 21, Payload: []byte("forged-for-5")}}},
		// An oversized single-run INFO claim (interval-coded, so legal on
		// the wire however absurd), and a delta whose checksum can never
		// verify against its runs.
		{5, wire.Frame{From: 11, Message: core.Message{Kind: core.MsgInfo,
			Info: seqset.FromRange(1, 1<<40), Parent: 3}}},
		{5, wire.Frame{From: 12, Message: core.Message{Kind: core.MsgInfoDelta,
			Info: seqset.FromSlice([]seqset.Seq{2}), Seq: 0, CheckLen: ^uint64(0)}}},
		// Catch-up sync kinds: a range request, a part-carrying response
		// that also reports a pruned subset and advertises a snapshot
		// watermark, a resuming snapshot request, and a snapshot chunk.
		{6, wire.Frame{From: 13, Message: core.Message{Kind: core.MsgSyncReq, Seq: 2,
			Info: seqset.FromSlice([]seqset.Seq{2, 3, 7})}}},
		{6, wire.Frame{From: 14, Message: core.Message{Kind: core.MsgSyncResp, Seq: 2,
			Parts: []core.Message{
				{Kind: core.MsgData, Seq: 3, Payload: []byte("fill"), GapFill: true},
			},
			Info: seqset.FromRange(2, 2), CheckLen: 6}}},
		{6, wire.Frame{From: 15, Message: core.Message{Kind: core.MsgSnapReq, Seq: 1024, CheckLen: 6}}},
		{6, wire.Frame{From: 16, Message: core.Message{Kind: core.MsgSnapChunk, Seq: 1024,
			Payload: []byte("chunk"), CheckLen: 4096, Info: seqset.FromRange(1, 6)}}},
	}
	for _, s := range seeds {
		data, err := encodeEnvelope(s.stream, s.frame)
		if err != nil {
			f.Fatalf("seed encode: %v", err)
		}
		f.Add(data)
	}
	// The framing edge: empty, shorter than the 4-byte stream prefix,
	// exactly the prefix, and a prefix followed by garbage.
	f.Add([]byte{})
	f.Add([]byte{0x01, 0x02})
	f.Add([]byte{0, 0, 0, 5})
	f.Add(append([]byte{0, 0, 0, 5}, 0xFF, 0xB7, 0x00))

	f.Fuzz(func(t *testing.T, data []byte) {
		stream, frame, err := decodeEnvelope(data)
		if err != nil {
			return // rejection is fine; panicking is not
		}
		if len(data) < 4 {
			t.Fatalf("accepted %d-byte envelope, shorter than the stream prefix", len(data))
		}
		re, err := encodeEnvelope(stream, frame)
		if err != nil {
			t.Fatalf("re-encode of accepted envelope failed: %v (stream %d, frame %+v)", err, stream, frame)
		}
		// The stream prefix is fixed-width, so it round-trips exactly.
		if !bytes.Equal(re[:4], data[:4]) {
			t.Fatalf("stream prefix diverged: in %x, out %x", data[:4], re[:4])
		}
		// The frame body round-trips semantically (the wire decoder
		// tolerates some non-canonical encodings, so byte equality would
		// be too strong).
		stream2, frame2, err := decodeEnvelope(re)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if stream2 != stream {
			t.Fatalf("stream diverged: %d vs %d", stream, stream2)
		}
		if frame2.From != frame.From || frame2.Message.Kind != frame.Message.Kind ||
			frame2.Message.Seq != frame.Message.Seq ||
			frame2.Message.GapFill != frame.Message.GapFill ||
			frame2.Message.Parent != frame.Message.Parent ||
			string(frame2.Message.Payload) != string(frame.Message.Payload) ||
			!frame2.Message.Info.Equal(frame.Message.Info) ||
			len(frame2.Message.Parts) != len(frame.Message.Parts) {
			t.Fatalf("round trip diverged:\n%+v\nvs\n%+v", frame, frame2)
		}
	})
}
