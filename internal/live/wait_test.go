package live_test

import (
	"runtime"
	"testing"
	"time"

	"rbcast/internal/core"
	"rbcast/internal/live"
)

// waitForGoroutines polls until the goroutine count drops back to the
// baseline (plus slack for runtime housekeeping) or the budget elapses,
// returning the final count.
func waitForGoroutines(baseline int, budget time.Duration) int {
	deadline := time.Now().Add(budget)
	for {
		n := runtime.NumGoroutine()
		if n <= baseline || time.Now().After(deadline) {
			return n
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestWaitDeliveredTimesOut pins the wait path's failure mode: with no
// traffic at all, WaitDelivered must return false close to its timeout —
// the internal waker goroutine, not a delivery, unblocks the condition
// variable so the deadline is honored.
func TestWaitDeliveredTimesOut(t *testing.T) {
	f := startFleet(t, live.FleetConfig{
		Hosts:  []core.HostID{1, 2, 3},
		Source: 1,
		Seed:   11,
	})
	const timeout = 200 * time.Millisecond
	start := time.Now()
	if f.WaitDelivered(5, timeout) {
		t.Fatal("WaitDelivered reported delivery with nothing broadcast")
	}
	elapsed := time.Since(start)
	if elapsed < timeout {
		t.Errorf("WaitDelivered returned after %v, before the %v timeout", elapsed, timeout)
	}
	if elapsed > timeout+5*time.Second {
		t.Errorf("WaitDelivered took %v, far past the %v timeout", elapsed, timeout)
	}
	// The failed wait must not poison later ones: deliver for real and
	// wait again.
	if _, err := f.Broadcast([]byte("late")); err != nil {
		t.Fatalf("Broadcast: %v", err)
	}
	if !f.WaitDelivered(1, waitBudget) {
		t.Fatal("delivery wait failed after a timed-out wait")
	}
}

// TestWaitWakerShutsDown pins the waker goroutine's lifecycle: every
// wait (successful or timed out) must tear its waker down, so repeated
// waits do not accumulate goroutines.
func TestWaitWakerShutsDown(t *testing.T) {
	f := startFleet(t, live.FleetConfig{
		Hosts:  []core.HostID{1, 2},
		Source: 1,
		Seed:   12,
	})
	if _, err := f.Broadcast([]byte("x")); err != nil {
		t.Fatalf("Broadcast: %v", err)
	}
	if !f.WaitDelivered(1, waitBudget) {
		t.Fatal("initial delivery wait failed")
	}
	baseline := runtime.NumGoroutine()
	for i := 0; i < 50; i++ {
		if !f.WaitDelivered(1, waitBudget) {
			t.Fatal("satisfied wait returned false")
		}
		if f.WaitDelivered(2, time.Millisecond) {
			t.Fatal("wait for undelivered seq returned true")
		}
	}
	if n := waitForGoroutines(baseline, 5*time.Second); n > baseline {
		t.Errorf("goroutines grew from %d to %d across 100 waits — waker leak", baseline, n)
	}
}

// TestFleetStopReleasesGoroutines: a stopped fleet must release every
// node and transport goroutine, even with a wait in flight at stop time.
func TestFleetStopReleasesGoroutines(t *testing.T) {
	baseline := runtime.NumGoroutine()
	f, err := live.StartFleet(live.FleetConfig{
		Hosts:  []core.HostID{1, 2, 3, 4, 5},
		Source: 1,
		Seed:   13,
	})
	if err != nil {
		t.Fatalf("StartFleet: %v", err)
	}
	if _, err := f.Broadcast([]byte("x")); err != nil {
		t.Fatalf("Broadcast: %v", err)
	}
	if !f.WaitDelivered(1, waitBudget) {
		t.Fatal("delivery wait failed")
	}
	waiting := make(chan bool)
	go func() { waiting <- f.WaitDelivered(100, 2*time.Second) }()
	time.Sleep(20 * time.Millisecond) // let the wait block
	f.Stop()
	if got := <-waiting; got {
		t.Error("in-flight wait reported delivery after Stop")
	}
	if n := waitForGoroutines(baseline, 5*time.Second); n > baseline {
		t.Errorf("goroutines at %d after Stop, baseline %d — node or transport leak", n, baseline)
	}
}
