// Package live runs the protocol in real time: one goroutine per host
// over an in-memory transport with injectable delay, loss, and
// partitions. The same core.Host state machine that the deterministic
// harness drives runs here unchanged, demonstrating that the protocol
// core is runtime-agnostic — and exercising it under genuine concurrency
// and the binary wire codec.
package live

import (
	"encoding/binary"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"rbcast/internal/core"
	"rbcast/internal/wire"
)

// envelopePool recycles envelope buffers between Send and the consuming
// node loop, so steady-state traffic allocates no per-frame garbage.
var envelopePool = sync.Pool{New: func() any {
	b := make([]byte, 0, 512)
	return &b
}}

func getEnvelope() *[]byte { return envelopePool.Get().(*[]byte) }

func putEnvelope(b *[]byte) {
	*b = (*b)[:0]
	envelopePool.Put(b)
}

// appendEnvelope appends a stream-prefixed wire frame to dst. On error
// dst is returned unextended.
func appendEnvelope(dst []byte, stream core.HostID, f wire.Frame) ([]byte, error) {
	base := len(dst)
	dst = binary.BigEndian.AppendUint32(dst, uint32(stream))
	out, err := wire.AppendEncode(dst, f)
	if err != nil {
		return out[:base], err
	}
	return out, nil
}

// encodeEnvelope prefixes a wire frame with its 4-byte stream ID.
func encodeEnvelope(stream core.HostID, f wire.Frame) ([]byte, error) {
	return appendEnvelope(nil, stream, f)
}

// decodeEnvelope splits a stream-prefixed wire frame.
func decodeEnvelope(data []byte) (core.HostID, wire.Frame, error) {
	if len(data) < 4 {
		return 0, wire.Frame{}, fmt.Errorf("live: envelope too short")
	}
	stream := core.HostID(binary.BigEndian.Uint32(data[:4]))
	f, err := wire.Decode(data[4:])
	return stream, f, err
}

// PathConfig describes the host-to-host path in one direction pair. The
// live transport abstracts the subnetwork at path level: what the
// protocol observes (delay, loss, cost bit, reachability) is what
// matters, not individual switches.
type PathConfig struct {
	// Up reports whether the pair can communicate at all.
	Up bool
	// Expensive sets the cost bit on messages crossing this path.
	Expensive bool
	// Delay is the one-way latency; Jitter adds uniform [0, Jitter).
	Delay  time.Duration
	Jitter time.Duration
	// LossProb silently drops messages.
	LossProb float64
}

// DefaultCheapPath is the intra-cluster default: fast and reliable.
func DefaultCheapPath() PathConfig {
	return PathConfig{Up: true, Delay: 200 * time.Microsecond, Jitter: 100 * time.Microsecond}
}

// DefaultExpensivePath is the inter-cluster default.
func DefaultExpensivePath() PathConfig {
	return PathConfig{Up: true, Expensive: true, Delay: 2 * time.Millisecond, Jitter: time.Millisecond}
}

type pathKey struct{ a, b core.HostID }

func keyFor(a, b core.HostID) pathKey {
	if a > b {
		a, b = b, a
	}
	return pathKey{a: a, b: b}
}

type inbound struct {
	costBit bool
	data    []byte
	// buf is the pooled backing store of data; release returns it once
	// the frame has been decoded (wire.Decode copies payloads).
	buf *[]byte
}

func (in inbound) release() {
	if in.buf != nil {
		putEnvelope(in.buf)
	}
}

// Transport is the in-memory network. Safe for concurrent use.
type Transport struct {
	mu      sync.Mutex
	paths   map[pathKey]PathConfig
	inboxes map[core.HostID]chan inbound
	rng     *rand.Rand
	stopped bool

	// Stats are updated atomically under mu.
	sent, dropped, lost, decodeErrors uint64
}

// NewTransport creates a transport for the given hosts with every path
// set to the cheap default.
func NewTransport(hosts []core.HostID, seed int64) *Transport {
	t := &Transport{
		paths:   make(map[pathKey]PathConfig),
		inboxes: make(map[core.HostID]chan inbound, len(hosts)),
		rng:     rand.New(rand.NewSource(seed)),
	}
	for _, h := range hosts {
		// A bounded mailbox models finite network buffering: when a host
		// falls behind, excess frames are dropped — the protocol tolerates
		// arbitrary loss by design.
		t.inboxes[h] = make(chan inbound, 4096)
	}
	for i, a := range hosts {
		for _, b := range hosts[i+1:] {
			t.paths[keyFor(a, b)] = DefaultCheapPath()
		}
	}
	return t
}

// SetPath configures the path between two hosts (both directions).
func (t *Transport) SetPath(a, b core.HostID, cfg PathConfig) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.paths[keyFor(a, b)] = cfg
}

// Path returns the current path configuration between two hosts.
func (t *Transport) Path(a, b core.HostID) PathConfig {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.paths[keyFor(a, b)]
}

// SetClusters configures paths so that hosts within one group communicate
// over cheap paths and hosts in different groups over expensive ones.
func (t *Transport) SetClusters(groups [][]core.HostID) {
	group := make(map[core.HostID]int)
	for g, hosts := range groups {
		for _, h := range hosts {
			group[h] = g + 1
		}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	for key := range t.paths {
		ga, gb := group[key.a], group[key.b]
		if ga != 0 && ga == gb {
			t.paths[key] = DefaultCheapPath()
		} else {
			t.paths[key] = DefaultExpensivePath()
		}
	}
}

// SetReachable flips only the Up bit between two hosts.
func (t *Transport) SetReachable(a, b core.HostID, up bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	key := keyFor(a, b)
	cfg := t.paths[key]
	cfg.Up = up
	t.paths[key] = cfg
}

// PartitionGroups cuts every path between hosts of different groups
// (paths within a group are untouched).
func (t *Transport) PartitionGroups(groups [][]core.HostID) {
	group := make(map[core.HostID]int)
	for g, hosts := range groups {
		for _, h := range hosts {
			group[h] = g + 1
		}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	for key := range t.paths {
		if group[key.a] != group[key.b] {
			cfg := t.paths[key]
			cfg.Up = false
			t.paths[key] = cfg
		}
	}
}

// HealAll brings every path up.
func (t *Transport) HealAll() {
	t.mu.Lock()
	defer t.mu.Unlock()
	for key, cfg := range t.paths {
		cfg.Up = true
		t.paths[key] = cfg
	}
}

// Send encodes and transmits a frame on the given stream (stream 0 is
// conventionally unused; multi-source fleets key streams by source host),
// applying the path's failure model. It never blocks: full mailboxes
// drop, exactly like a congested network.
func (t *Transport) Send(from, to core.HostID, stream core.HostID, m core.Message) {
	bp := getEnvelope()
	data, err := appendEnvelope((*bp)[:0], stream, wire.Frame{From: from, Message: m})
	if err != nil {
		putEnvelope(bp)
		// Outbound messages are produced by our own protocol code; an
		// encode failure is a bug surfaced via the counter.
		t.mu.Lock()
		t.decodeErrors++
		t.mu.Unlock()
		return
	}
	*bp = data
	t.mu.Lock()
	if t.stopped {
		t.mu.Unlock()
		putEnvelope(bp)
		return
	}
	cfg, ok := t.paths[keyFor(from, to)]
	inbox, ok2 := t.inboxes[to]
	if !ok || !ok2 || !cfg.Up {
		t.dropped++
		t.mu.Unlock()
		putEnvelope(bp)
		return
	}
	if cfg.LossProb > 0 && t.rng.Float64() < cfg.LossProb {
		t.lost++
		t.mu.Unlock()
		putEnvelope(bp)
		return
	}
	delay := cfg.Delay
	if cfg.Jitter > 0 {
		delay += time.Duration(t.rng.Int63n(int64(cfg.Jitter)))
	}
	t.sent++
	t.mu.Unlock()

	msg := inbound{costBit: cfg.Expensive, data: data, buf: bp}
	time.AfterFunc(delay, func() {
		select {
		case inbox <- msg:
		default:
			t.mu.Lock()
			t.dropped++
			t.mu.Unlock()
			msg.release()
		}
	})
}

// Stats returns (sent, dropped, lost, codec errors).
func (t *Transport) Stats() (sent, dropped, lost, codecErrs uint64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.sent, t.dropped, t.lost, t.decodeErrors
}

// stop makes all future sends no-ops.
func (t *Transport) stop() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.stopped = true
}

func (t *Transport) inbox(h core.HostID) (chan inbound, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	ch, ok := t.inboxes[h]
	if !ok {
		return nil, fmt.Errorf("live: unknown host %d", h)
	}
	return ch, nil
}
