package seqset

import (
	"math/rand"
	"testing"
)

// model is the naive reference implementation: membership as a plain
// map. Pruning deletes; a pruned number can be re-added, exactly like
// the real Set (callers needing a permanent floor keep one themselves —
// see core.Host.prunedTo). Every Set operation must agree with it.
type model struct {
	has map[Seq]bool
}

func newModel() *model { return &model{has: make(map[Seq]bool)} }

func (m *model) prune(upTo Seq) {
	for q := range m.has {
		if q <= upTo {
			delete(m.has, q)
		}
	}
}

// TestModelRandomized drives a Set and the map model through the same
// random operation sequence — adds, range adds, unions, prefix prunes —
// and demands identical observable behavior (membership, length,
// extrema, iteration order, diffs) after every step. The run invariant
// (sorted, disjoint, non-adjacent) is re-checked each step too.
func TestModelRandomized(t *testing.T) {
	const (
		universe = 72 // small, so operations collide often
		steps    = 4000
	)
	rng := rand.New(rand.NewSource(7))
	var s Set
	m := newModel()

	verify := func(step int, op string) {
		t.Helper()
		if err := s.check(); err != nil {
			t.Fatalf("step %d (%s): invariant violated: %v (set %v)", step, op, err, s)
		}
		if got, want := s.Len(), len(m.has); got != want {
			t.Fatalf("step %d (%s): Len = %d, model has %d (set %v)", step, op, got, want, s)
		}
		var wantMin, wantMax Seq
		for q := range m.has {
			if wantMin == 0 || q < wantMin {
				wantMin = q
			}
			if q > wantMax {
				wantMax = q
			}
		}
		if s.Min() != wantMin || s.Max() != wantMax {
			t.Fatalf("step %d (%s): Min/Max = %d/%d, model %d/%d", step, op, s.Min(), s.Max(), wantMin, wantMax)
		}
		for q := Seq(0); q <= universe+2; q++ {
			if s.Contains(q) != m.has[q] {
				t.Fatalf("step %d (%s): Contains(%d) = %v, model %v (set %v)",
					step, op, q, s.Contains(q), m.has[q], s)
			}
		}
		// Each must visit exactly the members, ascending.
		var prev Seq
		count := 0
		s.Each(func(q Seq) bool {
			if q <= prev {
				t.Fatalf("step %d (%s): Each not ascending: %d after %d", step, op, q, prev)
			}
			if !m.has[q] {
				t.Fatalf("step %d (%s): Each visited non-member %d", step, op, q)
			}
			prev = q
			count++
			return true
		})
		if count != len(m.has) {
			t.Fatalf("step %d (%s): Each visited %d members, model has %d", step, op, count, len(m.has))
		}
	}

	for step := 0; step < steps; step++ {
		switch rng.Intn(10) {
		case 0, 1, 2, 3: // single add (the hot path)
			q := Seq(1 + rng.Intn(universe))
			changed := s.Add(q)
			if changed != !m.has[q] {
				t.Fatalf("step %d: Add(%d) = %v, model had %v", step, q, changed, m.has[q])
			}
			m.has[q] = true
			verify(step, "add")
		case 4, 5: // range add
			lo := Seq(1 + rng.Intn(universe))
			hi := lo + Seq(rng.Intn(universe/4))
			s.AddRange(lo, hi)
			for q := lo; q <= hi; q++ {
				m.has[q] = true
			}
			verify(step, "addrange")
		case 6: // union with a random small set
			var other Set
			om := make(map[Seq]bool)
			for i, n := 0, rng.Intn(6); i < n; i++ {
				q := Seq(1 + rng.Intn(universe))
				other.Add(q)
				om[q] = true
			}
			s.Union(other)
			for q := range om {
				m.has[q] = true
			}
			verify(step, "union")
		case 7: // diff against a random set is pure: no mutation
			var other Set
			for i, n := 0, rng.Intn(8); i < n; i++ {
				other.Add(Seq(1 + rng.Intn(universe)))
			}
			d := s.Diff(other)
			if err := d.check(); err != nil {
				t.Fatalf("step %d: Diff result invalid: %v", step, err)
			}
			for q := Seq(1); q <= universe; q++ {
				want := m.has[q] && !other.Contains(q)
				if d.Contains(q) != want {
					t.Fatalf("step %d: Diff.Contains(%d) = %v, want %v", step, q, d.Contains(q), want)
				}
			}
			verify(step, "diff")
		case 8: // prefix prune (the §6 operation)
			upTo := Seq(rng.Intn(universe))
			s.Prune(upTo)
			m.prune(upTo)
			verify(step, "prune")
		case 9: // clone is detached from the original
			c := s.Clone()
			c.Add(Seq(1 + rng.Intn(universe)))
			verify(step, "clone")
		}
	}
}

// TestAddRangeLarge pins the performance contract the wire decoder
// depends on: inserting an astronomically wide interval is O(runs), not
// O(width). Before the run-splicing AddRange this test would hang for
// centuries on a decoded frame advertising [2, 2^61].
func TestAddRangeLarge(t *testing.T) {
	var s Set
	s.Add(1)
	s.Add(5)
	s.AddRange(2, 1<<61)
	mustCheck(t, s)
	if s.RunCount() != 1 {
		t.Fatalf("RunCount = %d, want 1 (runs %v)", s.RunCount(), s)
	}
	if s.Min() != 1 || s.Max() != 1<<61 {
		t.Fatalf("Min/Max = %d/%d, want 1/%d", s.Min(), s.Max(), Seq(1<<61))
	}
	if !s.Contains(1 << 60) {
		t.Error("Contains(2^60) = false inside the run")
	}

	// FromIntervals is the decoder's entry point; huge and overlapping
	// intervals must both stay cheap and canonical.
	set, err := FromIntervals([]Interval{{Lo: 2, Hi: 1 << 61}, {Lo: 1, Hi: 3}, {Lo: 1 << 61, Hi: 1<<61 + 1}})
	if err != nil {
		t.Fatalf("FromIntervals: %v", err)
	}
	mustCheck(t, set)
	if set.RunCount() != 1 || set.Min() != 1 || set.Max() != 1<<61+1 {
		t.Fatalf("got %v, want one run [1, 2^61+1]", set)
	}
}

// TestAddRangeSplicing covers the branchy cases of the run-splicing
// insert directly: standalone before, standalone after, bridging
// several runs, extending by adjacency on both sides, and full overlap.
func TestAddRangeSplicing(t *testing.T) {
	build := func(ivs ...Interval) Set {
		s, err := FromIntervals(ivs)
		if err != nil {
			t.Fatalf("FromIntervals(%v): %v", ivs, err)
		}
		return s
	}
	cases := []struct {
		name   string
		start  Set
		lo, hi Seq
		want   string
	}{
		{"into-empty", Set{}, 5, 9, "{5-9}"},
		{"before-all", build(Interval{Lo: 10, Hi: 12}), 2, 4, "{2-4,10-12}"},
		{"after-all", build(Interval{Lo: 1, Hi: 3}), 30, 31, "{1-3,30-31}"},
		{"adjacent-below", build(Interval{Lo: 10, Hi: 12}), 5, 9, "{5-12}"},
		{"adjacent-above", build(Interval{Lo: 10, Hi: 12}), 13, 20, "{10-20}"},
		{"bridge-two", build(Interval{Lo: 1, Hi: 3}, Interval{Lo: 8, Hi: 9}), 4, 7, "{1-9}"},
		{"swallow-many", build(Interval{Lo: 2, Hi: 3}, Interval{Lo: 6, Hi: 7}, Interval{Lo: 11, Hi: 12}), 1, 20, "{1-20}"},
		{"inside-existing", build(Interval{Lo: 1, Hi: 30}), 10, 12, "{1-30}"},
		{"between-gap", build(Interval{Lo: 1, Hi: 3}, Interval{Lo: 20, Hi: 22}), 8, 10, "{1-3,8-10,20-22}"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := tc.start
			s.AddRange(tc.lo, tc.hi)
			mustCheck(t, s)
			if got := s.String(); got != tc.want {
				t.Errorf("AddRange(%d, %d) = %s, want %s", tc.lo, tc.hi, got, tc.want)
			}
		})
	}
}
