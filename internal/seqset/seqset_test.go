package seqset

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func mustCheck(t *testing.T, s Set) {
	t.Helper()
	if err := s.check(); err != nil {
		t.Fatalf("invariant violated: %v (set %v)", err, s)
	}
}

func TestZeroValueEmpty(t *testing.T) {
	var s Set
	if !s.Empty() || s.Len() != 0 || s.Max() != 0 || s.Min() != 0 {
		t.Errorf("zero Set not empty: %v", s)
	}
	if s.Contains(1) {
		t.Error("empty set contains 1")
	}
	if s.String() != "{}" {
		t.Errorf("String() = %q, want {}", s.String())
	}
}

func TestAddBasic(t *testing.T) {
	var s Set
	for _, q := range []Seq{5, 3, 7, 4, 1} {
		if !s.Add(q) {
			t.Errorf("Add(%d) = false, want true", q)
		}
		mustCheck(t, s)
	}
	if s.Add(3) {
		t.Error("re-Add(3) = true, want false")
	}
	if s.Add(0) {
		t.Error("Add(0) = true, want false")
	}
	want := []Seq{1, 3, 4, 5, 7}
	if got := s.Slice(); !reflect.DeepEqual(got, want) {
		t.Errorf("Slice() = %v, want %v", got, want)
	}
	if s.RunCount() != 3 { // {1},{3-5},{7}
		t.Errorf("RunCount() = %d, want 3", s.RunCount())
	}
}

func TestAddMergesRuns(t *testing.T) {
	var s Set
	s.Add(1)
	s.Add(3)
	mustCheck(t, s)
	if s.RunCount() != 2 {
		t.Fatalf("RunCount = %d, want 2", s.RunCount())
	}
	s.Add(2) // bridges {1} and {3}
	mustCheck(t, s)
	if s.RunCount() != 1 {
		t.Errorf("RunCount after bridge = %d, want 1", s.RunCount())
	}
	if s.String() != "{1-3}" {
		t.Errorf("String() = %q, want {1-3}", s.String())
	}
}

func TestAddExtendDown(t *testing.T) {
	var s Set
	s.AddRange(5, 8)
	s.Add(4)
	mustCheck(t, s)
	if s.String() != "{4-8}" {
		t.Errorf("String() = %q, want {4-8}", s.String())
	}
}

func TestContains(t *testing.T) {
	s := FromSlice([]Seq{1, 2, 3, 10, 11, 20})
	for _, q := range []Seq{1, 2, 3, 10, 11, 20} {
		if !s.Contains(q) {
			t.Errorf("Contains(%d) = false", q)
		}
	}
	for _, q := range []Seq{0, 4, 9, 12, 19, 21, 1000} {
		if s.Contains(q) {
			t.Errorf("Contains(%d) = true", q)
		}
	}
}

func TestFromRange(t *testing.T) {
	s := FromRange(3, 6)
	if got := s.Slice(); !reflect.DeepEqual(got, []Seq{3, 4, 5, 6}) {
		t.Errorf("FromRange(3,6) = %v", got)
	}
	for _, bad := range [][2]Seq{{0, 5}, {6, 3}} {
		bad := bad
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("FromRange(%d,%d) did not panic", bad[0], bad[1])
				}
			}()
			FromRange(bad[0], bad[1])
		}()
	}
}

func TestUnionDiff(t *testing.T) {
	a := FromSlice([]Seq{1, 2, 5, 6})
	b := FromSlice([]Seq{2, 3, 6, 9})
	u := a.Clone()
	u.Union(b)
	mustCheck(t, u)
	if got := u.Slice(); !reflect.DeepEqual(got, []Seq{1, 2, 3, 5, 6, 9}) {
		t.Errorf("Union = %v", got)
	}
	d := a.Diff(b)
	mustCheck(t, d)
	if got := d.Slice(); !reflect.DeepEqual(got, []Seq{1, 5}) {
		t.Errorf("Diff = %v", got)
	}
	// Diff with empty set is identity.
	if !a.Diff(Set{}).Equal(a) {
		t.Error("Diff(empty) != identity")
	}
	// Diff of a set with itself is empty.
	if !a.Diff(a).Empty() {
		t.Error("Diff(self) not empty")
	}
}

func TestEqual(t *testing.T) {
	a := FromSlice([]Seq{1, 2, 3})
	b := FromRange(1, 3)
	if !a.Equal(b) {
		t.Error("equal sets reported unequal")
	}
	b.Add(5)
	if a.Equal(b) {
		t.Error("unequal sets reported equal")
	}
}

func TestGaps(t *testing.T) {
	tests := []struct {
		name string
		in   []Seq
		want []Seq
	}{
		{"empty", nil, nil},
		{"contiguous from 1", []Seq{1, 2, 3}, nil},
		{"missing prefix", []Seq{3, 4}, []Seq{1, 2}},
		{"interior gaps", []Seq{1, 4, 6}, []Seq{2, 3, 5}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			s := FromSlice(tt.in)
			if got := s.Gaps(); !reflect.DeepEqual(got, tt.want) {
				t.Errorf("Gaps() = %v, want %v", got, tt.want)
			}
			if got, want := s.GapCount(), len(tt.want); got != want {
				t.Errorf("GapCount() = %d, want %d", got, want)
			}
		})
	}
}

func TestPrune(t *testing.T) {
	s := FromSlice([]Seq{1, 2, 3, 7, 8, 12})
	s.Prune(7)
	mustCheck(t, s)
	if got := s.Slice(); !reflect.DeepEqual(got, []Seq{8, 12}) {
		t.Errorf("after Prune(7): %v", got)
	}
	s.Prune(0) // no-op
	if got := s.Slice(); !reflect.DeepEqual(got, []Seq{8, 12}) {
		t.Errorf("after Prune(0): %v", got)
	}
	s.Prune(100)
	if !s.Empty() {
		t.Errorf("after Prune(100): %v, want empty", s)
	}
}

func TestPruneMidRun(t *testing.T) {
	s := FromRange(1, 10)
	s.Prune(4)
	mustCheck(t, s)
	if s.String() != "{5-10}" {
		t.Errorf("after Prune(4): %v", s)
	}
}

func TestFromIntervals(t *testing.T) {
	s, err := FromIntervals([]Interval{{5, 7}, {1, 2}, {6, 9}})
	if err != nil {
		t.Fatalf("FromIntervals: %v", err)
	}
	mustCheck(t, s)
	if got := s.Slice(); !reflect.DeepEqual(got, []Seq{1, 2, 5, 6, 7, 8, 9}) {
		t.Errorf("FromIntervals = %v", got)
	}
	if _, err := FromIntervals([]Interval{{0, 3}}); err == nil {
		t.Error("FromIntervals accepted Lo=0")
	}
	if _, err := FromIntervals([]Interval{{5, 3}}); err == nil {
		t.Error("FromIntervals accepted Lo>Hi")
	}
}

func TestIntervalsRoundTrip(t *testing.T) {
	s := FromSlice([]Seq{1, 2, 9, 11, 12, 13})
	got, err := FromIntervals(s.Intervals())
	if err != nil {
		t.Fatalf("round trip: %v", err)
	}
	if !got.Equal(s) {
		t.Errorf("round trip %v != %v", got, s)
	}
}

func TestCloneIsDeep(t *testing.T) {
	a := FromRange(1, 5)
	b := a.Clone()
	b.Add(100)
	if a.Contains(100) {
		t.Error("mutating clone affected original")
	}
}

func TestEachEarlyStop(t *testing.T) {
	s := FromRange(1, 100)
	n := 0
	s.Each(func(Seq) bool {
		n++
		return n < 5
	})
	if n != 5 {
		t.Errorf("Each visited %d, want 5", n)
	}
}

func TestOrdering(t *testing.T) {
	empty := Set{}
	low := FromRange(1, 3)
	highA := FromSlice([]Seq{9})
	highB := FromSlice([]Seq{1, 9})
	if !Less(empty, low) || Less(low, empty) {
		t.Error("empty < non-empty ordering wrong")
	}
	if !Similar(empty, Set{}) {
		t.Error("empty ≃ empty wrong")
	}
	if !Less(low, highA) {
		t.Error("Less({1-3},{9}) = false")
	}
	if !Similar(highA, highB) {
		t.Error("Similar({9},{1,9}) = false — ordering must use max only")
	}
	if !LessOrSimilar(highA, highB) || !LessOrSimilar(low, highA) {
		t.Error("LessOrSimilar wrong")
	}
	if LessOrSimilar(highA, low) {
		t.Error("LessOrSimilar({9},{1-3}) = true")
	}
}

// Property: a Set agrees with a reference map implementation under a
// random operation sequence.
func TestQuickAgainstMap(t *testing.T) {
	f := func(ops []uint16, seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var s Set
		ref := map[Seq]bool{}
		for _, op := range ops {
			q := Seq(op%200) + 1
			switch rng.Intn(3) {
			case 0:
				s.Add(q)
				ref[q] = true
			case 1:
				lo := q
				hi := lo + Seq(rng.Intn(5))
				s.AddRange(lo, hi)
				for x := lo; x <= hi; x++ {
					ref[x] = true
				}
			case 2:
				if s.Contains(q) != ref[q] {
					return false
				}
			}
			if s.check() != nil {
				return false
			}
		}
		if s.Len() != len(ref) {
			return false
		}
		for q := range ref {
			if !s.Contains(q) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: Union is commutative and Diff obeys A = (A∖B) ∪ (A∩B).
func TestQuickUnionDiffLaws(t *testing.T) {
	gen := func(rng *rand.Rand) Set {
		var s Set
		n := rng.Intn(20)
		for i := 0; i < n; i++ {
			s.Add(Seq(rng.Intn(60)) + 1)
		}
		return s
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a, b := gen(rng), gen(rng)
		ab := a.Clone()
		ab.Union(b)
		ba := b.Clone()
		ba.Union(a)
		if !ab.Equal(ba) {
			return false
		}
		// A∖B ∪ (A ∖ (A∖B)) == A
		diff := a.Diff(b)
		inter := a.Diff(diff)
		re := diff.Clone()
		re.Union(inter)
		if !re.Equal(a) {
			return false
		}
		// Diff members are in a and not in b.
		ok := true
		diff.Each(func(q Seq) bool {
			if !a.Contains(q) || b.Contains(q) {
				ok = false
				return false
			}
			return true
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: interval round trip preserves membership; Gaps ∪ Set covers
// [1, Max] exactly.
func TestQuickGapsPartition(t *testing.T) {
	f := func(raw []uint16) bool {
		var s Set
		for _, r := range raw {
			s.Add(Seq(r%100) + 1)
		}
		rt, err := FromIntervals(s.Intervals())
		if err != nil || !rt.Equal(s) {
			return false
		}
		gaps := FromSlice(s.Gaps())
		total := gaps.Len() + s.Len()
		if s.Max() != 0 && total != int(s.Max()) {
			return false
		}
		// Gaps and members are disjoint.
		disjoint := true
		gaps.Each(func(q Seq) bool {
			if s.Contains(q) {
				disjoint = false
				return false
			}
			return true
		})
		return disjoint
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkAddSequential(b *testing.B) {
	var s Set
	for i := 0; i < b.N; i++ {
		s.Add(Seq(i + 1))
	}
}

func BenchmarkAddScattered(b *testing.B) {
	// Scattered adds into a set of bounded size: protocol INFO sets are
	// mostly contiguous with a few holes, so steady state is a handful of
	// runs, not an ever-growing fragmentation. Rebuild periodically to
	// keep the measurement at that steady state.
	rng := rand.New(rand.NewSource(7))
	var s Set
	for i := 0; i < b.N; i++ {
		if i%4096 == 0 {
			s = Set{}
		}
		s.Add(Seq(rng.Intn(1<<14)) + 1)
	}
}

func BenchmarkDiffLargeContiguous(b *testing.B) {
	a := FromRange(1, 10000)
	c := FromRange(1, 9990)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = a.Diff(c)
	}
}
