package seqset

import "testing"

// The hot-path contract the //rblint:hotpath directives promise
// statically is pinned dynamically here: DiffInto with a reused scratch
// set and the in-place ApplyDelta merge must not allocate in steady
// state. alloclint proves no allocation-shaped construct is reachable;
// these tests prove the append-capacity reuse actually converges to
// zero allocs per operation.

func gappySet() Set {
	s := FromRange(1, 400)
	s.AddRange(410, 600)
	s.AddRange(650, 651)
	s.AddRange(700, 900)
	return s
}

func TestDiffIntoZeroAllocs(t *testing.T) {
	a := gappySet()
	b := FromRange(1, 380)
	b.AddRange(450, 500)
	var scratch Set
	allocs := testing.AllocsPerRun(200, func() {
		a.DiffInto(&scratch, b)
	})
	if allocs != 0 {
		t.Errorf("DiffInto with reused scratch: %.1f allocs/op, want 0", allocs)
	}
	if want := a.Diff(b); !scratch.Equal(want) {
		t.Errorf("DiffInto = %v, Diff = %v", scratch, want)
	}
}

func TestApplyDeltaZeroAllocs(t *testing.T) {
	s := gappySet()
	delta := FromRange(380, 420)
	delta.AddRange(630, 660)
	// Warm to the merged fixpoint first: after one apply the delta is a
	// subset, so the measured runs exercise the full merge + coalesce
	// machinery with stable storage.
	s.ApplyDelta(delta)
	allocs := testing.AllocsPerRun(200, func() {
		s.ApplyDelta(delta)
	})
	if allocs != 0 {
		t.Errorf("ApplyDelta in steady state: %.1f allocs/op, want 0", allocs)
	}
	want := gappySet()
	want.Union(delta)
	if !s.Equal(want) {
		t.Errorf("ApplyDelta = %v, want %v", s, want)
	}
	if err := s.check(); err != nil {
		t.Errorf("invariants: %v", err)
	}
}

// TestApplyDeltaInterleaved exercises the in-place backward merge with
// runs that genuinely interleave (neither side is a prefix or suffix),
// comparing against the Union reference.
func TestApplyDeltaInterleaved(t *testing.T) {
	s := FromSlice([]Seq{1, 5, 9, 13, 17})
	delta := FromSlice([]Seq{3, 7, 11, 15, 19})
	want := s.Clone()
	want.Union(delta)
	s.ApplyDelta(delta)
	if !s.Equal(want) {
		t.Errorf("ApplyDelta = %v, want %v", s, want)
	}
	if err := s.check(); err != nil {
		t.Errorf("invariants: %v", err)
	}
}

// TestDiffIntoCowDst: a dst snapshotted elsewhere must not have its
// shared storage overwritten.
func TestDiffIntoCowDst(t *testing.T) {
	var dst Set
	dst.AddRange(1, 10)
	snap := dst.Snapshot()
	a := FromRange(1, 6)
	a.DiffInto(&dst, FromRange(1, 3))
	if !snap.Equal(FromRange(1, 10)) {
		t.Errorf("snapshot corrupted by DiffInto: %v", snap)
	}
	if !dst.Equal(FromRange(4, 6)) {
		t.Errorf("DiffInto into cow dst = %v, want {4-6}", dst)
	}
}
