package seqset

import (
	"math/rand"
	"testing"
)

// randomRunSet builds a set shaped like real INFO state: a few runs of
// random width separated by random gaps.
func randomRunSet(rng *rand.Rand) Set {
	var s Set
	next := Seq(rng.Intn(5) + 1)
	for i, n := 0, rng.Intn(8); i < n; i++ {
		width := Seq(rng.Intn(40) + 1)
		s.AddRange(next, next+width-1)
		next += width + Seq(rng.Intn(10)+2)
	}
	return s
}

// TestDiffApplyDeltaRoundTrip is the delta-INFO soundness property: for
// any base ⊆ full, ApplyDelta(Diff(full, base)) onto base reconstructs
// full exactly. This is what lets periodic INFO frames carry only the
// runs learned since the peer's last-known view.
func TestDiffApplyDeltaRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 2000; trial++ {
		full := randomRunSet(rng)
		// base: random subset of full, removing individual members so run
		// structure diverges.
		base := full.Clone()
		full.Each(func(q Seq) bool {
			if rng.Intn(3) == 0 {
				base = base.Diff(FromSlice([]Seq{q}))
			}
			return true
		})
		delta := full.Diff(base)
		got := base.Clone()
		got.ApplyDelta(delta)
		if !got.Equal(full) {
			t.Fatalf("trial %d: apply(diff(full,base), base) = %v, want %v (base %v, delta %v)",
				trial, got, full, base, delta)
		}
		if err := got.check(); err != nil {
			t.Fatalf("trial %d: ApplyDelta broke invariants: %v", trial, err)
		}
		if err := delta.check(); err != nil {
			t.Fatalf("trial %d: Diff broke invariants: %v", trial, err)
		}
	}
}

// TestDiffMatchesBruteForce pins the run-based Diff against element-wise
// subtraction over arbitrary (not subset-related) set pairs.
func TestDiffMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 2000; trial++ {
		a := randomRunSet(rng)
		b := randomRunSet(rng)
		var want Set
		a.Each(func(q Seq) bool {
			if !b.Contains(q) {
				want.Add(q)
			}
			return true
		})
		if got := a.Diff(b); !got.Equal(want) {
			t.Fatalf("trial %d: Diff = %v, want %v (a %v, b %v)", trial, got, want, a, b)
		}
	}
}

// TestApplyDeltaMatchesUnion checks ApplyDelta against Union over
// arbitrary pairs — the merge must not depend on delta ⊆-structure.
func TestApplyDeltaMatchesUnion(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 2000; trial++ {
		a := randomRunSet(rng)
		b := randomRunSet(rng)
		want := a.Clone()
		want.Union(b)
		got := a.Clone()
		got.ApplyDelta(b)
		if !got.Equal(want) {
			t.Fatalf("trial %d: ApplyDelta = %v, Union = %v (a %v, b %v)", trial, got, want, a, b)
		}
		if err := got.check(); err != nil {
			t.Fatalf("trial %d: ApplyDelta broke invariants: %v", trial, err)
		}
	}
}

// TestContainsAllMatchesBruteForce pins ContainsAll against per-member
// Contains checks.
func TestContainsAllMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	for trial := 0; trial < 2000; trial++ {
		a := randomRunSet(rng)
		b := randomRunSet(rng)
		want := true
		b.Each(func(q Seq) bool {
			if !a.Contains(q) {
				want = false
				return false
			}
			return true
		})
		if got := a.ContainsAll(b); got != want {
			t.Fatalf("trial %d: ContainsAll = %v, want %v (a %v, b %v)", trial, got, want, a, b)
		}
		if !a.ContainsAll(a) {
			t.Fatalf("trial %d: ContainsAll not reflexive for %v", trial, a)
		}
	}
}

// TestSnapshotIsolation drives random mutations against a set and a
// pile of its snapshots, checking that no mutation on either side leaks
// into the other (the copy-on-write contract).
func TestSnapshotIsolation(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 500; trial++ {
		s := randomRunSet(rng)
		snap := s.Snapshot()
		frozen := s.Clone() // eager reference copy of the shared state
		// Mutate the original in every way; the snapshot must not move.
		for step := 0; step < 10; step++ {
			switch rng.Intn(4) {
			case 0:
				s.Add(Seq(rng.Intn(200) + 1))
			case 1:
				lo := Seq(rng.Intn(200) + 1)
				s.AddRange(lo, lo+Seq(rng.Intn(30)))
			case 2:
				s.Prune(Seq(rng.Intn(100)))
			case 3:
				s.ApplyDelta(randomRunSet(rng))
			}
		}
		if !snap.Equal(frozen) {
			t.Fatalf("trial %d: snapshot drifted after source mutation: %v, want %v", trial, snap, frozen)
		}
		// And the other direction: mutating the snapshot leaves the
		// source alone.
		s2 := randomRunSet(rng)
		snap2 := s2.Snapshot()
		frozen2 := s2.Clone()
		snap2.Add(Seq(rng.Intn(200) + 1))
		snap2.Prune(Seq(rng.Intn(50)))
		if !s2.Equal(frozen2) {
			t.Fatalf("trial %d: source drifted after snapshot mutation: %v, want %v", trial, s2, frozen2)
		}
	}
}

// TestSnapshotOfSnapshot checks chained snapshots stay independent once
// mutated.
func TestSnapshotOfSnapshot(t *testing.T) {
	s := FromRange(1, 10)
	a := s.Snapshot()
	b := a.Snapshot()
	b.Add(20)
	a.Add(30)
	s.Add(40)
	for _, tc := range []struct {
		name string
		set  Set
		want Set
	}{
		{"source", s, FromSlice([]Seq{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 40})},
		{"first", a, FromSlice([]Seq{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 30})},
		{"second", b, FromSlice([]Seq{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 20})},
	} {
		if !tc.set.Equal(tc.want) {
			t.Errorf("%s = %v, want %v", tc.name, tc.set, tc.want)
		}
	}
}
