// Package seqset implements sets of message sequence numbers as sorted,
// non-overlapping, non-adjacent intervals.
//
// The paper's protocol keeps, at every host i, the set INFO_i of sequence
// numbers received so far, plus a MAP of every other host's INFO set.
// Broadcast streams are long and mostly contiguous, so an interval coding
// keeps these sets tiny (one interval in the common case) while still
// representing arbitrary gaps.
//
// The package also implements the paper's ordering on INFO sets:
// A < B iff max(A) < max(B), and A ≃ B iff max(A) = max(B), where the
// maximum of the empty set is taken as 0 (sequence numbers start at 1).
package seqset

import (
	"fmt"
	"sort"
	"strings"
)

// Seq is a broadcast message sequence number. Valid data messages are
// numbered starting at 1; 0 is never a member of a set.
type Seq uint64

// Interval is an inclusive range [Lo, Hi] of sequence numbers.
type Interval struct {
	Lo, Hi Seq
}

// Set is a set of sequence numbers. The zero value is the empty set and
// is ready to use. The mutating methods modify the receiver in place.
// Plain assignment shares the underlying storage; take an independent
// copy with Clone (eager) or Snapshot (copy-on-write — O(1) until either
// side next mutates).
type Set struct {
	// runs is sorted by Lo; runs never overlap and are never adjacent
	// (runs[k].Hi+1 < runs[k+1].Lo).
	runs []Interval
	// cow marks runs as shared with at least one Snapshot; mutators copy
	// the storage before writing.
	cow bool
}

// FromRange returns the set {lo, lo+1, ..., hi}. It panics if lo is 0 or
// lo > hi.
func FromRange(lo, hi Seq) Set {
	if lo == 0 || lo > hi {
		panic(fmt.Sprintf("seqset: invalid range [%d,%d]", lo, hi))
	}
	return Set{runs: []Interval{{Lo: lo, Hi: hi}}}
}

// FromSlice returns a set containing exactly the given sequence numbers.
// Zero values are ignored.
func FromSlice(seqs []Seq) Set {
	var s Set
	for _, q := range seqs {
		if q != 0 {
			s.Add(q)
		}
	}
	return s
}

// Clone returns a deep copy of s.
func (s Set) Clone() Set {
	if len(s.runs) == 0 {
		return Set{}
	}
	runs := make([]Interval, len(s.runs))
	copy(runs, s.runs)
	return Set{runs: runs}
}

// Snapshot returns a copy of s that shares the run storage with s until
// either side next mutates (copy-on-write). It replaces Clone on hot
// paths where the copy is usually read-only — e.g. stamping the current
// INFO set onto an outgoing message.
func (s *Set) Snapshot() Set {
	if len(s.runs) == 0 {
		return Set{}
	}
	s.cow = true
	return Set{runs: s.runs, cow: true}
}

// materialize gives s private run storage; every mutator calls it before
// writing (or appending — a shared backing array must not grow in place).
func (s *Set) materialize() {
	if !s.cow {
		return
	}
	// The copy below is the documented, one-time cost of mutating after a
	// Snapshot; hot paths that reach here in steady state hold private
	// storage and skip it via the cow check above.
	//rblint:ignore alloclint cow materialization is the advertised cold-path cost of Snapshot
	runs := make([]Interval, len(s.runs))
	copy(runs, s.runs)
	s.runs = runs
	s.cow = false
}

// Empty reports whether the set has no members.
func (s Set) Empty() bool { return len(s.runs) == 0 }

// Len returns the number of members.
func (s Set) Len() int {
	n := 0
	for _, r := range s.runs {
		n += int(r.Hi-r.Lo) + 1
	}
	return n
}

// RunCount returns the number of intervals in the internal coding; useful
// for asserting compactness.
func (s Set) RunCount() int { return len(s.runs) }

// Max returns the largest member, or 0 if the set is empty.
func (s Set) Max() Seq {
	if len(s.runs) == 0 {
		return 0
	}
	return s.runs[len(s.runs)-1].Hi
}

// Min returns the smallest member, or 0 if the set is empty.
func (s Set) Min() Seq {
	if len(s.runs) == 0 {
		return 0
	}
	return s.runs[0].Lo
}

// Contains reports whether q is a member.
func (s Set) Contains(q Seq) bool {
	if q == 0 {
		return false
	}
	// Find the first run with Hi >= q.
	i := sort.Search(len(s.runs), func(i int) bool { return s.runs[i].Hi >= q })
	return i < len(s.runs) && s.runs[i].Lo <= q
}

// Add inserts q into the set. Adding 0 is a no-op. It reports whether the
// set changed (q was not already a member).
func (s *Set) Add(q Seq) bool {
	if q == 0 || s.Contains(q) {
		return false
	}
	s.materialize()
	// Index of the first run with Hi >= q-1, i.e. the first run that q
	// could extend or precede.
	i := sort.Search(len(s.runs), func(i int) bool { return s.runs[i].Hi+1 >= q })
	if i == len(s.runs) {
		s.runs = append(s.runs, Interval{Lo: q, Hi: q})
		return true
	}
	r := &s.runs[i]
	switch {
	case r.Hi+1 == q:
		// Extend run i upward; possibly merge with run i+1.
		r.Hi = q
		if i+1 < len(s.runs) && s.runs[i+1].Lo == q+1 {
			r.Hi = s.runs[i+1].Hi
			s.runs = append(s.runs[:i+1], s.runs[i+2:]...)
		}
	case r.Lo == q+1:
		// Extend run i downward. No merge possible with i-1: its Hi+1 < q
		// held in the search, so runs[i-1].Hi+1 < q means not adjacent.
		r.Lo = q
	case r.Lo > q+1:
		// Standalone run before run i.
		s.runs = append(s.runs, Interval{})
		copy(s.runs[i+1:], s.runs[i:])
		s.runs[i] = Interval{Lo: q, Hi: q}
	default:
		// r.Lo <= q <= r.Hi would mean Contains(q); unreachable.
		panic("seqset: Add invariant violation")
	}
	return true
}

// AddRange inserts every member of [lo, hi]. It panics on an invalid
// range (lo == 0 or lo > hi). The cost is O(log r + k) in the run count
// r and absorbed runs k, never O(hi−lo): the wire decoder feeds
// attacker-controlled intervals through here, and a frame advertising an
// enormous range must not stall it.
func (s *Set) AddRange(lo, hi Seq) {
	if lo == 0 || lo > hi {
		panic(fmt.Sprintf("seqset: invalid range [%d,%d]", lo, hi))
	}
	s.materialize()
	// First run that [lo, hi] can touch: Hi ≥ lo-1 (overlap or adjacency;
	// lo ≥ 1 keeps the subtraction safe).
	i := sort.Search(len(s.runs), func(i int) bool { return s.runs[i].Hi >= lo-1 })
	if i == len(s.runs) {
		s.runs = append(s.runs, Interval{Lo: lo, Hi: hi})
		return
	}
	// Absorb every run starting at or before hi+1. A run at exactly hi+1
	// is adjacent; when hi is the maximal Seq the hi+1 comparison is
	// skipped (nothing can start beyond it anyway).
	j := i
	for j < len(s.runs) && (s.runs[j].Lo <= hi || (hi+1 != 0 && s.runs[j].Lo == hi+1)) {
		if s.runs[j].Lo < lo {
			lo = s.runs[j].Lo
		}
		if s.runs[j].Hi > hi {
			hi = s.runs[j].Hi
		}
		j++
	}
	if i == j {
		// No overlap: [lo, hi] is a standalone run before run i.
		s.runs = append(s.runs, Interval{})
		copy(s.runs[i+1:], s.runs[i:])
		s.runs[i] = Interval{Lo: lo, Hi: hi}
		return
	}
	s.runs[i] = Interval{Lo: lo, Hi: hi}
	s.runs = append(s.runs[:i+1], s.runs[j:]...)
}

// Union adds every member of other to s.
func (s *Set) Union(other Set) {
	for _, r := range other.runs {
		s.AddRange(r.Lo, r.Hi)
	}
}

// Diff returns the members of s that are not members of other, as a new
// set. It is a convenience wrapper over DiffInto; delta senders on hot
// paths call DiffInto with a reused scratch set instead, which allocates
// nothing once the scratch has grown to working size.
func (s Set) Diff(other Set) Set {
	var out Set
	s.DiffInto(&out, other)
	return out
}

// DiffInto overwrites dst with the members of s that are not members of
// other, reusing dst's run storage. It walks the two run codings in
// lockstep, so the cost is O(r_s + r_other) in run counts — independent
// of how many sequence numbers the runs span. dst must not alias s or
// other: the output is written over dst's storage while s and other are
// still being read.
//
//rblint:hotpath sender-side delta computation, run once per delta INFO frame per peer
func (s Set) DiffInto(dst *Set, other Set) {
	if dst.cow {
		// dst's storage is shared with a Snapshot and must not be
		// overwritten; drop it and let append build a private array (cold:
		// only right after dst itself was snapshotted).
		dst.runs = nil
		dst.cow = false
	}
	out := dst.runs[:0]
	j := 0
	for _, r := range s.runs {
		lo := r.Lo
		for lo <= r.Hi {
			for j < len(other.runs) && other.runs[j].Hi < lo {
				j++
			}
			if j == len(other.runs) || other.runs[j].Lo > r.Hi {
				// Nothing left in other can intersect [lo, r.Hi].
				out = append(out, Interval{Lo: lo, Hi: r.Hi})
				break
			}
			o := other.runs[j]
			if o.Lo > lo {
				out = append(out, Interval{Lo: lo, Hi: o.Lo - 1})
			}
			if o.Hi >= r.Hi {
				break
			}
			lo = o.Hi + 1
		}
	}
	// The output runs inherit s's ordering, and removing members only
	// widens gaps, so the run invariants hold by construction.
	dst.runs = out
}

// ApplyDelta adds every member of delta to s via a linear in-place merge
// of the two run codings: O(r_s + r_delta), versus Union's per-run
// insertion — and no temporary storage. It is the receiving half of the
// delta INFO exchange — the sender computes DiffInto(current, lastAcked),
// the receiver applies it here. delta must not alias s's storage.
//
//rblint:hotpath receiver-side delta merge, run on every delta INFO frame
func (s *Set) ApplyDelta(delta Set) {
	if len(delta.runs) == 0 {
		return
	}
	if len(s.runs) == 0 {
		s.cow = false
		s.runs = append(s.runs[:0], delta.runs...)
		return
	}
	s.materialize()
	// Grow by len(delta) slots (the appended values are placeholders the
	// backward merge overwrites), then merge the two sorted codings from
	// the back. Writing slot k while reading slot i is safe: k > i holds
	// until every delta run has been placed.
	oldLen := len(s.runs)
	s.runs = append(s.runs, delta.runs...)
	i, j, k := oldLen-1, len(delta.runs)-1, len(s.runs)-1
	for j >= 0 {
		if i >= 0 && s.runs[i].Lo > delta.runs[j].Lo {
			s.runs[k] = s.runs[i]
			i--
		} else {
			s.runs[k] = delta.runs[j]
			j--
		}
		k--
	}
	// s.runs is now sorted by Lo but may hold overlapping or adjacent
	// neighbors; coalesce in place.
	out := 0
	for idx := 0; idx < len(s.runs); idx++ {
		r := s.runs[idx]
		if out > 0 && (s.runs[out-1].Hi+1 == 0 || r.Lo <= s.runs[out-1].Hi+1) {
			// Overlapping or adjacent. (Hi+1 == 0 means the run already
			// reaches the maximal Seq and absorbs everything.)
			if r.Hi > s.runs[out-1].Hi {
				s.runs[out-1].Hi = r.Hi
			}
		} else {
			s.runs[out] = r
			out++
		}
	}
	s.runs = s.runs[:out]
}

// ContainsAll reports whether every member of other is a member of s.
// Cost is O(r_s + r_other) in run counts.
func (s Set) ContainsAll(other Set) bool {
	j := 0
	for _, o := range other.runs {
		for j < len(s.runs) && s.runs[j].Hi < o.Lo {
			j++
		}
		if j == len(s.runs) || s.runs[j].Lo > o.Lo || s.runs[j].Hi < o.Hi {
			return false
		}
	}
	return true
}

// Equal reports whether s and other have identical membership.
func (s Set) Equal(other Set) bool {
	if len(s.runs) != len(other.runs) {
		return false
	}
	for i, r := range s.runs {
		if other.runs[i] != r {
			return false
		}
	}
	return true
}

// Each calls fn on every member in ascending order. Iteration stops if fn
// returns false.
func (s Set) Each(fn func(Seq) bool) {
	for _, r := range s.runs {
		for q := r.Lo; ; q++ {
			if !fn(q) {
				return
			}
			if q == r.Hi {
				break
			}
		}
	}
}

// Slice returns the members in ascending order.
func (s Set) Slice() []Seq {
	out := make([]Seq, 0, s.Len())
	s.Each(func(q Seq) bool {
		out = append(out, q)
		return true
	})
	return out
}

// Gaps returns the sequence numbers in [1, Max()] that are missing from
// the set — the "gaps" the protocol's gap-filling machinery must repair.
// The result is empty when the set is a single run starting at 1.
func (s Set) Gaps() []Seq {
	if len(s.runs) == 0 {
		return nil
	}
	var out []Seq
	next := Seq(1)
	for _, r := range s.runs {
		for q := next; q < r.Lo; q++ {
			out = append(out, q)
		}
		next = r.Hi + 1
	}
	return out
}

// GapCount returns the number of missing sequence numbers in [1, Max()]
// without materializing them.
func (s Set) GapCount() int {
	if len(s.runs) == 0 {
		return 0
	}
	return int(s.Max()) - s.Len()
}

// Run returns the i-th interval of the run coding, 0 ≤ i < RunCount().
// Together with RunCount it lets encoders walk the runs without the
// allocation Intervals makes.
func (s Set) Run(i int) Interval { return s.runs[i] }

// Intervals returns a copy of the interval coding.
func (s Set) Intervals() []Interval {
	out := make([]Interval, len(s.runs))
	copy(out, s.runs)
	return out
}

// FromIntervals builds a set from arbitrary (possibly overlapping,
// unsorted) intervals. Intervals with Lo == 0 or Lo > Hi are rejected
// with an error, so the function is safe on untrusted wire input.
func FromIntervals(ivs []Interval) (Set, error) {
	var s Set
	for _, iv := range ivs {
		if iv.Lo == 0 || iv.Lo > iv.Hi {
			return Set{}, fmt.Errorf("seqset: invalid interval [%d,%d]", iv.Lo, iv.Hi)
		}
		s.AddRange(iv.Lo, iv.Hi)
	}
	return s, nil
}

// FromSortedRuns builds a set directly over runs, which must already be
// the canonical coding: every interval valid (Lo ≥ 1, Lo ≤ Hi), sorted
// by Lo, non-overlapping, non-adjacent — exactly what the wire encoder
// emits. Unlike FromIntervals it never normalizes or copies: the
// returned set aliases runs in copy-on-write mode, so mutating the set
// copies first, but the caller reusing the slice (the zero-alloc wire
// Decoder) invalidates the set's contents. Non-canonical input is
// rejected with an error, so the function is safe on untrusted wire
// bytes produced by a conforming encoder.
//
//rblint:hotpath builds the INFO set for every frame the zero-alloc wire decoder parses
func FromSortedRuns(runs []Interval) (Set, error) {
	for i, r := range runs {
		if r.Lo == 0 || r.Lo > r.Hi {
			return Set{}, fmt.Errorf("seqset: invalid interval [%d,%d]", r.Lo, r.Hi)
		}
		// Hi+1 == 0 means the previous run reaches the maximal Seq:
		// nothing can legally follow it.
		if i > 0 && (runs[i-1].Hi+1 == 0 || runs[i-1].Hi+1 >= r.Lo) {
			return Set{}, fmt.Errorf("seqset: intervals [%d,%d],[%d,%d] out of order, overlapping, or adjacent",
				runs[i-1].Lo, runs[i-1].Hi, r.Lo, r.Hi)
		}
	}
	if len(runs) == 0 {
		return Set{}, nil
	}
	return Set{runs: runs, cow: true}, nil
}

// Prune removes all members ≤ upTo. The paper (§6) notes INFO sets can be
// pruned of prefixes known to be globally delivered.
func (s *Set) Prune(upTo Seq) {
	if upTo == 0 || len(s.runs) == 0 || s.runs[0].Lo > upTo {
		return
	}
	s.materialize()
	i := 0
	for i < len(s.runs) && s.runs[i].Hi <= upTo {
		i++
	}
	s.runs = s.runs[i:]
	if len(s.runs) > 0 && s.runs[0].Lo <= upTo {
		s.runs[0].Lo = upTo + 1
	}
}

// String renders the set compactly, e.g. "{1-5,8,10-12}".
func (s Set) String() string {
	if len(s.runs) == 0 {
		return "{}"
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, r := range s.runs {
		if i > 0 {
			b.WriteByte(',')
		}
		if r.Lo == r.Hi {
			fmt.Fprintf(&b, "%d", r.Lo)
		} else {
			fmt.Fprintf(&b, "%d-%d", r.Lo, r.Hi)
		}
	}
	b.WriteByte('}')
	return b.String()
}

// check validates internal invariants; used by tests.
func (s Set) check() error {
	for i, r := range s.runs {
		if r.Lo == 0 || r.Lo > r.Hi {
			return fmt.Errorf("run %d invalid: [%d,%d]", i, r.Lo, r.Hi)
		}
		if i > 0 && s.runs[i-1].Hi+1 >= r.Lo {
			return fmt.Errorf("runs %d,%d overlap or adjacent: [%d,%d],[%d,%d]",
				i-1, i, s.runs[i-1].Lo, s.runs[i-1].Hi, r.Lo, r.Hi)
		}
	}
	return nil
}
