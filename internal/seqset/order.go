package seqset

// The paper defines a partial order on INFO sets by their maxima:
// A < B iff max(A) < max(B), and A ≃ B iff max(A) = max(B). The empty
// set's maximum is taken as 0, so the empty set is Less than any
// non-empty set and Similar to another empty set.

// Less reports A < B in the paper's ordering.
func Less(a, b Set) bool { return a.Max() < b.Max() }

// Similar reports A ≃ B in the paper's ordering.
func Similar(a, b Set) bool { return a.Max() == b.Max() }

// LessOrSimilar reports A < B or A ≃ B.
func LessOrSimilar(a, b Set) bool { return a.Max() <= b.Max() }
