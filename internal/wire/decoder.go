package wire

import (
	"encoding/binary"
	"errors"
	"fmt"

	"rbcast/internal/core"
	"rbcast/internal/seqset"
)

// ErrHasParts is returned by Decoder.Decode for part-carrying frames
// (bundles and sync responses); callers fall back to Decode, which
// allocates per part.
var ErrHasParts = errors.New("wire: frame carries parts; use Decode")

// Decoder decodes partless frames with zero steady-state allocation by
// reusing internal payload and interval buffers across calls.
//
// The returned Frame's Payload and Info alias the Decoder's buffers and
// are valid only until the next Decode call — the same contract as
// bufio.Scanner.Bytes. Callers that retain them must copy (Payload) or
// Clone (Info); Info is returned in copy-on-write mode, so mutating it
// through seqset's API is always safe. Decoder is also stricter than
// Decode on the interval list: it requires the canonical sorted run
// coding every conforming encoder emits (see seqset.FromSortedRuns),
// where Decode normalizes arbitrary interval soup.
//
// The zero value is ready to use. A Decoder is not safe for concurrent
// use; the UDP and live receive loops each own one.
type Decoder struct {
	payload []byte
	runs    []seqset.Interval
}

// Decode parses a partless frame, rejecting malformed or oversized
// input. Part-carrying kinds return ErrHasParts.
//
//rblint:hotpath per-datagram decode in the UDP and live receive loops
func (d *Decoder) Decode(data []byte) (Frame, error) {
	var f Frame
	if len(data) < headerLen {
		return f, ErrTruncated
	}
	if data[0] != magic {
		return f, ErrBadMagic
	}
	if data[1] != version {
		return f, fmt.Errorf("%w: %d", ErrBadVersion, data[1])
	}
	kind := core.MsgKind(data[2])
	if !knownKind(kind) {
		return f, fmt.Errorf("%w: %d", ErrBadKind, data[2])
	}
	if kindHasParts(kind) {
		return f, ErrHasParts
	}
	flags := data[3]
	f.From = core.HostID(binary.BigEndian.Uint32(data[4:8]))
	f.Message.Kind = kind
	f.Message.GapFill = flags&flagGapFill != 0
	f.Message.Parent = core.HostID(binary.BigEndian.Uint32(data[8:12]))
	f.Message.Seq = seqset.Seq(binary.BigEndian.Uint64(data[12:20]))
	rest := data[headerLen:]

	if len(rest) < 4 {
		return f, ErrTruncated
	}
	nPay := binary.BigEndian.Uint32(rest[:4])
	rest = rest[4:]
	if nPay > MaxPayload {
		return f, fmt.Errorf("%w: %d bytes", ErrTooLarge, nPay)
	}
	if uint64(len(rest)) < uint64(nPay) {
		return f, ErrTruncated
	}
	if nPay > 0 {
		d.payload = append(d.payload[:0], rest[:nPay]...)
		f.Message.Payload = d.payload
	}
	rest = rest[nPay:]

	if len(rest) < 4 {
		return f, ErrTruncated
	}
	n := binary.BigEndian.Uint32(rest[:4])
	rest = rest[4:]
	if n > MaxIntervals {
		return f, fmt.Errorf("%w: %d intervals", ErrTooLarge, n)
	}
	if uint64(len(rest)) < uint64(n)*16 {
		return f, ErrTruncated
	}
	d.runs = d.runs[:0]
	for i := uint32(0); i < n; i++ {
		lo := seqset.Seq(binary.BigEndian.Uint64(rest[:8]))
		hi := seqset.Seq(binary.BigEndian.Uint64(rest[8:16]))
		rest = rest[16:]
		d.runs = append(d.runs, seqset.Interval{Lo: lo, Hi: hi})
	}
	info, err := seqset.FromSortedRuns(d.runs)
	if err != nil {
		return f, fmt.Errorf("wire: %w", err)
	}
	f.Message.Info = info

	if kindHasCheck(kind) {
		if len(rest) < 8 {
			return f, ErrTruncated
		}
		f.Message.CheckLen = binary.BigEndian.Uint64(rest[:8])
		rest = rest[8:]
	}
	if len(rest) != 0 {
		return f, ErrTrailing
	}
	return f, nil
}
