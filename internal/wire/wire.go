// Package wire serializes protocol messages to a compact binary format.
//
// The discrete-event simulator passes message values in memory, but the
// live runtime (internal/live) and any real deployment need a wire form.
// The encoding is hand-rolled over encoding/binary: a fixed header, then
// kind-dependent fields, with INFO sets as interval lists (the seqset
// coding), all length-prefixed and bounds-checked so a corrupt or
// malicious frame cannot allocate unbounded memory or panic the decoder.
//
// Frame layout (all integers big-endian):
//
//	byte    magic (0xB7)
//	byte    version (1)
//	byte    kind
//	byte    flags (bit 0: gap fill)
//	uint32  sender host ID
//	uint32  parent host ID
//	uint64  sequence number
//	uint32  payload length, then payload bytes
//	uint32  interval count, then (uint64 lo, uint64 hi) pairs
//
// Part-carrying frames (kinds MsgBundle and MsgSyncResp) additionally
// carry:
//
//	uint32  part count, then per part: uint32 length + encoded sub-frame
//
// Sub-frames are complete frames of kinds that do not themselves carry
// parts (bundles and sync responses never nest). Delta INFO frames
// (kind = MsgInfoDelta), echo/ready votes (kinds MsgEcho, MsgReady),
// and the catch-up sync kinds (MsgSyncResp, MsgSnapReq, MsgSnapChunk)
// additionally carry:
//
//	uint64  CheckLen: for a delta, the full-set member count (the
//	        checksum half; the sequence-number header slot holds the
//	        full-set maximum); for echo/ready, the payload digest
//	        being voted on; for the sync kinds, the snapshot
//	        watermark or total snapshot length (see core.MsgKind docs)
//
// The hot path is AppendEncode, which appends into a caller-owned buffer
// and allocates nothing; Encode is a convenience wrapper, and
// EncodedSize prices a frame without encoding it (the simulator's
// bytes-on-wire accounting).
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"

	"rbcast/internal/core"
	"rbcast/internal/seqset"
)

const (
	magic   = 0xB7
	version = 1

	flagGapFill = 1 << 0

	headerLen = 1 + 1 + 1 + 1 + 4 + 4 + 8

	// MaxPayload bounds the data payload length accepted by the decoder.
	MaxPayload = 1 << 20
	// MaxIntervals bounds the INFO interval count accepted by the decoder.
	MaxIntervals = 1 << 16
	// MaxParts bounds the piggybacked part count accepted by the decoder.
	MaxParts = 1 << 12
)

// Decoding errors.
var (
	ErrTruncated  = errors.New("wire: truncated frame")
	ErrBadMagic   = errors.New("wire: bad magic byte")
	ErrBadVersion = errors.New("wire: unsupported version")
	ErrBadKind    = errors.New("wire: unknown message kind")
	ErrTooLarge   = errors.New("wire: field exceeds decoder limit")
	ErrTrailing   = errors.New("wire: trailing bytes after frame")
)

// Frame is a protocol message plus its sender, as transmitted.
type Frame struct {
	From    core.HostID
	Message core.Message
}

// knownKind enumerates the message kinds the codec handles, one arm per
// kind. Both Encode and Decode gate on it, so adding a core.MsgKind
// without extending the codec fails wirelint here rather than silently
// dropping frames of the new kind.
func knownKind(k core.MsgKind) bool {
	switch k {
	case core.MsgData, core.MsgInfo, core.MsgAttachReq, core.MsgAttachAccept,
		core.MsgAttachReject, core.MsgDetach, core.MsgBundle, core.MsgInfoDelta,
		core.MsgEcho, core.MsgReady, core.MsgSyncReq, core.MsgSyncResp,
		core.MsgSnapReq, core.MsgSnapChunk:
		return true
	}
	return false
}

// kindHasCheck reports whether the frame carries the trailing uint64
// CheckLen field: the full-set checksum half of a delta INFO, the
// payload digest of an echo/ready vote, or the snapshot watermark /
// total length of the catch-up sync kinds.
func kindHasCheck(k core.MsgKind) bool {
	return k == core.MsgInfoDelta || k == core.MsgEcho || k == core.MsgReady ||
		k == core.MsgSyncResp || k == core.MsgSnapReq || k == core.MsgSnapChunk
}

// kindHasParts reports whether the frame carries length-prefixed
// sub-frames: a §6 piggyback bundle, or a catch-up sync response whose
// parts are the batched gap-fill data messages. Part-carrying frames
// never nest.
func kindHasParts(k core.MsgKind) bool {
	return k == core.MsgBundle || k == core.MsgSyncResp
}

// checkEncodable validates the frame fields shared by AppendEncode and
// EncodedSize.
func checkEncodable(f Frame) error {
	if !knownKind(f.Message.Kind) {
		return fmt.Errorf("%w: %d", ErrBadKind, f.Message.Kind)
	}
	if !kindHasParts(f.Message.Kind) && len(f.Message.Parts) > 0 {
		return fmt.Errorf("wire: %s frame carries %d parts", f.Message.Kind, len(f.Message.Parts))
	}
	if len(f.Message.Parts) > MaxParts {
		return fmt.Errorf("%w: %d parts", ErrTooLarge, len(f.Message.Parts))
	}
	if len(f.Message.Payload) > MaxPayload {
		return fmt.Errorf("%w: payload %d bytes", ErrTooLarge, len(f.Message.Payload))
	}
	if n := f.Message.Info.RunCount(); n > MaxIntervals {
		return fmt.Errorf("%w: %d intervals", ErrTooLarge, n)
	}
	return nil
}

// EncodedSize returns the exact byte length AppendEncode would produce
// for f, without encoding. The simulator's bytes-on-wire metrics price
// every logical send through here.
//
//rblint:hotpath prices every logical send in the simulator's bytes-on-wire accounting
func EncodedSize(f Frame) (int, error) {
	if err := checkEncodable(f); err != nil {
		return 0, err
	}
	size := headerLen + 4 + len(f.Message.Payload) + 4 + 16*f.Message.Info.RunCount()
	if kindHasCheck(f.Message.Kind) {
		size += 8
	}
	if kindHasParts(f.Message.Kind) {
		size += 4
		for _, part := range f.Message.Parts {
			if kindHasParts(part.Kind) {
				return 0, fmt.Errorf("wire: nested part-carrying frame")
			}
			sub, err := EncodedSize(Frame{From: f.From, Message: part})
			if err != nil {
				return 0, err
			}
			size += 4 + sub
		}
	}
	return size, nil
}

// AppendEncode appends the encoding of f to dst and returns the extended
// buffer. It allocates only when dst lacks capacity, so a caller reusing
// buffers (see internal/udp, internal/live) encodes with zero garbage.
// On error dst is returned truncated to its original length.
//
//rblint:hotpath per-frame encode in the UDP and live send paths; must reuse dst
func AppendEncode(dst []byte, f Frame) ([]byte, error) {
	base := len(dst)
	out, err := appendFrame(dst, f)
	if err != nil {
		return dst[:base], err
	}
	return out, nil
}

func appendFrame(buf []byte, f Frame) ([]byte, error) {
	if err := checkEncodable(f); err != nil {
		return buf, err
	}
	var flags byte
	if f.Message.GapFill {
		flags |= flagGapFill
	}
	buf = append(buf, magic, version, byte(f.Message.Kind), flags)
	buf = binary.BigEndian.AppendUint32(buf, uint32(f.From))
	buf = binary.BigEndian.AppendUint32(buf, uint32(f.Message.Parent))
	buf = binary.BigEndian.AppendUint64(buf, uint64(f.Message.Seq))
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(f.Message.Payload)))
	buf = append(buf, f.Message.Payload...)
	n := f.Message.Info.RunCount()
	buf = binary.BigEndian.AppendUint32(buf, uint32(n))
	for i := 0; i < n; i++ {
		iv := f.Message.Info.Run(i)
		buf = binary.BigEndian.AppendUint64(buf, uint64(iv.Lo))
		buf = binary.BigEndian.AppendUint64(buf, uint64(iv.Hi))
	}
	if kindHasCheck(f.Message.Kind) {
		buf = binary.BigEndian.AppendUint64(buf, f.Message.CheckLen)
	}
	if kindHasParts(f.Message.Kind) {
		buf = binary.BigEndian.AppendUint32(buf, uint32(len(f.Message.Parts)))
		for _, part := range f.Message.Parts {
			if kindHasParts(part.Kind) {
				return buf, fmt.Errorf("wire: nested part-carrying frame")
			}
			// Reserve the length prefix, encode the sub-frame in place,
			// then patch the prefix — no temporary buffer.
			lenAt := len(buf)
			buf = append(buf, 0, 0, 0, 0)
			var err error
			buf, err = appendFrame(buf, Frame{From: f.From, Message: part})
			if err != nil {
				return buf, err
			}
			binary.BigEndian.PutUint32(buf[lenAt:lenAt+4], uint32(len(buf)-lenAt-4))
		}
	}
	return buf, nil
}

// Encode renders a frame to a freshly allocated buffer.
func Encode(f Frame) ([]byte, error) {
	size, err := EncodedSize(f)
	if err != nil {
		return nil, err
	}
	return AppendEncode(make([]byte, 0, size), f)
}

// Decode parses a frame, rejecting malformed or oversized input.
func Decode(data []byte) (Frame, error) {
	var f Frame
	if len(data) < headerLen {
		return f, ErrTruncated
	}
	if data[0] != magic {
		return f, ErrBadMagic
	}
	if data[1] != version {
		return f, fmt.Errorf("%w: %d", ErrBadVersion, data[1])
	}
	kind := core.MsgKind(data[2])
	if !knownKind(kind) {
		return f, fmt.Errorf("%w: %d", ErrBadKind, data[2])
	}
	flags := data[3]
	f.From = core.HostID(binary.BigEndian.Uint32(data[4:8]))
	f.Message.Kind = kind
	f.Message.GapFill = flags&flagGapFill != 0
	f.Message.Parent = core.HostID(binary.BigEndian.Uint32(data[8:12]))
	f.Message.Seq = seqset.Seq(binary.BigEndian.Uint64(data[12:20]))
	rest := data[headerLen:]

	payload, rest, err := readBytes(rest, MaxPayload)
	if err != nil {
		return f, err
	}
	if len(payload) > 0 {
		f.Message.Payload = payload
	}

	if len(rest) < 4 {
		return f, ErrTruncated
	}
	n := binary.BigEndian.Uint32(rest[:4])
	rest = rest[4:]
	if n > MaxIntervals {
		return f, fmt.Errorf("%w: %d intervals", ErrTooLarge, n)
	}
	if uint64(len(rest)) < uint64(n)*16 {
		return f, ErrTruncated
	}
	ivs := make([]seqset.Interval, 0, n)
	for i := uint32(0); i < n; i++ {
		lo := seqset.Seq(binary.BigEndian.Uint64(rest[:8]))
		hi := seqset.Seq(binary.BigEndian.Uint64(rest[8:16]))
		rest = rest[16:]
		ivs = append(ivs, seqset.Interval{Lo: lo, Hi: hi})
	}
	info, err := seqset.FromIntervals(ivs)
	if err != nil {
		return f, fmt.Errorf("wire: %w", err)
	}
	f.Message.Info = info

	if kindHasCheck(kind) {
		if len(rest) < 8 {
			return f, ErrTruncated
		}
		f.Message.CheckLen = binary.BigEndian.Uint64(rest[:8])
		rest = rest[8:]
	}

	if kindHasParts(kind) {
		if len(rest) < 4 {
			return f, ErrTruncated
		}
		nParts := binary.BigEndian.Uint32(rest[:4])
		rest = rest[4:]
		if nParts > MaxParts {
			return f, fmt.Errorf("%w: %d parts", ErrTooLarge, nParts)
		}
		parts := make([]core.Message, 0, nParts)
		for i := uint32(0); i < nParts; i++ {
			sub, remaining, err := readBytes(rest, MaxPayload+1024)
			if err != nil {
				return f, err
			}
			rest = remaining
			subFrame, err := Decode(sub)
			if err != nil {
				return f, fmt.Errorf("wire: bundle part %d: %w", i, err)
			}
			if kindHasParts(subFrame.Message.Kind) {
				return f, fmt.Errorf("%w: nested part-carrying frame", ErrBadKind)
			}
			if subFrame.From != f.From {
				return f, fmt.Errorf("wire: bundle part %d from %d, bundle from %d",
					i, subFrame.From, f.From)
			}
			parts = append(parts, subFrame.Message)
		}
		f.Message.Parts = parts
	}
	if len(rest) != 0 {
		return f, ErrTrailing
	}
	return f, nil
}

// readBytes consumes a uint32 length prefix and that many bytes. The
// returned slice is a copy, detached from the input buffer.
func readBytes(data []byte, limit int) (payload, rest []byte, err error) {
	if len(data) < 4 {
		return nil, nil, ErrTruncated
	}
	n := binary.BigEndian.Uint32(data[:4])
	data = data[4:]
	if int64(n) > int64(limit) {
		return nil, nil, fmt.Errorf("%w: %d bytes", ErrTooLarge, n)
	}
	if uint64(len(data)) < uint64(n) {
		return nil, nil, ErrTruncated
	}
	return append([]byte(nil), data[:n]...), data[n:], nil
}
