package wire_test

import (
	"bytes"
	"errors"
	"testing"

	"rbcast/internal/core"
	"rbcast/internal/seqset"
	"rbcast/internal/wire"
)

// TestDecoderMatchesDecode pins the zero-alloc decoder against the
// general one for every partless kind the encoder can produce.
func TestDecoderMatchesDecode(t *testing.T) {
	frames := []wire.Frame{
		typicalInfoFrame(),
		{From: 1, Message: core.Message{Kind: core.MsgData, Seq: 9, Payload: []byte("payload")}},
		{From: 2, Message: core.Message{Kind: core.MsgAttachReject}},
		{From: 4, Message: core.Message{Kind: core.MsgInfoDelta,
			Info: seqset.FromSlice([]seqset.Seq{50, 52}), Parent: 1, Seq: 52, CheckLen: 40}},
		{From: 7, Message: core.Message{Kind: core.MsgEcho, Seq: 3, CheckLen: 0xdeadbeef}},
		{From: 8, Message: core.Message{Kind: core.MsgSnapChunk, Seq: 12,
			Payload: []byte("chunk"), CheckLen: 512}},
	}
	var d wire.Decoder
	for _, f := range frames {
		data, err := wire.Encode(f)
		if err != nil {
			t.Fatalf("%v: encode: %v", f.Message.Kind, err)
		}
		want, err := wire.Decode(data)
		if err != nil {
			t.Fatalf("%v: Decode: %v", f.Message.Kind, err)
		}
		got, err := d.Decode(data)
		if err != nil {
			t.Fatalf("%v: Decoder.Decode: %v", f.Message.Kind, err)
		}
		if got.From != want.From || got.Message.Kind != want.Message.Kind ||
			got.Message.GapFill != want.Message.GapFill ||
			got.Message.Parent != want.Message.Parent ||
			got.Message.Seq != want.Message.Seq ||
			got.Message.CheckLen != want.Message.CheckLen ||
			!bytes.Equal(got.Message.Payload, want.Message.Payload) ||
			!got.Message.Info.Equal(want.Message.Info) {
			t.Errorf("%v: Decoder diverged from Decode:\n%+v\nvs\n%+v",
				f.Message.Kind, got, want)
		}
	}
}

// TestDecoderRejectsParts: part-carrying kinds are the general path.
func TestDecoderRejectsParts(t *testing.T) {
	f := wire.Frame{From: 5, Message: core.Message{Kind: core.MsgBundle, Parts: []core.Message{
		{Kind: core.MsgData, Seq: 8, Payload: []byte("x")},
	}}}
	data, err := wire.Encode(f)
	if err != nil {
		t.Fatal(err)
	}
	var d wire.Decoder
	if _, err := d.Decode(data); !errors.Is(err, wire.ErrHasParts) {
		t.Fatalf("bundle through Decoder: err = %v, want ErrHasParts", err)
	}
}

// TestDecoderRequiresCanonicalRuns: the Decoder only accepts the sorted,
// non-overlapping, non-adjacent run coding a conforming encoder emits;
// interval soup that Decode would normalize is rejected as malformed.
func TestDecoderRequiresCanonicalRuns(t *testing.T) {
	data, err := wire.Encode(typicalInfoFrame())
	if err != nil {
		t.Fatal(err)
	}
	// The frame has no payload: the interval count sits right after the
	// header's 4-byte payload length. Swap the first two intervals.
	off := 20 + 4 + 4 // header, payload length, interval count
	bad := append([]byte(nil), data...)
	tmp := make([]byte, 16)
	copy(tmp, bad[off:off+16])
	copy(bad[off:off+16], bad[off+16:off+32])
	copy(bad[off+16:off+32], tmp)
	if _, err := wire.Decode(bad); err != nil {
		t.Fatalf("Decode should normalize unsorted intervals: %v", err)
	}
	var d wire.Decoder
	if _, err := d.Decode(bad); err == nil {
		t.Fatal("Decoder accepted non-canonical interval coding")
	}
}

// TestDecoderReuseIsolation: mutating a returned Info (copy-on-write)
// and decoding further frames must not corrupt one another within the
// documented validity window.
func TestDecoderReuseIsolation(t *testing.T) {
	fa := typicalInfoFrame()
	da, err := wire.Encode(fa)
	if err != nil {
		t.Fatal(err)
	}
	fb := wire.Frame{From: 2, Message: core.Message{
		Kind: core.MsgInfo, Info: seqset.FromRange(7, 9)}}
	db, err := wire.Encode(fb)
	if err != nil {
		t.Fatal(err)
	}
	var d wire.Decoder
	got, err := d.Decode(da)
	if err != nil {
		t.Fatal(err)
	}
	// Mutating the returned set copies first (cow), leaving the
	// decoder's buffer untouched.
	mutated := got.Message.Info
	mutated.Add(5000)
	keep := got.Message.Info.Clone()
	got2, err := d.Decode(db)
	if err != nil {
		t.Fatal(err)
	}
	if !got2.Message.Info.Equal(seqset.FromRange(7, 9)) {
		t.Errorf("second decode Info = %v", got2.Message.Info)
	}
	if !keep.Equal(fa.Message.Info) {
		t.Errorf("cloned Info corrupted: %v", keep)
	}
}

// TestDecoderZeroAllocs is the point of the type: steady-state decoding
// of partless frames must be allocation-free.
func TestDecoderZeroAllocs(t *testing.T) {
	info, err := wire.Encode(typicalInfoFrame())
	if err != nil {
		t.Fatal(err)
	}
	payload, err := wire.Encode(wire.Frame{From: 1, Message: core.Message{
		Kind: core.MsgData, Seq: 42, Payload: bytes.Repeat([]byte("p"), 256)}})
	if err != nil {
		t.Fatal(err)
	}
	var d wire.Decoder
	var decErr error
	allocs := testing.AllocsPerRun(200, func() {
		_, decErr = d.Decode(info)
		if decErr == nil {
			_, decErr = d.Decode(payload)
		}
	})
	if decErr != nil {
		t.Fatal(decErr)
	}
	if allocs != 0 {
		t.Errorf("Decoder.Decode: %.1f allocs/op, want 0", allocs)
	}
}

// TestDecoderTruncation drives the same truncation sweep the general
// decoder gets in wire_test.go.
func TestDecoderTruncation(t *testing.T) {
	data, err := wire.Encode(typicalInfoFrame())
	if err != nil {
		t.Fatal(err)
	}
	var d wire.Decoder
	for cut := 0; cut < len(data); cut++ {
		if _, err := d.Decode(data[:cut]); err == nil {
			t.Fatalf("truncated frame of %d/%d bytes accepted", cut, len(data))
		}
	}
}
