package wire_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"rbcast/internal/core"
	"rbcast/internal/seqset"
	"rbcast/internal/wire"
)

func roundTrip(t *testing.T, f wire.Frame) wire.Frame {
	t.Helper()
	data, err := wire.Encode(f)
	if err != nil {
		t.Fatalf("Encode(%+v): %v", f, err)
	}
	got, err := wire.Decode(data)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	return got
}

func framesEqual(a, b wire.Frame) bool {
	if a.From != b.From || a.Message.Kind != b.Message.Kind ||
		a.Message.Seq != b.Message.Seq || a.Message.GapFill != b.Message.GapFill ||
		a.Message.Parent != b.Message.Parent {
		return false
	}
	if string(a.Message.Payload) != string(b.Message.Payload) {
		return false
	}
	return a.Message.Info.Equal(b.Message.Info)
}

func TestRoundTripKinds(t *testing.T) {
	info := seqset.FromSlice([]seqset.Seq{1, 2, 3, 7, 9})
	frames := []wire.Frame{
		{From: 1, Message: core.Message{Kind: core.MsgData, Seq: 42, Payload: []byte("hello")}},
		{From: 2, Message: core.Message{Kind: core.MsgData, Seq: 7, Payload: nil, GapFill: true}},
		{From: 3, Message: core.Message{Kind: core.MsgInfo, Info: info, Parent: 9}},
		{From: 4, Message: core.Message{Kind: core.MsgAttachReq, Info: info}},
		{From: 5, Message: core.Message{Kind: core.MsgAttachAccept, Info: info}},
		{From: 6, Message: core.Message{Kind: core.MsgAttachReject}},
		{From: 7, Message: core.Message{Kind: core.MsgDetach}},
	}
	for _, f := range frames {
		got := roundTrip(t, f)
		if !framesEqual(f, got) {
			t.Errorf("round trip mismatch:\n in  %+v\n out %+v", f, got)
		}
	}
}

func TestRoundTripEmptyInfo(t *testing.T) {
	f := wire.Frame{From: 1, Message: core.Message{Kind: core.MsgInfo}}
	got := roundTrip(t, f)
	if !got.Message.Info.Empty() {
		t.Errorf("empty INFO decoded as %v", got.Message.Info)
	}
}

func TestEncodeRejectsBadKind(t *testing.T) {
	if _, err := wire.Encode(wire.Frame{Message: core.Message{Kind: 0}}); err == nil {
		t.Error("kind 0 accepted")
	}
	if _, err := wire.Encode(wire.Frame{Message: core.Message{Kind: 99}}); err == nil {
		t.Error("kind 99 accepted")
	}
}

func TestEncodeRejectsOversizedPayload(t *testing.T) {
	f := wire.Frame{Message: core.Message{
		Kind:    core.MsgData,
		Seq:     1,
		Payload: make([]byte, wire.MaxPayload+1),
	}}
	if _, err := wire.Encode(f); err == nil {
		t.Error("oversized payload accepted")
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	good, err := wire.Encode(wire.Frame{From: 1, Message: core.Message{
		Kind: core.MsgData, Seq: 5, Payload: []byte("x"),
		Info: seqset.FromRange(1, 4),
	}})
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"empty":        {},
		"short header": good[:10],
		"bad magic":    append([]byte{0x00}, good[1:]...),
		"bad version":  append([]byte{good[0], 99}, good[2:]...),
		"bad kind":     append([]byte{good[0], good[1], 0x77}, good[3:]...),
		"truncated":    good[:len(good)-3],
		"trailing":     append(append([]byte(nil), good...), 0xFF),
	}
	for name, data := range cases {
		if _, err := wire.Decode(data); err == nil {
			t.Errorf("%s: Decode accepted malformed frame", name)
		}
	}
}

func TestDecodeRejectsHugeDeclaredLengths(t *testing.T) {
	good, err := wire.Encode(wire.Frame{From: 1, Message: core.Message{Kind: core.MsgData, Seq: 1}})
	if err != nil {
		t.Fatal(err)
	}
	// Payload length field sits right after the 20-byte header. Declare a
	// gigantic payload; the decoder must refuse rather than allocate.
	data := append([]byte(nil), good...)
	data[20], data[21], data[22], data[23] = 0xFF, 0xFF, 0xFF, 0xFF
	if _, err := wire.Decode(data); err == nil {
		t.Error("huge declared payload accepted")
	}
}

func TestDecodeRejectsInvalidIntervals(t *testing.T) {
	// Hand-build a frame whose interval has Lo > Hi.
	f := wire.Frame{From: 1, Message: core.Message{Kind: core.MsgInfo, Info: seqset.FromRange(5, 9)}}
	data, err := wire.Encode(f)
	if err != nil {
		t.Fatal(err)
	}
	// The single interval's Lo is the 8 bytes after header+payloadlen(4)+
	// payload(0)+count(4); swap Lo/Hi by rewriting Lo to a huge value.
	loOff := len(data) - 16
	for i := 0; i < 8; i++ {
		data[loOff+i] = 0xFF
	}
	if _, err := wire.Decode(data); err == nil {
		t.Error("interval with Lo > Hi accepted")
	}
}

// Property: arbitrary valid frames survive the round trip bit-exactly.
func TestQuickRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var info seqset.Set
		for i, n := 0, rng.Intn(30); i < n; i++ {
			info.Add(seqset.Seq(rng.Intn(500) + 1))
		}
		payload := make([]byte, rng.Intn(256))
		rng.Read(payload)
		frame := wire.Frame{
			From: core.HostID(rng.Intn(1000) + 1),
			Message: core.Message{
				Kind:    core.MsgKind(rng.Intn(6) + 1),
				Seq:     seqset.Seq(rng.Uint64()),
				Payload: payload,
				GapFill: rng.Intn(2) == 0,
				Info:    info,
				Parent:  core.HostID(rng.Intn(1000)),
			},
		}
		data, err := wire.Encode(frame)
		if err != nil {
			return false
		}
		got, err := wire.Decode(data)
		if err != nil {
			return false
		}
		return framesEqual(frame, got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: the decoder never panics on arbitrary bytes (it may error).
func TestQuickDecodeNeverPanics(t *testing.T) {
	f := func(data []byte) bool {
		defer func() {
			if recover() != nil {
				t.Errorf("Decode panicked on %x", data)
			}
		}()
		_, _ = wire.Decode(data)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkEncodeData(b *testing.B) {
	f := wire.Frame{From: 1, Message: core.Message{
		Kind: core.MsgData, Seq: 12345, Payload: make([]byte, 256),
	}}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := wire.Encode(f); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecodeInfo(b *testing.B) {
	var info seqset.Set
	for q := seqset.Seq(1); q <= 2000; q += 3 {
		info.AddRange(q, q+1)
	}
	data, err := wire.Encode(wire.Frame{From: 1, Message: core.Message{Kind: core.MsgInfo, Info: info}})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := wire.Decode(data); err != nil {
			b.Fatal(err)
		}
	}
}
