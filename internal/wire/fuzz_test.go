package wire_test

import (
	"testing"

	"rbcast/internal/core"
	"rbcast/internal/seqset"
	"rbcast/internal/wire"
)

// FuzzDecode drives the decoder with arbitrary bytes (the corpus seeds
// with valid frames of every kind). The decoder must never panic, and
// anything it accepts must re-encode and re-decode to the same frame.
// Run with `go test -fuzz FuzzDecode ./internal/wire` for a real fuzzing
// session; as a plain test it replays the seed corpus.
func FuzzDecode(f *testing.F) {
	seedFrames := []wire.Frame{
		{From: 1, Message: core.Message{Kind: core.MsgData, Seq: 42, Payload: []byte("hello")}},
		{From: 2, Message: core.Message{Kind: core.MsgData, Seq: 7, GapFill: true}},
		{From: 3, Message: core.Message{Kind: core.MsgInfo, Info: seqset.FromSlice([]seqset.Seq{1, 2, 9}), Parent: 4}},
		{From: 4, Message: core.Message{Kind: core.MsgAttachReq, Info: seqset.FromRange(1, 5)}},
		{From: 5, Message: core.Message{Kind: core.MsgAttachAccept}},
		{From: 6, Message: core.Message{Kind: core.MsgAttachReject}},
		{From: 7, Message: core.Message{Kind: core.MsgDetach}},
		{From: 8, Message: core.Message{Kind: core.MsgBundle, Parts: []core.Message{
			{Kind: core.MsgInfo, Info: seqset.FromRange(1, 3)},
			{Kind: core.MsgData, Seq: 2, Payload: []byte("p"), GapFill: true},
		}}},
		{From: 9, Message: core.Message{Kind: core.MsgInfoDelta,
			Info: seqset.FromSlice([]seqset.Seq{8, 9, 11}), Parent: 3,
			Seq: 11, CheckLen: 10}},
		{From: 10, Message: core.Message{Kind: core.MsgEcho, Seq: 5, CheckLen: 0xfeedface}},
		{From: 11, Message: core.Message{Kind: core.MsgReady, Seq: 5, CheckLen: 0xfeedface}},
		// Adversarial shapes from the Byzantine fault-injection layer
		// (internal/adversary): an oversized single-run INFO claim, a
		// delta whose checksum can never verify, and an absurd-digest
		// ready vote for a sequence number no source would assign.
		{From: 12, Message: core.Message{Kind: core.MsgInfo,
			Info: seqset.FromRange(1, 1<<40), Parent: 2}},
		{From: 13, Message: core.Message{Kind: core.MsgInfoDelta,
			Seq: 0, CheckLen: ^uint64(0)}},
		{From: 14, Message: core.Message{Kind: core.MsgReady,
			Seq: 1 << 60, CheckLen: ^uint64(0)}},
		// Catch-up sync kinds: a range request, a response carrying both
		// gap-fill parts and a pruned subset plus a snapshot watermark, a
		// resuming snapshot request, and a mid-transfer snapshot chunk.
		{From: 15, Message: core.Message{Kind: core.MsgSyncReq, Seq: 3,
			Info: seqset.FromSlice([]seqset.Seq{3, 4, 5, 9})}},
		{From: 16, Message: core.Message{Kind: core.MsgSyncResp, Seq: 3,
			Parts: []core.Message{
				{Kind: core.MsgData, Seq: 4, Payload: []byte("fill"), GapFill: true},
				{Kind: core.MsgData, Seq: 5, Payload: []byte("more"), GapFill: true},
			},
			Info: seqset.FromRange(3, 3), CheckLen: 8}},
		{From: 17, Message: core.Message{Kind: core.MsgSnapReq, Seq: 4096, CheckLen: 8}},
		{From: 18, Message: core.Message{Kind: core.MsgSnapChunk, Seq: 4096,
			Payload: []byte("chunk-bytes"), CheckLen: 8192,
			Info: seqset.FromRange(1, 8)}},
	}
	for _, fr := range seedFrames {
		data, err := wire.Encode(fr)
		if err != nil {
			f.Fatalf("seed encode: %v", err)
		}
		f.Add(data)
	}
	f.Add([]byte{})
	f.Add([]byte{0xB7})

	f.Fuzz(func(t *testing.T, data []byte) {
		frame, err := wire.Decode(data)
		if err != nil {
			return // rejection is fine; panicking is not
		}
		// Accepted frames must round-trip losslessly.
		re, err := wire.Encode(frame)
		if err != nil {
			t.Fatalf("re-encode of accepted frame failed: %v (frame %+v)", err, frame)
		}
		again, err := wire.Decode(re)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if again.From != frame.From || again.Message.Kind != frame.Message.Kind ||
			again.Message.Seq != frame.Message.Seq ||
			again.Message.GapFill != frame.Message.GapFill ||
			again.Message.Parent != frame.Message.Parent ||
			again.Message.CheckLen != frame.Message.CheckLen ||
			string(again.Message.Payload) != string(frame.Message.Payload) ||
			!again.Message.Info.Equal(frame.Message.Info) ||
			len(again.Message.Parts) != len(frame.Message.Parts) {
			t.Fatalf("round trip diverged:\n%+v\nvs\n%+v", frame, again)
		}
	})
}
