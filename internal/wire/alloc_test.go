package wire_test

import (
	"testing"

	"rbcast/internal/core"
	"rbcast/internal/seqset"
	"rbcast/internal/wire"
)

// typicalInfoFrame is the steady-state workload: a periodic INFO
// advertisement with a mostly-contiguous set and a couple of holes.
func typicalInfoFrame() wire.Frame {
	info := seqset.FromRange(1, 120)
	info.AddRange(125, 180)
	info.AddRange(190, 200)
	return wire.Frame{From: 3, Message: core.Message{
		Kind:   core.MsgInfo,
		Info:   info,
		Parent: 2,
	}}
}

// TestAppendEncodeZeroAllocs is the codec's allocation budget: encoding
// a typical INFO frame into a reused buffer must not allocate at all.
// The udp and live transports rely on this for garbage-free sends.
func TestAppendEncodeZeroAllocs(t *testing.T) {
	f := typicalInfoFrame()
	buf := make([]byte, 0, 1024)
	var encErr error
	allocs := testing.AllocsPerRun(200, func() {
		buf = buf[:0]
		buf, encErr = wire.AppendEncode(buf, f)
	})
	if encErr != nil {
		t.Fatal(encErr)
	}
	if allocs != 0 {
		t.Errorf("AppendEncode into reused buffer: %.1f allocs/op, want 0", allocs)
	}
}

// TestEncodeAllocBudget pins the convenience wrapper to exactly one
// allocation (the exact-size output buffer).
func TestEncodeAllocBudget(t *testing.T) {
	f := typicalInfoFrame()
	var encErr error
	allocs := testing.AllocsPerRun(200, func() {
		_, encErr = wire.Encode(f)
	})
	if encErr != nil {
		t.Fatal(encErr)
	}
	if allocs > 1 {
		t.Errorf("Encode: %.1f allocs/op, want <= 1", allocs)
	}
}

// TestDecodeAllocBudget bounds the decoder: a typical INFO frame must
// decode in a handful of allocations (interval scratch + the set's run
// storage), so a regression to per-element work shows up here.
func TestDecodeAllocBudget(t *testing.T) {
	data, err := wire.Encode(typicalInfoFrame())
	if err != nil {
		t.Fatal(err)
	}
	var decErr error
	allocs := testing.AllocsPerRun(200, func() {
		_, decErr = wire.Decode(data)
	})
	if decErr != nil {
		t.Fatal(decErr)
	}
	if allocs > 6 {
		t.Errorf("Decode: %.1f allocs/op, want <= 6", allocs)
	}
}

// TestEncodedSizeMatchesEncode checks the size predictor against the
// real encoder across every kind, including bundles and deltas.
func TestEncodedSizeMatchesEncode(t *testing.T) {
	frames := []wire.Frame{
		typicalInfoFrame(),
		{From: 1, Message: core.Message{Kind: core.MsgData, Seq: 9, Payload: []byte("payload")}},
		{From: 2, Message: core.Message{Kind: core.MsgAttachReject}},
		{From: 4, Message: core.Message{Kind: core.MsgInfoDelta,
			Info: seqset.FromSlice([]seqset.Seq{50, 52}), Parent: 1, Seq: 52, CheckLen: 40}},
		{From: 5, Message: core.Message{Kind: core.MsgBundle, Parts: []core.Message{
			{Kind: core.MsgInfo, Info: seqset.FromRange(1, 7), Parent: 2},
			{Kind: core.MsgData, Seq: 8, Payload: []byte("x"), GapFill: true},
			{Kind: core.MsgInfoDelta, Info: seqset.FromSlice([]seqset.Seq{9}), Seq: 9, CheckLen: 9},
		}}},
	}
	for _, f := range frames {
		data, err := wire.Encode(f)
		if err != nil {
			t.Fatalf("%v: encode: %v", f.Message.Kind, err)
		}
		size, err := wire.EncodedSize(f)
		if err != nil {
			t.Fatalf("%v: EncodedSize: %v", f.Message.Kind, err)
		}
		if size != len(data) {
			t.Errorf("%v: EncodedSize = %d, encoded length %d", f.Message.Kind, size, len(data))
		}
	}
}

// TestInfoDeltaRoundTrip pins the delta frame's extra fields through
// encode/decode.
func TestInfoDeltaRoundTrip(t *testing.T) {
	f := wire.Frame{From: 9, Message: core.Message{
		Kind:     core.MsgInfoDelta,
		Info:     seqset.FromSlice([]seqset.Seq{100, 101, 105}),
		Parent:   4,
		Seq:      105,
		CheckLen: 88,
	}}
	data, err := wire.Encode(f)
	if err != nil {
		t.Fatal(err)
	}
	got, err := wire.Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.From != f.From || got.Message.Kind != f.Message.Kind ||
		got.Message.Parent != f.Message.Parent || got.Message.Seq != f.Message.Seq ||
		got.Message.CheckLen != f.Message.CheckLen ||
		!got.Message.Info.Equal(f.Message.Info) {
		t.Fatalf("round trip diverged:\n%+v\nvs\n%+v", f, got)
	}
	// A truncated delta (checksum cut off) must be rejected, not
	// misparsed.
	if _, err := wire.Decode(data[:len(data)-4]); err == nil {
		t.Error("truncated delta frame accepted")
	}
}
