package wire_test

import (
	"testing"

	"rbcast/internal/core"
	"rbcast/internal/seqset"
	"rbcast/internal/wire"
)

func TestBundleRoundTrip(t *testing.T) {
	f := wire.Frame{
		From: 3,
		Message: core.Message{
			Kind: core.MsgBundle,
			Parts: []core.Message{
				{Kind: core.MsgAttachAccept, Info: seqset.FromRange(1, 9)},
				{Kind: core.MsgData, Seq: 4, Payload: []byte("fill"), GapFill: true},
				{Kind: core.MsgInfo, Info: seqset.FromSlice([]seqset.Seq{1, 3, 9}), Parent: 7},
			},
		},
	}
	data, err := wire.Encode(f)
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	got, err := wire.Decode(data)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if got.From != 3 || got.Message.Kind != core.MsgBundle {
		t.Fatalf("frame = %+v", got)
	}
	if len(got.Message.Parts) != 3 {
		t.Fatalf("parts = %d, want 3", len(got.Message.Parts))
	}
	p := got.Message.Parts
	if p[0].Kind != core.MsgAttachAccept || !p[0].Info.Equal(seqset.FromRange(1, 9)) {
		t.Errorf("part 0 = %+v", p[0])
	}
	if p[1].Kind != core.MsgData || p[1].Seq != 4 || string(p[1].Payload) != "fill" || !p[1].GapFill {
		t.Errorf("part 1 = %+v", p[1])
	}
	if p[2].Kind != core.MsgInfo || p[2].Parent != 7 {
		t.Errorf("part 2 = %+v", p[2])
	}
}

func TestBundleEmptyRoundTrip(t *testing.T) {
	data, err := wire.Encode(wire.Frame{From: 1, Message: core.Message{Kind: core.MsgBundle}})
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	got, err := wire.Decode(data)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if len(got.Message.Parts) != 0 {
		t.Errorf("parts = %v, want none", got.Message.Parts)
	}
}

func TestNestedBundleRejected(t *testing.T) {
	_, err := wire.Encode(wire.Frame{
		From: 1,
		Message: core.Message{
			Kind: core.MsgBundle,
			Parts: []core.Message{
				{Kind: core.MsgBundle, Parts: []core.Message{{Kind: core.MsgDetach}}},
			},
		},
	})
	if err == nil {
		t.Error("Encode accepted a nested bundle")
	}
}

func TestPartsOnNonBundleRejected(t *testing.T) {
	_, err := wire.Encode(wire.Frame{
		From: 1,
		Message: core.Message{
			Kind:  core.MsgInfo,
			Parts: []core.Message{{Kind: core.MsgDetach}},
		},
	})
	if err == nil {
		t.Error("Encode accepted parts on a non-bundle frame")
	}
}

func TestBundlePartSenderMismatchRejected(t *testing.T) {
	// Hand-craft a bundle whose inner frame claims a different sender.
	inner, err := wire.Encode(wire.Frame{From: 9, Message: core.Message{Kind: core.MsgDetach}})
	if err != nil {
		t.Fatal(err)
	}
	outer, err := wire.Encode(wire.Frame{From: 1, Message: core.Message{
		Kind:  core.MsgBundle,
		Parts: []core.Message{{Kind: core.MsgDetach}},
	}})
	if err != nil {
		t.Fatal(err)
	}
	// The single part sits at the end: 4-byte length + inner frame. The
	// honest part has the same length as the forged one, so splice.
	forged := append(outer[:len(outer)-len(inner)], inner...)
	if _, err := wire.Decode(forged); err == nil {
		t.Error("Decode accepted a bundle part with a mismatched sender")
	}
}

func TestBundleTruncatedPartsRejected(t *testing.T) {
	data, err := wire.Encode(wire.Frame{From: 1, Message: core.Message{
		Kind: core.MsgBundle,
		Parts: []core.Message{
			{Kind: core.MsgData, Seq: 1, Payload: []byte("abc")},
		},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := wire.Decode(data[:len(data)-2]); err == nil {
		t.Error("Decode accepted a truncated bundle")
	}
}
