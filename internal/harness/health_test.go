package harness_test

import (
	"testing"
	"time"

	"rbcast/internal/core"
	"rbcast/internal/harness"
	"rbcast/internal/topo"
)

// partitionScenario builds a 3×2 WANStar run that cuts cluster 2 off for
// [cut, heal) while the source keeps broadcasting.
func partitionScenario(name string, params core.Params, cut, heal time.Duration) harness.Scenario {
	return harness.Scenario{
		Name:     name,
		Seed:     47,
		Build:    clusteredBuild(3, 2, topo.WANStar),
		Protocol: harness.ProtocolTree,
		Params:   params,
		Messages: 30,
		WarmUp:   2 * time.Second,
		Events: []harness.TimedEvent{
			{At: cut, Do: func(rt *harness.Runtime) error {
				_, err := rt.Topo.IsolateCluster(2)
				return err
			}},
			{At: heal, Do: func(rt *harness.Runtime) error {
				return rt.Topo.RestoreLinks(rt.Topo.WANLinksOfCluster(2))
			}},
		},
		Drain:            90 * time.Second,
		StopWhenComplete: true,
	}
}

// TestBackoffReducesPartitionWaste is the tentpole's harness-level claim:
// during a long partition, the health layer suspects the unreachable
// cluster and backs its probes off, so far less traffic is wasted into
// the partition — and delivery still completes after the heal.
func TestBackoffReducesPartitionWaste(t *testing.T) {
	cut, heal := 4*time.Second, 34*time.Second
	fixed, err := harness.Run(partitionScenario("fixed", core.DefaultParams(), cut, heal))
	if err != nil {
		t.Fatal(err)
	}
	rt, err := harness.Prepare(partitionScenario("backoff", core.DefaultParams().WithBackoff(), cut, heal))
	if err != nil {
		t.Fatal(err)
	}
	mon := rt.MonitorHealth(100 * time.Millisecond)
	backoff, err := rt.Finish()
	if err != nil {
		t.Fatal(err)
	}
	for _, res := range []*harness.Result{fixed, backoff} {
		if !res.Complete {
			t.Fatalf("%s run incomplete: %d/%d", res.Name, res.DeliveredCount, res.ExpectedCount)
		}
	}
	if backoff.UnreachableSends >= fixed.UnreachableSends {
		t.Errorf("backoff wasted %d sends into the partition, fixed wasted %d — no saving",
			backoff.UnreachableSends, fixed.UnreachableSends)
	}
	if backoff.SuppressedSends == 0 {
		t.Error("backoff run suppressed no sends despite 30s partition")
	}
	if mon.PeakSuspectedPairs() == 0 {
		t.Error("monitor never observed a suspected pair during the partition")
	}
	if backoff.ResyncBursts == 0 {
		t.Error("no fast-resync bursts after the heal")
	}
	// Post-heal convergence must not regress past one InfoRemotePeriod.
	slack := core.DefaultParams().InfoRemotePeriod
	if backoff.CompletionAt > fixed.CompletionAt+slack {
		t.Errorf("backoff completed at %v, fixed at %v — slower than the %v allowance",
			backoff.CompletionAt, fixed.CompletionAt, slack)
	}
	// The liveness invariant holds at the (healed, settled) end state.
	for _, v := range rt.CheckInvariants(harness.InvariantOptions{}) {
		t.Errorf("invariant violated: %v", v)
	}
}

// TestBackoffLivenessInvariantDuringPartition checks the invariant bundle
// mid-partition too: suppression toward the unreachable cluster must stay
// inside the BackoffMax cap at every instant.
func TestBackoffLivenessInvariantDuringPartition(t *testing.T) {
	cut, heal := 4*time.Second, 34*time.Second
	rt, err := harness.Prepare(partitionScenario("mid", core.DefaultParams().WithBackoff(), cut, heal))
	if err != nil {
		t.Fatal(err)
	}
	for _, at := range []time.Duration{10 * time.Second, 20 * time.Second, 30 * time.Second} {
		if err := rt.RunUntil(at); err != nil {
			t.Fatal(err)
		}
		for _, v := range rt.CheckInvariants(harness.InvariantOptions{}) {
			t.Errorf("t=%v: invariant violated: %v", at, v)
		}
	}
	if rt.SuspectedPairs() == 0 {
		t.Error("no suspicions in force 30s into the partition")
	}
	if _, err := rt.Finish(); err != nil {
		t.Fatal(err)
	}
}

// TestHealthArcOnCrossPartitionPair follows the source's view of the cut
// cluster's leader (host 5) through the full arc. Pre-cut, 5's periodic
// global INFO keeps resetting the source's failure count, so 5 is never
// suspected; mid-partition it must be; after the heal, traffic resumes
// and the suspicion clears at message latency.
func TestHealthArcOnCrossPartitionPair(t *testing.T) {
	cut, heal := 4*time.Second, 24*time.Second
	rt, err := harness.Prepare(partitionScenario("arc", core.DefaultParams().WithBackoff(), cut, heal))
	if err != nil {
		t.Fatal(err)
	}
	mon := rt.MonitorHealth(100 * time.Millisecond)
	if err := rt.RunUntil(cut); err != nil {
		t.Fatal(err)
	}
	// The cut cluster's leader is the member whose parent lies outside it.
	var leader core.HostID
	members := map[core.HostID]bool{}
	for _, h := range rt.Topo.HostsByCluster[2] {
		members[core.HostID(h)] = true
	}
	for m := range members {
		if p := rt.TreeHosts[m].Parent(); p == core.Nil || !members[p] {
			leader = m
		}
	}
	if leader == core.Nil {
		t.Fatal("cluster 2 has no leader at cut time")
	}
	// The observer must be a main-net leader that globally probes the cut
	// leader — i.e. not its parent-graph neighbor (neighbors talk over
	// the remote-neighbor schedule instead).
	var observer core.HostID
	for id, h := range rt.TreeHosts {
		if members[id] || !h.IsLeader() {
			continue
		}
		if rt.TreeHosts[leader].Parent() == id {
			continue
		}
		if observer == core.Nil || id < observer {
			observer = id
		}
	}
	if observer == core.Nil {
		t.Fatal("no non-neighbor main-net leader to observe with")
	}
	if ph := rt.TreeHosts[observer].PeerHealthOf(leader); ph.Suspected {
		t.Errorf("host %d suspects talking leader %d before the cut: %+v", observer, leader, ph)
	}
	if err := rt.RunUntil(cut + 15*time.Second); err != nil {
		t.Fatal(err)
	}
	if ph := rt.TreeHosts[observer].PeerHealthOf(leader); !ph.Suspected {
		t.Errorf("host %d does not suspect cut leader %d 15s into the partition: %+v", observer, leader, ph)
	}
	if _, err := rt.Finish(); err != nil {
		t.Fatal(err)
	}
	// Give the (gated, ≤ BackoffMax apart) probes time to cross after the
	// heal; hearing the leader again must clear the suspicion.
	if err := rt.Settle(2 * core.DefaultParams().WithBackoff().BackoffMax); err != nil {
		t.Fatal(err)
	}
	if ph := rt.TreeHosts[observer].PeerHealthOf(leader); ph.Suspected {
		t.Errorf("suspicion of leader %d survived the heal: %+v", leader, ph)
	}
	if mon.PeakSuspectedPairs() == 0 {
		t.Error("monitor observed no suspected pairs at all")
	}
}
