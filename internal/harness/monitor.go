package harness

import (
	"fmt"
	"time"

	"rbcast/internal/core"
)

// CycleEpisode is one contiguous period during which the host parent
// graph contained a cycle.
type CycleEpisode struct {
	// Start is when the cycle was first observed; End when it was first
	// observed gone (valid only if Resolved).
	Start, End time.Duration
	// Hosts are the members of the first cycle observed in the episode.
	Hosts []core.HostID
	// Resolved reports whether the cycle disappeared before the run ended.
	Resolved bool
}

// Duration returns the episode length (0 for unresolved episodes).
func (e CycleEpisode) Duration() time.Duration {
	if !e.Resolved {
		return 0
	}
	return e.End - e.Start
}

// CycleMonitor samples the parent graph periodically and records cycle
// episodes, turning the paper's §4.3 stability argument — "unless there
// is a partition in the network, no cycle in the parent graph can be
// stable" — into a measurable property.
type CycleMonitor struct {
	episodes []CycleEpisode
	active   bool
	samples  int
}

// MonitorCycles starts sampling the runtime's parent graph every period.
// Call before Finish/RunUntil; the returned monitor accumulates episodes
// for the rest of the run.
func (rt *Runtime) MonitorCycles(period time.Duration) *CycleMonitor {
	if period <= 0 {
		period = 100 * time.Millisecond
	}
	m := &CycleMonitor{}
	var sample func()
	sample = func() {
		acyclic, cycle := rt.ParentGraphAcyclic()
		m.observe(rt.Engine.Now(), acyclic, cycle)
		rt.Engine.Schedule(period, sample)
	}
	rt.Engine.Schedule(0, sample)
	return m
}

// observe feeds one sample; exported logic kept separate from scheduling
// so it is directly testable.
func (m *CycleMonitor) observe(now time.Duration, acyclic bool, cycle []core.HostID) {
	m.samples++
	switch {
	case !acyclic && !m.active:
		m.active = true
		m.episodes = append(m.episodes, CycleEpisode{
			Start: now,
			Hosts: append([]core.HostID(nil), cycle...),
		})
	case acyclic && m.active:
		m.active = false
		ep := &m.episodes[len(m.episodes)-1]
		ep.End = now
		ep.Resolved = true
	}
}

// Samples returns the number of observations taken.
func (m *CycleMonitor) Samples() int { return m.samples }

// Episodes returns all recorded episodes.
func (m *CycleMonitor) Episodes() []CycleEpisode {
	out := make([]CycleEpisode, len(m.episodes))
	copy(out, m.episodes)
	return out
}

// Unresolved returns episodes that never ended.
func (m *CycleMonitor) Unresolved() []CycleEpisode {
	var out []CycleEpisode
	for _, e := range m.episodes {
		if !e.Resolved {
			out = append(out, e)
		}
	}
	return out
}

// CheckStability asserts the §4.3 property against the recorded
// episodes: every cycle resolved, and none lasted longer than bound.
func (m *CycleMonitor) CheckStability(bound time.Duration) error {
	for _, e := range m.episodes {
		if !e.Resolved {
			return fmt.Errorf("harness: cycle %v observed at %v never resolved", e.Hosts, e.Start)
		}
		if e.Duration() > bound {
			return fmt.Errorf("harness: cycle %v persisted %v (> %v)", e.Hosts, e.Duration(), bound)
		}
	}
	return nil
}
