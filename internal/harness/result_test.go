package harness_test

import (
	"testing"
	"time"

	"rbcast/internal/core"
	"rbcast/internal/harness"
	"rbcast/internal/topo"
)

func TestResultAccessors(t *testing.T) {
	rt, err := harness.Prepare(harness.Scenario{
		Seed:             53,
		Build:            clusteredBuild(2, 2, topo.WANStar),
		Protocol:         harness.ProtocolTree,
		Messages:         8,
		StopWhenComplete: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := rt.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Complete {
		t.Fatal("setup: incomplete")
	}
	if got := res.DeliveryRatio(); got != 1 {
		t.Errorf("DeliveryRatio = %v, want 1", got)
	}
	if res.InterClusterData() == 0 {
		t.Error("InterClusterData = 0 on a 2-cluster run")
	}
	if res.InterClusterControl() == 0 {
		t.Error("InterClusterControl = 0 despite info exchange across clusters")
	}
	if res.DataLinkTraversalsPerMessage() <= 0 {
		t.Error("DataLinkTraversalsPerMessage not positive")
	}
	if res.TotalMessages() != 8 {
		t.Errorf("TotalMessages = %d", res.TotalMessages())
	}
	if len(res.HostList) != 4 {
		t.Errorf("HostList = %v", res.HostList)
	}
	if res.WireBytes == 0 {
		t.Error("WireBytes = 0 for a tree run")
	}
	// Leaders: exactly one per true cluster after convergence.
	leaders := rt.LeadersPerTrueCluster()
	for c, n := range leaders {
		if n != 1 {
			t.Errorf("cluster %d has %d leaders", c, n)
		}
	}
	if len(leaders) != 2 {
		t.Errorf("leaders map covers %d clusters, want 2", len(leaders))
	}
	// Final parent snapshot: the source has none, everyone else does.
	if p := res.FinalParents[core.HostID(rt.Topo.Source)]; p != core.Nil {
		t.Errorf("source final parent = %d", p)
	}
	parented := 0
	for _, p := range res.FinalParents {
		if p != core.Nil {
			parented++
		}
	}
	if parented != 3 {
		t.Errorf("parented hosts = %d, want 3", parented)
	}
}

func TestResultZeroMessageRun(t *testing.T) {
	res, err := harness.Run(harness.Scenario{
		Seed:     54,
		Build:    clusteredBuild(1, 2, topo.WANStar),
		Protocol: harness.ProtocolTree,
		Messages: 0,
		Drain:    2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.DeliveryRatio(); got != 1 {
		t.Errorf("DeliveryRatio with zero expected = %v, want 1", got)
	}
	if got := res.InterClusterDataPerMessage(); got != 0 {
		t.Errorf("InterClusterDataPerMessage = %v with no messages", got)
	}
	if got := res.DataLinkTraversalsPerMessage(); got != 0 {
		t.Errorf("DataLinkTraversalsPerMessage = %v with no messages", got)
	}
	if !res.Complete {
		t.Error("zero-message run not complete")
	}
}

func TestProtocolString(t *testing.T) {
	if harness.ProtocolTree.String() != "tree" || harness.ProtocolBasic.String() != "basic" {
		t.Error("protocol strings wrong")
	}
	if s := harness.Protocol(9).String(); s == "" {
		t.Error("unknown protocol renders empty")
	}
}
