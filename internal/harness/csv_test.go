package harness_test

import (
	"encoding/csv"
	"strconv"
	"strings"
	"testing"

	"rbcast/internal/harness"
	"rbcast/internal/topo"
)

func TestWriteDeliveryCSV(t *testing.T) {
	res, err := harness.Run(harness.Scenario{
		Seed:             47,
		Build:            clusteredBuild(2, 2, topo.WANStar),
		Protocol:         harness.ProtocolTree,
		Messages:         5,
		StopWhenComplete: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Complete {
		t.Fatal("setup: incomplete run")
	}
	var sb strings.Builder
	if err := res.WriteDeliveryCSV(&sb); err != nil {
		t.Fatalf("WriteDeliveryCSV: %v", err)
	}
	rows, err := csv.NewReader(strings.NewReader(sb.String())).ReadAll()
	if err != nil {
		t.Fatalf("reading back CSV: %v", err)
	}
	wantRows := 1 + 5*4 // header + messages × hosts
	if len(rows) != wantRows {
		t.Fatalf("rows = %d, want %d", len(rows), wantRows)
	}
	if got := strings.Join(rows[0], ","); got != "seq,host,broadcast_us,delivered_us,latency_us" {
		t.Errorf("header = %q", got)
	}
	for i, row := range rows[1:] {
		for col := 0; col < 5; col++ {
			v, err := strconv.ParseInt(row[col], 10, 64)
			if err != nil {
				t.Fatalf("row %d col %d %q not numeric (complete run): %v", i+1, col, row[col], err)
			}
			if col == 4 && v < 0 {
				t.Errorf("row %d: negative latency %d", i+1, v)
			}
		}
	}
	// Source deliveries (host with latency 0 for its own messages) exist.
	foundZero := false
	for _, row := range rows[1:] {
		if row[1] == "1" && row[4] == "0" {
			foundZero = true
		}
	}
	if !foundZero {
		t.Error("no zero-latency local delivery at the source")
	}
}

func TestWriteDeliveryCSVWithGaps(t *testing.T) {
	// An incomplete run renders missing deliveries as empty cells.
	res, err := harness.Run(harness.Scenario{
		Seed:     48,
		Build:    clusteredBuild(2, 2, topo.WANStar),
		Protocol: harness.ProtocolTree,
		Messages: 5,
		Events: []harness.TimedEvent{
			{At: 0, Do: func(rt *harness.Runtime) error {
				_, err := rt.Topo.IsolateCluster(1)
				return err
			}},
		},
		Drain: 5 * 1e9, // 5s: not enough for the partition to heal (it never does)
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Complete {
		t.Fatal("setup: run unexpectedly complete")
	}
	var sb strings.Builder
	if err := res.WriteDeliveryCSV(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), ",,") {
		t.Error("no empty cells for missing deliveries")
	}
}
