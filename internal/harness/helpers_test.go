package harness_test

import "rbcast/internal/netsim"

// lossy returns a cheap link config with the given loss probability.
func lossy(p float64) netsim.LinkConfig {
	return netsim.LinkConfig{Class: netsim.Cheap, LossProb: p}
}

// lossyExpensive returns an expensive link config with the given loss
// probability.
func lossyExpensive(p float64) netsim.LinkConfig {
	return netsim.LinkConfig{Class: netsim.Expensive, LossProb: p}
}
