package harness_test

import (
	"fmt"
	"testing"
	"time"

	"rbcast/internal/core"
	"rbcast/internal/harness"
	"rbcast/internal/replica"
	"rbcast/internal/topo"
)

// replicaPayloads returns a PayloadFor that broadcasts encoded replica
// updates over a bounded key space, so every host's store converges to
// the same winners and snapshots carry real state.
func replicaPayloads(keys int) func(i int) []byte {
	return func(i int) []byte {
		u := replica.Update{
			Key:   fmt.Sprintf("k%02d", i%keys),
			Value: fmt.Sprintf("v%04d", i),
			Stamp: uint64(i + 1),
		}
		enc, err := replica.EncodeUpdate(u)
		if err != nil {
			panic(err)
		}
		return enc
	}
}

// catchupParams is the reference catch-up tuning on top of pruning.
func catchupParams() core.Params {
	p := core.DefaultParams().WithCatchupSync()
	p.PruneStable = true
	return p
}

// TestCatchupLateJoiner is the tentpole end-to-end check: a host that is
// down for the entire broadcast history — long enough that liberated
// pruning has dropped the prefix everywhere — joins late and must still
// converge, via snapshot transfer for the pruned prefix plus range sync
// for the tail, in work proportional to what it missed.
func TestCatchupLateJoiner(t *testing.T) {
	const messages = 120
	joiner := core.HostID(6)
	joinAt := 32 * time.Second
	res, err := harness.Run(harness.Scenario{
		Name:        "catchup-late-joiner",
		Seed:        7,
		Build:       clusteredBuild(2, 3, topo.WANTree),
		Protocol:    harness.ProtocolTree,
		Params:      catchupParams(),
		Messages:    messages,
		Replicate:   true,
		PayloadFor:  replicaPayloads(16),
		MsgInterval: 200 * time.Millisecond,
		Events: []harness.TimedEvent{
			{At: 1 * time.Millisecond, Do: func(rt *harness.Runtime) error {
				return rt.Net.SetHostLinkUp(6, false)
			}},
			{At: joinAt, Do: func(rt *harness.Runtime) error {
				return rt.Net.SetHostLinkUp(6, true)
			}},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Complete {
		t.Fatalf("late joiner never converged: %d/%d delivered, missing at %d: %v\n%s",
			res.DeliveredCount, res.ExpectedCount, joiner, res.MissingAt(joiner), res.Summary())
	}
	if res.DuplicateDeliveries != 0 {
		t.Errorf("duplicate deliveries = %d, want 0", res.DuplicateDeliveries)
	}
	// The joiner's history must have been pruned out from under it, and
	// healed by snapshot transfer — otherwise this test is not exercising
	// the liberation path at all.
	if res.SnapInstalls == 0 {
		t.Fatalf("no snapshot installs; liberation/catch-up path not exercised\n%s", res.Summary())
	}
	if res.SnapshotDeliveries < 32 {
		t.Errorf("snapshot deliveries = %d, want a substantial pruned prefix (≥ 32)", res.SnapshotDeliveries)
	}
	// Convergence must be O(missing), not O(history): the joiner missed
	// everything, so its range-sync work is bounded by the un-snapshotted
	// tail over the batch size, plus retry/failover slack.
	if res.SyncRounds > uint64(3*(messages/catchupParams().SyncBatch+2)) {
		t.Errorf("sync rounds = %d, want O(missing/batch)", res.SyncRounds)
	}
}

// TestCatchupReplicaConvergence checks the state-transfer contract end
// to end: after a late joiner catches up (snapshot + range sync), every
// replica store — including the joiner's — has the same fingerprint.
func TestCatchupReplicaConvergence(t *testing.T) {
	rt, err := harness.Prepare(harness.Scenario{
		Name:        "catchup-replica-convergence",
		Seed:        11,
		Build:       clusteredBuild(2, 3, topo.WANTree),
		Protocol:    harness.ProtocolTree,
		Params:      catchupParams(),
		Messages:    100,
		Replicate:   true,
		PayloadFor:  replicaPayloads(8),
		MsgInterval: 200 * time.Millisecond,
		Events: []harness.TimedEvent{
			{At: 1 * time.Millisecond, Do: func(rt *harness.Runtime) error {
				return rt.Net.SetHostLinkUp(5, false)
			}},
			{At: 28 * time.Second, Do: func(rt *harness.Runtime) error {
				return rt.Net.SetHostLinkUp(5, true)
			}},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := rt.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Complete {
		t.Fatalf("run incomplete: %d/%d\n%s", res.DeliveredCount, res.ExpectedCount, res.Summary())
	}
	want := rt.Replicas[core.HostID(rt.Topo.Source)].Fingerprint()
	for id, st := range rt.Replicas {
		if got := st.Fingerprint(); got != want {
			t.Errorf("host %d replica fingerprint %s, want %s", id, got, want)
		}
	}
}

// TestCatchupZeroKnobsInert pins the compatibility claim: with the sync
// knobs at their zero values the wire traffic contains no catch-up
// kinds and no snapshots exist, even with Replicate on.
func TestCatchupZeroKnobsInert(t *testing.T) {
	p := core.DefaultParams()
	p.PruneStable = true
	res, err := harness.Run(harness.Scenario{
		Name:             "catchup-off",
		Seed:             3,
		Build:            clusteredBuild(2, 3, topo.WANTree),
		Protocol:         harness.ProtocolTree,
		Params:           p,
		Messages:         20,
		Replicate:        true,
		PayloadFor:       replicaPayloads(8),
		StopWhenComplete: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Complete {
		t.Fatalf("incomplete: %s", res.Summary())
	}
	if res.CatchupWireBytes != 0 || res.SyncRounds != 0 || res.SnapInstalls != 0 {
		t.Errorf("catch-up layer active with zero knobs: bytes=%d rounds=%d installs=%d",
			res.CatchupWireBytes, res.SyncRounds, res.SnapInstalls)
	}
	for _, kind := range []string{"sync-req", "sync-resp", "snap-req", "snap-chunk"} {
		if n := res.SendsByKind[kind]; n != 0 {
			t.Errorf("sends[%s] = %d, want 0", kind, n)
		}
	}
}
