package harness_test

import (
	"testing"
	"time"

	"rbcast/internal/harness"
	"rbcast/internal/netsim"
	"rbcast/internal/sim"
	"rbcast/internal/topo"
)

// TestNoStableCyclesUnderChurn runs a deliberately hostile scenario —
// loss, duplication, and repeated partitions — with the cycle monitor
// attached, and asserts the §4.3 stability property: every cycle that
// ever appears in the parent graph resolves.
func TestNoStableCyclesUnderChurn(t *testing.T) {
	var events []harness.TimedEvent
	for i := 0; i < 4; i++ {
		cut := time.Duration(i)*6*time.Second + 3*time.Second
		events = append(events,
			harness.TimedEvent{At: cut, Do: func(rt *harness.Runtime) error {
				_, err := rt.Topo.IsolateCluster(1)
				return err
			}},
			harness.TimedEvent{At: cut + 3*time.Second, Do: func(rt *harness.Runtime) error {
				return rt.Topo.RestoreLinks(rt.Topo.WANLinksOfCluster(1))
			}},
		)
	}
	rt, err := harness.Prepare(harness.Scenario{
		Name: "cycle-churn",
		Seed: 43,
		Build: func(eng sim.Loop) (*topo.Topology, error) {
			return topo.Clustered(eng, topo.ClusteredConfig{
				Clusters:        3,
				HostsPerCluster: 3,
				Shape:           topo.WANRing, // redundant WAN paths → real re-parenting choices
				Cheap:           netsim.LinkConfig{Class: netsim.Cheap, LossProb: 0.05, DupProb: 0.05},
				Expensive:       netsim.LinkConfig{Class: netsim.Expensive, LossProb: 0.15},
			})
		},
		Protocol:    harness.ProtocolTree,
		Messages:    80,
		MsgInterval: 250 * time.Millisecond,
		WarmUp:      2 * time.Second,
		Events:      events,
		Drain:       45 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	mon := rt.MonitorCycles(50 * time.Millisecond)
	res, err := rt.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if mon.Samples() < 100 {
		t.Fatalf("monitor took only %d samples", mon.Samples())
	}
	// Every observed cycle must resolve; transient cycles may last a few
	// attachment periods while the breaking rules engage.
	if err := mon.CheckStability(10 * time.Second); err != nil {
		t.Errorf("cycle stability violated: %v", err)
	}
	t.Logf("cycle episodes observed: %d", len(mon.Episodes()))
	// And after all that churn, delivery still completes.
	if !res.Complete {
		t.Errorf("delivery incomplete under churn: %d/%d", res.DeliveredCount, res.ExpectedCount)
	}
}

// TestCycleMonitorBookkeeping unit-tests the episode state machine with
// a synthetic observation stream (no simulation).
func TestCycleMonitorBookkeeping(t *testing.T) {
	rt, err := harness.Prepare(harness.Scenario{
		Seed:     1,
		Build:    clusteredBuild(1, 2, topo.WANStar),
		Messages: 0,
	})
	if err != nil {
		t.Fatal(err)
	}
	mon := rt.MonitorCycles(time.Second)
	// Drive the engine a little so the monitor takes clean samples.
	if err := rt.RunUntil(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	if len(mon.Unresolved()) != 0 {
		t.Errorf("unresolved episodes on a healthy graph: %v", mon.Unresolved())
	}
	if err := mon.CheckStability(time.Second); err != nil {
		t.Errorf("CheckStability on clean run: %v", err)
	}
	if mon.Samples() < 4 {
		t.Errorf("samples = %d, want ≥ 4", mon.Samples())
	}
}
