package harness_test

import (
	"testing"
	"time"

	"rbcast/internal/harness"
	"rbcast/internal/sim"
	"rbcast/internal/topo"
)

func clusteredBuild(clusters, hostsPer int, shape topo.WANShape) func(sim.Loop) (*topo.Topology, error) {
	return func(eng sim.Loop) (*topo.Topology, error) {
		return topo.Clustered(eng, topo.ClusteredConfig{
			Clusters:        clusters,
			HostsPerCluster: hostsPer,
			Shape:           shape,
		})
	}
}

func TestTreeBroadcastCompletes(t *testing.T) {
	res, err := harness.Run(harness.Scenario{
		Name:             "tree-3x3",
		Seed:             1,
		Build:            clusteredBuild(3, 3, topo.WANTree),
		Protocol:         harness.ProtocolTree,
		Messages:         10,
		StopWhenComplete: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Complete {
		t.Fatalf("broadcast incomplete: %d/%d delivered\n%s",
			res.DeliveredCount, res.ExpectedCount, res.Summary())
	}
	if res.DuplicateDeliveries != 0 {
		t.Errorf("duplicate deliveries = %d, want 0", res.DuplicateDeliveries)
	}
	if res.SendErrors != 0 {
		t.Errorf("send errors = %d, want 0", res.SendErrors)
	}
}

func TestBasicBroadcastCompletes(t *testing.T) {
	res, err := harness.Run(harness.Scenario{
		Name:             "basic-3x3",
		Seed:             1,
		Build:            clusteredBuild(3, 3, topo.WANTree),
		Protocol:         harness.ProtocolBasic,
		Messages:         10,
		StopWhenComplete: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Complete {
		t.Fatalf("basic broadcast incomplete: %d/%d delivered",
			res.DeliveredCount, res.ExpectedCount)
	}
}

func TestTreeConvergesToClusterTree(t *testing.T) {
	rt, err := harness.Prepare(harness.Scenario{
		Name:     "convergence-4x3",
		Seed:     7,
		Build:    clusteredBuild(4, 3, topo.WANTree),
		Protocol: harness.ProtocolTree,
		Messages: 20,
		WarmUp:   2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	// After warm-up plus traffic, the parent graph must induce a cluster
	// tree.
	if err := rt.RunUntil(20 * time.Second); err != nil {
		t.Fatal(err)
	}
	if ok, why := rt.InducesClusterTree(); !ok {
		t.Errorf("parent graph does not induce a cluster tree: %s", why)
		for id, h := range rt.TreeHosts {
			t.Logf("host %d: parent=%d cluster=%v info=%v leader=%v",
				id, h.Parent(), h.Cluster(), h.Info(), h.IsLeader())
		}
	}
	if ok, cycle := rt.ParentGraphAcyclic(); !ok {
		t.Errorf("parent graph has a cycle: %v", cycle)
	}
}

func TestTreeCompletesUnderLoss(t *testing.T) {
	res, err := harness.Run(harness.Scenario{
		Name: "lossy-3x3",
		Seed: 3,
		Build: func(eng sim.Loop) (*topo.Topology, error) {
			return topo.Clustered(eng, topo.ClusteredConfig{
				Clusters:        3,
				HostsPerCluster: 3,
				Shape:           topo.WANChain,
				Cheap:           lossy(0.05),
				Expensive:       lossyExpensive(0.10),
			})
		},
		Protocol:         harness.ProtocolTree,
		Messages:         15,
		Drain:            60 * time.Second,
		StopWhenComplete: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Complete {
		t.Fatalf("broadcast incomplete under loss: %d/%d\n%s",
			res.DeliveredCount, res.ExpectedCount, res.Summary())
	}
	if res.DuplicateDeliveries != 0 {
		t.Errorf("duplicate deliveries = %d", res.DuplicateDeliveries)
	}
}

func TestTreeCompletesUnderDuplication(t *testing.T) {
	res, err := harness.Run(harness.Scenario{
		Name: "dup-2x3",
		Seed: 5,
		Build: func(eng sim.Loop) (*topo.Topology, error) {
			cheap := lossy(0)
			cheap.DupProb = 0.2
			exp := lossyExpensive(0)
			exp.DupProb = 0.2
			return topo.Clustered(eng, topo.ClusteredConfig{
				Clusters:        2,
				HostsPerCluster: 3,
				Cheap:           cheap,
				Expensive:       exp,
			})
		},
		Protocol:         harness.ProtocolTree,
		Messages:         10,
		StopWhenComplete: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Complete {
		t.Fatalf("broadcast incomplete under duplication: %d/%d",
			res.DeliveredCount, res.ExpectedCount)
	}
	if res.DuplicateDeliveries != 0 {
		t.Errorf("network duplicates leaked to the application: %d", res.DuplicateDeliveries)
	}
}

func TestPartitionHealsAndDeliveryResumes(t *testing.T) {
	var cut []harness.TimedEvent
	cut = append(cut,
		harness.TimedEvent{
			At: 4 * time.Second,
			Do: func(rt *harness.Runtime) error {
				_, err := rt.Topo.IsolateCluster(2)
				return err
			},
		},
		harness.TimedEvent{
			At: 20 * time.Second,
			Do: func(rt *harness.Runtime) error {
				return rt.Topo.RestoreLinks(rt.Topo.WANLinksOfCluster(2))
			},
		},
	)
	res, err := harness.Run(harness.Scenario{
		Name:             "partition-3x2",
		Seed:             11,
		Build:            clusteredBuild(3, 2, topo.WANChain),
		Protocol:         harness.ProtocolTree,
		Messages:         30,
		MsgInterval:      300 * time.Millisecond,
		Events:           cut,
		Drain:            60 * time.Second,
		StopWhenComplete: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.EventErrors) != 0 {
		t.Fatalf("event errors: %v", res.EventErrors)
	}
	if !res.Complete {
		for h := range res.DeliveredAt {
			if missing := res.MissingAt(h); len(missing) > 0 {
				t.Logf("host %d missing %v", h, missing)
			}
		}
		t.Fatalf("delivery did not resume after partition repair: %d/%d",
			res.DeliveredCount, res.ExpectedCount)
	}
	if !(res.CompletionAt > 20*time.Second) {
		t.Errorf("completion at %v, expected after the 20s repair", res.CompletionAt)
	}
}

func TestHostCrashViaAccessLink(t *testing.T) {
	// Cut a mid-tree host's access link ("host crash"), repair later; the
	// host must catch up on everything it missed.
	events := []harness.TimedEvent{
		{
			At: 4 * time.Second,
			Do: func(rt *harness.Runtime) error {
				return rt.Net.SetHostLinkUp(rt.Topo.HostsByCluster[1][0], false)
			},
		},
		{
			At: 15 * time.Second,
			Do: func(rt *harness.Runtime) error {
				return rt.Net.SetHostLinkUp(rt.Topo.HostsByCluster[1][0], true)
			},
		},
	}
	res, err := harness.Run(harness.Scenario{
		Name:             "crash-3x2",
		Seed:             13,
		Build:            clusteredBuild(3, 2, topo.WANStar),
		Protocol:         harness.ProtocolTree,
		Messages:         25,
		MsgInterval:      300 * time.Millisecond,
		Events:           events,
		Drain:            60 * time.Second,
		StopWhenComplete: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Complete {
		t.Fatalf("crashed host did not catch up: %d/%d delivered",
			res.DeliveredCount, res.ExpectedCount)
	}
}

func TestDeterministicResults(t *testing.T) {
	run := func() string {
		res, err := harness.Run(harness.Scenario{
			Seed:     21,
			Build:    clusteredBuild(3, 2, topo.WANTree),
			Messages: 8,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.Summary()
	}
	if a, b := run(), run(); a != b {
		t.Errorf("same seed produced different results:\n%s\nvs\n%s", a, b)
	}
}

func TestScenarioValidation(t *testing.T) {
	if _, err := harness.Run(harness.Scenario{}); err == nil {
		t.Error("nil Build accepted")
	}
	if _, err := harness.Run(harness.Scenario{
		Build:    clusteredBuild(1, 1, topo.WANStar),
		Messages: -1,
	}); err == nil {
		t.Error("negative Messages accepted")
	}
}

func TestSingleClusterNoExpensiveTraffic(t *testing.T) {
	res, err := harness.Run(harness.Scenario{
		Seed:             2,
		Build:            clusteredBuild(1, 5, topo.WANStar),
		Messages:         10,
		StopWhenComplete: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Complete {
		t.Fatalf("single-cluster broadcast incomplete: %d/%d", res.DeliveredCount, res.ExpectedCount)
	}
	if n := res.NetStats.LinkTransmissions[2]; n != 0 { // netsim.Expensive
		t.Errorf("expensive transmissions = %d in an all-cheap net", n)
	}
	var inter uint64
	for _, n := range res.InterClusterByKind {
		inter += n
	}
	if inter != 0 {
		t.Errorf("inter-cluster sends = %d with one cluster", inter)
	}
}
