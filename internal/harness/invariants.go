package harness

import (
	"fmt"
	"sort"

	"rbcast/internal/core"
	"rbcast/internal/netsim"
	"rbcast/internal/seqset"
)

// This file checks the paper's structural claims about the host parent
// graph against simulator ground truth. Tests call these after letting a
// scenario converge.

// ParentGraphAcyclic reports whether the current parent pointers contain
// no cycle.
func (rt *Runtime) ParentGraphAcyclic() (bool, []core.HostID) {
	if rt.TreeHosts == nil {
		return true, nil
	}
	for id := range rt.TreeHosts {
		seen := map[core.HostID]bool{}
		cur := id
		for cur != core.Nil {
			if seen[cur] {
				// Walk the cycle for the report.
				var cycle []core.HostID
				at := cur
				for {
					cycle = append(cycle, at)
					at = rt.TreeHosts[at].Parent()
					if at == cur || at == core.Nil {
						break
					}
				}
				return false, cycle
			}
			seen[cur] = true
			h, ok := rt.TreeHosts[cur]
			if !ok {
				break
			}
			cur = h.Parent()
		}
	}
	return true, nil
}

// SpanningTreeRooted reports whether every host reaches the source by
// following parent pointers (the parent graph is a spanning tree rooted
// at the source).
func (rt *Runtime) SpanningTreeRooted() (bool, string) {
	if rt.TreeHosts == nil {
		return false, "not a tree-protocol run"
	}
	source := core.HostID(rt.Topo.Source)
	for id := range rt.TreeHosts {
		if id == source {
			if p := rt.TreeHosts[id].Parent(); p != core.Nil {
				return false, fmt.Sprintf("source has parent %d", p)
			}
			continue
		}
		cur := id
		steps := 0
		for cur != source {
			if cur == core.Nil {
				return false, fmt.Sprintf("host %d's ancestry ends at NIL", id)
			}
			if steps > len(rt.TreeHosts) {
				return false, fmt.Sprintf("host %d's ancestry does not terminate (cycle)", id)
			}
			cur = rt.TreeHosts[cur].Parent()
			steps++
		}
	}
	return true, ""
}

// InducesClusterTree checks the §4.1 definition against true clusters:
// (1) the parent graph is a spanning tree rooted at the source, and
// (2) within each true cluster there is exactly one leader (a host whose
// parent is outside the cluster or NIL) and every other host of the
// cluster is a direct child of that leader.
func (rt *Runtime) InducesClusterTree() (bool, string) {
	if ok, why := rt.SpanningTreeRooted(); !ok {
		return false, why
	}
	truth := rt.Net.TrueClusters()
	clusterHosts := map[int][]core.HostID{}
	for h, c := range truth {
		clusterHosts[c] = append(clusterHosts[c], core.HostID(h))
	}
	var clusters []int
	for c := range clusterHosts {
		clusters = append(clusters, c)
	}
	sort.Ints(clusters)
	for _, c := range clusters {
		hosts := clusterHosts[c]
		sort.Slice(hosts, func(i, j int) bool { return hosts[i] < hosts[j] })
		var leaders []core.HostID
		for _, h := range hosts {
			p := rt.TreeHosts[h].Parent()
			if p == core.Nil || truth[netsim.HostID(p)] != c {
				leaders = append(leaders, h)
			}
		}
		if len(leaders) != 1 {
			return false, fmt.Sprintf("cluster %d has %d leaders (%v)", c, len(leaders), leaders)
		}
		leader := leaders[0]
		for _, h := range hosts {
			if h == leader {
				continue
			}
			if p := rt.TreeHosts[h].Parent(); p != leader {
				return false, fmt.Sprintf(
					"cluster %d: host %d's parent is %d, not leader %d", c, h, p, leader)
			}
		}
	}
	return true, ""
}

// Violation is one failed invariant, named so sweep reports can group
// failures across thousands of runs.
type Violation struct {
	// Invariant is a stable identifier ("acyclic", "spanning-tree",
	// "cluster-tree", "delivery", "duplicates", "send-errors",
	// "backoff-liveness", "byz-agreement", "byz-forged-frame").
	Invariant string
	// Detail explains the specific failure.
	Detail string
}

// String implements fmt.Stringer.
func (v Violation) String() string { return v.Invariant + ": " + v.Detail }

// InvariantOptions selects which checks CheckInvariants applies beyond
// the unconditional ones (acyclicity, no duplicate deliveries, no send
// errors).
type InvariantOptions struct {
	// RequireDelivery demands every host delivered every message.
	RequireDelivery bool
	// RequireTree demands a spanning tree rooted at the source inducing a
	// cluster tree — only meaningful once the network is connected and
	// the protocol has had time to converge.
	RequireTree bool
}

// CheckInvariants runs the invariant bundle and returns every violation
// found. Hosts are visited in ascending ID order, so for a given runtime
// state the report is byte-for-byte deterministic — a property the soak
// engine's worker-count-independence guarantee rests on.
func (rt *Runtime) CheckInvariants(opts InvariantOptions) []Violation {
	rt.merge()
	var out []Violation
	res := rt.result
	if res.DuplicateDeliveries != 0 {
		out = append(out, Violation{"duplicates",
			fmt.Sprintf("%d duplicate deliveries", res.DuplicateDeliveries)})
	}
	if res.SendErrors != 0 {
		out = append(out, Violation{"send-errors",
			fmt.Sprintf("%d rejected sends", res.SendErrors)})
	}
	if rt.TreeHosts != nil && rt.scenario.Params.BackoffEnabled() {
		if v, ok := rt.checkBackoffLiveness(); !ok {
			out = append(out, v)
		}
	}
	if rt.TreeHosts != nil {
		if v, ok := rt.checkAcyclicSorted(); !ok {
			out = append(out, v)
		} else if opts.RequireTree {
			if v, ok := rt.checkSpanningSorted(); !ok {
				out = append(out, v)
			} else if ok, why := rt.InducesClusterTree(); !ok {
				out = append(out, Violation{"cluster-tree", why})
			}
		}
	}
	if opts.RequireDelivery {
		for _, h := range rt.sortedHosts() {
			if rt.adversarial(h) {
				// An adversary may silence or corrupt its own traffic; the
				// paper's delivery guarantee is owed to correct hosts only.
				continue
			}
			if missing := res.MissingAt(h); len(missing) > 0 {
				out = append(out, Violation{"delivery",
					fmt.Sprintf("host %d missing %d of %d messages (first %v)",
						h, len(missing), res.TotalMessages(), missing[0])})
			}
		}
	}
	if rt.Adversary != nil {
		out = append(out, rt.checkByzantine()...)
	}
	return out
}

// adversarial reports whether h is under adversary control this run.
func (rt *Runtime) adversarial(h core.HostID) bool {
	return rt.Adversary != nil && rt.Adversary.Controls(h)
}

// checkByzantine applies the two agreement invariants that matter once
// adversaries are in play. "byz-forged-frame": every payload a correct
// host delivers must carry the digest the source actually broadcast for
// that sequence number — and a sequence number nobody broadcast is a
// fabrication by definition. "byz-agreement": any two correct hosts
// delivering the same sequence number delivered the same digest (the
// pairwise consequence of the former, kept as its own named invariant
// because equivocation breaks it even when the broadcast record is
// unavailable to an observer). Hosts and sequence numbers are visited in
// ascending order, so the report is byte-for-byte deterministic.
func (rt *Runtime) checkByzantine() []Violation {
	var out []Violation
	res := rt.result
	firstHost := map[seqset.Seq]core.HostID{}
	firstDigest := map[seqset.Seq]uint64{}
	for _, h := range rt.sortedHosts() {
		if rt.adversarial(h) {
			continue
		}
		per := res.DeliveredDigest[h]
		seqs := make([]seqset.Seq, 0, len(per))
		for q := range per {
			seqs = append(seqs, q)
		}
		sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
		for _, q := range seqs {
			d := per[q]
			if want, broadcast := res.BroadcastDigest[q]; !broadcast {
				out = append(out, Violation{"byz-forged-frame",
					fmt.Sprintf("host %d delivered fabricated seq %d that no source broadcast", h, q)})
			} else if d != want {
				out = append(out, Violation{"byz-forged-frame",
					fmt.Sprintf("host %d delivered seq %d with digest %#x; source sent %#x", h, q, d, want)})
			}
			if prev, seen := firstHost[q]; seen {
				if firstDigest[q] != d {
					out = append(out, Violation{"byz-agreement",
						fmt.Sprintf("hosts %d and %d delivered different payloads for seq %d (%#x vs %#x)",
							prev, h, q, firstDigest[q], d)})
				}
			} else {
				firstHost[q] = h
				firstDigest[q] = d
			}
		}
	}
	return out
}

func (rt *Runtime) sortedHosts() []core.HostID {
	hosts := make([]core.HostID, len(rt.result.HostList))
	copy(hosts, rt.result.HostList)
	sort.Slice(hosts, func(i, j int) bool { return hosts[i] < hosts[j] })
	return hosts
}

// checkAcyclicSorted is ParentGraphAcyclic with deterministic host order
// and a Violation-shaped report.
func (rt *Runtime) checkAcyclicSorted() (Violation, bool) {
	for _, id := range rt.sortedHosts() {
		seen := map[core.HostID]bool{}
		cur := id
		for cur != core.Nil {
			if seen[cur] {
				return Violation{"acyclic",
					fmt.Sprintf("parent cycle reachable from host %d (via %d)", id, cur)}, false
			}
			seen[cur] = true
			h, ok := rt.TreeHosts[cur]
			if !ok {
				break
			}
			cur = h.Parent()
		}
	}
	return Violation{}, true
}

// checkSpanningSorted is SpanningTreeRooted with deterministic host order.
func (rt *Runtime) checkSpanningSorted() (Violation, bool) {
	source := core.HostID(rt.Topo.Source)
	for _, id := range rt.sortedHosts() {
		if id == source {
			if p := rt.TreeHosts[id].Parent(); p != core.Nil {
				return Violation{"spanning-tree", fmt.Sprintf("source has parent %d", p)}, false
			}
			continue
		}
		cur := id
		steps := 0
		for cur != source {
			if cur == core.Nil {
				return Violation{"spanning-tree",
					fmt.Sprintf("host %d's ancestry ends at NIL", id)}, false
			}
			if steps > len(rt.TreeHosts) {
				return Violation{"spanning-tree",
					fmt.Sprintf("host %d's ancestry does not terminate (cycle)", id)}, false
			}
			cur = rt.TreeHosts[cur].Parent()
			steps++
		}
	}
	return Violation{}, true
}

// LeadersPerTrueCluster counts current leaders in every true cluster.
func (rt *Runtime) LeadersPerTrueCluster() map[int]int {
	truth := rt.Net.TrueClusters()
	out := map[int]int{}
	for h, c := range truth {
		th, ok := rt.TreeHosts[core.HostID(h)]
		if !ok {
			continue
		}
		p := th.Parent()
		if p == core.Nil || truth[netsim.HostID(p)] != c {
			out[c]++
		}
	}
	return out
}
