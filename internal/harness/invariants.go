package harness

import (
	"fmt"
	"sort"

	"rbcast/internal/core"
	"rbcast/internal/netsim"
)

// This file checks the paper's structural claims about the host parent
// graph against simulator ground truth. Tests call these after letting a
// scenario converge.

// ParentGraphAcyclic reports whether the current parent pointers contain
// no cycle.
func (rt *Runtime) ParentGraphAcyclic() (bool, []core.HostID) {
	if rt.TreeHosts == nil {
		return true, nil
	}
	for id := range rt.TreeHosts {
		seen := map[core.HostID]bool{}
		cur := id
		for cur != core.Nil {
			if seen[cur] {
				// Walk the cycle for the report.
				var cycle []core.HostID
				at := cur
				for {
					cycle = append(cycle, at)
					at = rt.TreeHosts[at].Parent()
					if at == cur || at == core.Nil {
						break
					}
				}
				return false, cycle
			}
			seen[cur] = true
			h, ok := rt.TreeHosts[cur]
			if !ok {
				break
			}
			cur = h.Parent()
		}
	}
	return true, nil
}

// SpanningTreeRooted reports whether every host reaches the source by
// following parent pointers (the parent graph is a spanning tree rooted
// at the source).
func (rt *Runtime) SpanningTreeRooted() (bool, string) {
	if rt.TreeHosts == nil {
		return false, "not a tree-protocol run"
	}
	source := core.HostID(rt.Topo.Source)
	for id := range rt.TreeHosts {
		if id == source {
			if p := rt.TreeHosts[id].Parent(); p != core.Nil {
				return false, fmt.Sprintf("source has parent %d", p)
			}
			continue
		}
		cur := id
		steps := 0
		for cur != source {
			if cur == core.Nil {
				return false, fmt.Sprintf("host %d's ancestry ends at NIL", id)
			}
			if steps > len(rt.TreeHosts) {
				return false, fmt.Sprintf("host %d's ancestry does not terminate (cycle)", id)
			}
			cur = rt.TreeHosts[cur].Parent()
			steps++
		}
	}
	return true, ""
}

// InducesClusterTree checks the §4.1 definition against true clusters:
// (1) the parent graph is a spanning tree rooted at the source, and
// (2) within each true cluster there is exactly one leader (a host whose
// parent is outside the cluster or NIL) and every other host of the
// cluster is a direct child of that leader.
func (rt *Runtime) InducesClusterTree() (bool, string) {
	if ok, why := rt.SpanningTreeRooted(); !ok {
		return false, why
	}
	truth := rt.Net.TrueClusters()
	clusterHosts := map[int][]core.HostID{}
	for h, c := range truth {
		clusterHosts[c] = append(clusterHosts[c], core.HostID(h))
	}
	var clusters []int
	for c := range clusterHosts {
		clusters = append(clusters, c)
	}
	sort.Ints(clusters)
	for _, c := range clusters {
		hosts := clusterHosts[c]
		sort.Slice(hosts, func(i, j int) bool { return hosts[i] < hosts[j] })
		var leaders []core.HostID
		for _, h := range hosts {
			p := rt.TreeHosts[h].Parent()
			if p == core.Nil || truth[netsim.HostID(p)] != c {
				leaders = append(leaders, h)
			}
		}
		if len(leaders) != 1 {
			return false, fmt.Sprintf("cluster %d has %d leaders (%v)", c, len(leaders), leaders)
		}
		leader := leaders[0]
		for _, h := range hosts {
			if h == leader {
				continue
			}
			if p := rt.TreeHosts[h].Parent(); p != leader {
				return false, fmt.Sprintf(
					"cluster %d: host %d's parent is %d, not leader %d", c, h, p, leader)
			}
		}
	}
	return true, ""
}

// LeadersPerTrueCluster counts current leaders in every true cluster.
func (rt *Runtime) LeadersPerTrueCluster() map[int]int {
	truth := rt.Net.TrueClusters()
	out := map[int]int{}
	for h, c := range truth {
		th, ok := rt.TreeHosts[core.HostID(h)]
		if !ok {
			continue
		}
		p := th.Parent()
		if p == core.Nil || truth[netsim.HostID(p)] != c {
			out[c]++
		}
	}
	return out
}
