package harness

import (
	"fmt"
	"time"

	"rbcast/internal/netsim"
)

// This file surfaces the core health layer (internal/core/health.go) in
// the harness: aggregate counters, a periodic monitor in the CycleMonitor
// mould, and the backoff-liveness invariant.

// SuspectedPairs counts (host, peer) pairs the hosts currently suspect.
func (rt *Runtime) SuspectedPairs() int {
	n := 0
	for _, h := range rt.TreeHosts {
		n += len(h.SuspectedPeers())
	}
	return n
}

// TotalResyncBursts sums fast-resync bursts across hosts.
func (rt *Runtime) TotalResyncBursts() uint64 {
	var n uint64
	for _, h := range rt.TreeHosts {
		n += h.ResyncBursts()
	}
	return n
}

// TotalSuppressedSends sums backoff-suppressed control sends across hosts.
func (rt *Runtime) TotalSuppressedSends() uint64 {
	var n uint64
	for _, h := range rt.TreeHosts {
		n += h.SuppressedSends()
	}
	return n
}

// HealthSample is one periodic observation of the fleet's health state.
type HealthSample struct {
	At time.Duration
	// SuspectedPairs is the number of (host, peer) suspicions in force.
	SuspectedPairs int
	// ResyncBursts and SuppressedSends are cumulative fleet totals.
	ResyncBursts    uint64
	SuppressedSends uint64
}

// HealthMonitor samples the fleet's suspicion state periodically, giving
// experiments a time series of how the failure detector reacted to
// partitions and heals.
type HealthMonitor struct {
	samples []HealthSample
}

// MonitorHealth starts sampling the runtime's health state every period.
// Call before Finish/RunUntil.
func (rt *Runtime) MonitorHealth(period time.Duration) *HealthMonitor {
	if period <= 0 {
		period = 100 * time.Millisecond
	}
	m := &HealthMonitor{}
	var sample func()
	sample = func() {
		m.samples = append(m.samples, HealthSample{
			At:              rt.Engine.Now(),
			SuspectedPairs:  rt.SuspectedPairs(),
			ResyncBursts:    rt.TotalResyncBursts(),
			SuppressedSends: rt.TotalSuppressedSends(),
		})
		rt.Engine.Schedule(period, sample)
	}
	rt.Engine.Schedule(0, sample)
	return m
}

// Samples returns all observations taken so far.
func (m *HealthMonitor) Samples() []HealthSample {
	out := make([]HealthSample, len(m.samples))
	copy(out, m.samples)
	return out
}

// PeakSuspectedPairs returns the maximum suspicion count observed.
func (m *HealthMonitor) PeakSuspectedPairs() int {
	peak := 0
	for _, s := range m.samples {
		if s.SuspectedPairs > peak {
			peak = s.SuspectedPairs
		}
	}
	return peak
}

// checkBackoffLiveness verifies the health layer's safety contract at the
// current instant, in deterministic host order:
//
//  1. no backoff window extends beyond BackoffMax from now (the cap is
//     respected for every peer, reachable or not), and
//  2. a peer that is reachable in both directions and was heard from
//     within the last BackoffBase is not gated past its base period —
//     fresh liveness evidence must have reset the backoff.
func (rt *Runtime) checkBackoffLiveness() (Violation, bool) {
	p := rt.scenario.Params
	now := rt.Engine.Now()
	hosts := rt.sortedHosts()
	for _, i := range hosts {
		h := rt.TreeHosts[i]
		for _, j := range hosts {
			if j == i {
				continue
			}
			ph := h.PeerHealthOf(j)
			if ph.NextContact > now+p.BackoffMax {
				return Violation{"backoff-liveness", fmt.Sprintf(
					"host %d gates peer %d until %v, beyond cap %v from now %v",
					i, j, ph.NextContact, p.BackoffMax, now)}, false
			}
			reachable := rt.Net.PathExists(netsim.HostID(i), netsim.HostID(j)) &&
				rt.Net.PathExists(netsim.HostID(j), netsim.HostID(i))
			heardFresh := ph.EverHeard && now-ph.LastHeard <= p.BackoffBase
			if reachable && heardFresh && ph.NextContact > now+p.BackoffBase {
				return Violation{"backoff-liveness", fmt.Sprintf(
					"host %d heard reachable peer %d at %v yet gates it until %v (> base %v past now %v)",
					i, j, ph.LastHeard, ph.NextContact, p.BackoffBase, now)}, false
			}
		}
	}
	return Violation{}, true
}
