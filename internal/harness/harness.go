// Package harness runs complete broadcast scenarios: it builds a
// topology, wires protocol hosts (the paper's tree protocol or the §1
// basic baseline) onto the simulated network, drives a workload and a
// failure schedule, and collects the metrics the paper's §5 evaluation
// arguments are about.
package harness

import (
	"fmt"
	"hash/fnv"
	"time"

	"rbcast/internal/adversary"
	"rbcast/internal/basic"
	"rbcast/internal/core"
	"rbcast/internal/metrics"
	"rbcast/internal/netsim"
	"rbcast/internal/replica"
	"rbcast/internal/seqset"
	"rbcast/internal/sim"
	"rbcast/internal/topo"
	"rbcast/internal/wire"
)

// Protocol selects the broadcast algorithm under test.
type Protocol int

const (
	// ProtocolTree is the paper's protocol (internal/core).
	ProtocolTree Protocol = iota + 1
	// ProtocolBasic is the §1 baseline (internal/basic).
	ProtocolBasic
)

// String implements fmt.Stringer.
func (p Protocol) String() string {
	switch p {
	case ProtocolTree:
		return "tree"
	case ProtocolBasic:
		return "basic"
	default:
		return fmt.Sprintf("Protocol(%d)", int(p))
	}
}

// TimedEvent is a scheduled scenario action (failure injection, repair,
// topology change).
type TimedEvent struct {
	At time.Duration
	Do func(*Runtime) error
}

// Scenario describes one simulation run.
type Scenario struct {
	// Name labels the run in results.
	Name string
	// Seed drives all randomness.
	Seed int64
	// Shards, when positive, runs the scenario on the sharded parallel
	// engine (sim.Sharded) with that many workers: the topology's
	// cheap-link clusters become independently clocked lanes synchronized
	// by a conservative epoch barrier. The trace of a sharded run depends
	// only on (Seed, topology) — never on the worker count — so any two
	// positive Shards values produce bit-identical results. Zero keeps
	// the sequential engine (a distinct, equally deterministic
	// execution: it draws from one PRNG stream where lanes each have
	// their own).
	Shards int
	// Build constructs the topology on the given engine.
	Build func(sim.Loop) (*topo.Topology, error)
	// Protocol selects tree or basic; default ProtocolTree.
	Protocol Protocol
	// Params tunes the tree protocol; zero value uses defaults.
	Params core.Params
	// BasicParams tunes the baseline; zero value uses defaults.
	BasicParams basic.Params
	// Order optionally overrides the static host order for the tree
	// protocol.
	Order map[core.HostID]int
	// Messages is the number of data messages the source broadcasts.
	Messages int
	// MsgInterval separates consecutive broadcasts; default 200 ms.
	MsgInterval time.Duration
	// PayloadSize is the data payload length in bytes; default 32.
	PayloadSize int
	// WarmUp is virtual time before the first broadcast (lets the tree
	// form); default 3 s for the tree protocol, 0 for basic.
	WarmUp time.Duration
	// Drain is the maximum extra virtual time after the last broadcast.
	// Default 30 s.
	Drain time.Duration
	// Events is the failure/repair schedule.
	Events []TimedEvent
	// StopWhenComplete ends the run as soon as every host has every
	// message (the completion time is recorded either way).
	StopWhenComplete bool
	// CollectEvents retains protocol events in the result (tree only).
	CollectEvents bool
	// Adversaries places a Byzantine behavior stack on each named host.
	// The host keeps running the unmodified protocol code; its outbound
	// traffic is rewritten at the netsim transmit seam by
	// internal/adversary. Runs stay deterministic — behaviors draw only
	// from a seed-derived RNG.
	Adversaries map[core.HostID][]adversary.Behavior
	// Replicate attaches a replica.Store to every tree host: delivered
	// payloads that decode as replica updates are applied to it, and the
	// host's Env implements core.Snapshotter over it, enabling the
	// checkpointed state transfer behind Params.SnapshotEvery. A snapshot
	// install records delivery coverage for the broadcast prefix it
	// replaces, so completeness metrics see state transfer as delivery.
	Replicate bool
	// PayloadFor, when set, supplies the payload of the i-th scheduled
	// broadcast (0-based) instead of the default fixed bytes; Replicate
	// scenarios use it to broadcast encoded replica updates.
	PayloadFor func(i int) []byte
}

func (s Scenario) withDefaults() (Scenario, error) {
	if s.Build == nil {
		return s, fmt.Errorf("harness: Scenario.Build is nil")
	}
	if s.Protocol == 0 {
		s.Protocol = ProtocolTree
	}
	if s.Messages < 0 {
		return s, fmt.Errorf("harness: negative Messages %d", s.Messages)
	}
	if s.MsgInterval <= 0 {
		s.MsgInterval = 200 * time.Millisecond
	}
	if s.PayloadSize <= 0 {
		s.PayloadSize = 32
	}
	if s.WarmUp == 0 && s.Protocol == ProtocolTree {
		s.WarmUp = 3 * time.Second
	}
	if s.Drain <= 0 {
		s.Drain = 30 * time.Second
	}
	if s.Params == (core.Params{}) {
		s.Params = core.DefaultParams()
	}
	if s.BasicParams == (basic.Params{}) {
		s.BasicParams = basic.DefaultParams()
	}
	return s, nil
}

// Runtime is the live state of a running scenario, exposed to scheduled
// events and, read-only, to tests after the run.
type Runtime struct {
	Engine sim.Loop
	Topo   *topo.Topology
	Net    *netsim.Network
	// TreeHosts maps host ID to protocol state (tree protocol runs only).
	TreeHosts map[core.HostID]*core.Host
	// BasicSource and BasicReceivers are set for baseline runs.
	BasicSource    *basic.Source
	BasicReceivers map[core.HostID]*basic.Receiver
	// Adversary controls the Byzantine hosts, when the scenario has any.
	Adversary *adversary.Controller
	// Replicas holds each tree host's replicated store under
	// Scenario.Replicate (nil otherwise).
	Replicas map[core.HostID]*replica.Store

	scenario Scenario
	result   *Result
	// acc holds one accumulator per lane (exactly one on the sequential
	// engine). Hook and delivery counters land in the executing lane's
	// accumulator — lane events on different lanes run concurrently under
	// Scenario.Shards — and merge() folds them into the Result in lane
	// order from parked contexts. The epoch-job channel handoff inside
	// sim.Sharded is the happens-before edge making that safe.
	acc []laneAcc
	// broadcasting is true while a Broadcast call is on the stack: the
	// source delivers to itself synchronously, before the caller can
	// register the new sequence number in BroadcastAt, and record must
	// not mistake that self-delivery for an adversary-fabricated frame.
	// Broadcast is only ever invoked from parked contexts (the global
	// queue or test code between runs), so no lane event can observe the
	// flag mid-flight.
	broadcasting bool
}

// laneAcc accumulates everything one lane's events measure. Each lane
// writes only its own accumulator; Result fields derive from a
// deterministic lane-order merge.
type laneAcc struct {
	sendsByKind             map[string]uint64
	interClusterByKind      map[string]uint64
	unreachableSendsByKind  map[string]uint64
	sourceLinkByKind        map[string]uint64
	logicalSends            uint64
	unreachableSends        uint64
	wireBytes               uint64
	catchupWireBytes        uint64
	infoWireBytes           uint64
	dataLinkTraversals      uint64
	dataExpensiveTraversals uint64

	delays metrics.Durations
	// deliveryTimes records the instant of every counted delivery
	// (including self-deliveries and snapshot coverage, which take no
	// delay sample); completion time is recovered from the merged
	// sequence at finalize.
	deliveryTimes       []time.Duration
	deliveredCount      int
	duplicateDeliveries int
	foreignDeliveries   int
	snapshotDeliveries  int
	sendErrors          int
	events              []core.Event
}

func newLaneAcc() laneAcc {
	return laneAcc{
		sendsByKind:            make(map[string]uint64),
		interClusterByKind:     make(map[string]uint64),
		unreachableSendsByKind: make(map[string]uint64),
		sourceLinkByKind:       make(map[string]uint64),
	}
}

// laneOf reports the lane executing host id's protocol code.
func (rt *Runtime) laneOf(id core.HostID) int {
	return rt.Net.LaneOfHost(netsim.HostID(id))
}

// deliveredTotal sums counted deliveries across lanes. Parked contexts
// only.
func (rt *Runtime) deliveredTotal() int {
	n := 0
	for i := range rt.acc {
		n += rt.acc[i].deliveredCount
	}
	return n
}

// Run executes the scenario to completion and returns the result.
func Run(s Scenario) (*Result, error) {
	rt, err := Prepare(s)
	if err != nil {
		return nil, err
	}
	return rt.Finish()
}

// Prepare builds the runtime without running it; tests use this to
// interleave their own assertions with engine execution.
func Prepare(s Scenario) (*Runtime, error) {
	s, err := s.withDefaults()
	if err != nil {
		return nil, err
	}
	var eng sim.Loop
	var sharded *sim.Sharded
	if s.Shards > 0 {
		sharded = sim.NewSharded(s.Seed, s.Shards)
		eng = sharded
	} else {
		eng = sim.NewEngine(s.Seed)
	}
	tp, err := s.Build(eng)
	if err != nil {
		return nil, fmt.Errorf("harness: building topology: %w", err)
	}
	if sharded != nil {
		// Partition the built topology into lanes (its cheap-link
		// clusters) and hand the engine the lane weights and the
		// conservative lookahead before any lane event is scheduled.
		plan := tp.Net.ComputeShardPlan()
		sharded.SetLanes(plan.Weights, plan.Lookahead)
		if err := tp.Net.ApplyShardPlan(plan); err != nil {
			return nil, fmt.Errorf("harness: applying shard plan: %w", err)
		}
	}
	rt := &Runtime{
		Engine:   eng,
		Topo:     tp,
		Net:      tp.Net,
		scenario: s,
		result:   newResult(s, tp),
	}
	rt.acc = make([]laneAcc, tp.Net.Lanes())
	for i := range rt.acc {
		rt.acc[i] = newLaneAcc()
	}
	if len(rt.acc) > 1 {
		// Pre-populate the per-host delivery maps: lane events then only
		// read the outer maps and write their own hosts' inner maps, so
		// concurrent lanes never mutate a shared map.
		for _, h := range tp.Hosts {
			rt.result.DeliveredAt[core.HostID(h)] = make(map[seqset.Seq]time.Duration)
			rt.result.DeliveredDigest[core.HostID(h)] = make(map[seqset.Seq]uint64)
		}
	}
	rt.instrument()
	switch s.Protocol {
	case ProtocolTree:
		if err := rt.buildTree(); err != nil {
			return nil, err
		}
	case ProtocolBasic:
		if err := rt.buildBasic(); err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("harness: unknown protocol %v", s.Protocol)
	}
	if len(s.Adversaries) > 0 {
		ctl, err := adversary.Attach(rt.Net, s.Seed, s.Adversaries)
		if err != nil {
			return nil, fmt.Errorf("harness: attaching adversaries: %w", err)
		}
		rt.Adversary = ctl
	}
	rt.scheduleWorkload()
	for _, ev := range s.Events {
		ev := ev
		eng.Schedule(ev.At, func() {
			if err := ev.Do(rt); err != nil {
				rt.result.EventErrors = append(rt.result.EventErrors,
					fmt.Sprintf("t=%v: %v", eng.Now(), err))
			}
		})
	}
	return rt, nil
}

// Horizon returns the scheduled end time of the scenario.
func (rt *Runtime) Horizon() time.Duration {
	s := rt.scenario
	end := s.WarmUp + time.Duration(s.Messages)*s.MsgInterval + s.Drain
	for _, ev := range s.Events {
		if ev.At+s.Drain > end {
			end = ev.At + s.Drain
		}
	}
	return end
}

// Finish runs the scenario to its horizon (or completion) and finalizes
// the result.
func (rt *Runtime) Finish() (*Result, error) {
	if err := rt.RunUntil(rt.Horizon()); err != nil {
		return nil, err
	}
	rt.finalize()
	return rt.result, nil
}

// Settle advances virtual time by extra regardless of completion. Sweep
// drivers use it after the workload finishes (possibly early, via
// StopWhenComplete) to let the parent graph converge before checking
// structural invariants.
func (rt *Runtime) Settle(extra time.Duration) error {
	if extra <= 0 {
		return nil
	}
	return rt.Engine.Run(rt.Engine.Now() + extra)
}

// Finalize snapshots network statistics and final parent pointers into
// the result without running the engine further. It is idempotent;
// Finish calls it implicitly.
func (rt *Runtime) Finalize() *Result {
	rt.finalize()
	return rt.result
}

// RunUntil advances virtual time to the given instant, stopping early at
// completion when the scenario asks for it.
func (rt *Runtime) RunUntil(until time.Duration) error {
	const step = 100 * time.Millisecond
	for rt.Engine.Now() < until {
		next := rt.Engine.Now() + step
		if next > until {
			next = until
		}
		if err := rt.Engine.Run(next); err != nil {
			return err
		}
		if rt.scenario.StopWhenComplete && rt.deliveredTotal() == rt.result.ExpectedCount {
			return nil
		}
	}
	return nil
}

// Result returns the result under collection, with per-lane counters
// merged up to the current instant. Call it from parked contexts only
// (between runs or from global-queue events).
func (rt *Runtime) Result() *Result {
	rt.merge()
	return rt.result
}

// instrument classifies every host-level send by protocol message kind,
// counts sends to currently-unreachable destinations (the §5 partition
// waste metric), and counts server-link traversals of data messages (the
// Figure 3.1 link-cost metric).
func (rt *Runtime) instrument() {
	rt.Net.OnSend = func(lane int, env netsim.Envelope, inter bool) {
		a := &rt.acc[lane]
		kind := classify(env.Payload)
		a.sendsByKind[kind]++
		if m, ok := env.Payload.(core.Message); ok && m.Kind == core.MsgBundle {
			a.logicalSends += uint64(len(m.Parts))
		} else {
			a.logicalSends++
		}
		if inter {
			a.interClusterByKind[kind]++
		}
		if !rt.Net.PathExistsOf(lane, env.From, env.To) {
			a.unreachableSends++
			a.unreachableSendsByKind[kind]++
		}
		if m, ok := env.Payload.(core.Message); ok {
			// EncodedSize prices the frame without encoding it — this hook
			// runs on every host-level send, so the accounting must not
			// allocate a throwaway buffer per message.
			if size, err := wire.EncodedSize(wire.Frame{From: core.HostID(env.From), Message: m}); err == nil {
				a.wireBytes += uint64(size)
				switch m.Kind {
				case core.MsgSyncReq, core.MsgSyncResp, core.MsgSnapReq, core.MsgSnapChunk:
					a.catchupWireBytes += uint64(size)
				}
			}
			a.infoWireBytes += infoWireBytes(core.HostID(env.From), m)
		}
	}
	rt.Net.OnLinkTransmit = func(lane int, _ netsim.LinkID, class netsim.LinkClass, env netsim.Envelope) {
		kind := classify(env.Payload)
		if kind == kindData || kind == kindGapFill {
			a := &rt.acc[lane]
			a.dataLinkTraversals++
			if class == netsim.Expensive {
				a.dataExpensiveTraversals++
			}
		}
	}
	source := rt.Topo.Source
	rt.Net.OnHostLinkTransmit = func(lane int, h netsim.HostID, env netsim.Envelope) {
		if h == source {
			rt.acc[lane].sourceLinkByKind[classify(env.Payload)]++
		}
	}
}

// BroadcastNow generates one data message immediately (outside the
// scheduled workload); scenario events use it for precisely timed
// broadcasts. The result's accounting treats it like any other message.
func (rt *Runtime) BroadcastNow(payload []byte) error {
	now := rt.Engine.Now()
	var seq seqset.Seq
	rt.broadcasting = true
	switch rt.scenario.Protocol {
	case ProtocolTree:
		seq = rt.TreeHosts[core.HostID(rt.Topo.Source)].Broadcast(now, payload)
	case ProtocolBasic:
		seq = rt.BasicSource.Broadcast(now, payload)
	default:
		rt.broadcasting = false
		return fmt.Errorf("harness: unknown protocol %v", rt.scenario.Protocol)
	}
	rt.broadcasting = false
	rt.result.BroadcastAt[seq] = now
	rt.result.BroadcastDigest[seq] = fnvDigest(payload)
	rt.result.ManualMessages++
	rt.result.ExpectedCount += rt.result.Hosts
	rt.result.DeliveredCount = rt.deliveredTotal()
	rt.result.Complete = rt.result.DeliveredCount == rt.result.ExpectedCount
	return nil
}

// Send-kind labels. Data and gap fills are separated because the paper's
// cost accounting distinguishes first-delivery traffic from redelivery.
const (
	kindData    = "data"
	kindGapFill = "gapfill"
	kindAck     = "ack"
	kindOther   = "other"
)

func classify(payload any) string {
	switch m := payload.(type) {
	case core.Message:
		if m.Kind == core.MsgData {
			if m.GapFill {
				return kindGapFill
			}
			return kindData
		}
		return m.Kind.String()
	case basic.Message:
		if m.Kind == basic.KindData {
			return kindData
		}
		return kindAck
	default:
		return kindOther
	}
}

// infoWireBytes prices the INFO-channel content of one protocol message:
// the wire size of MsgInfo/MsgInfoDelta frames, descending into bundles
// so piggybacked INFO exchanges are counted too.
func infoWireBytes(from core.HostID, m core.Message) uint64 {
	switch m.Kind {
	case core.MsgInfo, core.MsgInfoDelta:
		if size, err := wire.EncodedSize(wire.Frame{From: from, Message: m}); err == nil {
			return uint64(size)
		}
	case core.MsgBundle:
		var total uint64
		for _, part := range m.Parts {
			total += infoWireBytes(from, part)
		}
		return total
	}
	return 0
}

type treeEnv struct {
	rt   *Runtime
	id   core.HostID
	lane int
}

func (e treeEnv) Send(to core.HostID, m core.Message) {
	if err := e.rt.Net.Send(netsim.HostID(e.id), netsim.HostID(to), m); err != nil {
		e.rt.acc[e.lane].sendErrors++
	}
}

func (e treeEnv) Deliver(seq seqset.Seq, payload []byte) {
	e.rt.record(e.lane, e.id, seq, payload)
	if st := e.rt.Replicas[e.id]; st != nil {
		if u, err := replica.DecodeUpdate(payload); err == nil {
			st.Apply(u)
		}
	}
}

// Snapshot implements core.Snapshotter over the host's replica store: a
// checkpoint of the full replicated state stamped with the delivered
// prefix it covers. Without Scenario.Replicate there is no state to
// checkpoint and the host runs without snapshots.
func (e treeEnv) Snapshot(upTo seqset.Seq) ([]byte, bool) {
	st := e.rt.Replicas[e.id]
	if st == nil {
		return nil, false
	}
	data, err := replica.EncodeCheckpoint(st, uint64(upTo))
	if err != nil {
		return nil, false
	}
	return data, true
}

// InstallSnapshot merges a transferred checkpoint into the host's
// replica store and records delivery coverage for the broadcast prefix
// it replaces.
func (e treeEnv) InstallSnapshot(upTo seqset.Seq, data []byte) bool {
	st := e.rt.Replicas[e.id]
	if st == nil {
		return false
	}
	mark, rows, err := replica.DecodeCheckpoint(data)
	if err != nil || mark != uint64(upTo) {
		return false
	}
	st.InstallRows(rows)
	e.rt.recordSnapshotCoverage(e.lane, e.id, upTo)
	return true
}

// recordSnapshotCoverage credits a snapshot install with the deliveries
// it replaces: every broadcast sequence number ≤ mark the host had not
// yet delivered per-message counts as delivered now (state transfer
// carries the same state those deliveries would have built). No delay
// sample is taken — catch-up latency is measured by the sync metrics,
// not the per-delivery distribution.
func (rt *Runtime) recordSnapshotCoverage(lane int, id core.HostID, mark seqset.Seq) {
	res := rt.result
	a := &rt.acc[lane]
	now := rt.Engine.NowOf(lane)
	per, ok := res.DeliveredAt[id]
	if !ok {
		per = make(map[seqset.Seq]time.Duration)
		res.DeliveredAt[id] = per
	}
	dig, ok := res.DeliveredDigest[id]
	if !ok {
		dig = make(map[seqset.Seq]uint64)
		res.DeliveredDigest[id] = dig
	}
	for seq := seqset.Seq(1); seq <= mark; seq++ {
		if _, known := res.BroadcastAt[seq]; !known {
			continue
		}
		if _, have := per[seq]; have {
			continue
		}
		per[seq] = now
		dig[seq] = res.BroadcastDigest[seq]
		a.snapshotDeliveries++
		a.deliveredCount++
		a.deliveryTimes = append(a.deliveryTimes, now)
	}
}

func (rt *Runtime) buildTree() error {
	s := rt.scenario
	peers := make([]core.HostID, 0, len(rt.Topo.Hosts))
	for _, h := range rt.Topo.Hosts {
		peers = append(peers, core.HostID(h))
	}
	source := core.HostID(rt.Topo.Source)
	rt.TreeHosts = make(map[core.HostID]*core.Host, len(peers))
	if s.Replicate {
		rt.Replicas = make(map[core.HostID]*replica.Store, len(peers))
		for _, id := range peers {
			rt.Replicas[id] = replica.NewStore()
		}
	}
	// In static cluster mode (§6), hosts are seeded with the generated
	// clustering as their fixed CLUSTER knowledge.
	staticClusters := make(map[core.HostID][]core.HostID)
	if s.Params.ClusterMode == core.ClusterStatic {
		for _, group := range rt.Topo.HostsByCluster {
			members := make([]core.HostID, 0, len(group))
			for _, h := range group {
				members = append(members, core.HostID(h))
			}
			for _, h := range members {
				staticClusters[h] = members
			}
		}
	}
	for _, id := range peers {
		id := id
		lane := rt.laneOf(id)
		var obs core.Observer
		if s.CollectEvents {
			obs = func(ev core.Event) {
				rt.acc[lane].events = append(rt.acc[lane].events, ev)
			}
		}
		h, err := core.NewHost(core.Config{
			ID:             id,
			Source:         source,
			Peers:          peers,
			Order:          s.Order,
			Params:         s.Params,
			InitialCluster: staticClusters[id],
			JitterSeed:     s.Seed,
			Observer:       obs,
		}, treeEnv{rt: rt, id: id, lane: lane})
		if err != nil {
			return fmt.Errorf("harness: host %d: %w", id, err)
		}
		rt.TreeHosts[id] = h
		if err := rt.Net.Handle(netsim.HostID(id), func(now time.Duration, env netsim.Envelope) {
			m, ok := env.Payload.(core.Message)
			if !ok {
				return
			}
			h.HandleMessage(now, core.HostID(env.From), env.CostBit, m)
		}); err != nil {
			return err
		}
		rt.tickLoop(lane, s.Params.TickInterval, h.Tick)
	}
	return nil
}

type basicEnv struct {
	rt   *Runtime
	id   core.HostID
	lane int
}

func (e basicEnv) Send(to core.HostID, m basic.Message) {
	if err := e.rt.Net.Send(netsim.HostID(e.id), netsim.HostID(to), m); err != nil {
		e.rt.acc[e.lane].sendErrors++
	}
}

func (e basicEnv) Deliver(seq seqset.Seq, payload []byte) {
	e.rt.record(e.lane, e.id, seq, payload)
}

func (rt *Runtime) buildBasic() error {
	s := rt.scenario
	source := core.HostID(rt.Topo.Source)
	peers := make([]core.HostID, 0, len(rt.Topo.Hosts))
	for _, h := range rt.Topo.Hosts {
		peers = append(peers, core.HostID(h))
	}
	src, err := basic.NewSource(source, peers, s.BasicParams, basicEnv{rt: rt, id: source, lane: rt.laneOf(source)})
	if err != nil {
		return err
	}
	rt.BasicSource = src
	rt.BasicReceivers = make(map[core.HostID]*basic.Receiver)
	if err := rt.Net.Handle(netsim.HostID(source), func(now time.Duration, env netsim.Envelope) {
		m, ok := env.Payload.(basic.Message)
		if !ok {
			return
		}
		src.HandleMessage(now, core.HostID(env.From), m)
	}); err != nil {
		return err
	}
	rt.tickLoop(rt.laneOf(source), s.BasicParams.TickInterval, src.Tick)
	for _, id := range peers {
		if id == source {
			continue
		}
		rcv, err := basic.NewReceiver(id, source, basicEnv{rt: rt, id: id, lane: rt.laneOf(id)})
		if err != nil {
			return err
		}
		rt.BasicReceivers[id] = rcv
		if err := rt.Net.Handle(netsim.HostID(id), func(now time.Duration, env netsim.Envelope) {
			m, ok := env.Payload.(basic.Message)
			if !ok {
				return
			}
			rcv.HandleMessage(now, core.HostID(env.From), m)
		}); err != nil {
			return err
		}
	}
	return nil
}

// tickLoop schedules the periodic clock for one protocol entity on its
// lane, so ticks keep firing inside epochs without coordinator help and
// read their own lane's clock.
func (rt *Runtime) tickLoop(lane int, interval time.Duration, tick func(time.Duration)) {
	rt.Engine.ScheduleOn(lane, 0, func() { tick(rt.Engine.NowOf(lane)) })
	rt.Engine.EveryOn(lane, interval, func() { tick(rt.Engine.NowOf(lane)) })
}

func (rt *Runtime) scheduleWorkload() {
	s := rt.scenario
	fixed := make([]byte, s.PayloadSize)
	for i := range fixed {
		fixed[i] = byte(i)
	}
	for i := 0; i < s.Messages; i++ {
		i := i
		at := s.WarmUp + time.Duration(i)*s.MsgInterval
		rt.Engine.Schedule(at, func() {
			payload := fixed
			if s.PayloadFor != nil {
				payload = s.PayloadFor(i)
			}
			now := rt.Engine.Now()
			var seq seqset.Seq
			rt.broadcasting = true
			switch s.Protocol {
			case ProtocolTree:
				seq = rt.TreeHosts[core.HostID(rt.Topo.Source)].Broadcast(now, payload)
			case ProtocolBasic:
				seq = rt.BasicSource.Broadcast(now, payload)
			}
			rt.broadcasting = false
			rt.result.BroadcastAt[seq] = now
			rt.result.BroadcastDigest[seq] = fnvDigest(payload)
		})
	}
}

func (rt *Runtime) record(lane int, id core.HostID, seq seqset.Seq, payload []byte) {
	res := rt.result
	a := &rt.acc[lane]
	now := rt.Engine.NowOf(lane)
	per, ok := res.DeliveredAt[id]
	if !ok {
		per = make(map[seqset.Seq]time.Duration)
		res.DeliveredAt[id] = per
	}
	if _, dup := per[seq]; dup {
		a.duplicateDeliveries++
		return
	}
	per[seq] = now
	dig, ok := res.DeliveredDigest[id]
	if !ok {
		dig = make(map[seqset.Seq]uint64)
		res.DeliveredDigest[id] = dig
	}
	dig[seq] = fnvDigest(payload)
	sent, known := res.BroadcastAt[seq]
	if !known {
		if !rt.broadcasting {
			// A sequence number nobody broadcast can only come from an
			// adversary fabricating frames; counting it toward completion
			// would let forged traffic satisfy StopWhenComplete.
			a.foreignDeliveries++
			return
		}
		// Source self-delivery inside its own Broadcast call: the caller
		// registers the sequence number right after it returns. Count the
		// delivery; there is no meaningful delay sample (sent == now).
		a.deliveredCount++
		a.deliveryTimes = append(a.deliveryTimes, now)
		return
	}
	a.deliveredCount++
	a.deliveryTimes = append(a.deliveryTimes, now)
	a.delays.Add(now - sent)
}

// fnvDigest mirrors the echo/ready payload fingerprint in internal/core,
// so the harness's agreement checks compare the same value hosts vote on.
func fnvDigest(p []byte) uint64 {
	h := fnv.New64a()
	h.Write(p)
	return h.Sum64()
}
