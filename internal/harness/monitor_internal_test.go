package harness

import (
	"testing"
	"time"

	"rbcast/internal/core"
)

func TestCycleMonitorObserveTransitions(t *testing.T) {
	m := &CycleMonitor{}
	cyc := []core.HostID{2, 3, 4}

	m.observe(1*time.Second, true, nil)  // healthy
	m.observe(2*time.Second, false, cyc) // cycle appears
	m.observe(3*time.Second, false, cyc) // persists (same episode)
	m.observe(4*time.Second, true, nil)  // resolves
	m.observe(5*time.Second, false, cyc) // second episode, never resolves

	eps := m.Episodes()
	if len(eps) != 2 {
		t.Fatalf("episodes = %d, want 2", len(eps))
	}
	first := eps[0]
	if !first.Resolved || first.Start != 2*time.Second || first.End != 4*time.Second {
		t.Errorf("first episode = %+v", first)
	}
	if first.Duration() != 2*time.Second {
		t.Errorf("first episode duration = %v, want 2s", first.Duration())
	}
	if len(first.Hosts) != 3 {
		t.Errorf("first episode hosts = %v", first.Hosts)
	}
	second := eps[1]
	if second.Resolved {
		t.Error("second episode marked resolved")
	}
	if second.Duration() != 0 {
		t.Errorf("unresolved episode duration = %v, want 0", second.Duration())
	}
	if got := m.Unresolved(); len(got) != 1 {
		t.Errorf("Unresolved = %v, want one episode", got)
	}
	if err := m.CheckStability(10 * time.Second); err == nil {
		t.Error("CheckStability passed with an unresolved episode")
	}

	// Resolve it; now only the duration bound matters.
	m.observe(30*time.Second, true, nil)
	if err := m.CheckStability(10 * time.Second); err == nil {
		t.Error("CheckStability passed with a 25s episode against a 10s bound")
	}
	if err := m.CheckStability(time.Minute); err != nil {
		t.Errorf("CheckStability failed within a generous bound: %v", err)
	}
	if m.Samples() != 6 {
		t.Errorf("Samples = %d, want 6", m.Samples())
	}
}
