package harness

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strconv"

	"rbcast/internal/core"
	"rbcast/internal/seqset"
)

// WriteDeliveryCSV emits the per-delivery timeline: one row per
// (host, message) with broadcast time, delivery time, and latency —
// ready for external analysis or plotting. Rows are sorted by sequence
// number then host. Missing deliveries appear with empty delivery and
// latency columns.
func (r *Result) WriteDeliveryCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{
		"seq", "host", "broadcast_us", "delivered_us", "latency_us",
	}); err != nil {
		return err
	}
	hosts := make([]core.HostID, len(r.HostList))
	copy(hosts, r.HostList)
	sort.Slice(hosts, func(i, j int) bool { return hosts[i] < hosts[j] })
	total := seqset.Seq(r.TotalMessages())
	for q := seqset.Seq(1); q <= total; q++ {
		sent, haveSent := r.BroadcastAt[q]
		for _, h := range hosts {
			row := []string{
				strconv.FormatUint(uint64(q), 10),
				strconv.Itoa(int(h)),
				"", "", "",
			}
			if haveSent {
				row[2] = strconv.FormatInt(sent.Microseconds(), 10)
			}
			if at, ok := r.DeliveredAt[h][q]; ok {
				row[3] = strconv.FormatInt(at.Microseconds(), 10)
				if haveSent {
					row[4] = strconv.FormatInt((at - sent).Microseconds(), 10)
				}
			}
			if err := cw.Write(row); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return fmt.Errorf("harness: writing CSV: %w", err)
	}
	return nil
}
