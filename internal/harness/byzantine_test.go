package harness_test

import (
	"strings"
	"testing"
	"time"

	"rbcast/internal/adversary"
	"rbcast/internal/core"
	"rbcast/internal/harness"
	"rbcast/internal/sim"
	"rbcast/internal/topo"
)

// mustBehaviors builds a behavior list by name or fails the test.
func mustBehaviors(t *testing.T, names ...string) []adversary.Behavior {
	t.Helper()
	out := make([]adversary.Behavior, 0, len(names))
	for _, name := range names {
		b, err := adversary.New(name, nil, 0)
		if err != nil {
			t.Fatalf("adversary.New(%q): %v", name, err)
		}
		out = append(out, b)
	}
	return out
}

// hasViolation reports whether any violation hits the named invariant.
func hasViolation(vs []harness.Violation, invariant string) bool {
	for _, v := range vs {
		if v.Invariant == invariant {
			return true
		}
	}
	return false
}

// TestByzantineConvergenceDespiteAdversary is the positive half of the
// Byzantine invariant suite: a non-source host forging cost bits and
// replaying stale frames is a benign-model failure in disguise (§2's
// loss/duplication assumptions already cover it), so the correct hosts
// must deliver everything and the Byzantine checks must stay silent.
func TestByzantineConvergenceDespiteAdversary(t *testing.T) {
	rt, err := harness.Prepare(harness.Scenario{
		Name:        "byz-maskable",
		Seed:        41,
		Build:       clusteredBuild(2, 3, topo.WANStar),
		Protocol:    harness.ProtocolTree,
		Messages:    20,
		MsgInterval: 200 * time.Millisecond,
		WarmUp:      2 * time.Second,
		Drain:       60 * time.Second,
		Adversaries: map[core.HostID][]adversary.Behavior{
			3: mustBehaviors(t, "forge-cost-bit", "replay"),
		},
		StopWhenComplete: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := rt.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Complete {
		t.Fatalf("delivery incomplete despite maskable adversary: %d/%d",
			res.DeliveredCount, res.ExpectedCount)
	}
	// Forged cost bits distort cluster views, so no RequireTree.
	violations := rt.CheckInvariants(harness.InvariantOptions{RequireDelivery: true})
	if len(violations) != 0 {
		t.Fatalf("maskable adversary tripped invariants: %v", violations)
	}
	st := res.AdversaryStats[3]
	if st.CostForged == 0 || st.Replayed == 0 {
		t.Fatalf("adversary idle (stats %+v); the run proves nothing", st)
	}
	if res.ForeignDeliveries != 0 {
		t.Errorf("replayed frames caused %d fabricated-seq deliveries", res.ForeignDeliveries)
	}
}

// TestByzantineViolationsReported is the deliberately-failing half: an
// equivocating source hands every destination a different payload, so
// correct hosts accept forged frames (byz-forged-frame) and disagree
// with each other (byz-agreement). The point under test is the monitor,
// not the protocol — CheckInvariants must report both invariants, never
// swallow them.
func TestByzantineViolationsReported(t *testing.T) {
	rt, err := harness.Prepare(harness.Scenario{
		Name:        "byz-equivocating-source",
		Seed:        43,
		Build:       clusteredBuild(2, 3, topo.WANStar),
		Protocol:    harness.ProtocolTree,
		Messages:    15,
		MsgInterval: 200 * time.Millisecond,
		WarmUp:      2 * time.Second,
		Drain:       45 * time.Second,
		Adversaries: map[core.HostID][]adversary.Behavior{
			1: mustBehaviors(t, "equivocate"),
		},
		StopWhenComplete: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := rt.Finish()
	if err != nil {
		t.Fatal(err)
	}
	violations := rt.CheckInvariants(harness.InvariantOptions{RequireDelivery: true})
	if !hasViolation(violations, "byz-forged-frame") {
		t.Errorf("no byz-forged-frame violation despite an equivocating source; got %v", violations)
	}
	if !hasViolation(violations, "byz-agreement") {
		t.Errorf("no byz-agreement violation despite per-destination forgeries; got %v", violations)
	}
	if res.AdversaryStats[1].Equivocated == 0 {
		t.Fatal("equivocate behavior never fired")
	}
	// The digest ground truth behind the violations: some correct host
	// holds a payload whose digest differs from what Broadcast recorded.
	forged := 0
	for h, per := range res.DeliveredDigest {
		if h == 1 {
			continue
		}
		for seq, d := range per {
			if want, ok := res.BroadcastDigest[seq]; !ok || d != want {
				forged++
			}
		}
	}
	if forged == 0 {
		t.Error("violations reported but no forged digest found in the result")
	}
}

// TestByzantineLieInfoReported: lie-info is the other unmaskable
// behavior, and unlike equivocation it surfaces as a liveness failure,
// not a forged frame. A liar advertising a superset INFO draws gap
// fills away from itself (everyone believes it lacks nothing), so on a
// lossy network its own gaps — and through the §4.1 parent-only rule,
// its children's — can become permanent. The monitor must name the
// starvation as a delivery violation. Whether a given seed actually
// wedges depends on which frames the network drops, so the test scans a
// fixed seed range and requires at least one reported starvation.
func TestByzantineLieInfoReported(t *testing.T) {
	lie, err := adversary.New("lie-info", nil, 64)
	if err != nil {
		t.Fatal(err)
	}
	reported := 0
	for seed := int64(47); seed < 55; seed++ {
		rt, err := harness.Prepare(harness.Scenario{
			Name:     "byz-lie-info",
			Seed:     seed,
			Build: func(eng sim.Loop) (*topo.Topology, error) {
				return topo.Clustered(eng, topo.ClusteredConfig{
					Clusters:        2,
					HostsPerCluster: 2,
					Shape:           topo.WANStar,
					Cheap:           lossy(0.15),
					Expensive:       lossyExpensive(0.25),
					HostLink:        lossy(0.05),
				})
			},
			Protocol:    harness.ProtocolTree,
			Messages:    20,
			MsgInterval: 200 * time.Millisecond,
			WarmUp:      2 * time.Second,
			Drain:       20 * time.Second,
			Adversaries: map[core.HostID][]adversary.Behavior{
				4: {lie},
			},
			StopWhenComplete: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := rt.Finish()
		if err != nil {
			t.Fatal(err)
		}
		if res.AdversaryStats[4].InfoLies == 0 {
			t.Fatalf("seed %d: lie-info behavior never fired", seed)
		}
		violations := rt.CheckInvariants(harness.InvariantOptions{RequireDelivery: true})
		for _, v := range violations {
			if !strings.HasPrefix(v.Invariant, "byz-") && v.Invariant != "delivery" &&
				v.Invariant != "duplicates" {
				t.Errorf("seed %d: unexpected invariant %q for an INFO liar: %v", seed, v.Invariant, v)
			}
			if v.Invariant == "delivery" {
				reported++
			}
		}
	}
	if reported == 0 {
		t.Fatal("no seed in the range produced a reported starvation; the lie-info trap is dead")
	}
}

// TestEchoReadyBlocksEquivocation runs the same equivocating source
// twice: the plain protocol delivers the forgeries (and the monitor
// says so); with Params.EchoReady on, correct hosts deliver nothing
// uncertified — zero forged digests, zero byz violations — and the
// conflict surfaces as detected equivocations instead.
func TestEchoReadyBlocksEquivocation(t *testing.T) {
	run := func(echo bool) (*harness.Result, []harness.Violation) {
		t.Helper()
		params := core.DefaultParams()
		params.EchoReady = echo
		rt, err := harness.Prepare(harness.Scenario{
			Name:        "byz-echo",
			Seed:        53,
			Build:       clusteredBuild(2, 3, topo.WANStar),
			Protocol:    harness.ProtocolTree,
			Params:      params,
			Messages:    10,
			MsgInterval: 200 * time.Millisecond,
			WarmUp:      2 * time.Second,
			Drain:       30 * time.Second,
			Adversaries: map[core.HostID][]adversary.Behavior{
				1: mustBehaviors(t, "equivocate"),
			},
			StopWhenComplete: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := rt.Finish()
		if err != nil {
			t.Fatal(err)
		}
		// No RequireDelivery: the echo run legitimately refuses to deliver
		// uncertifiable frames; the Byzantine checks are what matter here.
		return res, rt.CheckInvariants(harness.InvariantOptions{})
	}
	forgedAtCorrect := func(res *harness.Result) int {
		n := 0
		for h, per := range res.DeliveredDigest {
			if h == 1 {
				continue
			}
			for seq, d := range per {
				if want, ok := res.BroadcastDigest[seq]; !ok || d != want {
					n++
				}
			}
		}
		return n
	}

	plainRes, plainViolations := run(false)
	if forgedAtCorrect(plainRes) == 0 {
		t.Fatal("plain protocol absorbed the equivocating source; the contrast is vacuous")
	}
	if !hasViolation(plainViolations, "byz-forged-frame") {
		t.Errorf("plain run delivered forgeries without a byz-forged-frame violation: %v", plainViolations)
	}

	echoRes, echoViolations := run(true)
	if n := forgedAtCorrect(echoRes); n != 0 {
		t.Errorf("echo/ready mode delivered %d forged payloads", n)
	}
	for _, v := range echoViolations {
		if strings.HasPrefix(v.Invariant, "byz-") {
			t.Errorf("echo/ready run still violates %v", v)
		}
	}
	if echoRes.EquivocationsDetected == 0 {
		t.Error("echo/ready mode blocked delivery but never detected the equivocation")
	}
}
