package harness_test

import (
	"strings"
	"testing"
	"time"

	"rbcast/internal/harness"
	"rbcast/internal/topo"
)

func TestParentGraphDOT(t *testing.T) {
	rt, err := harness.Prepare(harness.Scenario{
		Seed:     41,
		Build:    clusteredBuild(2, 2, topo.WANStar),
		Protocol: harness.ProtocolTree,
		Messages: 10,
		WarmUp:   2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.RunUntil(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	dot := rt.ParentGraphDOT()
	for _, want := range []string{
		"digraph parentgraph",
		"subgraph cluster_",
		"h1 [", // source node present
		"fillcolor=lightgray",
		"->", // at least one parent edge after convergence
		"}",
	} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT output missing %q:\n%s", want, dot)
		}
	}
	// Exactly one edge per parented host.
	edges := strings.Count(dot, "->")
	parented := 0
	for _, h := range rt.TreeHosts {
		if h.Parent() != 0 {
			parented++
		}
	}
	if edges != parented {
		t.Errorf("DOT has %d edges, want %d (one per parented host)", edges, parented)
	}
	// Inter-cluster edges are highlighted.
	if parented > 0 && !strings.Contains(dot, "color=red") {
		t.Error("no highlighted inter-cluster edge in a 2-cluster graph")
	}
}
