package harness

import (
	"fmt"
	"sort"
	"time"

	"rbcast/internal/adversary"
	"rbcast/internal/core"
	"rbcast/internal/metrics"
	"rbcast/internal/netsim"
	"rbcast/internal/seqset"
	"rbcast/internal/topo"
)

// Result is everything a finished scenario measured.
type Result struct {
	// Name echoes the scenario.
	Name string
	// Protocol echoes the scenario.
	Protocol Protocol
	// Hosts is the participant count.
	Hosts int
	// HostList enumerates every participant, ascending.
	HostList []core.HostID
	// Clusters is the generated cluster count.
	Clusters int
	// Messages echoes the scenario.
	Messages int

	// BroadcastAt records when each sequence number was generated.
	BroadcastAt map[seqset.Seq]time.Duration
	// DeliveredAt records first delivery time per host per message.
	DeliveredAt map[core.HostID]map[seqset.Seq]time.Duration
	// Delays aggregates per-delivery latency (delivery − broadcast).
	Delays metrics.Durations
	// DeliveredCount counts distinct (host, seq) deliveries.
	DeliveredCount int
	// ExpectedCount is Hosts × Messages.
	ExpectedCount int
	// Complete reports whether every host received every message.
	Complete bool
	// CompletionAt is when the final expected delivery happened.
	CompletionAt time.Duration
	// DuplicateDeliveries counts Deliver calls for already-delivered
	// (host, seq) pairs; protocol invariants say this must be zero.
	DuplicateDeliveries int
	// BroadcastDigest records the FNV-64a payload digest per broadcast
	// sequence number — the ground truth the Byzantine invariants compare
	// deliveries against.
	BroadcastDigest map[seqset.Seq]uint64
	// DeliveredDigest records the digest of the payload each host actually
	// delivered, per sequence number.
	DeliveredDigest map[core.HostID]map[seqset.Seq]uint64
	// ForeignDeliveries counts deliveries of sequence numbers no source
	// ever broadcast — frames an adversary fabricated. They never count
	// toward DeliveredCount or completion.
	ForeignDeliveries int

	// SendsByKind counts host-level sends per message kind ("data",
	// "gapfill", "info", "attach-req", "attach-accept", "attach-reject",
	// "detach", "ack").
	SendsByKind map[string]uint64
	// InterClusterByKind restricts SendsByKind to sends crossing true
	// cluster boundaries — the paper's §5 cost metric.
	InterClusterByKind map[string]uint64

	// UnreachableSends counts host-level sends made while no path to the
	// destination existed — traffic wasted into a partition.
	UnreachableSends uint64
	// UnreachableSendsByKind breaks UnreachableSends down by kind.
	UnreachableSendsByKind map[string]uint64
	// DataLinkTraversals counts server-link traversals of data and
	// gap-fill messages (Figure 3.1's link-cost metric).
	DataLinkTraversals uint64
	// DataExpensiveTraversals restricts DataLinkTraversals to expensive
	// links.
	DataExpensiveTraversals uint64
	// ManualMessages counts broadcasts injected via Runtime.BroadcastNow.
	ManualMessages int
	// WireBytes totals the binary wire size of all tree-protocol sends
	// (bundled packets encode once), for packet-vs-byte comparisons.
	WireBytes uint64
	// InfoWireBytes restricts WireBytes to the INFO channel: full MsgInfo
	// and MsgInfoDelta frames, counting bundle parts individually. The E6
	// control-overhead experiment uses it to price the delta INFO
	// optimization.
	InfoWireBytes uint64
	// LogicalSends counts protocol messages as opposed to packets: a
	// piggybacked bundle is one send (packet) but len(Parts) logical
	// messages. Without piggybacking, LogicalSends == TotalSends().
	LogicalSends uint64

	// NetStats is a snapshot of network-level counters.
	NetStats netsim.Stats
	// SourceHostLinkTransmissions is the traffic on the source's access
	// link (the §5 congestion argument).
	SourceHostLinkTransmissions uint64
	// SourceLinkByKind breaks the source access-link traffic down by
	// message kind (both directions).
	SourceLinkByKind map[string]uint64

	// SyncRounds totals catch-up range requests issued across hosts.
	SyncRounds uint64
	// SyncFailovers totals sync sources abandoned mid-transfer.
	SyncFailovers uint64
	// SnapResumes totals snapshot requests resumed from a nonzero
	// verified offset (rather than restarting from byte zero).
	SnapResumes uint64
	// SnapInstalls totals snapshots installed across hosts.
	SnapInstalls uint64
	// SnapshotDeliveries counts deliveries credited to snapshot installs
	// instead of per-message replay (Scenario.Replicate runs only).
	SnapshotDeliveries int
	// CatchupWireBytes restricts WireBytes to the catch-up sync channel:
	// MsgSyncReq/MsgSyncResp/MsgSnapReq/MsgSnapChunk frames. The E14
	// experiment uses it to show catch-up cost scales with missing data,
	// not history length.
	CatchupWireBytes uint64

	// ResyncBursts totals fast-resync bursts across hosts (health layer).
	ResyncBursts uint64
	// SuppressedSends totals control sends skipped by backoff gating.
	SuppressedSends uint64
	// SuspectedPairs is the number of (host, peer) suspicions in force at
	// the end of the run.
	SuspectedPairs int

	// AdversaryHosts lists the scenario's Byzantine hosts, ascending.
	AdversaryHosts []core.HostID
	// AdversaryStats reports each adversary host's hostile-action counters.
	AdversaryStats map[core.HostID]adversary.Stats
	// EquivocationsDetected sums the per-host equivocation-conflict
	// counters (tree protocol; nonzero only in echo/ready mode).
	EquivocationsDetected uint64

	// FinalParents is the tree protocol's parent pointer per host at the
	// end of the run.
	FinalParents map[core.HostID]core.HostID
	// Events holds collected protocol events when requested.
	Events []core.Event
	// EventErrors records failures of scheduled scenario events.
	EventErrors []string
	// SendErrors counts rejected Network.Send calls (should be zero).
	SendErrors int
}

func newResult(s Scenario, tp *topo.Topology) *Result {
	hostList := make([]core.HostID, 0, len(tp.Hosts))
	for _, h := range tp.Hosts {
		hostList = append(hostList, core.HostID(h))
	}
	return &Result{
		Name:     s.Name,
		Protocol: s.Protocol,
		Hosts:    len(tp.Hosts),
		HostList: hostList,
		// A run that expects nothing is trivially complete; BroadcastNow
		// revokes this when it raises the expectation.
		Complete:               s.Messages == 0,
		Clusters:               len(tp.HostsByCluster),
		Messages:               s.Messages,
		BroadcastAt:            make(map[seqset.Seq]time.Duration),
		BroadcastDigest:        make(map[seqset.Seq]uint64),
		DeliveredAt:            make(map[core.HostID]map[seqset.Seq]time.Duration),
		DeliveredDigest:        make(map[core.HostID]map[seqset.Seq]uint64),
		ExpectedCount:          len(tp.Hosts) * s.Messages,
		SendsByKind:            make(map[string]uint64),
		InterClusterByKind:     make(map[string]uint64),
		UnreachableSendsByKind: make(map[string]uint64),
		SourceLinkByKind:       make(map[string]uint64),
	}
}

// merge folds the per-lane accumulators into the Result, recomputing
// every derived counter from scratch so the operation is idempotent.
// Lanes are folded in lane order, so the merged Result is a pure
// function of the per-lane data — independent of worker count and wall
// timing. Parked contexts only.
func (rt *Runtime) merge() {
	res := rt.result
	res.SendsByKind = make(map[string]uint64)
	res.InterClusterByKind = make(map[string]uint64)
	res.UnreachableSendsByKind = make(map[string]uint64)
	res.SourceLinkByKind = make(map[string]uint64)
	res.LogicalSends, res.UnreachableSends = 0, 0
	res.WireBytes, res.CatchupWireBytes, res.InfoWireBytes = 0, 0, 0
	res.DataLinkTraversals, res.DataExpensiveTraversals = 0, 0
	res.DeliveredCount, res.DuplicateDeliveries = 0, 0
	res.ForeignDeliveries, res.SnapshotDeliveries = 0, 0
	res.SendErrors = 0
	res.Delays = metrics.Durations{}
	var times []time.Duration
	var events []core.Event
	for i := range rt.acc {
		a := &rt.acc[i]
		for k, v := range a.sendsByKind {
			res.SendsByKind[k] += v
		}
		for k, v := range a.interClusterByKind {
			res.InterClusterByKind[k] += v
		}
		for k, v := range a.unreachableSendsByKind {
			res.UnreachableSendsByKind[k] += v
		}
		for k, v := range a.sourceLinkByKind {
			res.SourceLinkByKind[k] += v
		}
		res.LogicalSends += a.logicalSends
		res.UnreachableSends += a.unreachableSends
		res.WireBytes += a.wireBytes
		res.CatchupWireBytes += a.catchupWireBytes
		res.InfoWireBytes += a.infoWireBytes
		res.DataLinkTraversals += a.dataLinkTraversals
		res.DataExpensiveTraversals += a.dataExpensiveTraversals
		res.DeliveredCount += a.deliveredCount
		res.DuplicateDeliveries += a.duplicateDeliveries
		res.ForeignDeliveries += a.foreignDeliveries
		res.SnapshotDeliveries += a.snapshotDeliveries
		res.SendErrors += a.sendErrors
		res.Delays.Merge(&a.delays)
		times = append(times, a.deliveryTimes...)
		events = append(events, a.events...)
	}
	// Events merge by instant; the stable sort keeps lane order as the
	// tie-break for same-instant events, and within-lane order intact.
	sort.SliceStable(events, func(i, j int) bool { return events[i].At < events[j].At })
	res.Events = events
	res.Complete = res.DeliveredCount == res.ExpectedCount
	res.CompletionAt = 0
	if res.Complete && res.ExpectedCount > 0 {
		sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })
		res.CompletionAt = times[len(times)-1]
	}
}

func (rt *Runtime) finalize() {
	rt.merge()
	res := rt.result
	res.NetStats = *rt.Net.Stats()
	res.SourceHostLinkTransmissions = res.NetStats.HostLinkTransmissions[rt.Topo.Source]
	if rt.TreeHosts != nil {
		res.FinalParents = make(map[core.HostID]core.HostID, len(rt.TreeHosts))
		for id, h := range rt.TreeHosts {
			res.FinalParents[id] = h.Parent()
		}
		res.ResyncBursts = rt.TotalResyncBursts()
		res.SuppressedSends = rt.TotalSuppressedSends()
		res.SuspectedPairs = rt.SuspectedPairs()
		res.EquivocationsDetected = 0
		for _, h := range rt.TreeHosts {
			res.EquivocationsDetected += h.Equivocations()
		}
		res.SyncRounds, res.SyncFailovers, res.SnapResumes, res.SnapInstalls = 0, 0, 0, 0
		for _, h := range rt.TreeHosts {
			st := h.SyncStats()
			res.SyncRounds += st.Rounds
			res.SyncFailovers += st.Failovers
			res.SnapResumes += st.SnapResumes
			res.SnapInstalls += st.SnapInstalls
		}
	}
	if rt.Adversary != nil {
		res.AdversaryHosts = rt.Adversary.Hosts()
		res.AdversaryStats = make(map[core.HostID]adversary.Stats, len(res.AdversaryHosts))
		for _, h := range res.AdversaryHosts {
			res.AdversaryStats[h] = rt.Adversary.StatsOf(h)
		}
	}
}

// InterClusterData returns inter-cluster first-delivery data sends.
func (r *Result) InterClusterData() uint64 { return r.InterClusterByKind[kindData] }

// InterClusterControl returns inter-cluster sends that are not plain
// data (control messages plus gap-fill redeliveries are reported
// separately by kind; this sums everything but "data").
func (r *Result) InterClusterControl() uint64 {
	var sum uint64
	for kind, n := range r.InterClusterByKind {
		if kind != kindData && kind != kindGapFill {
			sum += n
		}
	}
	return sum
}

// TotalSends sums all host-level sends.
func (r *Result) TotalSends() uint64 {
	var sum uint64
	for _, n := range r.SendsByKind {
		sum += n
	}
	return sum
}

// ControlSends sums non-data, non-gapfill host-level sends.
func (r *Result) ControlSends() uint64 {
	var sum uint64
	for kind, n := range r.SendsByKind {
		if kind != kindData && kind != kindGapFill {
			sum += n
		}
	}
	return sum
}

// TotalMessages counts scheduled plus manually injected broadcasts.
func (r *Result) TotalMessages() int { return r.Messages + r.ManualMessages }

// InterClusterDataPerMessage is the paper's headline cost figure: the
// average number of inter-cluster host-to-host transmissions of data
// (including gap fills) needed per broadcast message.
func (r *Result) InterClusterDataPerMessage() float64 {
	if r.TotalMessages() == 0 {
		return 0
	}
	return float64(r.InterClusterByKind[kindData]+r.InterClusterByKind[kindGapFill]) /
		float64(r.TotalMessages())
}

// DataLinkTraversalsPerMessage averages Figure 3.1's link-cost metric.
func (r *Result) DataLinkTraversalsPerMessage() float64 {
	if r.TotalMessages() == 0 {
		return 0
	}
	return float64(r.DataLinkTraversals) / float64(r.TotalMessages())
}

// DeliveryRatio is delivered / expected in [0, 1].
func (r *Result) DeliveryRatio() float64 {
	if r.ExpectedCount == 0 {
		return 1
	}
	return float64(r.DeliveredCount) / float64(r.ExpectedCount)
}

// MissingAt lists the sequence numbers host h never received.
func (r *Result) MissingAt(h core.HostID) []seqset.Seq {
	var out []seqset.Seq
	per := r.DeliveredAt[h]
	for q := seqset.Seq(1); q <= seqset.Seq(r.TotalMessages()); q++ {
		if _, ok := per[q]; !ok {
			out = append(out, q)
		}
	}
	return out
}

// Summary renders a one-scenario overview table.
func (r *Result) Summary() string {
	t := metrics.NewTable("metric", "value")
	t.AddRow("protocol", r.Protocol.String())
	t.AddRow("hosts", r.Hosts)
	t.AddRow("clusters", r.Clusters)
	t.AddRow("messages", r.Messages)
	t.AddRow("delivered", fmt.Sprintf("%d/%d", r.DeliveredCount, r.ExpectedCount))
	t.AddRow("complete", r.Complete)
	if r.Complete {
		t.AddRow("completion at", r.CompletionAt)
	}
	t.AddRow("mean delay", r.Delays.Mean())
	t.AddRow("p99 delay", r.Delays.Quantile(0.99))
	t.AddRow("inter-cluster data/msg", r.InterClusterDataPerMessage())
	t.AddRow("control sends", r.ControlSends())
	t.AddRow("total sends", r.TotalSends())
	t.AddRow("source host-link load", r.SourceHostLinkTransmissions)
	if r.SuppressedSends > 0 || r.ResyncBursts > 0 || r.SuspectedPairs > 0 {
		t.AddRow("suppressed sends", r.SuppressedSends)
		t.AddRow("resync bursts", r.ResyncBursts)
		t.AddRow("suspected pairs", r.SuspectedPairs)
	}
	if r.SyncRounds > 0 || r.SnapInstalls > 0 {
		t.AddRow("sync rounds", r.SyncRounds)
		t.AddRow("sync failovers", r.SyncFailovers)
		t.AddRow("snapshot installs", r.SnapInstalls)
		t.AddRow("snapshot resumes", r.SnapResumes)
		t.AddRow("snapshot deliveries", r.SnapshotDeliveries)
		t.AddRow("catch-up wire bytes", r.CatchupWireBytes)
	}
	kinds := make([]string, 0, len(r.SendsByKind))
	for k := range r.SendsByKind {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	for _, k := range kinds {
		t.AddRow("sends["+k+"]", r.SendsByKind[k])
	}
	return t.String()
}
