package harness_test

import (
	"testing"
	"time"

	"rbcast/internal/core"
	"rbcast/internal/harness"
	"rbcast/internal/netsim"
	"rbcast/internal/sim"
	"rbcast/internal/topo"
)

// TestSourceCrashSharedResponsibility is the paper's §1 motivating
// scenario: "the broadcasting host gets disconnected from the network
// after delivering the message only to a portion of all hosts. [...] the
// hosts that successfully received the message from the source could
// then propagate it to others."
//
// We crash the source (cut its access link) immediately after a burst of
// broadcasts, early enough that remote clusters have not yet received
// the tail of the burst, and require every surviving host to obtain every
// message anyway — from peers, with the source gone for good.
func TestSourceCrashSharedResponsibility(t *testing.T) {
	burstAt := 5 * time.Second
	events := []harness.TimedEvent{
		// A burst of 10 extra messages, then the source dies 5ms later —
		// long enough for its own cluster to hear them (1ms links), too
		// short for the 30ms WAN links to deliver them remotely.
		{At: burstAt, Do: func(rt *harness.Runtime) error {
			for i := 0; i < 10; i++ {
				if err := rt.BroadcastNow([]byte("burst")); err != nil {
					return err
				}
			}
			return nil
		}},
		{At: burstAt + 5*time.Millisecond, Do: func(rt *harness.Runtime) error {
			return rt.Net.SetHostLinkUp(rt.Topo.Source, false)
		}},
	}
	rt, err := harness.Prepare(harness.Scenario{
		Name:        "source-crash",
		Seed:        17,
		Build:       clusteredBuild(3, 3, topo.WANStar),
		Protocol:    harness.ProtocolTree,
		Messages:    5, // pre-burst traffic so the tree is formed
		MsgInterval: 200 * time.Millisecond,
		WarmUp:      3 * time.Second,
		Events:      events,
		Drain:       60 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := rt.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.EventErrors) != 0 {
		t.Fatalf("event errors: %v", res.EventErrors)
	}
	// Every host except the crashed source must hold all 15 messages.
	total := res.TotalMessages()
	source := core.HostID(rt.Topo.Source)
	for id := range rt.TreeHosts {
		if id == source {
			continue
		}
		if missing := res.MissingAt(id); len(missing) != 0 {
			t.Errorf("host %d still missing %v after source crash", id, missing)
		}
	}
	if t.Failed() {
		t.Logf("total messages: %d", total)
		for id, h := range rt.TreeHosts {
			t.Logf("host %d: parent=%d info=%v", id, h.Parent(), h.Info())
		}
	}
}

// TestFlappingWANLink subjects the protocol to a link that cycles up and
// down through the whole run; delivery must still complete once the flap
// schedule leaves the link up.
func TestFlappingWANLink(t *testing.T) {
	var events []harness.TimedEvent
	// Flap the only WAN link of cluster 1 off/on every second until t=12s.
	for i := 0; i < 6; i++ {
		at := time.Duration(i)*2*time.Second + 2*time.Second
		events = append(events,
			harness.TimedEvent{At: at, Do: func(rt *harness.Runtime) error {
				_, err := rt.Topo.IsolateCluster(1)
				return err
			}},
			harness.TimedEvent{At: at + time.Second, Do: func(rt *harness.Runtime) error {
				return rt.Topo.RestoreLinks(rt.Topo.WANLinksOfCluster(1))
			}},
		)
	}
	res, err := harness.Run(harness.Scenario{
		Name:             "flapping",
		Seed:             19,
		Build:            clusteredBuild(2, 3, topo.WANStar),
		Protocol:         harness.ProtocolTree,
		Messages:         40,
		MsgInterval:      250 * time.Millisecond,
		WarmUp:           2 * time.Second,
		Events:           events,
		Drain:            60 * time.Second,
		StopWhenComplete: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.EventErrors) != 0 {
		t.Fatalf("event errors: %v", res.EventErrors)
	}
	if !res.Complete {
		t.Fatalf("delivery incomplete under flapping link: %d/%d",
			res.DeliveredCount, res.ExpectedCount)
	}
	if res.DuplicateDeliveries != 0 {
		t.Errorf("duplicate deliveries = %d", res.DuplicateDeliveries)
	}
}

// TestRepeatedPartitions cycles a cluster in and out of the network
// several times with traffic in every phase.
func TestRepeatedPartitions(t *testing.T) {
	var events []harness.TimedEvent
	for i := 0; i < 3; i++ {
		cut := time.Duration(i)*8*time.Second + 4*time.Second
		heal := cut + 4*time.Second
		events = append(events,
			harness.TimedEvent{At: cut, Do: func(rt *harness.Runtime) error {
				_, err := rt.Topo.IsolateCluster(2)
				return err
			}},
			harness.TimedEvent{At: heal, Do: func(rt *harness.Runtime) error {
				return rt.Topo.RestoreLinks(rt.Topo.WANLinksOfCluster(2))
			}},
		)
	}
	res, err := harness.Run(harness.Scenario{
		Name:             "repeated-partitions",
		Seed:             23,
		Build:            clusteredBuild(3, 2, topo.WANChain),
		Protocol:         harness.ProtocolTree,
		Messages:         100,
		MsgInterval:      250 * time.Millisecond,
		WarmUp:           2 * time.Second,
		Events:           events,
		Drain:            90 * time.Second,
		StopWhenComplete: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Complete {
		t.Fatalf("delivery incomplete across repeated partitions: %d/%d",
			res.DeliveredCount, res.ExpectedCount)
	}
}

// TestLossyEverything pushes loss and duplication on every link class at
// once; the gap-filling machinery must still converge.
func TestLossyEverything(t *testing.T) {
	res, err := harness.Run(harness.Scenario{
		Name: "lossy-everything",
		Seed: 29,
		Build: func(eng sim.Loop) (*topo.Topology, error) {
			return topo.Clustered(eng, topo.ClusteredConfig{
				Clusters:        3,
				HostsPerCluster: 3,
				Shape:           topo.WANTree,
				Cheap:           netsim.LinkConfig{Class: netsim.Cheap, LossProb: 0.10, DupProb: 0.10},
				Expensive:       netsim.LinkConfig{Class: netsim.Expensive, LossProb: 0.20, DupProb: 0.10},
				HostLink:        netsim.LinkConfig{Class: netsim.Cheap, LossProb: 0.05},
			})
		},
		Protocol:         harness.ProtocolTree,
		Messages:         30,
		MsgInterval:      200 * time.Millisecond,
		Drain:            120 * time.Second,
		StopWhenComplete: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Complete {
		t.Fatalf("delivery incomplete under heavy loss+dup: %d/%d",
			res.DeliveredCount, res.ExpectedCount)
	}
	if res.DuplicateDeliveries != 0 {
		t.Errorf("network duplicates leaked to the application: %d", res.DuplicateDeliveries)
	}
}

// TestBasicStallsWhileSourceDown contrasts the baseline: with the source
// crashed, no basic host can help another, so hosts that missed a
// message stay missing it until the source returns.
func TestBasicStallsWhileSourceDown(t *testing.T) {
	events := []harness.TimedEvent{
		// Crash the source right after the burst below.
		{At: 2 * time.Second, Do: func(rt *harness.Runtime) error {
			for i := 0; i < 5; i++ {
				if err := rt.BroadcastNow([]byte("x")); err != nil {
					return err
				}
			}
			return nil
		}},
		{At: 2*time.Second + 5*time.Millisecond, Do: func(rt *harness.Runtime) error {
			return rt.Net.SetHostLinkUp(rt.Topo.Source, false)
		}},
		// Return at t=30s.
		{At: 30 * time.Second, Do: func(rt *harness.Runtime) error {
			return rt.Net.SetHostLinkUp(rt.Topo.Source, true)
		}},
	}
	rt, err := harness.Prepare(harness.Scenario{
		Name:     "basic-source-down",
		Seed:     31,
		Build:    clusteredBuild(3, 2, topo.WANStar),
		Protocol: harness.ProtocolBasic,
		Messages: 0,
		WarmUp:   time.Second,
		Events:   events,
		Drain:    60 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	// At t=20s (source down since 2s), remote hosts must be missing the
	// burst: the WAN links are slower than the 5ms crash window.
	if err := rt.RunUntil(20 * time.Second); err != nil {
		t.Fatal(err)
	}
	remote := core.HostID(rt.Topo.HostsByCluster[2][0])
	missingMid := len(rt.Result().MissingAt(remote))
	if missingMid == 0 {
		t.Skip("burst reached remote cluster before the crash; timing assumption broken")
	}
	res, err := rt.Finish()
	if err != nil {
		t.Fatal(err)
	}
	// After the source returns, its retransmissions finish the job.
	if missing := res.MissingAt(remote); len(missing) != 0 {
		t.Errorf("basic never completed after source returned: host %d missing %v", remote, missing)
	}
	if res.Complete && res.CompletionAt < 30*time.Second {
		t.Errorf("baseline completed at %v while the source was down — impossible", res.CompletionAt)
	}
}
