package harness

import (
	"fmt"
	"sort"
	"strings"

	"rbcast/internal/core"
	"rbcast/internal/netsim"
)

// ParentGraphDOT renders the current host parent graph as Graphviz DOT:
// hosts grouped into their true clusters, an edge from every host to its
// parent, leaders double-circled, and the source shaded. Useful for
// eyeballing convergence (`rbsim -dot out.dot && dot -Tsvg out.dot`).
func (rt *Runtime) ParentGraphDOT() string {
	var b strings.Builder
	b.WriteString("digraph parentgraph {\n")
	b.WriteString("  rankdir=BT;\n")
	b.WriteString("  node [shape=circle fontname=\"sans-serif\"];\n")

	truth := rt.Net.TrueClusters()
	clusterHosts := map[int][]core.HostID{}
	for h, c := range truth {
		clusterHosts[c] = append(clusterHosts[c], core.HostID(h))
	}
	var clusterIDs []int
	for c := range clusterHosts {
		clusterIDs = append(clusterIDs, c)
	}
	sort.Ints(clusterIDs)

	source := core.HostID(rt.Topo.Source)
	for _, c := range clusterIDs {
		hosts := clusterHosts[c]
		sort.Slice(hosts, func(i, j int) bool { return hosts[i] < hosts[j] })
		fmt.Fprintf(&b, "  subgraph cluster_%d {\n", c)
		fmt.Fprintf(&b, "    label=\"cluster %d\";\n", c)
		for _, h := range hosts {
			attrs := []string{fmt.Sprintf("label=\"%d\"", h)}
			if th, ok := rt.TreeHosts[h]; ok && th.IsLeader() {
				attrs = append(attrs, "shape=doublecircle")
			}
			if h == source {
				attrs = append(attrs, "style=filled", "fillcolor=lightgray")
			}
			fmt.Fprintf(&b, "    h%d [%s];\n", h, strings.Join(attrs, " "))
		}
		b.WriteString("  }\n")
	}

	var ids []core.HostID
	for id := range rt.TreeHosts {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		p := rt.TreeHosts[id].Parent()
		if p == core.Nil {
			continue
		}
		style := ""
		if truth[netsim.HostID(id)] != truth[netsim.HostID(p)] {
			style = " [style=bold color=red]" // expensive (inter-cluster) edge
		}
		fmt.Fprintf(&b, "  h%d -> h%d%s;\n", id, p, style)
	}
	b.WriteString("}\n")
	return b.String()
}
