// Package multi implements multiple-source broadcast the way the paper
// prescribes (§2): "a multiple-source broadcast can be performed reliably
// by running several identical single-source protocols."
//
// A Bus is one host's bundle of protocol instances — one core.Host per
// stream (a stream is identified by its source host). Messages carry
// their stream ID; the bus demultiplexes inbound traffic to the right
// instance and multiplexes outbound traffic onto a shared transport. Each
// instance keeps its own INFO sets, parent graph, and timers, exactly as
// if it ran alone; the paper argues — and the package's tests confirm —
// that this composition preserves per-stream reliability.
package multi

import (
	"fmt"
	"sort"
	"time"

	"rbcast/internal/core"
	"rbcast/internal/seqset"
)

// StreamID identifies one broadcast stream by its source host.
type StreamID = core.HostID

// Env is the bus's window on the world: like core.Env, plus the stream
// dimension.
type Env interface {
	// Send transmits m on the given stream, best-effort.
	Send(to core.HostID, stream StreamID, m core.Message)
	// Deliver hands an accepted message of a stream to the application.
	Deliver(stream StreamID, seq seqset.Seq, payload []byte)
}

// Config assembles a Bus.
type Config struct {
	// ID is this host's identity.
	ID core.HostID
	// Peers lists every participating host (including ID).
	Peers []core.HostID
	// Sources lists the hosts that broadcast; one protocol instance runs
	// per entry. Every source must appear in Peers.
	Sources []core.HostID
	// Params tunes every instance identically; zero value uses defaults.
	Params core.Params
	// Order optionally overrides the static order (shared by instances).
	Order map[core.HostID]int
	// Observer receives protocol events from all instances; may be nil.
	Observer core.Observer
	// JitterSeed seeds the health layer's deterministic backoff jitter in
	// every instance (relevant only when Params enables backoff).
	JitterSeed int64
}

// Bus is one host's set of per-stream protocol instances. Like
// core.Host, it is single-threaded: the runtime must serialize calls.
type Bus struct {
	id        core.HostID
	instances map[StreamID]*core.Host
	streams   []StreamID // sorted, for deterministic iteration
}

// instanceEnv adapts one stream's instance to the shared Env.
type instanceEnv struct {
	env    Env
	stream StreamID
}

func (e instanceEnv) Send(to core.HostID, m core.Message) {
	e.env.Send(to, e.stream, m)
}

func (e instanceEnv) Deliver(seq seqset.Seq, payload []byte) {
	e.env.Deliver(e.stream, seq, payload)
}

// NewBus constructs a bus with one instance per source.
func NewBus(cfg Config, env Env) (*Bus, error) {
	if env == nil {
		return nil, fmt.Errorf("multi: nil Env")
	}
	if len(cfg.Sources) == 0 {
		return nil, fmt.Errorf("multi: no sources")
	}
	b := &Bus{
		id:        cfg.ID,
		instances: make(map[StreamID]*core.Host, len(cfg.Sources)),
	}
	for _, src := range cfg.Sources {
		if _, dup := b.instances[src]; dup {
			return nil, fmt.Errorf("multi: duplicate source %d", src)
		}
		h, err := core.NewHost(core.Config{
			ID:         cfg.ID,
			Source:     src,
			Peers:      cfg.Peers,
			Order:      cfg.Order,
			Params:     cfg.Params,
			Observer:   cfg.Observer,
			JitterSeed: cfg.JitterSeed,
		}, instanceEnv{env: env, stream: src})
		if err != nil {
			return nil, fmt.Errorf("multi: stream %d: %w", src, err)
		}
		b.instances[src] = h
		b.streams = append(b.streams, src)
	}
	sort.Slice(b.streams, func(i, j int) bool { return b.streams[i] < b.streams[j] })
	return b, nil
}

// ID returns the bus's host identity.
func (b *Bus) ID() core.HostID { return b.id }

// Streams returns the stream IDs, sorted.
func (b *Bus) Streams() []StreamID {
	out := make([]StreamID, len(b.streams))
	copy(out, b.streams)
	return out
}

// Instance returns the protocol instance for one stream (nil if the
// stream is unknown); read-only use by tests and inspectors.
func (b *Bus) Instance(stream StreamID) *core.Host { return b.instances[stream] }

// Start initializes every instance's periodic schedule.
func (b *Bus) Start(now time.Duration) {
	for _, s := range b.streams {
		b.instances[s].Start(now)
	}
}

// Tick clocks every instance.
func (b *Bus) Tick(now time.Duration) {
	for _, s := range b.streams {
		b.instances[s].Tick(now)
	}
}

// HandleMessage routes one inbound message to its stream's instance.
// Messages for unknown streams are dropped — a host that does not run a
// stream cannot help it.
func (b *Bus) HandleMessage(now time.Duration, from core.HostID, costBit bool, stream StreamID, m core.Message) {
	h, ok := b.instances[stream]
	if !ok {
		return
	}
	h.HandleMessage(now, from, costBit, m)
}

// Broadcast generates the next message on this host's own stream. It
// errors if this host is not a source.
func (b *Bus) Broadcast(now time.Duration, payload []byte) (seqset.Seq, error) {
	h, ok := b.instances[b.id]
	if !ok {
		return 0, fmt.Errorf("multi: host %d is not a source", b.id)
	}
	return h.Broadcast(now, payload), nil
}
