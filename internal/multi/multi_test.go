package multi_test

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"rbcast/internal/core"
	"rbcast/internal/multi"
	"rbcast/internal/seqset"
)

// The tests drive a set of buses through an in-memory message soup with
// loss, reordering, and duplication — per stream, the same guarantees as
// the single-source protocol must hold.

type soupMsg struct {
	from, to core.HostID
	stream   multi.StreamID
	m        core.Message
}

type world struct {
	rng       *rand.Rand
	buses     map[core.HostID]*multi.Bus
	pending   []soupMsg
	delivered map[core.HostID]map[multi.StreamID]*seqset.Set
	dups      int
	now       time.Duration
	peers     []core.HostID
	sources   []core.HostID
	sent      map[multi.StreamID]seqset.Seq
}

type worldEnv struct {
	w  *world
	id core.HostID
}

func (e worldEnv) Send(to core.HostID, stream multi.StreamID, m core.Message) {
	if len(e.w.pending) < 4000 {
		e.w.pending = append(e.w.pending, soupMsg{from: e.id, to: to, stream: stream, m: m})
	}
}

func (e worldEnv) Deliver(stream multi.StreamID, seq seqset.Seq, _ []byte) {
	per := e.w.delivered[e.id]
	s, ok := per[stream]
	if !ok {
		s = &seqset.Set{}
		per[stream] = s
	}
	if !s.Add(seq) {
		e.w.dups++
	}
}

func fastParams() core.Params {
	return core.Params{
		TickInterval:      time.Millisecond,
		AttachPeriod:      10 * time.Millisecond,
		InfoClusterPeriod: 5 * time.Millisecond,
		InfoRemotePeriod:  15 * time.Millisecond,
		InfoGlobalPeriod:  25 * time.Millisecond,
		GapClusterPeriod:  8 * time.Millisecond,
		GapRemotePeriod:   20 * time.Millisecond,
		GapGlobalPeriod:   40 * time.Millisecond,
		AttachTimeout:     12 * time.Millisecond,
		ParentTimeout:     60 * time.Millisecond,
		GapFillBatch:      32,
		AttachFillLimit:   64,
	}
}

func newWorld(t *testing.T, seed int64, n int, sources []core.HostID) *world {
	t.Helper()
	w := &world{
		rng:       rand.New(rand.NewSource(seed)),
		buses:     make(map[core.HostID]*multi.Bus, n),
		delivered: make(map[core.HostID]map[multi.StreamID]*seqset.Set, n),
		sources:   sources,
		sent:      make(map[multi.StreamID]seqset.Seq),
	}
	for i := 1; i <= n; i++ {
		w.peers = append(w.peers, core.HostID(i))
	}
	for _, id := range w.peers {
		w.delivered[id] = make(map[multi.StreamID]*seqset.Set)
		b, err := multi.NewBus(multi.Config{
			ID:      id,
			Peers:   w.peers,
			Sources: sources,
			Params:  fastParams(),
		}, worldEnv{w: w, id: id})
		if err != nil {
			t.Fatalf("NewBus(%d): %v", id, err)
		}
		b.Start(0)
		w.buses[id] = b
	}
	return w
}

func (w *world) step(dropProb float64) {
	switch w.rng.Intn(10) {
	case 0, 1, 2, 3, 4:
		if len(w.pending) == 0 {
			w.tick()
			return
		}
		i := w.rng.Intn(len(w.pending))
		msg := w.pending[i]
		w.pending[i] = w.pending[len(w.pending)-1]
		w.pending = w.pending[:len(w.pending)-1]
		if w.rng.Float64() < dropProb {
			return
		}
		// Single-cluster world: everything is cheap.
		w.buses[msg.to].HandleMessage(w.now, msg.from, false, msg.stream, msg.m)
		if w.rng.Float64() < 0.05 {
			w.buses[msg.to].HandleMessage(w.now, msg.from, false, msg.stream, msg.m)
		}
	case 5, 6, 7, 8:
		w.tick()
	case 9:
		src := w.sources[w.rng.Intn(len(w.sources))]
		if w.sent[src] < 30 {
			if _, err := w.buses[src].Broadcast(w.now, []byte{byte(src)}); err == nil {
				w.sent[src]++
			}
		} else {
			w.tick()
		}
	}
}

func (w *world) tick() {
	id := w.peers[w.rng.Intn(len(w.peers))]
	w.now += time.Duration(w.rng.Intn(2)) * time.Millisecond
	w.buses[id].Tick(w.now)
}

func (w *world) drain(rounds int) {
	for r := 0; r < rounds; r++ {
		for len(w.pending) > 0 {
			msg := w.pending[len(w.pending)-1]
			w.pending = w.pending[:len(w.pending)-1]
			w.buses[msg.to].HandleMessage(w.now, msg.from, false, msg.stream, msg.m)
		}
		w.now += time.Millisecond
		for _, id := range w.peers {
			w.buses[id].Tick(w.now)
		}
	}
}

func TestMultiSourceConvergence(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			sources := []core.HostID{1, 3, 5}
			w := newWorld(t, seed, 6, sources)
			for i := 0; i < 3000; i++ {
				w.step(0.1)
			}
			w.drain(300)
			if w.dups != 0 {
				t.Errorf("duplicate deliveries: %d", w.dups)
			}
			for _, id := range w.peers {
				for _, src := range sources {
					want := w.sent[src]
					if want == 0 {
						continue
					}
					got := w.delivered[id][src]
					if got == nil || got.Max() != want || got.GapCount() != 0 {
						t.Errorf("host %d stream %d: delivered %v, want 1..%d", id, src, got, want)
					}
					// Bus state agrees with deliveries.
					if !w.buses[id].Instance(src).Info().Equal(*got) {
						t.Errorf("host %d stream %d: INFO diverges from deliveries", id, src)
					}
				}
			}
		})
	}
}

func TestStreamsAreIndependent(t *testing.T) {
	// Stream isolation: traffic on one stream never affects another
	// stream's INFO.
	sources := []core.HostID{1, 2}
	w := newWorld(t, 7, 3, sources)
	if _, err := w.buses[1].Broadcast(0, []byte("s1")); err != nil {
		t.Fatal(err)
	}
	w.sent[1]++
	w.drain(200)
	for _, id := range w.peers {
		if got := w.buses[id].Instance(2).Info(); !got.Empty() {
			t.Errorf("host %d stream 2 INFO = %v, want empty (stream 1 only broadcast)", id, got)
		}
		if got := w.buses[id].Instance(1).Info(); got.Max() != 1 {
			t.Errorf("host %d stream 1 INFO = %v, want {1}", id, got)
		}
	}
}

func TestBusValidation(t *testing.T) {
	env := worldEnv{w: &world{delivered: map[core.HostID]map[multi.StreamID]*seqset.Set{1: {}}}, id: 1}
	if _, err := multi.NewBus(multi.Config{ID: 1, Peers: []core.HostID{1}, Sources: nil}, env); err == nil {
		t.Error("no sources accepted")
	}
	if _, err := multi.NewBus(multi.Config{
		ID: 1, Peers: []core.HostID{1, 2}, Sources: []core.HostID{2, 2},
	}, env); err == nil {
		t.Error("duplicate sources accepted")
	}
	if _, err := multi.NewBus(multi.Config{
		ID: 1, Peers: []core.HostID{1, 2}, Sources: []core.HostID{3},
	}, env); err == nil {
		t.Error("source outside peers accepted")
	}
	if _, err := multi.NewBus(multi.Config{ID: 1, Peers: []core.HostID{1}, Sources: []core.HostID{1}}, nil); err == nil {
		t.Error("nil env accepted")
	}
}

func TestNonSourceBroadcastFails(t *testing.T) {
	w := newWorld(t, 9, 3, []core.HostID{1})
	if _, err := w.buses[2].Broadcast(0, nil); err == nil {
		t.Error("Broadcast on non-source bus succeeded")
	}
}

func TestUnknownStreamDropped(t *testing.T) {
	w := newWorld(t, 11, 2, []core.HostID{1})
	// A message for stream 9 (unknown) must be ignored without effect.
	w.buses[2].HandleMessage(0, 1, false, 9, core.Message{Kind: core.MsgData, Seq: 1})
	if got := w.delivered[2][9]; got != nil && !got.Empty() {
		t.Error("message on unknown stream delivered")
	}
}
