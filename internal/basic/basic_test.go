package basic_test

import (
	"testing"
	"time"

	"rbcast/internal/basic"
	"rbcast/internal/core"
	"rbcast/internal/seqset"
)

type sentMsg struct {
	to core.HostID
	m  basic.Message
}

type fakeEnv struct {
	sent      []sentMsg
	delivered []seqset.Seq
}

func (f *fakeEnv) Send(to core.HostID, m basic.Message) {
	f.sent = append(f.sent, sentMsg{to: to, m: m})
}

func (f *fakeEnv) Deliver(seq seqset.Seq, _ []byte) {
	f.delivered = append(f.delivered, seq)
}

func TestSourceValidation(t *testing.T) {
	env := &fakeEnv{}
	if _, err := basic.NewSource(0, nil, basic.Params{}, env); err == nil {
		t.Error("source id 0 accepted")
	}
	if _, err := basic.NewSource(1, []core.HostID{2, 2}, basic.Params{}, env); err == nil {
		t.Error("duplicate peers accepted")
	}
	if _, err := basic.NewSource(1, []core.HostID{2}, basic.Params{}, nil); err == nil {
		t.Error("nil env accepted")
	}
	if _, err := basic.NewSource(1, []core.HostID{2}, basic.Params{RetryPeriod: -1, TickInterval: 1}, env); err == nil {
		t.Error("negative retry period accepted")
	}
}

func TestBroadcastFanout(t *testing.T) {
	env := &fakeEnv{}
	s, err := basic.NewSource(1, []core.HostID{1, 2, 3, 4}, basic.Params{}, env)
	if err != nil {
		t.Fatal(err)
	}
	seq := s.Broadcast(0, []byte("x"))
	if seq != 1 {
		t.Errorf("seq = %d, want 1", seq)
	}
	if len(env.sent) != 3 { // self filtered out
		t.Fatalf("sent %d copies, want 3", len(env.sent))
	}
	targets := map[core.HostID]bool{}
	for _, sm := range env.sent {
		if sm.m.Kind != basic.KindData || sm.m.Seq != 1 {
			t.Errorf("bad copy %+v", sm)
		}
		targets[sm.to] = true
	}
	if !targets[2] || !targets[3] || !targets[4] {
		t.Errorf("copies to %v, want 2,3,4", targets)
	}
	if s.Outstanding() != 3 {
		t.Errorf("Outstanding = %d, want 3", s.Outstanding())
	}
	if len(env.delivered) != 1 {
		t.Errorf("source local deliveries = %d, want 1", len(env.delivered))
	}
}

func TestAcksRetireRetransmissions(t *testing.T) {
	env := &fakeEnv{}
	p := basic.DefaultParams()
	s, err := basic.NewSource(1, []core.HostID{2, 3}, p, env)
	if err != nil {
		t.Fatal(err)
	}
	s.Tick(0) // arm the retry clock
	s.Broadcast(0, []byte("x"))
	s.HandleMessage(0, 2, basic.Message{Kind: basic.KindAck, Seq: 1})
	if s.Outstanding() != 1 {
		t.Fatalf("Outstanding = %d after one ack, want 1", s.Outstanding())
	}
	env.sent = nil
	s.Tick(p.RetryPeriod * 2)
	if len(env.sent) != 1 || env.sent[0].to != 3 {
		t.Errorf("retransmissions = %v, want one to host 3", env.sent)
	}
	s.HandleMessage(0, 3, basic.Message{Kind: basic.KindAck, Seq: 1})
	if s.Outstanding() != 0 {
		t.Fatalf("Outstanding = %d after all acks, want 0", s.Outstanding())
	}
	env.sent = nil
	s.Tick(p.RetryPeriod * 4)
	if len(env.sent) != 0 {
		t.Errorf("retransmitted after full acknowledgment: %v", env.sent)
	}
}

func TestRetryRespectsPeriod(t *testing.T) {
	env := &fakeEnv{}
	p := basic.Params{RetryPeriod: 100 * time.Millisecond, TickInterval: 10 * time.Millisecond}
	s, err := basic.NewSource(1, []core.HostID{2}, p, env)
	if err != nil {
		t.Fatal(err)
	}
	s.Tick(0)
	s.Broadcast(0, nil)
	env.sent = nil
	s.Tick(50 * time.Millisecond) // before the retry period
	if len(env.sent) != 0 {
		t.Errorf("retransmitted early: %v", env.sent)
	}
	s.Tick(150 * time.Millisecond)
	if len(env.sent) != 1 {
		t.Errorf("retransmissions = %d at 150ms, want 1", len(env.sent))
	}
}

func TestDuplicateAcksHarmless(t *testing.T) {
	env := &fakeEnv{}
	s, err := basic.NewSource(1, []core.HostID{2}, basic.Params{}, env)
	if err != nil {
		t.Fatal(err)
	}
	s.Broadcast(0, nil)
	for i := 0; i < 3; i++ {
		s.HandleMessage(0, 2, basic.Message{Kind: basic.KindAck, Seq: 1})
	}
	s.HandleMessage(0, 2, basic.Message{Kind: basic.KindAck, Seq: 99}) // unknown seq
	if s.Outstanding() != 0 {
		t.Errorf("Outstanding = %d, want 0", s.Outstanding())
	}
}

func TestReceiverDeliversOnceAcksAlways(t *testing.T) {
	env := &fakeEnv{}
	r, err := basic.NewReceiver(2, 1, env)
	if err != nil {
		t.Fatal(err)
	}
	m := basic.Message{Kind: basic.KindData, Seq: 1, Payload: []byte("x")}
	r.HandleMessage(0, 1, m)
	r.HandleMessage(0, 1, m) // duplicate
	if len(env.delivered) != 1 {
		t.Errorf("delivered %d times, want 1", len(env.delivered))
	}
	acks := 0
	for _, sm := range env.sent {
		if sm.m.Kind == basic.KindAck && sm.m.Seq == 1 && sm.to == 1 {
			acks++
		}
	}
	if acks != 2 {
		t.Errorf("acks = %d, want 2 (duplicates re-acknowledged)", acks)
	}
	if !r.Received().Contains(1) {
		t.Error("Received() missing seq 1")
	}
}

func TestReceiverIgnoresNonSourceData(t *testing.T) {
	env := &fakeEnv{}
	r, err := basic.NewReceiver(2, 1, env)
	if err != nil {
		t.Fatal(err)
	}
	r.HandleMessage(0, 3, basic.Message{Kind: basic.KindData, Seq: 1})
	if len(env.delivered) != 0 || len(env.sent) != 0 {
		t.Error("receiver processed data from a non-source host")
	}
}

func TestReceiverValidation(t *testing.T) {
	env := &fakeEnv{}
	if _, err := basic.NewReceiver(1, 1, env); err == nil {
		t.Error("receiver == source accepted")
	}
	if _, err := basic.NewReceiver(0, 1, env); err == nil {
		t.Error("receiver id 0 accepted")
	}
	if _, err := basic.NewReceiver(2, 1, nil); err == nil {
		t.Error("nil env accepted")
	}
}
