// Package basic implements the paper's §1 baseline: the "simple and
// obvious" broadcast where the source sends a separately addressed copy
// of every message to every host and retransmits until acknowledged.
//
// The paper evaluates its protocol against exactly this algorithm — "the
// only known alternative for networks with nonprogrammable servers" — so
// the reproduction needs a faithful implementation over the same
// simulated substrate: per-destination copies, positive acknowledgments,
// periodic retransmission, and nothing else (no sharing of delivery
// responsibility among hosts, no topology adaptation).
package basic

import (
	"fmt"
	"sort"
	"time"

	"rbcast/internal/core"
	"rbcast/internal/seqset"
)

// Kind enumerates baseline message types.
type Kind int

const (
	// KindData carries one broadcast message copy.
	KindData Kind = iota + 1
	// KindAck acknowledges receipt of one sequence number.
	KindAck
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindData:
		return "data"
	case KindAck:
		return "ack"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Message is a baseline protocol message.
type Message struct {
	Kind    Kind
	Seq     seqset.Seq
	Payload []byte
}

// Env is the baseline's window on the world, mirroring core.Env.
type Env interface {
	Send(to core.HostID, m Message)
	Deliver(seq seqset.Seq, payload []byte)
}

// Params tunes the baseline.
type Params struct {
	// RetryPeriod is how often the source retransmits unacknowledged
	// copies.
	RetryPeriod time.Duration
	// TickInterval is the clock granularity, as in core.Params.
	TickInterval time.Duration
}

// DefaultParams returns the reference tuning.
func DefaultParams() Params {
	return Params{
		RetryPeriod:  500 * time.Millisecond,
		TickInterval: 25 * time.Millisecond,
	}
}

// Validate reports the first problem with p, or nil.
func (p Params) Validate() error {
	if p.RetryPeriod <= 0 {
		return fmt.Errorf("basic: RetryPeriod must be positive, got %v", p.RetryPeriod)
	}
	if p.TickInterval <= 0 {
		return fmt.Errorf("basic: TickInterval must be positive, got %v", p.TickInterval)
	}
	return nil
}

// Source is the broadcasting host. Single-threaded, like core.Host.
type Source struct {
	id      core.HostID
	peers   []core.HostID // all destinations (excludes self)
	params  Params
	env     Env
	store   map[seqset.Seq][]byte
	unacked map[seqset.Seq]map[core.HostID]bool
	// lastSend tracks when each message's copies were last transmitted,
	// so a retry happens only after a full RetryPeriod of silence — not
	// while the original copies' acks are still in flight.
	lastSend map[seqset.Seq]time.Duration
	nextSeq  seqset.Seq
}

// NewSource constructs the baseline source. peers must list every
// destination host (the source itself is filtered out if present).
func NewSource(id core.HostID, peers []core.HostID, params Params, env Env) (*Source, error) {
	if env == nil {
		return nil, fmt.Errorf("basic: nil Env")
	}
	if params == (Params{}) {
		params = DefaultParams()
	}
	if err := params.Validate(); err != nil {
		return nil, err
	}
	if id <= 0 {
		return nil, fmt.Errorf("basic: invalid source id %d", id)
	}
	var dests []core.HostID
	seen := make(map[core.HostID]bool)
	for _, p := range peers {
		if p == id {
			continue
		}
		if p <= 0 {
			return nil, fmt.Errorf("basic: invalid peer id %d", p)
		}
		if seen[p] {
			return nil, fmt.Errorf("basic: duplicate peer %d", p)
		}
		seen[p] = true
		dests = append(dests, p)
	}
	sort.Slice(dests, func(i, j int) bool { return dests[i] < dests[j] })
	return &Source{
		id:       id,
		peers:    dests,
		params:   params,
		env:      env,
		store:    make(map[seqset.Seq][]byte),
		unacked:  make(map[seqset.Seq]map[core.HostID]bool),
		lastSend: make(map[seqset.Seq]time.Duration),
		nextSeq:  1,
	}, nil
}

// ID returns the source host's identity.
func (s *Source) ID() core.HostID { return s.id }

// Broadcast sends the next message to every destination and begins
// retransmitting until each acknowledges. It returns the sequence number.
func (s *Source) Broadcast(now time.Duration, payload []byte) seqset.Seq {
	seq := s.nextSeq
	s.nextSeq++
	s.store[seq] = append([]byte(nil), payload...)
	s.env.Deliver(seq, s.store[seq])
	pending := make(map[core.HostID]bool, len(s.peers))
	m := Message{Kind: KindData, Seq: seq, Payload: s.store[seq]}
	for _, p := range s.peers {
		pending[p] = true
		s.env.Send(p, m)
	}
	s.unacked[seq] = pending
	s.lastSend[seq] = now
	return seq
}

// Outstanding reports the number of (message, host) pairs still awaiting
// acknowledgment.
func (s *Source) Outstanding() int {
	n := 0
	for _, pending := range s.unacked {
		n += len(pending)
	}
	return n
}

// HandleMessage processes an acknowledgment.
func (s *Source) HandleMessage(_ time.Duration, from core.HostID, m Message) {
	if m.Kind != KindAck {
		return
	}
	if pending, ok := s.unacked[m.Seq]; ok {
		delete(pending, from)
		if len(pending) == 0 {
			delete(s.unacked, m.Seq)
			delete(s.lastSend, m.Seq)
		}
	}
}

// Tick retransmits the copies of every message that has waited a full
// RetryPeriod without complete acknowledgment. The baseline keeps
// retrying even through partitions — the wasteful behaviour the paper
// calls out in §5.
func (s *Source) Tick(now time.Duration) {
	seqs := make([]seqset.Seq, 0, len(s.unacked))
	for seq := range s.unacked {
		if now-s.lastSend[seq] >= s.params.RetryPeriod {
			seqs = append(seqs, seq)
		}
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	for _, seq := range seqs {
		s.lastSend[seq] = now
		m := Message{Kind: KindData, Seq: seq, Payload: s.store[seq]}
		hosts := make([]core.HostID, 0, len(s.unacked[seq]))
		for h := range s.unacked[seq] {
			hosts = append(hosts, h)
		}
		sort.Slice(hosts, func(i, j int) bool { return hosts[i] < hosts[j] })
		for _, h := range hosts {
			s.env.Send(h, m)
		}
	}
}

// Receiver is a baseline destination host: it delivers first copies and
// acknowledges every copy (acks can be lost too).
type Receiver struct {
	id       core.HostID
	source   core.HostID
	env      Env
	received seqset.Set
}

// NewReceiver constructs a baseline destination.
func NewReceiver(id, source core.HostID, env Env) (*Receiver, error) {
	if env == nil {
		return nil, fmt.Errorf("basic: nil Env")
	}
	if id <= 0 || source <= 0 || id == source {
		return nil, fmt.Errorf("basic: invalid receiver/source ids %d/%d", id, source)
	}
	return &Receiver{id: id, source: source, env: env}, nil
}

// ID returns the receiver host's identity.
func (r *Receiver) ID() core.HostID { return r.id }

// Received returns a copy of the set of received sequence numbers.
func (r *Receiver) Received() seqset.Set { return r.received.Clone() }

// HandleMessage processes a data copy: deliver if new, acknowledge always
// (a duplicate usually means the previous ack was lost).
func (r *Receiver) HandleMessage(_ time.Duration, from core.HostID, m Message) {
	if m.Kind != KindData || from != r.source {
		return
	}
	if r.received.Add(m.Seq) {
		r.env.Deliver(m.Seq, m.Payload)
	}
	r.env.Send(r.source, Message{Kind: KindAck, Seq: m.Seq})
}
