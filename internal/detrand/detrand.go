// Package detrand is the repository's single gateway to seeded
// pseudo-randomness for deterministic code.
//
// The deterministic packages (core, sim, soak, seqset, wire — see
// internal/analysis.DetPackages) must not import math/rand directly:
// the top-level functions there draw from a process-global source, and
// even a benign import leaves that one refactor away. detlint enforces
// the ban; this package is the sanctioned alternative.
//
// The generator is stream-identical to math/rand with a rand.NewSource
// seed: Rand is a type alias for rand.Rand, and New(seed) produces
// exactly the sequence rand.New(rand.NewSource(seed)) would. Every
// recorded soak seed, shrunk counterexample, and EXPERIMENTS.md number
// therefore replays unchanged across the migration.
package detrand

import "math/rand"

// Rand is the seeded generator type. It is an alias — not a wrapper —
// so *Rand is interchangeable with *math/rand.Rand at every existing
// API boundary (sim.Engine.Rand, netsim.AddRandomLinks, ...).
type Rand = rand.Rand

// New returns a generator seeded with seed. Same seed, same stream,
// always.
func New(seed int64) *Rand {
	return rand.New(rand.NewSource(seed))
}
