package detrand

import (
	"math/rand"
	"testing"
)

// The whole point of detrand is that converting a package to it changes
// no seeded outcome: New(seed) must be stream-identical to
// rand.New(rand.NewSource(seed)).
func TestStreamIdenticalToMathRand(t *testing.T) {
	for _, seed := range []int64{0, 1, 42, -7, 1 << 40} {
		got := New(seed)
		want := rand.New(rand.NewSource(seed))
		for i := 0; i < 1000; i++ {
			g, w := got.Int63(), want.Int63()
			if g != w {
				t.Fatalf("seed %d draw %d: detrand %d, math/rand %d", seed, i, g, w)
			}
		}
		if g, w := got.Float64(), want.Float64(); g != w {
			t.Fatalf("seed %d Float64: detrand %v, math/rand %v", seed, g, w)
		}
		if g, w := got.Intn(997), want.Intn(997); g != w {
			t.Fatalf("seed %d Intn: detrand %v, math/rand %v", seed, g, w)
		}
	}
}

// Pin the first draws of a known seed so an accidental switch of the
// underlying source (e.g. to math/rand/v2, which is NOT stream-stable)
// fails loudly rather than silently invalidating recorded soak seeds.
func TestKnownStream(t *testing.T) {
	rng := New(1)
	want := []int64{
		5577006791947779410,
		8674665223082153551,
		6129484611666145821,
		4037200794235010051,
	}
	for i, w := range want {
		if g := rng.Int63(); g != w {
			t.Fatalf("seed 1 draw %d: got %d, want %d", i, g, w)
		}
	}
}
