// Package topo builds simulated network topologies: the clustered
// long-haul-plus-LAN networks the paper's model assumes, and the exact
// configurations of the paper's Figures 3.1, 3.2, and 4.1.
package topo

import (
	"fmt"

	"rbcast/internal/netsim"
	"rbcast/internal/sim"
)

// Topology is a built network plus the bookkeeping experiments need.
type Topology struct {
	// Net is the simulated network, fully wired.
	Net *netsim.Network
	// Hosts lists all host IDs in ascending order.
	Hosts []netsim.HostID
	// Source is the broadcast source host.
	Source netsim.HostID
	// HostsByCluster groups hosts by the cluster they were generated in.
	HostsByCluster [][]netsim.HostID
	// ServersByCluster groups servers likewise.
	ServersByCluster [][]netsim.ServerID
	// WANLinks are the expensive inter-cluster links, in creation order.
	WANLinks []netsim.LinkID
	// WANBetween maps a WAN link to the (clusterA, clusterB) pair it joins.
	WANBetween map[netsim.LinkID][2]int
}

// WANShape selects how clusters are interconnected by expensive links.
type WANShape int

const (
	// WANStar connects every cluster hub to cluster 0's hub.
	WANStar WANShape = iota + 1
	// WANChain connects cluster i to cluster i+1.
	WANChain
	// WANTree connects cluster i to cluster (i-1)/2 (a binary tree).
	WANTree
	// WANMesh connects every pair of cluster hubs.
	WANMesh
	// WANRing connects cluster i to cluster (i+1) mod k.
	WANRing
)

// String implements fmt.Stringer.
func (s WANShape) String() string {
	switch s {
	case WANStar:
		return "star"
	case WANChain:
		return "chain"
	case WANTree:
		return "tree"
	case WANMesh:
		return "mesh"
	case WANRing:
		return "ring"
	default:
		return fmt.Sprintf("WANShape(%d)", int(s))
	}
}

// ClusteredConfig parameterizes Clustered.
type ClusteredConfig struct {
	// Clusters is the number of clusters (k ≥ 1).
	Clusters int
	// HostsPerCluster is the number of hosts in each cluster (m ≥ 1).
	HostsPerCluster int
	// Shape is the WAN interconnect; default WANTree.
	Shape WANShape
	// Cheap configures intra-cluster links; zero value uses netsim
	// defaults (1 ms, no loss).
	Cheap netsim.LinkConfig
	// Expensive configures inter-cluster links; zero value uses netsim
	// defaults (30 ms, no loss). Class is forced to Expensive.
	Expensive netsim.LinkConfig
	// HostLink configures host access links; zero value uses netsim
	// defaults.
	HostLink netsim.LinkConfig
}

func (c ClusteredConfig) withDefaults() (ClusteredConfig, error) {
	if c.Clusters < 1 {
		return c, fmt.Errorf("topo: Clusters = %d, want ≥ 1", c.Clusters)
	}
	if c.HostsPerCluster < 1 {
		return c, fmt.Errorf("topo: HostsPerCluster = %d, want ≥ 1", c.HostsPerCluster)
	}
	if c.Shape == 0 {
		c.Shape = WANTree
	}
	c.Cheap.Class = netsim.Cheap
	c.Expensive.Class = netsim.Expensive
	c.HostLink.Class = netsim.Cheap
	return c, nil
}

// Clustered builds k clusters of m hosts each. Within a cluster every
// host has its own server; cluster servers form a cheap star around the
// cluster's hub (the first server). Hubs are interconnected by expensive
// links per the chosen shape. Host 1 (in cluster 0) is the source.
// Construction is fully deterministic.
func Clustered(eng sim.Loop, cfg ClusteredConfig) (*Topology, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	n := netsim.New(eng)
	t := &Topology{
		Net:        n,
		Source:     1,
		WANBetween: make(map[netsim.LinkID][2]int),
	}
	hubs := make([]netsim.ServerID, cfg.Clusters)
	nextHost := netsim.HostID(1)
	for c := 0; c < cfg.Clusters; c++ {
		var servers []netsim.ServerID
		var hosts []netsim.HostID
		for i := 0; i < cfg.HostsPerCluster; i++ {
			s := n.AddServer()
			servers = append(servers, s)
			if i == 0 {
				hubs[c] = s
			} else {
				if _, err := n.AddLink(hubs[c], s, cfg.Cheap); err != nil {
					return nil, err
				}
			}
			if err := n.AttachHost(nextHost, s, cfg.HostLink); err != nil {
				return nil, err
			}
			hosts = append(hosts, nextHost)
			t.Hosts = append(t.Hosts, nextHost)
			nextHost++
		}
		t.HostsByCluster = append(t.HostsByCluster, hosts)
		t.ServersByCluster = append(t.ServersByCluster, servers)
	}
	addWAN := func(a, b int) error {
		id, err := n.AddLink(hubs[a], hubs[b], cfg.Expensive)
		if err != nil {
			return err
		}
		t.WANLinks = append(t.WANLinks, id)
		t.WANBetween[id] = [2]int{a, b}
		return nil
	}
	switch cfg.Shape {
	case WANStar:
		for c := 1; c < cfg.Clusters; c++ {
			if err := addWAN(0, c); err != nil {
				return nil, err
			}
		}
	case WANChain:
		for c := 1; c < cfg.Clusters; c++ {
			if err := addWAN(c-1, c); err != nil {
				return nil, err
			}
		}
	case WANTree:
		for c := 1; c < cfg.Clusters; c++ {
			if err := addWAN((c-1)/2, c); err != nil {
				return nil, err
			}
		}
	case WANMesh:
		for a := 0; a < cfg.Clusters; a++ {
			for b := a + 1; b < cfg.Clusters; b++ {
				if err := addWAN(a, b); err != nil {
					return nil, err
				}
			}
		}
	case WANRing:
		for c := 0; c < cfg.Clusters && cfg.Clusters > 1; c++ {
			if err := addWAN(c, (c+1)%cfg.Clusters); err != nil {
				return nil, err
			}
		}
	default:
		return nil, fmt.Errorf("topo: unknown WAN shape %v", cfg.Shape)
	}
	return t, nil
}

// ClusterOf returns the generation-time cluster index of a host, or -1.
func (t *Topology) ClusterOf(h netsim.HostID) int {
	for c, hosts := range t.HostsByCluster {
		for _, x := range hosts {
			if x == h {
				return c
			}
		}
	}
	return -1
}

// WANLinksOfCluster returns the expensive links touching cluster c.
func (t *Topology) WANLinksOfCluster(c int) []netsim.LinkID {
	var out []netsim.LinkID
	for _, id := range t.WANLinks {
		p := t.WANBetween[id]
		if p[0] == c || p[1] == c {
			out = append(out, id)
		}
	}
	return out
}

// IsolateCluster cuts every WAN link touching cluster c, partitioning it
// from the rest of the network. It returns the cut links so callers can
// repair them later.
func (t *Topology) IsolateCluster(c int) ([]netsim.LinkID, error) {
	links := t.WANLinksOfCluster(c)
	for _, id := range links {
		if err := t.Net.SetLinkUp(id, false); err != nil {
			return nil, err
		}
	}
	return links, nil
}

// RestoreLinks brings the given links back up.
func (t *Topology) RestoreLinks(links []netsim.LinkID) error {
	for _, id := range links {
		if err := t.Net.SetLinkUp(id, true); err != nil {
			return err
		}
	}
	return nil
}
