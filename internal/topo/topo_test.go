package topo_test

import (
	"testing"

	"rbcast/internal/netsim"
	"rbcast/internal/sim"
	"rbcast/internal/topo"
)

func TestClusteredShapesAndCounts(t *testing.T) {
	shapes := []topo.WANShape{topo.WANStar, topo.WANChain, topo.WANTree, topo.WANMesh, topo.WANRing}
	for _, shape := range shapes {
		t.Run(shape.String(), func(t *testing.T) {
			eng := sim.NewEngine(1)
			tp, err := topo.Clustered(eng, topo.ClusteredConfig{
				Clusters:        4,
				HostsPerCluster: 3,
				Shape:           shape,
			})
			if err != nil {
				t.Fatalf("Clustered: %v", err)
			}
			if len(tp.Hosts) != 12 {
				t.Errorf("hosts = %d, want 12", len(tp.Hosts))
			}
			if got := tp.Net.ClusterCount(); got != 4 {
				t.Errorf("true clusters = %d, want 4", got)
			}
			wantWAN := map[topo.WANShape]int{
				topo.WANStar: 3, topo.WANChain: 3, topo.WANTree: 3,
				topo.WANMesh: 6, topo.WANRing: 4,
			}[shape]
			if len(tp.WANLinks) != wantWAN {
				t.Errorf("WAN links = %d, want %d", len(tp.WANLinks), wantWAN)
			}
			// Generated clustering must agree with simulator ground truth.
			truth := tp.Net.TrueClusters()
			for c, hosts := range tp.HostsByCluster {
				for _, h := range hosts {
					if truth[h] != truth[hosts[0]] {
						t.Errorf("cluster %d host %d not in same true cluster", c, h)
					}
					if got := tp.ClusterOf(h); got != c {
						t.Errorf("ClusterOf(%d) = %d, want %d", h, got, c)
					}
				}
			}
			// Hosts in different generated clusters are in different true
			// clusters.
			if truth[tp.HostsByCluster[0][0]] == truth[tp.HostsByCluster[1][0]] {
				t.Error("distinct generated clusters map to one true cluster")
			}
		})
	}
}

func TestClusteredValidation(t *testing.T) {
	eng := sim.NewEngine(1)
	if _, err := topo.Clustered(eng, topo.ClusteredConfig{Clusters: 0, HostsPerCluster: 1}); err == nil {
		t.Error("Clusters=0 accepted")
	}
	if _, err := topo.Clustered(eng, topo.ClusteredConfig{Clusters: 1, HostsPerCluster: 0}); err == nil {
		t.Error("HostsPerCluster=0 accepted")
	}
}

func TestClusteredConnectivity(t *testing.T) {
	eng := sim.NewEngine(1)
	tp, err := topo.Clustered(eng, topo.ClusteredConfig{
		Clusters:        5,
		HostsPerCluster: 2,
		Shape:           topo.WANTree,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range tp.Hosts {
		for _, b := range tp.Hosts {
			if a != b && !tp.Net.PathExists(a, b) {
				t.Errorf("no path %d → %d in fresh topology", a, b)
			}
		}
	}
}

func TestIsolateAndRestoreCluster(t *testing.T) {
	eng := sim.NewEngine(1)
	tp, err := topo.Clustered(eng, topo.ClusteredConfig{
		Clusters:        3,
		HostsPerCluster: 2,
		Shape:           topo.WANChain,
	})
	if err != nil {
		t.Fatal(err)
	}
	cut, err := tp.IsolateCluster(2)
	if err != nil {
		t.Fatal(err)
	}
	if len(cut) == 0 {
		t.Fatal("IsolateCluster cut nothing")
	}
	victim := tp.HostsByCluster[2][0]
	if tp.Net.PathExists(tp.Source, victim) {
		t.Error("path to isolated cluster still exists")
	}
	// Intra-cluster connectivity survives.
	if !tp.Net.PathExists(tp.HostsByCluster[2][0], tp.HostsByCluster[2][1]) {
		t.Error("isolated cluster lost internal connectivity")
	}
	if err := tp.RestoreLinks(cut); err != nil {
		t.Fatal(err)
	}
	if !tp.Net.PathExists(tp.Source, victim) {
		t.Error("path not restored after repair")
	}
}

func TestFigure31(t *testing.T) {
	eng := sim.NewEngine(1)
	tp, err := topo.Figure31(eng)
	if err != nil {
		t.Fatal(err)
	}
	if len(tp.Hosts) != 3 || tp.Source != 1 {
		t.Fatalf("hosts = %v, source = %d", tp.Hosts, tp.Source)
	}
	// Every host is its own cluster (expensive links only).
	if got := tp.Net.ClusterCount(); got != 3 {
		t.Errorf("clusters = %d, want 3", got)
	}
	// Full connectivity via the middle switch.
	for _, a := range tp.Hosts {
		for _, b := range tp.Hosts {
			if a != b && !tp.Net.PathExists(a, b) {
				t.Errorf("no path %d → %d", a, b)
			}
		}
	}
}

func TestFigure32(t *testing.T) {
	eng := sim.NewEngine(1)
	tp, err := topo.Figure32(eng)
	if err != nil {
		t.Fatal(err)
	}
	if len(tp.Hosts) != 9 {
		t.Fatalf("hosts = %d, want 9", len(tp.Hosts))
	}
	if got := tp.Net.ClusterCount(); got != 4 {
		t.Errorf("clusters = %d, want 4", got)
	}
	// Cluster C (index 3) must touch exactly two WAN links (to C′ and C″).
	if got := len(tp.WANLinksOfCluster(3)); got != 2 {
		t.Errorf("WAN links of C = %d, want 2", got)
	}
	// The merge repair joins C″ and C into one true cluster.
	if _, err := topo.MergeFigure32Clusters(tp); err != nil {
		t.Fatal(err)
	}
	truth := tp.Net.TrueClusters()
	if truth[tp.HostsByCluster[2][0]] != truth[tp.HostsByCluster[3][0]] {
		t.Error("merge did not join C″ and C")
	}
	if got := tp.Net.ClusterCount(); got != 3 {
		t.Errorf("clusters after merge = %d, want 3", got)
	}
}

func TestFigure41(t *testing.T) {
	eng := sim.NewEngine(1)
	tp, err := topo.Figure41(eng)
	if err != nil {
		t.Fatal(err)
	}
	if got := tp.Net.ClusterCount(); got != 3 {
		t.Errorf("clusters = %d, want 3", got)
	}
	cut, err := topo.IsolateFigure41Source(tp)
	if err != nil {
		t.Fatal(err)
	}
	if len(cut) != 2 {
		t.Fatalf("cut %d links, want 2", len(cut))
	}
	if tp.Net.PathExists(1, 2) || tp.Net.PathExists(1, 3) {
		t.Error("source still reachable after isolation")
	}
	if !tp.Net.PathExists(2, 3) {
		t.Error("i–j connectivity lost; the figure requires it")
	}
	if err := tp.RestoreLinks(cut); err != nil {
		t.Fatal(err)
	}
	if !tp.Net.PathExists(1, 2) {
		t.Error("source unreachable after repair")
	}
}

func TestHostLinksAreCheap(t *testing.T) {
	// The model's clusters are defined over cheap communication; host
	// access links must be cheap or TrueClusters degrades to singletons.
	eng := sim.NewEngine(1)
	tp, err := topo.Clustered(eng, topo.ClusteredConfig{
		Clusters:        2,
		HostsPerCluster: 2,
		HostLink:        netsim.LinkConfig{Class: netsim.Cheap},
	})
	if err != nil {
		t.Fatal(err)
	}
	truth := tp.Net.TrueClusters()
	if truth[1] != truth[2] {
		t.Error("same-cluster hosts not in one true cluster")
	}
}
