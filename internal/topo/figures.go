package topo

import (
	"rbcast/internal/netsim"
	"rbcast/internal/sim"
)

// The paper's figures, reconstructed as executable topologies.

// Figure31 builds the paper's Figure 3.1: three hosts h1, h2, h3 on
// servers s1, s2, s3, with a fourth pure-switch server s4 in the middle
// (links s1–s4, s4–s2, s4–s3). Host 1 is the source.
//
// The figure's point is that the cost-optimal broadcast — s4 duplicating
// the message once for s2 and once for s3, each link traversed exactly
// once — is unattainable with nonprogrammable servers: h1 must send two
// separately addressed copies, so link s1–s4 is traversed twice. All
// links are expensive here, putting each host in its own cluster, so the
// paper's inter-cluster cost metric applies directly.
func Figure31(eng sim.Loop) (*Topology, error) {
	n := netsim.New(eng)
	s1, s2, s3, s4 := n.AddServer(), n.AddServer(), n.AddServer(), n.AddServer()
	exp := netsim.LinkConfig{Class: netsim.Expensive}
	t := &Topology{
		Net:        n,
		Source:     1,
		Hosts:      []netsim.HostID{1, 2, 3},
		WANBetween: make(map[netsim.LinkID][2]int),
	}
	for _, pair := range [][2]netsim.ServerID{{s1, s4}, {s4, s2}, {s4, s3}} {
		id, err := n.AddLink(pair[0], pair[1], exp)
		if err != nil {
			return nil, err
		}
		t.WANLinks = append(t.WANLinks, id)
	}
	hostLink := netsim.LinkConfig{Class: netsim.Cheap}
	for h, s := range map[netsim.HostID]netsim.ServerID{1: s1, 2: s2, 3: s3} {
		if err := n.AttachHost(h, s, hostLink); err != nil {
			return nil, err
		}
	}
	t.HostsByCluster = [][]netsim.HostID{{1}, {2}, {3}}
	t.ServersByCluster = [][]netsim.ServerID{{s1}, {s2}, {s3}, {s4}}
	return t, nil
}

// Figure32 builds the paper's Figure 3.2 situation: a source cluster S
// and three further clusters C′, C″, and C, where C can reach both C′
// and C″ over expensive links — so the attachment procedure must choose
// C's parent cluster — and C′/C″ connect to S.
//
// Clusters: S = {1, 2}, C′ = {3, 4}, C″ = {5, 6}, C = {7, 8, 9}.
// WAN: S–C′, S–C″, C′–C, C″–C. Host 1 is the source.
//
// The returned topology also supports the paper's cluster-merge
// discussion (§4.1): MergeFigure32Clusters adds a cheap path between C″
// and C, merging them, after which the host parent graph no longer
// induces a cluster tree until the procedure re-converges.
func Figure32(eng sim.Loop) (*Topology, error) {
	n := netsim.New(eng)
	t := &Topology{
		Net:        n,
		Source:     1,
		WANBetween: make(map[netsim.LinkID][2]int),
	}
	cheap := netsim.LinkConfig{Class: netsim.Cheap}
	exp := netsim.LinkConfig{Class: netsim.Expensive}
	sizes := []int{2, 2, 2, 3} // S, C′, C″, C
	hubs := make([]netsim.ServerID, len(sizes))
	next := netsim.HostID(1)
	for c, size := range sizes {
		var servers []netsim.ServerID
		var hosts []netsim.HostID
		for i := 0; i < size; i++ {
			s := n.AddServer()
			servers = append(servers, s)
			if i == 0 {
				hubs[c] = s
			} else if _, err := n.AddLink(hubs[c], s, cheap); err != nil {
				return nil, err
			}
			if err := n.AttachHost(next, s, cheap); err != nil {
				return nil, err
			}
			hosts = append(hosts, next)
			t.Hosts = append(t.Hosts, next)
			next++
		}
		t.HostsByCluster = append(t.HostsByCluster, hosts)
		t.ServersByCluster = append(t.ServersByCluster, servers)
	}
	for _, pair := range [][2]int{{0, 1}, {0, 2}, {1, 3}, {2, 3}} {
		id, err := n.AddLink(hubs[pair[0]], hubs[pair[1]], exp)
		if err != nil {
			return nil, err
		}
		t.WANLinks = append(t.WANLinks, id)
		t.WANBetween[id] = pair
	}
	return t, nil
}

// MergeFigure32Clusters adds a cheap link between clusters C″ (index 2)
// and C (index 3), reproducing the §4.1 example where a high-bandwidth
// path repair joins two clusters into one.
func MergeFigure32Clusters(t *Topology) (netsim.LinkID, error) {
	return t.Net.AddLink(
		t.ServersByCluster[2][0],
		t.ServersByCluster[3][0],
		netsim.LinkConfig{Class: netsim.Cheap},
	)
}

// Figure41 builds the paper's Figure 4.1: the source s (host 1) and two
// hosts i (host 2) and j (host 3), each in its own cluster, pairwise
// connected by expensive links. Cutting the two links at the source's
// server isolates s while leaving i–j connected — the configuration in
// which only non-neighbour gap filling can reconcile i's and j's
// complementary gaps.
func Figure41(eng sim.Loop) (*Topology, error) {
	n := netsim.New(eng)
	s1, s2, s3 := n.AddServer(), n.AddServer(), n.AddServer()
	exp := netsim.LinkConfig{Class: netsim.Expensive}
	cheap := netsim.LinkConfig{Class: netsim.Cheap}
	t := &Topology{
		Net:        n,
		Source:     1,
		Hosts:      []netsim.HostID{1, 2, 3},
		WANBetween: make(map[netsim.LinkID][2]int),
	}
	for _, pair := range [][3]int{{0, 1, 0}, {0, 2, 1}, {1, 2, 2}} {
		servers := []netsim.ServerID{s1, s2, s3}
		id, err := n.AddLink(servers[pair[0]], servers[pair[1]], exp)
		if err != nil {
			return nil, err
		}
		t.WANLinks = append(t.WANLinks, id)
		t.WANBetween[id] = [2]int{pair[0], pair[1]}
	}
	for h, s := range map[netsim.HostID]netsim.ServerID{1: s1, 2: s2, 3: s3} {
		if err := n.AttachHost(h, s, cheap); err != nil {
			return nil, err
		}
	}
	t.HostsByCluster = [][]netsim.HostID{{1}, {2}, {3}}
	t.ServersByCluster = [][]netsim.ServerID{{s1}, {s2}, {s3}}
	return t, nil
}

// IsolateFigure41Source cuts the two links touching the source's server,
// leaving hosts 2 and 3 connected to each other but not to the source.
func IsolateFigure41Source(t *Topology) ([]netsim.LinkID, error) {
	cut := []netsim.LinkID{t.WANLinks[0], t.WANLinks[1]}
	for _, id := range cut {
		if err := t.Net.SetLinkUp(id, false); err != nil {
			return nil, err
		}
	}
	return cut, nil
}
