package core

import (
	"slices"
	"time"

	"rbcast/internal/seqset"
)

// Catch-up sync (Params.SyncBatch > 0): a downloader-style range-sync
// layer for late joiners and healed hosts. The paper's §4.4 gap fill
// repairs losses one message at a time at fixed periods — O(history)
// rounds for a host that missed a long prefix. This layer turns the
// same repair into batched, pipelined range requests (MsgSyncReq /
// MsgSyncResp) with a per-peer in-flight window, request timeouts wired
// into the health.go failure detector, and source failover; and when
// the missing prefix has been pruned everywhere (§6 pruning liberated
// past a checkpoint), into chunked snapshot transfer (MsgSnapReq /
// MsgSnapChunk) that is resumable from the last verified byte offset.
//
// The layer is strictly additive: it never replaces the periodic gap
// fill, and a zero SyncBatch leaves every schedule and wire byte
// identical to the plain protocol. Range-synced data is *solicited* —
// a response part is accepted only if its sequence number is still
// outstanding on the matching in-flight request — which both sidesteps
// the §4.1 parent-only rule safely (the receiver asked for exactly
// these sequence numbers) and bounds what a hostile responder can make
// the receiver accept.

const (
	// syncMaxRetries is how many times one request (or one snapshot
	// window) is retried against the same source before the source is
	// failed over.
	syncMaxRetries = 3
	// maxSnapshotBytes bounds the total snapshot size a client will
	// accept; a hostile MsgSnapChunk cannot commit the receiver to an
	// unbounded transfer.
	maxSnapshotBytes = 1 << 26
)

// syncReq is one in-flight range request.
type syncReq struct {
	want     seqset.Set // requested sequence numbers
	got      seqset.Set // subset received (or reported pruned) so far
	deadline time.Duration
	retries  int
}

// syncState is the client side of the catch-up layer; nil unless
// Params.SyncBatch > 0.
type syncState struct {
	// source is the peer currently being pulled from; Nil when idle.
	source HostID
	// excluded holds sources that went silent mid-transfer and were
	// failed over; cleared when every candidate is excluded.
	excluded map[HostID]bool
	// inflight holds outstanding range requests keyed by request id
	// (the low bound of the requested range).
	inflight map[seqset.Seq]*syncReq

	// Snapshot transfer state. snapGot is the verified prefix of the
	// snapshot being fetched; its length is the resume offset, so a
	// re-partitioned or restarted transfer continues where it stopped.
	snapActive   bool
	snapFrom     HostID
	snapMark     seqset.Seq
	snapTotal    uint64
	snapGot      []byte
	snapChunks   int // chunks received since the last MsgSnapReq
	snapDeadline time.Duration
	snapRetries  int
}

// SyncStats is an exported snapshot of the catch-up layer's counters.
type SyncStats struct {
	// Rounds counts MsgSyncReq range requests issued.
	Rounds uint64
	// Failovers counts sync sources abandoned mid-transfer.
	Failovers uint64
	// SnapResumes counts snapshot requests that resumed from a nonzero
	// verified offset instead of restarting.
	SnapResumes uint64
	// SnapInstalls counts snapshots installed.
	SnapInstalls uint64
	// SnapMark is the watermark of this host's own latest checkpoint
	// (the server side; 0 when none).
	SnapMark seqset.Seq
}

// SyncStats returns the catch-up layer's counters.
func (h *Host) SyncStats() SyncStats {
	return SyncStats{
		Rounds:       h.syncRounds,
		Failovers:    h.syncFailovers,
		SnapResumes:  h.snapResumes,
		SnapInstalls: h.snapInstalls,
		SnapMark:     h.snapMark,
	}
}

// emitDirect sends bypassing the piggyback outbox: sync responses carry
// parts of their own and may not nest inside a bundle, and snapshot
// chunks are better off not inflating one.
func (h *Host) emitDirect(to HostID, m Message) {
	if to == h.id || to == Nil {
		return
	}
	h.env.Send(to, m)
}

// ---------------------------------------------------------------------
// Server side.

// snapshotMaybe refreshes this host's checkpoint when the delivered
// prefix has advanced at least SnapshotEvery past the last one. Only
// the latest checkpoint is kept; a resuming client that presents a
// stale watermark restarts from offset zero.
func (h *Host) snapshotMaybe() {
	if !h.params.SnapshotsEnabled() {
		return
	}
	snap, ok := h.env.(Snapshotter)
	if !ok {
		return
	}
	p := h.ownPrefix()
	if p < h.snapMark+seqset.Seq(h.params.SnapshotEvery) {
		return
	}
	data, ok := snap.Snapshot(p)
	if !ok {
		return
	}
	h.snapData = data
	h.snapMark = p
}

// handleSyncReq serves a range request: every requested sequence number
// still in the store becomes a gap-fill part of one MsgSyncResp, and
// the requested-but-snapshot-covered subset (pruned, or absorbed into
// state by an installed checkpoint) is reported back along with this
// host's checkpoint watermark, so the requester knows a snapshot can
// cover what per-message sync no longer can. The response is sent even
// when empty — it is authoritative ("this is everything I can give you
// for this request"), which is what lets the requester retire a request
// instead of retrying sequence numbers the responder will never have.
func (h *Host) handleSyncReq(now time.Duration, from HostID, m Message) {
	if !h.params.SyncEnabled() {
		return
	}
	limit := h.params.SyncBatch
	parts := make([]Message, 0, limit)
	var pruned seqset.Set
	served := 0
	m.Info.Each(func(q seqset.Seq) bool {
		if q == 0 {
			return true
		}
		if payload, ok := h.store[q]; ok {
			parts = append(parts, Message{Kind: MsgData, Seq: q, Payload: payload, GapFill: true})
			s := h.maps[from]
			s.Add(q)
			h.maps[from] = s
			served++
		} else if q <= h.prunedTo || q <= h.snapMark {
			pruned.Add(q)
			served++
		} else if h.info.Contains(q) && h.refreshSnapshotFor(q) {
			pruned.Add(q)
			served++
		}
		return served < limit
	})
	h.emitDirect(from, Message{
		Kind:     MsgSyncResp,
		Seq:      m.Seq, // echo the request id
		Parts:    parts,
		Info:     pruned,
		CheckLen: uint64(h.snapMark),
	})
}

// refreshSnapshotFor forces a checkpoint refresh when a peer requests a
// sequence number this host advertises in INFO but can back from
// neither the store nor its current checkpoint. A host enters that
// window by installing a peer's snapshot: the install marks the covered
// prefix held without stocking the store, and snapshotMaybe's
// SnapshotEvery cadence can leave the host's own checkpoint behind the
// installed mark indefinitely. Left alone, a requester whose prefix
// already reaches the stale watermark loops forever against an
// advertisement nothing backs; the on-demand refresh (the cadence is a
// cost knob for the routine path, not a safety bound) restores the
// invariant that everything in INFO is servable — as data, or as
// checkpoint coverage.
func (h *Host) refreshSnapshotFor(q seqset.Seq) bool {
	if !h.params.SnapshotsEnabled() {
		return false
	}
	snap, ok := h.env.(Snapshotter)
	if !ok {
		return false
	}
	p := h.ownPrefix()
	if q > p || p <= h.snapMark {
		return false
	}
	data, ok := snap.Snapshot(p)
	if !ok {
		return false
	}
	h.snapData = data
	h.snapMark = p
	return true
}

// handleSnapReq streams one window of checkpoint chunks starting at the
// requested byte offset. A request that names a stale watermark (or an
// offset past the end) restarts the client from offset zero on the
// current checkpoint.
func (h *Host) handleSnapReq(now time.Duration, from HostID, m Message) {
	if !h.params.SnapshotsEnabled() || h.snapMark == 0 || len(h.snapData) == 0 {
		return
	}
	offset := uint64(m.Seq)
	if m.CheckLen != 0 && m.CheckLen != uint64(h.snapMark) {
		offset = 0 // resuming a checkpoint that no longer exists
	}
	total := uint64(len(h.snapData))
	if offset >= total {
		offset = 0
	}
	chunk := uint64(h.params.SnapChunk)
	cover := seqset.FromRange(1, h.snapMark)
	for i := 0; i < h.params.SyncWindow && offset < total; i++ {
		end := offset + chunk
		if end > total {
			end = total
		}
		h.emitDirect(from, Message{
			Kind:     MsgSnapChunk,
			Seq:      seqset.Seq(offset),
			Payload:  h.snapData[offset:end],
			CheckLen: total,
			Info:     cover,
		})
		offset = end
	}
}

// ---------------------------------------------------------------------
// Client side.

// syncPump is the periodic driver: it retires or retries timed-out
// requests, fails over silent sources, and fills the in-flight window
// with new range requests for data some peer's confirmed view proves
// exists.
func (h *Host) syncPump(now time.Duration) {
	st := h.catchup
	if st == nil {
		return
	}
	h.pumpSnapshot(now, st)
	h.pumpRanges(now, st)
}

// pumpSnapshot handles snapshot-transfer timeouts: same-source retries
// resume from the verified offset; exhausted retries fail the source
// over and restart the transfer against the next candidate.
func (h *Host) pumpSnapshot(now time.Duration, st *syncState) {
	if !st.snapActive || now < st.snapDeadline {
		return
	}
	h.noteProbeFailure(now, st.snapFrom)
	st.snapRetries++
	if st.snapRetries > syncMaxRetries {
		h.failoverSync(now, st)
		return
	}
	h.requestSnapWindow(now, st)
}

// requestSnapWindow (re-)requests the next snapshot window from the
// current snapshot source, resuming at the verified offset.
func (h *Host) requestSnapWindow(now time.Duration, st *syncState) {
	if len(st.snapGot) > 0 {
		h.snapResumes++
	}
	st.snapChunks = 0
	st.snapDeadline = now + h.params.SyncTimeout
	h.emitDirect(st.snapFrom, Message{
		Kind:     MsgSnapReq,
		Seq:      seqset.Seq(len(st.snapGot)),
		CheckLen: uint64(st.snapMark),
	})
}

// failoverSync abandons the current sync source: it is excluded for
// this catch-up cycle, all transfer state that cannot outlive the
// source (a partially fetched snapshot is source-specific — another
// server's checkpoint has a different watermark and byte stream) is
// dropped, and the pump picks the next candidate. Range data already
// accepted is kept; only the requests are reissued.
func (h *Host) failoverSync(now time.Duration, st *syncState) {
	if st.source != Nil {
		h.event(now, EvSyncFailover, st.source, 0)
		h.syncFailovers++
		if st.excluded == nil {
			st.excluded = make(map[HostID]bool)
		}
		st.excluded[st.source] = true
	}
	st.source = Nil
	st.inflight = nil
	st.snapActive = false
	st.snapFrom = Nil
	st.snapMark = 0
	st.snapTotal = 0
	st.snapGot = nil
	st.snapChunks = 0
	st.snapRetries = 0
}

// pumpRanges retries timed-out range requests and keeps the in-flight
// window full.
func (h *Host) pumpRanges(now time.Duration, st *syncState) {
	// Retry or fail over timed-out requests, in request-id order for
	// determinism.
	if len(st.inflight) > 0 {
		ids := make([]seqset.Seq, 0, len(st.inflight))
		for id := range st.inflight {
			ids = append(ids, id)
		}
		slices.Sort(ids)
		for _, id := range ids {
			req := st.inflight[id]
			if now < req.deadline {
				continue
			}
			h.noteProbeFailure(now, st.source)
			req.retries++
			if req.retries > syncMaxRetries {
				h.failoverSync(now, st)
				break
			}
			outstanding := req.want.Diff(req.got)
			if outstanding.Empty() {
				delete(st.inflight, id)
				continue
			}
			req.deadline = now + h.params.SyncTimeout
			h.emitDirect(st.source, Message{Kind: MsgSyncReq, Seq: id, Info: outstanding})
			h.event(now, EvSyncRound, st.source, id)
			h.syncRounds++
		}
	}
	if st.snapActive || len(st.inflight) >= h.params.SyncWindow {
		return
	}
	// What do we want? Everything some peer's confirmed view holds that
	// we lack — excluding the pruned floor and anything already in
	// flight.
	src := st.source
	if src == Nil || st.excluded[src] || h.suppressed(now, src) {
		src = h.pickSyncSource(now, st)
		if src == Nil {
			// Every candidate excluded or useless: clear the exclusions so
			// the next pump re-sweeps (the backoff layer, not the exclusion
			// list, is the long-term gate).
			st.excluded = nil
			st.source = Nil
			return
		}
		st.source = src
	}
	missing := h.missingFrom(src)
	if missing.Empty() {
		st.source = Nil
		return
	}
	var requested seqset.Set
	for _, req := range st.inflight {
		requested.Union(req.want)
	}
	batch := h.params.SyncBatch
	for len(st.inflight) < h.params.SyncWindow {
		var want seqset.Set
		count := 0
		missing.Each(func(q seqset.Seq) bool {
			if q > h.prunedTo && !requested.Contains(q) {
				want.Add(q)
				count++
			}
			return count < batch
		})
		if want.Empty() {
			return
		}
		requested.Union(want)
		id := want.Min()
		if st.inflight == nil {
			st.inflight = make(map[seqset.Seq]*syncReq)
		}
		st.inflight[id] = &syncReq{want: want, deadline: now + h.params.SyncTimeout}
		h.emitDirect(src, Message{Kind: MsgSyncReq, Seq: id, Info: want})
		h.event(now, EvSyncRound, src, id)
		h.syncRounds++
	}
}

// missingFrom is what peer j's confirmed view proves exists that this
// host lacks. Beyond the plain set difference, it includes the phantom
// prefix: broadcast sequence numbers are contiguous from 1, so a peer
// whose INFO starts above our own contiguous prefix proves sequence
// numbers exist that neither its INFO nor ours covers — a prefix the
// peer pruned (under liberation, past its checkpoint). Requesting it
// anyway is what surfaces the checkpoint: the authoritative response
// either serves the data, or reports it pruned and advertises the
// watermark of the snapshot that covers it.
//
// The result is clipped at this host's own pruning floor: a remote
// peer's confirmed view can be arbitrarily stale (INFO exchange is
// periodic and topology-local), and sequence numbers at or below
// prunedTo are held by definition. Without the clip, a stale view
// "proves" missing data this host long since pruned, and the pump's
// source choice can wedge on it — missingFrom non-empty keeps the
// source sticky, while the floor filter keeps the want set empty, so
// no request is ever issued and no other source is ever tried.
func (h *Host) missingFrom(j HostID) seqset.Set {
	missing := h.confirmed[j].Diff(h.info)
	if min := h.confirmed[j].Min(); min > 0 {
		if lo := h.ownPrefix() + 1; min > lo {
			missing.AddRange(lo, min-1)
		}
	}
	missing.Prune(h.prunedTo)
	return missing
}

// pickSyncSource chooses the peer whose confirmed view has the most we
// lack, by (missing count, static order, id) — a deterministic choice
// mirroring attach.go's candidate rule.
func (h *Host) pickSyncSource(now time.Duration, st *syncState) HostID {
	var best HostID
	bestGain := 0
	for _, j := range h.peers {
		if j == h.id || st.excluded[j] || h.suppressed(now, j) {
			continue
		}
		gain := h.missingFrom(j).Len()
		if gain == 0 {
			continue
		}
		switch {
		case best == Nil, gain > bestGain,
			gain == bestGain && h.order[j] > h.order[best],
			gain == bestGain && h.order[j] == h.order[best] && j > best:
			best = j
			bestGain = gain
		}
	}
	return best
}

// handleSyncResp accepts solicited range data. Every part must name a
// sequence number still outstanding on the matching in-flight request;
// anything else — unsolicited parts, duplicate parts, a response to a
// request we never sent — is dropped. The response is authoritative for
// its request, so the request is retired whole; sequence numbers the
// responder could not serve resurface in the next pump round (or are
// covered by the snapshot the responder's watermark advertises).
func (h *Host) handleSyncResp(now time.Duration, from HostID, m Message) {
	st := h.catchup
	if st == nil {
		return
	}
	req, ok := st.inflight[m.Seq]
	if !ok {
		return
	}
	for _, part := range m.Parts {
		if part.Kind != MsgData || part.Seq == 0 {
			continue
		}
		// The solicitation check: only sequence numbers we asked this
		// request for, and have not yet received, are accepted.
		if !req.want.Contains(part.Seq) || req.got.Contains(part.Seq) {
			continue
		}
		req.got.Add(part.Seq)
		h.acceptSyncData(now, from, part.Seq, part.Payload)
	}
	delete(st.inflight, m.Seq)
	// The responder advertises its checkpoint watermark on every
	// response; if it reaches past our contiguous prefix, a snapshot can
	// cover what per-message sync cannot (range sync continues above the
	// watermark in parallel).
	useful := m.CheckLen > 0 && h.snapshotUseful(seqset.Seq(m.CheckLen))
	if useful && !st.snapActive {
		st.snapActive = true
		st.snapFrom = from
		st.snapMark = 0 // learned from the first chunk
		st.snapTotal = 0
		st.snapGot = nil
		st.snapRetries = 0
		h.requestSnapWindow(now, st)
	}
	// A healthy source can still be a dead end: the response is
	// authoritative, so any wanted sequence number it neither served nor
	// reported snapshot-covered (m.Info) is one this source cannot
	// provide — and if its watermark cannot help either, re-asking it
	// next pump round just loops. Rotate: exclude the source for this
	// catch-up cycle so the pump picks a peer that can actually help
	// (the exclusion set clears once every candidate has been tried).
	if unbacked := req.want.Diff(req.got).Diff(m.Info); !unbacked.Empty() && !useful {
		if st.excluded == nil {
			st.excluded = make(map[HostID]bool)
		}
		st.excluded[from] = true
		if st.source == from {
			st.source = Nil
		}
	}
}

// snapshotUseful reports whether installing a checkpoint with the given
// watermark would advance this host's state: the environment can take
// it, and the watermark reaches past our contiguous held prefix (so the
// snapshot covers at least one sequence number we lack).
func (h *Host) snapshotUseful(mark seqset.Seq) bool {
	if _, ok := h.env.(Snapshotter); !ok {
		return false
	}
	return mark > h.ownPrefix()
}

// acceptSyncData is the acceptance path for solicited range data: the
// §4.1 parent-only rule does not apply because the receiver asked for
// exactly this sequence number (the solicitation, not the sender, is
// the authority — the same shape as echo.go's quorum relaxation). Under
// EchoReady the payload still goes through the voting machinery rather
// than being delivered outright.
func (h *Host) acceptSyncData(now time.Duration, from HostID, seq seqset.Seq, payload []byte) {
	h.learnHas(from, seq)
	if seq <= h.prunedTo || h.info.Contains(seq) {
		h.event(now, EvDuplicate, from, seq)
		return
	}
	if h.params.EchoReady {
		h.handleDataEcho(now, from, Message{Kind: MsgData, Seq: seq, Payload: payload, GapFill: true})
		return
	}
	h.info.Add(seq)
	h.store[seq] = append([]byte(nil), payload...)
	h.env.Deliver(seq, h.store[seq])
	h.event(now, EvAccepted, from, seq)
}

// handleSnapChunk verifies and appends one snapshot chunk. Only the
// expected source, the expected watermark/total, and exactly the next
// byte offset are accepted — every accepted chunk extends the verified
// prefix, so a transfer interrupted at any point resumes from
// len(snapGot) and never restarts from zero.
func (h *Host) handleSnapChunk(now time.Duration, from HostID, m Message) {
	st := h.catchup
	if st == nil || !st.snapActive || from != st.snapFrom {
		return
	}
	ivs := m.Info.Intervals()
	if len(ivs) != 1 || ivs[0].Lo != 1 {
		return
	}
	mark := ivs[0].Hi
	total := m.CheckLen
	offset := uint64(m.Seq)
	if total == 0 || total > maxSnapshotBytes || uint64(len(m.Payload)) > total {
		return
	}
	if st.snapTotal == 0 && len(st.snapGot) == 0 {
		// First chunk: adopt the server's watermark and total. A snapshot
		// that no longer advances us (we caught up by other means while the
		// request was in flight) is simply abandoned — the source is
		// healthy, so no failover.
		if !h.snapshotUseful(mark) {
			st.snapActive = false
			st.snapFrom = Nil
			return
		}
		st.snapMark = mark
		st.snapTotal = total
	}
	if mark != st.snapMark || total != st.snapTotal {
		// A different checkpoint than the one mid-transfer: the server
		// refreshed (or we resumed against a stale watermark). Restart
		// this transfer from zero against the same source.
		st.snapGot = nil
		st.snapTotal = 0
		st.snapMark = 0
		st.snapRetries = 0
		h.requestSnapWindow(now, st)
		return
	}
	if offset != uint64(len(st.snapGot)) || offset+uint64(len(m.Payload)) > total {
		return // out-of-order or duplicate chunk; the window re-request recovers
	}
	st.snapGot = append(st.snapGot, m.Payload...)
	st.snapChunks++
	st.snapRetries = 0
	st.snapDeadline = now + h.params.SyncTimeout
	if uint64(len(st.snapGot)) == total {
		h.installSnapshot(now, from, st.snapMark, st.snapGot)
		st.snapActive = false
		st.snapFrom = Nil
		st.snapMark = 0
		st.snapTotal = 0
		st.snapGot = nil
		st.snapChunks = 0
		return
	}
	if st.snapChunks >= h.params.SyncWindow {
		h.requestSnapWindow(now, st)
	}
}

// installSnapshot hands a complete checkpoint to the environment and,
// on success, marks the whole covered prefix [1, mark] as held. The
// prefix enters INFO rather than moving prunedTo directly, so the §6
// duplicate-window argument is untouched: a late copy of any covered
// sequence number hits the info.Contains duplicate check, and the
// pruning floor advances only through pruneStable's guarded path.
func (h *Host) installSnapshot(now time.Duration, from HostID, mark seqset.Seq, data []byte) {
	snap, ok := h.env.(Snapshotter)
	if !ok {
		return
	}
	if mark == 0 || mark <= h.prunedTo {
		return
	}
	if !snap.InstallSnapshot(mark, data) {
		return
	}
	h.info.AddRange(1, mark)
	h.snapInstalls++
	h.event(now, EvSnapshotInstalled, from, mark)
}
