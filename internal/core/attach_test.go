package core_test

import (
	"testing"
	"time"

	"rbcast/internal/core"
	"rbcast/internal/seqset"
)

// fireAttach provokes exactly one periodic activation of the attachment
// procedure and returns the attach requests it produced.
func fireAttach(h *core.Host, env *fakeEnv, at time.Duration) []sentMsg {
	before := len(env.ofKind(core.MsgAttachReq))
	h.Tick(at)
	reqs := env.ofKind(core.MsgAttachReq)
	return reqs[before:]
}

func TestCaseIOption1PrefersInClusterLeaderWithGreaterInfo(t *testing.T) {
	env := &fakeEnv{}
	h := newTestHost(t, 2, quietParams(), env)
	// In-cluster leader 3 with greater INFO; out-of-cluster host 4 with
	// even greater INFO. Option 1 (in-cluster) must win over option 3.
	infoFrom(h, 0, 3, false, 5, core.Nil)
	infoFrom(h, 0, 4, true, 9, core.Nil)
	reqs := fireAttach(h, env, 2*time.Hour)
	if len(reqs) != 1 || reqs[0].to != 3 {
		t.Errorf("attach requests = %v, want one to in-cluster leader 3", reqs)
	}
}

func TestCaseIOption1SkipsNonLeaders(t *testing.T) {
	env := &fakeEnv{}
	h := newTestHost(t, 2, quietParams(), env)
	// Host 3: in-cluster, greater INFO, but its parent 5 is also in our
	// cluster → not a leader → not eligible under option 1 or 2.
	infoFrom(h, 0, 5, false, 0, core.Nil)
	infoFrom(h, 0, 3, false, 5, 5)
	reqs := fireAttach(h, env, 2*time.Hour)
	for _, r := range reqs {
		if r.to == 3 {
			t.Errorf("attached to non-leader 3")
		}
	}
}

func TestCaseIOption2EqualInfoHigherOrder(t *testing.T) {
	env := &fakeEnv{}
	h := newTestHost(t, 3, quietParams(), env)
	// Equal (empty) INFO everywhere. In-cluster leaders: 2 (lower order)
	// and 4 (higher order). Option 2 requires order(i) < order(j), so only
	// 4 qualifies.
	infoFrom(h, 0, 2, false, 0, core.Nil)
	infoFrom(h, 0, 4, false, 0, core.Nil)
	reqs := fireAttach(h, env, 2*time.Hour)
	if len(reqs) != 1 || reqs[0].to != 4 {
		t.Errorf("attach requests = %v, want one to higher-ordered leader 4", reqs)
	}
}

func TestCaseIOption2RespectsCustomOrder(t *testing.T) {
	env := &fakeEnv{}
	h, err := core.NewHost(core.Config{
		ID: 3, Source: 1, Peers: []core.HostID{1, 2, 3, 4},
		// Reverse order: host 2 has the highest order.
		Order:  map[core.HostID]int{1: 40, 2: 30, 3: 20, 4: 10},
		Params: quietParams(),
	}, env)
	if err != nil {
		t.Fatal(err)
	}
	h.Start(0)
	infoFrom(h, 0, 2, false, 0, core.Nil)
	infoFrom(h, 0, 4, false, 0, core.Nil)
	reqs := fireAttach(h, env, 2*time.Hour)
	if len(reqs) != 1 || reqs[0].to != 2 {
		t.Errorf("attach requests = %v, want one to host 2 (highest custom order)", reqs)
	}
}

func TestCaseIOption3OutOfClusterGreaterInfo(t *testing.T) {
	env := &fakeEnv{}
	h := newTestHost(t, 2, quietParams(), env)
	// No in-cluster candidates at all; hosts 4 (INFO 3) and 5 (INFO 8)
	// out of cluster. Option 3 picks the freshest.
	infoFrom(h, 0, 4, true, 3, core.Nil)
	infoFrom(h, 0, 5, true, 8, core.Nil)
	reqs := fireAttach(h, env, 2*time.Hour)
	if len(reqs) != 1 || reqs[0].to != 5 {
		t.Errorf("attach requests = %v, want one to host 5 (greatest INFO)", reqs)
	}
}

func TestCaseINoCandidates(t *testing.T) {
	env := &fakeEnv{}
	h := newTestHost(t, 2, quietParams(), env)
	// Everyone known has equal (empty) INFO and lower order, out of cluster.
	infoFrom(h, 0, 3, true, 0, core.Nil)
	reqs := fireAttach(h, env, 2*time.Hour)
	if len(reqs) != 0 {
		t.Errorf("attach requests = %v, want none", reqs)
	}
	if h.Parent() != core.Nil {
		t.Errorf("parent = %d, want Nil", h.Parent())
	}
}

func TestNeverAttachToSmallerInfo(t *testing.T) {
	env := &fakeEnv{}
	h := newTestHost(t, 2, quietParams(), env)
	// Receive data 1..5 from a parent, then lose the parent.
	now := makeParent(t, h, env, 3)
	for q := seqset.Seq(1); q <= 5; q++ {
		h.HandleMessage(now, 3, true, core.Message{Kind: core.MsgData, Seq: q, Payload: []byte{1}})
	}
	// Host 4 advertises INFO max 2 (< ours); host 5 order is higher but
	// its INFO (empty) is smaller. Neither is eligible even though we are
	// parentless after a timeout.
	infoFrom(h, now, 4, false, 2, core.Nil)
	infoFrom(h, now, 5, false, 0, core.Nil)
	// Drop the parent.
	h.HandleMessage(now, 3, true, core.Message{Kind: core.MsgDetach})
	env.reset()
	// Manually clear parent via detach doesn't NIL it; use timeout path:
	// tick far ahead so ParentTimeout (2h) fires, then attachment runs.
	reqs := fireAttach(h, env, now+3*time.Hour)
	for _, r := range reqs {
		if r.to == 4 || r.to == 5 {
			t.Errorf("attached to host %d with smaller INFO", r.to)
		}
	}
}

func TestCaseIIOption3SwitchesToFresherParent(t *testing.T) {
	env := &fakeEnv{}
	h := newTestHost(t, 2, quietParams(), env)
	now := makeParent(t, h, env, 3) // out-of-cluster parent, INFO 1..10
	// Host 4 (out of cluster) advertises INFO 1..20 — strictly greater
	// than the current parent's 1..10.
	infoFrom(h, now, 4, true, 20, core.Nil)
	reqs := fireAttach(h, env, now+2*time.Hour)
	if len(reqs) != 1 || reqs[0].to != 4 {
		t.Fatalf("attach requests = %v, want one to fresher host 4", reqs)
	}
	// Complete the switch; the old parent gets a detach notice.
	env.reset()
	h.HandleMessage(now+2*time.Hour, 4, true, core.Message{
		Kind: core.MsgAttachAccept, Info: seqset.FromRange(1, 20),
	})
	if h.Parent() != 4 {
		t.Errorf("parent = %d, want 4", h.Parent())
	}
	det := env.ofKind(core.MsgDetach)
	if len(det) != 1 || det[0].to != 3 {
		t.Errorf("old parent not notified: %v", env.sent)
	}
}

func TestCaseIIOption3IgnoresEquallyFreshHosts(t *testing.T) {
	env := &fakeEnv{}
	h := newTestHost(t, 2, quietParams(), env)
	now := makeParent(t, h, env, 3) // parent INFO 1..10
	// Host 4 has the same INFO max as the parent: not strictly greater,
	// so no switch (avoids thrashing between equivalent parents).
	infoFrom(h, now, 4, true, 10, core.Nil)
	reqs := fireAttach(h, env, now+2*time.Hour)
	if len(reqs) != 0 {
		t.Errorf("attach requests = %v, want none", reqs)
	}
}

func TestCaseIIPrefersRejoiningOwnCluster(t *testing.T) {
	env := &fakeEnv{}
	h := newTestHost(t, 2, quietParams(), env)
	now := makeParent(t, h, env, 3) // out-of-cluster parent, INFO 1..10
	// An in-cluster leader 5 appears with greater INFO than ours (ours is
	// empty; we never received data). Options 1–2 run before option 3, so
	// the host rejoins its cluster rather than chasing host 4's INFO 20.
	infoFrom(h, now, 5, false, 12, core.Nil)
	infoFrom(h, now, 4, true, 20, core.Nil)
	reqs := fireAttach(h, env, now+2*time.Hour)
	if len(reqs) != 1 || reqs[0].to != 5 {
		t.Errorf("attach requests = %v, want one to in-cluster leader 5", reqs)
	}
}

func TestCaseIIIAttachesToLeaderAncestor(t *testing.T) {
	env := &fakeEnv{}
	h := newTestHost(t, 2, quietParams(), env)
	// Build: 2's parent is 3 (same cluster), 3's parent is 4 (same
	// cluster), 4 is the cluster leader (its parent 1 is out of cluster).
	infoFrom(h, 0, 3, false, 5, core.Nil) // 3 is an in-cluster leader for now
	reqs := fireAttach(h, env, 2*time.Hour)
	if len(reqs) != 1 || reqs[0].to != 3 {
		t.Fatalf("setup attach = %v, want to 3", reqs)
	}
	now := 2 * time.Hour
	h.HandleMessage(now, 3, false, core.Message{Kind: core.MsgAttachAccept, Info: seqset.FromRange(1, 5)})
	h.Start(now)
	// Gossip: 3's parent is 4 (in cluster), 4's parent is 1 (out of
	// cluster) and 4's INFO is ≥ ours.
	infoFrom(h, now, 3, false, 5, 4)
	infoFrom(h, now, 4, false, 6, 1)
	infoFrom(h, now, 1, true, 6, core.Nil)
	env.reset()
	reqs = fireAttach(h, env, now+2*time.Hour)
	if len(reqs) != 1 || reqs[0].to != 4 {
		t.Errorf("attach requests = %v, want one to leader ancestor 4", reqs)
	}
}

func TestCaseIIIStaysPutWhenParentIsLeader(t *testing.T) {
	env := &fakeEnv{}
	h := newTestHost(t, 2, quietParams(), env)
	infoFrom(h, 0, 3, false, 5, core.Nil)
	reqs := fireAttach(h, env, 2*time.Hour)
	if len(reqs) != 1 || reqs[0].to != 3 {
		t.Fatalf("setup attach = %v", reqs)
	}
	now := 2 * time.Hour
	h.HandleMessage(now, 3, false, core.Message{Kind: core.MsgAttachAccept, Info: seqset.FromRange(1, 5)})
	h.Start(now)
	// 3 is itself the cluster leader (parent 1 out of cluster).
	infoFrom(h, now, 3, false, 5, 1)
	infoFrom(h, now, 1, true, 6, core.Nil)
	env.reset()
	reqs = fireAttach(h, env, now+2*time.Hour)
	if len(reqs) != 0 {
		t.Errorf("attach requests = %v, want none (parent already the leader)", reqs)
	}
}

// buildIntraClusterCycle wires host h into a parent cycle h → a → b → h
// (all same cluster) purely through gossip and handshakes.
func buildIntraClusterCycle(t *testing.T, h *core.Host, env *fakeEnv, a, b core.HostID) time.Duration {
	t.Helper()
	// Step 1: h attaches to a (in-cluster leader with greater INFO).
	infoFrom(h, 0, a, false, 5, core.Nil)
	reqs := fireAttach(h, env, 2*time.Hour)
	if len(reqs) != 1 || reqs[0].to != a {
		t.Fatalf("cycle setup attach = %v, want to %d", reqs, a)
	}
	now := 2 * time.Hour
	h.HandleMessage(now, a, false, core.Message{Kind: core.MsgAttachAccept, Info: seqset.FromRange(1, 5)})
	h.Start(now)
	// Step 2: gossip closes the loop: a's parent is b, b's parent is h.
	infoFrom(h, now, a, false, 5, b)
	infoFrom(h, now, b, false, 5, h.ID())
	return now
}

func TestIntraClusterCycleMaxOrderDetaches(t *testing.T) {
	env := &fakeEnv{}
	// Host 5 has the highest order among {3, 4, 5}.
	h, err := core.NewHost(core.Config{
		ID: 5, Source: 1, Peers: []core.HostID{1, 2, 3, 4, 5},
		Params: quietParams(),
	}, env)
	if err != nil {
		t.Fatal(err)
	}
	h.Start(0)
	var cycleBroken bool
	now := buildIntraClusterCycle(t, h, env, 3, 4)
	env.reset()
	// Observe the break via events: recreate observer by checking state
	// instead — parent must go Nil and a detach must be sent to 3.
	h.Tick(now + 2*time.Hour)
	det := env.ofKind(core.MsgDetach)
	for _, d := range det {
		if d.to == 3 {
			cycleBroken = true
		}
	}
	if !cycleBroken {
		t.Errorf("max-order host did not detach from cycle: %v", env.sent)
	}
}

func TestIntraClusterCycleLowerOrderWaits(t *testing.T) {
	env := &fakeEnv{}
	// Host 2 has the lowest order among {2, 3, 4}: it must NOT detach.
	h := newTestHost(t, 2, quietParams(), env)
	now := buildIntraClusterCycle(t, h, env, 3, 4)
	env.reset()
	h.Tick(now + 2*time.Hour)
	if h.Parent() != 3 {
		t.Errorf("lower-order host detached from cycle; parent = %d", h.Parent())
	}
	for _, d := range env.ofKind(core.MsgDetach) {
		if d.to == 3 {
			t.Errorf("lower-order host sent detach to its parent")
		}
	}
}

func TestAttachTimeoutMovesToNextCandidate(t *testing.T) {
	env := &fakeEnv{}
	p := quietParams()
	p.AttachTimeout = 100 * time.Millisecond
	h := newTestHost(t, 2, p, env)
	// Two out-of-cluster candidates; 5 is fresher so tried first.
	infoFrom(h, 0, 5, true, 8, core.Nil)
	infoFrom(h, 0, 4, true, 3, core.Nil)
	reqs := fireAttach(h, env, 2*time.Hour)
	if len(reqs) != 1 || reqs[0].to != 5 {
		t.Fatalf("first candidate = %v, want 5", reqs)
	}
	// No answer; after the timeout the procedure retries with 5 excluded.
	now := 2*time.Hour + 200*time.Millisecond
	h.Tick(now)
	reqs = env.ofKind(core.MsgAttachReq)
	if len(reqs) != 2 || reqs[1].to != 4 {
		t.Fatalf("requests after timeout = %v, want second to 4", reqs)
	}
	// 4 answers; handshake completes.
	h.HandleMessage(now, 4, true, core.Message{Kind: core.MsgAttachAccept, Info: seqset.FromRange(1, 3)})
	if h.Parent() != 4 {
		t.Errorf("parent = %d, want 4", h.Parent())
	}
}

func TestAttachRejectMovesToNextCandidate(t *testing.T) {
	env := &fakeEnv{}
	h := newTestHost(t, 2, quietParams(), env)
	infoFrom(h, 0, 5, true, 8, core.Nil)
	infoFrom(h, 0, 4, true, 3, core.Nil)
	reqs := fireAttach(h, env, 2*time.Hour)
	if len(reqs) != 1 || reqs[0].to != 5 {
		t.Fatalf("first candidate = %v, want 5", reqs)
	}
	h.HandleMessage(2*time.Hour, 5, true, core.Message{Kind: core.MsgAttachReject})
	reqs = env.ofKind(core.MsgAttachReq)
	if len(reqs) != 2 || reqs[1].to != 4 {
		t.Errorf("requests after reject = %v, want second to 4", reqs)
	}
}

func TestExclusionsClearOnFreshActivation(t *testing.T) {
	env := &fakeEnv{}
	p := quietParams()
	p.AttachTimeout = 100 * time.Millisecond
	h := newTestHost(t, 2, p, env)
	infoFrom(h, 0, 5, true, 8, core.Nil)
	// First activation: request to 5 times out; no other candidate.
	fireAttach(h, env, 2*time.Hour)
	h.Tick(2*time.Hour + 200*time.Millisecond)
	if n := len(env.ofKind(core.MsgAttachReq)); n != 1 {
		t.Fatalf("requests = %d, want 1 (no second candidate)", n)
	}
	// The timeout exhausted every candidate; periodic activations are
	// short-circuited until new evidence arrives.
	h.Tick(2*time.Hour + 200*time.Millisecond + 2*time.Hour)
	if n := len(env.ofKind(core.MsgAttachReq)); n != 1 {
		t.Errorf("requests = %d with exhausted candidates, want 1", n)
	}
	// Any inbound message is new evidence; the next fresh activation
	// clears exclusions and retries 5.
	infoFrom(h, 2*time.Hour+200*time.Millisecond+2*time.Hour, 5, true, 8, core.Nil)
	h.Tick(2*time.Hour + 200*time.Millisecond + 4*time.Hour)
	if n := len(env.ofKind(core.MsgAttachReq)); n != 2 {
		t.Errorf("requests = %d after new evidence, want 2", n)
	}
}

func TestCrossingAttachRequestsYieldByOrder(t *testing.T) {
	env := &fakeEnv{}
	h := newTestHost(t, 2, quietParams(), env)
	// We are requesting 4 (out-of-cluster, fresher).
	infoFrom(h, 0, 4, true, 8, core.Nil)
	reqs := fireAttach(h, env, 2*time.Hour)
	if len(reqs) != 1 || reqs[0].to != 4 {
		t.Fatalf("setup: requests = %v", reqs)
	}
	env.reset()
	// 4's own request crosses ours. We are the lower-ordered host (2 < 4),
	// so we yield: reject their request and wait for their accept.
	h.HandleMessage(2*time.Hour, 4, true, core.Message{Kind: core.MsgAttachReq})
	if rej := env.ofKind(core.MsgAttachReject); len(rej) != 1 || rej[0].to != 4 {
		t.Errorf("crossing request not rejected by lower-order host: %v", env.sent)
	}
	if len(h.Children()) != 0 {
		t.Errorf("children = %v, want none", h.Children())
	}

	// Symmetric case: a host with the higher order accepts.
	env5 := &fakeEnv{}
	h5 := newTestHost(t, 5, quietParams(), env5)
	infoFrom(h5, 0, 4, true, 8, core.Nil)
	reqs = fireAttach(h5, env5, 2*time.Hour)
	if len(reqs) != 1 || reqs[0].to != 4 {
		t.Fatalf("setup: requests = %v", reqs)
	}
	env5.reset()
	h5.HandleMessage(2*time.Hour, 4, true, core.Message{Kind: core.MsgAttachReq})
	if acc := env5.ofKind(core.MsgAttachAccept); len(acc) != 1 || acc[0].to != 4 {
		t.Errorf("higher-order host rejected crossing request: %v", env5.sent)
	}
}

func TestSourceNeverRunsAttachment(t *testing.T) {
	env := &fakeEnv{}
	src := newTestHost(t, 1, quietParams(), env)
	infoFrom(src, 0, 3, false, 50, core.Nil) // tempting candidate
	src.Tick(3 * time.Hour)
	if n := len(env.ofKind(core.MsgAttachReq)); n != 0 {
		t.Errorf("source sent %d attach requests, want 0", n)
	}
	if src.Parent() != core.Nil {
		t.Errorf("source parent = %d, want Nil", src.Parent())
	}
}

func TestCaseIOption4SimilarEscapeAfterBarrenSweeps(t *testing.T) {
	env := &fakeEnv{}
	h := newTestHost(t, 2, quietParams(), env)
	// Catch host 2 up to the watermark through a normal in-cluster
	// parent, then lose that parent to a timeout.
	infoFrom(h, 0, 3, false, 4, core.Nil)
	reqs := fireAttach(h, env, 2*time.Hour)
	if len(reqs) != 1 || reqs[0].to != 3 {
		t.Fatalf("setup attach = %v, want to 3", reqs)
	}
	base := 2 * time.Hour
	h.HandleMessage(base, 3, false, core.Message{Kind: core.MsgAttachAccept, Info: seqset.FromRange(1, 4)})
	for q := seqset.Seq(1); q <= 4; q++ {
		h.HandleMessage(base, 3, false, core.Message{Kind: core.MsgData, Seq: q, Payload: []byte{byte(q)}})
	}
	h.Start(base)
	// Gossip paints the wedge §4.2 cannot resolve: in-cluster peer 3 is
	// our own descendant (never a leader under options 1-2), and
	// cross-cluster host 4 sits at the same watermark, so nobody is
	// strictly greater for option 3.
	infoFrom(h, base, 3, false, 4, 2)
	infoFrom(h, base, 4, true, 4, core.Nil)
	env.reset()
	// The parent times out; the host is detached at the global watermark.
	// The escape must not fire on the detaching tick itself — options 1-3
	// come up empty and the barren gate holds option 4 back.
	h.Tick(base + 3*time.Hour)
	if h.Parent() != core.Nil {
		t.Fatalf("parent = %d after timeout, want Nil", h.Parent())
	}
	if got := env.ofKind(core.MsgAttachReq); len(got) != 0 {
		t.Fatalf("escape engaged on the detaching tick: %v", got)
	}
	// After escapeBarrenSweeps candidate-less sweeps, the similar-INFO
	// cross-cluster escape fires toward the higher-ordered host 4.
	var got []sentMsg
	for i := time.Duration(4); i <= 6 && len(got) == 0; i++ {
		got = fireAttach(h, env, base+i*time.Hour)
	}
	if len(got) != 1 || got[0].to != 4 {
		t.Fatalf("escape attach = %v, want one to host 4", got)
	}
	h.HandleMessage(base+7*time.Hour, 4, true, core.Message{Kind: core.MsgAttachAccept, Info: seqset.FromRange(1, 4)})
	if h.Parent() != 4 {
		t.Errorf("parent = %d after escape handshake, want 4", h.Parent())
	}
}
