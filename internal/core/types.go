// Package core implements the paper's reliable broadcast protocol for
// networks with nonprogrammable servers as a pure, runtime-agnostic state
// machine.
//
// A Host consumes two kinds of input — received messages and clock ticks
// — and produces output exclusively through the Env interface. It has no
// goroutines, no real clocks, and no I/O, so the same implementation runs
// unchanged under the deterministic discrete-event harness
// (internal/harness) and the real-time goroutine runtime (internal/live).
//
// Protocol elements implemented here, by paper section:
//
//   - §4.1 host parent graph and the parent-only acceptance rule for
//     new-maximum data messages;
//   - §4.2 the attachment procedure, Cases I–III with their option lists,
//     the attach request/ack handshake with timeout, and old-parent
//     notification;
//   - §4.3 cycle handling: intra-cluster cycle detection by ancestor walk
//     and the max-order detachment rule; cross-cluster cycles break via
//     Case II option 3; parent-silence timeout;
//   - §4.4 gap filling: on-attach fill by the new parent, relay of
//     received gap fills to parent-graph neighbours, periodic neighbour
//     fills at cluster/remote frequencies, and low-frequency global fill
//     between non-neighbours (leaders only), which resolves the paper's
//     Figure 4.1 scenario;
//   - §2 cluster inference from per-message cost bits;
//   - §6 tunable exchange frequencies and INFO-prefix pruning.
package core

import (
	"fmt"
	"time"

	"rbcast/internal/seqset"
)

// HostID identifies a participating host. IDs are positive; Nil (0)
// denotes "no host", used for nil parent pointers.
type HostID int

// Nil is the null host ID (a NIL parent pointer).
const Nil HostID = 0

// MsgKind enumerates protocol message types.
type MsgKind int

const (
	// MsgData carries one sequence-numbered broadcast message (or a
	// gap-filling redelivery of one).
	MsgData MsgKind = iota + 1
	// MsgInfo is the periodic control exchange: the sender's INFO set and
	// current parent pointer.
	MsgInfo
	// MsgAttachReq asks the destination to adopt the sender as a child;
	// carries the sender's INFO set so the new parent can fill gaps.
	MsgAttachReq
	// MsgAttachAccept confirms adoption; carries the parent's INFO set.
	MsgAttachAccept
	// MsgAttachReject declines adoption.
	MsgAttachReject
	// MsgDetach tells the destination the sender is no longer its child
	// (or, sent by a would-be parent, that the destination is not its
	// child).
	MsgDetach
	// MsgBundle piggybacks several messages to the same destination in
	// one packet — the §6 "fairly obvious optimization". Bundles never
	// nest.
	MsgBundle
	// MsgInfoDelta is a periodic INFO exchange carrying only the runs the
	// sender gained since its last INFO/delta to the same peer, plus a
	// (max, length) checksum of the full set. Sent instead of MsgInfo when
	// Params.DeltaInfo is on and the delta coding is strictly smaller;
	// senders periodically resynchronize with a full MsgInfo.
	MsgInfoDelta
	// MsgEcho is the first voting phase of the optional Bracha-flavoured
	// hardening mode (Params.EchoReady): "I received a data message with
	// this sequence number and this payload digest". Seq carries the
	// sequence number and CheckLen the digest; the payload itself is not
	// repeated.
	MsgEcho
	// MsgReady is the second voting phase of the hardening mode: "enough
	// peers echoed this (sequence, digest) that delivering it is safe".
	// Field usage matches MsgEcho.
	MsgReady
	// MsgSyncReq is a catch-up range request (Params.SyncBatch): Info
	// carries the requested sequence ranges, Seq the request id (the low
	// bound of the first range, echoed back in the response so the
	// requester can match responses to in-flight windows).
	MsgSyncReq
	// MsgSyncResp answers a MsgSyncReq: Parts carries the requested data
	// messages (each a gap-fill MsgData), Info the requested-but-pruned
	// subset the responder no longer stores, Seq echoes the request id,
	// and CheckLen advertises the responder's snapshot watermark so the
	// requester knows a snapshot can cover the pruned prefix.
	MsgSyncResp
	// MsgSnapReq asks for checkpointed state transfer: Seq is the byte
	// offset to resume from (0 starts over) and CheckLen the snapshot
	// watermark being resumed (0 accepts whatever is current).
	MsgSnapReq
	// MsgSnapChunk carries one chunk of a checkpoint: Payload the chunk
	// bytes, Seq the byte offset of the chunk, CheckLen the total
	// snapshot length, and Info the single interval [1, mark] the
	// snapshot covers.
	MsgSnapChunk
)

// String implements fmt.Stringer.
func (k MsgKind) String() string {
	switch k {
	case MsgData:
		return "data"
	case MsgInfo:
		return "info"
	case MsgAttachReq:
		return "attach-req"
	case MsgAttachAccept:
		return "attach-accept"
	case MsgAttachReject:
		return "attach-reject"
	case MsgDetach:
		return "detach"
	case MsgBundle:
		return "bundle"
	case MsgInfoDelta:
		return "info-delta"
	case MsgEcho:
		return "echo"
	case MsgReady:
		return "ready"
	case MsgSyncReq:
		return "sync-req"
	case MsgSyncResp:
		return "sync-resp"
	case MsgSnapReq:
		return "snap-req"
	case MsgSnapChunk:
		return "snap-chunk"
	default:
		return fmt.Sprintf("MsgKind(%d)", int(k))
	}
}

// IsControl reports whether the message kind is control traffic (anything
// that is not a data/gap-fill message). The paper's §5 cost comparison
// distinguishes data from control transmissions.
func (k MsgKind) IsControl() bool { return k != MsgData }

// Message is a host-to-host protocol message. A single struct (with
// fields used per kind) keeps the wire codec and the simulator simple.
type Message struct {
	Kind MsgKind

	// Seq and Payload are set for MsgData. MsgInfoDelta reuses Seq for
	// the maximum of the sender's full INFO set (the checksum's other
	// half, see CheckLen).
	Seq     seqset.Seq
	Payload []byte
	// GapFill marks a MsgData as a redelivery that does not claim
	// parenthood; gap fills may be accepted from any host because they
	// cannot alter the receiver's INFO maximum.
	GapFill bool

	// Info is the sender's INFO set, for MsgInfo, MsgAttachReq, and
	// MsgAttachAccept. For MsgInfoDelta it holds only the delta runs.
	Info seqset.Set
	// Parent is the sender's current parent pointer, for MsgInfo and
	// MsgInfoDelta.
	Parent HostID

	// CheckLen is set for MsgInfoDelta: the member count of the sender's
	// full INFO set. Together with Seq (which a delta reuses for the full
	// set's maximum) it lets the receiver verify its reconstructed view
	// before trusting it for anything beyond monotone union.
	// MsgEcho and MsgReady reuse it for the payload digest being voted on.
	CheckLen uint64

	// Parts holds the piggybacked messages of a MsgBundle, or the batched
	// gap-fill data messages of a MsgSyncResp; the parts themselves are
	// never bundles or sync responses.
	Parts []Message
}

// EventKind enumerates observable protocol events (for tracing, tests,
// and metrics).
type EventKind int

const (
	// EvAccepted: a data message was accepted into INFO and delivered.
	EvAccepted EventKind = iota + 1
	// EvDuplicate: a data message was discarded as already received.
	EvDuplicate
	// EvRejected: a new-maximum data message arrived from a non-parent
	// and was discarded per the §4.1 rule.
	EvRejected
	// EvAttached: the host adopted a new parent.
	EvAttached
	// EvAttachFailed: an attach request timed out or was rejected.
	EvAttachFailed
	// EvParentTimeout: the parent fell silent; parent pointer set to NIL.
	EvParentTimeout
	// EvCycleBroken: the host detected itself on an intra-cluster cycle
	// and, having the highest static order on it, detached.
	EvCycleBroken
	// EvChildAdded: the host adopted a child.
	EvChildAdded
	// EvChildRemoved: a child detached (or was pruned via parent-pointer
	// gossip).
	EvChildRemoved
	// EvPeerSuspected: a peer crossed the consecutive-probe-failure
	// threshold; backoff now gates control traffic toward it.
	EvPeerSuspected
	// EvPeerRecovered: a message arrived from a suspected peer; the
	// suspicion cleared and a fast-resync burst was scheduled.
	EvPeerRecovered
	// EvEquivocation: under Params.EchoReady the host observed two
	// conflicting payload digests for the same sequence number — proof
	// that some host equivocated. Peer names the host whose message
	// exposed the conflict (it carried the later of the two digests, and
	// is not necessarily the equivocator itself).
	EvEquivocation
	// EvSyncRound: the host issued a batch of catch-up range requests
	// (one event per MsgSyncReq sent). Peer names the sync source, Seq
	// the request id.
	EvSyncRound
	// EvSyncFailover: a sync source went silent mid-transfer and the
	// host excluded it and moved to another candidate. Peer names the
	// abandoned source.
	EvSyncFailover
	// EvSnapshotInstalled: the host installed a checkpointed state
	// snapshot covering the prefix [1, Seq], advancing its INFO set and
	// prune floor without per-message replay. Peer names the snapshot
	// server.
	EvSnapshotInstalled
)

// String implements fmt.Stringer.
func (k EventKind) String() string {
	switch k {
	case EvAccepted:
		return "accepted"
	case EvDuplicate:
		return "duplicate"
	case EvRejected:
		return "rejected"
	case EvAttached:
		return "attached"
	case EvAttachFailed:
		return "attach-failed"
	case EvParentTimeout:
		return "parent-timeout"
	case EvCycleBroken:
		return "cycle-broken"
	case EvChildAdded:
		return "child-added"
	case EvChildRemoved:
		return "child-removed"
	case EvPeerSuspected:
		return "peer-suspected"
	case EvPeerRecovered:
		return "peer-recovered"
	case EvEquivocation:
		return "equivocation"
	case EvSyncRound:
		return "sync-round"
	case EvSyncFailover:
		return "sync-failover"
	case EvSnapshotInstalled:
		return "snapshot-installed"
	default:
		return fmt.Sprintf("EventKind(%d)", int(k))
	}
}

// Event is one observable protocol occurrence at a host.
type Event struct {
	At   time.Duration
	Kind EventKind
	Host HostID
	Peer HostID     // counterpart host, if any
	Seq  seqset.Seq // sequence number, for data events
}

// Env is the host's only window on the world. Implementations must be
// owned by whatever runtime drives the host; the host never retains
// slices passed to Send beyond the call.
type Env interface {
	// Send transmits m to host to, best-effort. The network may lose,
	// duplicate, reorder, or arbitrarily delay it.
	Send(to HostID, m Message)
	// Deliver hands an accepted broadcast message to the application.
	// Called exactly once per sequence number per host, in arrival (not
	// necessarily sequence) order — the paper explicitly relaxes ordered
	// delivery.
	Deliver(seq seqset.Seq, payload []byte)
}

// Snapshotter is the optional Env extension behind checkpointed state
// transfer (Params.SnapshotEvery). Runtimes whose application state has
// a commutative, idempotent merge — the paper's §1 motivating replicated
// database — implement it on their Env; the host discovers it by type
// assertion and otherwise runs without snapshots.
type Snapshotter interface {
	// Snapshot returns a deterministic, self-contained encoding of the
	// application state covering every delivery with sequence number
	// ≤ upTo, or ok=false when no snapshot can be produced. The returned
	// bytes must not be mutated afterwards.
	Snapshot(upTo seqset.Seq) (data []byte, ok bool)
	// InstallSnapshot merges a snapshot covering [1, upTo] into the
	// application state, replacing per-message delivery of that prefix.
	// It returns false when the data is unusable (corrupt, wrong
	// version); the host then falls back to per-message sync.
	InstallSnapshot(upTo seqset.Seq, data []byte) bool
}

// Observer receives protocol events; may be nil.
type Observer func(Event)
