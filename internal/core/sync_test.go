package core_test

import (
	"bytes"
	"testing"
	"time"

	"rbcast/internal/core"
	"rbcast/internal/seqset"
)

// snapEnv extends fakeEnv with the Snapshotter contract: Snapshot hands
// out canned bytes and InstallSnapshot records what the host committed.
type snapEnv struct {
	*fakeEnv
	snapData  []byte
	snapOK    bool
	installOK bool
	installed []installCall
}

type installCall struct {
	mark seqset.Seq
	data []byte
}

func (s *snapEnv) Snapshot(upTo seqset.Seq) ([]byte, bool) {
	return s.snapData, s.snapOK
}

func (s *snapEnv) InstallSnapshot(mark seqset.Seq, data []byte) bool {
	s.installed = append(s.installed, installCall{mark: mark, data: append([]byte(nil), data...)})
	return s.installOK
}

// syncParams is quietParams plus a small, fast catch-up configuration so
// targeted tests can drive the pump with single ticks.
func syncParams() core.Params {
	p := quietParams()
	p.SyncBatch = 100
	p.SyncWindow = 2
	p.SyncTimeout = 1 * time.Second
	p.SyncPeriod = 1 * time.Second
	p.SnapshotEvery = 4
	p.SnapChunk = 16
	return p
}

// TestSyncServerAlwaysResponds pins the authoritative-response contract:
// a range request gets exactly one MsgSyncResp — parts for what the
// store holds, nothing for unknown sequence numbers, and an (empty)
// response even when the server can serve none of it.
func TestSyncServerAlwaysResponds(t *testing.T) {
	env := &fakeEnv{}
	h := newTestHost(t, 1, syncParams(), env)
	for i := 0; i < 6; i++ {
		h.Broadcast(0, []byte{byte(i)})
	}
	env.reset()

	h.HandleMessage(time.Second, 2, false, core.Message{
		Kind: core.MsgSyncReq, Seq: 2, Info: seqset.FromSlice([]seqset.Seq{2, 3, 100}),
	})
	resps := env.ofKind(core.MsgSyncResp)
	if len(resps) != 1 {
		t.Fatalf("got %d MsgSyncResp, want 1", len(resps))
	}
	resp := resps[0]
	if resp.to != 2 || resp.m.Seq != 2 {
		t.Errorf("response to %d echoing id %d, want to 2 echoing 2", resp.to, resp.m.Seq)
	}
	if len(resp.m.Parts) != 2 {
		t.Fatalf("got %d parts, want 2 (seqs 2 and 3; 100 is unknown)", len(resp.m.Parts))
	}
	for i, want := range []seqset.Seq{2, 3} {
		part := resp.m.Parts[i]
		if part.Kind != core.MsgData || part.Seq != want || !part.GapFill {
			t.Errorf("part %d = kind %v seq %d gapfill %v, want gap-fill data %d",
				i, part.Kind, part.Seq, part.GapFill, want)
		}
	}
	if !resp.m.Info.Empty() {
		t.Errorf("pruned report %v, want empty (nothing pruned)", resp.m.Info)
	}

	// A request the server can serve nothing of still draws a response:
	// that is what lets the requester retire the request.
	env.reset()
	h.HandleMessage(time.Second, 2, false, core.Message{
		Kind: core.MsgSyncReq, Seq: 50, Info: seqset.FromSlice([]seqset.Seq{50, 60}),
	})
	resps = env.ofKind(core.MsgSyncResp)
	if len(resps) != 1 {
		t.Fatalf("empty-handed server sent %d responses, want 1", len(resps))
	}
	if len(resps[0].m.Parts) != 0 || !resps[0].m.Info.Empty() {
		t.Errorf("empty response carries parts=%d pruned=%v", len(resps[0].m.Parts), resps[0].m.Info)
	}
}

// TestSyncServerPrunedReportAndLiberation drives the server end of the
// liberation story: a checkpointing source prunes past its snapshotted
// prefix even though no peer has confirmed anything (classic §6 pruning
// would pin the floor at zero), and a range request for the pruned
// prefix draws a pruned report plus the checkpoint watermark instead of
// data.
func TestSyncServerPrunedReportAndLiberation(t *testing.T) {
	env := &snapEnv{fakeEnv: &fakeEnv{}, snapData: []byte("checkpoint-bytes"), snapOK: true}
	p := syncParams()
	p.PruneStable = true
	h := newTestHost(t, 1, p, env)
	for i := 0; i < 10; i++ {
		h.Broadcast(0, []byte{byte(i)})
	}
	h.Tick(5 * time.Second)

	if got := h.SyncStats().SnapMark; got != 10 {
		t.Fatalf("snapshot watermark = %d, want 10", got)
	}
	// Liberation: the floor advanced past the snapshotted prefix despite
	// every peer's confirmed view being empty.
	if min := h.Info().Min(); min != 10 {
		t.Fatalf("INFO min = %d, want 10 (prefix 1..9 pruned under liberation)", min)
	}

	env.reset()
	h.HandleMessage(6*time.Second, 2, false, core.Message{
		Kind: core.MsgSyncReq, Seq: 1, Info: seqset.FromSlice([]seqset.Seq{1, 2, 3, 10}),
	})
	resps := env.ofKind(core.MsgSyncResp)
	if len(resps) != 1 {
		t.Fatalf("got %d MsgSyncResp, want 1", len(resps))
	}
	resp := resps[0].m
	if len(resp.Parts) != 1 || resp.Parts[0].Seq != 10 {
		t.Errorf("parts = %v, want exactly seq 10 (the only unpruned member)", resp.Parts)
	}
	if !resp.Info.Equal(seqset.FromSlice([]seqset.Seq{1, 2, 3})) {
		t.Errorf("pruned report = %v, want {1,2,3}", resp.Info)
	}
	if resp.CheckLen != 10 {
		t.Errorf("advertised watermark = %d, want 10", resp.CheckLen)
	}
}

// TestSyncLiberationRequiresSnapshotter pins the safety side of
// liberation: with the snapshot knobs on but an environment that cannot
// produce snapshots, no checkpoint exists, so the pruning floor stays
// conservatively pinned by the unknown peers and no data is dropped.
func TestSyncLiberationRequiresSnapshotter(t *testing.T) {
	env := &fakeEnv{}
	p := syncParams()
	p.PruneStable = true
	h := newTestHost(t, 1, p, env)
	for i := 0; i < 10; i++ {
		h.Broadcast(0, []byte{byte(i)})
	}
	h.Tick(5 * time.Second)

	if got := h.SyncStats().SnapMark; got != 0 {
		t.Fatalf("snapshot watermark = %d, want 0 without a Snapshotter env", got)
	}
	if min := h.Info().Min(); min != 1 {
		t.Errorf("INFO min = %d, want 1 (nothing may be pruned)", min)
	}
	env.reset()
	h.HandleMessage(6*time.Second, 2, false, core.Message{
		Kind: core.MsgSyncReq, Seq: 1, Info: seqset.FromSlice([]seqset.Seq{1}),
	})
	resps := env.ofKind(core.MsgSyncResp)
	if len(resps) != 1 || len(resps[0].m.Parts) != 1 || resps[0].m.Parts[0].Seq != 1 {
		t.Errorf("seq 1 must still be served from the store, got %+v", resps)
	}
}

// TestSyncClientSolicitedOnly pins the solicitation rule: response parts
// are accepted only when they name a sequence number outstanding on the
// matching in-flight request. Unsolicited parts and responses to unknown
// request ids are dropped whole.
func TestSyncClientSolicitedOnly(t *testing.T) {
	env := &fakeEnv{}
	h := newTestHost(t, 2, syncParams(), env)

	// Peer 3's confirmed view proves 1..4 exist.
	h.HandleMessage(5*time.Second, 3, false, core.Message{
		Kind: core.MsgInfo, Info: seqset.FromRange(1, 4), Parent: core.Nil,
	})
	env.reset()
	h.Tick(10 * time.Second)
	reqs := env.ofKind(core.MsgSyncReq)
	if len(reqs) != 1 {
		t.Fatalf("got %d MsgSyncReq, want 1", len(reqs))
	}
	req := reqs[0]
	if req.to != 3 || !req.m.Info.Equal(seqset.FromRange(1, 4)) {
		t.Fatalf("request to %d for %v, want 1..4 to host 3", req.to, req.m.Info)
	}

	// A response to a request id never issued is ignored entirely, even
	// when its parts name wanted sequence numbers.
	h.HandleMessage(10*time.Second, 3, false, core.Message{
		Kind: core.MsgSyncResp, Seq: 999,
		Parts: []core.Message{{Kind: core.MsgData, Seq: 1, Payload: []byte("spoof")}},
	})
	if len(env.delivered) != 0 {
		t.Fatalf("bogus request id delivered %v", env.delivered)
	}

	// The real response: wanted parts are accepted, the unsolicited seq
	// 77 is dropped.
	h.HandleMessage(10*time.Second, 3, false, core.Message{
		Kind: core.MsgSyncResp, Seq: req.m.Seq,
		Parts: []core.Message{
			{Kind: core.MsgData, Seq: 1, Payload: []byte("a")},
			{Kind: core.MsgData, Seq: 77, Payload: []byte("evil")},
			{Kind: core.MsgData, Seq: 2, Payload: []byte("b")},
		},
	})
	want := []seqset.Seq{1, 2}
	if len(env.delivered) != len(want) {
		t.Fatalf("delivered %v, want %v", env.delivered, want)
	}
	for i, q := range want {
		if env.delivered[i] != q {
			t.Errorf("delivered[%d] = %d, want %d", i, env.delivered[i], q)
		}
	}
	if h.Info().Contains(77) {
		t.Error("unsolicited seq 77 entered INFO")
	}
}

// chunkFor builds a well-formed MsgSnapChunk for the given checkpoint.
func chunkFor(mark seqset.Seq, data []byte, offset, size int) core.Message {
	end := offset + size
	if end > len(data) {
		end = len(data)
	}
	return core.Message{
		Kind:     core.MsgSnapChunk,
		Seq:      seqset.Seq(offset),
		Payload:  data[offset:end],
		CheckLen: uint64(len(data)),
		Info:     seqset.FromRange(1, mark),
	}
}

// TestSyncSnapshotResumeFromVerifiedOffset is the pinned resume
// acceptance test: a snapshot transfer interrupted after its first
// verified chunk re-requests from exactly the verified byte offset with
// the in-progress watermark — never from zero — and then completes,
// installing the checkpoint and range-syncing the tail so a healed host
// whose candidates have all pruned past its gap still converges.
func TestSyncSnapshotResumeFromVerifiedOffset(t *testing.T) {
	env := &snapEnv{fakeEnv: &fakeEnv{}, installOK: true}
	h := newTestHost(t, 2, syncParams(), env)
	snapshot := bytes.Repeat([]byte("0123456789"), 4) // 40 bytes, 16-byte chunks

	// Peer 3 joined us to a world where every candidate has pruned past
	// our whole gap: its INFO starts at 96.
	h.HandleMessage(5*time.Second, 3, false, core.Message{
		Kind: core.MsgInfo, Info: seqset.FromRange(96, 100), Parent: core.Nil,
	})
	env.reset()
	h.Tick(10 * time.Second)
	reqs := env.ofKind(core.MsgSyncReq)
	if len(reqs) != 1 {
		t.Fatalf("got %d MsgSyncReq, want 1", len(reqs))
	}
	// The phantom prefix: contiguous numbering from 1 means the peer's
	// pruned prefix 1..95 must be probed even though nobody's INFO
	// mentions it.
	if !reqs[0].m.Info.Equal(seqset.FromRange(1, 100)) {
		t.Fatalf("request for %v, want the full phantom range 1..100", reqs[0].m.Info)
	}

	// The authoritative answer: everything below 96 is pruned, and a
	// checkpoint with watermark 96 covers it.
	env.reset()
	h.HandleMessage(10*time.Second, 3, false, core.Message{
		Kind: core.MsgSyncResp, Seq: reqs[0].m.Seq,
		Info: seqset.FromRange(1, 95), CheckLen: 96,
	})
	snapReqs := env.ofKind(core.MsgSnapReq)
	if len(snapReqs) != 1 {
		t.Fatalf("got %d MsgSnapReq, want 1", len(snapReqs))
	}
	if snapReqs[0].m.Seq != 0 {
		t.Errorf("initial snapshot request offset = %d, want 0", snapReqs[0].m.Seq)
	}

	// First chunk arrives (16 verified bytes), then the source goes
	// silent: the timeout retry must resume at offset 16 under watermark
	// 96 — not restart from zero.
	h.HandleMessage(10*time.Second, 3, false, chunkFor(96, snapshot, 0, 16))
	env.reset()
	h.Tick(12 * time.Second) // past the 1s chunk deadline
	resumes := env.ofKind(core.MsgSnapReq)
	if len(resumes) != 1 {
		t.Fatalf("got %d resume MsgSnapReq, want 1", len(resumes))
	}
	if got := resumes[0].m.Seq; got != 16 {
		t.Fatalf("resume offset = %d, want 16 (the verified prefix)", got)
	}
	if got := resumes[0].m.CheckLen; got != 96 {
		t.Fatalf("resume watermark = %d, want 96", got)
	}
	if got := h.SyncStats().SnapResumes; got != 1 {
		t.Errorf("SnapResumes = %d, want 1", got)
	}

	// The source answers the resume; the transfer completes and installs.
	h.HandleMessage(12*time.Second, 3, false, chunkFor(96, snapshot, 16, 16))
	h.HandleMessage(12*time.Second, 3, false, chunkFor(96, snapshot, 32, 16))
	if len(env.installed) != 1 {
		t.Fatalf("got %d snapshot installs, want 1", len(env.installed))
	}
	if env.installed[0].mark != 96 || !bytes.Equal(env.installed[0].data, snapshot) {
		t.Fatalf("installed mark %d (%d bytes), want mark 96 with the full snapshot",
			env.installed[0].mark, len(env.installed[0].data))
	}
	if !h.Info().ContainsAll(seqset.FromRange(1, 96)) {
		t.Fatal("INFO does not cover the snapshotted prefix 1..96")
	}

	// Range sync now finishes the tail 97..100 (96 came with the
	// snapshot), completing the healed host's convergence.
	env.reset()
	h.Tick(13 * time.Second)
	reqs = env.ofKind(core.MsgSyncReq)
	if len(reqs) != 1 || !reqs[0].m.Info.Equal(seqset.FromRange(97, 100)) {
		t.Fatalf("tail request = %+v, want exactly 97..100", reqs)
	}
	parts := make([]core.Message, 0, 4)
	for q := seqset.Seq(97); q <= 100; q++ {
		parts = append(parts, core.Message{Kind: core.MsgData, Seq: q, Payload: []byte{byte(q)}, GapFill: true})
	}
	h.HandleMessage(13*time.Second, 3, false, core.Message{
		Kind: core.MsgSyncResp, Seq: reqs[0].m.Seq, Parts: parts,
	})
	if !h.Info().ContainsAll(seqset.FromRange(1, 100)) {
		t.Fatalf("healed host did not converge; INFO = %v", h.Info())
	}
}

// TestSyncFailoverPicksNextSource pins source failover: a sync source
// that stays silent through the retry budget is excluded and the pump
// moves to the next candidate.
func TestSyncFailoverPicksNextSource(t *testing.T) {
	env := &fakeEnv{}
	h := newTestHost(t, 2, syncParams(), env)
	h.HandleMessage(5*time.Second, 3, false, core.Message{
		Kind: core.MsgInfo, Info: seqset.FromRange(1, 5), Parent: core.Nil,
	})
	env.reset()
	h.Tick(10 * time.Second)
	if reqs := env.ofKind(core.MsgSyncReq); len(reqs) != 1 || reqs[0].to != 3 {
		t.Fatalf("initial request = %+v, want one to host 3", reqs)
	}

	// Host 3 never answers: three retries, then failover.
	for _, at := range []time.Duration{20, 30, 40, 50} {
		h.Tick(at * time.Second)
	}
	if got := h.SyncStats().Failovers; got != 1 {
		t.Fatalf("Failovers = %d, want 1", got)
	}

	// Host 4 knows strictly more; the pump must move there.
	h.HandleMessage(55*time.Second, 4, false, core.Message{
		Kind: core.MsgInfo, Info: seqset.FromRange(1, 8), Parent: core.Nil,
	})
	env.reset()
	h.Tick(60 * time.Second)
	reqs := env.ofKind(core.MsgSyncReq)
	if len(reqs) != 1 || reqs[0].to != 4 {
		t.Fatalf("post-failover request = %+v, want one to host 4", reqs)
	}
}

// TestSyncPrunePastSnapshotNoDuplicateWindow is the duplicate-window
// property test: after a snapshot install covers a prefix and the
// pruning floor then advances over it (liberation), replaying late
// copies of every covered sequence number — in a scrambled, determinist
// order, via both the gap-fill path and spoofed sync responses — causes
// zero re-deliveries.
func TestSyncPrunePastSnapshotNoDuplicateWindow(t *testing.T) {
	env := &snapEnv{fakeEnv: &fakeEnv{}, snapData: []byte("own-checkpoint"), snapOK: true, installOK: true}
	p := syncParams()
	p.PruneStable = true
	p.SnapChunk = 1024
	h := newTestHost(t, 2, p, env)

	// Catch up from peer 3: parts for the tail 36..40, snapshot for the
	// pruned prefix 1..35 (watermark 36).
	h.HandleMessage(5*time.Second, 3, false, core.Message{
		Kind: core.MsgInfo, Info: seqset.FromRange(36, 40), Parent: core.Nil,
	})
	env.reset()
	h.Tick(10 * time.Second)
	reqs := env.ofKind(core.MsgSyncReq)
	if len(reqs) != 1 {
		t.Fatalf("got %d MsgSyncReq, want 1", len(reqs))
	}
	parts := make([]core.Message, 0, 5)
	for q := seqset.Seq(36); q <= 40; q++ {
		parts = append(parts, core.Message{Kind: core.MsgData, Seq: q, Payload: []byte{byte(q)}, GapFill: true})
	}
	h.HandleMessage(10*time.Second, 3, false, core.Message{
		Kind: core.MsgSyncResp, Seq: reqs[0].m.Seq, Parts: parts,
		Info: seqset.FromRange(1, 35), CheckLen: 36,
	})
	snapshot := bytes.Repeat([]byte("s"), 48)
	h.HandleMessage(10*time.Second, 3, false, chunkFor(36, snapshot, 0, len(snapshot)))
	if got := h.SyncStats().SnapInstalls; got != 1 {
		t.Fatalf("SnapInstalls = %d, want 1", got)
	}
	baseline := len(env.delivered) // the five tail deliveries

	// Next tick: our own checkpoint covers 1..40 and liberation advances
	// the pruning floor over the snapshotted (and delivered) prefix.
	h.Tick(11 * time.Second)
	if min := h.Info().Min(); min != 40 {
		t.Fatalf("INFO min = %d, want 40 (floor advanced past the snapshot)", min)
	}

	// The property: replay late copies of every covered sequence number
	// in a scrambled deterministic order (q -> 17q mod 41 is a bijection
	// on 1..40), through every acceptance path a peer can reach. None may
	// deliver again.
	now := 12 * time.Second
	for i := seqset.Seq(1); i <= 40; i++ {
		q := (i * 17) % 41
		h.HandleMessage(now, 4, false, core.Message{
			Kind: core.MsgData, Seq: q, Payload: []byte("late"), GapFill: true,
		})
		h.HandleMessage(now, 4, false, core.Message{
			Kind: core.MsgData, Seq: q, Payload: []byte("late"),
		})
		h.HandleMessage(now, 4, false, core.Message{
			Kind: core.MsgSyncResp, Seq: q,
			Parts: []core.Message{{Kind: core.MsgData, Seq: q, Payload: []byte("late")}},
		})
	}
	if len(env.delivered) != baseline {
		t.Fatalf("late replays re-delivered: %v (baseline %d)", env.delivered[baseline:], baseline)
	}
	seen := make(map[seqset.Seq]bool)
	for _, q := range env.delivered {
		if seen[q] {
			t.Fatalf("sequence %d delivered twice", q)
		}
		seen[q] = true
	}
}

// TestSyncZeroKnobsNoTraffic pins wire-compatibility at the host level:
// with the sync knobs at their zero values no catch-up message is ever
// emitted, and inbound catch-up kinds are ignored.
func TestSyncZeroKnobsNoTraffic(t *testing.T) {
	env := &fakeEnv{}
	h := newTestHost(t, 2, quietParams(), env)
	h.HandleMessage(5*time.Second, 3, false, core.Message{
		Kind: core.MsgInfo, Info: seqset.FromRange(1, 20), Parent: core.Nil,
	})
	env.reset()
	h.Tick(10 * time.Second)
	h.Tick(20 * time.Second)
	for _, k := range []core.MsgKind{core.MsgSyncReq, core.MsgSyncResp, core.MsgSnapReq, core.MsgSnapChunk} {
		if msgs := env.ofKind(k); len(msgs) != 0 {
			t.Errorf("emitted %d %v with sync disabled", len(msgs), k)
		}
	}
	h.HandleMessage(20*time.Second, 3, false, core.Message{
		Kind: core.MsgSyncResp, Seq: 1,
		Parts: []core.Message{{Kind: core.MsgData, Seq: 1, Payload: []byte("x")}},
	})
	if len(env.delivered) != 0 {
		t.Errorf("disabled host accepted sync data: %v", env.delivered)
	}
}

// TestSyncServerRefreshesStaleCheckpointForInstalledPrefix pins the
// advertise/backing invariant the 200-seed late-joiner soak caught a
// hole in: a host that covered its own gap by installing a peer's
// snapshot advertises the prefix in INFO without stocking the store,
// and its own checkpoint cadence may never run — so a range request
// for that prefix used to draw an empty response with a useless
// watermark, and a requester already at the stale watermark looped
// forever. The server must instead refresh its checkpoint on demand
// and report the requested range as snapshot-covered.
func TestSyncServerRefreshesStaleCheckpointForInstalledPrefix(t *testing.T) {
	env := &snapEnv{fakeEnv: &fakeEnv{}, snapData: []byte("own-checkpoint-bytes"), snapOK: true, installOK: true}
	p := syncParams()
	p.SnapshotEvery = 1000 // own cadence never fires; only on-demand refresh can
	h := newTestHost(t, 2, p, env)

	// Catch the host up via a peer snapshot covering 1..6: range sync
	// surfaces the watermark, the snapshot arrives in one chunk.
	h.HandleMessage(0, 3, false, core.Message{Kind: core.MsgInfo, Info: seqset.FromRange(1, 6)})
	h.Tick(10 * time.Second)
	reqs := env.ofKind(core.MsgSyncReq)
	if len(reqs) != 1 {
		t.Fatalf("got %d MsgSyncReq, want 1", len(reqs))
	}
	h.HandleMessage(11*time.Second, 3, false, core.Message{
		Kind: core.MsgSyncResp, Seq: reqs[0].m.Seq, Info: seqset.FromRange(1, 6), CheckLen: 6,
	})
	peerSnap := []byte("peer-checkpoint")
	h.HandleMessage(11*time.Second, 3, false, chunkFor(6, peerSnap, 0, len(peerSnap)))
	if got := h.SyncStats().SnapInstalls; got != 1 {
		t.Fatalf("snapshot installs = %d, want 1", got)
	}
	if got := h.SyncStats().SnapMark; got != 0 {
		t.Fatalf("own checkpoint watermark = %d before any request, want 0 (cadence gated)", got)
	}

	// The window: INFO covers 1..6, the store holds none of it, the own
	// checkpoint does not exist. A peer's range request for the middle
	// must force a refresh and report the range snapshot-covered.
	env.reset()
	h.HandleMessage(12*time.Second, 4, false, core.Message{
		Kind: core.MsgSyncReq, Seq: 3, Info: seqset.FromSlice([]seqset.Seq{3, 4, 5}),
	})
	resps := env.ofKind(core.MsgSyncResp)
	if len(resps) != 1 || resps[0].to != 4 {
		t.Fatalf("responses = %v, want one to host 4", resps)
	}
	resp := resps[0].m
	if len(resp.Parts) != 0 {
		t.Errorf("served %d parts from an empty store", len(resp.Parts))
	}
	if want := seqset.FromSlice([]seqset.Seq{3, 4, 5}); !resp.Info.Equal(want) {
		t.Errorf("snapshot-covered report = %v, want %v", resp.Info, want)
	}
	if resp.CheckLen != 6 {
		t.Errorf("advertised watermark = %d, want 6 (the refreshed checkpoint)", resp.CheckLen)
	}
	if got := h.SyncStats().SnapMark; got != 6 {
		t.Errorf("own checkpoint watermark = %d after refresh, want 6", got)
	}

	// And the refreshed checkpoint is servable: a snapshot request
	// streams the environment's bytes.
	env.reset()
	h.HandleMessage(13*time.Second, 4, false, core.Message{Kind: core.MsgSnapReq, Seq: 0, CheckLen: 6})
	chunks := env.ofKind(core.MsgSnapChunk)
	if len(chunks) == 0 {
		t.Fatal("refreshed checkpoint not servable: no MsgSnapChunk")
	}
	if !bytes.HasPrefix(env.snapData, chunks[0].m.Payload) || len(chunks[0].m.Payload) == 0 {
		t.Errorf("first chunk %q is not a prefix of the checkpoint %q", chunks[0].m.Payload, env.snapData)
	}
}

// TestSyncStaleConfirmedViewBelowFloorDoesNotWedge pins the missingFrom
// floor clip: a peer's confirmed view can be arbitrarily stale, and one
// that only "proves" data below this host's own pruning floor used to
// win the source pick (largest apparent gain), after which the floor
// filter kept the want set empty — no request ever issued, no other
// source ever tried, and a real gap elsewhere never repaired. Clipped,
// the stale view counts for nothing and the pump goes straight to the
// peer whose view proves data this host actually lacks.
func TestSyncStaleConfirmedViewBelowFloorDoesNotWedge(t *testing.T) {
	env := &snapEnv{fakeEnv: &fakeEnv{}, snapData: []byte("ckpt"), snapOK: true}
	p := syncParams()
	p.PruneStable = true
	h := newTestHost(t, 2, p, env)
	// Catch up on 1..8 via solicited range sync (the parent-only rule
	// does not apply to solicited parts), then checkpoint and liberate.
	h.HandleMessage(0, 3, false, core.Message{Kind: core.MsgInfo, Info: seqset.FromRange(1, 8)})
	h.Tick(5 * time.Second)
	first := env.ofKind(core.MsgSyncReq)
	if len(first) != 1 {
		t.Fatalf("got %d MsgSyncReq for the catch-up, want 1", len(first))
	}
	parts := make([]core.Message, 0, 8)
	for q := seqset.Seq(1); q <= 8; q++ {
		parts = append(parts, core.Message{Kind: core.MsgData, Seq: q, Payload: []byte{byte(q)}, GapFill: true})
	}
	h.HandleMessage(5*time.Second+100*time.Millisecond, 3, false, core.Message{
		Kind: core.MsgSyncResp, Seq: first[0].m.Seq, Parts: parts,
	})
	h.Tick(6 * time.Second) // checkpoint at 8, liberation prunes 1..7
	if got := h.SyncStats().SnapMark; got != 8 {
		t.Fatalf("own checkpoint watermark = %d, want 8", got)
	}
	if got := h.Info().Min(); got != 8 {
		t.Fatalf("INFO min = %d after liberation, want 8", got)
	}

	// Peer 3's view is stale — everything it proves sits below the
	// floor. Peer 4's view proves sequence number 9 exists.
	h.HandleMessage(6*time.Second, 3, false, core.Message{Kind: core.MsgInfo, Info: seqset.FromRange(1, 5)})
	h.HandleMessage(6*time.Second, 4, false, core.Message{Kind: core.MsgInfo, Info: seqset.FromRange(8, 9)})
	env.reset()
	h.Tick(10 * time.Second)
	reqs := env.ofKind(core.MsgSyncReq)
	if len(reqs) != 1 {
		t.Fatalf("got %d MsgSyncReq, want 1 (the wedge issues none)", len(reqs))
	}
	if reqs[0].to != 4 || !reqs[0].m.Info.Equal(seqset.FromSlice([]seqset.Seq{9})) {
		t.Errorf("request to %d for %v, want host 4 for {9}", reqs[0].to, reqs[0].m.Info)
	}
}

// TestSyncRotatesAwayFromUnhelpfulSource pins the healthy-dead-end
// rotation: a source that answers promptly but can neither serve the
// wanted range nor advertise a useful checkpoint used to be re-asked
// every pump round forever (failover only fires on silence). An
// authoritative empty response now excludes the source for the cycle,
// and the next pump tries the peer that can actually help.
func TestSyncRotatesAwayFromUnhelpfulSource(t *testing.T) {
	env := &fakeEnv{}
	h := newTestHost(t, 2, syncParams(), env)
	h.HandleMessage(0, 3, false, core.Message{Kind: core.MsgInfo, Info: seqset.FromRange(1, 4)})
	h.HandleMessage(0, 4, false, core.Message{Kind: core.MsgInfo, Info: seqset.FromRange(1, 3)})
	h.Tick(10 * time.Second)
	reqs := env.ofKind(core.MsgSyncReq)
	if len(reqs) != 1 || reqs[0].to != 3 {
		t.Fatalf("first request = %v, want one to host 3 (largest gain)", reqs)
	}

	// Authoritative nothing: no parts, no snapshot-covered report, no
	// watermark. Host 3 is healthy but cannot help.
	env.reset()
	h.HandleMessage(10*time.Second+500*time.Millisecond, 3, false, core.Message{
		Kind: core.MsgSyncResp, Seq: reqs[0].m.Seq,
	})
	h.Tick(11 * time.Second)
	reqs = env.ofKind(core.MsgSyncReq)
	if len(reqs) != 1 || reqs[0].to != 4 {
		t.Fatalf("after an unhelpful response, requests = %v, want one to host 4", reqs)
	}
	if failovers := h.SyncStats().Failovers; failovers != 0 {
		t.Errorf("failovers = %d, want 0 (rotation is not a failure)", failovers)
	}
}
