package core

import (
	"hash/fnv"
	"slices"
	"time"
)

// This file implements the per-peer health layer: a suspicion-level
// failure detector derived purely from events the state machine already
// sees (messages in, attach-ack timeouts, parent silence), used to
// schedule control traffic adaptively. The paper (§6) frames the whole
// reliability/cost trade-off in terms of fixed exchange frequencies;
// the health layer keeps those frequencies for responsive peers but
// backs off exponentially toward peers that repeatedly fail to answer,
// and snaps back — with an immediate fast-resync burst — the moment a
// suspected peer is heard from again. The layer is disabled (all
// behavior byte-identical to fixed timers) when Params.BackoffBase is
// zero.

// peerHealth is one peer's liveness record.
type peerHealth struct {
	// lastHeard is when any message last arrived from the peer; valid
	// only when everHeard.
	lastHeard time.Duration
	everHeard bool
	// failures counts consecutive unanswered probes: attach-ack
	// timeouts, parent-silence timeouts, and global INFO probes toward a
	// previously-heard peer that drew no message back. Any message from
	// the peer resets it.
	failures int
	// probeSentAt/probePending track the most recent global INFO probe
	// toward a previously-heard peer, so the next probe can tell whether
	// the peer stayed silent through a whole probe interval.
	probeSentAt  time.Duration
	probePending bool
	// nextContact is the earliest instant backoff-gated control traffic
	// (attach attempts, global INFO probes, global gap fills) may be
	// sent toward the peer again. Meaningful only while suspected.
	nextContact time.Duration
	// resync marks a pending fast-resync burst: the peer answered while
	// suspected, so the next tick owes it an INFO exchange and gap fill.
	resync bool
}

// PeerHealth is an exported snapshot of one peer's liveness record.
type PeerHealth struct {
	Peer      HostID
	EverHeard bool
	// LastHeard is when any message last arrived (valid if EverHeard).
	LastHeard time.Duration
	// Failures is the consecutive unanswered-probe count.
	Failures int
	// Suspected reports whether Failures reached Params.SuspicionAfter.
	Suspected bool
	// NextContact is the earliest next backoff-gated send toward the
	// peer (zero when not backing off).
	NextContact time.Duration
}

// backoffEnabled reports whether the health layer gates any traffic.
func (h *Host) backoffEnabled() bool { return h.params.BackoffBase > 0 }

// healthOf returns the peer's record, creating it on first use.
func (h *Host) healthOf(j HostID) *peerHealth {
	ph, ok := h.health[j]
	if !ok {
		ph = &peerHealth{}
		h.health[j] = ph
	}
	return ph
}

// suspectedHealth reports whether a record has crossed the suspicion
// threshold.
func (h *Host) suspectedHealth(ph *peerHealth) bool {
	return h.backoffEnabled() && ph != nil && ph.failures >= h.params.SuspicionAfter
}

// noteHeard records receipt of a message from a peer. Hearing from a
// suspected peer clears the suspicion and schedules a fast-resync burst
// for the next tick, so partition repair is exploited at message
// latency rather than at InfoGlobalPeriod latency.
func (h *Host) noteHeard(now time.Duration, from HostID) {
	ph := h.healthOf(from)
	wasSuspected := h.suspectedHealth(ph)
	ph.lastHeard = now
	ph.everHeard = true
	ph.failures = 0
	ph.nextContact = 0
	ph.probePending = false
	if wasSuspected {
		ph.resync = true
		h.event(now, EvPeerRecovered, from, 0)
	}
}

// noteProbeFailure records one unanswered probe toward a peer (an
// attach-ack timeout, a parent-silence timeout, or a silent global INFO
// probe interval) and, once the suspicion threshold is crossed, arms the
// exponential backoff timer.
func (h *Host) noteProbeFailure(now time.Duration, j HostID) {
	if !h.backoffEnabled() {
		return
	}
	ph := h.healthOf(j)
	ph.failures++
	if ph.failures == h.params.SuspicionAfter {
		h.event(now, EvPeerSuspected, j, 0)
	}
	if ph.failures >= h.params.SuspicionAfter {
		ph.nextContact = now + h.backoffDelay(j, ph.failures)
	}
}

// suppressed reports whether backoff currently gates control traffic
// toward the peer. Unsuspected peers are never suppressed.
func (h *Host) suppressed(now time.Duration, j HostID) bool {
	if !h.backoffEnabled() {
		return false
	}
	ph := h.health[j]
	if !h.suspectedHealth(ph) {
		return false
	}
	return now < ph.nextContact
}

// noteProbeSent records a global INFO probe toward a peer; if the
// previous probe drew no message back, that silence is one probe
// failure. Only previously-heard peers participate: a host that has
// never talked to us (a remote non-leader, silent by design) must not
// be suspected for staying that way.
func (h *Host) noteProbeSent(now time.Duration, j HostID) {
	if !h.backoffEnabled() {
		return
	}
	ph := h.healthOf(j)
	if !ph.everHeard {
		return
	}
	if ph.probePending && ph.lastHeard <= ph.probeSentAt {
		h.noteProbeFailure(now, j)
	}
	ph.probePending = true
	ph.probeSentAt = now
}

// touchSuspect re-arms the backoff timer after gated control traffic
// was actually sent toward a still-suspected peer, so fire-and-forget
// probes (global INFO, global gap fill) honor the backoff interval
// without needing acknowledgment machinery.
func (h *Host) touchSuspect(now time.Duration, j HostID) {
	if !h.backoffEnabled() {
		return
	}
	ph := h.health[j]
	if h.suspectedHealth(ph) {
		ph.nextContact = now + h.backoffDelay(j, ph.failures)
	}
}

// backoffDelay computes the gate interval for the given consecutive
// failure count: BackoffBase doubled (by BackoffMultiplier) per failure
// beyond the suspicion threshold, capped at BackoffMax, minus a
// deterministic seeded jitter of up to a quarter of the interval so
// suspecting hosts do not re-probe in lockstep. All randomness is a
// pure function of (jitter seed, host, peer, failures) — never
// wall-clock or global rand — so simulation runs stay byte-reproducible
// regardless of scheduling.
func (h *Host) backoffDelay(j HostID, failures int) time.Duration {
	d := float64(h.params.BackoffBase)
	limit := float64(h.params.BackoffMax)
	for i := h.params.SuspicionAfter; i < failures && d < limit; i++ {
		d *= h.params.BackoffMultiplier
	}
	if d > limit {
		d = limit
	}
	delay := time.Duration(d)
	if q := delay / 4; q > 0 {
		delay -= time.Duration(jitterHash(h.jitterSeed, h.id, j, failures) % uint64(q))
	}
	return delay
}

// jitterHash is the deterministic jitter source: an FNV-64a digest of
// the seed and the (host, peer, failures) coordinates.
func jitterHash(seed int64, self, peer HostID, failures int) uint64 {
	hash := fnv.New64a()
	var buf [8]byte
	for _, v := range [...]uint64{uint64(seed), uint64(self), uint64(peer), uint64(failures)} {
		for i := range buf {
			buf[i] = byte(v >> (8 * i))
		}
		hash.Write(buf[:])
	}
	return hash.Sum64()
}

// flushResyncs performs the pending fast-resync bursts: one INFO
// exchange plus one gap-fill round toward every peer that answered
// while suspected since the previous tick. Peers are visited in
// ascending ID order for determinism.
func (h *Host) flushResyncs(now time.Duration) {
	if !h.backoffEnabled() {
		return
	}
	var pending []HostID
	for j, ph := range h.health {
		if ph.resync {
			pending = append(pending, j)
		}
	}
	if len(pending) == 0 {
		return
	}
	slices.Sort(pending)
	m := h.infoMessage()
	for _, j := range pending {
		h.health[j].resync = false
		h.noteFullInfoSent(j)
		h.emit(j, m)
		h.fillGapsOf(j)
		h.resyncBursts++
	}
}

// PeerHealthOf returns the health snapshot for one peer.
func (h *Host) PeerHealthOf(j HostID) PeerHealth {
	out := PeerHealth{Peer: j}
	ph, ok := h.health[j]
	if !ok {
		return out
	}
	out.EverHeard = ph.everHeard
	out.LastHeard = ph.lastHeard
	out.Failures = ph.failures
	out.Suspected = h.suspectedHealth(ph)
	out.NextContact = ph.nextContact
	return out
}

// SuspectedPeers returns the currently suspected peers, ascending.
func (h *Host) SuspectedPeers() []HostID {
	var out []HostID
	for j, ph := range h.health {
		if h.suspectedHealth(ph) {
			out = append(out, j)
		}
	}
	slices.Sort(out)
	return out
}

// ResyncBursts counts fast-resync bursts performed so far.
func (h *Host) ResyncBursts() uint64 { return h.resyncBursts }

// SuppressedSends counts control sends skipped because of backoff.
func (h *Host) SuppressedSends() uint64 { return h.suppressedSends }
