package core_test

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"rbcast/internal/core"
	"rbcast/internal/seqset"
)

// This file drives a set of core.Host instances through an adversarial
// in-memory "message soup": every send lands in a pool from which a
// seeded scheduler delivers, duplicates, reorders, or drops messages in
// random order, interleaved with random ticks and random broadcasts.
// It checks safety invariants that must hold under ANY interleaving,
// and — once the adversary stops dropping — liveness (all hosts converge
// on the full message set).

type soupMsg struct {
	from, to core.HostID
	m        core.Message
}

type soup struct {
	rng     *rand.Rand
	pending []soupMsg
	// cheap[pair] decides the cost bit; fixed per run.
	cheap map[[2]core.HostID]bool
	// reachable toggles for partition phases.
	reachable func(a, b core.HostID) bool
	// mangle, when set, rewrites a host's outbound messages before they
	// enter the pool — the soup-level equivalent of the netsim transmit
	// seam. It lets a Byzantine phase equivocate, lie, and replay without
	// the host under test ever executing hostile code.
	mangle func(msg soupMsg) []soupMsg
}

func (s *soup) pairKey(a, b core.HostID) [2]core.HostID {
	if a > b {
		a, b = b, a
	}
	return [2]core.HostID{a, b}
}

// maxPool bounds the message soup; overflow is dropped like congestion
// loss (the protocol tolerates arbitrary loss).
const maxPool = 3000

type soupEnv struct {
	s         *soup
	id        core.HostID
	delivered *seqset.Set
	dups      *int
}

func (e soupEnv) Send(to core.HostID, m core.Message) {
	msgs := []soupMsg{{from: e.id, to: to, m: m}}
	if e.s.mangle != nil {
		msgs = e.s.mangle(msgs[0])
	}
	for _, msg := range msgs {
		if len(e.s.pending) >= maxPool {
			// Evict a random queued message.
			i := e.s.rng.Intn(len(e.s.pending))
			e.s.pending[i] = e.s.pending[len(e.s.pending)-1]
			e.s.pending = e.s.pending[:len(e.s.pending)-1]
		}
		e.s.pending = append(e.s.pending, msg)
	}
}

func (e soupEnv) Deliver(seq seqset.Seq, _ []byte) {
	if !e.delivered.Add(seq) {
		*e.dups++
	}
}

type soupWorld struct {
	s         *soup
	hosts     map[core.HostID]*core.Host
	delivered map[core.HostID]*seqset.Set
	dups      int
	now       time.Duration
	peers     []core.HostID
	source    core.HostID
	sent      seqset.Seq
}

func newSoupWorld(t *testing.T, seed int64, n int, clusters [][]core.HostID) *soupWorld {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	var peers []core.HostID
	for i := 1; i <= n; i++ {
		peers = append(peers, core.HostID(i))
	}
	s := &soup{
		rng:       rng,
		cheap:     make(map[[2]core.HostID]bool),
		reachable: func(a, b core.HostID) bool { return true },
	}
	group := make(map[core.HostID]int)
	for g, hs := range clusters {
		for _, h := range hs {
			group[h] = g + 1
		}
	}
	for i, a := range peers {
		for _, b := range peers[i+1:] {
			s.cheap[s.pairKey(a, b)] = group[a] != 0 && group[a] == group[b]
		}
	}
	// Short periods so a few thousand soup steps cover many cycles.
	params := core.Params{
		TickInterval:      time.Millisecond,
		AttachPeriod:      10 * time.Millisecond,
		InfoClusterPeriod: 5 * time.Millisecond,
		InfoRemotePeriod:  15 * time.Millisecond,
		InfoGlobalPeriod:  25 * time.Millisecond,
		GapClusterPeriod:  8 * time.Millisecond,
		GapRemotePeriod:   20 * time.Millisecond,
		GapGlobalPeriod:   40 * time.Millisecond,
		AttachTimeout:     12 * time.Millisecond,
		ParentTimeout:     60 * time.Millisecond,
		GapFillBatch:      32,
		AttachFillLimit:   64,
	}
	w := &soupWorld{
		s:         s,
		hosts:     make(map[core.HostID]*core.Host, n),
		delivered: make(map[core.HostID]*seqset.Set, n),
		peers:     peers,
		source:    1,
	}
	for _, id := range peers {
		dset := &seqset.Set{}
		w.delivered[id] = dset
		h, err := core.NewHost(core.Config{
			ID: id, Source: w.source, Peers: peers, Params: params,
		}, soupEnv{s: s, id: id, delivered: dset, dups: &w.dups})
		if err != nil {
			t.Fatalf("NewHost(%d): %v", id, err)
		}
		h.Start(0)
		w.hosts[id] = h
	}
	return w
}

// step performs one adversarial action.
func (w *soupWorld) step(dropProb float64) {
	rng := w.s.rng
	switch rng.Intn(10) {
	case 0, 1, 2, 3: // deliver a random pending message
		idx, ok := w.pickDeliverable()
		if !ok {
			w.tickRandom()
			return
		}
		msg := w.s.pending[idx]
		w.s.pending[idx] = w.s.pending[len(w.s.pending)-1]
		w.s.pending = w.s.pending[:len(w.s.pending)-1]
		if rng.Float64() < dropProb {
			return // dropped
		}
		costBit := !w.s.cheap[w.s.pairKey(msg.from, msg.to)]
		if h, ok := w.hosts[msg.to]; ok {
			h.HandleMessage(w.now, msg.from, costBit, msg.m)
			if rng.Float64() < 0.05 { // duplicate delivery
				h.HandleMessage(w.now, msg.from, costBit, msg.m)
			}
		}
	case 4, 5, 6, 7: // tick a random host, advancing time a little
		w.tickRandom()
	case 8: // broadcast
		if w.sent < 60 {
			w.sent++
			w.hosts[w.source].Broadcast(w.now, []byte{byte(w.sent)})
		} else {
			w.tickRandom()
		}
	case 9: // time passes with nothing happening
		w.now += time.Duration(rng.Intn(3)) * time.Millisecond
	}
}

// pickDeliverable returns a random pending message whose endpoints can
// currently communicate. Random probes first, falling back to a scan.
func (w *soupWorld) pickDeliverable() (int, bool) {
	n := len(w.s.pending)
	if n == 0 {
		return 0, false
	}
	for try := 0; try < 8; try++ {
		i := w.s.rng.Intn(n)
		if m := w.s.pending[i]; w.s.reachable(m.from, m.to) {
			return i, true
		}
	}
	start := w.s.rng.Intn(n)
	for k := 0; k < n; k++ {
		i := (start + k) % n
		if m := w.s.pending[i]; w.s.reachable(m.from, m.to) {
			return i, true
		}
	}
	return 0, false
}

func (w *soupWorld) tickRandom() {
	id := w.peers[w.s.rng.Intn(len(w.peers))]
	w.now += time.Duration(w.s.rng.Intn(2)) * time.Millisecond
	w.hosts[id].Tick(w.now)
}

// tickAll advances time and ticks every host once.
func (w *soupWorld) tickAll() {
	w.now += time.Millisecond
	for _, id := range w.peers {
		w.hosts[id].Tick(w.now)
	}
}

// drain delivers every pending message (no drops) and ticks everyone,
// repeatedly, until quiescence or the round budget is exhausted.
func (w *soupWorld) drain(rounds int) {
	for r := 0; r < rounds; r++ {
		for {
			idx, ok := w.pickDeliverable()
			if !ok {
				break
			}
			msg := w.s.pending[idx]
			w.s.pending[idx] = w.s.pending[len(w.s.pending)-1]
			w.s.pending = w.s.pending[:len(w.s.pending)-1]
			costBit := !w.s.cheap[w.s.pairKey(msg.from, msg.to)]
			w.hosts[msg.to].HandleMessage(w.now, msg.from, costBit, msg.m)
		}
		w.tickAll()
	}
}

// settle broadcasts a few fresh messages with full connectivity and
// drains after each. Fresh traffic is what re-attracts detached cluster
// leaders (a leader with an INFO set equal to everyone else's has, per
// the §4.2 options, no one to attach to — only a strictly greater INFO
// set draws it back), so after settle the parent graph must again be a
// tree rooted at the source.
func (w *soupWorld) settle() {
	for k := 0; k < 3; k++ {
		w.sent++
		w.hosts[w.source].Broadcast(w.now, []byte{byte(w.sent)})
		w.drain(150)
	}
	w.drain(100)
}

// checkSafety asserts invariants that must hold at every moment.
func (w *soupWorld) checkSafety(t *testing.T) {
	t.Helper()
	for id, h := range w.hosts {
		// Deliveries are exactly INFO (no duplicate deliveries counted
		// separately; membership must agree).
		if !h.Info().Equal(*w.delivered[id]) {
			t.Fatalf("host %d INFO %v != delivered %v", id, h.Info(), *w.delivered[id])
		}
		// A host never has itself as parent.
		if h.Parent() == id {
			t.Fatalf("host %d is its own parent", id)
		}
		// The source never has a parent.
		if id == w.source && h.Parent() != core.Nil {
			t.Fatalf("source acquired parent %d", h.Parent())
		}
	}
	if w.dups != 0 {
		t.Fatalf("%d duplicate deliveries", w.dups)
	}
}

func TestSoupRandomInterleavings(t *testing.T) {
	clusters := [][]core.HostID{{1, 2, 3}, {4, 5}, {6, 7, 8}}
	for seed := int64(1); seed <= 8; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			w := newSoupWorld(t, seed, 8, clusters)
			for i := 0; i < 4000; i++ {
				w.step(0.15)
				if i%500 == 0 {
					w.checkSafety(t)
				}
			}
			w.checkSafety(t)
			// Adversary relents: fresh traffic plus loss-free drains; every
			// host must converge on the complete set.
			w.settle()
			w.checkSafety(t)
			want := w.sent
			for id, h := range w.hosts {
				info := h.Info()
				if info.Max() != want || info.GapCount() != 0 {
					t.Errorf("host %d did not converge: has %v, want 1..%d", id, info, want)
				}
			}
			// After quiescence with full connectivity, the parent graph must
			// be a tree rooted at the source (no cycles, all reach source).
			for id := range w.hosts {
				cur := id
				steps := 0
				for cur != w.source {
					if cur == core.Nil {
						t.Errorf("host %d ancestry dead-ends at NIL after convergence", id)
						break
					}
					if steps > len(w.peers) {
						t.Errorf("host %d ancestry cycles after convergence", id)
						break
					}
					cur = w.hosts[cur].Parent()
					steps++
				}
			}
		})
	}
}

// TestSoupWithByzantineHost covers the adversarial-input edge: one
// non-source host's outbound traffic is rewritten — per-destination
// payload equivocation, lying INFO sets and parent pointers, empty
// attach-request INFO, and stale-frame replay — while every host keeps
// executing only correct protocol code. The safety invariants
// checkSafety asserts are exactly what the approved-mutator discipline
// (monolint) protects: INFO membership identical to the delivered set,
// no duplicate deliveries, sane parent pointers. They must hold at
// every sampled moment regardless of what arrives on the wire. Once the
// adversary relents, liveness must hold too — lies are forgotten state,
// not poison.
func TestSoupWithByzantineHost(t *testing.T) {
	clusters := [][]core.HostID{{1, 2, 3}, {4, 5, 6}}
	// Whether the adversary relays data frames (the equivocation arm)
	// depends on whether the chaos ever makes it a parent or gap filler,
	// which varies by seed; the activity assertion therefore aggregates
	// across the seed table, while safety and liveness are per seed.
	var forged, infoLies, replays int
	for seed := int64(1); seed <= 4; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			w := newSoupWorld(t, seed, 6, clusters)
			// The adversary sits in the source's cluster, where it actually
			// relays data (as a parent and as a cluster gap filler) — so the
			// payload-equivocation arm genuinely fires.
			const evil = core.HostID(2)
			var history []soupMsg
			forgeData := func(m *core.Message, to core.HostID) {
				if m.Kind == core.MsgData {
					m.Payload = append(append([]byte(nil), m.Payload...), byte(to))
					forged++
				}
			}
			w.s.mangle = func(msg soupMsg) []soupMsg {
				if msg.from != evil {
					return []soupMsg{msg}
				}
				rng := w.s.rng
				out := msg
				switch out.m.Kind {
				case core.MsgData:
					forgeData(&out.m, out.to)
				case core.MsgBundle:
					parts := append([]core.Message(nil), out.m.Parts...)
					for i := range parts {
						forgeData(&parts[i], out.to)
					}
					out.m.Parts = parts
				case core.MsgInfo:
					// Claim a random sub/superset of everything broadcast so
					// far, under a random parent pointer. Every claimed seq
					// exists, so the lie wastes effort without fabricating
					// undeliverable expectations.
					var lie seqset.Set
					for q := seqset.Seq(1); q <= w.sent; q++ {
						if rng.Intn(4) > 0 {
							lie.Add(q)
						}
					}
					out.m.Info = lie
					out.m.Parent = w.peers[rng.Intn(len(w.peers))]
					infoLies++
				case core.MsgAttachReq:
					// Understate INFO so a would-be parent wastes gap fills.
					out.m.Info = seqset.Set{}
					infoLies++
				}
				msgs := []soupMsg{out}
				if len(history) > 0 && rng.Intn(5) == 0 {
					old := history[rng.Intn(len(history))]
					old.to = w.peers[rng.Intn(len(w.peers))]
					if old.to != evil {
						msgs = append(msgs, old)
						replays++
					}
				}
				history = append(history, out)
				if len(history) > 256 {
					history = history[1:]
				}
				return msgs
			}
			for i := 0; i < 4000; i++ {
				w.step(0.15)
				if i%500 == 0 {
					w.checkSafety(t)
				}
			}
			w.checkSafety(t)
			// Adversary relents; with honest traffic restored every host —
			// including the former liar, whose internal state was honest all
			// along — must converge on the complete set.
			w.s.mangle = nil
			w.settle()
			w.checkSafety(t)
			for id, h := range w.hosts {
				info := h.Info()
				if info.Max() != w.sent || info.GapCount() != 0 {
					t.Errorf("host %d did not converge after byzantine phase: %v, want 1..%d",
						id, info, w.sent)
				}
			}
		})
	}
	if forged == 0 || infoLies == 0 || replays == 0 {
		t.Fatalf("adversary idle across all seeds (forged=%d infoLies=%d replays=%d); the run proves nothing",
			forged, infoLies, replays)
	}
}

func TestSoupWithPartitionPhase(t *testing.T) {
	clusters := [][]core.HostID{{1, 2}, {3, 4}}
	w := newSoupWorld(t, 99, 4, clusters)
	// Phase 1: normal chaos.
	for i := 0; i < 1500; i++ {
		w.step(0.1)
	}
	w.checkSafety(t)
	// Phase 2: partition {1,2} from {3,4}.
	group := map[core.HostID]int{1: 1, 2: 1, 3: 2, 4: 2}
	w.s.reachable = func(a, b core.HostID) bool { return group[a] == group[b] }
	for i := 0; i < 1500; i++ {
		w.step(0.1)
	}
	w.checkSafety(t)
	// Phase 3: heal and drain; everyone converges.
	w.s.reachable = func(a, b core.HostID) bool { return true }
	for i := 0; i < 1500; i++ {
		w.step(0)
	}
	w.settle()
	w.checkSafety(t)
	for id, h := range w.hosts {
		info := h.Info()
		if info.Max() != w.sent || info.GapCount() != 0 {
			t.Errorf("host %d did not converge after partition: %v, want 1..%d", id, info, w.sent)
		}
	}
}
