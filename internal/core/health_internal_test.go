package core

import (
	"testing"
	"time"

	"rbcast/internal/seqset"
)

// White-box coverage of the backoff arithmetic: growth, cap, and the
// deterministic seeded jitter.

func delayHost(t *testing.T, seed int64) *Host {
	t.Helper()
	p := DefaultParams()
	p.BackoffBase = time.Second
	p.BackoffMax = 8 * time.Second
	p.BackoffMultiplier = 2
	p.SuspicionAfter = 2
	h, err := NewHost(Config{
		ID: 2, Source: 1, Peers: []HostID{1, 2, 3},
		Params: p, JitterSeed: seed,
	}, nopEnv{})
	if err != nil {
		t.Fatal(err)
	}
	return h
}

type nopEnv struct{}

func (nopEnv) Send(HostID, Message)       {}
func (nopEnv) Deliver(seqset.Seq, []byte) {}

func TestBackoffDelayGrowsAndCaps(t *testing.T) {
	h := delayHost(t, 42)
	prev := time.Duration(0)
	for f := 2; f <= 8; f++ {
		d := h.backoffDelay(3, f)
		// Jitter subtracts at most a quarter: the delay stays within
		// (3/4·nominal, nominal] and never exceeds BackoffMax.
		nominal := time.Second << (f - 2)
		if nominal > 8*time.Second {
			nominal = 8 * time.Second
		}
		if d > nominal || d <= nominal*3/4 {
			t.Errorf("failures=%d: delay %v outside (3/4·%v, %v]", f, d, nominal, nominal)
		}
		if f <= 5 && d <= prev {
			t.Errorf("failures=%d: delay %v did not grow past %v", f, d, prev)
		}
		prev = d
	}
}

func TestBackoffDelayDeterministicPerSeed(t *testing.T) {
	a, b := delayHost(t, 7), delayHost(t, 7)
	for f := 2; f <= 6; f++ {
		if da, db := a.backoffDelay(3, f), b.backoffDelay(3, f); da != db {
			t.Errorf("failures=%d: same seed gave %v and %v", f, da, db)
		}
	}
	// Different coordinates should (for this seed) desynchronize peers.
	h := delayHost(t, 7)
	if h.backoffDelay(1, 4) == h.backoffDelay(3, 4) {
		t.Error("jitter identical across peers; hosts would re-probe in lockstep")
	}
}

func TestJitterHashIgnoresNothing(t *testing.T) {
	base := jitterHash(1, 2, 3, 4)
	for name, v := range map[string]uint64{
		"seed":     jitterHash(2, 2, 3, 4),
		"self":     jitterHash(1, 9, 3, 4),
		"peer":     jitterHash(1, 2, 9, 4),
		"failures": jitterHash(1, 2, 3, 9),
	} {
		if v == base {
			t.Errorf("jitterHash insensitive to %s", name)
		}
	}
}
