package core

import (
	"errors"
	"fmt"
	"time"
)

// ClusterMode selects how CLUSTER_i is maintained. The paper's §6
// discusses all three: dynamic inference from cost bits (the default and
// the best performer), static knowledge supplied at start (usable "albeit
// with less satisfying performance results" once the network drifts from
// it), and no knowledge at all (every host assumes it is alone in its
// cluster; the algorithm still works).
type ClusterMode int

const (
	// ClusterDynamic infers membership from per-message cost bits (§4.2).
	ClusterDynamic ClusterMode = iota
	// ClusterStatic freezes CLUSTER at the Config.InitialCluster seed.
	ClusterStatic
	// ClusterNone freezes CLUSTER at {self}.
	ClusterNone
)

// String implements fmt.Stringer.
func (m ClusterMode) String() string {
	switch m {
	case ClusterDynamic:
		return "dynamic"
	case ClusterStatic:
		return "static"
	case ClusterNone:
		return "none"
	default:
		return fmt.Sprintf("ClusterMode(%d)", int(m))
	}
}

// Params are the protocol's tunables. The paper (§6) frames the
// reliability/cost trade-off entirely in terms of these frequencies: the
// more often hosts exchange INFO sets, parent pointers, and gap fills,
// the faster they exploit transient communication opportunities — and the
// more control traffic they pay for it.
type Params struct {
	// TickInterval is the granularity at which the runtime calls
	// Host.Tick. All periods below are rounded up to it in effect.
	TickInterval time.Duration

	// AttachPeriod is how often the attachment procedure (§4.2) is
	// activated at each host.
	AttachPeriod time.Duration

	// InfoClusterPeriod is the period of the routine INFO + parent
	// pointer exchange among hosts of the same cluster.
	InfoClusterPeriod time.Duration
	// InfoRemotePeriod is the period of INFO exchange with parent-graph
	// neighbours in other clusters (a cluster leader and its remote
	// parent/children keep each other current at this rate).
	InfoRemotePeriod time.Duration
	// InfoGlobalPeriod is the period at which cluster leaders (and the
	// source) advertise their INFO to all non-cluster, non-neighbour
	// hosts. This is the "probe" that detects partition repairs; per the
	// paper's §5 discussion only roots/leaders perform it.
	InfoGlobalPeriod time.Duration

	// GapClusterPeriod is the period of gap filling towards parent-graph
	// neighbours in the same cluster.
	GapClusterPeriod time.Duration
	// GapRemotePeriod is the period of gap filling towards parent-graph
	// neighbours in other clusters.
	GapRemotePeriod time.Duration
	// GapGlobalPeriod is the period of the §4.4 non-neighbour gap fill
	// performed by cluster leaders across cluster boundaries (the
	// mechanism that resolves the paper's Figure 4.1 scenario).
	GapGlobalPeriod time.Duration

	// AttachTimeout bounds the wait for an attach acknowledgment before
	// the host moves to the next candidate.
	AttachTimeout time.Duration
	// ParentTimeout is how long a parent may stay silent before the host
	// sets its parent pointer to NIL and searches anew.
	ParentTimeout time.Duration

	// GapFillBatch caps the number of gap-fill data messages sent to one
	// target in one round.
	GapFillBatch int
	// AttachFillLimit caps the number of missing messages a new parent
	// forwards immediately on accepting a child; the periodic neighbour
	// gap fill delivers the rest.
	AttachFillLimit int

	// PruneStable enables §6 INFO-set pruning: sequence numbers known (via
	// MAP) to be held by every participant are dropped from INFO and the
	// message store.
	PruneStable bool

	// ClusterMode selects dynamic (default), static, or no cluster
	// knowledge; see the ClusterMode docs.
	ClusterMode ClusterMode

	// Piggyback enables the §6 packet optimization: all messages a host
	// emits to one destination within a single activation (one received
	// message or one clock tick) travel as one bundled packet.
	Piggyback bool

	// DisableNonNeighborGapFill turns off the §4.4 extension that lets
	// hosts fill gaps of non-parent-graph-neighbours across cluster
	// boundaries. It exists as an ablation knob: the paper's Figure 4.1
	// argues the extension is necessary, and the F4.1 experiment
	// demonstrates it by running with and without.
	DisableNonNeighborGapFill bool

	// DeltaInfo enables the delta INFO optimization: periodic INFO
	// advertisements carry only the runs gained since the last
	// advertisement to the same peer (as MsgInfoDelta, with a full-set
	// checksum), whenever that coding is smaller on the wire; full sets
	// are sent for resynchronization. Receivers merge deltas
	// monotonically and promote the reconstructed view only on a
	// checksum match, so lost or reordered deltas degrade freshness,
	// never correctness. The zero value keeps every INFO exchange a full
	// MsgInfo — byte-identical to the plain paper protocol.
	DeltaInfo bool

	// EchoReady enables the optional Bracha-flavoured hardening mode: a
	// data message is delivered only once the host has seen an echo
	// quorum ((n+f)/2+1 matching payload-digest votes) amplified into
	// 2f+1 ready votes, where n is the participant count and f the
	// assumed Byzantine budget (EchoMaxFaulty). This preserves agreement
	// among correct hosts when up to f hosts equivocate — at the price of
	// O(n) extra control messages per broadcast and extra delivery
	// latency. The zero value runs the plain paper protocol with a
	// byte-identical wire and schedule.
	EchoReady bool
	// EchoMaxFaulty is the assumed Byzantine budget f for EchoReady
	// quorum sizing. Zero means ⌊(n−1)/3⌋, the classical maximum. Only
	// meaningful (and only valid nonzero) when EchoReady is on.
	EchoMaxFaulty int

	// BackoffBase enables the per-peer health layer when positive: a
	// peer that fails SuspicionAfter consecutive probes (attach-ack
	// timeouts, parent-silence timeouts) becomes suspected, and
	// backoff-gated control traffic toward it (attach attempts, leader
	// global INFO probes, global gap fills) is sent no more often than
	// an exponentially growing interval starting at BackoffBase. Zero
	// disables the layer entirely; all scheduling is then exactly the
	// fixed-rate behavior of the plain paper protocol.
	BackoffBase time.Duration
	// BackoffMax caps the backoff interval.
	BackoffMax time.Duration
	// BackoffMultiplier grows the interval per failure past the
	// threshold (≥ 1; 2 doubles).
	BackoffMultiplier float64
	// SuspicionAfter is the consecutive-failure count at which a peer
	// becomes suspected (≥ 1 when the layer is enabled).
	SuspicionAfter int

	// SyncBatch enables the catch-up range-sync layer when positive: a
	// host that is missing data a peer's confirmed view proves exists
	// pulls it with batched MsgSyncReq range requests of at most
	// SyncBatch sequence numbers each, instead of waiting for the
	// periodic per-message gap fill. Zero disables the layer entirely;
	// every schedule and wire byte is then exactly the plain protocol.
	SyncBatch int
	// SyncWindow caps the number of range requests kept in flight toward
	// the sync source at once (the downloader-style pipeline depth);
	// ≥ 1 when the sync layer is enabled.
	SyncWindow int
	// SyncTimeout bounds the wait for a MsgSyncResp (or the next
	// MsgSnapChunk) before the request is retried; repeated timeouts
	// count as probe failures for the health/backoff layer and
	// eventually fail the source over. Positive when the sync layer is
	// enabled.
	SyncTimeout time.Duration
	// SyncPeriod is how often the sync pump re-evaluates missing data
	// and issues new range requests. Positive when the sync layer is
	// enabled.
	SyncPeriod time.Duration

	// SnapshotEvery enables checkpointing when positive: each time the
	// host's delivered prefix has advanced by at least SnapshotEvery
	// sequence numbers since the last checkpoint, it asks its
	// environment (if it implements Snapshotter) for a fresh snapshot.
	// Peers whose gap has been pruned away everywhere then catch up by
	// chunked snapshot transfer instead of per-message replay. Requires
	// the sync layer (SyncBatch > 0).
	SnapshotEvery int
	// SnapChunk is the maximum snapshot chunk payload size in bytes for
	// MsgSnapChunk transfers; ≥ 1 when SnapshotEvery is on.
	SnapChunk int
}

// MaxEchoFaulty caps an explicit EchoMaxFaulty budget. Quorum sizing in
// echo.go computes (n+f)/2+1 and 2f+1; bounding f keeps that arithmetic
// provably overflow-free for every admitted parameter combination
// (quorumlint discharges the proof over exactly this range) while
// sitting far above any plausible deployment — f is classically at most
// ⌊(n−1)/3⌋, and no simulated network approaches a million hosts.
const MaxEchoFaulty = 1 << 20

// BackoffEnabled reports whether the per-peer health/backoff layer is
// active. The zero value of the backoff fields leaves scheduling
// byte-identical to the fixed-rate protocol.
func (p Params) BackoffEnabled() bool { return p.BackoffBase > 0 }

// WithBackoff returns p with the health/backoff layer enabled at the
// reference tuning: suspicion after 2 consecutive probe failures,
// backoff starting at InfoGlobalPeriod, doubling, capped at 8× the
// base.
func (p Params) WithBackoff() Params {
	p.BackoffBase = p.InfoGlobalPeriod
	p.BackoffMax = 8 * p.InfoGlobalPeriod
	p.BackoffMultiplier = 2
	p.SuspicionAfter = 2
	return p
}

// SyncEnabled reports whether the catch-up range-sync layer is active.
// The zero value of the sync fields leaves every schedule and wire byte
// identical to the plain protocol.
func (p Params) SyncEnabled() bool { return p.SyncBatch > 0 }

// SnapshotsEnabled reports whether periodic checkpointing (and with it
// chunked snapshot transfer) is active.
func (p Params) SnapshotsEnabled() bool { return p.SyncEnabled() && p.SnapshotEvery > 0 }

// WithCatchupSync returns p with the catch-up sync and checkpointing
// layers enabled at the reference tuning: 64-sequence range batches, a
// 4-request pipeline, request timeouts at twice the remote INFO period,
// the pump clocked at the remote gap-fill period, a checkpoint every 32
// delivered sequence numbers, and 4 KiB snapshot chunks.
func (p Params) WithCatchupSync() Params {
	p.SyncBatch = 64
	p.SyncWindow = 4
	p.SyncTimeout = 2 * p.InfoRemotePeriod
	p.SyncPeriod = p.GapRemotePeriod
	p.SnapshotEvery = 32
	p.SnapChunk = 4096
	return p
}

// DefaultParams returns the reference tuning, sized for the simulator's
// default link delays (1 ms cheap, 30 ms expensive).
func DefaultParams() Params {
	return Params{
		TickInterval:      25 * time.Millisecond,
		AttachPeriod:      250 * time.Millisecond,
		InfoClusterPeriod: 100 * time.Millisecond,
		InfoRemotePeriod:  400 * time.Millisecond,
		InfoGlobalPeriod:  800 * time.Millisecond,
		GapClusterPeriod:  150 * time.Millisecond,
		GapRemotePeriod:   500 * time.Millisecond,
		GapGlobalPeriod:   1200 * time.Millisecond,
		AttachTimeout:     300 * time.Millisecond,
		ParentTimeout:     1500 * time.Millisecond,
		GapFillBatch:      64,
		AttachFillLimit:   256,
	}
}

// Validate reports the first problem with p, or nil.
func (p Params) Validate() error {
	type field struct {
		name string
		d    time.Duration
	}
	for _, f := range []field{
		{"TickInterval", p.TickInterval},
		{"AttachPeriod", p.AttachPeriod},
		{"InfoClusterPeriod", p.InfoClusterPeriod},
		{"InfoRemotePeriod", p.InfoRemotePeriod},
		{"InfoGlobalPeriod", p.InfoGlobalPeriod},
		{"GapClusterPeriod", p.GapClusterPeriod},
		{"GapRemotePeriod", p.GapRemotePeriod},
		{"GapGlobalPeriod", p.GapGlobalPeriod},
		{"AttachTimeout", p.AttachTimeout},
		{"ParentTimeout", p.ParentTimeout},
	} {
		if f.d <= 0 {
			return fmt.Errorf("core: %s must be positive, got %v", f.name, f.d)
		}
	}
	if p.GapFillBatch <= 0 {
		return fmt.Errorf("core: GapFillBatch must be positive, got %d", p.GapFillBatch)
	}
	if p.AttachFillLimit <= 0 {
		return fmt.Errorf("core: AttachFillLimit must be positive, got %d", p.AttachFillLimit)
	}
	if p.ParentTimeout <= p.InfoClusterPeriod {
		return errors.New("core: ParentTimeout must exceed InfoClusterPeriod or in-cluster parents flap")
	}
	switch p.ClusterMode {
	case ClusterDynamic, ClusterStatic, ClusterNone:
	default:
		return fmt.Errorf("core: unknown ClusterMode %d", int(p.ClusterMode))
	}
	if p.EchoMaxFaulty < 0 {
		return fmt.Errorf("core: EchoMaxFaulty must be ≥ 0, got %d", p.EchoMaxFaulty)
	}
	if p.EchoMaxFaulty > MaxEchoFaulty {
		return fmt.Errorf("core: EchoMaxFaulty must be ≤ %d, got %d", MaxEchoFaulty, p.EchoMaxFaulty)
	}
	if p.EchoMaxFaulty > 0 && !p.EchoReady {
		return errors.New("core: EchoMaxFaulty set without EchoReady")
	}
	if p.BackoffBase != 0 || p.BackoffMax != 0 || p.BackoffMultiplier != 0 || p.SuspicionAfter != 0 {
		if p.BackoffBase <= 0 {
			return fmt.Errorf("core: BackoffBase must be positive when backoff is configured, got %v", p.BackoffBase)
		}
		if p.BackoffMax < p.BackoffBase {
			return fmt.Errorf("core: BackoffMax %v must be ≥ BackoffBase %v", p.BackoffMax, p.BackoffBase)
		}
		if p.BackoffMultiplier < 1 {
			return fmt.Errorf("core: BackoffMultiplier must be ≥ 1, got %v", p.BackoffMultiplier)
		}
		if p.SuspicionAfter < 1 {
			return fmt.Errorf("core: SuspicionAfter must be ≥ 1, got %d", p.SuspicionAfter)
		}
	}
	if p.SyncBatch != 0 || p.SyncWindow != 0 || p.SyncTimeout != 0 || p.SyncPeriod != 0 {
		if p.SyncBatch < 1 {
			return fmt.Errorf("core: SyncBatch must be ≥ 1 when sync is configured, got %d", p.SyncBatch)
		}
		if p.SyncWindow < 1 {
			return fmt.Errorf("core: SyncWindow must be ≥ 1 when sync is configured, got %d", p.SyncWindow)
		}
		if p.SyncTimeout <= 0 {
			return fmt.Errorf("core: SyncTimeout must be positive when sync is configured, got %v", p.SyncTimeout)
		}
		if p.SyncPeriod <= 0 {
			return fmt.Errorf("core: SyncPeriod must be positive when sync is configured, got %v", p.SyncPeriod)
		}
	}
	if p.SnapshotEvery != 0 || p.SnapChunk != 0 {
		if p.SnapshotEvery < 1 {
			return fmt.Errorf("core: SnapshotEvery must be ≥ 1 when snapshots are configured, got %d", p.SnapshotEvery)
		}
		if p.SnapChunk < 1 {
			return fmt.Errorf("core: SnapChunk must be ≥ 1 when snapshots are configured, got %d", p.SnapChunk)
		}
		if !p.SyncEnabled() {
			return errors.New("core: SnapshotEvery requires the sync layer (SyncBatch > 0)")
		}
	}
	return nil
}

// Config assembles everything a Host needs at construction.
type Config struct {
	// ID is this host's identity; must appear in Peers.
	ID HostID
	// Source is the broadcast source's identity; must appear in Peers.
	// The host with ID == Source generates messages and never runs the
	// attachment procedure.
	Source HostID
	// Peers lists every participating host, including ID and Source. The
	// paper assumes hosts know the identities of all participants.
	Peers []HostID
	// Order optionally overrides the static linear order; when nil,
	// order(i) = int(i). Every peer must have a distinct order.
	Order map[HostID]int
	// InitialCluster optionally seeds CLUSTER with static knowledge
	// (§6); the host's own ID is always included.
	InitialCluster []HostID
	// Params tunes the protocol; zero value means DefaultParams.
	Params Params
	// JitterSeed seeds the deterministic backoff jitter. Runtimes that
	// care about reproducibility (the simulation harness) pass their
	// scenario seed; zero is a valid seed.
	JitterSeed int64
	// Observer receives protocol events; may be nil.
	Observer Observer
}

func (c Config) validate() error {
	if c.ID <= 0 {
		return fmt.Errorf("core: invalid host id %d", c.ID)
	}
	if c.Source <= 0 {
		return fmt.Errorf("core: invalid source id %d", c.Source)
	}
	var haveSelf, haveSource bool
	seen := make(map[HostID]bool, len(c.Peers))
	orders := make(map[int]HostID, len(c.Peers))
	for _, p := range c.Peers {
		if p <= 0 {
			return fmt.Errorf("core: invalid peer id %d", p)
		}
		if seen[p] {
			return fmt.Errorf("core: duplicate peer %d", p)
		}
		seen[p] = true
		if p == c.ID {
			haveSelf = true
		}
		if p == c.Source {
			haveSource = true
		}
		o := int(p)
		if c.Order != nil {
			var ok bool
			if o, ok = c.Order[p]; !ok {
				return fmt.Errorf("core: peer %d missing from Order", p)
			}
		}
		if prev, dup := orders[o]; dup {
			return fmt.Errorf("core: peers %d and %d share order %d", prev, p, o)
		}
		orders[o] = p
	}
	if !haveSelf {
		return fmt.Errorf("core: host %d not in Peers", c.ID)
	}
	if !haveSource {
		return fmt.Errorf("core: source %d not in Peers", c.Source)
	}
	return nil
}
