package core_test

import (
	"testing"
	"time"

	"rbcast/internal/core"
	"rbcast/internal/seqset"
)

type sentMsg struct {
	to core.HostID
	m  core.Message
}

type fakeEnv struct {
	sent      []sentMsg
	delivered []seqset.Seq
}

func (f *fakeEnv) Send(to core.HostID, m core.Message) {
	f.sent = append(f.sent, sentMsg{to: to, m: m})
}

func (f *fakeEnv) Deliver(seq seqset.Seq, _ []byte) {
	f.delivered = append(f.delivered, seq)
}

// ofKind returns sent messages of the given kind, looking inside bundled
// packets so assertions work with piggybacking on or off.
func (f *fakeEnv) ofKind(k core.MsgKind) []sentMsg {
	var out []sentMsg
	for _, s := range f.sent {
		if s.m.Kind == core.MsgBundle {
			for _, part := range s.m.Parts {
				if part.Kind == k {
					out = append(out, sentMsg{to: s.to, m: part})
				}
			}
			continue
		}
		if s.m.Kind == k {
			out = append(out, s)
		}
	}
	return out
}

func (f *fakeEnv) reset() { f.sent = nil; f.delivered = nil }

// quietParams puts every periodic activity far in the future so targeted
// tests see only the traffic they provoke.
func quietParams() core.Params {
	p := core.DefaultParams()
	hour := time.Hour
	p.InfoClusterPeriod = hour
	p.InfoRemotePeriod = hour
	p.InfoGlobalPeriod = hour
	p.GapClusterPeriod = hour
	p.GapRemotePeriod = hour
	p.GapGlobalPeriod = hour
	p.AttachPeriod = hour
	p.ParentTimeout = 2 * hour
	return p
}

func newTestHost(t *testing.T, id core.HostID, params core.Params, env core.Env) *core.Host {
	t.Helper()
	h, err := core.NewHost(core.Config{
		ID:     id,
		Source: 1,
		Peers:  []core.HostID{1, 2, 3, 4, 5},
		Params: params,
	}, env)
	if err != nil {
		t.Fatalf("NewHost: %v", err)
	}
	h.Start(0)
	return h
}

// infoFrom injects an Info message from peer j carrying the given INFO
// max (as a 1..max range) and parent pointer; costBit controls cluster
// inference.
func infoFrom(h *core.Host, now time.Duration, j core.HostID, costBit bool, infoMax seqset.Seq, parent core.HostID) {
	var s seqset.Set
	if infoMax > 0 {
		s = seqset.FromRange(1, infoMax)
	}
	h.HandleMessage(now, j, costBit, core.Message{Kind: core.MsgInfo, Info: s, Parent: parent})
}

func TestConfigValidation(t *testing.T) {
	env := &fakeEnv{}
	cases := []struct {
		name string
		cfg  core.Config
	}{
		{"zero id", core.Config{ID: 0, Source: 1, Peers: []core.HostID{1}}},
		{"self not in peers", core.Config{ID: 2, Source: 1, Peers: []core.HostID{1, 3}}},
		{"source not in peers", core.Config{ID: 2, Source: 1, Peers: []core.HostID{2, 3}}},
		{"duplicate peers", core.Config{ID: 1, Source: 1, Peers: []core.HostID{1, 2, 2}}},
		{"order missing peer", core.Config{
			ID: 1, Source: 1, Peers: []core.HostID{1, 2},
			Order: map[core.HostID]int{1: 1},
		}},
		{"order collision", core.Config{
			ID: 1, Source: 1, Peers: []core.HostID{1, 2},
			Order: map[core.HostID]int{1: 7, 2: 7},
		}},
	}
	for _, tt := range cases {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := core.NewHost(tt.cfg, env); err == nil {
				t.Errorf("NewHost accepted bad config %+v", tt.cfg)
			}
		})
	}
	if _, err := core.NewHost(core.Config{ID: 1, Source: 1, Peers: []core.HostID{1, 2}}, nil); err == nil {
		t.Error("NewHost accepted nil Env")
	}
}

func TestParamsValidation(t *testing.T) {
	p := core.DefaultParams()
	if err := p.Validate(); err != nil {
		t.Fatalf("DefaultParams invalid: %v", err)
	}
	bad := p
	bad.TickInterval = 0
	if bad.Validate() == nil {
		t.Error("zero TickInterval accepted")
	}
	bad = p
	bad.GapFillBatch = 0
	if bad.Validate() == nil {
		t.Error("zero GapFillBatch accepted")
	}
	bad = p
	bad.ParentTimeout = bad.InfoClusterPeriod
	if bad.Validate() == nil {
		t.Error("ParentTimeout <= InfoClusterPeriod accepted")
	}
	bad = p
	bad.EchoReady = true
	bad.EchoMaxFaulty = core.MaxEchoFaulty + 1
	if bad.Validate() == nil {
		t.Error("EchoMaxFaulty above MaxEchoFaulty accepted")
	}
	bad.EchoMaxFaulty = core.MaxEchoFaulty
	if err := bad.Validate(); err != nil {
		t.Errorf("EchoMaxFaulty == MaxEchoFaulty rejected: %v", err)
	}
}

func TestSourceBroadcast(t *testing.T) {
	env := &fakeEnv{}
	src := newTestHost(t, 1, quietParams(), env)
	if !src.IsSource() {
		t.Fatal("host 1 is not the source")
	}
	// Adopt two children.
	src.HandleMessage(0, 2, false, core.Message{Kind: core.MsgAttachReq})
	src.HandleMessage(0, 3, true, core.Message{Kind: core.MsgAttachReq})
	env.reset()

	seq := src.Broadcast(time.Second, []byte("m1"))
	if seq != 1 {
		t.Errorf("first Broadcast seq = %d, want 1", seq)
	}
	if seq := src.Broadcast(time.Second, []byte("m2")); seq != 2 {
		t.Errorf("second Broadcast seq = %d, want 2", seq)
	}
	data := env.ofKind(core.MsgData)
	if len(data) != 4 { // 2 messages × 2 children
		t.Fatalf("sent %d data messages, want 4", len(data))
	}
	targets := map[core.HostID]int{}
	for _, s := range data {
		targets[s.to]++
		if s.m.GapFill {
			t.Error("fresh broadcast marked as gap fill")
		}
	}
	if targets[2] != 2 || targets[3] != 2 {
		t.Errorf("per-child data counts = %v, want 2 each", targets)
	}
	if len(env.delivered) != 2 {
		t.Errorf("source delivered %d locally, want 2", len(env.delivered))
	}
	if got := src.Info().Max(); got != 2 {
		t.Errorf("source INFO max = %d, want 2", got)
	}
}

func TestBroadcastOnNonSourcePanics(t *testing.T) {
	env := &fakeEnv{}
	h := newTestHost(t, 2, quietParams(), env)
	defer func() {
		if recover() == nil {
			t.Error("Broadcast on non-source did not panic")
		}
	}()
	h.Broadcast(0, nil)
}

func TestClusterInferenceFromCostBit(t *testing.T) {
	env := &fakeEnv{}
	h := newTestHost(t, 2, quietParams(), env)
	if got := h.Cluster(); len(got) != 1 || got[0] != 2 {
		t.Fatalf("initial cluster = %v, want [2]", got)
	}
	infoFrom(h, 0, 3, false, 0, core.Nil) // cheap → same cluster
	infoFrom(h, 0, 4, true, 0, core.Nil)  // expensive → different cluster
	cl := h.Cluster()
	if len(cl) != 2 || cl[0] != 2 || cl[1] != 3 {
		t.Errorf("cluster = %v, want [2 3]", cl)
	}
	// An expensive message from 3 evicts it.
	infoFrom(h, 0, 3, true, 0, core.Nil)
	if cl := h.Cluster(); len(cl) != 1 {
		t.Errorf("cluster after eviction = %v, want [2]", cl)
	}
	// A cheap message from 4 admits it.
	infoFrom(h, 0, 4, false, 0, core.Nil)
	if cl := h.Cluster(); len(cl) != 2 || cl[1] != 4 {
		t.Errorf("cluster after admission = %v, want [2 4]", cl)
	}
}

func TestInitialClusterSeed(t *testing.T) {
	env := &fakeEnv{}
	h, err := core.NewHost(core.Config{
		ID: 2, Source: 1, Peers: []core.HostID{1, 2, 3},
		InitialCluster: []core.HostID{3},
		Params:         quietParams(),
	}, env)
	if err != nil {
		t.Fatal(err)
	}
	cl := h.Cluster()
	if len(cl) != 2 || cl[0] != 2 || cl[1] != 3 {
		t.Errorf("seeded cluster = %v, want [2 3]", cl)
	}
}

func hInCluster(h *core.Host, j core.HostID) bool {
	for _, c := range h.Cluster() {
		if c == j {
			return true
		}
	}
	return false
}

func TestDataAcceptanceRules(t *testing.T) {
	env := &fakeEnv{}
	h := newTestHost(t, 2, quietParams(), env)

	// New-max data from a non-parent is rejected and answered with a
	// corrective detach.
	h.HandleMessage(0, 3, false, core.Message{Kind: core.MsgData, Seq: 1, Payload: []byte("x")})
	if len(env.delivered) != 0 {
		t.Fatal("accepted new-max data from non-parent")
	}
	if det := env.ofKind(core.MsgDetach); len(det) != 1 || det[0].to != 3 {
		t.Errorf("expected corrective detach to 3, got %v", env.sent)
	}
	env.reset()

	// Adopt parent 3 via handshake; then new-max from parent is accepted.
	base := makeParent(t, h, env, 3)
	env.reset()
	h.HandleMessage(base, 3, true, core.Message{Kind: core.MsgData, Seq: 5, Payload: []byte("m5")})
	if len(env.delivered) != 1 || env.delivered[0] != 5 {
		t.Fatalf("delivered = %v, want [5]", env.delivered)
	}

	// Duplicate is dropped silently.
	h.HandleMessage(base, 3, true, core.Message{Kind: core.MsgData, Seq: 5, Payload: []byte("m5")})
	if len(env.delivered) != 1 {
		t.Error("duplicate delivered twice")
	}

	// A lower-numbered (gap-fill) message is accepted from anyone.
	h.HandleMessage(base, 4, false, core.Message{Kind: core.MsgData, Seq: 2, Payload: []byte("m2"), GapFill: true})
	if len(env.delivered) != 2 || env.delivered[1] != 2 {
		t.Fatalf("gap fill from non-parent not accepted: %v", env.delivered)
	}

	// But a new-max gap-fill from a non-parent is still rejected (it
	// would alter the INFO maximum) — without a corrective detach.
	env.reset()
	h.HandleMessage(base, 4, false, core.Message{Kind: core.MsgData, Seq: 9, Payload: []byte("m9"), GapFill: true})
	if len(env.delivered) != 0 {
		t.Error("new-max gap fill accepted from non-parent")
	}
	if len(env.ofKind(core.MsgDetach)) != 0 {
		t.Error("gap-fill rejection sent a corrective detach")
	}
}

// makeParent wires host h (currently parentless) to parent p by
// simulating the handshake: p is made attractive as an out-of-cluster
// host with greater INFO (Case I option 3), the attachment procedure is
// fired by ticking past the (staggered) attach period, and the request is
// answered. It returns the virtual time after the handshake; callers must
// use times at or after it. Periodic schedules are re-anchored there.
func makeParent(t *testing.T, h *core.Host, env *fakeEnv, p core.HostID) time.Duration {
	t.Helper()
	bigger := h.Info().Max() + 10
	infoFrom(h, 0, p, true, bigger, core.Nil)
	// The first periodic attach fires within 2×AttachPeriod of Start.
	base := 2 * time.Hour
	h.Tick(base)
	req := env.ofKind(core.MsgAttachReq)
	if len(req) == 0 || req[len(req)-1].to != p {
		t.Fatalf("no attach request to %d; sent %v", p, env.sent)
	}
	h.HandleMessage(base, p, true, core.Message{
		Kind: core.MsgAttachAccept,
		Info: seqset.FromRange(1, bigger),
	})
	if h.Parent() != p {
		t.Fatalf("parent = %d after handshake, want %d", h.Parent(), p)
	}
	// Re-anchor periodic schedules at base.
	h.Start(base)
	return base
}

func TestForwardToChildren(t *testing.T) {
	env := &fakeEnv{}
	h := newTestHost(t, 2, quietParams(), env)
	// Children 4 and 5 adopt us.
	h.HandleMessage(0, 4, false, core.Message{Kind: core.MsgAttachReq})
	h.HandleMessage(0, 5, false, core.Message{Kind: core.MsgAttachReq})
	now := makeParent(t, h, env, 3)
	env.reset()

	h.HandleMessage(now, 3, true, core.Message{Kind: core.MsgData, Seq: 11, Payload: []byte("v")})
	data := env.ofKind(core.MsgData)
	targets := map[core.HostID]bool{}
	for _, s := range data {
		if s.m.Seq == 11 {
			targets[s.to] = true
		}
	}
	if !targets[4] || !targets[5] {
		t.Errorf("new-max not forwarded to both children: %v", data)
	}
}

func TestGapFillRelayToNeighbors(t *testing.T) {
	env := &fakeEnv{}
	h := newTestHost(t, 2, quietParams(), env)
	h.HandleMessage(0, 4, false, core.Message{Kind: core.MsgAttachReq}) // child 4
	now := makeParent(t, h, env, 3)

	// Give ourselves messages 1..3 via parent so max is 3, with a gap at 2.
	h.HandleMessage(now, 3, true, core.Message{Kind: core.MsgData, Seq: 1, Payload: []byte("a")})
	h.HandleMessage(now, 3, true, core.Message{Kind: core.MsgData, Seq: 3, Payload: []byte("c")})
	// Child 4 reports INFO {1,3}: it too is missing 2. Parent 3 reports
	// INFO {1,2,3}.
	h.HandleMessage(now, 4, false, core.Message{
		Kind: core.MsgInfo, Info: seqset.FromSlice([]seqset.Seq{1, 3}), Parent: 2,
	})
	env.reset()

	// A gap fill for 2 arrives from some host 5; we accept and relay to
	// child 4 (which lacks it) but not to parent 3 (which has it).
	h.HandleMessage(now, 5, true, core.Message{Kind: core.MsgData, Seq: 2, Payload: []byte("b"), GapFill: true})
	if len(env.delivered) != 1 || env.delivered[0] != 2 {
		t.Fatalf("gap fill not delivered: %v", env.delivered)
	}
	data := env.ofKind(core.MsgData)
	if len(data) != 1 || data[0].to != 4 || !data[0].m.GapFill || data[0].m.Seq != 2 {
		t.Errorf("relay = %v, want one gap fill of seq 2 to child 4", data)
	}
}

func TestInfoUpdatesMapAndParentView(t *testing.T) {
	env := &fakeEnv{}
	h := newTestHost(t, 2, quietParams(), env)
	infoFrom(h, 0, 3, false, 7, 4)
	if got := h.MapOf(3).Max(); got != 7 {
		t.Errorf("MAP[3] max = %d, want 7", got)
	}
	if got := h.ParentView(3); got != 4 {
		t.Errorf("p[3] = %d, want 4", got)
	}
	// A fresh Info replaces, not merges.
	h.HandleMessage(0, 3, false, core.Message{
		Kind: core.MsgInfo, Info: seqset.FromSlice([]seqset.Seq{2}), Parent: core.Nil,
	})
	if got := h.MapOf(3); got.Max() != 2 || got.Len() != 1 {
		t.Errorf("MAP[3] after refresh = %v, want {2}", got)
	}
}

func TestChildPrunedWhenItReportsAnotherParent(t *testing.T) {
	env := &fakeEnv{}
	h := newTestHost(t, 2, quietParams(), env)
	h.HandleMessage(0, 4, false, core.Message{Kind: core.MsgAttachReq})
	if ch := h.Children(); len(ch) != 1 || ch[0] != 4 {
		t.Fatalf("children = %v, want [4]", ch)
	}
	infoFrom(h, 0, 4, false, 0, 5) // 4 now claims parent 5
	if ch := h.Children(); len(ch) != 0 {
		t.Errorf("children = %v after gossip prune, want []", ch)
	}
}

func TestDetachRemovesChild(t *testing.T) {
	env := &fakeEnv{}
	h := newTestHost(t, 2, quietParams(), env)
	h.HandleMessage(0, 4, false, core.Message{Kind: core.MsgAttachReq})
	h.HandleMessage(0, 4, false, core.Message{Kind: core.MsgDetach})
	if ch := h.Children(); len(ch) != 0 {
		t.Errorf("children = %v after detach, want []", ch)
	}
}

func TestAttachReqAcceptedAndGapFilled(t *testing.T) {
	env := &fakeEnv{}
	h := newTestHost(t, 2, quietParams(), env)
	now := makeParent(t, h, env, 3)
	// We hold 1..4.
	for _, q := range []seqset.Seq{1, 2, 3, 4} {
		h.HandleMessage(now, 3, true, core.Message{Kind: core.MsgData, Seq: q, Payload: []byte{byte(q)}})
	}
	env.reset()
	// Host 5 asks to attach holding only {1}.
	h.HandleMessage(now, 5, false, core.Message{
		Kind: core.MsgAttachReq, Info: seqset.FromSlice([]seqset.Seq{1}),
	})
	if acc := env.ofKind(core.MsgAttachAccept); len(acc) != 1 || acc[0].to != 5 {
		t.Fatalf("no accept to 5: %v", env.sent)
	}
	var fills []seqset.Seq
	for _, s := range env.ofKind(core.MsgData) {
		if s.to == 5 {
			fills = append(fills, s.m.Seq)
		}
	}
	if len(fills) != 3 { // 2, 3, 4
		t.Errorf("attach gap fill sent %v, want 2,3,4", fills)
	}
	if ch := h.Children(); len(ch) != 1 || ch[0] != 5 {
		t.Errorf("children = %v, want [5]", ch)
	}
}

func TestAttachReqFromParentRejected(t *testing.T) {
	env := &fakeEnv{}
	h := newTestHost(t, 2, quietParams(), env)
	now := makeParent(t, h, env, 3)
	env.reset()
	h.HandleMessage(now, 3, true, core.Message{Kind: core.MsgAttachReq})
	if rej := env.ofKind(core.MsgAttachReject); len(rej) != 1 || rej[0].to != 3 {
		t.Errorf("attach request from own parent not rejected: %v", env.sent)
	}
	if ch := h.Children(); len(ch) != 0 {
		t.Errorf("parent adopted as child: %v", ch)
	}
}

func TestStaleAttachAcceptCorrected(t *testing.T) {
	env := &fakeEnv{}
	h := newTestHost(t, 2, quietParams(), env)
	now := makeParent(t, h, env, 3)
	env.reset()
	// A stale accept arrives from 4 (an old candidate we gave up on).
	h.HandleMessage(now, 4, true, core.Message{Kind: core.MsgAttachAccept})
	if h.Parent() != 3 {
		t.Errorf("parent changed to %d on stale accept", h.Parent())
	}
	if det := env.ofKind(core.MsgDetach); len(det) != 1 || det[0].to != 4 {
		t.Errorf("stale accept not answered with detach: %v", env.sent)
	}
}

func TestParentTimeout(t *testing.T) {
	env := &fakeEnv{}
	p := quietParams()
	p.ParentTimeout = 500 * time.Millisecond
	p.InfoClusterPeriod = 100 * time.Millisecond // validation: timeout > cluster period
	h := newTestHost(t, 2, p, env)
	base := makeParent(t, h, env, 3)
	h.HandleMessage(base, 3, true, core.Message{Kind: core.MsgData, Seq: 100, Payload: nil})
	if h.Parent() != 3 {
		t.Fatal("setup: parent not 3")
	}
	// Silence beyond ParentTimeout.
	h.Tick(base + 2*time.Second)
	if h.Parent() != core.Nil {
		t.Errorf("parent = %d after silence, want Nil", h.Parent())
	}
}

func TestParentTimeoutRefreshedByTraffic(t *testing.T) {
	env := &fakeEnv{}
	p := quietParams()
	p.ParentTimeout = 500 * time.Millisecond
	p.InfoClusterPeriod = 100 * time.Millisecond
	h := newTestHost(t, 2, p, env)
	base := makeParent(t, h, env, 3)
	for i := 0; i < 10; i++ {
		now := base + time.Duration(i)*300*time.Millisecond
		infoFrom(h, now, 3, true, 50, core.Nil)
		h.Tick(now)
	}
	if h.Parent() != 3 {
		t.Errorf("parent lost despite regular traffic")
	}
}

func TestPruneStable(t *testing.T) {
	env := &fakeEnv{}
	p := quietParams()
	p.PruneStable = true
	h, err := core.NewHost(core.Config{
		ID: 1, Source: 1, Peers: []core.HostID{1, 2, 3},
		Params: p,
	}, env)
	if err != nil {
		t.Fatal(err)
	}
	h.Start(0)
	for i := 0; i < 5; i++ {
		h.Broadcast(0, []byte("x"))
	}
	// Peers report holding 1..4 — prefix 1..4 is stable, 5 is not.
	infoFrom(h, 0, 2, false, 4, 1)
	infoFrom(h, 0, 3, true, 4, 1)
	h.Tick(time.Second)
	info := h.Info()
	if info.Contains(3) {
		t.Errorf("INFO still contains pruned seq 3: %v", info)
	}
	if !info.Contains(4) || !info.Contains(5) {
		t.Errorf("INFO over-pruned: %v", info)
	}
	if info.Max() != 5 {
		t.Errorf("INFO max = %d after prune, want 5", info.Max())
	}
}

func TestGapFillBatchCap(t *testing.T) {
	env := &fakeEnv{}
	p := quietParams()
	p.GapFillBatch = 3
	p.GapClusterPeriod = 50 * time.Millisecond
	h := newTestHost(t, 2, p, env)
	// Become parent of 4 and hold 1..10.
	now := makeParent(t, h, env, 3)
	for q := seqset.Seq(1); q <= 10; q++ {
		h.HandleMessage(now, 3, true, core.Message{Kind: core.MsgData, Seq: q, Payload: []byte{1}})
	}
	h.HandleMessage(now, 4, false, core.Message{Kind: core.MsgAttachReq, Info: seqset.FromRange(1, 10)})
	// Child 4 reports an empty refresh — it lost everything somehow.
	infoFrom(h, now, 4, false, 0, 2)
	env.reset()
	h.Start(now)
	h.Tick(now + p.GapClusterPeriod*2)
	var toChild int
	for _, s := range env.ofKind(core.MsgData) {
		if s.to == 4 {
			toChild++
		}
	}
	if toChild != 3 {
		t.Errorf("gap fill sent %d messages, want batch cap 3", toChild)
	}
}

func TestInfoLocalGoesToClusterOnly(t *testing.T) {
	env := &fakeEnv{}
	p := quietParams()
	p.InfoClusterPeriod = 50 * time.Millisecond
	p.ParentTimeout = time.Hour
	h := newTestHost(t, 2, p, env)
	infoFrom(h, 0, 3, false, 0, core.Nil) // 3 in cluster
	infoFrom(h, 0, 4, true, 0, core.Nil)  // 4 not
	env.reset()
	h.Tick(time.Second)
	infos := env.ofKind(core.MsgInfo)
	for _, s := range infos {
		if s.to == 4 {
			t.Errorf("cluster info exchange reached out-of-cluster host 4")
		}
	}
	found := false
	for _, s := range infos {
		if s.to == 3 {
			found = true
			if s.m.Parent != h.Parent() {
				t.Errorf("info carries parent %d, want %d", s.m.Parent, h.Parent())
			}
		}
	}
	if !found {
		t.Error("no info to cluster member 3")
	}
}

func TestGlobalInfoOnlyFromLeaders(t *testing.T) {
	// Non-leader: parent in the same cluster → no global advertisements.
	env := &fakeEnv{}
	p := quietParams()
	p.InfoGlobalPeriod = 50 * time.Millisecond
	h := newTestHost(t, 2, p, env)
	infoFrom(h, 0, 3, false, 5, core.Nil) // 3: in-cluster leader, greater INFO
	h.Tick(2 * time.Hour)                 // provoke attach via Case I opt 1
	req := env.ofKind(core.MsgAttachReq)
	if len(req) == 0 || req[len(req)-1].to != 3 {
		t.Fatalf("setup: no attach to 3: %v", env.sent)
	}
	now := 2 * time.Hour
	h.HandleMessage(now, 3, false, core.Message{Kind: core.MsgAttachAccept, Info: seqset.FromRange(1, 5)})
	if h.IsLeader() {
		t.Fatal("setup: host should not be a leader (parent in cluster)")
	}
	h.Start(now)
	env.reset()
	h.Tick(now + time.Second)
	for _, s := range env.ofKind(core.MsgInfo) {
		if !hInCluster(h, s.to) && s.to != h.Parent() {
			t.Errorf("non-leader sent global info to %d", s.to)
		}
	}

	// Leader: fresh host whose parent is out-of-cluster → advertises
	// globally.
	env2 := &fakeEnv{}
	h2 := newTestHost(t, 2, p, env2)
	now2 := makeParent(t, h2, env2, 4)
	if !h2.IsLeader() {
		t.Fatal("setup: host 2 should be a leader")
	}
	env2.reset()
	h2.Tick(now2 + time.Second)
	var global int
	for _, s := range env2.ofKind(core.MsgInfo) {
		if !hInCluster(h2, s.to) && s.to != h2.Parent() {
			global++
		}
	}
	if global == 0 {
		t.Error("leader sent no global info")
	}
}

func TestObserverEvents(t *testing.T) {
	var events []core.Event
	p := quietParams()
	h, err := core.NewHost(core.Config{
		ID: 2, Source: 1, Peers: []core.HostID{1, 2, 3},
		Params:   p,
		Observer: func(ev core.Event) { events = append(events, ev) },
	}, &fakeEnv{})
	if err != nil {
		t.Fatal(err)
	}
	h.Start(0)
	h.HandleMessage(0, 3, false, core.Message{Kind: core.MsgAttachReq})
	h.HandleMessage(0, 3, false, core.Message{Kind: core.MsgDetach})
	kinds := map[core.EventKind]int{}
	for _, ev := range events {
		kinds[ev.Kind]++
		if ev.Host != 2 {
			t.Errorf("event host = %d, want 2", ev.Host)
		}
	}
	if kinds[core.EvChildAdded] != 1 || kinds[core.EvChildRemoved] != 1 {
		t.Errorf("event counts = %v", kinds)
	}
}
