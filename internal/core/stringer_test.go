package core_test

import (
	"strings"
	"testing"

	"rbcast/internal/core"
)

func TestMsgKindStrings(t *testing.T) {
	cases := map[core.MsgKind]string{
		core.MsgData:         "data",
		core.MsgInfo:         "info",
		core.MsgAttachReq:    "attach-req",
		core.MsgAttachAccept: "attach-accept",
		core.MsgAttachReject: "attach-reject",
		core.MsgDetach:       "detach",
		core.MsgBundle:       "bundle",
		core.MsgInfoDelta:    "info-delta",
		core.MsgEcho:         "echo",
		core.MsgReady:        "ready",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", k, got, want)
		}
	}
	if got := core.MsgKind(99).String(); !strings.Contains(got, "99") {
		t.Errorf("unknown kind renders %q", got)
	}
}

func TestIsControl(t *testing.T) {
	if core.MsgData.IsControl() {
		t.Error("data classified as control")
	}
	for _, k := range []core.MsgKind{
		core.MsgInfo, core.MsgAttachReq, core.MsgAttachAccept,
		core.MsgAttachReject, core.MsgDetach, core.MsgBundle,
		core.MsgInfoDelta, core.MsgEcho, core.MsgReady,
	} {
		if !k.IsControl() {
			t.Errorf("%v not classified as control", k)
		}
	}
}

func TestEventKindStrings(t *testing.T) {
	kinds := []core.EventKind{
		core.EvAccepted, core.EvDuplicate, core.EvRejected, core.EvAttached,
		core.EvAttachFailed, core.EvParentTimeout, core.EvCycleBroken,
		core.EvChildAdded, core.EvChildRemoved,
		core.EvPeerSuspected, core.EvPeerRecovered, core.EvEquivocation,
	}
	seen := map[string]bool{}
	for _, k := range kinds {
		s := k.String()
		if s == "" || strings.Contains(s, "EventKind") {
			t.Errorf("%d.String() = %q", k, s)
		}
		if seen[s] {
			t.Errorf("duplicate event string %q", s)
		}
		seen[s] = true
	}
	if got := core.EventKind(99).String(); !strings.Contains(got, "99") {
		t.Errorf("unknown event kind renders %q", got)
	}
}

func TestClusterModeUnknownString(t *testing.T) {
	if got := core.ClusterMode(42).String(); !strings.Contains(got, "42") {
		t.Errorf("unknown mode renders %q", got)
	}
}

func TestParentViewOfSelf(t *testing.T) {
	env := &fakeEnv{}
	h := newTestHost(t, 2, quietParams(), env)
	if got := h.ParentView(2); got != core.Nil {
		t.Errorf("ParentView(self) = %d, want Nil", got)
	}
	makeParent(t, h, env, 3)
	if got := h.ParentView(2); got != 3 {
		t.Errorf("ParentView(self) = %d after attach, want 3", got)
	}
}
