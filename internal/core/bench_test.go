package core_test

import (
	"testing"
	"time"

	"rbcast/internal/core"
	"rbcast/internal/seqset"
)

type nullEnv struct{}

func (nullEnv) Send(core.HostID, core.Message) {}
func (nullEnv) Deliver(seqset.Seq, []byte)     {}

func benchHost(b *testing.B, id core.HostID, n int) *core.Host {
	b.Helper()
	peers := make([]core.HostID, n)
	for i := range peers {
		peers[i] = core.HostID(i + 1)
	}
	h, err := core.NewHost(core.Config{
		ID: id, Source: 1, Peers: peers, Params: core.DefaultParams(),
	}, nullEnv{})
	if err != nil {
		b.Fatal(err)
	}
	h.Start(0)
	return h
}

// BenchmarkHandleDataFromParent measures the common hot path: accepting
// a fresh in-order data message from the parent and forwarding it.
func BenchmarkHandleDataFromParent(b *testing.B) {
	h := benchHost(b, 2, 16)
	// Wire host 3 as parent via the handshake.
	h.HandleMessage(0, 3, true, core.Message{Kind: core.MsgInfo, Info: seqset.FromRange(1, 1), Parent: core.Nil})
	h.Tick(3 * time.Hour)
	h.HandleMessage(0, 3, true, core.Message{Kind: core.MsgAttachAccept, Info: seqset.FromRange(1, 1)})
	if h.Parent() != 3 {
		b.Fatal("setup: no parent")
	}
	payload := make([]byte, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.HandleMessage(0, 3, true, core.Message{
			Kind: core.MsgData, Seq: seqset.Seq(i + 2), Payload: payload,
		})
	}
}

// BenchmarkHandleDuplicateData measures the duplicate-discard path, which
// dominates under network duplication.
func BenchmarkHandleDuplicateData(b *testing.B) {
	h := benchHost(b, 2, 16)
	h.HandleMessage(0, 3, true, core.Message{Kind: core.MsgInfo, Info: seqset.FromRange(1, 1), Parent: core.Nil})
	h.Tick(3 * time.Hour)
	h.HandleMessage(0, 3, true, core.Message{Kind: core.MsgAttachAccept, Info: seqset.FromRange(1, 1)})
	h.HandleMessage(0, 3, true, core.Message{Kind: core.MsgData, Seq: 5, Payload: []byte("x")})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.HandleMessage(0, 3, true, core.Message{Kind: core.MsgData, Seq: 5, Payload: []byte("x")})
	}
}

// BenchmarkHandleInfo measures the periodic INFO ingestion path with a
// realistic (mostly contiguous) set.
func BenchmarkHandleInfo(b *testing.B) {
	h := benchHost(b, 2, 16)
	info := seqset.FromRange(1, 10000)
	info.Prune(3) // give it a second run
	m := core.Message{Kind: core.MsgInfo, Info: info, Parent: 1}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.HandleMessage(0, 3, false, m)
	}
}

// BenchmarkTickIdle measures a quiescent host's clock tick (nothing due).
func BenchmarkTickIdle(b *testing.B) {
	h := benchHost(b, 2, 64)
	h.Tick(time.Millisecond)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Tick(time.Millisecond * 2) // before every periodic deadline
	}
}

// BenchmarkAttachmentScan measures one full attachment-procedure
// activation over a large peer set with mixed candidates.
func BenchmarkAttachmentScan(b *testing.B) {
	h := benchHost(b, 2, 128)
	// Populate MAP and cluster views for everyone.
	for j := core.HostID(3); j <= 128; j++ {
		h.HandleMessage(0, j, j%3 == 0, core.Message{
			Kind:   core.MsgInfo,
			Info:   seqset.FromRange(1, seqset.Seq(j)),
			Parent: core.Nil,
		})
	}
	period := core.DefaultParams().AttachPeriod
	now := 3 * time.Hour
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		now += period + time.Millisecond
		h.Tick(now)
		// Cancel any pending handshake so the next tick scans again.
		h.HandleMessage(now, h.Parent(), false, core.Message{Kind: core.MsgDetach})
	}
}
