package core_test

import (
	"testing"

	"rbcast/internal/core"
)

func TestClusterModeStaticFrozen(t *testing.T) {
	p := quietParams()
	p.ClusterMode = core.ClusterStatic
	env := &fakeEnv{}
	h, err := core.NewHost(core.Config{
		ID: 2, Source: 1, Peers: []core.HostID{1, 2, 3, 4},
		InitialCluster: []core.HostID{3},
		Params:         p,
	}, env)
	if err != nil {
		t.Fatal(err)
	}
	h.Start(0)
	cl := h.Cluster()
	if len(cl) != 2 || cl[0] != 2 || cl[1] != 3 {
		t.Fatalf("static cluster = %v, want [2 3]", cl)
	}
	// Cost bits must not move the set in either direction.
	infoFrom(h, 0, 3, true, 0, core.Nil)  // expensive from a member
	infoFrom(h, 0, 4, false, 0, core.Nil) // cheap from a non-member
	cl = h.Cluster()
	if len(cl) != 2 || cl[0] != 2 || cl[1] != 3 {
		t.Errorf("static cluster drifted to %v", cl)
	}
}

func TestClusterModeNoneSingleton(t *testing.T) {
	p := quietParams()
	p.ClusterMode = core.ClusterNone
	env := &fakeEnv{}
	h, err := core.NewHost(core.Config{
		ID: 2, Source: 1, Peers: []core.HostID{1, 2, 3},
		// Seeds are ignored in none mode.
		InitialCluster: []core.HostID{3},
		Params:         p,
	}, env)
	if err != nil {
		t.Fatal(err)
	}
	h.Start(0)
	if cl := h.Cluster(); len(cl) != 1 || cl[0] != 2 {
		t.Fatalf("none-mode cluster = %v, want [2]", cl)
	}
	infoFrom(h, 0, 3, false, 0, core.Nil) // cheap message changes nothing
	if cl := h.Cluster(); len(cl) != 1 {
		t.Errorf("none-mode cluster grew: %v", cl)
	}
	// Every host being alone, this host is always a leader.
	if !h.IsLeader() {
		t.Error("none-mode host not a leader")
	}
}

func TestClusterModeString(t *testing.T) {
	cases := map[core.ClusterMode]string{
		core.ClusterDynamic: "dynamic",
		core.ClusterStatic:  "static",
		core.ClusterNone:    "none",
	}
	for mode, want := range cases {
		if got := mode.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", mode, got, want)
		}
	}
}
